// Benchmarks regenerating the measured quantity behind every table of
// the paper's evaluation (see DESIGN.md's experiment index; the full
// aggregated tables come from cmd/resexp). Each benchmark times the
// operation the corresponding table reports — scheduling-algorithm
// execution for Tables 9/10, full algorithm runs for Tables 4-7 — and
// reports domain metrics (turnaround seconds, CPU-hours) alongside
// ns/op, so a single `go test -bench=. -benchmem` run reproduces both
// the performance and the quality dimensions at instance scale.
package resched_test

import (
	"fmt"
	"math/rand"
	"testing"

	"resched"
	"resched/internal/core"
	"resched/internal/cpa"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/workload"
)

// benchEnv materializes one deterministic scheduling environment from
// an archetype log.
func benchEnv(b *testing.B, arch resched.Archetype, phi float64, method resched.ExtractMethod, seed int64) resched.Env {
	b.Helper()
	rng := rand.New(rand.NewSource(seed))
	lg, err := resched.SynthesizeLog(arch, 30, rng)
	if err != nil {
		b.Fatal(err)
	}
	at := resched.Time(14 * resched.Day)
	ex, err := resched.ExtractReservations(lg, phi, method, at, rng)
	if err != nil {
		b.Fatal(err)
	}
	prof, err := ex.Profile()
	if err != nil {
		b.Fatal(err)
	}
	q, err := resched.HistoricalAvail(ex.Procs, ex.Past, ex.At, resched.Week)
	if err != nil {
		b.Fatal(err)
	}
	return resched.Env{P: ex.Procs, Now: ex.At, Avail: prof, Q: q}
}

func benchGraph(b *testing.B, spec resched.DAGSpec, seed int64) *resched.Graph {
	b.Helper()
	g, err := resched.GenerateDAG(spec, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkTable3Stats times the per-log statistics computation behind
// Table 3.
func BenchmarkTable3Stats(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	lg, err := resched.SynthesizeLog(resched.SDSCDS, 30, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.ComputeStats(lg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection431 compares the bottom-level methods of Section
// 4.3.1 under the BD_CPAR bound.
func BenchmarkSection431(b *testing.B) {
	g := benchGraph(b, resched.DefaultDAGSpec(), 2)
	env := benchEnv(b, resched.SDSCDS, 0.2, resched.Expo, 2)
	for _, bl := range []resched.BLMethod{resched.BL1, resched.BLAll, resched.BLCPA, resched.BLCPAR} {
		b.Run(bl.String(), func(b *testing.B) {
			s, err := resched.NewScheduler(g)
			if err != nil {
				b.Fatal(err)
			}
			var last *resched.Schedule
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = s.Turnaround(env, bl, resched.BDCPAR)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.Turnaround()), "turnaround-s")
		})
	}
}

// benchTurnaroundTable runs the RESSCHED algorithms of Tables 4/5 on a
// fixed instance from the given archetype.
func benchTurnaroundTable(b *testing.B, arch resched.Archetype, phi float64, method resched.ExtractMethod) {
	g := benchGraph(b, resched.DefaultDAGSpec(), 3)
	env := benchEnv(b, arch, phi, method, 3)
	for _, bd := range []resched.BDMethod{resched.BDAll, resched.BDHalf, resched.BDCPA, resched.BDCPAR} {
		b.Run(bd.String(), func(b *testing.B) {
			s, err := resched.NewScheduler(g)
			if err != nil {
				b.Fatal(err)
			}
			var last *resched.Schedule
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = s.Turnaround(env, resched.BLCPAR, bd)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.Turnaround()), "turnaround-s")
			b.ReportMetric(last.CPUHours(), "cpu-hours")
		})
	}
}

// BenchmarkTable4 exercises turn-around minimization on a synthetic
// (phi-tagged) reservation schedule.
func BenchmarkTable4(b *testing.B) {
	benchTurnaroundTable(b, resched.SDSCDS, 0.2, resched.Expo)
}

// BenchmarkTable5 exercises turn-around minimization on a
// Grid'5000-style reservation schedule.
func BenchmarkTable5(b *testing.B) {
	benchTurnaroundTable(b, resched.Grid5000, 1, resched.Real)
}

// BenchmarkTable6 runs the five deadline algorithms of Table 6 against
// a fixed deadline (1.5x the forward schedule, the table's "loose
// deadline" setting).
func BenchmarkTable6(b *testing.B) {
	g := benchGraph(b, resched.DefaultDAGSpec(), 4)
	env := benchEnv(b, resched.SDSCBlue, 0.2, resched.Expo, 4)
	ref, err := mustScheduler(b, g).Turnaround(env, resched.BLCPAR, resched.BDCPAR)
	if err != nil {
		b.Fatal(err)
	}
	deadline := env.Now + resched.Duration(1.5*float64(ref.Turnaround()))
	algos := []resched.DLAlgorithm{resched.DLBDAll, resched.DLBDCPA, resched.DLBDCPAR, resched.DLRCCPA, resched.DLRCCPAR}
	for _, algo := range algos {
		b.Run(algo.String(), func(b *testing.B) {
			s := mustScheduler(b, g)
			var last *resched.Schedule
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = s.Deadline(env, algo, deadline)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.CPUHours(), "cpu-hours")
		})
	}
}

// BenchmarkTable6Tightest times the tightest-deadline binary search of
// Section 5.3 for a representative aggressive and RC algorithm.
func BenchmarkTable6Tightest(b *testing.B) {
	g := benchGraph(b, smallSpec(25), 5)
	env := benchEnv(b, resched.SDSCDS, 0.2, resched.Expo, 5)
	for _, algo := range []resched.DLAlgorithm{resched.DLBDCPA, resched.DLRCCPAR} {
		b.Run(algo.String(), func(b *testing.B) {
			s := mustScheduler(b, g)
			var k resched.Time
			var err error
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k, _, err = s.TightestDeadline(env, algo)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(k-env.Now), "tightest-s")
		})
	}
}

// BenchmarkTable7 runs the hybrid algorithms of Table 7 on a
// Grid'5000-style schedule at a loose deadline.
func BenchmarkTable7(b *testing.B) {
	g := benchGraph(b, resched.DefaultDAGSpec(), 6)
	env := benchEnv(b, resched.Grid5000, 1, resched.Real, 6)
	ref, err := mustScheduler(b, g).Turnaround(env, resched.BLCPAR, resched.BDCPAR)
	if err != nil {
		b.Fatal(err)
	}
	deadline := env.Now + resched.Duration(1.5*float64(ref.Turnaround()))
	algos := []resched.DLAlgorithm{resched.DLBDCPA, resched.DLRCCPAR, resched.DLRCCPARLambda, resched.DLRCBDCPARLambda}
	for _, algo := range algos {
		b.Run(algo.String(), func(b *testing.B) {
			s := mustScheduler(b, g)
			var last *resched.Schedule
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last, err = s.Deadline(env, algo, deadline)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.CPUHours(), "cpu-hours")
		})
	}
}

func smallSpec(n int) resched.DAGSpec {
	spec := resched.DefaultDAGSpec()
	spec.N = n
	return spec
}

// BenchmarkTable9 reproduces the execution-time sweep over the number
// of tasks n (fresh scheduler per call, like the paper's timings).
func BenchmarkTable9(b *testing.B) {
	env := benchEnv(b, resched.Grid5000, 1, resched.Real, 7)
	for _, n := range []int{10, 25, 50, 75, 100} {
		g := benchGraph(b, smallSpec(n), int64(100+n))
		for _, name := range []string{"BD_CPAR", "DL_BD_CPAR", "DL_RC_CPAR"} {
			b.Run(fmt.Sprintf("n=%d/%s", n, name), func(b *testing.B) {
				benchOneAlgorithm(b, g, env, name)
			})
		}
	}
}

// BenchmarkTable10 reproduces the execution-time sweep over edge
// density d.
func BenchmarkTable10(b *testing.B) {
	env := benchEnv(b, resched.Grid5000, 1, resched.Real, 8)
	for _, d := range []float64{0.1, 0.5, 0.9} {
		spec := resched.DefaultDAGSpec()
		spec.Density = d
		g := benchGraph(b, spec, int64(200+int(10*d)))
		for _, name := range []string{"BD_CPAR", "DL_BD_CPAR", "DL_RC_CPAR"} {
			b.Run(fmt.Sprintf("d=%.1f/%s", d, name), func(b *testing.B) {
				benchOneAlgorithm(b, g, env, name)
			})
		}
	}
}

// benchOneAlgorithm times one scheduling invocation including CPA
// allocation and bottom-level computation (fresh scheduler per
// iteration), which is what Tables 9 and 10 measure.
func benchOneAlgorithm(b *testing.B, g *resched.Graph, env resched.Env, name string) {
	b.Helper()
	var deadline resched.Time
	if name != "BD_CPAR" {
		ref, err := mustScheduler(b, g).Turnaround(env, resched.BLCPAR, resched.BDCPAR)
		if err != nil {
			b.Fatal(err)
		}
		deadline = env.Now + resched.Duration(1.5*float64(ref.Turnaround()))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := mustScheduler(b, g)
		var err error
		switch name {
		case "BD_CPAR":
			_, err = s.Turnaround(env, resched.BLCPAR, resched.BDCPAR)
		case "DL_BD_CPAR":
			_, err = s.Deadline(env, resched.DLBDCPAR, deadline)
		case "DL_RC_CPAR":
			_, err = s.Deadline(env, resched.DLRCCPAR, deadline)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCPAStopRule compares the two allocation-phase
// stopping criteria called out in DESIGN.md Section 6: the classic CPA
// rule and the efficiency-capped stringent rule the paper's improved
// criterion is modeled by.
func BenchmarkAblationCPAStopRule(b *testing.B) {
	g := benchGraph(b, resched.DefaultDAGSpec(), 9)
	for _, rule := range []cpa.StopRule{cpa.StopClassic, cpa.StopStringent} {
		b.Run(rule.String(), func(b *testing.B) {
			var alloc []int
			var err error
			for i := 0; i < b.N; i++ {
				alloc, err = cpa.Allocate(g, 256, rule)
				if err != nil {
					b.Fatal(err)
				}
			}
			var work model.Duration
			for i, m := range alloc {
				t := g.Task(i)
				work += model.Work(t.Seq, t.Alpha, m)
			}
			b.ReportMetric(model.CPUHours(work), "alloc-cpu-hours")
		})
	}
}

// BenchmarkProfileOps isolates the availability-profile primitives all
// algorithms are built on.
func BenchmarkProfileOps(b *testing.B) {
	env := benchEnv(b, resched.SDSCBlue, 0.5, resched.Expo, 10)
	prof := env.Avail
	b.Run("EarliestFit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prof.EarliestFit(64, model.Hour, env.Now)
		}
	})
	b.Run("LatestFit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			prof.LatestFit(64, model.Hour, env.Now, env.Now+7*model.Day)
		}
	})
	b.Run("Reserve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := prof.CloneIntervals()
			if err := c.Reserve(env.Now+1000, env.Now+1000+model.Hour, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// mustScheduler adapts core.NewScheduler to benchmarks.
func mustScheduler(b *testing.B, g *resched.Graph) *resched.Scheduler {
	b.Helper()
	s, err := resched.NewScheduler(g)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkExtensionOneStep compares the one-step allocate-and-map
// scheduler (conclusion's first future-work item) against BD_CPAR on
// the same instance, reporting both cost dimensions.
func BenchmarkExtensionOneStep(b *testing.B) {
	g := benchGraph(b, smallSpec(25), 11)
	env := benchEnv(b, resched.SDSCDS, 0.2, resched.Expo, 11)
	b.Run("one-step", func(b *testing.B) {
		var res *resched.OneStepResult
		var err error
		for i := 0; i < b.N; i++ {
			res, err = resched.OneStepSchedule(g, env, resched.OneStepOptions{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.Schedule.Turnaround()), "turnaround-s")
		b.ReportMetric(res.Schedule.CPUHours(), "cpu-hours")
	})
	b.Run("BD_CPAR", func(b *testing.B) {
		var last *resched.Schedule
		for i := 0; i < b.N; i++ {
			s := mustScheduler(b, g)
			var err error
			last, err = s.Turnaround(env, resched.BLCPAR, resched.BDCPAR)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(last.Turnaround()), "turnaround-s")
		b.ReportMetric(last.CPUHours(), "cpu-hours")
	})
}

// BenchmarkExtensionBlind measures the cost of scheduling without full
// knowledge of the reservation schedule (probe-based interface),
// including the probe count per run.
func BenchmarkExtensionBlind(b *testing.B) {
	g := benchGraph(b, smallSpec(25), 12)
	env := benchEnv(b, resched.SDSCDS, 0.2, resched.Expo, 12)
	var res *resched.BlindResult
	for i := 0; i < b.N; i++ {
		bs := resched.NewSimulatedBatch(env.Avail, env.Now)
		var err error
		res, err = resched.BlindSchedule(g, bs, resched.BlindOptions{Q: env.Q})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Probes), "probes")
	b.ReportMetric(float64(res.Schedule.Turnaround()), "turnaround-s")
}

// Compile-time check that the alias types line up with the internal
// packages the benchmarks borrow.
var (
	_ = core.BLCPAR
	_ = daggen.Default
)
