package resched_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"resched"
	"resched/internal/resbook"
	"resched/internal/server"
)

// newDaemon spins up an in-process reschedd and a client pointed at it.
func newDaemon(t *testing.T, capacity int) (*resched.Client, *resbook.Book) {
	t.Helper()
	book := resbook.New(capacity, 0)
	srv, err := server.New(server.Config{Book: book})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return resched.NewClient(ts.URL, ts.Client()), book
}

func clientTestGraph(t *testing.T) *resched.Graph {
	t.Helper()
	g := resched.NewGraph(4)
	a := g.AddTask(resched.Task{Name: "prep", Seq: 10 * resched.Minute, Alpha: 0.1})
	b := g.AddTask(resched.Task{Name: "left", Seq: 30 * resched.Minute, Alpha: 0.05})
	c := g.AddTask(resched.Task{Name: "right", Seq: 30 * resched.Minute, Alpha: 0.05})
	d := g.AddTask(resched.Task{Name: "post", Seq: 10 * resched.Minute, Alpha: 0.1})
	g.MustAddEdge(a, b)
	g.MustAddEdge(a, c)
	g.MustAddEdge(b, d)
	g.MustAddEdge(c, d)
	return g
}

func TestClientScheduleAndCommit(t *testing.T) {
	client, book := newDaemon(t, 32)
	g := clientTestGraph(t)
	ctx := context.Background()

	dry, err := client.Schedule(ctx, g, resched.ScheduleOptions{Q: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(dry.Tasks) != 4 || dry.Committed {
		t.Fatalf("dry run: %+v", dry)
	}

	com, err := client.Schedule(ctx, g, resched.ScheduleOptions{Q: 16, Commit: true})
	if err != nil {
		t.Fatal(err)
	}
	if !com.Committed || len(com.ReservationIDs) != 4 {
		t.Fatalf("commit: %+v", com)
	}
	if book.Version() != 1 {
		t.Errorf("book version %d after one commit", book.Version())
	}

	prof, err := client.Profile(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Capacity != 32 || len(prof.Reservations) != 4 {
		t.Errorf("profile: capacity %d, %d reservations", prof.Capacity, len(prof.Reservations))
	}
}

func TestClientDeadline(t *testing.T) {
	client, _ := newDaemon(t, 32)
	g := clientTestGraph(t)
	ctx := context.Background()

	tight, err := client.Deadline(ctx, g, resched.DeadlineOptions{Algo: "DL_BD_CPAR", Tightest: true, Q: 16})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Deadline <= 0 {
		t.Fatalf("tightest deadline: %+v", tight)
	}

	// An impossible deadline maps to *APIError 422.
	_, err = client.Deadline(ctx, g, resched.DeadlineOptions{Algo: "DL_BD_CPAR", Deadline: resched.Minute, Q: 16})
	var apiErr *resched.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 422 {
		t.Fatalf("infeasible deadline: %v", err)
	}
}

func TestClientReservationLifecycle(t *testing.T) {
	client, _ := newDaemon(t, 16)
	ctx := context.Background()

	res, err := client.Reserve(ctx, 100, 200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != "pending" {
		t.Fatalf("created: %+v", res)
	}
	act, err := client.Activate(ctx, res.ID)
	if err != nil {
		t.Fatal(err)
	}
	if act.Status != "active" {
		t.Fatalf("activated: %+v", act)
	}
	rel, err := client.Release(ctx, res.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Status != "released" {
		t.Fatalf("released: %+v", rel)
	}

	// Double release and unknown IDs map to APIErrors.
	var apiErr *resched.APIError
	if _, err := client.Release(ctx, res.ID); !errors.As(err, &apiErr) || apiErr.Status != 409 {
		t.Errorf("double release: %v", err)
	}
	if _, err := client.Reservation(ctx, "r999999"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Errorf("unknown reservation: %v", err)
	}

	list, err := client.Reservations(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].Status != "released" {
		t.Errorf("list: %+v", list)
	}
}
