package resched_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"resched"
)

// TestPublicAPIEndToEnd walks the README path: build a DAG, set up a
// cluster with competing reservations, schedule for turnaround and for
// a deadline, and check the metrics line up.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := resched.NewGraph(2)
	prep := g.AddTask(resched.Task{Name: "prep", Seq: resched.Hour, Alpha: 0.1})
	solve := g.AddTask(resched.Task{Name: "solve", Seq: 4 * resched.Hour, Alpha: 0.05})
	g.MustAddEdge(prep, solve)

	avail := resched.NewProfile(64, 0)
	if err := avail.Reserve(0, 2*resched.Hour, 48); err != nil {
		t.Fatal(err)
	}
	s, err := resched.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	env := resched.Env{P: 64, Now: 0, Avail: avail, Q: 32}

	sched, err := s.Turnaround(env, resched.BLCPAR, resched.BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(env, sched); err != nil {
		t.Fatal(err)
	}
	if sched.Turnaround() <= 0 || sched.CPUHours() <= 0 {
		t.Fatalf("degenerate metrics: %d s, %v CPU-hours", sched.Turnaround(), sched.CPUHours())
	}

	dl, err := s.Deadline(env, resched.DLRCBDCPARLambda, 12*resched.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyDeadline(env, dl, 12*resched.Hour); err != nil {
		t.Fatal(err)
	}
	// An absurd deadline must report infeasibility through the exported
	// sentinel.
	if _, err := s.Deadline(env, resched.DLBDCPA, resched.Minute); !errors.Is(err, resched.ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

// TestPublicAPIWorkloadPath exercises the workload half of the facade:
// synthesize, round-trip through SWF, extract reservations, schedule.
func TestPublicAPIWorkloadPath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lg, err := resched.SynthesizeLog(resched.SDSCDS, 21, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lg.WriteSWF(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := resched.ParseSWF(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Jobs) != len(lg.Jobs) {
		t.Fatalf("SWF round trip lost jobs: %d -> %d", len(lg.Jobs), len(parsed.Jobs))
	}

	at := resched.Time(10 * resched.Day)
	ex, err := resched.ExtractReservations(parsed, 0.2, resched.Expo, at, rng)
	if err != nil {
		t.Fatal(err)
	}
	avail, err := ex.Profile()
	if err != nil {
		t.Fatal(err)
	}
	q, err := resched.HistoricalAvail(ex.Procs, ex.Past, ex.At, resched.Week)
	if err != nil {
		t.Fatal(err)
	}

	spec := resched.DefaultDAGSpec()
	spec.N = 20
	g, err := resched.GenerateDAG(spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	s, err := resched.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	env := resched.Env{P: ex.Procs, Now: ex.At, Avail: avail, Q: q}
	sched, err := s.Turnaround(env, resched.BLCPA, resched.BDCPA)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(env, sched); err != nil {
		t.Fatal(err)
	}

	k, tight, err := s.TightestDeadline(env, resched.DLBDCPA)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.VerifyDeadline(env, tight, k); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIParsersAndHelpers(t *testing.T) {
	if _, err := resched.ParseBD("BD_CPAR"); err != nil {
		t.Fatal(err)
	}
	if _, err := resched.ParseBL("BL_ALL"); err != nil {
		t.Fatal(err)
	}
	if _, err := resched.ParseDL("DL_RCBD_CPAR-l"); err != nil {
		t.Fatal(err)
	}
	if _, err := resched.ParseBD("nope"); err == nil {
		t.Fatal("bad name accepted")
	}
	if got := resched.ExecTime(100, 0, 4); got != 25 {
		t.Fatalf("ExecTime = %d", got)
	}
	g := resched.NewGraph(1)
	g.AddTask(resched.Task{Seq: resched.Hour, Alpha: 0.2})
	alloc, err := resched.CPAAllocate(g, 16)
	if err != nil || len(alloc) != 1 || alloc[0] < 1 {
		t.Fatalf("CPAAllocate = %v, %v", alloc, err)
	}
	if _, err := resched.ProfileFromReservations(4, 0, []resched.Reservation{{Start: 0, End: 10, Procs: 5}}); err == nil {
		t.Fatal("overcommitted reservation accepted")
	}
}
