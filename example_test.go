package resched_test

import (
	"fmt"

	"resched"
)

// The README's two-task pipeline: schedule for turnaround on a cluster
// with one competing reservation.
func ExampleScheduler_Turnaround() {
	g := resched.NewGraph(2)
	prep := g.AddTask(resched.Task{Name: "prep", Seq: resched.Hour, Alpha: 0.1})
	solve := g.AddTask(resched.Task{Name: "solve", Seq: 4 * resched.Hour, Alpha: 0.05})
	g.MustAddEdge(prep, solve)

	avail := resched.NewProfile(64, 0)
	if err := avail.Reserve(0, 2*resched.Hour, 48); err != nil {
		panic(err)
	}
	s, err := resched.NewScheduler(g)
	if err != nil {
		panic(err)
	}
	env := resched.Env{P: 64, Now: 0, Avail: avail, Q: 32}
	sched, err := s.Turnaround(env, resched.BLCPAR, resched.BDCPAR)
	if err != nil {
		panic(err)
	}
	for id, pl := range sched.Tasks {
		fmt.Printf("%s: %d procs [%d, %d)\n", g.Task(id).Name, pl.Procs, pl.Start, pl.End)
	}
	fmt.Printf("turnaround %ds\n", sched.Turnaround())
	// Output:
	// prep: 16 procs [0, 563)
	// solve: 16 procs [563, 2138)
	// turnaround 2138s
}

// Meeting a deadline as cheaply as possible with the hybrid
// resource-conservative algorithm.
func ExampleScheduler_Deadline() {
	g := resched.NewGraph(2)
	a := g.AddTask(resched.Task{Seq: resched.Hour, Alpha: 1})     // serial
	b := g.AddTask(resched.Task{Seq: 2 * resched.Hour, Alpha: 1}) // serial
	g.MustAddEdge(a, b)

	s, err := resched.NewScheduler(g)
	if err != nil {
		panic(err)
	}
	env := resched.Env{P: 8, Now: 0, Avail: resched.NewProfile(8, 0)}
	sched, err := s.Deadline(env, resched.DLRCBDCPARLambda, 12*resched.Hour)
	if err != nil {
		panic(err)
	}
	fmt.Printf("completes at %ds with %.1f CPU-hours\n", sched.Completion(), sched.CPUHours())
	// Output:
	// completes at 43200s with 3.0 CPU-hours
}

// Amdahl's-law execution times underpin every scheduling decision.
func ExampleExecTime() {
	// A one-hour task with a 10% serial fraction on 1, 4, and 16
	// processors.
	for _, m := range []int{1, 4, 16} {
		fmt.Println(m, resched.ExecTime(resched.Hour, 0.1, m))
	}
	// Output:
	// 1 3600
	// 4 1170
	// 16 563
}
