# Tier-1 verification for the serving code (resbook, server,
# reschedd): formatting, vet, the reschedvet domain analyzers, the
# full suite under the race detector, a one-iteration benchmark smoke
# run so benchmarks cannot bit-rot, and a short fuzz smoke of the
# profile/parser invariants. `make test` is the quick non-race cycle;
# `make bench` produces the machine-readable perf trajectory
# ($(BENCH_OUT)).

GO ?= go

# Benchmarks that feed the BENCH_*.json trajectory: the CPA allocation
# hot path, the profile primitives, and the serving path.
BENCH_PKGS ?= ./internal/cpa ./internal/profile ./internal/server ./internal/resbook ./internal/lifecycle
# BENCH_PR names the PR whose trajectory file `make bench` writes by
# default; override either variable to target another file, e.g.
#   make bench BENCH_PR=PR4
#   make bench BENCH_OUT=/tmp/scratch.json
BENCH_PR ?= PR10
BENCH_OUT ?= BENCH_$(BENCH_PR).json
BENCH_LABEL ?= optimized

# bench-compare gates the serving hot path against this committed
# baseline: the named benchmark prefixes may not regress ns/op by more
# than BENCH_THRESHOLD percent.
BENCH_BASE ?= BENCH_PR9.json
BENCH_THRESHOLD ?= 15
BENCH_GATE ?= internal/cpa.BenchmarkAllocate,internal/profile.BenchmarkProfileScaling,internal/profile.BenchmarkFitsBatch,internal/resbook.BenchmarkSnapshot,internal/server.BenchmarkSchedulePost,internal/server.BenchmarkScheduleThroughput

# How long each fuzz target runs in fuzz-smoke.
FUZZTIME ?= 10s

.PHONY: ci fmt vet lint test race race-all build bench bench-compare bench-smoke fuzz-smoke replay-smoke vuln

ci: fmt vet lint race replay-smoke bench-smoke fuzz-smoke vuln

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs the domain-aware reschedvet analyzers (see
# internal/analysis) over the whole module with the cross-package
# facts dump enabled, so CI logs show which flow facts (may-block,
# returns-alias, mutates, fire-and-forget) each conclusion rests on.
# Any diagnostic fails the target — and therefore ci — with a
# file:line message.
lint:
	$(GO) run ./cmd/reschedvet -facts ./...

test:
	$(GO) test ./...

# race runs the packages where the serving concurrency lives — the
# reservation book's optimistic Transact loop and the HTTP worker pool
# — under the race detector on every ci run, plus the analyzer suite
# (its fixture harness runs real type-checking and the analyzers
# themselves guard the locking discipline, so they get the same
# scrutiny). race-all is the full-tree sweep for slower, occasional
# use.
race:
	$(GO) test -race ./internal/resbook/... ./internal/server/... ./internal/lifecycle/... ./internal/coalesce/... ./internal/analysis/...

# replay-smoke drives a short canned trace through the online
# lifecycle engine under the race detector: a capacity-constrained
# day of CTC_SP2 arrivals, which exercises placement, backfill under
# the activation guardrail, starvation reservations, and the
# activation/completion event path end to end.
replay-smoke:
	$(GO) run -race ./cmd/resreplay -arch CTC_SP2 -days 1 -seed 7 -procs 64 -starve-attempts 4

race-all:
	$(GO) test -race ./...

# bench runs the trajectory benchmarks with -benchmem and folds the
# results into $(BENCH_OUT) under $(BENCH_LABEL) (see cmd/benchjson
# for the JSON format). Existing labels — e.g. the committed baseline
# — are preserved.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out $(BENCH_OUT)

# bench-compare re-runs the trajectory benchmarks into a scratch file
# and diffs them against the committed $(BENCH_BASE): per-benchmark
# ns/op and allocs/op deltas are printed, and a gated benchmark
# regressing ns/op beyond $(BENCH_THRESHOLD)% fails the target (see
# cmd/benchjson). Five repetitions are run and benchjson keeps the
# fastest — the minimum is the noise-robust estimator, without which a
# 15% gate flakes on a busy or single-core machine (interleaved A/B
# runs of identical binaries on a 1-vCPU VM show ±10% swings that
# min-of-3 does not reliably absorb). The gate additionally widens by
# each benchmark's own repetition spread, capped at 2x the threshold
# (see cmd/benchjson): a delta smaller than the jitter between
# identical repetitions carries no signal.
bench-compare:
	$(GO) test -run='^$$' -bench=. -benchmem -count=5 $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out /tmp/resched-bench-compare.json
	$(GO) run ./cmd/benchjson compare -label $(BENCH_LABEL) -threshold $(BENCH_THRESHOLD) -gate '$(BENCH_GATE)' $(BENCH_BASE) /tmp/resched-bench-compare.json

# bench-smoke executes every benchmark in the repo exactly once so CI
# catches benchmarks that no longer compile or crash. No timing is
# recorded.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# fuzz-smoke gives each native fuzz target a short budget so CI keeps
# the harnesses compiling and shakes the invariants on fresh inputs.
# `go test -fuzz` accepts one target per invocation, hence one line
# per target.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzProfileReserveUnreserve$$' -fuzztime=$(FUZZTIME) ./internal/profile
	$(GO) test -run='^$$' -fuzz='^FuzzTreeProfileVsFlat$$' -fuzztime=$(FUZZTIME) ./internal/profile
	$(GO) test -run='^$$' -fuzz='^FuzzPersistentVsFlat$$' -fuzztime=$(FUZZTIME) ./internal/profile
	$(GO) test -run='^$$' -fuzz='^FuzzScheduleParseRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz='^FuzzBinaryCodecRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/api

# vuln is advisory: it reports known-vulnerable dependencies when
# govulncheck is installed but never fails the build (and this module
# is stdlib-only, so findings would point at the toolchain itself).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "vuln: advisory findings above (not fatal)"; \
	else \
		echo "vuln: govulncheck not installed; skipping (advisory)"; \
	fi
