# Tier-1 verification for the serving code (resbook, server,
# reschedd): formatting, vet, the full suite under the race detector,
# and a one-iteration benchmark smoke run so benchmarks cannot
# bit-rot. `make test` is the quick non-race cycle; `make bench`
# produces the machine-readable perf trajectory (BENCH_PR2.json).

GO ?= go

# Benchmarks that feed the BENCH_*.json trajectory: the CPA allocation
# hot path, the profile primitives, and the serving path.
BENCH_PKGS ?= ./internal/cpa ./internal/profile ./internal/server ./internal/resbook
BENCH_OUT ?= BENCH_PR2.json
BENCH_LABEL ?= optimized

.PHONY: ci fmt vet test race build bench bench-smoke

ci: fmt vet race bench-smoke

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the trajectory benchmarks with -benchmem and folds the
# results into $(BENCH_OUT) under $(BENCH_LABEL) (see cmd/benchjson
# for the JSON format). Existing labels — e.g. the committed baseline
# — are preserved.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem $(BENCH_PKGS) | $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out $(BENCH_OUT)

# bench-smoke executes every benchmark in the repo exactly once so CI
# catches benchmarks that no longer compile or crash. No timing is
# recorded.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
