# Tier-1 verification for the serving code (resbook, server,
# reschedd): formatting, vet, and the full suite under the race
# detector. `make test` is the quick non-race cycle.

GO ?= go

.PHONY: ci fmt vet test race build

ci: fmt vet race

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...
