// Multi-site scheduling: the paper's third future-work direction. The
// same workflow is scheduled on a single 64-processor cluster and on a
// federation of that cluster plus a busier 128-processor site, with
// and without inter-site staging costs.
//
// Run with:
//
//	go run ./examples/multisite
package main

import (
	"fmt"
	"log"
	"math/rand"

	"resched"
)

func main() {
	rng := rand.New(rand.NewSource(4))
	spec := resched.DefaultDAGSpec()
	spec.N = 30
	g, err := resched.GenerateDAG(spec, rng)
	if err != nil {
		log.Fatal(err)
	}

	// Site A: 64 processors, lightly loaded. Site B: 128 processors,
	// but a maintenance reservation blocks most of it for six hours.
	siteA := resched.NewProfile(64, 0)
	must(siteA.Reserve(resched.Time(resched.Hour), resched.Time(3*resched.Hour), 32))
	siteB := resched.NewProfile(128, 0)
	must(siteB.Reserve(0, resched.Time(6*resched.Hour), 112))

	solo := resched.MultiEnv{
		Now:      0,
		Clusters: []resched.Site{{Name: "siteA", P: 64, Avail: siteA, Q: 48}},
	}
	federated := resched.MultiEnv{
		Now: 0,
		Clusters: []resched.Site{
			{Name: "siteA", P: 64, Avail: siteA, Q: 48},
			{Name: "siteB", P: 128, Avail: siteB, Q: 40},
		},
	}

	fmt.Printf("%-28s %14s %10s\n", "platform", "turnaround [h]", "CPU-hours")
	report := func(label string, env resched.MultiEnv, opt resched.MultiOptions) *resched.MultiSchedule {
		sched, err := resched.MultiTurnaround(g, env, opt)
		if err != nil {
			log.Fatal(err)
		}
		if err := resched.MultiVerify(g, env, sched, opt); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %14.2f %10.1f\n", label, float64(sched.Turnaround())/3600, sched.CPUHours())
		return sched
	}
	report("siteA alone", solo, resched.MultiOptions{})
	free := report("A+B, free staging", federated, resched.MultiOptions{})
	taxed := report("A+B, 30 min staging", federated, resched.MultiOptions{StageDelay: 30 * resched.Minute})

	use := func(s *resched.MultiSchedule) [2]int {
		var m [2]int
		for _, pl := range s.Tasks {
			m[pl.Cluster]++
		}
		return m
	}
	f, x := use(free), use(taxed)
	fmt.Printf("\ntasks on siteA/siteB with free staging:   %d/%d\n", f[0], f[1])
	fmt.Printf("tasks on siteA/siteB with 30 min staging: %d/%d\n", x[0], x[1])
	fmt.Println("\nwith free staging the federation beats the single site; expensive")
	fmt.Println("staging can erase that benefit (the greedy scheduler pays the delay")
	fmt.Println("once and then keeps descendants on the remote site) — measure both")
	fmt.Println("before committing to a multi-site campaign.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
