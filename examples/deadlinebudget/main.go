// Deadline vs budget: a user with a CPU-hour allocation needs a
// workflow finished "by tomorrow 9am" and wants to spend as little of
// the allocation as possible — the RESSCHEDDL problem of the paper's
// Section 5.
//
// The example finds each algorithm's tightest achievable deadline,
// then sweeps a range of deadlines and prints how the CPU-hour cost of
// the aggressive (DL_BD_CPA) and resource-conservative hybrid
// (DL_RCBD_CPAR-lambda) algorithms responds: aggressive stays
// expensive no matter how much slack exists, while the hybrid's cost
// falls toward the CPA optimum.
//
// Run with:
//
//	go run ./examples/deadlinebudget
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"resched"
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// A 40-task workflow from the paper's default Table 1 parameters.
	spec := resched.DefaultDAGSpec()
	spec.N = 40
	g, err := resched.GenerateDAG(spec, rng)
	if err != nil {
		log.Fatal(err)
	}

	// A Grid'5000-style reservation log: every job is a reservation.
	lg, err := resched.SynthesizeLog(resched.Grid5000, 30, rng)
	if err != nil {
		log.Fatal(err)
	}
	at := resched.Time(12 * resched.Day)
	ex, err := resched.ExtractReservations(lg, 1, resched.Real, at, rng)
	if err != nil {
		log.Fatal(err)
	}
	avail, err := ex.Profile()
	if err != nil {
		log.Fatal(err)
	}
	q, err := resched.HistoricalAvail(ex.Procs, ex.Past, ex.At, resched.Week)
	if err != nil {
		log.Fatal(err)
	}
	env := resched.Env{P: ex.Procs, Now: ex.At, Avail: avail, Q: q}

	s, err := resched.NewScheduler(g)
	if err != nil {
		log.Fatal(err)
	}

	aggressive := resched.DLBDCPA
	hybrid := resched.DLRCBDCPARLambda

	kAgg, _, err := s.TightestDeadline(env, aggressive)
	if err != nil {
		log.Fatal(err)
	}
	kHyb, _, err := s.TightestDeadline(env, hybrid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tightest deadline %-16s: %.2f h after now\n", aggressive, hours(kAgg-env.Now))
	fmt.Printf("tightest deadline %-16s: %.2f h after now\n", hybrid, hours(kHyb-env.Now))

	base := kAgg - env.Now
	if kHyb-env.Now > base {
		base = kHyb - env.Now
	}
	fmt.Printf("\n%-12s  %18s  %18s\n", "deadline", aggressive.String()+" [CPUh]", hybrid.String()+" [CPUh]")
	for _, factor := range []float64{1.0, 1.25, 1.5, 2.0, 3.0, 5.0} {
		deadline := env.Now + resched.Duration(factor*float64(base))
		row := fmt.Sprintf("%-12s", fmt.Sprintf("%.2fx", factor))
		for _, algo := range []resched.DLAlgorithm{aggressive, hybrid} {
			sched, err := s.Deadline(env, algo, deadline)
			switch {
			case errors.Is(err, resched.ErrInfeasible):
				row += fmt.Sprintf("  %18s", "infeasible")
			case err != nil:
				log.Fatal(err)
			default:
				row += fmt.Sprintf("  %18.1f", sched.CPUHours())
			}
		}
		fmt.Println(row)
	}
	fmt.Println("\nthe hybrid tracks the aggressive cost only when it must; slack turns into savings.")
}

func hours(d resched.Duration) float64 { return float64(d) / 3600 }
