// Quickstart: build a small mixed-parallel application by hand,
// schedule it on a cluster with competing advance reservations, and
// print the resulting reservation plan.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"resched"
)

func main() {
	// A four-stage pipeline with a parallel middle section:
	//
	//	        +-> smooth -+
	//	ingest -+           +-> render
	//	        +-> detect -+
	//
	// Each stage is a data-parallel task: Seq is its one-processor
	// running time in seconds, Alpha the fraction that does not
	// parallelize (Amdahl's law).
	g := resched.NewGraph(4)
	ingest := g.AddTask(resched.Task{Name: "ingest", Seq: 30 * resched.Minute, Alpha: 0.30})
	smooth := g.AddTask(resched.Task{Name: "smooth", Seq: 2 * resched.Hour, Alpha: 0.05})
	detect := g.AddTask(resched.Task{Name: "detect", Seq: 3 * resched.Hour, Alpha: 0.10})
	render := g.AddTask(resched.Task{Name: "render", Seq: 1 * resched.Hour, Alpha: 0.15})
	g.MustAddEdge(ingest, smooth)
	g.MustAddEdge(ingest, detect)
	g.MustAddEdge(smooth, render)
	g.MustAddEdge(detect, render)

	// A 32-processor cluster. Competing users hold advance
	// reservations: the whole machine for the first half hour, and 24
	// processors for two hours starting at t+2h.
	avail := resched.NewProfile(32, 0)
	must(avail.Reserve(0, 30*resched.Minute, 32))
	must(avail.Reserve(2*resched.Hour, 4*resched.Hour, 24))

	env := resched.Env{
		P:     32,
		Now:   0,
		Avail: avail,
		Q:     20, // historical average of free processors
	}

	s, err := resched.NewScheduler(g)
	if err != nil {
		log.Fatal(err)
	}

	// RESSCHED: minimize turn-around time with the paper's best
	// heuristic, BL_CPAR bottom levels + BD_CPAR allocation bounds.
	sched, err := s.Turnaround(env, resched.BLCPAR, resched.BDCPAR)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Verify(env, sched); err != nil {
		log.Fatal(err)
	}

	fmt.Println("one advance reservation per task:")
	for id, pl := range sched.Tasks {
		fmt.Printf("  %-7s %2d procs  [%6ds .. %6ds]\n",
			g.Task(id).Name, pl.Procs, pl.Start, pl.End)
	}
	fmt.Printf("turn-around time: %d s (%.2f h)\n",
		sched.Turnaround(), float64(sched.Turnaround())/3600)
	fmt.Printf("resource consumption: %.1f CPU-hours\n", sched.CPUHours())

	// RESSCHEDDL: the same application under a 12-hour deadline, with
	// the resource-conservative hybrid algorithm.
	deadline := resched.Time(12 * resched.Hour)
	dlSched, err := s.Deadline(env, resched.DLRCCPARLambda, deadline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith a 12h deadline (DL_RC_CPAR-lambda): %.1f CPU-hours, finishes at %d s\n",
		dlSched.CPUHours(), dlSched.Completion())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
