// Campaign planning: sweep the reservation load (the tagged fraction
// phi) and watch how turn-around time and scheduling choices respond —
// a condensed, single-binary version of the sensitivity analysis
// behind the paper's Tables 4 and 6.
//
// For each phi the example extracts several reservation-schedule
// instances with each decay method, schedules the same application
// with BD_CPAR, and reports mean turnaround, mean CPU-hours, and the
// historical-average availability estimate q the scheduler worked with.
//
// Run with:
//
//	go run ./examples/campaign
package main

import (
	"fmt"
	"log"
	"math/rand"

	"resched"
)

func main() {
	rng := rand.New(rand.NewSource(21))

	spec := resched.DefaultDAGSpec()
	g, err := resched.GenerateDAG(spec, rng)
	if err != nil {
		log.Fatal(err)
	}
	s, err := resched.NewScheduler(g)
	if err != nil {
		log.Fatal(err)
	}

	lg, err := resched.SynthesizeLog(resched.CTCSP2, 40, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("log: %s, %d jobs, utilization %.1f%%\n\n", lg.Name, len(lg.Jobs), 100*lg.Utilization())

	methods := []resched.ExtractMethod{resched.Linear, resched.Expo, resched.Real}
	fmt.Printf("%-5s %-7s %8s %14s %12s\n", "phi", "method", "mean q", "turnaround [h]", "CPU-hours")
	for _, phi := range []float64{0.1, 0.2, 0.5} {
		for _, method := range methods {
			var sumQ, sumT, sumC float64
			const reps = 6
			for r := 0; r < reps; r++ {
				at := resched.Time((10 + 3*r)) * resched.Day
				ex, err := resched.ExtractReservations(lg, phi, method, at, rng)
				if err != nil {
					log.Fatal(err)
				}
				avail, err := ex.Profile()
				if err != nil {
					log.Fatal(err)
				}
				q, err := resched.HistoricalAvail(ex.Procs, ex.Past, ex.At, resched.Week)
				if err != nil {
					log.Fatal(err)
				}
				env := resched.Env{P: ex.Procs, Now: ex.At, Avail: avail, Q: q}
				sched, err := s.Turnaround(env, resched.BLCPAR, resched.BDCPAR)
				if err != nil {
					log.Fatal(err)
				}
				sumQ += float64(q)
				sumT += float64(sched.Turnaround()) / 3600
				sumC += sched.CPUHours()
			}
			fmt.Printf("%-5.1f %-7v %8.0f %14.2f %12.1f\n",
				phi, method, sumQ/reps, sumT/reps, sumC/reps)
		}
	}
	fmt.Println("\nmore reservations (higher phi) shrink q and stretch turnaround;")
	fmt.Println("the decay method changes how much of that load sits in the near future.")
}
