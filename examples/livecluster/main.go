// Live-cluster effects: the two assumptions the paper's Section 3.2.2
// makes — perfect runtime knowledge and a frozen reservation table —
// relaxed one at a time.
//
// Part 1 sweeps runtime-overestimation factors (users padding their
// walltime requests) and shows the paper's prediction: pessimism
// stretches turnaround and burns paid-but-unused CPU-hours.
//
// Part 2 books the application's reservations while competing users
// keep booking theirs, and compares the three conflict strategies
// (abort / rebook / replan).
//
// Run with:
//
//	go run ./examples/livecluster
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"

	"resched"
)

func main() {
	rng := rand.New(rand.NewSource(17))

	spec := resched.DefaultDAGSpec()
	spec.N = 30
	g, err := resched.GenerateDAG(spec, rng)
	if err != nil {
		log.Fatal(err)
	}

	// A moderately loaded 64-processor cluster: ten random competing
	// reservations over the next day and a half.
	avail := resched.NewProfile(64, 0)
	for k := 0; k < 10; k++ {
		start := resched.Time(rng.Int63n(int64(36 * resched.Hour)))
		dur := resched.Duration(rng.Int63n(int64(8*resched.Hour)) + 3600)
		procs := rng.Intn(32) + 1
		if avail.MinFree(start, start+dur) >= procs {
			if err := avail.Reserve(start, start+dur, procs); err != nil {
				log.Fatal(err)
			}
		}
	}
	env := resched.Env{P: 64, Now: 0, Avail: avail, Q: 40}

	fmt.Println("== pessimistic runtime estimates (Section 3.1's open question) ==")
	fmt.Printf("%-8s %16s %16s %10s\n", "factor", "reserved TAT [h]", "realized TAT [h]", "waste [%]")
	results, err := resched.SweepPessimism(g, env, []float64{1, 1.5, 2, 3, 5})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%-8.1f %16.2f %16.2f %10.1f\n",
			r.Factor,
			float64(r.ReservedTurnaround)/3600,
			float64(r.RealizedTurnaround)/3600,
			100*r.WasteFraction())
	}

	fmt.Println("\n== booking against a changing reservation table (Section 3.2.2) ==")
	comp := resched.DefaultCompetitor(64)
	comp.Rate = 0.5 // one competing reservation arrives every other booking
	fmt.Printf("%-8s %14s %12s %10s %8s\n", "strategy", "turnaround [h]", "vs plan [%]", "conflicts", "replans")
	for _, strat := range []resched.DynamicStrategy{resched.DynamicNaive, resched.DynamicRebook, resched.DynamicReplan} {
		res, err := resched.DynamicRun(g, env, comp, strat, rand.New(rand.NewSource(99)))
		switch {
		case errors.Is(err, resched.ErrDynamicConflict):
			fmt.Printf("%-8v %14s\n", strat, "aborted")
			continue
		case err != nil:
			log.Fatal(err)
		}
		slow := 100 * (float64(res.Schedule.Turnaround())/float64(res.PlannedTurnaround) - 1)
		fmt.Printf("%-8v %14.2f %12.1f %10d %8d\n",
			strat, float64(res.Schedule.Turnaround())/3600, slow, res.Conflicts, res.Replans)
	}
	fmt.Println("\na static plan rarely survives a busy cluster; rebooking or replanning")
	fmt.Println("keeps the application schedulable at the cost of a later finish.")
}
