// Image-processing workflow: the motivating application class of the
// paper's introduction — a workflow of image filters where individual
// filters are themselves data-parallel (Hastings et al., CCGrid 2003).
//
// The example builds a two-stage filter pipeline over a batch of image
// tiles (fan-out / fan-in per tile, then a global mosaic step),
// synthesizes a realistically loaded cluster from the SDSC_DS
// archetype, tags a fraction of its jobs as competing reservations,
// and compares all four RESSCHED bounding methods on the same
// instance.
//
// Run with:
//
//	go run ./examples/imagepipeline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"resched"
)

const tiles = 8

func main() {
	g := buildPipeline()

	// Synthesize a 30-day batch log for a 224-processor cluster and
	// observe its reservation schedule two weeks in, with 20% of jobs
	// holding advance reservations and the realistic ("real") decay.
	rng := rand.New(rand.NewSource(7))
	lg, err := resched.SynthesizeLog(resched.SDSCDS, 30, rng)
	if err != nil {
		log.Fatal(err)
	}
	at := resched.Time(14 * resched.Day)
	ex, err := resched.ExtractReservations(lg, 0.2, resched.Real, at, rng)
	if err != nil {
		log.Fatal(err)
	}
	avail, err := ex.Profile()
	if err != nil {
		log.Fatal(err)
	}
	q, err := resched.HistoricalAvail(ex.Procs, ex.Past, ex.At, resched.Week)
	if err != nil {
		log.Fatal(err)
	}
	env := resched.Env{P: ex.Procs, Now: ex.At, Avail: avail, Q: q}
	fmt.Printf("cluster: %d processors, %d competing reservations ahead, q=%d\n",
		env.P, len(ex.Future), q)

	s, err := resched.NewScheduler(g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-8s  %14s  %10s\n", "bound", "turnaround [h]", "CPU-hours")
	for _, bd := range []resched.BDMethod{resched.BDAll, resched.BDHalf, resched.BDCPA, resched.BDCPAR} {
		sched, err := s.Turnaround(env, resched.BLCPAR, bd)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Verify(env, sched); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %14.2f  %10.1f\n",
			bd, float64(sched.Turnaround())/3600, sched.CPUHours())
	}
	fmt.Println("\nBD_CPAR should deliver near-best turnaround at a fraction of the CPU-hours.")
}

// buildPipeline assembles the workflow: per tile, denoise -> segment
// (with a registration step joining neighbor tiles), then one final
// mosaic task.
func buildPipeline() *resched.Graph {
	g := resched.NewGraph(3*tiles + 2)
	split := g.AddTask(resched.Task{Name: "split", Seq: 10 * resched.Minute, Alpha: 0.5})

	var segment [tiles]int
	for i := 0; i < tiles; i++ {
		denoise := g.AddTask(resched.Task{
			Name:  fmt.Sprintf("denoise%d", i),
			Seq:   90 * resched.Minute,
			Alpha: 0.02, // stencil filters scale almost perfectly
		})
		register := g.AddTask(resched.Task{
			Name:  fmt.Sprintf("register%d", i),
			Seq:   40 * resched.Minute,
			Alpha: 0.15,
		})
		segment[i] = g.AddTask(resched.Task{
			Name:  fmt.Sprintf("segment%d", i),
			Seq:   2 * resched.Hour,
			Alpha: 0.08,
		})
		g.MustAddEdge(split, denoise)
		g.MustAddEdge(denoise, register)
		g.MustAddEdge(register, segment[i])
	}
	// Registration also needs the left neighbor's denoised tile.
	for i := 1; i < tiles; i++ {
		g.MustAddEdge(1+3*(i-1), 2+3*i) // denoise(i-1) -> register(i)
	}
	mosaic := g.AddTask(resched.Task{Name: "mosaic", Seq: 45 * resched.Minute, Alpha: 0.25})
	for i := 0; i < tiles; i++ {
		g.MustAddEdge(segment[i], mosaic)
	}
	return g
}
