package resched

// This file exposes the library's extensions beyond the paper — the
// future-work directions its conclusion names and the assumptions its
// Section 3 makes explicit:
//
//   - blind scheduling through a probe-style batch-system interface
//     (dropping the full-knowledge-of-the-reservation-schedule
//     assumption of Section 3.2.2),
//   - a one-step allocate-and-map scheduler in the spirit of iCASLB,
//     adapted to advance reservations,
//   - multi-site platforms with per-site reservation schedules, speeds,
//     staging delays, and both turnaround and deadline scheduling,
//   - a discrete-event batch-scheduler simulator (FCFS and EASY
//     backfilling) for realistic queued workloads,
//   - booking against a reservation table that changes between
//     requests (naive / rebook / replan strategies),
//   - the pessimistic-runtime-estimate study Section 3.1 defers,
//
// plus ASCII Gantt rendering and JSON schedule interchange.

import (
	"io"
	"math/rand"

	"resched/internal/batchsim"
	"resched/internal/core"
	"resched/internal/dag"
	"resched/internal/dynamic"
	"resched/internal/gantt"
	"resched/internal/multicluster"
	"resched/internal/onestep"
	"resched/internal/pessimism"
	"resched/internal/probe"
	"resched/internal/schedio"
	"resched/internal/workload"
)

// Blind scheduling (package probe).
type (
	// BatchSystem is the probe-and-book dialogue a real batch scheduler
	// exposes when the reservation table is hidden.
	BatchSystem = probe.BatchSystem
	// SimulatedBatch backs BatchSystem with an availability profile.
	SimulatedBatch = probe.SimulatedBatch
	// BlindOptions tunes the blind scheduler (probe budget, q).
	BlindOptions = probe.Options
	// BlindResult carries the schedule and the probe count.
	BlindResult = probe.Result
)

// NewSimulatedBatch wraps a clone of the profile as a BatchSystem.
func NewSimulatedBatch(avail Intervals, now Time) *SimulatedBatch {
	return probe.NewSimulatedBatch(avail, now)
}

// BlindSchedule places the application through a BatchSystem using a
// bounded number of probes per task — the blind counterpart of the
// BL_CPAR_BD_CPAR heuristic.
func BlindSchedule(g *Graph, bs BatchSystem, opt BlindOptions) (*BlindResult, error) {
	return probe.Schedule(g, bs, opt)
}

// One-step scheduling (package onestep).
type (
	// OneStepOptions tunes the iCASLB-style search.
	OneStepOptions = onestep.Options
	// OneStepResult carries the schedule and search statistics.
	OneStepResult = onestep.Result
)

// OneStepSchedule runs the one-step allocate-and-map scheduler against
// the reservation schedule.
func OneStepSchedule(g *Graph, env Env, opt OneStepOptions) (*OneStepResult, error) {
	return onestep.Schedule(g, env, opt)
}

// Multi-site scheduling (package multicluster).
type (
	// Site is one cluster of a multi-site platform.
	Site = multicluster.Cluster
	// MultiEnv is a multi-site scheduling environment.
	MultiEnv = multicluster.Env
	// MultiOptions holds the inter-site staging delay.
	MultiOptions = multicluster.Options
	// MultiSchedule is a schedule with per-task site assignments.
	MultiSchedule = multicluster.Schedule
	// MultiPlacement is one task's (site, processors, interval).
	MultiPlacement = multicluster.Placement
)

// MultiTurnaround schedules the application across a multi-site
// platform, minimizing completion time.
func MultiTurnaround(g *Graph, env MultiEnv, opt MultiOptions) (*MultiSchedule, error) {
	return multicluster.Turnaround(g, env, opt)
}

// MultiDeadline schedules the application backward from a deadline
// across a multi-site platform (aggressive strategy, CPA-bounded
// allocations).
func MultiDeadline(g *Graph, env MultiEnv, opt MultiOptions, deadline Time) (*MultiSchedule, error) {
	return multicluster.Deadline(g, env, opt, deadline)
}

// MultiVerify validates a multi-site schedule against its environment.
func MultiVerify(g *Graph, env MultiEnv, s *MultiSchedule, opt MultiOptions) error {
	return multicluster.Verify(g, env, s, opt)
}

// RenderGantt writes an ASCII Gantt chart of the schedule (width
// columns; <= 0 selects the default).
func RenderGantt(w io.Writer, g *Graph, env Env, s *Schedule, width int) error {
	return gantt.Render(w, g, env, s, width)
}

// Batch-scheduler simulation (package batchsim).
type (
	// BatchPolicy selects FCFS or EASY backfilling.
	BatchPolicy = batchsim.Policy
	// BatchConfig describes the simulated machine.
	BatchConfig = batchsim.Config
	// BatchSimulator is a discrete-event space-sharing batch scheduler
	// with walltime enforcement and advance reservations.
	BatchSimulator = batchsim.Simulator
	// BatchJob and BatchCompleted are the simulator's job records.
	BatchJob       = batchsim.Job
	BatchCompleted = batchsim.Completed
)

// Batch scheduling policies.
const (
	BatchFCFS = batchsim.FCFS
	BatchEASY = batchsim.EASY
)

// NewBatchSimulator constructs a batch-scheduler simulator.
func NewBatchSimulator(cfg BatchConfig) (*BatchSimulator, error) { return batchsim.New(cfg) }

// SynthesizeQueuedLog generates a batch log whose start times come
// from the discrete-event batch simulator (realistic queueing delays)
// instead of idealized FCFS packing.
func SynthesizeQueuedLog(a Archetype, days int, policy BatchPolicy, rng *rand.Rand) (*Log, error) {
	return workload.SynthesizeQueued(a, days, policy, rng)
}

// Dynamic reservation schedules (package dynamic).
type (
	// DynamicStrategy reacts to booking conflicts: naive, rebook, or
	// replan.
	DynamicStrategy = dynamic.Strategy
	// DynamicCompetitor models the competing reservation stream.
	DynamicCompetitor = dynamic.Competitor
	// DynamicResult reports conflicts, replans, and realized schedule.
	DynamicResult = dynamic.Result
)

// Dynamic conflict strategies.
const (
	DynamicNaive  = dynamic.Naive
	DynamicRebook = dynamic.Rebook
	DynamicReplan = dynamic.Replan
)

// ErrDynamicConflict is returned by the naive strategy on the first
// booking conflict.
var ErrDynamicConflict = dynamic.ErrConflict

// DefaultCompetitor sizes a competing-reservation stream for a cluster
// of p processors.
func DefaultCompetitor(p int) DynamicCompetitor { return dynamic.DefaultCompetitor(p) }

// DynamicRun plans against a snapshot and books task by task while
// competitors inject reservations — the paper's relaxed
// static-schedule assumption.
func DynamicRun(g *Graph, env Env, comp DynamicCompetitor, strategy DynamicStrategy, rng *rand.Rand) (*DynamicResult, error) {
	return dynamic.Run(g, env, comp, strategy, rng)
}

// Pessimistic runtime estimates (package pessimism).
type (
	// PessimismResult quantifies one overestimation factor.
	PessimismResult = pessimism.Result
)

// EvaluatePessimism books reservations sized for factor-inflated
// runtimes and replays the true runtimes inside them.
func EvaluatePessimism(g *Graph, env Env, factor float64) (*PessimismResult, error) {
	return pessimism.Evaluate(g, env, factor)
}

// SweepPessimism evaluates several overestimation factors on one
// instance.
func SweepPessimism(g *Graph, env Env, factors []float64) ([]*PessimismResult, error) {
	return pessimism.Sweep(g, env, factors)
}

// Schedule and reservation-schedule interchange (package schedio).

// WriteSchedule serializes a schedule as JSON (one reservation request
// per task), with task names from the graph.
func WriteSchedule(w io.Writer, g *Graph, s *Schedule) error { return schedio.Write(w, g, s) }

// ReadSchedule parses a JSON schedule for the graph; validate it with
// (*Scheduler).Verify.
func ReadSchedule(r io.Reader, g *Graph) (*Schedule, error) { return schedio.Read(r, g) }

// WriteReservations serializes a competing-reservation schedule.
func WriteReservations(w io.Writer, procs int, now Time, rs []Reservation) error {
	return schedio.WriteReservations(w, procs, now, rs)
}

// ReadReservations parses a reservation schedule and checks it is
// capacity-feasible.
func ReadReservations(r io.Reader) (procs int, now Time, rs []Reservation, err error) {
	return schedio.ReadReservations(r)
}

// Interface conformance pins: the facade aliases must stay aligned
// with the implementation packages.
var (
	_ BatchSystem = (*SimulatedBatch)(nil)
	_ *dag.Graph  = (*Graph)(nil)
	_ core.Env    = Env{}
)
