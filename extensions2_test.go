package resched_test

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"resched"
)

func TestBatchSimulatorFacade(t *testing.T) {
	sim, err := resched.NewBatchSimulator(resched.BatchConfig{Procs: 8, Policy: resched.BatchEASY})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.AddReservation(100, 200, 8); err != nil {
		t.Fatal(err)
	}
	done, err := sim.Run([]resched.BatchJob{
		{ID: 1, Submit: 0, Procs: 4, Request: 50, Actual: 50},
		{ID: 2, Submit: 0, Procs: 8, Request: 300, Actual: 250},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Validate(done); err != nil {
		t.Fatal(err)
	}
	if done[1].Start < 200 {
		t.Fatalf("full-machine job ran into the reservation: %+v", done[1])
	}
}

func TestSynthesizeQueuedLogFacade(t *testing.T) {
	lg, err := resched.SynthesizeQueuedLog(resched.SDSCDS, 10, resched.BatchEASY, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDynamicRunFacade(t *testing.T) {
	g := exampleGraph(t)
	env := resched.Env{P: 16, Now: 0, Avail: resched.NewProfile(16, 0), Q: 16}
	comp := resched.DefaultCompetitor(16)
	comp.Rate = 0.5
	res, err := resched.DynamicRun(g, env, comp, resched.DynamicRebook, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil || res.PlannedTurnaround <= 0 {
		t.Fatalf("result %+v", res)
	}
	// The naive strategy surfaces the sentinel error under pressure.
	comp.Rate = 8
	sawConflict := false
	for seed := int64(0); seed < 8 && !sawConflict; seed++ {
		_, err := resched.DynamicRun(g, env, comp, resched.DynamicNaive, rand.New(rand.NewSource(seed)))
		if err != nil {
			if !errors.Is(err, resched.ErrDynamicConflict) {
				t.Fatal(err)
			}
			sawConflict = true
		}
	}
	if !sawConflict {
		t.Fatal("naive strategy never conflicted at rate 8")
	}
}

func TestScheduleIOFacade(t *testing.T) {
	g := exampleGraph(t)
	env := resched.Env{P: 16, Now: 0, Avail: resched.NewProfile(16, 0), Q: 16}
	s, err := resched.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := s.Turnaround(env, resched.BLCPAR, resched.BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := resched.WriteSchedule(&buf, g, sched); err != nil {
		t.Fatal(err)
	}
	back, err := resched.ReadSchedule(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(env, back); err != nil {
		t.Fatal(err)
	}

	rs := []resched.Reservation{{Start: 10, End: 20, Procs: 3}}
	buf.Reset()
	if err := resched.WriteReservations(&buf, 8, 5, rs); err != nil {
		t.Fatal(err)
	}
	procs, now, rs2, err := resched.ReadReservations(&buf)
	if err != nil || procs != 8 || now != 5 || len(rs2) != 1 {
		t.Fatalf("reservations round trip: %d %d %v %v", procs, now, rs2, err)
	}
}

func TestPessimismFacade(t *testing.T) {
	g := exampleGraph(t)
	env := resched.Env{P: 16, Now: 0, Avail: resched.NewProfile(16, 0), Q: 16}
	results, err := resched.SweepPessimism(g, env, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[1].WasteFraction() <= results[0].WasteFraction() {
		t.Fatalf("sweep results: %+v", results)
	}
	if _, err := resched.EvaluatePessimism(g, env, 0.5); err == nil {
		t.Fatal("factor < 1 accepted")
	}
}
