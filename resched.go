// Package resched is a library for scheduling mixed-parallel
// applications — DAGs of data-parallel (malleable) tasks — on a
// homogeneous cluster subject to advance reservations from competing
// users. It reproduces the algorithms and evaluation of:
//
//	Kento Aida and Henri Casanova.
//	"Scheduling Mixed-Parallel Applications with Advance Reservations".
//	HPDC 2008.
//
// Two scheduling problems are supported:
//
//   - RESSCHED — minimize turn-around time: (*Scheduler).Turnaround,
//     parameterized by a bottom-level method (BL_1, BL_ALL, BL_CPA,
//     BL_CPAR) and an allocation bounding method (BD_ALL, BD_HALF,
//     BD_CPA, BD_CPAR).
//   - RESSCHEDDL — meet a deadline: (*Scheduler).Deadline with the
//     aggressive (DL_BD_*), resource-conservative (DL_RC_*), and
//     hybrid lambda algorithms, plus (*Scheduler).TightestDeadline.
//
// The package also exposes the substrates the paper's evaluation is
// built on: Amdahl's-law task models (ExecTime), synthetic DAG
// generation (GenerateDAG, Table 1 of the paper), availability
// profiles over advance reservations (Profile), CPA allocations, and
// batch-workload synthesis plus reservation-schedule extraction
// (SynthesizeLog, ExtractReservations).
//
// # Quick start
//
//	g := resched.NewGraph(3)
//	a := g.AddTask(resched.Task{Name: "prep", Seq: 3600, Alpha: 0.1})
//	b := g.AddTask(resched.Task{Name: "solve", Seq: 7200, Alpha: 0.05})
//	g.MustAddEdge(a, b)
//
//	avail := resched.NewProfile(64, 0)          // 64-processor cluster
//	_ = avail.Reserve(0, 1800, 32)              // competing reservation
//
//	s, _ := resched.NewScheduler(g)
//	env := resched.Env{P: 64, Now: 0, Avail: avail}
//	sched, _ := s.Turnaround(env, resched.BLCPAR, resched.BDCPAR)
//	fmt.Println(sched.Turnaround(), sched.CPUHours())
//
// See the examples/ directory for complete programs and DESIGN.md /
// EXPERIMENTS.md for the reproduction methodology.
package resched

import (
	"io"
	"math/rand"

	"resched/internal/core"
	"resched/internal/cpa"
	"resched/internal/dag"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/profile"
	"resched/internal/workload"
)

// Core types, re-exported from the implementation packages. Aliases
// keep the public surface in one importable package while the
// implementation stays modular.
type (
	// Time is an absolute time in seconds; Duration a span in seconds.
	Time     = model.Time
	Duration = model.Duration

	// Graph is a mixed-parallel application DAG; Task one data-parallel
	// task (sequential time + Amdahl serial fraction).
	Graph = dag.Graph
	Task  = dag.Task

	// Profile is the free-processor step function representing a
	// reservation schedule; Reservation one advance reservation.
	Profile     = profile.Profile
	Reservation = profile.Reservation
	// Intervals is the backend-neutral availability-profile interface:
	// both the flat Profile and the O(log n) TreeProfile satisfy it,
	// and Env.Avail accepts either.
	Intervals = profile.Intervals
	// TreeProfile is the segment-tree profile backend, asymptotically
	// faster on heavily fragmented reservation schedules.
	TreeProfile = profile.TreeProfile

	// Scheduler runs the paper's algorithms for one application.
	Scheduler = core.Scheduler
	// Env is one scheduling environment (cluster, now, reservations,
	// historical average availability).
	Env = core.Env
	// Schedule is one reservation per task; Placement a single task's.
	Schedule  = core.Schedule
	Placement = core.Placement

	// BLMethod and BDMethod parameterize RESSCHED; DLAlgorithm selects
	// a RESSCHEDDL algorithm.
	BLMethod    = core.BLMethod
	BDMethod    = core.BDMethod
	DLAlgorithm = core.DLAlgorithm

	// DAGSpec describes a synthetic application (Table 1 parameters).
	DAGSpec = daggen.Spec

	// Log is a batch workload; Job one batch job; Archetype a synthetic
	// workload calibrated to one of the paper's traces; Extraction a
	// reservation schedule observed at a point in time; ExtractMethod
	// one of the linear/expo/real decay methods.
	Log           = workload.Log
	Job           = workload.Job
	Archetype     = workload.Archetype
	Extraction    = workload.Extraction
	ExtractMethod = workload.Method
)

// Time units, in seconds.
const (
	Second = model.Second
	Minute = model.Minute
	Hour   = model.Hour
	Day    = model.Day
	Week   = model.Week
)

// Bottom-level computation methods (Section 4.2 of the paper).
const (
	BL1    = core.BL1
	BLAll  = core.BLAll
	BLCPA  = core.BLCPA
	BLCPAR = core.BLCPAR
)

// Allocation bounding methods (Section 4.2).
const (
	BDAll  = core.BDAll
	BDHalf = core.BDHalf
	BDCPA  = core.BDCPA
	BDCPAR = core.BDCPAR
)

// Deadline-scheduling algorithms (Section 5).
const (
	DLBDAll          = core.DLBDAll
	DLBDCPA          = core.DLBDCPA
	DLBDCPAR         = core.DLBDCPAR
	DLRCCPA          = core.DLRCCPA
	DLRCCPAR         = core.DLRCCPAR
	DLRCCPARLambda   = core.DLRCCPARLambda
	DLRCBDCPARLambda = core.DLRCBDCPARLambda
)

// Reservation-schedule decay methods (Section 3.2.1).
const (
	Linear = workload.Linear
	Expo   = workload.Expo
	Real   = workload.Real
)

// ErrInfeasible is returned by deadline scheduling when the deadline
// cannot be met.
var ErrInfeasible = core.ErrInfeasible

// Workload archetypes calibrated to the paper's traces (Tables 2, 3).
var (
	CTCSP2     = workload.CTCSP2
	OSCCluster = workload.OSCCluster
	SDSCBlue   = workload.SDSCBlue
	SDSCDS     = workload.SDSCDS
	Grid5000   = workload.Grid5000
)

// NewGraph returns an empty application DAG with capacity for n tasks.
func NewGraph(n int) *Graph { return dag.New(n) }

// NewScheduler builds a Scheduler for the application, validating the
// DAG.
func NewScheduler(g *Graph) (*Scheduler, error) { return core.NewScheduler(g) }

// NewProfile returns a fully-free availability profile for a cluster
// of the given capacity starting at origin.
func NewProfile(capacity int, origin Time) *Profile { return profile.New(capacity, origin) }

// ProfileFromReservations builds an availability profile with the
// given competing reservations committed.
func ProfileFromReservations(capacity int, origin Time, rs []Reservation) (*Profile, error) {
	return profile.FromReservations(capacity, origin, rs)
}

// ExecTime evaluates the Amdahl's-law execution time (in whole
// seconds) of a task with sequential time seq and serial fraction
// alpha on m processors.
func ExecTime(seq Duration, alpha float64, m int) Duration { return model.ExecTime(seq, alpha, m) }

// CPAAllocate runs the CPA allocation phase for a cluster of p
// processors, returning per-task processor counts.
func CPAAllocate(g *Graph, p int) ([]int, error) { return cpa.Allocate(g, p, cpa.StopStringent) }

// DefaultDAGSpec returns the paper's default application configuration
// (Table 1 boldface values).
func DefaultDAGSpec() DAGSpec { return daggen.Default() }

// GenerateDAG builds a random application DAG from the spec.
func GenerateDAG(spec DAGSpec, rng *rand.Rand) (*Graph, error) { return daggen.Generate(spec, rng) }

// SynthesizeLog generates a synthetic batch log of the given length
// for one of the workload archetypes.
func SynthesizeLog(a Archetype, days int, rng *rand.Rand) (*Log, error) {
	return workload.Synthesize(a, days, rng)
}

// ParseSWF reads a workload log in Standard Workload Format.
func ParseSWF(r io.Reader, name string) (*Log, error) { return workload.ParseSWF(r, name) }

// ExtractReservations tags a fraction phi of the log's jobs as advance
// reservations and observes the reservation schedule at time at,
// reshaping it with the given decay method.
func ExtractReservations(lg *Log, phi float64, method ExtractMethod, at Time, rng *rand.Rand) (*Extraction, error) {
	return workload.Extract(lg, phi, method, at, rng)
}

// HistoricalAvail estimates the historical average number of available
// processors from past reservations (the q of the *_CPAR methods).
func HistoricalAvail(p int, past []Reservation, now Time, window Duration) (int, error) {
	return core.HistoricalAvail(p, past, now, window)
}

// ParseBL, ParseBD, and ParseDL resolve algorithm names as printed in
// the paper (e.g. "BD_CPAR", "DL_RC_CPAR-l").
func ParseBL(name string) (BLMethod, error)    { return core.ParseBL(name) }
func ParseBD(name string) (BDMethod, error)    { return core.ParseBD(name) }
func ParseDL(name string) (DLAlgorithm, error) { return core.ParseDL(name) }
