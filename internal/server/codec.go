package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"resched/internal/api"
)

// Response and request codecs. Every response is staged in a pooled
// buffer before the status line goes out: a value that fails to encode
// becomes a clean 500 instead of a half-written 200 (the old
// stream-encoder bug), the handler can set Content-Length, and neither
// the JSON encoder nor its buffer is allocated per request.
//
// The hot-path messages additionally negotiate the compact binary
// codec (api.ContentTypeBinary): a request body in that Content-Type
// is decoded binary, and a request whose Accept names it gets its
// ScheduleResponse encoded binary. Error envelopes are always JSON —
// they are off the hot path, and a uniform error shape is worth more
// than saved bytes there.

// encBuf pairs a reusable staging buffer with a JSON encoder bound to
// it; pooling the pair keeps the encoder's internal state out of the
// per-request allocation count.
type encBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

// maxPooledBuf caps the staging buffers kept by the pools; a rare
// giant response (a full profile listing) should not pin its buffer
// forever.
const maxPooledBuf = 1 << 20

// encodeFailureBody is the fallback 500 envelope, pre-encoded so the
// failure path cannot itself fail.
const encodeFailureBody = `{"error":"internal: response encoding failed"}` + "\n"

// writeJSON stages v in a pooled buffer and writes it with an exact
// Content-Length. Encoding failures are detected before any byte
// reaches the wire, so they turn into a clean 500; write failures
// (client gone) can only be logged.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	e := s.encPool.Get().(*encBuf)
	defer s.putEncBuf(e)
	e.buf.Reset()
	if err := e.enc.Encode(v); err != nil {
		s.log.Warn("encoding response", "status", code, "err", err)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(encodeFailureBody)))
		w.WriteHeader(http.StatusInternalServerError)
		if _, werr := io.WriteString(w, encodeFailureBody); werr != nil {
			s.log.Warn("writing error response", "err", werr)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(e.buf.Len()))
	w.WriteHeader(code)
	if _, err := w.Write(e.buf.Bytes()); err != nil {
		s.log.Warn("writing response", "status", code, "err", err)
	}
}

// putEncBuf returns a staging pair to the pool unless its buffer has
// grown past the retention cap.
func (s *Server) putEncBuf(e *encBuf) {
	if e.buf.Cap() <= maxPooledBuf {
		s.encPool.Put(e)
	}
}

// wantsBinary reports whether the request negotiated a binary
// response via Accept.
func wantsBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), api.ContentTypeBinary)
}

// hasBinaryBody reports whether the request body is in the binary
// codec.
func hasBinaryBody(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == api.ContentTypeBinary || strings.HasPrefix(ct, api.ContentTypeBinary+";")
}

// writeScheduleResponse writes the hot-path response in the
// negotiated codec.
func (s *Server) writeScheduleResponse(w http.ResponseWriter, bin bool, code int, resp *api.ScheduleResponse) {
	if !bin {
		s.writeJSON(w, code, resp)
		return
	}
	bp := s.binPool.Get().(*[]byte)
	defer s.binPool.Put(bp)
	b := resp.AppendBinary((*bp)[:0])
	*bp = b[:0] // keep the (possibly regrown) backing array pooled
	w.Header().Set("Content-Type", api.ContentTypeBinary)
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(code)
	if _, err := w.Write(b); err != nil {
		s.log.Warn("writing response", "status", code, "err", err)
	}
}

// decodeScheduleRequest reads the size-limited body in whichever codec
// the request declares, counting the codec mix. On failure the error
// response has been written and false is returned.
func (s *Server) decodeScheduleRequest(w http.ResponseWriter, r *http.Request, req *api.ScheduleRequest) bool {
	if !hasBinaryBody(r) {
		if !s.decodeJSON(w, r, req) {
			return false
		}
		s.metrics.codecJSON.Add(1)
		return true
	}
	e := s.encPool.Get().(*encBuf)
	defer s.putEncBuf(e)
	e.buf.Reset()
	if _, err := e.buf.ReadFrom(r.Body); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeJSON(w, http.StatusRequestEntityTooLarge,
				api.Error{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: "reading body: " + err.Error()})
		return false
	}
	// UnmarshalBinary copies what it keeps (the DAG blob), so the
	// pooled buffer is free for reuse the moment this returns.
	if err := req.UnmarshalBinary(e.buf.Bytes()); err != nil {
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: err.Error()})
		return false
	}
	s.metrics.codecBinary.Add(1)
	return true
}
