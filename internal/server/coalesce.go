package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"resched/internal/api"
	"resched/internal/coalesce"
	"resched/internal/core"
	"resched/internal/profile"
	"resched/internal/resbook"
)

// Coalesced serving path of POST /v1/schedule. Concurrent requests
// landing within the coalescing window are parsed individually (so a
// bad job 400s alone before the group even forms) and then served by
// one group leader: one book snapshot, each job fitted in arrival
// order against the working profile — job i+1 seeing job i's staged
// placements, like a batch request — and one multi-job optimistic
// commit. The group holds a single worker slot, so a group of N costs
// the pool what one request used to.

// coalescedJob is the payload a /v1/schedule call brings to its group.
type coalescedJob struct {
	job    batchJob
	commit bool
}

// scheduleOutcome is what the group leader delivers to each waiter:
// either a schedule response or an error envelope, with the status
// code either way. The waiter's own handler writes it in the codec it
// negotiated.
type scheduleOutcome struct {
	code int
	resp *api.ScheduleResponse
	err  api.Error // set when resp is nil
}

// scheduleCoalesced joins the open group and writes whatever outcome
// the leader delivers. Do only fails when this caller's own context
// ends first or the coalescer is draining.
func (s *Server) scheduleCoalesced(w http.ResponseWriter, r *http.Request, job batchJob, commit, bin bool) {
	v, err := s.coal.Do(r.Context(), &coalescedJob{job: job, commit: commit})
	if err != nil {
		if errors.Is(err, coalesce.ErrClosed) {
			s.writeJSON(w, http.StatusServiceUnavailable, api.Error{Error: "server shutting down"})
			return
		}
		s.writeSchedulingError(w, r, err)
		return
	}
	out := v.(*scheduleOutcome)
	if out.resp != nil {
		s.writeScheduleResponse(w, bin, out.code, out.resp)
		return
	}
	if out.code == http.StatusGatewayTimeout {
		// The timeout metric is counted here, on the response path, so a
		// waiter whose Do call raced its own deadline is counted exactly
		// once (writeSchedulingError covers the other ordering).
		s.metrics.timeouts.Add(1)
	}
	s.writeJSON(w, out.code, out.err)
}

// runCoalescedGroup serves one sealed group. It is the coalesced
// counterpart of runCommitLoop and handleScheduleBatch: compute every
// live waiter's schedule against one snapshot, deliver dry-run and
// failed jobs immediately, and commit the rest through one stamp
// check, recomputing only the still-unanswered waiters on conflict.
func (s *Server) runCoalescedGroup(g *coalesce.Group) {
	// One worker slot for the whole group; its computations run
	// sequentially on this leader goroutine.
	select {
	case s.sem <- struct{}{}:
	case <-g.Context().Done():
		return // every caller is gone; nothing to serve
	}
	defer s.releaseWorker()

	ws := g.Waiters()
	done := make([]bool, len(ws))
	retries := 0
	prof := s.profPool.Get().(*profile.Profile)
	defer s.profPool.Put(prof)

	deliver := func(i int, out *scheduleOutcome) {
		ws[i].Deliver(out)
		done[i] = true
	}
	fail := func(i, code int, msg string) {
		deliver(i, &scheduleOutcome{code: code, err: api.Error{Error: msg}})
	}

	for {
		if g.Context().Err() != nil {
			return // every remaining waiter abandoned the group
		}
		snap := s.book.SnapshotInto(prof)
		var reqs []resbook.Request
		perJob := make([]int, len(ws))
		resps := make([]*api.ScheduleResponse, len(ws))
		s.withAvail(snap.Avail, func(avail profile.Intervals) {
			for i, w := range ws {
				if done[i] {
					continue
				}
				if w.Canceled() {
					done[i] = true // Do already returned ctx.Err()
					continue
				}
				cj := w.Payload().(*coalescedJob)
				job := cj.job
				env := core.Env{P: s.book.Capacity(), Now: job.now, Avail: avail, Q: job.q}
				sched, err := job.sch.TurnaroundCtx(w.Context(), env, job.bl, job.bd)
				if err != nil {
					switch {
					case errors.Is(err, core.ErrInfeasible):
						fail(i, http.StatusUnprocessableEntity, err.Error())
					case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
						fail(i, http.StatusGatewayTimeout, "scheduling timed out: "+err.Error())
					default:
						fail(i, http.StatusBadRequest, err.Error())
					}
					continue
				}
				resp := buildScheduleResponse(job.algo, snap.Version, sched, 0, retries)
				if !cj.commit {
					deliver(i, &scheduleOutcome{code: http.StatusOK, resp: &resp})
					continue
				}
				// Groupmates must see this job's placements: stage them
				// into the working profile. On a staging failure only
				// this job is unwound and failed.
				jobStart := len(reqs)
				var stageErr error
				for _, pl := range sched.Tasks {
					if pl.End <= pl.Start {
						continue
					}
					if err := avail.Reserve(pl.Start, pl.End, pl.Procs); err != nil {
						stageErr = err
						break
					}
					reqs = append(reqs, resbook.Request{Start: pl.Start, End: pl.End, Procs: pl.Procs})
				}
				if stageErr != nil {
					// A schedule that does not fit the snapshot it was
					// computed from is an internal fault; undo the pieces
					// already staged so groupmates see a clean profile.
					for _, q := range reqs[jobStart:] {
						if uerr := avail.Unreserve(q.Start, q.End, q.Procs); uerr != nil {
							s.log.Warn("unwinding staged placement", "err", uerr)
						}
					}
					reqs = reqs[:jobStart]
					fail(i, http.StatusInternalServerError, "staging placements: "+stageErr.Error())
					continue
				}
				perJob[i] = len(reqs) - jobStart
				resps[i] = &resp
			}
		})
		pending := false
		for i := range ws {
			if !done[i] {
				pending = true
				break
			}
		}
		if !pending {
			return // all waiters answered (dry-run, error, or gone)
		}
		if s.beforeCommit != nil {
			s.beforeCommit()
		}
		booked, err := s.book.Commit(snap, reqs)
		if err == nil {
			version := s.book.Version()
			k := 0
			for i := range ws {
				if done[i] {
					continue
				}
				resp := resps[i]
				resp.Version = version
				resp.Committed = true
				resp.Retries = retries
				for n := 0; n < perJob[i]; n++ {
					resp.ReservationIDs = append(resp.ReservationIDs, booked[k].ID)
					k++
				}
				deliver(i, &scheduleOutcome{code: http.StatusOK, resp: resp})
			}
			return
		}
		if errors.Is(err, resbook.ErrStale) {
			retries++
			s.metrics.retries.Add(1)
			if retries > s.cfg.MaxRetries {
				msg := fmt.Sprintf("gave up after %d version-conflict retries", retries-1)
				for i := range ws {
					if !done[i] {
						s.metrics.conflicts.Add(1)
						fail(i, http.StatusConflict, msg)
					}
				}
				return
			}
			continue
		}
		for i := range ws {
			if !done[i] {
				fail(i, http.StatusInternalServerError, "commit failed: "+err.Error())
			}
		}
		return
	}
}
