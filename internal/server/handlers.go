package server

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"

	"resched/internal/api"
	"resched/internal/core"
	"resched/internal/dagio"
	"resched/internal/model"
	"resched/internal/profile"
	"resched/internal/resbook"
)

// computeFn runs one scheduling algorithm against an environment
// snapshot, returning the schedule and (for deadline requests) the
// met deadline.
type computeFn func(env core.Env) (*core.Schedule, model.Time, error)

// resolveNow validates and defaults the request's scheduling time.
func (s *Server) resolveNow(reqNow model.Time) (model.Time, error) {
	origin := s.book.Origin()
	if reqNow == 0 {
		return origin, nil
	}
	if reqNow < origin {
		return 0, fmt.Errorf("now %d before the book's origin %d", reqNow, origin)
	}
	return reqNow, nil
}

// withAvail picks the scheduling backend for a snapshot's availability
// handle and lends it to fn. Persistent handles (the default book
// backend) and small flat profiles pass through unchanged — a
// persistent snapshot already answers probes in O(log n) with zero
// copying, which is what shrank this inversion: the pooled tree reload
// survives only for large *flat* snapshots (the oracle-backend book),
// where the O(log n) probes pay for the rebuild. The borrow ends when
// fn returns — the schedulers work on their own copy, so nothing may
// retain a pooled backend afterwards (the poolescape discipline:
// pooled scratch never outlives the lending scope).
func (s *Server) withAvail(av profile.Intervals, fn func(profile.Intervals)) {
	if p, ok := av.(*profile.Profile); ok && p.NumSegments() >= profile.AutoTreeThreshold {
		tree := s.treePool.Get().(*profile.TreeProfile)
		tree.LoadProfile(p)
		fn(tree)
		s.treePool.Put(tree)
		return
	}
	fn(av)
}

// buildScheduleResponse assembles the response shared by the solo,
// batch, and coalesced serving paths.
func buildScheduleResponse(algo string, version uint64, sched *core.Schedule, deadline model.Time, retries int) api.ScheduleResponse {
	resp := api.ScheduleResponse{
		Algorithm:  algo,
		Version:    version,
		Now:        sched.Now,
		Completion: sched.Completion(),
		Turnaround: sched.Turnaround(),
		CPUHours:   sched.CPUHours(),
		Deadline:   deadline,
		Retries:    retries,
		Tasks:      make([]api.Placement, 0, len(sched.Tasks)),
	}
	for t, pl := range sched.Tasks {
		resp.Tasks = append(resp.Tasks, api.Placement{Task: t, Procs: pl.Procs, Start: pl.Start, End: pl.End})
	}
	return resp
}

// runCommitLoop is the shared serving path of /v1/schedule and
// /v1/deadline: snapshot the book, compute, and — when the request
// asks to commit — book the reservations with a stamp check,
// recomputing on conflict up to the configured retry budget. bin
// selects the response codec negotiated via Accept.
func (s *Server) runCommitLoop(w http.ResponseWriter, r *http.Request, bin bool, algo string, now model.Time, q int, commit bool, compute computeFn) {
	ctx := r.Context()
	retries := 0
	// The snapshot profile is pooled: SnapshotInto reuses its backing
	// arrays, and nothing retains it once compute returns (schedulers
	// work on their own copy), so it goes back to the pool on exit.
	prof := s.profPool.Get().(*profile.Profile)
	defer s.profPool.Put(prof)
	for {
		if err := ctx.Err(); err != nil {
			s.writeSchedulingError(w, r, err)
			return
		}
		snap := s.book.SnapshotInto(prof)
		var sched *core.Schedule
		var deadline model.Time
		var err error
		s.withAvail(snap.Avail, func(avail profile.Intervals) {
			env := core.Env{P: s.book.Capacity(), Now: now, Avail: avail, Q: q}
			sched, deadline, err = compute(env)
		})
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) {
				s.writeJSON(w, http.StatusUnprocessableEntity, api.Error{Error: err.Error()})
				return
			}
			s.writeSchedulingError(w, r, err)
			return
		}

		resp := buildScheduleResponse(algo, snap.Version, sched, deadline, retries)
		if !commit {
			s.writeScheduleResponse(w, bin, http.StatusOK, &resp)
			return
		}

		reqs := make([]resbook.Request, 0, len(sched.Tasks))
		for _, pl := range sched.Tasks {
			if pl.End > pl.Start {
				reqs = append(reqs, resbook.Request{Start: pl.Start, End: pl.End, Procs: pl.Procs})
			}
		}
		if s.beforeCommit != nil {
			s.beforeCommit()
		}
		booked, err := s.book.Commit(snap, reqs)
		if err == nil {
			resp.Version = s.book.Version()
			resp.Committed = true
			resp.Retries = retries
			for _, b := range booked {
				resp.ReservationIDs = append(resp.ReservationIDs, b.ID)
			}
			s.writeScheduleResponse(w, bin, http.StatusOK, &resp)
			return
		}
		if errors.Is(err, resbook.ErrStale) {
			retries++
			s.metrics.retries.Add(1)
			if retries > s.cfg.MaxRetries {
				s.metrics.conflicts.Add(1)
				s.writeJSON(w, http.StatusConflict,
					api.Error{Error: fmt.Sprintf("gave up after %d version-conflict retries", retries-1)})
				return
			}
			continue
		}
		// A schedule computed against its own snapshot cannot fail to
		// commit at that version; anything else is an internal fault.
		s.writeJSON(w, http.StatusInternalServerError, api.Error{Error: "commit failed: " + err.Error()})
		return
	}
}

// handleSchedule serves POST /v1/schedule. Parsing and validation go
// through parseBatchJob — the same machinery as /v1/schedule/batch —
// so a coalesced request sees byte-identical parse errors and, because
// parsing happens before the group forms, a bad job 400s alone without
// touching its groupmates.
func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	bin := wantsBinary(r)
	var req api.ScheduleRequest
	if !s.decodeScheduleRequest(w, r, &req) {
		return
	}
	job, err := s.parseBatchJob(req)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: err.Error()})
		return
	}
	if s.coal != nil {
		s.scheduleCoalesced(w, r, job, req.Commit, bin)
		return
	}
	if !s.acquireWorker(w, r) {
		return
	}
	defer s.releaseWorker()

	s.runCommitLoop(w, r, bin, job.algo, job.now, job.q, req.Commit,
		func(env core.Env) (*core.Schedule, model.Time, error) {
			sched, err := job.sch.TurnaroundCtx(r.Context(), env, job.bl, job.bd)
			return sched, 0, err
		})
}

// batchJob is one parsed and validated job of a batch request.
type batchJob struct {
	sch  *core.Scheduler
	bl   core.BLMethod
	bd   core.BDMethod
	now  model.Time
	q    int
	algo string
}

// parseBatchJob validates one job of a batch request up front, so a
// malformed job fails the whole batch with 400 before any scheduling
// work happens.
func (s *Server) parseBatchJob(req api.ScheduleRequest) (batchJob, error) {
	g, err := dagio.Read(bytes.NewReader(req.DAG))
	if err != nil {
		return batchJob{}, err
	}
	bl := core.BLCPAR
	if req.BL != "" {
		if bl, err = core.ParseBL(req.BL); err != nil {
			return batchJob{}, err
		}
	}
	bd := core.BDCPAR
	if req.BD != "" {
		if bd, err = core.ParseBD(req.BD); err != nil {
			return batchJob{}, err
		}
	}
	now, err := s.resolveNow(req.Now)
	if err != nil {
		return batchJob{}, err
	}
	sch, err := core.NewScheduler(g)
	if err != nil {
		return batchJob{}, err
	}
	sch.SetCPAWorkers(s.cfg.CPAWorkers)
	return batchJob{sch: sch, bl: bl, bd: bd, now: now, q: req.Q,
		algo: fmt.Sprintf("%s_%s", bl, bd)}, nil
}

// handleScheduleBatch serves POST /v1/schedule/batch: N applications
// scheduled against one snapshot, where job i+1 sees job i's
// placements, committed (when requested) through a single optimistic
// commit — one snapshot, one stamp check, one version bump, instead of
// N commit loops contending with each other.
func (s *Server) handleScheduleBatch(w http.ResponseWriter, r *http.Request) {
	var req api.BatchScheduleRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Jobs) == 0 {
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: "batch contains no jobs"})
		return
	}
	jobs := make([]batchJob, len(req.Jobs))
	for i, jr := range req.Jobs {
		job, err := s.parseBatchJob(jr)
		if err != nil {
			s.writeJSON(w, http.StatusBadRequest, api.Error{Error: fmt.Sprintf("job %d: %s", i, err)})
			return
		}
		jobs[i] = job
	}
	if !s.acquireWorker(w, r) {
		return
	}
	defer s.releaseWorker()

	ctx := r.Context()
	retries := 0
	prof := s.profPool.Get().(*profile.Profile)
	defer s.profPool.Put(prof)
	for {
		if err := ctx.Err(); err != nil {
			s.writeSchedulingError(w, r, err)
			return
		}
		snap := s.book.SnapshotInto(prof)
		resp := api.BatchScheduleResponse{
			Version: snap.Version,
			Retries: retries,
			Jobs:    make([]api.ScheduleResponse, 0, len(jobs)),
		}
		var reqs []resbook.Request
		perJob := make([]int, len(jobs)) // reservation count per job, for ID fan-out
		failed := false
		s.withAvail(snap.Avail, func(avail profile.Intervals) {
			for i, job := range jobs {
				env := core.Env{P: s.book.Capacity(), Now: job.now, Avail: avail, Q: job.q}
				sched, err := job.sch.TurnaroundCtx(ctx, env, job.bl, job.bd)
				if err != nil {
					if errors.Is(err, core.ErrInfeasible) {
						s.writeJSON(w, http.StatusUnprocessableEntity,
							api.Error{Error: fmt.Sprintf("job %d: %s", i, err)})
					} else {
						s.writeSchedulingError(w, r, fmt.Errorf("job %d: %w", i, err))
					}
					failed = true
					return
				}
				jr := api.ScheduleResponse{
					Algorithm:  job.algo,
					Version:    snap.Version,
					Now:        sched.Now,
					Completion: sched.Completion(),
					Turnaround: sched.Turnaround(),
					CPUHours:   sched.CPUHours(),
					Tasks:      make([]api.Placement, 0, len(sched.Tasks)),
				}
				for t, pl := range sched.Tasks {
					jr.Tasks = append(jr.Tasks, api.Placement{Task: t, Procs: pl.Procs, Start: pl.Start, End: pl.End})
				}
				// Later jobs must see this job's placements: reserve
				// them into the working snapshot before moving on.
				for _, pl := range sched.Tasks {
					if pl.End <= pl.Start {
						continue
					}
					if err := avail.Reserve(pl.Start, pl.End, pl.Procs); err != nil {
						// A schedule that does not fit the snapshot it
						// was computed from is an internal fault.
						s.writeJSON(w, http.StatusInternalServerError,
							api.Error{Error: fmt.Sprintf("job %d: staging placements: %s", i, err)})
						failed = true
						return
					}
					reqs = append(reqs, resbook.Request{Start: pl.Start, End: pl.End, Procs: pl.Procs})
					perJob[i]++
				}
				resp.Jobs = append(resp.Jobs, jr)
			}
		})
		if failed {
			return
		}
		if !req.Commit {
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
		if s.beforeCommit != nil {
			s.beforeCommit()
		}
		booked, err := s.book.Commit(snap, reqs)
		if err == nil {
			resp.Version = s.book.Version()
			resp.Committed = true
			resp.Retries = retries
			k := 0
			for i := range resp.Jobs {
				resp.Jobs[i].Version = resp.Version
				resp.Jobs[i].Committed = true
				for n := 0; n < perJob[i]; n++ {
					resp.Jobs[i].ReservationIDs = append(resp.Jobs[i].ReservationIDs, booked[k].ID)
					k++
				}
			}
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
		if errors.Is(err, resbook.ErrStale) {
			retries++
			s.metrics.retries.Add(1)
			if retries > s.cfg.MaxRetries {
				s.metrics.conflicts.Add(1)
				s.writeJSON(w, http.StatusConflict,
					api.Error{Error: fmt.Sprintf("gave up after %d version-conflict retries", retries-1)})
				return
			}
			continue
		}
		s.writeJSON(w, http.StatusInternalServerError, api.Error{Error: "commit failed: " + err.Error()})
		return
	}
}

func (s *Server) handleDeadline(w http.ResponseWriter, r *http.Request) {
	var req api.DeadlineRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	g, err := dagio.Read(bytes.NewReader(req.DAG))
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: err.Error()})
		return
	}
	algo := core.DLRCCPARLambda
	if req.Algo != "" {
		if algo, err = core.ParseDL(req.Algo); err != nil {
			s.writeJSON(w, http.StatusBadRequest, api.Error{Error: err.Error()})
			return
		}
	}
	if !req.Tightest && req.Deadline <= 0 {
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: "deadline (seconds after now) required unless tightest is set"})
		return
	}
	now, err := s.resolveNow(req.Now)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: err.Error()})
		return
	}
	sch, err := core.NewScheduler(g)
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: err.Error()})
		return
	}
	sch.SetCPAWorkers(s.cfg.CPAWorkers)
	if !s.acquireWorker(w, r) {
		return
	}
	defer s.releaseWorker()

	s.runCommitLoop(w, r, wantsBinary(r), algo.String(), now, req.Q, req.Commit,
		func(env core.Env) (*core.Schedule, model.Time, error) {
			if req.Tightest {
				k, sched, err := sch.TightestDeadlineCtx(r.Context(), env, algo)
				return sched, k, err
			}
			k := env.Now + req.Deadline
			sched, err := sch.DeadlineCtx(r.Context(), env, algo, k)
			return sched, k, err
		})
}

func toAPIReservation(r resbook.Reservation, version uint64) api.Reservation {
	return api.Reservation{
		ID:      r.ID,
		Start:   r.Start,
		End:     r.End,
		Procs:   r.Procs,
		Status:  r.Status.String(),
		Version: version,
	}
}

func (s *Server) handleReservationCreate(w http.ResponseWriter, r *http.Request) {
	var req api.ReservationRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	res, err := s.book.Reserve(req.Start, req.End, req.Procs)
	if err != nil {
		// Either malformed (empty interval, bad procs) or a genuine
		// capacity conflict; both leave the book untouched.
		s.writeJSON(w, http.StatusConflict, api.Error{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusCreated, toAPIReservation(res, s.book.Version()))
}

func (s *Server) handleReservationList(w http.ResponseWriter, r *http.Request) {
	list := s.book.List()
	out := make([]api.Reservation, 0, len(list))
	for _, res := range list {
		out = append(out, toAPIReservation(res, 0))
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReservationGet(w http.ResponseWriter, r *http.Request) {
	res, ok := s.book.Get(r.PathValue("id"))
	if !ok {
		s.writeJSON(w, http.StatusNotFound, api.Error{Error: "no such reservation"})
		return
	}
	s.writeJSON(w, http.StatusOK, toAPIReservation(res, 0))
}

// writeLifecycleError maps book lifecycle failures to status codes.
func (s *Server) writeLifecycleError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, resbook.ErrNotFound):
		s.writeJSON(w, http.StatusNotFound, api.Error{Error: err.Error()})
	case errors.Is(err, resbook.ErrReleased):
		s.writeJSON(w, http.StatusConflict, api.Error{Error: err.Error()})
	default:
		s.writeJSON(w, http.StatusInternalServerError, api.Error{Error: err.Error()})
	}
}

func (s *Server) handleReservationActivate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.book.Activate(id); err != nil {
		s.writeLifecycleError(w, err)
		return
	}
	res, _ := s.book.Get(id)
	s.writeJSON(w, http.StatusOK, toAPIReservation(res, s.book.Version()))
}

func (s *Server) handleReservationDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.book.Release(id); err != nil {
		s.writeLifecycleError(w, err)
		return
	}
	res, _ := s.book.Get(id)
	s.writeJSON(w, http.StatusOK, toAPIReservation(res, s.book.Version()))
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	snap := s.book.Snapshot()
	resp := api.ProfileResponse{
		Capacity: snap.Avail.Capacity(),
		Origin:   snap.Avail.Origin(),
		Version:  snap.Version,
	}
	for _, seg := range snap.Avail.Segments() {
		resp.Segments = append(resp.Segments, api.Segment{Start: seg.Start, Free: seg.Free})
	}
	for _, res := range s.book.List() {
		resp.Reservations = append(resp.Reservations, toAPIReservation(res, 0))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	resp := s.metrics.snapshot(s.book.Version())
	if s.engine != nil {
		es := s.engine.Stats()
		resp.Engine = &api.EngineStats{
			Now:                    es.Now,
			QueueDepth:             es.QueueDepth,
			Arrivals:               es.Arrivals,
			Placements:             es.Placements,
			Backfills:              es.Backfills,
			StarvationReservations: es.StarvationReservations,
			Activations:            es.Activations,
			Completions:            es.Completions,
			Ticks:                  es.Ticks,
			Forecasts:              es.Forecasts,
			ForecastAvgMicros:      es.ForecastAvgMicros,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}
