package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resched/internal/api"
	"resched/internal/server"
)

// coalescedConfig turns on request coalescing with a window generous
// enough that requests fired together land in one group even on a
// loaded CI machine.
func coalescedConfig() server.Config {
	return server.Config{CoalesceWindow: 300 * time.Millisecond, CoalesceMaxBatch: 8}
}

// TestCoalescedSingleWaiter: a lone request through the coalescer —
// the common idle-server case — must behave exactly like the direct
// path: same response shape, same commit effect.
func TestCoalescedSingleWaiter(t *testing.T) {
	ts, srv, book := newTestServer(t, 32, coalescedConfig())
	defer srv.Close()
	dagJSON := testDAGJSON(t, 3)

	resp, raw := postJSON(t, ts.URL+"/v1/schedule", api.ScheduleRequest{DAG: dagJSON, Q: 16, Commit: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	var out api.ScheduleResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Committed || len(out.ReservationIDs) != 5 || out.Retries != 0 {
		t.Errorf("coalesced single-waiter commit: %+v", out)
	}
	if book.Version() != 1 {
		t.Errorf("book version %d, want 1", book.Version())
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Parse errors must fail alone, before any group forms.
	resp, _ = postJSON(t, ts.URL+"/v1/schedule", api.ScheduleRequest{DAG: json.RawMessage(`{"bad":true}`)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed DAG: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestCoalescedMixedCommitDryRun: a commit and a dry run sharing one
// group must each get their own outcome — one booked, one not — from
// a single snapshot epoch.
func TestCoalescedMixedCommitDryRun(t *testing.T) {
	ts, srv, book := newTestServer(t, 64, coalescedConfig())
	defer srv.Close()
	dagJSON := testDAGJSON(t, 3)

	var wg sync.WaitGroup
	outs := make([]api.ScheduleResponse, 2)
	codes := make([]int, 2)
	for i, commit := range []bool{true, false} {
		wg.Add(1)
		go func(i int, commit bool) {
			defer wg.Done()
			resp, raw := postJSON(t, ts.URL+"/v1/schedule",
				api.ScheduleRequest{DAG: dagJSON, Q: 16, Commit: commit})
			codes[i] = resp.StatusCode
			_ = json.Unmarshal(raw, &outs[i])
		}(i, commit)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d", i, code)
		}
	}
	if !outs[0].Committed || len(outs[0].ReservationIDs) != 5 {
		t.Errorf("commit waiter: %+v", outs[0])
	}
	if outs[1].Committed || len(outs[1].ReservationIDs) != 0 {
		t.Errorf("dry-run waiter: %+v", outs[1])
	}
	if book.Version() != 1 {
		t.Errorf("book version %d, want exactly 1 commit", book.Version())
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	var m map[string]any
	getJSON(t, ts.URL+"/debug/metrics", &m)
	if g, _ := m["coalesced_groups"].(float64); g < 1 {
		t.Errorf("coalesced_groups %v, want >= 1", m["coalesced_groups"])
	}
}

// TestCoalescedCancellationMidGroup: one caller abandoning its request
// while the group is still open must not disturb its groupmate.
func TestCoalescedCancellationMidGroup(t *testing.T) {
	ts, srv, book := newTestServer(t, 64, server.Config{
		CoalesceWindow:   500 * time.Millisecond,
		CoalesceMaxBatch: 8,
	})
	defer srv.Close()
	dagJSON := testDAGJSON(t, 3)
	payload, err := json.Marshal(api.ScheduleRequest{DAG: dagJSON, Q: 16, Commit: true})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	doomed := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/schedule", bytes.NewReader(payload))
		req.Header.Set("Content-Type", "application/json")
		_, err := http.DefaultClient.Do(req)
		doomed <- err
	}()
	ok := make(chan int, 1)
	go func() {
		resp, raw := postJSON(t, ts.URL+"/v1/schedule",
			api.ScheduleRequest{DAG: dagJSON, Q: 16, Commit: true})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("surviving waiter: HTTP %d: %s", resp.StatusCode, raw)
		}
		ok <- resp.StatusCode
	}()

	time.Sleep(100 * time.Millisecond) // both enqueued in the open group
	cancel()
	if err := <-doomed; err == nil {
		t.Error("canceled caller got a response, want a context error")
	}
	if code := <-ok; code == http.StatusOK {
		// The survivor committed; cancellation cost it nothing.
		if book.Version() < 1 {
			t.Errorf("book version %d, want >= 1", book.Version())
		}
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescedConflictRetry: a version bump between snapshot and
// commit must send the group around the optimistic loop, and the
// eventual success reports the retry.
func TestCoalescedConflictRetry(t *testing.T) {
	ts, srv, book := newTestServer(t, 64, coalescedConfig())
	defer srv.Close()
	var fired atomic.Bool
	srv.SetBeforeCommitHook(func() {
		if fired.CompareAndSwap(false, true) {
			if _, err := book.Reserve(0, 60, 1); err != nil {
				t.Errorf("conflicting reserve: %v", err)
			}
		}
	})

	resp, raw := postJSON(t, ts.URL+"/v1/schedule",
		api.ScheduleRequest{DAG: testDAGJSON(t, 3), Q: 16, Commit: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}
	var out api.ScheduleResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Committed || out.Retries != 1 {
		t.Errorf("committed=%v retries=%d, want committed after exactly 1 retry", out.Committed, out.Retries)
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// postBinary sends a ScheduleRequest in the binary codec, asking for a
// binary response.
func postBinary(t *testing.T, url string, req api.ScheduleRequest) (*http.Response, []byte) {
	t.Helper()
	hr, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(req.AppendBinary(nil)))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", api.ContentTypeBinary)
	hr.Header.Set("Accept", api.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// TestBinaryCodecNegotiation: the binary request/response path must
// produce the same schedule as JSON, announce its Content-Type, and
// count both codecs in the metrics.
func TestBinaryCodecNegotiation(t *testing.T) {
	ts, _, _ := newTestServer(t, 32, server.Config{})
	dagJSON := testDAGJSON(t, 3)
	req := api.ScheduleRequest{DAG: dagJSON, Q: 16}

	_, jsonRaw := postJSON(t, ts.URL+"/v1/schedule", req)
	var viaJSON api.ScheduleResponse
	if err := json.Unmarshal(jsonRaw, &viaJSON); err != nil {
		t.Fatal(err)
	}

	resp, binRaw := postBinary(t, ts.URL+"/v1/schedule", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary request: HTTP %d: %s", resp.StatusCode, binRaw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != api.ContentTypeBinary {
		t.Errorf("response Content-Type %q, want %q", ct, api.ContentTypeBinary)
	}
	var viaBin api.ScheduleResponse
	if err := viaBin.UnmarshalBinary(binRaw); err != nil {
		t.Fatalf("decoding binary response: %v", err)
	}
	jb, _ := json.Marshal(viaJSON)
	bb, _ := json.Marshal(viaBin)
	if !bytes.Equal(jb, bb) {
		t.Errorf("binary and JSON responses diverge:\njson: %s\nbin:  %s", jb, bb)
	}

	// A JSON request with a binary Accept gets a binary response too.
	payload, _ := json.Marshal(req)
	hr, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule", bytes.NewReader(payload))
	hr.Header.Set("Content-Type", "application/json")
	hr.Header.Set("Accept", api.ContentTypeBinary)
	mixed, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, mixed.Body)
	mixed.Body.Close()
	if ct := mixed.Header.Get("Content-Type"); ct != api.ContentTypeBinary {
		t.Errorf("mixed request response Content-Type %q, want %q", ct, api.ContentTypeBinary)
	}

	// A malformed binary body 400s cleanly.
	hr, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule", bytes.NewReader([]byte{'R', 'B', 9}))
	hr.Header.Set("Content-Type", api.ContentTypeBinary)
	bad, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bad.Body)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed binary body: HTTP %d, want 400", bad.StatusCode)
	}

	var m map[string]any
	getJSON(t, ts.URL+"/debug/metrics", &m)
	if n, _ := m["codec_json_requests"].(float64); n < 2 {
		t.Errorf("codec_json_requests %v, want >= 2", m["codec_json_requests"])
	}
	if n, _ := m["codec_binary_requests"].(float64); n < 1 {
		t.Errorf("codec_binary_requests %v, want >= 1", m["codec_binary_requests"])
	}
}

// TestCoalesceMetricsMove: the batch-size histogram and group counter
// must reflect served groups.
func TestCoalesceMetricsMove(t *testing.T) {
	ts, srv, _ := newTestServer(t, 32, coalescedConfig())
	defer srv.Close()
	dagJSON := testDAGJSON(t, 2)

	resp, raw := postJSON(t, ts.URL+"/v1/schedule", api.ScheduleRequest{DAG: dagJSON, Q: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, raw)
	}

	var m struct {
		Groups uint64            `json:"coalesced_groups"`
		Hist   map[string]uint64 `json:"coalesce_batch_hist"`
	}
	getJSON(t, ts.URL+"/debug/metrics", &m)
	if m.Groups < 1 {
		t.Errorf("coalesced_groups %d, want >= 1", m.Groups)
	}
	total := uint64(0)
	for _, v := range m.Hist {
		total += v
	}
	if total != m.Groups {
		t.Errorf("histogram total %d != coalesced_groups %d (hist %v)", total, m.Groups, m.Hist)
	}
	if m.Hist["1"] < 1 {
		t.Errorf("bucket 1 = %d, want >= 1 after a single-waiter group", m.Hist["1"])
	}
}
