package server_test

// Serving-layer tests for the online /v1/jobs surface and for the
// reservation lifecycle driven through a *sharded* book — the
// Pending→Active→Released transitions, including invalid-transition
// and double-release error paths, exercised over HTTP.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"resched/internal/api"
	"resched/internal/lifecycle"
	"resched/internal/model"
	"resched/internal/resbook"
	"resched/internal/server"
)

// newOnlineServer builds an engine over a sharded book and a server
// exposing it. The engine is driven manually (AdvanceTo) so tests are
// deterministic.
func newOnlineServer(t *testing.T, capacity int) (*httptest.Server, *lifecycle.Engine) {
	t.Helper()
	book, err := resbook.NewSharded(capacity, 0, 4, model.Hour)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lifecycle.New(lifecycle.Config{Book: book, Backfill: true, StarveAttempts: 50, StarveAge: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Book: book, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, eng
}

func advanceEngine(t *testing.T, eng *lifecycle.Engine, now model.Time) {
	t.Helper()
	if err := eng.AdvanceTo(context.Background(), now); err != nil {
		t.Fatalf("AdvanceTo(%d): %v", now, err)
	}
}

// TestJobsSurface is the serving-layer acceptance path: submit over
// HTTP, place through the engine, and read back a forecast with the
// earliest feasible start and the processor deficit for a job that
// remains queued.
func TestJobsSurface(t *testing.T) {
	ts, eng := newOnlineServer(t, 8)

	resp, raw := postJSON(t, ts.URL+"/v1/jobs", api.JobSubmitRequest{Procs: 6, Duration: 1000})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, raw)
	}
	var wide api.Job
	if err := json.Unmarshal(raw, &wide); err != nil {
		t.Fatal(err)
	}
	if wide.State != "queued" || wide.ID == "" {
		t.Fatalf("submitted job = %+v, want queued with ID", wide)
	}
	advanceEngine(t, eng, 0)

	resp, raw = postJSON(t, ts.URL+"/v1/jobs", api.JobSubmitRequest{Procs: 4, Duration: 50})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, raw)
	}
	var blocked api.Job
	if err := json.Unmarshal(raw, &blocked); err != nil {
		t.Fatal(err)
	}
	advanceEngine(t, eng, 0) // 4 > 2 free: stays queued

	var got api.Job
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+wide.ID, &got); resp.StatusCode != http.StatusOK {
		t.Fatalf("get status = %d", resp.StatusCode)
	}
	if got.State != "running" || got.ReservationID == "" {
		t.Fatalf("wide job = %+v, want running with reservation", got)
	}

	var fc api.Forecast
	if resp := getJSON(t, ts.URL+"/v1/jobs/"+blocked.ID+"/forecast", &fc); resp.StatusCode != http.StatusOK {
		t.Fatalf("forecast status = %d", resp.StatusCode)
	}
	if fc.EarliestStart != 1000 {
		t.Fatalf("forecast earliest start = %d, want 1000", fc.EarliestStart)
	}
	if fc.Deficit != 2 {
		t.Fatalf("forecast deficit = %d, want 2", fc.Deficit)
	}
	if fc.State != "queued" || len(fc.Remedies) == 0 || fc.Version == 0 {
		t.Fatalf("forecast = %+v", fc)
	}

	var list []api.Job
	if resp := getJSON(t, ts.URL+"/v1/jobs", &list); resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	if len(list) != 2 {
		t.Fatalf("list = %d jobs, want 2", len(list))
	}

	var e api.Error
	if resp := getJSON(t, ts.URL+"/v1/jobs/nope", &e); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/nope/forecast", &e); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown forecast status = %d", resp.StatusCode)
	}

	var m struct {
		Engine *api.EngineStats `json:"engine"`
	}
	if resp := getJSON(t, ts.URL+"/debug/metrics", &m); resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if m.Engine == nil {
		t.Fatal("metrics missing engine stats")
	}
	if m.Engine.Arrivals != 2 || m.Engine.QueueDepth != 1 || m.Engine.Placements != 1 {
		t.Fatalf("engine stats = %+v", *m.Engine)
	}
}

// TestJobsDisabledWithoutEngine: the /v1/jobs surface answers 503 on
// daemons not running -online.
func TestJobsDisabledWithoutEngine(t *testing.T) {
	ts, _, _ := newTestServer(t, 8, server.Config{})
	var e api.Error
	if resp := getJSON(t, ts.URL+"/v1/jobs", &e); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("list status = %d, want 503", resp.StatusCode)
	}
	resp, _ := postJSON(t, ts.URL+"/v1/jobs", api.JobSubmitRequest{Procs: 1, Duration: 10})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit status = %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/v1/jobs/x/forecast", &e); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("forecast status = %d, want 503", resp.StatusCode)
	}
}

func TestJobSubmitValidation(t *testing.T) {
	ts, _ := newOnlineServer(t, 8)
	resp, raw := postJSON(t, ts.URL+"/v1/jobs", api.JobSubmitRequest{Procs: 99, Duration: 10})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized job status = %d, body %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/jobs", api.JobSubmitRequest{Procs: 1, Duration: 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero-duration status = %d, body %s", resp.StatusCode, raw)
	}
}

// TestReservationLifecycleSharded drives Pending→Active→Released over
// HTTP through a sharded book with a window spanning two shards, and
// checks the invalid-transition and double-release error paths.
func TestReservationLifecycleSharded(t *testing.T) {
	book, err := resbook.NewSharded(4, 0, 4, model.Hour)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Book: book})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Window [30min, 90min) spans the first two hour-epoch shards.
	resp, raw := postJSON(t, ts.URL+"/v1/reservations",
		api.ReservationRequest{Start: 30 * model.Minute, End: 90 * model.Minute, Procs: 2})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create status = %d, body %s", resp.StatusCode, raw)
	}
	var res api.Reservation
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "pending" {
		t.Fatalf("created status = %q, want pending", res.Status)
	}

	activateURL := fmt.Sprintf("%s/v1/reservations/%s/activate", ts.URL, res.ID)
	resp, raw = postJSON(t, activateURL, struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("activate status = %d, body %s", resp.StatusCode, raw)
	}
	var activated api.Reservation
	if err := json.Unmarshal(raw, &activated); err != nil {
		t.Fatal(err)
	}
	if activated.Status != "active" {
		t.Fatalf("activated status = %q, want active", activated.Status)
	}

	// Activating an Active reservation is an idempotent no-op.
	if resp, raw = postJSON(t, activateURL, struct{}{}); resp.StatusCode != http.StatusOK {
		t.Fatalf("re-activate status = %d, body %s", resp.StatusCode, raw)
	}

	del := func() int {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/reservations/"+res.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r.StatusCode
	}
	if code := del(); code != http.StatusOK {
		t.Fatalf("release status = %d", code)
	}
	// Double release and activate-after-release are invalid
	// transitions: 409.
	if code := del(); code != http.StatusConflict {
		t.Fatalf("double release status = %d, want 409", code)
	}
	if resp, raw = postJSON(t, activateURL, struct{}{}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("activate released status = %d, body %s", resp.StatusCode, raw)
	}
	// Unknown IDs: 404.
	resp, _ = postJSON(t, ts.URL+"/v1/reservations/zzz/activate", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("activate unknown status = %d, want 404", resp.StatusCode)
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatalf("book invariants: %v", err)
	}
}
