package server_test

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"resched/internal/api"
	"resched/internal/server"
)

// TestCommitRetryExhaustion drives the commit loop into permanent
// version conflict: the before-commit hook bumps the book's version
// before every commit attempt, so after MaxRetries recomputations the
// request must give up with 409 and an error naming the retry budget,
// leaving the book without the loser's reservations.
func TestCommitRetryExhaustion(t *testing.T) {
	const maxRetries = 3
	ts, srv, book := newTestServer(t, 16, server.Config{Workers: 2, Timeout: time.Minute, MaxRetries: maxRetries})
	srv.SetBeforeCommitHook(func() {
		res, err := book.Reserve(1_000_000, 1_000_010, 1)
		if err != nil {
			t.Errorf("conflicting Reserve: %v", err)
			return
		}
		if err := book.Release(res.ID); err != nil {
			t.Errorf("conflicting Release: %v", err)
		}
	})

	versionBefore := book.Version()
	resp, raw := postJSON(t, ts.URL+"/v1/schedule", api.ScheduleRequest{DAG: testDAGJSON(t, 2), Commit: true})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("permanently conflicted commit: HTTP %d (%s), want 409", resp.StatusCode, raw)
	}
	var apiErr api.Error
	if err := json.Unmarshal(raw, &apiErr); err != nil {
		t.Fatalf("decoding error body %q: %v", raw, err)
	}
	if !strings.Contains(apiErr.Error, "version-conflict retries") {
		t.Errorf("error %q does not mention retry exhaustion", apiErr.Error)
	}

	// Every version bump came from the hook's reserve+release pairs:
	// the initial attempt plus maxRetries recomputes, two bumps each.
	if got, want := book.Version(), versionBefore+2*(maxRetries+1); got != want {
		t.Errorf("version = %d, want %d", got, want)
	}
	for _, r := range book.List() {
		if r.Start != 1_000_000 {
			t.Errorf("gave-up commit leaked reservation %+v", r)
		}
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatalf("invariants after exhaustion: %v", err)
	}
}
