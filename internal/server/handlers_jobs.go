package server

// The /v1/jobs surface: submission, inspection, and feasibility
// forecasts against the online lifecycle engine. These handlers are
// thin — all scheduling state lives in lifecycle.Engine — so they do
// not take worker-pool slots; the engine's own mutex bounds their
// cost.

import (
	"errors"
	"net/http"

	"resched/internal/api"
	"resched/internal/lifecycle"
)

// requireEngine rejects the request with 503 when the daemon is not
// running the online engine. It reports whether serving may continue.
func (s *Server) requireEngine(w http.ResponseWriter) bool {
	if s.engine == nil {
		s.writeJSON(w, http.StatusServiceUnavailable,
			api.Error{Error: "online lifecycle engine disabled; start reschedd with -online"})
		return false
	}
	return true
}

// toAPIJob converts an engine job to its wire shape.
func toAPIJob(j lifecycle.Job) api.Job {
	return api.Job{
		ID:            j.ID,
		Procs:         j.Procs,
		Duration:      j.Dur,
		Submitted:     j.Submitted,
		State:         j.State.String(),
		Attempts:      j.Attempts,
		Start:         j.Start,
		End:           j.End,
		ReservationID: j.ReservationID,
		Backfilled:    j.Backfilled,
		Starved:       j.Starved,
	}
}

// handleJobSubmit serves POST /v1/jobs.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w) {
		return
	}
	var req api.JobSubmitRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	j, err := s.engine.Submit(req.Procs, req.Duration)
	if err != nil {
		if errors.Is(err, lifecycle.ErrStopped) {
			s.writeJSON(w, http.StatusServiceUnavailable, api.Error{Error: err.Error()})
			return
		}
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusCreated, toAPIJob(j))
}

// handleJobList serves GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w) {
		return
	}
	jobs := s.engine.Jobs()
	out := make([]api.Job, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, toAPIJob(j))
	}
	s.writeJSON(w, http.StatusOK, out)
}

// handleJobGet serves GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w) {
		return
	}
	id := r.PathValue("id")
	j, ok := s.engine.Job(id)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, api.Error{Error: "no such job: " + id})
		return
	}
	s.writeJSON(w, http.StatusOK, toAPIJob(j))
}

// handleJobForecast serves GET /v1/jobs/{id}/forecast: the earliest
// feasible start, the processor deficit blocking an immediate start,
// and the remedies, computed by replaying the job's fit against a
// book snapshot.
func (s *Server) handleJobForecast(w http.ResponseWriter, r *http.Request) {
	if !s.requireEngine(w) {
		return
	}
	id := r.PathValue("id")
	f, err := s.engine.ForecastJob(id)
	if err != nil {
		if errors.Is(err, lifecycle.ErrNoJob) {
			s.writeJSON(w, http.StatusNotFound, api.Error{Error: err.Error()})
			return
		}
		s.writeJSON(w, http.StatusInternalServerError, api.Error{Error: err.Error()})
		return
	}
	s.writeJSON(w, http.StatusOK, api.Forecast{
		JobID:         f.JobID,
		State:         f.State.String(),
		Now:           f.Now,
		EarliestStart: f.EarliestStart,
		Wait:          f.Wait,
		Deficit:       f.Deficit,
		FreeNow:       f.FreeNow,
		Remedies:      f.Remedies,
		Version:       f.Version,
	})
}
