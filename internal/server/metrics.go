package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resched/internal/api"
)

// latWindow is the number of recent request latencies kept for the
// quantile estimates. A fixed ring keeps the cost per request O(1)
// and bounded regardless of traffic volume.
const latWindow = 1024

// metrics holds the daemon's expvar-style counters, all updated
// lock-free on the request path except the latency ring.
type metrics struct {
	requests  atomic.Uint64 // requests accepted
	status2xx atomic.Uint64
	status4xx atomic.Uint64
	status5xx atomic.Uint64
	retries   atomic.Uint64 // version-conflict retries inside commit loops
	conflicts atomic.Uint64 // commits rejected after exhausting retries
	overload  atomic.Uint64 // requests shed by the worker pool
	timeouts  atomic.Uint64 // requests that hit the per-request timeout

	// Codec mix of the /v1/schedule hot path: how many request bodies
	// arrived JSON vs binary.
	codecJSON   atomic.Uint64
	codecBinary atomic.Uint64

	// coalGroups counts sealed coalesced groups; coalHist buckets
	// their sizes (1, 2, ≤4, ≤8, ≤16, >16) so the batch-size
	// distribution — the amortization factor — is visible in
	// /debug/metrics.
	coalGroups atomic.Uint64
	coalHist   [6]atomic.Uint64

	mu sync.Mutex
	// lat is the latency ring; n counts total latencies observed.
	lat [latWindow]time.Duration //reschedvet:guardedby mu
	n   uint64                   //reschedvet:guardedby mu
}

func (m *metrics) observe(d time.Duration) {
	m.mu.Lock()
	m.lat[m.n%latWindow] = d
	m.n++
	m.mu.Unlock()
}

// coalesceBuckets are the upper bounds of the batch-size histogram,
// with the last bucket open-ended.
var coalesceBuckets = [6]string{"1", "2", "le4", "le8", "le16", "gt16"}

// observeGroup records one sealed coalesced group of the given size.
func (m *metrics) observeGroup(size int) {
	m.coalGroups.Add(1)
	var b int
	switch {
	case size <= 1:
		b = 0
	case size == 2:
		b = 1
	case size <= 4:
		b = 2
	case size <= 8:
		b = 3
	case size <= 16:
		b = 4
	default:
		b = 5
	}
	m.coalHist[b].Add(1)
}

func (m *metrics) countStatus(code int) {
	switch {
	case code >= 500:
		m.status5xx.Add(1)
	case code >= 400:
		m.status4xx.Add(1)
	default:
		m.status2xx.Add(1)
	}
}

// quantiles returns the p50 and p99 of the retained latency window.
func (m *metrics) quantiles() (p50, p99 time.Duration, count uint64) {
	m.mu.Lock()
	count = m.n
	k := int(count)
	if k > latWindow {
		k = latWindow
	}
	buf := make([]time.Duration, k)
	copy(buf, m.lat[:k])
	m.mu.Unlock()
	if k == 0 {
		return 0, 0, 0
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(k-1))
		return buf[i]
	}
	return at(0.50), at(0.99), count
}

// metricsResponse is the GET /debug/metrics JSON shape.
type metricsResponse struct {
	Requests  uint64 `json:"requests"`
	Status2xx uint64 `json:"status_2xx"`
	Status4xx uint64 `json:"status_4xx"`
	Status5xx uint64 `json:"status_5xx"`
	// CommitRetries counts version-conflict retries across all
	// schedule commits; ConflictRejections counts requests that
	// exhausted their retry budget.
	CommitRetries      uint64  `json:"commit_retries"`
	ConflictRejections uint64  `json:"conflict_rejections"`
	OverloadRejections uint64  `json:"overload_rejections"`
	Timeouts           uint64  `json:"timeouts"`
	LatencyCount       uint64  `json:"latency_count"`
	LatencyP50Ms       float64 `json:"latency_p50_ms"`
	LatencyP99Ms       float64 `json:"latency_p99_ms"`
	BookVersion        uint64  `json:"book_version"`
	// CodecJSONRequests / CodecBinaryRequests split the schedule
	// request bodies by wire codec.
	CodecJSONRequests   uint64 `json:"codec_json_requests"`
	CodecBinaryRequests uint64 `json:"codec_binary_requests"`
	// CoalescedGroups counts sealed coalesce groups; the histogram
	// buckets their sizes (keys 1, 2, le4, le8, le16, gt16).
	CoalescedGroups   uint64            `json:"coalesced_groups"`
	CoalesceBatchHist map[string]uint64 `json:"coalesce_batch_hist"`
	// Engine carries the online lifecycle engine's counters
	// (queue depth, activations, backfills, ...); absent when the
	// daemon is not running -online.
	Engine *api.EngineStats `json:"engine,omitempty"`
}

func (m *metrics) snapshot(bookVersion uint64) metricsResponse {
	p50, p99, n := m.quantiles()
	hist := make(map[string]uint64, len(coalesceBuckets))
	for i, name := range coalesceBuckets {
		hist[name] = m.coalHist[i].Load()
	}
	return metricsResponse{
		Requests:            m.requests.Load(),
		Status2xx:           m.status2xx.Load(),
		Status4xx:           m.status4xx.Load(),
		Status5xx:           m.status5xx.Load(),
		CommitRetries:       m.retries.Load(),
		ConflictRejections:  m.conflicts.Load(),
		OverloadRejections:  m.overload.Load(),
		Timeouts:            m.timeouts.Load(),
		LatencyCount:        n,
		LatencyP50Ms:        float64(p50) / float64(time.Millisecond),
		LatencyP99Ms:        float64(p99) / float64(time.Millisecond),
		BookVersion:         bookVersion,
		CodecJSONRequests:   m.codecJSON.Load(),
		CodecBinaryRequests: m.codecBinary.Load(),
		CoalescedGroups:     m.coalGroups.Load(),
		CoalesceBatchHist:   hist,
	}
}
