package server

// SetBeforeCommitHook installs a function that runs between computing
// a schedule and committing it, so tests can force version conflicts
// deterministically. Call before serving traffic.
func (s *Server) SetBeforeCommitHook(f func()) { s.beforeCommit = f }
