package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"resched/internal/api"
	"resched/internal/daggen"
	"resched/internal/dagio"
	"resched/internal/model"
	"resched/internal/resbook"
)

// benchBook builds a reservation book carrying n competing
// reservations, the serving-time analogue of profile_bench_test's
// loadedProfile.
func benchBook(b *testing.B, n int) *resbook.Book {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	book := resbook.New(256, 0)
	for k := 0; k < n; k++ {
		start := model.Time(rng.Int63n(int64(14 * model.Day)))
		dur := model.Duration(rng.Int63n(int64(6*model.Hour)) + 60)
		procs := rng.Intn(128) + 1
		// Capacity conflicts are expected; they just leave this draw
		// unbooked.
		_, _ = book.Reserve(start, start+dur, procs)
	}
	return book
}

// BenchmarkSchedulePost measures the full POST /v1/schedule serving
// path — JSON decode, DAG parse, snapshot, scheduling, response encode
// — for a dry-run request. allocs/op here is the PR 2 acceptance
// metric for the serving layer (see BENCH_PR2.json).
func BenchmarkSchedulePost(b *testing.B) {
	book := benchBook(b, 200)
	srv, err := New(Config{Book: book})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()

	spec := daggen.Default()
	g := daggen.MustGenerate(spec, rand.New(rand.NewSource(7)))
	var dagBuf bytes.Buffer
	if err := dagio.Write(&dagBuf, g); err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(api.ScheduleRequest{DAG: dagBuf.Bytes(), Q: 128})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
}
