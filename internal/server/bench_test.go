package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"resched/internal/api"
	"resched/internal/daggen"
	"resched/internal/dagio"
	"resched/internal/model"
	"resched/internal/resbook"
)

// benchBook builds a reservation book carrying n competing
// reservations, the serving-time analogue of profile_bench_test's
// loadedProfile.
func benchBook(b *testing.B, n int) *resbook.Book {
	b.Helper()
	rng := rand.New(rand.NewSource(int64(n)))
	book := resbook.New(256, 0)
	for k := 0; k < n; k++ {
		start := model.Time(rng.Int63n(int64(14 * model.Day)))
		dur := model.Duration(rng.Int63n(int64(6*model.Hour)) + 60)
		procs := rng.Intn(128) + 1
		// Capacity conflicts are expected; they just leave this draw
		// unbooked.
		_, _ = book.Reserve(start, start+dur, procs)
	}
	return book
}

// BenchmarkSchedulePost measures the full POST /v1/schedule serving
// path — JSON decode, DAG parse, snapshot, scheduling, response encode
// — for a dry-run request. allocs/op here is the PR 2 acceptance
// metric for the serving layer (see BENCH_PR2.json).
func BenchmarkSchedulePost(b *testing.B) {
	book := benchBook(b, 200)
	srv, err := New(Config{Book: book})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()

	spec := daggen.Default()
	g := daggen.MustGenerate(spec, rand.New(rand.NewSource(7)))
	var dagBuf bytes.Buffer
	if err := dagio.Write(&dagBuf, g); err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(api.ScheduleRequest{DAG: dagBuf.Bytes(), Q: 128})
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body))
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rw.Code, rw.Body.String())
		}
	}
}

// throughputBook builds the steady-state book the throughput
// benchmark serves against: a long horizon dense with standing
// reservations, so the per-request snapshot cost is the realistic
// O(segments) of a busy cluster.
func throughputBook(b *testing.B) *resbook.Book {
	b.Helper()
	rng := rand.New(rand.NewSource(23))
	book := resbook.New(256, 0)
	for k := 0; k < 120000; k++ {
		start := model.Time(rng.Int63n(int64(480 * model.Day)))
		dur := model.Duration(rng.Int63n(int64(6*model.Hour)) + 60)
		procs := rng.Intn(64) + 1
		_, _ = book.Reserve(start, start+dur, procs)
	}
	return book
}

// BenchmarkScheduleThroughput measures end-to-end schedules per
// second per core under concurrent committing clients against a
// loaded book. The modes span the serving-path upgrade: the
// pre-existing path (every request its own snapshot and commit, JSON
// both ways), the binary codec alone, and the full wire-speed path —
// coalesced groups sharing one snapshot and one multi-job commit,
// binary framing. Each client releases what it booked so the book
// holds its steady-state size instead of growing with b.N.
func BenchmarkScheduleThroughput(b *testing.B) {
	spec := daggen.Default()
	spec.N = 6
	g := daggen.MustGenerate(spec, rand.New(rand.NewSource(11)))
	var dagBuf bytes.Buffer
	if err := dagio.Write(&dagBuf, g); err != nil {
		b.Fatal(err)
	}
	apiReq := api.ScheduleRequest{DAG: dagBuf.Bytes(), Q: 32, Commit: true}
	jsonBody, err := json.Marshal(apiReq)
	if err != nil {
		b.Fatal(err)
	}
	binBody := apiReq.AppendBinary(nil)

	const clients = 8
	modes := []struct {
		name   string
		window time.Duration
		bin    bool
	}{
		{"direct-json", 0, false},
		{"direct-bin", 0, true},
		{"coalesced-bin", 2 * time.Millisecond, true},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			book := throughputBook(b)
			srv, err := New(Config{
				Book:             book,
				Workers:          clients,
				MaxRetries:       256,
				CoalesceWindow:   m.window,
				CoalesceMaxBatch: clients,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			h := srv.Handler()
			body, ct := jsonBody, "application/json"
			if m.bin {
				body, ct = binBody, api.ContentTypeBinary
			}

			b.ReportAllocs()
			b.SetParallelism(clients) // concurrent clients even at GOMAXPROCS=1
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					req := httptest.NewRequest(http.MethodPost, "/v1/schedule", bytes.NewReader(body))
					req.Header.Set("Content-Type", ct)
					if m.bin {
						req.Header.Set("Accept", api.ContentTypeBinary)
					}
					rw := httptest.NewRecorder()
					h.ServeHTTP(rw, req)
					if rw.Code != http.StatusOK {
						b.Errorf("status %d: %s", rw.Code, rw.Body.String())
						return
					}
					var resp api.ScheduleResponse
					var derr error
					if m.bin {
						derr = resp.UnmarshalBinary(rw.Body.Bytes())
					} else {
						derr = json.Unmarshal(rw.Body.Bytes(), &resp)
					}
					if derr != nil {
						b.Errorf("decoding response: %v", derr)
						return
					}
					for _, id := range resp.ReservationIDs {
						if err := book.Release(id); err != nil {
							b.Errorf("releasing %s: %v", id, err)
							return
						}
					}
				}
			})
			b.StopTimer()
			cores := float64(runtime.GOMAXPROCS(0))
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds()/cores, "sched/s/core")
			// The amortization factor and conflict churn explain the
			// sched/s/core differences between modes.
			if groups := srv.metrics.coalGroups.Load(); groups > 0 {
				b.ReportMetric(float64(b.N)/float64(groups), "batch/group")
			}
			b.ReportMetric(float64(srv.metrics.retries.Load())/float64(b.N), "retries/op")
		})
	}
}
