package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resched/internal/api"
	"resched/internal/dag"
	"resched/internal/dagio"
	"resched/internal/model"
	"resched/internal/resbook"
	"resched/internal/server"
)

// newTestServer starts an httptest server over a fresh book.
func newTestServer(t *testing.T, capacity int, cfg server.Config) (*httptest.Server, *server.Server, *resbook.Book) {
	t.Helper()
	book := resbook.New(capacity, 0)
	cfg.Book = book
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, book
}

// testDAGJSON renders a small fork-join application in dagio format.
func testDAGJSON(t *testing.T, branches int) json.RawMessage {
	t.Helper()
	g := dag.New(branches + 2)
	src := g.AddTask(dag.Task{Name: "src", Seq: 2 * model.Minute, Alpha: 0.2})
	sink := g.AddTask(dag.Task{Name: "sink", Seq: 2 * model.Minute, Alpha: 0.2})
	for i := 0; i < branches; i++ {
		b := g.AddTask(dag.Task{Seq: 10 * model.Minute, Alpha: 0.1})
		g.MustAddEdge(src, b)
		g.MustAddEdge(b, sink)
	}
	var buf bytes.Buffer
	if err := dagio.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp
}

func TestScheduleDryRunAndCommit(t *testing.T) {
	ts, _, book := newTestServer(t, 32, server.Config{})
	dagJSON := testDAGJSON(t, 3)

	// Dry run: schedule computed, nothing booked.
	resp, raw := postJSON(t, ts.URL+"/v1/schedule", api.ScheduleRequest{DAG: dagJSON, Q: 16})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dry run: HTTP %d: %s", resp.StatusCode, raw)
	}
	var dry api.ScheduleResponse
	if err := json.Unmarshal(raw, &dry); err != nil {
		t.Fatal(err)
	}
	if dry.Algorithm != "BL_CPAR_BD_CPAR" {
		t.Errorf("default algorithm %q, want BL_CPAR_BD_CPAR", dry.Algorithm)
	}
	if len(dry.Tasks) != 5 || dry.Committed || len(dry.ReservationIDs) != 0 {
		t.Errorf("dry run response: %+v", dry)
	}
	if dry.Turnaround <= 0 {
		t.Errorf("turnaround %d, want > 0", dry.Turnaround)
	}
	if book.Version() != 0 {
		t.Errorf("dry run mutated the book to version %d", book.Version())
	}

	// Commit: reservations booked, version advanced.
	resp, raw = postJSON(t, ts.URL+"/v1/schedule", api.ScheduleRequest{DAG: dagJSON, Q: 16, Commit: true, BL: "BL_CPAR", BD: "BD_CPAR"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit: HTTP %d: %s", resp.StatusCode, raw)
	}
	var com api.ScheduleResponse
	if err := json.Unmarshal(raw, &com); err != nil {
		t.Fatal(err)
	}
	if !com.Committed || len(com.ReservationIDs) != 5 {
		t.Errorf("commit response: committed=%v ids=%v", com.Committed, com.ReservationIDs)
	}
	if com.Version != 1 {
		t.Errorf("post-commit version %d, want 1", com.Version)
	}
	if book.Version() != 1 {
		t.Errorf("book version %d, want 1", book.Version())
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The committed schedule matches the dry run on the same (empty)
	// book.
	if com.Completion != dry.Completion {
		t.Errorf("commit completion %d != dry-run completion %d", com.Completion, dry.Completion)
	}
}

func TestDeadlineEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, 32, server.Config{})
	dagJSON := testDAGJSON(t, 3)

	// Generous deadline: met.
	resp, raw := postJSON(t, ts.URL+"/v1/deadline", api.DeadlineRequest{
		DAG: dagJSON, Algo: "DL_BD_CPAR", Deadline: 10 * model.Hour, Q: 16,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline: HTTP %d: %s", resp.StatusCode, raw)
	}
	var met api.ScheduleResponse
	if err := json.Unmarshal(raw, &met); err != nil {
		t.Fatal(err)
	}
	if met.Deadline != 10*model.Hour {
		t.Errorf("deadline %d, want %d", met.Deadline, 10*model.Hour)
	}
	if met.Completion > met.Deadline {
		t.Errorf("completion %d after deadline %d", met.Completion, met.Deadline)
	}

	// Tightest search.
	resp, raw = postJSON(t, ts.URL+"/v1/deadline", api.DeadlineRequest{
		DAG: dagJSON, Algo: "DL_BD_CPAR", Tightest: true, Q: 16,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tightest: HTTP %d: %s", resp.StatusCode, raw)
	}
	var tight api.ScheduleResponse
	if err := json.Unmarshal(raw, &tight); err != nil {
		t.Fatal(err)
	}
	if tight.Deadline <= 0 || tight.Deadline > met.Deadline {
		t.Errorf("tightest deadline %d outside (0, %d]", tight.Deadline, met.Deadline)
	}

	// Infeasible deadline: 422.
	resp, raw = postJSON(t, ts.URL+"/v1/deadline", api.DeadlineRequest{
		DAG: dagJSON, Algo: "DL_BD_CPAR", Deadline: model.Minute, Q: 16,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible deadline: HTTP %d: %s", resp.StatusCode, raw)
	}

	// Missing deadline without tightest: 400.
	resp, _ = postJSON(t, ts.URL+"/v1/deadline", api.DeadlineRequest{DAG: dagJSON, Algo: "DL_BD_CPAR"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing deadline: HTTP %d", resp.StatusCode)
	}
}

func TestReservationLifecycleOverHTTP(t *testing.T) {
	ts, _, book := newTestServer(t, 16, server.Config{})

	resp, raw := postJSON(t, ts.URL+"/v1/reservations", api.ReservationRequest{Start: 100, End: 200, Procs: 4})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: HTTP %d: %s", resp.StatusCode, raw)
	}
	var res api.Reservation
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != "pending" || res.ID == "" {
		t.Errorf("created reservation: %+v", res)
	}

	// Activate.
	resp, raw = postJSON(t, ts.URL+"/v1/reservations/"+res.ID+"/activate", struct{}{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("activate: HTTP %d: %s", resp.StatusCode, raw)
	}
	var act api.Reservation
	if err := json.Unmarshal(raw, &act); err != nil {
		t.Fatal(err)
	}
	if act.Status != "active" {
		t.Errorf("after activate: %+v", act)
	}

	// Get and list.
	var got api.Reservation
	if r := getJSON(t, ts.URL+"/v1/reservations/"+res.ID, &got); r.StatusCode != http.StatusOK || got.Status != "active" {
		t.Errorf("get: HTTP %d, %+v", r.StatusCode, got)
	}
	var list []api.Reservation
	if r := getJSON(t, ts.URL+"/v1/reservations", &list); r.StatusCode != http.StatusOK || len(list) != 1 {
		t.Errorf("list: HTTP %d, %d entries", r.StatusCode, len(list))
	}

	// Release via DELETE.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/reservations/"+res.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: HTTP %d", dresp.StatusCode)
	}
	if free := book.Snapshot().Avail.FreeAt(150); free != 16 {
		t.Errorf("capacity not returned after delete: %d free", free)
	}

	// Double delete: 409. Unknown: 404.
	dresp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusConflict {
		t.Errorf("double delete: HTTP %d, want 409", dresp2.StatusCode)
	}
	var missing api.Error
	if r := getJSON(t, ts.URL+"/v1/reservations/r999999", &missing); r.StatusCode != http.StatusNotFound {
		t.Errorf("get unknown: HTTP %d, want 404", r.StatusCode)
	}

	// Oversubscription: 409.
	resp, _ = postJSON(t, ts.URL+"/v1/reservations", api.ReservationRequest{Start: 0, End: 10, Procs: 17})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("oversubscribed create: HTTP %d, want 409", resp.StatusCode)
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestProfileEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, 16, server.Config{})
	postJSON(t, ts.URL+"/v1/reservations", api.ReservationRequest{Start: 100, End: 200, Procs: 4})

	var prof api.ProfileResponse
	if r := getJSON(t, ts.URL+"/v1/profile", &prof); r.StatusCode != http.StatusOK {
		t.Fatalf("profile: HTTP %d", r.StatusCode)
	}
	if prof.Capacity != 16 || prof.Version != 1 {
		t.Errorf("profile: capacity %d version %d", prof.Capacity, prof.Version)
	}
	if len(prof.Segments) != 3 {
		t.Errorf("profile has %d segments, want 3 (free, busy, free)", len(prof.Segments))
	}
	if len(prof.Reservations) != 1 || prof.Reservations[0].Status != "pending" {
		t.Errorf("profile reservations: %+v", prof.Reservations)
	}
}

func TestRequestValidation(t *testing.T) {
	ts, _, _ := newTestServer(t, 16, server.Config{MaxBody: 4096})
	dagJSON := testDAGJSON(t, 2)

	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: HTTP %d, want 400", resp.StatusCode)
	}

	// Unknown fields are rejected.
	resp, err = http.Post(ts.URL+"/v1/schedule", "application/json",
		strings.NewReader(`{"dag": {"tasks": [], "edges": []}, "surprise": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}

	// Unknown heuristic names.
	r2, _ := postJSON(t, ts.URL+"/v1/schedule", api.ScheduleRequest{DAG: dagJSON, BL: "BL_BOGUS"})
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown BL: HTTP %d, want 400", r2.StatusCode)
	}
	r2, _ = postJSON(t, ts.URL+"/v1/deadline", api.DeadlineRequest{DAG: dagJSON, Algo: "DL_BOGUS", Tightest: true})
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown DL: HTTP %d, want 400", r2.StatusCode)
	}

	// now before the book's origin.
	r2, _ = postJSON(t, ts.URL+"/v1/schedule", api.ScheduleRequest{DAG: dagJSON, Now: -100})
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("now before origin: HTTP %d, want 400", r2.StatusCode)
	}

	// Oversized body: 413.
	huge := api.ScheduleRequest{DAG: json.RawMessage(fmt.Sprintf(`{"tasks": [%s], "edges": []}`,
		strings.Repeat(`{"seq": 60, "alpha": 0.5},`, 200)+`{"seq": 60, "alpha": 0.5}`))}
	r2, _ = postJSON(t, ts.URL+"/v1/schedule", huge)
	if r2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: HTTP %d, want 413", r2.StatusCode)
	}

	// Unknown endpoint: JSON 404.
	var e api.Error
	if r := getJSON(t, ts.URL+"/v1/nope", &e); r.StatusCode != http.StatusNotFound || e.Error == "" {
		t.Errorf("unknown endpoint: HTTP %d, %+v", r.StatusCode, e)
	}

	// Health check.
	if r := getJSON(t, ts.URL+"/healthz", nil); r.StatusCode != http.StatusOK {
		t.Errorf("healthz: HTTP %d", r.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts, _, _ := newTestServer(t, 16, server.Config{})
	dagJSON := testDAGJSON(t, 2)
	postJSON(t, ts.URL+"/v1/schedule", api.ScheduleRequest{DAG: dagJSON})
	postJSON(t, ts.URL+"/v1/schedule", api.ScheduleRequest{DAG: dagJSON, BL: "BL_BOGUS"})

	var m struct {
		Requests     uint64  `json:"requests"`
		Status2xx    uint64  `json:"status_2xx"`
		Status4xx    uint64  `json:"status_4xx"`
		LatencyCount uint64  `json:"latency_count"`
		LatencyP50   float64 `json:"latency_p50_ms"`
		LatencyP99   float64 `json:"latency_p99_ms"`
	}
	if r := getJSON(t, ts.URL+"/debug/metrics", &m); r.StatusCode != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", r.StatusCode)
	}
	if m.Requests < 2 || m.Status2xx < 1 || m.Status4xx < 1 || m.LatencyCount < 2 {
		t.Errorf("metrics after traffic: %+v", m)
	}
	if m.LatencyP99 < m.LatencyP50 {
		t.Errorf("p99 %v < p50 %v", m.LatencyP99, m.LatencyP50)
	}
}

// TestConcurrentClients is the serving-path acceptance test: 8
// concurrent HTTP clients fire schedule-and-commit plus direct
// reservation traffic at one daemon while an interferer keeps bumping
// the book version, so commits computed on a snapshot go stale and
// the optimistic-concurrency loop must retry. Afterwards the book
// must account for every booking exactly once.
func TestConcurrentClients(t *testing.T) {
	// Scheduling a small DAG takes microseconds, so on a single CPU
	// two clients essentially never overlap inside the
	// snapshot→commit window on their own. A before-commit hook makes
	// staleness deterministic instead of a timing coincidence: the
	// first conflictBudget commit attempts find the version moved and
	// must recompute. MaxRetries is raised so no single request can
	// exhaust its budget against the hook and fail with 409.
	ts, srv, book := newTestServer(t, 64, server.Config{Workers: 8, Timeout: time.Minute, MaxRetries: 1 << 20})

	const clients = 8
	const rounds = 6
	const conflictBudget = 12
	var conflictsLeft atomic.Int64
	conflictsLeft.Store(conflictBudget)
	srv.SetBeforeCommitHook(func() {
		if conflictsLeft.Add(-1) >= 0 {
			// Far-future reserve+release: bumps the version twice and
			// leaves no trace in the final ledger accounting below
			// (both reservations end up released).
			res, err := book.Reserve(2_000_000, 2_000_005, 1)
			if err == nil {
				_ = book.Release(res.ID)
			}
		}
	})

	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds)
	var totalBooked atomic.Int64

	worker := func(id int) {
		defer wg.Done()
		dagJSON := testDAGJSON(t, 2+id%3)
		hc := &http.Client{Timeout: time.Minute}
		for round := 0; round < rounds; round++ {
			// Schedule and commit.
			payload, _ := json.Marshal(api.ScheduleRequest{DAG: dagJSON, Q: 32, Commit: true})
			resp, err := hc.Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(payload))
			if err != nil {
				errs <- err
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d round %d: HTTP %d: %s", id, round, resp.StatusCode, raw)
				return
			}
			var sr api.ScheduleResponse
			if err := json.Unmarshal(raw, &sr); err != nil {
				errs <- err
				return
			}
			totalBooked.Add(int64(len(sr.ReservationIDs)))

			// Direct reservation far in the future, then release it.
			start := model.Time(1_000_000 + id*1000 + round*10)
			payload, _ = json.Marshal(api.ReservationRequest{Start: start, End: start + 5, Procs: 1})
			resp, err = hc.Post(ts.URL+"/v1/reservations", "application/json", bytes.NewReader(payload))
			if err != nil {
				errs <- err
				return
			}
			var res api.Reservation
			err = json.NewDecoder(resp.Body).Decode(&res)
			resp.Body.Close()
			if err != nil || res.ID == "" {
				errs <- fmt.Errorf("client %d: reservation create failed: %v %+v", id, err, res)
				return
			}
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/reservations/"+res.ID, nil)
			dresp, err := hc.Do(req)
			if err != nil {
				errs <- err
				return
			}
			dresp.Body.Close()
			if dresp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("client %d: release: HTTP %d", id, dresp.StatusCode)
				return
			}
		}
	}

	for i := 0; i < clients; i++ {
		wg.Add(1)
		go worker(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Every committed reservation is accounted for exactly once.
	wantBooked := int(totalBooked.Load())
	var pending, released int
	for _, r := range book.List() {
		switch r.Status.String() {
		case "pending":
			pending++
		case "released":
			released++
		}
	}
	if pending != wantBooked {
		t.Errorf("book holds %d pending reservations, clients committed %d", pending, wantBooked)
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := book.Snapshot().Avail.Check(); err != nil {
		t.Fatal(err)
	}

	var m struct {
		CommitRetries uint64 `json:"commit_retries"`
		Requests      uint64 `json:"requests"`
	}
	getJSON(t, ts.URL+"/debug/metrics", &m)
	if m.CommitRetries == 0 {
		t.Error("no version-conflict retries observed under 8 concurrent clients")
	}
	t.Logf("concurrent clients: %d requests, %d commit retries, %d pending, %d released",
		m.Requests, m.CommitRetries, pending, released)
}
