// Package server implements the reschedd HTTP JSON API: scheduling
// requests (RESSCHED and RESSCHEDDL) served against a live
// resbook.Book, direct reservation management, profile inspection,
// and expvar-style metrics.
//
// Serving discipline: a bounded worker pool caps the number of
// concurrently running scheduling computations (they are CPU-bound;
// unbounded concurrency would thrash), every request runs under a
// per-request timeout enforced through context cancellation in the
// scheduling loops, and request bodies are size-limited before they
// reach the JSON decoder. Schedule commits run the book's
// optimistic-concurrency loop: compute on a snapshot, commit with a
// version check, recompute on conflict.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"resched/internal/api"
	"resched/internal/coalesce"
	"resched/internal/lifecycle"
	"resched/internal/profile"
	"resched/internal/resbook"
)

// Config parameterizes a Server. The zero value of every field except
// Book gets a sensible default.
type Config struct {
	// Book is the reservation book to serve. Required.
	Book *resbook.Book
	// Workers bounds the number of concurrently executing scheduling
	// computations (default 4). Requests beyond it queue until their
	// timeout and are then shed with 503.
	Workers int
	// Timeout is the per-request deadline (default 30s).
	Timeout time.Duration
	// MaxBody is the request body limit in bytes (default 1 MiB).
	MaxBody int64
	// MaxRetries bounds the optimistic-concurrency commit loop
	// (default 8); beyond it the request fails with 409.
	MaxRetries int
	// Logger receives one structured line per request. Nil discards.
	Logger *slog.Logger
	// Engine is the online lifecycle engine behind the /v1/jobs
	// surface. Nil (the default, daemons not started with -online)
	// serves those routes as 503.
	Engine *lifecycle.Engine
	// CoalesceWindow enables transparent coalescing of POST
	// /v1/schedule: concurrent requests arriving within the window are
	// served from one book snapshot and booked through one multi-job
	// optimistic commit (see internal/coalesce). Zero — the default —
	// disables coalescing; every request runs its own commit loop.
	CoalesceWindow time.Duration
	// CoalesceMaxBatch seals a coalesced group early at this many
	// requests (default 16). Ignored unless CoalesceWindow is set.
	CoalesceMaxBatch int
	// CPAWorkers fans the CPA allocation phase across up to this many
	// goroutines per scheduling computation for DAGs wide enough to
	// profit (default 1, serial). The parallel path is bit-identical
	// to the serial one.
	CPAWorkers int
}

// Server serves the reschedd API. Construct with New.
type Server struct {
	cfg     Config
	book    *resbook.Book
	engine  *lifecycle.Engine
	sem     chan struct{}
	metrics *metrics
	mux     *http.ServeMux
	log     *slog.Logger

	// profPool recycles the snapshot profiles the commit loop copies
	// the book into, one per in-flight scheduling attempt. Combined
	// with Book.SnapshotInto this removes a full step-function
	// allocation per request; the schedulers' own working copy is a
	// second clone-into against per-Scheduler scratch.
	profPool sync.Pool

	// treePool recycles the tree-backed profiles the commit loop
	// reloads from large snapshots (profile.AutoTreeThreshold segments
	// or more), keeping the O(log n) backend's node arenas across
	// requests the same way profPool keeps the flat arrays.
	treePool sync.Pool

	// encPool recycles response staging buffers with their bound JSON
	// encoders; binPool recycles the byte slices the binary codec
	// appends into. Both follow the borrow discipline poolescape
	// enforces: get, defer put, never escape.
	encPool sync.Pool
	binPool sync.Pool

	// coal batches concurrent /v1/schedule calls onto one snapshot
	// epoch; nil when Config.CoalesceWindow is zero.
	coal *coalesce.Coalescer

	// beforeCommit, when non-nil, runs between computing a schedule
	// and committing it. Tests use it to force version conflicts
	// deterministically; production servers leave it nil.
	beforeCommit func()
}

// New returns a Server for the given configuration.
func New(cfg Config) (*Server, error) {
	if cfg.Book == nil {
		return nil, errors.New("server: nil reservation book")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 1 << 20
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		cfg:     cfg,
		book:    cfg.Book,
		engine:  cfg.Engine,
		sem:     make(chan struct{}, cfg.Workers),
		metrics: &metrics{},
		log:     log,
	}
	s.profPool.New = func() any { return &profile.Profile{} }
	s.treePool.New = func() any { return &profile.TreeProfile{} }
	s.encPool.New = func() any {
		e := &encBuf{}
		e.enc = json.NewEncoder(&e.buf)
		return e
	}
	s.binPool.New = func() any { return new([]byte) }
	if cfg.CoalesceWindow > 0 {
		coal, err := coalesce.New(coalesce.Config{
			Window:   cfg.CoalesceWindow,
			MaxBatch: cfg.CoalesceMaxBatch,
			Run:      s.runCoalescedGroup,
			OnGroup:  s.metrics.observeGroup,
		})
		if err != nil {
			return nil, err
		}
		s.coal = coal
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/schedule", s.handleSchedule)
	mux.HandleFunc("POST /v1/schedule/batch", s.handleScheduleBatch)
	mux.HandleFunc("POST /v1/deadline", s.handleDeadline)
	mux.HandleFunc("POST /v1/reservations", s.handleReservationCreate)
	mux.HandleFunc("GET /v1/reservations", s.handleReservationList)
	mux.HandleFunc("GET /v1/reservations/{id}", s.handleReservationGet)
	mux.HandleFunc("POST /v1/reservations/{id}/activate", s.handleReservationActivate)
	mux.HandleFunc("DELETE /v1/reservations/{id}", s.handleReservationDelete)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/forecast", s.handleJobForecast)
	mux.HandleFunc("GET /v1/profile", s.handleProfile)
	mux.HandleFunc("GET /debug/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, http.StatusNotFound, api.Error{Error: "no such endpoint"})
	})
	s.mux = mux
	return s, nil
}

// Book returns the reservation book the server mutates, so embedding
// processes (and tests) can inspect it.
func (s *Server) Book() *resbook.Book { return s.book }

// Close drains the request coalescer: in-flight groups are served,
// future coalesced requests are shed with 503. Call it after the HTTP
// server has stopped accepting requests; a server without coalescing
// needs no Close.
func (s *Server) Close() {
	if s.coal != nil {
		s.coal.Close()
	}
}

// Handler returns the fully wrapped http.Handler: routing inside
// request-scoped timeout, metrics, and logging.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
		defer cancel()
		r = r.WithContext(ctx)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)

		rw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		s.metrics.requests.Add(1)
		s.mux.ServeHTTP(rw, r)

		dur := time.Since(start)
		s.metrics.countStatus(rw.status)
		s.metrics.observe(dur)
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rw.status,
			"bytes", rw.bytes,
			"duration_ms", float64(dur)/float64(time.Millisecond),
		)
	})
}

// statusWriter captures the response status and size for metrics and
// logging.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// acquireWorker reserves a slot in the bounded pool, giving up when
// the request's deadline expires first. It reports whether the slot
// was acquired; on false the 503 has been written.
func (s *Server) acquireWorker(w http.ResponseWriter, r *http.Request) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	case <-r.Context().Done():
		s.metrics.overload.Add(1)
		s.writeJSON(w, http.StatusServiceUnavailable, api.Error{Error: "scheduling workers saturated"})
		return false
	}
}

func (s *Server) releaseWorker() { <-s.sem }

// decodeJSON reads a size-limited JSON body into v. On failure it
// writes the error response and returns false.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeJSON(w, http.StatusRequestEntityTooLarge,
				api.Error{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: "malformed JSON: " + err.Error()})
		return false
	}
	return true
}

// writeSchedulingError maps a scheduling/commit failure to a status
// code: timeouts to 504, infeasible deadlines to 422, everything else
// (malformed environments, impossible requests) to 400.
func (s *Server) writeSchedulingError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.metrics.timeouts.Add(1)
		s.writeJSON(w, http.StatusGatewayTimeout, api.Error{Error: "scheduling timed out: " + err.Error()})
	default:
		s.writeJSON(w, http.StatusBadRequest, api.Error{Error: err.Error()})
	}
}
