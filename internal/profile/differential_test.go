package profile

import (
	"math/rand"
	"testing"

	"resched/internal/model"
)

// These tests are the differential guarantee behind the PR 2 profile
// optimizations: the boundary-local coalesce in Reserve/Unreserve must
// leave step functions bit-identical to the retained full-sweep
// reference, and the batch EarliestFits/LatestFits sweeps must answer
// every probe exactly as the solo methods do.

// randomWindow draws a reservation window, sometimes snapped to an
// existing breakpoint so boundary-merge cases are exercised heavily.
func randomWindow(rng *rand.Rand, p *Profile) (model.Time, model.Time) {
	horizon := model.Time(30 * model.Day)
	var start model.Time
	if p.NumSegments() > 1 && rng.Intn(2) == 0 {
		segs := p.Segments()
		start = segs[rng.Intn(len(segs)-1)+1].Start
		if rng.Intn(2) == 0 {
			start += model.Time(rng.Int63n(int64(model.Hour)))
		}
	} else {
		start = model.Time(rng.Int63n(int64(horizon)))
	}
	dur := model.Duration(rng.Int63n(int64(8*model.Hour)) + 1)
	return start, start + dur
}

// TestMutatorsMatchReference applies identical random Reserve and
// Unreserve sequences to an optimized and a reference profile and
// requires identical outcomes after every operation: same error or
// none, same rendered step function, and valid invariants.
func TestMutatorsMatchReference(t *testing.T) {
	const seeds, opsPerSeed = 12, 40
	cases := 0
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		opt := New(96, 0)
		ref := New(96, 0)
		var booked []Reservation
		for op := 0; op < opsPerSeed; op++ {
			var errOpt, errRef error
			if len(booked) > 0 && rng.Intn(4) == 0 {
				// Release a booked reservation (always succeeds), or a
				// random window (both sides must reject identically).
				if rng.Intn(3) > 0 {
					k := rng.Intn(len(booked))
					r := booked[k]
					booked = append(booked[:k], booked[k+1:]...)
					errOpt = opt.Unreserve(r.Start, r.End, r.Procs)
					errRef = ref.referenceUnreserve(r.Start, r.End, r.Procs)
				} else {
					start, end := randomWindow(rng, opt)
					procs := rng.Intn(96) + 1
					errOpt = opt.Unreserve(start, end, procs)
					errRef = ref.referenceUnreserve(start, end, procs)
				}
			} else {
				start, end := randomWindow(rng, opt)
				procs := rng.Intn(110) + 1 // sometimes > capacity
				errOpt = opt.Reserve(start, end, procs)
				errRef = ref.referenceReserve(start, end, procs)
				if errOpt == nil {
					booked = append(booked, Reservation{Start: start, End: end, Procs: procs})
				}
			}
			if (errOpt == nil) != (errRef == nil) {
				t.Fatalf("seed %d op %d: optimized err %v, reference err %v", seed, op, errOpt, errRef)
			}
			if got, want := opt.String(), ref.String(); got != want {
				t.Fatalf("seed %d op %d: profiles diverged\noptimized: %s\nreference: %s", seed, op, got, want)
			}
			if err := opt.Check(); err != nil {
				t.Fatalf("seed %d op %d: invariants: %v", seed, op, err)
			}
			cases++
		}
	}
	if cases < 200 {
		t.Fatalf("only %d mutation cases; the corpus should cover at least 200", cases)
	}
}

// fuzzedProfile builds a profile carrying about n random reservations.
func fuzzedProfile(rng *rand.Rand, capacity, n int) *Profile {
	p := New(capacity, 0)
	for k := 0; k < n; k++ {
		start := model.Time(rng.Int63n(int64(20 * model.Day)))
		dur := model.Duration(rng.Int63n(int64(6*model.Hour)) + 60)
		procs := rng.Intn(capacity) + 1
		if p.MinFree(start, start+dur) >= procs {
			if err := p.Reserve(start, start+dur, procs); err != nil {
				panic(err)
			}
		}
	}
	return p
}

// TestEarliestFitsMatchesSolo requires the one-sweep batch query to be
// probe-for-probe identical to the solo EarliestFit.
func TestEarliestFitsMatchesSolo(t *testing.T) {
	cases := 0
	var out []model.Time
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := fuzzedProfile(rng, 128, 60)
		for trial := 0; trial < 8; trial++ {
			notBefore := model.Time(rng.Int63n(int64(22 * model.Day)))
			reqs := make([]FitRequest, rng.Intn(24)+1)
			for j := range reqs {
				reqs[j] = FitRequest{Procs: rng.Intn(128) + 1, Dur: model.Duration(rng.Int63n(int64(4 * model.Hour)))}
			}
			out = p.EarliestFits(reqs, notBefore, out)
			for j, r := range reqs {
				want := p.EarliestFit(r.Procs, r.Dur, notBefore)
				if out[j] != want {
					t.Fatalf("seed %d trial %d req %d (%d procs, %ds): batch %d, solo %d",
						seed, trial, j, r.Procs, r.Dur, out[j], want)
				}
				cases++
			}
		}
	}
	if cases < 200 {
		t.Fatalf("only %d probes; the corpus should cover at least 200", cases)
	}
}

// TestLatestFitsMatchesSolo requires the one-sweep batch query to be
// probe-for-probe identical to the solo LatestFit, including requests
// with no feasible start.
func TestLatestFitsMatchesSolo(t *testing.T) {
	cases := 0
	var out []model.Time
	var ok []bool
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := fuzzedProfile(rng, 128, 60)
		for trial := 0; trial < 8; trial++ {
			notBefore := model.Time(rng.Int63n(int64(10 * model.Day)))
			finishBy := notBefore + model.Time(rng.Int63n(int64(12*model.Day)))
			reqs := make([]FitRequest, rng.Intn(24)+1)
			for j := range reqs {
				// Durations sometimes exceed the window so infeasible
				// probes are part of the corpus.
				reqs[j] = FitRequest{Procs: rng.Intn(128) + 1, Dur: model.Duration(rng.Int63n(int64(16 * model.Day)))}
			}
			out, ok = p.LatestFits(reqs, notBefore, finishBy, out, ok)
			for j, r := range reqs {
				want, wantOK := p.LatestFit(r.Procs, r.Dur, notBefore, finishBy)
				if ok[j] != wantOK || (wantOK && out[j] != want) {
					t.Fatalf("seed %d trial %d req %d (%d procs, %ds in [%d,%d]): batch (%d,%v), solo (%d,%v)",
						seed, trial, j, r.Procs, r.Dur, notBefore, finishBy, out[j], ok[j], want, wantOK)
				}
				cases++
			}
		}
	}
	if cases < 200 {
		t.Fatalf("only %d probes; the corpus should cover at least 200", cases)
	}
}

// TestMinFreeSaturated pins the MinFree early-exit behavior: once an
// interval touches a fully booked segment the minimum is 0, and
// intervals that stop short of it are unaffected.
func TestMinFreeSaturated(t *testing.T) {
	p := New(8, 0)
	if err := p.Reserve(100, 200, 8); err != nil { // saturate [100,200)
		t.Fatal(err)
	}
	if err := p.Reserve(300, 400, 3); err != nil {
		t.Fatal(err)
	}
	if got := p.MinFree(0, 100); got != 8 {
		t.Fatalf("MinFree before the full segment = %d, want 8", got)
	}
	if got := p.MinFree(50, 150); got != 0 {
		t.Fatalf("MinFree overlapping the full segment = %d, want 0", got)
	}
	if got := p.MinFree(100, 500); got != 0 {
		t.Fatalf("MinFree spanning the full segment = %d, want 0 (later segments cannot recover the min)", got)
	}
	if got := p.MinFree(200, 500); got != 5 {
		t.Fatalf("MinFree after the full segment = %d, want 5", got)
	}
}
