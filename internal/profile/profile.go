// Package profile implements the processor-availability profile that
// represents a reservation schedule (the paper's Section 3.2): a step
// function over time giving the number of free processors on a
// homogeneous cluster. All scheduling algorithms interact with the
// reservation system exclusively through this type — finding the
// earliest or latest feasible start for an m-processor, d-second
// reservation, and committing reservations.
//
// Queries are linear scans over the breakpoints, matching the O(R)
// per-task cost assumed by the paper's complexity analysis (Section 6).
package profile

import (
	"fmt"
	"sort"

	"resched/internal/model"
)

// Reservation is one advance reservation: Procs processors held during
// [Start, End). End is exclusive.
type Reservation struct {
	Start model.Time
	End   model.Time
	Procs int
}

// Duration returns End - Start.
func (r Reservation) Duration() model.Duration { return r.End - r.Start }

// Profile is a step function of free processors over [origin, +inf).
// The zero value is not usable; construct with New or FromReservations.
//
// Invariants (checked by (*Profile).check and the package tests):
// times is strictly increasing; free values are within [0, capacity];
// adjacent segments have different free values (the representation is
// coalesced); the final segment extends to model.Infinity.
type Profile struct {
	capacity int
	times    []model.Time // times[i] is the start of segment i
	free     []int        // free[i] processors during [times[i], times[i+1])

	// Scratch areas for the batch fit queries, reused across calls so
	// the scheduling inner loops allocate nothing. They are working
	// state, not part of the profile's value: Clone and CloneInto do
	// not carry them over. A Profile is not safe for concurrent use,
	// with or without these.
	fitActive []int32
	fitRunEnd []model.Time
}

// New returns a profile for a cluster with the given capacity, fully
// free from origin onward.
func New(capacity int, origin model.Time) *Profile {
	if capacity < 1 {
		panic(fmt.Sprintf("profile: capacity %d < 1", capacity))
	}
	return &Profile{
		capacity: capacity,
		times:    []model.Time{origin},
		free:     []int{capacity},
	}
}

// FromReservations builds a profile from origin with the given
// competing reservations already committed. Reservations (or parts of
// them) before origin are clipped; reservations that would exceed the
// cluster capacity yield an error.
func FromReservations(capacity int, origin model.Time, rs []Reservation) (*Profile, error) {
	p := New(capacity, origin)
	for i, r := range rs {
		start, end := r.Start, r.End
		if start < origin {
			start = origin
		}
		if end <= start {
			continue // entirely in the past (or empty)
		}
		if err := p.Reserve(start, end, r.Procs); err != nil {
			return nil, fmt.Errorf("profile: reservation %d (%d procs, [%d,%d)): %w", i, r.Procs, r.Start, r.End, err)
		}
	}
	return p, nil
}

// Capacity returns the total number of processors.
func (p *Profile) Capacity() int { return p.capacity }

// Origin returns the start of the profile's horizon.
func (p *Profile) Origin() model.Time { return p.times[0] }

// NumSegments returns the number of constant-availability segments.
func (p *Profile) NumSegments() int { return len(p.times) }

// Clone returns an independent copy of the profile. Scheduling
// algorithms clone the competing-reservation profile before committing
// their own task reservations.
func (p *Profile) Clone() *Profile {
	return &Profile{
		capacity: p.capacity,
		times:    append([]model.Time(nil), p.times...),
		free:     append([]int(nil), p.free...),
	}
}

// CloneInto overwrites dst with a copy of p, reusing dst's backing
// arrays when they are large enough. dst may be a previously used
// profile of any capacity or a zero &Profile{}; afterwards it is fully
// independent of p. This is the allocation-free path the serving layer
// uses with its pooled scratch profiles, where Clone would copy the
// whole step function into fresh arrays on every request.
func (p *Profile) CloneInto(dst *Profile) {
	dst.capacity = p.capacity
	dst.times = append(dst.times[:0], p.times...)
	dst.free = append(dst.free[:0], p.free...)
}

// segEnd returns the exclusive end of segment i.
func (p *Profile) segEnd(i int) model.Time {
	if i+1 < len(p.times) {
		return p.times[i+1]
	}
	return model.Infinity
}

// segAt returns the index of the segment containing time t. t must be
// >= the origin.
func (p *Profile) segAt(t model.Time) int {
	if t < p.times[0] {
		panic(fmt.Sprintf("profile: time %d before origin %d", t, p.times[0]))
	}
	// First index with times[i] > t, minus one.
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t }) - 1
	return i
}

// FreeAt returns the number of free processors at time t. Times before
// the origin report the origin's availability.
func (p *Profile) FreeAt(t model.Time) int {
	if t < p.times[0] {
		t = p.times[0]
	}
	return p.free[p.segAt(t)]
}

// ReservedAt returns capacity - FreeAt(t).
func (p *Profile) ReservedAt(t model.Time) int { return p.capacity - p.FreeAt(t) }

// MinFree returns the minimum number of free processors over [start,
// end). It panics if end <= start.
func (p *Profile) MinFree(start, end model.Time) int {
	if end <= start {
		panic(fmt.Sprintf("profile: MinFree over empty interval [%d,%d)", start, end))
	}
	if start < p.times[0] {
		start = p.times[0]
	}
	min := p.capacity
	for i := p.segAt(start); i < len(p.times) && p.times[i] < end; i++ {
		if p.free[i] < min {
			min = p.free[i]
			if min == 0 {
				return 0 // the running minimum cannot recover
			}
		}
	}
	return min
}

// AvgFree returns the time-weighted average number of free processors
// over [start, end).
func (p *Profile) AvgFree(start, end model.Time) float64 {
	if end <= start {
		panic(fmt.Sprintf("profile: AvgFree over empty interval [%d,%d)", start, end))
	}
	if start < p.times[0] {
		start = p.times[0]
	}
	if end <= start {
		return float64(p.capacity)
	}
	var acc float64
	for i := p.segAt(start); i < len(p.times) && p.times[i] < end; i++ {
		lo := p.times[i]
		if lo < start {
			lo = start
		}
		hi := p.segEnd(i)
		if hi > end {
			hi = end
		}
		acc += float64(p.free[i]) * float64(hi-lo)
	}
	return acc / float64(end-start)
}

// ensureBreak inserts a breakpoint at time t (>= origin) and returns
// the index of the segment starting at t. If a breakpoint already
// exists at t, it is reused.
func (p *Profile) ensureBreak(t model.Time) int {
	i := p.segAt(t)
	if p.times[i] == t {
		return i
	}
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.free[i+2:], p.free[i+1:])
	p.times[i+1] = t
	p.free[i+1] = p.free[i]
	return i + 1
}

// coalesceBoundary merges segment k into segment k-1 when they have
// equal availability. Reserve and Unreserve shift every segment in the
// touched range [i, j) by the same amount, so segments inside the
// range that were distinct stay distinct: only the two boundaries of
// the range can newly merge, and a full coalescing sweep (the naive
// referenceReserve keeps one) is unnecessary.
func (p *Profile) coalesceBoundary(k int) {
	if k <= 0 || k >= len(p.times) || p.free[k] != p.free[k-1] {
		return
	}
	p.times = append(p.times[:k], p.times[k+1:]...)
	p.free = append(p.free[:k], p.free[k+1:]...)
}

// reserveChecks validates a Reserve call without modifying the
// profile. Shared with referenceReserve so the optimized and naive
// mutators accept and reject exactly the same calls.
func (p *Profile) reserveChecks(start, end model.Time, procs int) error {
	if procs < 1 || procs > p.capacity {
		return fmt.Errorf("cannot reserve %d processors on a %d-processor cluster", procs, p.capacity)
	}
	if start < p.times[0] {
		return fmt.Errorf("reservation start %d before profile origin %d", start, p.times[0])
	}
	if end <= start {
		return fmt.Errorf("reservation interval [%d,%d) is empty", start, end)
	}
	if end >= model.Infinity {
		return fmt.Errorf("reservation end %d beyond the scheduling horizon", end)
	}
	if m := p.MinFree(start, end); m < procs {
		return fmt.Errorf("only %d of %d requested processors free during [%d,%d)", m, procs, start, end)
	}
	return nil
}

// unreserveChecks validates an Unreserve call without modifying the
// profile; see reserveChecks.
func (p *Profile) unreserveChecks(start, end model.Time, procs int) error {
	if procs < 1 || procs > p.capacity {
		return fmt.Errorf("cannot release %d processors on a %d-processor cluster", procs, p.capacity)
	}
	if start < p.times[0] {
		return fmt.Errorf("release start %d before profile origin %d", start, p.times[0])
	}
	if end <= start {
		return fmt.Errorf("release interval [%d,%d) is empty", start, end)
	}
	if end >= model.Infinity {
		return fmt.Errorf("release end %d beyond the scheduling horizon", end)
	}
	for i := p.segAt(start); i < len(p.times) && p.times[i] < end; i++ {
		if p.free[i]+procs > p.capacity {
			return fmt.Errorf("only %d of %d released processors reserved during [%d,%d)", p.capacity-p.free[i], procs, start, end)
		}
	}
	return nil
}

// Reserve commits a reservation of procs processors during [start,
// end). It fails without modifying the profile if the interval lies
// (partly) before the origin, if end <= start, if procs is outside
// [1, capacity], or if fewer than procs processors are free at any
// point of the interval.
func (p *Profile) Reserve(start, end model.Time, procs int) error {
	if err := p.reserveChecks(start, end, procs); err != nil {
		return err
	}
	i := p.ensureBreak(start)
	j := p.ensureBreak(end)
	for k := i; k < j; k++ {
		p.free[k] -= procs
	}
	p.coalesceBoundary(j) // higher boundary first: removing it leaves i valid
	p.coalesceBoundary(i)
	return nil
}

// Unreserve returns procs processors to the profile during [start,
// end) — the inverse of Reserve, used when a reservation is released
// before (or after) it runs. It fails without modifying the profile if
// the interval is empty, lies (partly) outside the horizon, or if
// fewer than procs processors are reserved at any point of the
// interval (releasing capacity that was never booked would corrupt
// the schedule).
func (p *Profile) Unreserve(start, end model.Time, procs int) error {
	if err := p.unreserveChecks(start, end, procs); err != nil {
		return err
	}
	i := p.ensureBreak(start)
	j := p.ensureBreak(end)
	for k := i; k < j; k++ {
		p.free[k] += procs
	}
	p.coalesceBoundary(j) // higher boundary first: removing it leaves i valid
	p.coalesceBoundary(i)
	return nil
}

// EarliestFit returns the earliest start time s >= notBefore such that
// procs processors are free during [s, s+dur). Because the profile's
// final segment is fully free, a fit always exists for procs <=
// capacity; the method panics on procs outside [1, capacity] or
// negative dur (programming errors). A zero dur returns
// max(notBefore, origin).
func (p *Profile) EarliestFit(procs int, dur model.Duration, notBefore model.Time) model.Time {
	if procs < 1 || procs > p.capacity {
		panic(fmt.Sprintf("profile: EarliestFit for %d processors on a %d-processor cluster", procs, p.capacity))
	}
	if dur < 0 {
		panic(fmt.Sprintf("profile: negative duration %d", dur))
	}
	s := notBefore
	if s < p.times[0] {
		s = p.times[0]
	}
	if dur == 0 {
		return s
	}
	for i := p.segAt(s); i < len(p.times); i++ {
		if i == len(p.times)-1 {
			// Horizon segment: it extends to infinity, so any remaining
			// duration fits. Handled explicitly rather than through the
			// segEnd comparison below because s+dur may exceed the
			// model.Infinity sentinel for very late starts or very long
			// durations, which used to make the search fall off the end.
			if p.free[i] < procs {
				panic("profile: horizon segment not fully free")
			}
			return s
		}
		if p.free[i] < procs {
			s = p.segEnd(i) // earliest possible start moves past this segment
			continue
		}
		// s never trails the run's first feasible segment: it starts
		// inside segAt(s) and each infeasible segment advances it to
		// the following breakpoint.
		if p.segEnd(i) >= s+dur {
			return s
		}
		// Segment fits partially; the run continues into the next
		// segment with the same candidate start.
	}
	// Unreachable: the loop always returns from the horizon segment.
	panic("profile: EarliestFit fell off the horizon")
}

// LatestFit returns the latest start time s such that s >= notBefore,
// s+dur <= finishBy, and procs processors are free during [s, s+dur).
// The boolean reports whether any such start exists. A zero dur
// returns finishBy when the window is non-empty.
func (p *Profile) LatestFit(procs int, dur model.Duration, notBefore, finishBy model.Time) (model.Time, bool) {
	if procs < 1 || procs > p.capacity {
		panic(fmt.Sprintf("profile: LatestFit for %d processors on a %d-processor cluster", procs, p.capacity))
	}
	if dur < 0 {
		panic(fmt.Sprintf("profile: negative duration %d", dur))
	}
	lo := notBefore
	if lo < p.times[0] {
		lo = p.times[0]
	}
	if finishBy-dur < lo {
		return 0, false
	}
	if dur == 0 {
		return finishBy, true
	}
	// Walk maximal runs of segments with free >= procs, latest first.
	// Segments entirely above the deadline never resolve a start: a
	// run up there has runStart > finishBy >= runEnd - dur, and a run
	// spanning the deadline gets runEnd clipped to finishBy whether
	// the walk enters it from above or at the deadline segment. So
	// jump straight to the segment containing finishBy.
	i := p.segAt(finishBy)
	for i >= 0 {
		if p.free[i] < procs {
			i--
			continue
		}
		j := i
		for j >= 0 && p.free[j] >= procs {
			j--
		}
		runStart, runEnd := p.times[j+1], p.segEnd(i)
		if runStart < lo {
			runStart = lo
		}
		if runEnd > finishBy {
			runEnd = finishBy
		}
		if runEnd-dur >= runStart {
			return runEnd - dur, true
		}
		i = j
	}
	return 0, false
}

// FitRequest is one (processors, duration) probe of a batch fit query.
// The scheduling algorithms build one request per candidate allocation
// of the task at hand.
type FitRequest struct {
	Procs int
	Dur   model.Duration
}

// EarliestFits answers EarliestFit for every request in a single
// left-to-right sweep of the profile. The candidate scan of the
// scheduling inner loop probes the same profile from the same ready
// time once per candidate allocation; the solo method restarts
// sort.Search plus a linear segment walk for each probe, while the
// batch advances all candidate starts together over one pass of the
// step function. Results are probe-for-probe identical to calling
// EarliestFit(reqs[j].Procs, reqs[j].Dur, notBefore) for each j —
// the differential tests enforce this.
//
// The returned slice is out (grown if needed) with out[j] holding
// request j's earliest start; pass a reused buffer to avoid
// allocation.
func (p *Profile) EarliestFits(reqs []FitRequest, notBefore model.Time, out []model.Time) []model.Time {
	if cap(out) < len(reqs) {
		out = make([]model.Time, len(reqs))
	}
	out = out[:len(reqs)]
	s0 := notBefore
	if s0 < p.times[0] {
		s0 = p.times[0]
	}
	if cap(p.fitActive) < len(reqs) {
		p.fitActive = make([]int32, 0, len(reqs))
	}
	active := p.fitActive[:0]
	for j, r := range reqs {
		if r.Procs < 1 || r.Procs > p.capacity {
			panic(fmt.Sprintf("profile: EarliestFits for %d processors on a %d-processor cluster", r.Procs, p.capacity))
		}
		if r.Dur < 0 {
			panic(fmt.Sprintf("profile: negative duration %d", r.Dur))
		}
		out[j] = s0 // candidate start; final once the request resolves
		if r.Dur > 0 {
			active = append(active, int32(j))
		}
	}
	last := len(p.times) - 1
	for i := p.segAt(s0); len(active) > 0 && i < last; i++ {
		end := p.times[i+1]
		f := p.free[i]
		w := 0
		for _, j := range active {
			r := &reqs[j]
			if f < r.Procs {
				// Blocked: the earliest possible start moves past this
				// segment, exactly as in the solo scan.
				out[j] = end
				active[w] = j
				w++
			} else if end < out[j]+r.Dur {
				// Fits only partially; the run continues into the next
				// segment with the same candidate start.
				active[w] = j
				w++
			}
			// Otherwise resolved at out[j].
		}
		active = active[:w]
	}
	// Horizon segment: it extends to infinity, so every request still
	// active resolves at its current candidate start.
	for _, j := range active {
		if p.free[last] < reqs[j].Procs {
			panic("profile: horizon segment not fully free")
		}
	}
	p.fitActive = active[:0]
	return out
}

// LatestFits answers LatestFit for every request in a single
// right-to-left sweep of the profile, walking each request's maximal
// feasible runs latest-first exactly as the solo method does. Results
// are probe-for-probe identical to calling LatestFit(reqs[j].Procs,
// reqs[j].Dur, notBefore, finishBy) for each j.
//
// The returned slices are out and ok (grown if needed): ok[j] reports
// whether request j has any feasible start, and out[j] holds the
// latest one when it does.
func (p *Profile) LatestFits(reqs []FitRequest, notBefore, finishBy model.Time, out []model.Time, ok []bool) ([]model.Time, []bool) {
	if cap(out) < len(reqs) {
		out = make([]model.Time, len(reqs))
	}
	out = out[:len(reqs)]
	if cap(ok) < len(reqs) {
		ok = make([]bool, len(reqs))
	}
	ok = ok[:len(reqs)]
	lo := notBefore
	if lo < p.times[0] {
		lo = p.times[0]
	}
	if cap(p.fitActive) < len(reqs) {
		p.fitActive = make([]int32, 0, len(reqs))
	}
	if cap(p.fitRunEnd) < len(reqs) {
		p.fitRunEnd = make([]model.Time, len(reqs))
	}
	active := p.fitActive[:0]
	runEnd := p.fitRunEnd[:len(reqs)]
	const noRun = model.Time(-1) << 62 // no feasible run open; below any clipped run end
	for j, r := range reqs {
		if r.Procs < 1 || r.Procs > p.capacity {
			panic(fmt.Sprintf("profile: LatestFits for %d processors on a %d-processor cluster", r.Procs, p.capacity))
		}
		if r.Dur < 0 {
			panic(fmt.Sprintf("profile: negative duration %d", r.Dur))
		}
		out[j], ok[j] = 0, false
		if finishBy-r.Dur < lo {
			continue // no window at all
		}
		if r.Dur == 0 {
			out[j], ok[j] = finishBy, true
			continue
		}
		runEnd[j] = noRun
		active = append(active, int32(j))
	}
	// As in the solo walk, segments entirely above the deadline are
	// irrelevant: the sweep starts at the segment containing finishBy.
	// (Any active request has finishBy > lo >= times[0], so segAt is
	// in range; with none active the sweep is skipped entirely.)
	i0 := -1
	if len(active) > 0 {
		i0 = p.segAt(finishBy)
	}
	for i := i0; len(active) > 0 && i >= 0; i-- {
		if p.segEnd(i) <= lo {
			// Entirely below the window: runs opened here could never
			// reach lo, and runs already open are settled by the flush.
			break
		}
		f := p.free[i]
		// A run known to extend down to this segment resolves once its
		// clipped end leaves room for the duration above floor.
		floor := p.times[i]
		if floor < lo {
			floor = lo
		}
		w := 0
		for _, j := range active {
			r := &reqs[j]
			if f >= r.Procs {
				if runEnd[j] == noRun {
					// A new maximal run opens; its end is clipped by the
					// deadline up front, as the solo walk does.
					e := p.segEnd(i)
					if e > finishBy {
						e = finishBy
					}
					runEnd[j] = e
				}
				if runEnd[j]-r.Dur >= floor {
					// The run start can only be at or below floor, so
					// this is already the latest feasible start.
					out[j], ok[j] = runEnd[j]-r.Dur, true
					continue
				}
				active[w] = j
				w++
				continue
			}
			// Segment infeasible: the run that was open (if any) starts
			// at this segment's end.
			if runEnd[j] != noRun {
				runStart := p.segEnd(i)
				if runStart < lo {
					runStart = lo
				}
				if runEnd[j]-r.Dur >= runStart {
					out[j], ok[j] = runEnd[j]-r.Dur, true
					continue // resolved
				}
				runEnd[j] = noRun
			}
			active[w] = j
			w++
		}
		active = active[:w]
	}
	// Runs still open at the origin start at times[0] <= lo.
	for _, j := range active {
		if runEnd[j] == noRun {
			continue
		}
		if runEnd[j]-reqs[j].Dur >= lo {
			out[j], ok[j] = runEnd[j]-reqs[j].Dur, true
		}
	}
	p.fitActive = active[:0]
	return out, ok
}

// Segment is one constant-availability step: Free processors from
// Start until the next segment's start (the last segment extends to
// model.Infinity).
type Segment struct {
	Start model.Time
	Free  int
}

// Segments returns the profile's step function as a list of segments,
// the exact representation (used by the HTTP API's profile view).
func (p *Profile) Segments() []Segment {
	out := make([]Segment, len(p.times))
	for i := range p.times {
		out[i] = Segment{Start: p.times[i], Free: p.free[i]}
	}
	return out
}

// Reservations returns the profile's busy intervals as a list of
// (start, end, reservedProcs) triples — the complement view of the
// free-processor step function. Fully-free segments are omitted.
func (p *Profile) Reservations() []Reservation {
	var out []Reservation
	for i := range p.times {
		if p.free[i] == p.capacity {
			continue
		}
		out = append(out, Reservation{Start: p.times[i], End: p.segEnd(i), Procs: p.capacity - p.free[i]})
	}
	return out
}

// Check verifies the representation invariants. The package tests call
// it after every mutation; long-lived holders of a profile (the
// reservation book behind reschedd) call it to validate their ledger
// against the live schedule.
func (p *Profile) Check() error { return p.check() }

// check verifies the representation invariants.
func (p *Profile) check() error {
	if len(p.times) == 0 || len(p.times) != len(p.free) {
		return fmt.Errorf("profile: %d times, %d free values", len(p.times), len(p.free))
	}
	for i := range p.times {
		if i > 0 && p.times[i] <= p.times[i-1] {
			return fmt.Errorf("profile: breakpoints not increasing at %d", i)
		}
		if i > 0 && p.free[i] == p.free[i-1] {
			return fmt.Errorf("profile: uncoalesced segments at %d", i)
		}
		if p.free[i] < 0 || p.free[i] > p.capacity {
			return fmt.Errorf("profile: free %d outside [0,%d]", p.free[i], p.capacity)
		}
	}
	if p.free[len(p.free)-1] != p.capacity {
		return fmt.Errorf("profile: final segment not fully free")
	}
	return nil
}

// String renders the profile compactly for debugging.
func (p *Profile) String() string {
	s := fmt.Sprintf("profile{cap %d:", p.capacity)
	for i := range p.times {
		s += fmt.Sprintf(" [%d:%d free]", p.times[i], p.free[i])
	}
	return s + "}"
}
