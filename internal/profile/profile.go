// Package profile implements the processor-availability profile that
// represents a reservation schedule (the paper's Section 3.2): a step
// function over time giving the number of free processors on a
// homogeneous cluster. All scheduling algorithms interact with the
// reservation system exclusively through this type — finding the
// earliest or latest feasible start for an m-processor, d-second
// reservation, and committing reservations.
//
// Queries are linear scans over the breakpoints, matching the O(R)
// per-task cost assumed by the paper's complexity analysis (Section 6).
package profile

import (
	"fmt"
	"sort"

	"resched/internal/model"
)

// Reservation is one advance reservation: Procs processors held during
// [Start, End). End is exclusive.
type Reservation struct {
	Start model.Time
	End   model.Time
	Procs int
}

// Duration returns End - Start.
func (r Reservation) Duration() model.Duration { return r.End - r.Start }

// Profile is a step function of free processors over [origin, +inf).
// The zero value is not usable; construct with New or FromReservations.
//
// Invariants (checked by (*Profile).check and the package tests):
// times is strictly increasing; free values are within [0, capacity];
// adjacent segments have different free values (the representation is
// coalesced); the final segment extends to model.Infinity.
type Profile struct {
	capacity int
	times    []model.Time // times[i] is the start of segment i
	free     []int        // free[i] processors during [times[i], times[i+1])
}

// New returns a profile for a cluster with the given capacity, fully
// free from origin onward.
func New(capacity int, origin model.Time) *Profile {
	if capacity < 1 {
		panic(fmt.Sprintf("profile: capacity %d < 1", capacity))
	}
	return &Profile{
		capacity: capacity,
		times:    []model.Time{origin},
		free:     []int{capacity},
	}
}

// FromReservations builds a profile from origin with the given
// competing reservations already committed. Reservations (or parts of
// them) before origin are clipped; reservations that would exceed the
// cluster capacity yield an error.
func FromReservations(capacity int, origin model.Time, rs []Reservation) (*Profile, error) {
	p := New(capacity, origin)
	for i, r := range rs {
		start, end := r.Start, r.End
		if start < origin {
			start = origin
		}
		if end <= start {
			continue // entirely in the past (or empty)
		}
		if err := p.Reserve(start, end, r.Procs); err != nil {
			return nil, fmt.Errorf("profile: reservation %d (%d procs, [%d,%d)): %w", i, r.Procs, r.Start, r.End, err)
		}
	}
	return p, nil
}

// Capacity returns the total number of processors.
func (p *Profile) Capacity() int { return p.capacity }

// Origin returns the start of the profile's horizon.
func (p *Profile) Origin() model.Time { return p.times[0] }

// NumSegments returns the number of constant-availability segments.
func (p *Profile) NumSegments() int { return len(p.times) }

// Clone returns an independent copy of the profile. Scheduling
// algorithms clone the competing-reservation profile before committing
// their own task reservations.
func (p *Profile) Clone() *Profile {
	return &Profile{
		capacity: p.capacity,
		times:    append([]model.Time(nil), p.times...),
		free:     append([]int(nil), p.free...),
	}
}

// segEnd returns the exclusive end of segment i.
func (p *Profile) segEnd(i int) model.Time {
	if i+1 < len(p.times) {
		return p.times[i+1]
	}
	return model.Infinity
}

// segAt returns the index of the segment containing time t. t must be
// >= the origin.
func (p *Profile) segAt(t model.Time) int {
	if t < p.times[0] {
		panic(fmt.Sprintf("profile: time %d before origin %d", t, p.times[0]))
	}
	// First index with times[i] > t, minus one.
	i := sort.Search(len(p.times), func(i int) bool { return p.times[i] > t }) - 1
	return i
}

// FreeAt returns the number of free processors at time t. Times before
// the origin report the origin's availability.
func (p *Profile) FreeAt(t model.Time) int {
	if t < p.times[0] {
		t = p.times[0]
	}
	return p.free[p.segAt(t)]
}

// ReservedAt returns capacity - FreeAt(t).
func (p *Profile) ReservedAt(t model.Time) int { return p.capacity - p.FreeAt(t) }

// MinFree returns the minimum number of free processors over [start,
// end). It panics if end <= start.
func (p *Profile) MinFree(start, end model.Time) int {
	if end <= start {
		panic(fmt.Sprintf("profile: MinFree over empty interval [%d,%d)", start, end))
	}
	if start < p.times[0] {
		start = p.times[0]
	}
	min := p.capacity
	for i := p.segAt(start); i < len(p.times) && p.times[i] < end; i++ {
		if p.free[i] < min {
			min = p.free[i]
		}
	}
	return min
}

// AvgFree returns the time-weighted average number of free processors
// over [start, end).
func (p *Profile) AvgFree(start, end model.Time) float64 {
	if end <= start {
		panic(fmt.Sprintf("profile: AvgFree over empty interval [%d,%d)", start, end))
	}
	if start < p.times[0] {
		start = p.times[0]
	}
	if end <= start {
		return float64(p.capacity)
	}
	var acc float64
	for i := p.segAt(start); i < len(p.times) && p.times[i] < end; i++ {
		lo := p.times[i]
		if lo < start {
			lo = start
		}
		hi := p.segEnd(i)
		if hi > end {
			hi = end
		}
		acc += float64(p.free[i]) * float64(hi-lo)
	}
	return acc / float64(end-start)
}

// ensureBreak inserts a breakpoint at time t (>= origin) and returns
// the index of the segment starting at t. If a breakpoint already
// exists at t, it is reused.
func (p *Profile) ensureBreak(t model.Time) int {
	i := p.segAt(t)
	if p.times[i] == t {
		return i
	}
	p.times = append(p.times, 0)
	p.free = append(p.free, 0)
	copy(p.times[i+2:], p.times[i+1:])
	copy(p.free[i+2:], p.free[i+1:])
	p.times[i+1] = t
	p.free[i+1] = p.free[i]
	return i + 1
}

// coalesce merges adjacent segments with equal availability.
func (p *Profile) coalesce() {
	w := 0
	for i := 0; i < len(p.times); i++ {
		if w > 0 && p.free[w-1] == p.free[i] {
			continue
		}
		p.times[w] = p.times[i]
		p.free[w] = p.free[i]
		w++
	}
	p.times = p.times[:w]
	p.free = p.free[:w]
}

// Reserve commits a reservation of procs processors during [start,
// end). It fails without modifying the profile if the interval lies
// (partly) before the origin, if end <= start, if procs is outside
// [1, capacity], or if fewer than procs processors are free at any
// point of the interval.
func (p *Profile) Reserve(start, end model.Time, procs int) error {
	if procs < 1 || procs > p.capacity {
		return fmt.Errorf("cannot reserve %d processors on a %d-processor cluster", procs, p.capacity)
	}
	if start < p.times[0] {
		return fmt.Errorf("reservation start %d before profile origin %d", start, p.times[0])
	}
	if end <= start {
		return fmt.Errorf("reservation interval [%d,%d) is empty", start, end)
	}
	if end >= model.Infinity {
		return fmt.Errorf("reservation end %d beyond the scheduling horizon", end)
	}
	if p.MinFree(start, end) < procs {
		return fmt.Errorf("only %d of %d requested processors free during [%d,%d)", p.MinFree(start, end), procs, start, end)
	}
	i := p.ensureBreak(start)
	j := p.ensureBreak(end)
	for k := i; k < j; k++ {
		p.free[k] -= procs
	}
	p.coalesce()
	return nil
}

// Unreserve returns procs processors to the profile during [start,
// end) — the inverse of Reserve, used when a reservation is released
// before (or after) it runs. It fails without modifying the profile if
// the interval is empty, lies (partly) outside the horizon, or if
// fewer than procs processors are reserved at any point of the
// interval (releasing capacity that was never booked would corrupt
// the schedule).
func (p *Profile) Unreserve(start, end model.Time, procs int) error {
	if procs < 1 || procs > p.capacity {
		return fmt.Errorf("cannot release %d processors on a %d-processor cluster", procs, p.capacity)
	}
	if start < p.times[0] {
		return fmt.Errorf("release start %d before profile origin %d", start, p.times[0])
	}
	if end <= start {
		return fmt.Errorf("release interval [%d,%d) is empty", start, end)
	}
	if end >= model.Infinity {
		return fmt.Errorf("release end %d beyond the scheduling horizon", end)
	}
	for i := p.segAt(start); i < len(p.times) && p.times[i] < end; i++ {
		if p.free[i]+procs > p.capacity {
			return fmt.Errorf("only %d of %d released processors reserved during [%d,%d)", p.capacity-p.free[i], procs, start, end)
		}
	}
	i := p.ensureBreak(start)
	j := p.ensureBreak(end)
	for k := i; k < j; k++ {
		p.free[k] += procs
	}
	p.coalesce()
	return nil
}

// EarliestFit returns the earliest start time s >= notBefore such that
// procs processors are free during [s, s+dur). Because the profile's
// final segment is fully free, a fit always exists for procs <=
// capacity; the method panics on procs outside [1, capacity] or
// negative dur (programming errors). A zero dur returns
// max(notBefore, origin).
func (p *Profile) EarliestFit(procs int, dur model.Duration, notBefore model.Time) model.Time {
	if procs < 1 || procs > p.capacity {
		panic(fmt.Sprintf("profile: EarliestFit for %d processors on a %d-processor cluster", procs, p.capacity))
	}
	if dur < 0 {
		panic(fmt.Sprintf("profile: negative duration %d", dur))
	}
	s := notBefore
	if s < p.times[0] {
		s = p.times[0]
	}
	if dur == 0 {
		return s
	}
	for i := p.segAt(s); i < len(p.times); i++ {
		if i == len(p.times)-1 {
			// Horizon segment: it extends to infinity, so any remaining
			// duration fits. Handled explicitly rather than through the
			// segEnd comparison below because s+dur may exceed the
			// model.Infinity sentinel for very late starts or very long
			// durations, which used to make the search fall off the end.
			if p.free[i] < procs {
				panic("profile: horizon segment not fully free")
			}
			return s
		}
		if p.free[i] < procs {
			s = p.segEnd(i) // earliest possible start moves past this segment
			continue
		}
		// s never trails the run's first feasible segment: it starts
		// inside segAt(s) and each infeasible segment advances it to
		// the following breakpoint.
		if p.segEnd(i) >= s+dur {
			return s
		}
		// Segment fits partially; the run continues into the next
		// segment with the same candidate start.
	}
	// Unreachable: the loop always returns from the horizon segment.
	panic("profile: EarliestFit fell off the horizon")
}

// LatestFit returns the latest start time s such that s >= notBefore,
// s+dur <= finishBy, and procs processors are free during [s, s+dur).
// The boolean reports whether any such start exists. A zero dur
// returns finishBy when the window is non-empty.
func (p *Profile) LatestFit(procs int, dur model.Duration, notBefore, finishBy model.Time) (model.Time, bool) {
	if procs < 1 || procs > p.capacity {
		panic(fmt.Sprintf("profile: LatestFit for %d processors on a %d-processor cluster", procs, p.capacity))
	}
	if dur < 0 {
		panic(fmt.Sprintf("profile: negative duration %d", dur))
	}
	lo := notBefore
	if lo < p.times[0] {
		lo = p.times[0]
	}
	if finishBy-dur < lo {
		return 0, false
	}
	if dur == 0 {
		return finishBy, true
	}
	// Walk maximal runs of segments with free >= procs, latest first.
	i := len(p.times) - 1
	for i >= 0 {
		if p.free[i] < procs {
			i--
			continue
		}
		j := i
		for j >= 0 && p.free[j] >= procs {
			j--
		}
		runStart, runEnd := p.times[j+1], p.segEnd(i)
		if runStart < lo {
			runStart = lo
		}
		if runEnd > finishBy {
			runEnd = finishBy
		}
		if runEnd-dur >= runStart {
			return runEnd - dur, true
		}
		i = j
	}
	return 0, false
}

// Segment is one constant-availability step: Free processors from
// Start until the next segment's start (the last segment extends to
// model.Infinity).
type Segment struct {
	Start model.Time
	Free  int
}

// Segments returns the profile's step function as a list of segments,
// the exact representation (used by the HTTP API's profile view).
func (p *Profile) Segments() []Segment {
	out := make([]Segment, len(p.times))
	for i := range p.times {
		out[i] = Segment{Start: p.times[i], Free: p.free[i]}
	}
	return out
}

// Reservations returns the profile's busy intervals as a list of
// (start, end, reservedProcs) triples — the complement view of the
// free-processor step function. Fully-free segments are omitted.
func (p *Profile) Reservations() []Reservation {
	var out []Reservation
	for i := range p.times {
		if p.free[i] == p.capacity {
			continue
		}
		out = append(out, Reservation{Start: p.times[i], End: p.segEnd(i), Procs: p.capacity - p.free[i]})
	}
	return out
}

// Check verifies the representation invariants. The package tests call
// it after every mutation; long-lived holders of a profile (the
// reservation book behind reschedd) call it to validate their ledger
// against the live schedule.
func (p *Profile) Check() error { return p.check() }

// check verifies the representation invariants.
func (p *Profile) check() error {
	if len(p.times) == 0 || len(p.times) != len(p.free) {
		return fmt.Errorf("profile: %d times, %d free values", len(p.times), len(p.free))
	}
	for i := range p.times {
		if i > 0 && p.times[i] <= p.times[i-1] {
			return fmt.Errorf("profile: breakpoints not increasing at %d", i)
		}
		if i > 0 && p.free[i] == p.free[i-1] {
			return fmt.Errorf("profile: uncoalesced segments at %d", i)
		}
		if p.free[i] < 0 || p.free[i] > p.capacity {
			return fmt.Errorf("profile: free %d outside [0,%d]", p.free[i], p.capacity)
		}
	}
	if p.free[len(p.free)-1] != p.capacity {
		return fmt.Errorf("profile: final segment not fully free")
	}
	return nil
}

// String renders the profile compactly for debugging.
func (p *Profile) String() string {
	s := fmt.Sprintf("profile{cap %d:", p.capacity)
	for i := range p.times {
		s += fmt.Sprintf(" [%d:%d free]", p.times[i], p.free[i])
	}
	return s + "}"
}
