package profile

import (
	"fmt"
	"math/rand"
	"testing"

	"resched/internal/model"
)

// reserveSpec is one committed reservation a differential test replays
// onto several backends.
type reserveSpec struct {
	start, end model.Time
	procs      int
}

// randomReservations draws n reservations that are all individually
// feasible when applied in order to a fresh profile of the given
// capacity, mirroring how the book's ledger grows.
func randomReservations(rng *rand.Rand, n, capacity int, horizon model.Time) []reserveSpec {
	oracle := New(capacity, 0)
	specs := make([]reserveSpec, 0, n)
	for len(specs) < n {
		start := model.Time(rng.Int63n(int64(horizon)))
		end := start + 1 + model.Duration(rng.Int63n(int64(horizon)/8+1))
		if end > horizon {
			end = horizon
		}
		if end <= start {
			continue
		}
		procs := 1 + rng.Intn(capacity)
		if m := oracle.MinFree(start, end); m < procs {
			if m < 1 {
				continue
			}
			procs = 1 + rng.Intn(m)
		}
		if err := oracle.Reserve(start, end, procs); err != nil {
			t := fmt.Sprintf("oracle reserve: %v", err)
			panic(t)
		}
		specs = append(specs, reserveSpec{start, end, procs})
	}
	return specs
}

// TestPersistentMatchesFlatRandom replays seeded random
// Reserve/Unreserve/query sequences against a PersistentProfile and
// the flat oracle, requiring bit-identical outcomes after every step,
// and keeps every pre-step Clone alive to verify old roots never
// observe later mutations.
func TestPersistentMatchesFlatRandom(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			capacity := 4 + rng.Intn(60)
			flat := New(capacity, 0)
			pers := NewPersistent(capacity, 0)

			type frozen struct {
				handle *PersistentProfile
				render string
			}
			var history []frozen

			var live []reserveSpec
			for step := 0; step < 300; step++ {
				history = append(history, frozen{pers.Clone(), pers.String()})

				start := model.Time(rng.Int63n(10_000))
				end := start + 1 + model.Duration(rng.Int63n(500))
				procs := 1 + rng.Intn(capacity+4)

				switch rng.Intn(4) {
				case 0, 1: // Reserve
					errF := flat.Reserve(start, end, procs)
					errP := pers.Reserve(start, end, procs)
					if (errF == nil) != (errP == nil) {
						t.Fatalf("step %d: Reserve flat err=%v, persistent err=%v", step, errF, errP)
					}
					if errF != nil && errF.Error() != errP.Error() {
						t.Fatalf("step %d: Reserve errors diverged\nflat: %v\npersistent: %v", step, errF, errP)
					}
					if errF == nil {
						live = append(live, reserveSpec{start, end, procs})
					}
				case 2: // Unreserve a live reservation (or a bogus window)
					spec := reserveSpec{start, end, procs}
					if len(live) > 0 && rng.Intn(4) != 0 {
						i := rng.Intn(len(live))
						spec = live[i]
						live = append(live[:i], live[i+1:]...)
					}
					errF := flat.Unreserve(spec.start, spec.end, spec.procs)
					errP := pers.Unreserve(spec.start, spec.end, spec.procs)
					if (errF == nil) != (errP == nil) {
						t.Fatalf("step %d: Unreserve flat err=%v, persistent err=%v", step, errF, errP)
					}
					if errF != nil {
						if errF.Error() != errP.Error() {
							t.Fatalf("step %d: Unreserve errors diverged\nflat: %v\npersistent: %v", step, errF, errP)
						}
						live = append(live, spec) // not actually released
					}
				case 3: // queries
					sF, errF := flat.EarliestFitChecked(procs, end-start, start)
					sP, errP := pers.EarliestFitChecked(procs, end-start, start)
					if (errF == nil) != (errP == nil) || sF != sP {
						t.Fatalf("step %d: EarliestFitChecked flat (%d,%v), persistent (%d,%v)", step, sF, errF, sP, errP)
					}
					vF, errF := flat.MinFreeChecked(start, end)
					vP, errP := pers.MinFreeChecked(start, end)
					if (errF == nil) != (errP == nil) || vF != vP {
						t.Fatalf("step %d: MinFreeChecked flat (%d,%v), persistent (%d,%v)", step, vF, errF, vP, errP)
					}
					aF, aErrF := flat.AvgFreeChecked(start, end)
					aP, aErrP := pers.AvgFreeChecked(start, end)
					if (aErrF == nil) != (aErrP == nil) || aF != aP {
						t.Fatalf("step %d: AvgFreeChecked flat (%v,%v), persistent (%v,%v)", step, aF, aErrF, aP, aErrP)
					}
					if fF := flat.FreeAt(start); fF != pers.FreeAt(start) {
						t.Fatalf("step %d: FreeAt flat %d, persistent %d", step, fF, pers.FreeAt(start))
					}
				}
				if err := pers.Check(); err != nil {
					t.Fatalf("step %d: persistent invariants: %v", step, err)
				}
				if pers.String() != flat.String() {
					t.Fatalf("step %d: divergence\n  persistent %s\n  flat       %s", step, pers, flat)
				}
				if pers.NumSegments() != flat.NumSegments() {
					t.Fatalf("step %d: NumSegments persistent %d, flat %d", step, pers.NumSegments(), flat.NumSegments())
				}
			}

			// Persistence: every frozen handle still renders exactly what
			// it rendered when taken, and still satisfies the invariants.
			for i, h := range history {
				if got := h.handle.String(); got != h.render {
					t.Fatalf("frozen handle %d mutated:\n  was %s\n  now %s", i, h.render, got)
				}
				if err := h.handle.Check(); err != nil {
					t.Fatalf("frozen handle %d invariants: %v", i, err)
				}
			}
		})
	}
}

// TestPersistentWindowConcat splits a horizon into shard-style windows,
// applies each reservation clipped per window (exactly as the book's
// applyLocked does), and requires ConcatPersistent of the windows to
// match a flat profile holding the unclipped reservations byte for
// byte — including boundary coalescing where a reservation spans or
// abuts a window edge.
func TestPersistentWindowConcat(t *testing.T) {
	const capacity = 32
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed * 101))
		nWin := 1 + rng.Intn(7)
		epoch := model.Duration(64 + rng.Int63n(256))
		horizon := model.Time(int64(nWin) * int64(epoch) * 2)

		wins := make([]*PersistentProfile, nWin)
		for i := range wins {
			start := model.Time(int64(i) * int64(epoch))
			end := model.Time(int64(i+1) * int64(epoch))
			if i == nWin-1 {
				end = model.Infinity
			}
			wins[i] = NewPersistentWindow(capacity, start, end, uint64(i)<<32)
		}
		flat := New(capacity, 0)

		for _, spec := range randomReservations(rng, 60, capacity, horizon) {
			if err := flat.Reserve(spec.start, spec.end, spec.procs); err != nil {
				t.Fatalf("seed %d: flat reserve: %v", seed, err)
			}
			for _, w := range wins {
				s, e := spec.start, spec.end
				if s < w.Origin() {
					s = w.Origin()
				}
				if e > w.Horizon() {
					e = w.Horizon()
				}
				if e <= s {
					continue
				}
				if err := w.Reserve(s, e, spec.procs); err != nil {
					t.Fatalf("seed %d: window [%d,%d) reserve [%d,%d)x%d: %v",
						seed, w.Origin(), w.Horizon(), s, e, spec.procs, err)
				}
			}
			all := ConcatPersistent(wins)
			if err := all.Check(); err != nil {
				t.Fatalf("seed %d: concat invariants: %v", seed, err)
			}
			if all.String() != flat.String() {
				t.Fatalf("seed %d: concat divergence\n  concat %s\n  flat   %s", seed, all, flat)
			}
			// The concatenated handle answers queries identically too.
			if q := flat.EarliestFit(capacity/2, 10, 0); q != all.EarliestFit(capacity/2, 10, 0) {
				t.Fatalf("seed %d: concat EarliestFit %d, flat %d", seed, all.EarliestFit(capacity/2, 10, 0), q)
			}
			// And concatenation left the windows untouched.
			for i, w := range wins {
				if err := w.Check(); err != nil {
					t.Fatalf("seed %d: window %d invariants after concat: %v", seed, i, err)
				}
			}
		}

		// A concatenated handle is a full profile: staging mutations on
		// it must not write through the shared shard roots.
		all := ConcatPersistent(wins)
		before := make([]string, nWin)
		for i, w := range wins {
			before[i] = w.String()
		}
		if s := all.EarliestFit(1, 5, 0); true {
			if err := all.Reserve(s, s+5, 1); err != nil {
				t.Fatalf("seed %d: staging reserve on concat handle: %v", seed, err)
			}
		}
		for i, w := range wins {
			if w.String() != before[i] {
				t.Fatalf("seed %d: window %d mutated by staging on concat handle", seed, i)
			}
		}
	}
}

// TestConcatPersistentContracts pins the panic contracts: empty input
// and non-abutting windows are programming errors.
func TestConcatPersistentContracts(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("empty", func() { ConcatPersistent(nil) })
	a := NewPersistentWindow(8, 0, 100, 0)
	b := NewPersistentWindow(8, 200, model.Infinity, 1<<32)
	mustPanic("gap", func() { ConcatPersistent([]*PersistentProfile{a, b}) })
	c := NewPersistentWindow(4, 100, model.Infinity, 1<<32)
	mustPanic("capacity", func() { ConcatPersistent([]*PersistentProfile{a, c}) })
}

// TestPersistentCloneIsolation is the directed version of the frozen
// history check: mutations on either side of a Clone are invisible to
// the other.
func TestPersistentCloneIsolation(t *testing.T) {
	p := NewPersistent(16, 0)
	if err := p.Reserve(10, 20, 5); err != nil {
		t.Fatal(err)
	}
	snap := p.Clone()
	want := snap.String()

	for i := 0; i < 50; i++ {
		s := model.Time(i * 7)
		if err := p.Reserve(s, s+3, 1); err != nil {
			t.Fatalf("reserve %d: %v", i, err)
		}
	}
	if got := snap.String(); got != want {
		t.Fatalf("snapshot observed post-clone mutation:\n  was %s\n  now %s", want, got)
	}
	if err := snap.Unreserve(10, 20, 5); err != nil {
		t.Fatal(err)
	}
	if snap.NumSegments() != 1 {
		t.Fatalf("snapshot after unreserve: %s", snap)
	}
	if p.FreeAt(12) == 16 {
		t.Fatalf("live profile observed snapshot-side unreserve: %s", p)
	}
}

// TestPersistentFlatRoundTrip checks Flat/NewPersistentFromProfile and
// AppendSegmentsTo reproduce the step function exactly.
func TestPersistentFlatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := NewPersistent(24, 5)
	flatRef := New(24, 5)
	for _, spec := range randomReservations(rng, 40, 24, 4000) {
		s, e := spec.start+5, spec.end+5
		if err1, err2 := p.Reserve(s, e, spec.procs), flatRef.Reserve(s, e, spec.procs); (err1 == nil) != (err2 == nil) {
			t.Fatalf("reserve divergence: %v vs %v", err1, err2)
		}
	}
	if got := p.Flat().String(); got != flatRef.String() {
		t.Fatalf("Flat round trip:\n  got  %s\n  want %s", got, flatRef)
	}
	back := NewPersistentFromProfile(flatRef)
	if back.String() != flatRef.String() || back.Check() != nil {
		t.Fatalf("NewPersistentFromProfile:\n  got  %s\n  want %s", back, flatRef)
	}
	var dst Profile
	dst.Reset(p.Capacity(), p.Origin())
	p.AppendSegmentsTo(&dst)
	if dst.String() != flatRef.String() {
		t.Fatalf("AppendSegmentsTo:\n  got  %s\n  want %s", dst.String(), flatRef)
	}
	if err := dst.Check(); err != nil {
		t.Fatalf("AppendSegmentsTo invariants: %v", err)
	}
}

// TestCopyIntervalsPersistent pins the CopyIntervals fast path: a
// persistent source copies O(1) into an isolated working handle.
func TestCopyIntervalsPersistent(t *testing.T) {
	p := NewPersistent(8, 0)
	if err := p.Reserve(3, 9, 2); err != nil {
		t.Fatal(err)
	}
	w := CopyIntervals(p, nil)
	if _, ok := w.(*PersistentProfile); !ok {
		t.Fatalf("CopyIntervals backend changed: %T", w)
	}
	if err := w.Reserve(20, 30, 8); err != nil {
		t.Fatal(err)
	}
	if p.FreeAt(25) != 8 {
		t.Fatalf("working copy wrote through to source: %s", p)
	}
}

// FuzzPersistentVsFlat is FuzzTreeProfileVsFlat for the persistent
// backend, with one extra invariant per step: a handle cloned before
// the operation must render identically after it (copy-on-write — no
// write ever reaches a shared node).
func FuzzPersistentVsFlat(f *testing.F) {
	f.Add(uint8(7), []byte{0, 10, 0, 20, 0, 3, 2, 15, 0, 10, 0, 2})
	f.Add(uint8(0), []byte{0, 0, 0, 0, 0, 0})
	f.Add(uint8(31), []byte{0, 1, 0, 1, 0, 255, 3, 1, 0, 1, 0, 255, 4, 9, 0, 9, 0, 9})
	f.Fuzz(func(t *testing.T, capRaw uint8, ops []byte) {
		capacity := int(capRaw%32) + 1
		if len(ops) > 64*6 {
			ops = ops[:64*6]
		}
		flat := New(capacity, 0)
		pers := NewPersistent(capacity, 0)
		for step := 0; len(ops) >= 6; step++ {
			op, start, end, procs := decodeTreeOp(ops)
			ops = ops[6:]

			snap := pers.Clone()
			frozen := snap.String()

			switch op {
			case 0: // Reserve
				errF := flat.Reserve(start, end, procs)
				errP := pers.Reserve(start, end, procs)
				if (errF == nil) != (errP == nil) {
					t.Fatalf("step %d: Reserve flat err=%v, persistent err=%v", step, errF, errP)
				}
				if errF != nil && errF.Error() != errP.Error() {
					t.Fatalf("step %d: Reserve errors diverged\nflat: %v\npersistent: %v", step, errF, errP)
				}
			case 1: // Unreserve
				errF := flat.Unreserve(start, end, procs)
				errP := pers.Unreserve(start, end, procs)
				if (errF == nil) != (errP == nil) {
					t.Fatalf("step %d: Unreserve flat err=%v, persistent err=%v", step, errF, errP)
				}
				if errF != nil && errF.Error() != errP.Error() {
					t.Fatalf("step %d: Unreserve errors diverged\nflat: %v\npersistent: %v", step, errF, errP)
				}
			case 2: // EarliestFit (via Checked so bad args reject, not panic)
				sF, errF := flat.EarliestFitChecked(procs, end-start, start)
				sP, errP := pers.EarliestFitChecked(procs, end-start, start)
				if (errF == nil) != (errP == nil) || sF != sP {
					t.Fatalf("step %d: EarliestFitChecked flat (%d,%v), persistent (%d,%v)", step, sF, errF, sP, errP)
				}
			case 3: // LatestFit over a window derived from the operands
				sF, okF, errF := flat.LatestFitChecked(procs, model.Duration(procs), start, end)
				sP, okP, errP := pers.LatestFitChecked(procs, model.Duration(procs), start, end)
				if (errF == nil) != (errP == nil) || okF != okP || (okF && sF != sP) {
					t.Fatalf("step %d: LatestFitChecked flat (%d,%v,%v), persistent (%d,%v,%v)",
						step, sF, okF, errF, sP, okP, errP)
				}
			case 4: // MinFree
				vF, errF := flat.MinFreeChecked(start, end)
				vP, errP := pers.MinFreeChecked(start, end)
				if (errF == nil) != (errP == nil) || vF != vP {
					t.Fatalf("step %d: MinFreeChecked flat (%d,%v), persistent (%d,%v)", step, vF, errF, vP, errP)
				}
			}
			if snap.String() != frozen {
				t.Fatalf("step %d: op %d wrote through a shared node:\n  was %s\n  now %s", step, op, frozen, snap.String())
			}
			if err := pers.Check(); err != nil {
				t.Fatalf("step %d: persistent invariants: %v", step, err)
			}
			if pers.String() != flat.String() {
				t.Fatalf("step %d: divergence\n  persistent %s\n  flat       %s", step, pers, flat)
			}
		}
	})
}
