package profile

// PersistentProfile is the copy-on-write availability-profile backend:
// the same treap-indexed step function as TreeProfile, but with
// immutable heap-allocated nodes and path-copying mutations instead of
// an in-place arena. Every Reserve/Unreserve clones only the O(log n)
// nodes on its descent path (plus the O(log n) off-path children a
// lazy-tag pushdown touches) and publishes a fresh root; every node
// reachable from a previously published root is never written again.
//
// That makes Clone an O(1) struct copy sharing the root pointer, which
// is what the sharded reservation book needs: taking a global snapshot
// becomes grabbing one root pointer + stamp per shard under RLock —
// O(#shards) instead of O(R) — and an old snapshot handle keeps
// answering queries against its frozen root while commits path-copy
// new roots beside it. Old roots are reclaimed by the Go GC once no
// snapshot references them; there is no free list and no manual
// reclamation.
//
// Read paths stay mutation-free exactly as in TreeProfile: query
// descents accumulate pending lazy adds of strict ancestors in an acc
// parameter and never push tags down, so a root shared by any number
// of snapshot handles can be probed concurrently without copying.
//
// A PersistentProfile can also represent a bounded window
// [origin, horizon) of the step function — the shard-local trees of
// the reservation book — and key-adjacent windows concatenate in
// O(log n) path-copies per boundary (ConcatPersistent), which is how
// a multi-shard snapshot assembles one queryable handle without
// flattening. Full-horizon handles (horizon == model.Infinity) are
// semantically bit-identical to the flat backend — same results, same
// error messages, same panics — enforced by the differential tests
// and FuzzPersistentVsFlat.

import (
	"fmt"

	"resched/internal/model"
)

// pnode is one immutable treap node: the segment starting at key holds
// val free processors until the next breakpoint. mn/mx aggregate val
// over the node's subtree; add is the pending lazy increment for both
// child subtrees (the node's own val/mn/mx are always current).
//
// COW invariant: a pnode reachable from any published root is never
// written. Mutations clone the node (pclone/papplied) and write only
// the clone; reschedvet's snapshotmut fixtures pin the discipline.
type pnode struct {
	l, r *pnode
	prio uint64
	key  model.Time
	val  int
	mn   int
	mx   int
	add  int
}

// PersistentProfile is a step function of free processors over
// [origin, horizon) answering queries in O(log n) with O(1) snapshots.
// The zero value is not usable; construct with NewPersistent,
// NewPersistentFromProfile, or NewPersistentWindow.
type PersistentProfile struct {
	capacity int
	origin   model.Time
	// horizon is the exclusive end of the represented window:
	// model.Infinity for a full profile, the shard window's end for the
	// reservation book's per-shard trees. Reserve/Unreserve at
	// end == horizon skip the end breakpoint (the neighbouring window
	// owns it); ConcatPersistent joins adjacent windows back into a
	// full-horizon profile.
	horizon model.Time
	root    *pnode
	n       int // live segment count
	seed    uint64
}

// NewPersistent returns an empty persistent profile: capacity
// processors free from origin onward.
func NewPersistent(capacity int, origin model.Time) *PersistentProfile {
	return NewPersistentWindow(capacity, origin, model.Infinity, 0)
}

// NewPersistentWindow returns an empty persistent profile representing
// the window [origin, horizon): capacity processors free throughout.
// seedBase offsets the node-priority stream so sibling windows (the
// book's shards) draw from disjoint splitmix64 streams and their
// treaps stay balanced after ConcatPersistent.
func NewPersistentWindow(capacity int, origin, horizon model.Time, seedBase uint64) *PersistentProfile {
	if capacity < 1 {
		panic(fmt.Sprintf("profile: capacity %d < 1", capacity))
	}
	if horizon <= origin {
		panic(fmt.Sprintf("profile: window [%d,%d) is empty", origin, horizon))
	}
	t := &PersistentProfile{capacity: capacity, origin: origin, horizon: horizon, seed: seedBase}
	t.root = t.newNode(origin, capacity)
	t.n = 1
	return t
}

// NewPersistentFromProfile returns a persistent copy of the flat
// profile p, built in O(n). p is not retained.
func NewPersistentFromProfile(p *Profile) *PersistentProfile {
	t := &PersistentProfile{capacity: p.capacity, origin: p.times[0], horizon: model.Infinity}
	t.buildSorted(p.times, p.free)
	return t
}

// buildSorted builds a proper random treap from the sorted step
// function in O(n): push each new rightmost node onto the right spine,
// rotating by priority, then recompute aggregates bottom-up. All nodes
// are fresh here, so in-place writes are safe.
func (t *PersistentProfile) buildSorted(times []model.Time, free []int) {
	spine := make([]*pnode, 0, 48)
	for i := range times {
		nd := t.newNode(times[i], free[i])
		var last *pnode
		for len(spine) > 0 && spine[len(spine)-1].prio < nd.prio {
			last = spine[len(spine)-1]
			spine = spine[:len(spine)-1]
		}
		nd.l = last
		if len(spine) > 0 {
			spine[len(spine)-1].r = nd
		} else {
			t.root = nd
		}
		spine = append(spine, nd)
	}
	t.n = len(times)
	pullAllFresh(t.root)
}

// pullAllFresh recomputes aggregates bottom-up over a tree of fresh,
// unshared nodes (buildSorted only).
func pullAllFresh(n *pnode) {
	if n == nil {
		return
	}
	pullAllFresh(n.l)
	pullAllFresh(n.r)
	ppull(n)
}

// Clone returns an independent handle in O(1): the root is shared and
// immutable, so both copies mutate by path-copying without observing
// each other.
func (t *PersistentProfile) Clone() *PersistentProfile {
	c := *t
	return &c
}

// CloneIntervals implements Intervals.
func (t *PersistentProfile) CloneIntervals() Intervals { return t.Clone() }

// Flat returns an independent flat-backend copy of the step function.
func (t *PersistentProfile) Flat() *Profile {
	p := &Profile{
		capacity: t.capacity,
		times:    make([]model.Time, 0, t.n),
		free:     make([]int, 0, t.n),
	}
	t.visit(t.root, 0, func(k model.Time, v int) bool {
		p.times = append(p.times, k)
		p.free = append(p.free, v)
		return true
	})
	return p
}

// AppendSegmentsTo appends t's step function onto dst via the
// coalescing builder — how the reservation book materializes a
// small-R snapshot into a pooled flat profile. dst must have been
// Reset (or previously appended) up to t's origin.
func (t *PersistentProfile) AppendSegmentsTo(dst *Profile) {
	t.visit(t.root, 0, func(k model.Time, v int) bool {
		dst.AppendFree(k, v)
		return true
	})
}

// Capacity returns the cluster size.
func (t *PersistentProfile) Capacity() int { return t.capacity }

// Origin returns the start of the profile's horizon.
func (t *PersistentProfile) Origin() model.Time { return t.origin }

// Horizon returns the exclusive end of the represented window:
// model.Infinity for a full profile.
func (t *PersistentProfile) Horizon() model.Time { return t.horizon }

// NumSegments returns the number of segments of the step function.
func (t *PersistentProfile) NumSegments() int { return t.n }

// ---- copy-on-write node plumbing ----
//
// The only functions that construct or write pnodes. Every mutation
// path goes clone-first: pclone/papplied return a fresh node, and all
// subsequent writes (ppush, ppull, rotations, child-pointer updates)
// target nodes returned by them within the same mutation.

// newNode draws the next priority from the splitmix64 stream.
func (t *PersistentProfile) newNode(key model.Time, val int) *pnode {
	t.seed++
	return &pnode{key: key, val: val, mn: val, mx: val, prio: splitmix64(t.seed)}
}

// pclone returns a fresh copy of n that mutation code may write.
func pclone(n *pnode) *pnode {
	c := *n
	return &c
}

// papplied returns a fresh copy of n with d added to every segment in
// its subtree (lazily for children) — apply fused with the clone the
// COW discipline requires. nil stays nil.
func papplied(n *pnode, d int) *pnode {
	if n == nil {
		return nil
	}
	c := *n
	c.val += d
	c.mn += d
	c.mx += d
	c.add += d
	return &c
}

// ppush pushes n's pending lazy tag down by replacing both children
// with applied clones. n must itself be a fresh clone.
func ppush(n *pnode) {
	if n.add != 0 {
		n.l = papplied(n.l, n.add)
		n.r = papplied(n.r, n.add)
		n.add = 0
	}
}

// ppull recomputes n's aggregates from its (up-to-date) children; n's
// own lazy tag must be clear and n must be a fresh clone.
func ppull(n *pnode) {
	mn, mx := n.val, n.val
	if l := n.l; l != nil {
		if l.mn < mn {
			mn = l.mn
		}
		if l.mx > mx {
			mx = l.mx
		}
	}
	if r := n.r; r != nil {
		if r.mn < mn {
			mn = r.mn
		}
		if r.mx > mx {
			mx = r.mx
		}
	}
	n.mn, n.mx = mn, mx
}

// protRight rotates the fresh node n right; n and n.l must both be
// fresh clones (the subtrees hanging off them may be shared — they are
// only re-linked, never written).
func protRight(n *pnode) *pnode {
	l := n.l
	n.l = l.r
	l.r = n
	ppull(n)
	ppull(l)
	return l
}

// protLeft rotates the fresh node n left; n and n.r must both be fresh.
func protLeft(n *pnode) *pnode {
	r := n.r
	n.r = r.l
	r.l = n
	ppull(n)
	ppull(r)
	return r
}

// insert adds a new breakpoint, path-copying the descent; the key must
// not be present. Returns the fresh subtree root.
func (t *PersistentProfile) insert(n *pnode, key model.Time, val int) *pnode {
	if n == nil {
		return t.newNode(key, val)
	}
	n = pclone(n)
	ppush(n)
	if key < n.key {
		l := t.insert(n.l, key, val)
		n.l = l
		if l.prio > n.prio {
			n = protRight(n)
			ppull(n)
			return n
		}
	} else {
		r := t.insert(n.r, key, val)
		n.r = r
		if r.prio > n.prio {
			n = protLeft(n)
			ppull(n)
			return n
		}
	}
	ppull(n)
	return n
}

// erase removes the breakpoint at key, path-copying the descent; the
// key must be present. The removed node and the replaced spine become
// garbage once no snapshot references the old root.
func (t *PersistentProfile) erase(n *pnode, key model.Time) *pnode {
	if n == nil {
		return nil
	}
	n = pclone(n)
	ppush(n)
	switch {
	case key < n.key:
		n.l = t.erase(n.l, key)
	case key > n.key:
		n.r = t.erase(n.r, key)
	default:
		return pmerge(n.l, n.r)
	}
	ppull(n)
	return n
}

// pmerge joins two treaps where every key of a precedes every key of
// b, path-copying the merge spine. Both inputs may be shared; the
// returned root is fresh wherever it differs from them.
func pmerge(a, b *pnode) *pnode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio > b.prio {
		a = pclone(a)
		ppush(a)
		a.r = pmerge(a.r, b)
		ppull(a)
		return a
	}
	b = pclone(b)
	ppush(b)
	b.l = pmerge(a, b.l)
	ppull(b)
	return b
}

// rangeAdd adds d to every segment with key in [lo, hi), path-copying
// the touched frontier. (lb, ub) are the inclusive key bounds of n's
// subtree implied by the descent path; a fully covered subtree absorbs
// the add lazily via one applied clone, an untouched subtree is shared
// unchanged.
func (t *PersistentProfile) rangeAdd(n *pnode, lb, ub, lo, hi model.Time, d int) *pnode {
	if n == nil || ub < lo || lb >= hi {
		return n
	}
	if lo <= lb && ub < hi {
		return papplied(n, d)
	}
	n = pclone(n)
	ppush(n)
	if lo <= n.key && n.key < hi {
		n.val += d
	}
	n.l = t.rangeAdd(n.l, lb, n.key-1, lo, hi, d)
	n.r = t.rangeAdd(n.r, n.key+1, ub, lo, hi, d)
	ppull(n)
	return n
}

// ---- read-only descents ----
//
// Ports of the TreeProfile descents onto pointer nodes. Queries never
// push lazy tags down: they accumulate the pending adds of strict
// ancestors in acc, so a root shared across snapshots is probed
// without a single write.

// floor returns the key and value of the segment containing x — the
// greatest breakpoint <= x. ok is false when x precedes the origin.
//
//reschedvet:hotpath
func (t *PersistentProfile) floor(x model.Time) (key model.Time, val int, ok bool) {
	n, acc := t.root, 0
	for n != nil {
		if x < n.key {
			acc += n.add
			n = n.l
		} else {
			key, val, ok = n.key, n.val+acc, true
			acc += n.add
			n = n.r
		}
	}
	return key, val, ok
}

// succKey returns the smallest breakpoint > x, or model.Infinity — the
// exclusive end of the segment whose key is the floor of x.
//
//reschedvet:hotpath
func (t *PersistentProfile) succKey(x model.Time) model.Time {
	n := t.root
	s := model.Infinity
	for n != nil {
		if n.key > x {
			s = n.key
			n = n.l
		} else {
			n = n.r
		}
	}
	return s
}

// rangeMin returns the minimum free count over segments with key in
// [lo, hi), or freeCeil when none exist.
//
//reschedvet:hotpath
func (t *PersistentProfile) rangeMin(n *pnode, acc int, lb, ub, lo, hi model.Time) int {
	if n == nil || ub < lo || lb >= hi {
		return freeCeil
	}
	if lo <= lb && ub < hi {
		return n.mn + acc
	}
	m := freeCeil
	if lo <= n.key && n.key < hi {
		m = n.val + acc
	}
	acc += n.add
	if v := t.rangeMin(n.l, acc, lb, n.key-1, lo, hi); v < m {
		m = v
	}
	if v := t.rangeMin(n.r, acc, n.key+1, ub, lo, hi); v < m {
		m = v
	}
	return m
}

// firstBelow returns the leftmost segment with key >= from and fewer
// than procs free, pruning subtrees whose min already satisfies procs.
//
//reschedvet:hotpath
func (t *PersistentProfile) firstBelow(n *pnode, acc int, procs int, from model.Time) (model.Time, bool) {
	if n == nil {
		return 0, false
	}
	if n.mn+acc >= procs {
		return 0, false
	}
	if n.key < from {
		return t.firstBelow(n.r, acc+n.add, procs, from)
	}
	if k, ok := t.firstBelow(n.l, acc+n.add, procs, from); ok {
		return k, ok
	}
	if n.val+acc < procs {
		return n.key, true
	}
	return t.firstBelow(n.r, acc+n.add, procs, from)
}

// firstAbove returns the leftmost segment with key in [from, to) and
// more than limit free; the value returned is that segment's free
// count.
//
//reschedvet:hotpath
func (t *PersistentProfile) firstAbove(n *pnode, acc int, limit int, from, to model.Time) (int, bool) {
	if n == nil {
		return 0, false
	}
	if n.mx+acc <= limit {
		return 0, false
	}
	if n.key >= to {
		return t.firstAbove(n.l, acc+n.add, limit, from, to)
	}
	if n.key < from {
		return t.firstAbove(n.r, acc+n.add, limit, from, to)
	}
	if v, ok := t.firstAbove(n.l, acc+n.add, limit, from, to); ok {
		return v, ok
	}
	if n.val+acc > limit {
		return n.val + acc, true
	}
	return t.firstAbove(n.r, acc+n.add, limit, from, to)
}

// lastFeasibleUpTo returns the rightmost segment with key <= upto and
// at least procs free — the top of the latest feasible run.
//
//reschedvet:hotpath
func (t *PersistentProfile) lastFeasibleUpTo(n *pnode, acc int, procs int, upto model.Time) (model.Time, bool) {
	if n == nil {
		return 0, false
	}
	if n.mx+acc < procs {
		return 0, false
	}
	if n.key > upto {
		return t.lastFeasibleUpTo(n.l, acc+n.add, procs, upto)
	}
	if k, ok := t.lastFeasibleUpTo(n.r, acc+n.add, procs, upto); ok {
		return k, ok
	}
	if n.val+acc >= procs {
		return n.key, true
	}
	return t.lastFeasibleUpTo(n.l, acc+n.add, procs, upto)
}

// lastBlockingUpTo returns the rightmost segment with key <= upto and
// fewer than procs free — the blocking segment bounding a feasible run
// from below.
//
//reschedvet:hotpath
func (t *PersistentProfile) lastBlockingUpTo(n *pnode, acc int, procs int, upto model.Time) (model.Time, bool) {
	if n == nil {
		return 0, false
	}
	if n.mn+acc >= procs {
		return 0, false
	}
	if n.key > upto {
		return t.lastBlockingUpTo(n.l, acc+n.add, procs, upto)
	}
	if k, ok := t.lastBlockingUpTo(n.r, acc+n.add, procs, upto); ok {
		return k, ok
	}
	if n.val+acc < procs {
		return n.key, true
	}
	return t.lastBlockingUpTo(n.l, acc+n.add, procs, upto)
}

// visit walks the tree in key order calling fn(key, free); fn returns
// false to stop early.
func (t *PersistentProfile) visit(n *pnode, acc int, fn func(model.Time, int) bool) bool {
	if n == nil {
		return true
	}
	if !t.visit(n.l, acc+n.add, fn) {
		return false
	}
	if !fn(n.key, n.val+acc) {
		return false
	}
	return t.visit(n.r, acc+n.add, fn)
}

// visitFrom is visit restricted to keys >= from.
func (t *PersistentProfile) visitFrom(n *pnode, acc int, from model.Time, fn func(model.Time, int) bool) bool {
	if n == nil {
		return true
	}
	if n.key < from {
		return t.visitFrom(n.r, acc+n.add, from, fn)
	}
	if !t.visitFrom(n.l, acc+n.add, from, fn) {
		return false
	}
	if !fn(n.key, n.val+acc) {
		return false
	}
	return t.visit(n.r, acc+n.add, fn)
}

// ---- queries (semantics identical to the flat backend) ----

// FreeAt returns the number of free processors at time t. Times before
// the origin report the origin's availability.
func (t *PersistentProfile) FreeAt(at model.Time) int {
	if at < t.origin {
		at = t.origin
	}
	_, v, _ := t.floor(at)
	return v
}

// ReservedAt returns capacity - FreeAt(t).
func (t *PersistentProfile) ReservedAt(at model.Time) int { return t.capacity - t.FreeAt(at) }

// MinFree returns the minimum number of free processors over
// [start, end). It panics if end <= start.
func (t *PersistentProfile) MinFree(start, end model.Time) int {
	if end <= start {
		panic(fmt.Sprintf("profile: MinFree over empty interval [%d,%d)", start, end))
	}
	if start < t.origin {
		start = t.origin
	}
	fk, _, _ := t.floor(start)
	m := t.rangeMin(t.root, 0, keyFloor, keyCeil, fk, end)
	if m > t.capacity {
		m = t.capacity
	}
	return m
}

// AvgFree returns the time-weighted average number of free processors
// over [start, end).
func (t *PersistentProfile) AvgFree(start, end model.Time) float64 {
	if end <= start {
		panic(fmt.Sprintf("profile: AvgFree over empty interval [%d,%d)", start, end))
	}
	if start < t.origin {
		start = t.origin
	}
	if end <= start {
		return float64(t.capacity)
	}
	fk, _, _ := t.floor(start)
	var acc float64
	var prevKey model.Time
	var prevVal int
	started := false
	emit := func(segStart, segEnd model.Time, free int) {
		lo, hi := segStart, segEnd
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			acc += float64(free) * float64(hi-lo)
		}
	}
	t.visitFrom(t.root, 0, fk, func(k model.Time, v int) bool {
		if started {
			emit(prevKey, k, prevVal)
		}
		prevKey, prevVal = k, v
		started = true
		return k < end
	})
	if started && prevKey < end {
		emit(prevKey, t.horizon, prevVal)
	}
	return acc / float64(end-start)
}

// EarliestFit returns the earliest start time s >= notBefore such that
// procs processors are free during [s, s+dur); see the flat backend
// for the full contract. Fit queries require a full-horizon profile
// (horizon == model.Infinity) — shard-window trees answer them only
// after ConcatPersistent.
func (t *PersistentProfile) EarliestFit(procs int, dur model.Duration, notBefore model.Time) model.Time {
	if procs < 1 || procs > t.capacity {
		panic(fmt.Sprintf("profile: EarliestFit for %d processors on a %d-processor cluster", procs, t.capacity))
	}
	if dur < 0 {
		panic(fmt.Sprintf("profile: negative duration %d", dur))
	}
	s := notBefore
	if s < t.origin {
		s = t.origin
	}
	if dur == 0 {
		return s
	}
	for {
		fk, _, _ := t.floor(s)
		bk, ok := t.firstBelow(t.root, 0, procs, fk)
		if !ok || bk >= s+dur {
			// No blocking segment intersects [s, s+dur).
			return s
		}
		e := t.succKey(bk)
		if e == model.Infinity {
			// Matches the flat backend's defensive check: the horizon
			// segment is fully free in any valid profile.
			panic("profile: horizon segment not fully free")
		}
		s = e
	}
}

// LatestFit returns the latest start time s with s >= notBefore,
// s+dur <= finishBy, and procs processors free during [s, s+dur); see
// the flat backend for the full contract.
func (t *PersistentProfile) LatestFit(procs int, dur model.Duration, notBefore, finishBy model.Time) (model.Time, bool) {
	if procs < 1 || procs > t.capacity {
		panic(fmt.Sprintf("profile: LatestFit for %d processors on a %d-processor cluster", procs, t.capacity))
	}
	if dur < 0 {
		panic(fmt.Sprintf("profile: negative duration %d", dur))
	}
	lo := notBefore
	if lo < t.origin {
		lo = t.origin
	}
	if finishBy-dur < lo {
		return 0, false
	}
	if dur == 0 {
		return finishBy, true
	}
	cur, _, _ := t.floor(finishBy)
	for {
		fk, ok := t.lastFeasibleUpTo(t.root, 0, procs, cur)
		if !ok {
			return 0, false
		}
		runEnd := t.succKey(fk)
		if runEnd > finishBy {
			runEnd = finishBy
		}
		bk, bok := t.lastBlockingUpTo(t.root, 0, procs, fk)
		runStart := t.origin
		if bok {
			runStart = t.succKey(bk)
		}
		if runStart < lo {
			runStart = lo
		}
		if runEnd-dur >= runStart {
			return runEnd - dur, true
		}
		if !bok {
			return 0, false
		}
		cur = bk
	}
}

// EarliestFits answers EarliestFit for every request; each probe is an
// independent descent, results probe-for-probe identical to the flat
// backend's shared sweep.
func (t *PersistentProfile) EarliestFits(reqs []FitRequest, notBefore model.Time, out []model.Time) []model.Time {
	if cap(out) < len(reqs) {
		out = make([]model.Time, len(reqs))
	}
	out = out[:len(reqs)]
	for j, r := range reqs {
		if r.Procs < 1 || r.Procs > t.capacity {
			panic(fmt.Sprintf("profile: EarliestFits for %d processors on a %d-processor cluster", r.Procs, t.capacity))
		}
		out[j] = t.EarliestFit(r.Procs, r.Dur, notBefore)
	}
	return out
}

// LatestFits answers LatestFit for every request; see EarliestFits.
func (t *PersistentProfile) LatestFits(reqs []FitRequest, notBefore, finishBy model.Time, out []model.Time, ok []bool) ([]model.Time, []bool) {
	if cap(out) < len(reqs) {
		out = make([]model.Time, len(reqs))
	}
	out = out[:len(reqs)]
	if cap(ok) < len(reqs) {
		ok = make([]bool, len(reqs))
	}
	ok = ok[:len(reqs)]
	for j, r := range reqs {
		if r.Procs < 1 || r.Procs > t.capacity {
			panic(fmt.Sprintf("profile: LatestFits for %d processors on a %d-processor cluster", r.Procs, t.capacity))
		}
		out[j], ok[j] = t.LatestFit(r.Procs, r.Dur, notBefore, finishBy)
	}
	return out, ok
}

// ---- mutations ----

// ensureBreak inserts a breakpoint at time tm (>= origin), reusing an
// existing one.
func (t *PersistentProfile) ensureBreak(tm model.Time) {
	fk, fv, _ := t.floor(tm)
	if fk == tm {
		return
	}
	t.root = t.insert(t.root, tm, fv)
	t.n++
}

// coalesceBoundary removes the breakpoint at tm when its segment has
// the same availability as its predecessor.
func (t *PersistentProfile) coalesceBoundary(tm model.Time) {
	if tm <= t.origin {
		return
	}
	fk, fv, ok := t.floor(tm)
	if !ok || fk != tm {
		return
	}
	_, pv, pok := t.floor(tm - 1)
	if pok && pv == fv {
		t.root = t.erase(t.root, tm)
		t.n--
	}
}

// reserveChecks mirrors the flat backend's validation, same messages.
func (t *PersistentProfile) reserveChecks(start, end model.Time, procs int) error {
	if procs < 1 || procs > t.capacity {
		return fmt.Errorf("cannot reserve %d processors on a %d-processor cluster", procs, t.capacity)
	}
	if start < t.origin {
		return fmt.Errorf("reservation start %d before profile origin %d", start, t.origin)
	}
	if end <= start {
		return fmt.Errorf("reservation interval [%d,%d) is empty", start, end)
	}
	if end >= model.Infinity {
		return fmt.Errorf("reservation end %d beyond the scheduling horizon", end)
	}
	if m := t.MinFree(start, end); m < procs {
		return fmt.Errorf("only %d of %d requested processors free during [%d,%d)", m, procs, start, end)
	}
	return nil
}

// unreserveChecks mirrors the flat backend's validation, same messages.
func (t *PersistentProfile) unreserveChecks(start, end model.Time, procs int) error {
	if procs < 1 || procs > t.capacity {
		return fmt.Errorf("cannot release %d processors on a %d-processor cluster", procs, t.capacity)
	}
	if start < t.origin {
		return fmt.Errorf("release start %d before profile origin %d", start, t.origin)
	}
	if end <= start {
		return fmt.Errorf("release interval [%d,%d) is empty", start, end)
	}
	if end >= model.Infinity {
		return fmt.Errorf("release end %d beyond the scheduling horizon", end)
	}
	fk, _, _ := t.floor(start)
	if v, over := t.firstAbove(t.root, 0, t.capacity-procs, fk, end); over {
		return fmt.Errorf("only %d of %d released processors reserved during [%d,%d)", t.capacity-v, procs, start, end)
	}
	return nil
}

// Reserve commits a reservation of procs processors during
// [start, end) by path-copying O(log n) nodes and swinging t.root to
// the fresh spine; same contract and failure modes as the flat
// backend. Handles holding the previous root are unaffected. For a
// window tree, end may equal the horizon: the end breakpoint then
// belongs to the neighbouring window and is skipped.
func (t *PersistentProfile) Reserve(start, end model.Time, procs int) error {
	if err := t.reserveChecks(start, end, procs); err != nil {
		return err
	}
	t.ensureBreak(start)
	if end < t.horizon {
		t.ensureBreak(end)
	}
	t.root = t.rangeAdd(t.root, keyFloor, keyCeil, start, end, -procs)
	if end < t.horizon {
		t.coalesceBoundary(end)
	}
	t.coalesceBoundary(start)
	return nil
}

// Unreserve returns procs processors to the profile during
// [start, end); same contract and failure modes as the flat backend,
// path-copying like Reserve.
func (t *PersistentProfile) Unreserve(start, end model.Time, procs int) error {
	if err := t.unreserveChecks(start, end, procs); err != nil {
		return err
	}
	t.ensureBreak(start)
	if end < t.horizon {
		t.ensureBreak(end)
	}
	t.root = t.rangeAdd(t.root, keyFloor, keyCeil, start, end, procs)
	if end < t.horizon {
		t.coalesceBoundary(end)
	}
	t.coalesceBoundary(start)
	return nil
}

// ---- window concatenation ----

// ConcatPersistent joins adjacent window profiles into one full
// profile in O(#parts · log n) path-copies: parts must be in ascending
// time order with parts[i].Horizon() == parts[i+1].Origin(), equal
// capacities, and the last part's horizon == model.Infinity. The parts
// are not modified (their roots are shared, never written), so the
// book's shard roots stay live behind the returned handle. Boundary
// breakpoints whose segment value equals the predecessor window's last
// segment are coalesced away, so the result is canonical — Segments,
// String, and Check match a flat profile built from the same
// reservations byte for byte.
func ConcatPersistent(parts []*PersistentProfile) *PersistentProfile {
	if len(parts) == 0 {
		panic("profile: ConcatPersistent of no windows")
	}
	out := parts[0].Clone()
	for _, p := range parts[1:] {
		if p.origin != out.horizon {
			panic(fmt.Sprintf("profile: window starting %d does not abut horizon %d", p.origin, out.horizon))
		}
		if p.capacity != out.capacity {
			panic(fmt.Sprintf("profile: window capacity %d != %d", p.capacity, out.capacity))
		}
		_, lastVal, _ := out.floor(p.origin - 1)
		_, firstVal, _ := p.floor(p.origin)
		out.root = pmerge(out.root, p.root)
		out.n += p.n
		out.horizon = p.horizon
		// Mix the window's stream into the seed so post-concat staging
		// mutations (snapshot handles absorb trial reservations) keep a
		// deterministic priority stream.
		out.seed = splitmix64(out.seed ^ p.seed)
		if firstVal == lastVal {
			out.root = out.erase(out.root, p.origin)
			out.n--
		}
	}
	return out
}

// ---- rendering and invariants ----

// Segments returns the step function as a list of segments.
func (t *PersistentProfile) Segments() []Segment {
	out := make([]Segment, 0, t.n)
	t.visit(t.root, 0, func(k model.Time, v int) bool {
		out = append(out, Segment{Start: k, Free: v})
		return true
	})
	return out
}

// Check verifies the representation invariants, reporting the same
// violations (same messages) as the flat backend plus tree-specific
// bookkeeping. For a window tree the final-segment-fully-free rule is
// skipped (a window may end mid-reservation) and keys must stay inside
// [origin, horizon).
func (t *PersistentProfile) Check() error {
	if t.n < 1 {
		return fmt.Errorf("profile: %d times, %d free values", t.n, t.n)
	}
	var err error
	i := 0
	var prevKey model.Time
	var prevVal int
	last := 0
	t.visit(t.root, 0, func(k model.Time, v int) bool {
		if i == 0 && k != t.origin {
			err = fmt.Errorf("profile: first breakpoint %d is not the origin %d", k, t.origin)
			return false
		}
		if k >= t.horizon {
			err = fmt.Errorf("profile: breakpoint %d beyond window horizon %d", k, t.horizon)
			return false
		}
		if i > 0 && k <= prevKey {
			err = fmt.Errorf("profile: breakpoints not increasing at %d", i)
			return false
		}
		if i > 0 && v == prevVal {
			err = fmt.Errorf("profile: uncoalesced segments at %d", i)
			return false
		}
		if v < 0 || v > t.capacity {
			err = fmt.Errorf("profile: free %d outside [0,%d]", v, t.capacity)
			return false
		}
		prevKey, prevVal = k, v
		last = v
		i++
		return true
	})
	if err != nil {
		return err
	}
	if i != t.n {
		return fmt.Errorf("profile: tree holds %d segments, count says %d", i, t.n)
	}
	if t.horizon == model.Infinity && last != t.capacity {
		return fmt.Errorf("profile: final segment not fully free")
	}
	return t.checkHeap(t.root)
}

// checkHeap verifies the treap's priority heap order.
func (t *PersistentProfile) checkHeap(n *pnode) error {
	if n == nil {
		return nil
	}
	if l := n.l; l != nil && l.prio > n.prio {
		return fmt.Errorf("profile: treap heap order violated at key %d", l.key)
	}
	if r := n.r; r != nil && r.prio > n.prio {
		return fmt.Errorf("profile: treap heap order violated at key %d", r.key)
	}
	if err := t.checkHeap(n.l); err != nil {
		return err
	}
	return t.checkHeap(n.r)
}

// String renders the profile compactly, identically to the flat
// backend — the differential tests compare the two byte for byte.
func (t *PersistentProfile) String() string {
	s := fmt.Sprintf("profile{cap %d:", t.capacity)
	t.visit(t.root, 0, func(k model.Time, v int) bool {
		s += fmt.Sprintf(" [%d:%d free]", k, v)
		return true
	})
	return s + "}"
}
