package profile

// Check exposes the representation-invariant verifier to the tests.
func (p *Profile) Check() error { return p.check() }
