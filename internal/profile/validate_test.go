package profile

import (
	"strings"
	"testing"

	"resched/internal/model"
)

// TestEarliestFitPastHorizon is the regression test for the "fell off
// the horizon" panic: a fit requested past the last reservation's end,
// with a start or duration large enough that s+dur exceeds the
// model.Infinity sentinel, must land in the (infinite, fully free)
// horizon segment instead of panicking.
func TestEarliestFitPastHorizon(t *testing.T) {
	p := New(4, 0)
	if err := p.Reserve(0, 100, 4); err != nil {
		t.Fatal(err)
	}

	// Plain fit past the last reservation's end.
	if got := p.EarliestFit(2, 50, 0); got != 100 {
		t.Errorf("EarliestFit(2, 50, 0) = %d, want 100", got)
	}

	// Duration so long that start+dur exceeds the Infinity sentinel:
	// the old implementation panicked here.
	if got := p.EarliestFit(1, model.Infinity-50, 0); got != 100 {
		t.Errorf("EarliestFit(1, Infinity-50, 0) = %d, want 100", got)
	}

	// Very late start with a long duration: same failure mode.
	late := model.Infinity - 10
	if got := p.EarliestFit(1, 100, late); got != late {
		t.Errorf("EarliestFit(1, 100, %d) = %d, want %d", late, got, late)
	}

	// A fit starting inside a partially feasible run that extends into
	// the horizon segment.
	q := New(4, 0)
	if err := q.Reserve(0, 100, 2); err != nil {
		t.Fatal(err)
	}
	if got := q.EarliestFit(3, model.Infinity/2, 0); got != 100 {
		t.Errorf("EarliestFit(3, Infinity/2, 0) = %d, want 100", got)
	}
	if got := q.EarliestFit(2, model.Infinity/2, 0); got != 0 {
		t.Errorf("EarliestFit(2, Infinity/2, 0) = %d, want 0", got)
	}
}

func TestCheckedVariantsRejectMalformedInput(t *testing.T) {
	p := New(8, 0)
	if err := p.Reserve(10, 20, 3); err != nil {
		t.Fatal(err)
	}

	if _, err := p.EarliestFitChecked(0, 10, 0); err == nil {
		t.Error("EarliestFitChecked(0 procs) accepted")
	}
	if _, err := p.EarliestFitChecked(9, 10, 0); err == nil {
		t.Error("EarliestFitChecked(procs > capacity) accepted")
	}
	if _, err := p.EarliestFitChecked(1, -1, 0); err == nil {
		t.Error("EarliestFitChecked(negative dur) accepted")
	}
	if _, _, err := p.LatestFitChecked(0, 10, 0, 100); err == nil {
		t.Error("LatestFitChecked(0 procs) accepted")
	}
	if _, _, err := p.LatestFitChecked(1, -5, 0, 100); err == nil {
		t.Error("LatestFitChecked(negative dur) accepted")
	}
	if _, err := p.MinFreeChecked(20, 20); err == nil {
		t.Error("MinFreeChecked(empty interval) accepted")
	}
	if _, err := p.MinFreeChecked(30, 20); err == nil {
		t.Error("MinFreeChecked(inverted interval) accepted")
	}
	if _, err := p.AvgFreeChecked(20, 20); err == nil {
		t.Error("AvgFreeChecked(empty interval) accepted")
	}
}

func TestCheckedVariantsMatchUnchecked(t *testing.T) {
	p := New(8, 0)
	if err := p.Reserve(10, 20, 3); err != nil {
		t.Fatal(err)
	}

	if got, err := p.EarliestFitChecked(6, 5, 0); err != nil || got != p.EarliestFit(6, 5, 0) {
		t.Errorf("EarliestFitChecked = (%d, %v), want (%d, nil)", got, err, p.EarliestFit(6, 5, 0))
	}
	ws, wok := p.LatestFit(6, 5, 0, 40)
	if got, ok, err := p.LatestFitChecked(6, 5, 0, 40); err != nil || ok != wok || got != ws {
		t.Errorf("LatestFitChecked = (%d, %v, %v), want (%d, %v, nil)", got, ok, err, ws, wok)
	}
	if got, err := p.MinFreeChecked(0, 30); err != nil || got != p.MinFree(0, 30) {
		t.Errorf("MinFreeChecked = (%d, %v), want (%d, nil)", got, err, p.MinFree(0, 30))
	}
	if got, err := p.AvgFreeChecked(0, 30); err != nil || got != p.AvgFree(0, 30) {
		t.Errorf("AvgFreeChecked = (%g, %v), want (%g, nil)", got, err, p.AvgFree(0, 30))
	}
}

func TestUnreserve(t *testing.T) {
	p := New(8, 0)
	orig := p.String()
	if err := p.Reserve(10, 20, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.Reserve(15, 30, 2); err != nil {
		t.Fatal(err)
	}

	// Releasing both reservations restores the original profile.
	if err := p.Unreserve(15, 30, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if err := p.Unreserve(10, 20, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if p.String() != orig {
		t.Errorf("profile after reserve+unreserve = %s, want %s", p, orig)
	}
}

func TestUnreserveRejectsOverRelease(t *testing.T) {
	p := New(8, 0)
	if err := p.Reserve(10, 20, 3); err != nil {
		t.Fatal(err)
	}
	before := p.String()

	cases := []struct {
		name       string
		start, end model.Time
		procs      int
	}{
		{"more than reserved", 10, 20, 4},
		{"interval extends past reservation", 10, 25, 3},
		{"nothing reserved there", 30, 40, 1},
		{"empty interval", 10, 10, 1},
		{"before origin", -5, 20, 1},
		{"zero procs", 10, 20, 0},
		{"procs beyond capacity", 10, 20, 9},
		{"beyond horizon", 10, model.Infinity, 1},
	}
	for _, c := range cases {
		if err := p.Unreserve(c.start, c.end, c.procs); err == nil {
			t.Errorf("%s: Unreserve(%d, %d, %d) accepted", c.name, c.start, c.end, c.procs)
		}
	}
	if p.String() != before {
		t.Errorf("failed Unreserve modified the profile: %s -> %s", before, p)
	}
	if !strings.Contains(p.String(), "free") {
		t.Fatalf("unexpected profile rendering %q", p)
	}
}
