package profile

import (
	"encoding/binary"
	"testing"

	"resched/internal/model"
)

// decodeOp unpacks one fuzzed mutation: a Reserve/Unreserve selector,
// a start time, a duration, and a processor count. Values are taken
// raw (not clamped to valid ranges) so the fuzzer exercises the
// rejection paths as hard as the commit paths.
func decodeOp(b []byte) (reserve bool, start model.Time, end model.Time, procs int) {
	reserve = b[0]%2 == 0
	start = model.Time(binary.LittleEndian.Uint16(b[1:3]))
	end = start + model.Duration(binary.LittleEndian.Uint16(b[3:5]))
	procs = int(b[5])
	return
}

// FuzzProfileReserveUnreserve feeds random Reserve/Unreserve
// sequences to the optimized step-function mutators and to the naive
// reference mutators kept in reference.go, requiring after every
// operation that (1) both accept or both reject, (2) the optimized
// representation invariants hold, and (3) the two step functions are
// bit-identical — the same contract the fixed-grid differential tests
// enforce, extended to adversarial inputs.
func FuzzProfileReserveUnreserve(f *testing.F) {
	f.Add(uint8(7), []byte{0, 10, 0, 20, 0, 3, 1, 15, 0, 10, 0, 2})
	f.Add(uint8(0), []byte{0, 0, 0, 0, 0, 0})
	f.Add(uint8(31), []byte{0, 1, 0, 1, 0, 255, 1, 1, 0, 1, 0, 255})
	f.Fuzz(func(t *testing.T, capRaw uint8, ops []byte) {
		capacity := int(capRaw%32) + 1
		// The per-step String() comparison is O(segments), so bound the
		// sequence length to keep worst-case inputs out of the mutator's
		// way; 64 mutations is plenty to compose interesting schedules.
		if len(ops) > 64*6 {
			ops = ops[:64*6]
		}
		p := New(capacity, 0)
		ref := New(capacity, 0)
		for step := 0; len(ops) >= 6; step++ {
			reserve, start, end, procs := decodeOp(ops)
			ops = ops[6:]

			var got, want error
			if reserve {
				got = p.Reserve(start, end, procs)
				want = ref.referenceReserve(start, end, procs)
			} else {
				got = p.Unreserve(start, end, procs)
				want = ref.referenceUnreserve(start, end, procs)
			}
			if (got == nil) != (want == nil) {
				t.Fatalf("step %d: optimized err=%v, reference err=%v", step, got, want)
			}
			if err := p.Check(); err != nil {
				t.Fatalf("step %d: invariants: %v", step, err)
			}
			if p.String() != ref.String() {
				t.Fatalf("step %d: divergence\n  optimized %s\n  reference %s", step, p, ref)
			}
		}
		// The solo fit queries are the oracles for the batch sweeps;
		// close the loop on the final profile with a single probe.
		if capacity >= 1 {
			req := []FitRequest{{Procs: 1, Dur: 7}}
			batch := p.EarliestFits(req, 3, nil)
			if solo := p.EarliestFit(1, 7, 3); batch[0] != solo {
				t.Fatalf("EarliestFits=%d, EarliestFit=%d on %s", batch[0], solo, p)
			}
		}
	})
}
