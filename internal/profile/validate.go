package profile

// This file holds the validated entry points for the profile queries.
//
// The core query methods (EarliestFit, LatestFit, MinFree, AvgFree)
// panic on malformed arguments: inside the scheduling algorithms those
// are programming errors, and a panic is the right failure mode. A
// long-lived daemon serving untrusted requests cannot afford that — a
// malformed API request must become an HTTP 400, not a crash. The
// *Checked variants below validate their arguments and return errors;
// serving code (internal/resbook, internal/server) goes exclusively
// through them, while the batch schedulers keep the panicking fast
// path.
//
// The panicking queries silently clamp times before the profile origin
// up to the origin — convenient inside the schedulers, where "as soon
// as possible" is what the caller means, but a trap for API clients
// whose notBefore quietly moved. The Checked variants therefore reject
// pre-origin windows with ErrBeforeOrigin so serving code can report
// the clamp instead of hiding it.

import (
	"errors"
	"fmt"

	"resched/internal/model"
)

// ErrBeforeOrigin reports a query window starting before the profile
// origin. The panicking query methods clamp such windows silently; the
// *Checked variants reject them with an error wrapping this sentinel,
// so callers can distinguish "you asked about the past" from malformed
// arguments.
var ErrBeforeOrigin = errors.New("profile: time before profile origin")

// validateFit rejects processor counts and durations that the
// panicking query methods treat as programming errors.
func validateFit(capacity, procs int, dur model.Duration) error {
	if procs < 1 || procs > capacity {
		return fmt.Errorf("profile: %d processors outside [1,%d]", procs, capacity)
	}
	if dur < 0 {
		return fmt.Errorf("profile: negative duration %d", dur)
	}
	return nil
}

// validateWindow rejects empty query intervals.
func validateWindow(start, end model.Time) error {
	if end <= start {
		return fmt.Errorf("profile: empty interval [%d,%d)", start, end)
	}
	return nil
}

// validateOrigin rejects query times before the profile origin.
func validateOrigin(t, origin model.Time) error {
	if t < origin {
		return fmt.Errorf("%w: %d before origin %d", ErrBeforeOrigin, t, origin)
	}
	return nil
}

// EarliestFitChecked is EarliestFit with argument validation: it
// returns an error instead of panicking when procs is outside
// [1, capacity] or dur is negative, and rejects notBefore values
// before the origin (which EarliestFit silently clamps) with
// ErrBeforeOrigin.
func (p *Profile) EarliestFitChecked(procs int, dur model.Duration, notBefore model.Time) (model.Time, error) {
	if err := validateFit(p.capacity, procs, dur); err != nil {
		return 0, err
	}
	if err := validateOrigin(notBefore, p.Origin()); err != nil {
		return 0, err
	}
	return p.EarliestFit(procs, dur, notBefore), nil
}

// LatestFitChecked is LatestFit with argument validation. The boolean
// reports whether a feasible start exists; the error reports malformed
// arguments, including a notBefore before the origin (ErrBeforeOrigin).
func (p *Profile) LatestFitChecked(procs int, dur model.Duration, notBefore, finishBy model.Time) (model.Time, bool, error) {
	if err := validateFit(p.capacity, procs, dur); err != nil {
		return 0, false, err
	}
	if err := validateOrigin(notBefore, p.Origin()); err != nil {
		return 0, false, err
	}
	s, ok := p.LatestFit(procs, dur, notBefore, finishBy)
	return s, ok, nil
}

// MinFreeChecked is MinFree with argument validation: an empty
// interval yields an error instead of a panic, and a start before the
// origin yields ErrBeforeOrigin instead of a silent clamp.
func (p *Profile) MinFreeChecked(start, end model.Time) (int, error) {
	if err := validateWindow(start, end); err != nil {
		return 0, err
	}
	if err := validateOrigin(start, p.Origin()); err != nil {
		return 0, err
	}
	return p.MinFree(start, end), nil
}

// AvgFreeChecked is AvgFree with argument validation: an empty
// interval yields an error instead of a panic, and a start before the
// origin yields ErrBeforeOrigin instead of a silent clamp.
func (p *Profile) AvgFreeChecked(start, end model.Time) (float64, error) {
	if err := validateWindow(start, end); err != nil {
		return 0, err
	}
	if err := validateOrigin(start, p.Origin()); err != nil {
		return 0, err
	}
	return p.AvgFree(start, end), nil
}

// EarliestFitChecked is the persistent backend's validated
// EarliestFit; same contract as the flat variant.
func (t *PersistentProfile) EarliestFitChecked(procs int, dur model.Duration, notBefore model.Time) (model.Time, error) {
	if err := validateFit(t.capacity, procs, dur); err != nil {
		return 0, err
	}
	if err := validateOrigin(notBefore, t.origin); err != nil {
		return 0, err
	}
	return t.EarliestFit(procs, dur, notBefore), nil
}

// LatestFitChecked is the persistent backend's validated LatestFit;
// same contract as the flat variant.
func (t *PersistentProfile) LatestFitChecked(procs int, dur model.Duration, notBefore, finishBy model.Time) (model.Time, bool, error) {
	if err := validateFit(t.capacity, procs, dur); err != nil {
		return 0, false, err
	}
	if err := validateOrigin(notBefore, t.origin); err != nil {
		return 0, false, err
	}
	s, ok := t.LatestFit(procs, dur, notBefore, finishBy)
	return s, ok, nil
}

// MinFreeChecked is the persistent backend's validated MinFree; same
// contract as the flat variant.
func (t *PersistentProfile) MinFreeChecked(start, end model.Time) (int, error) {
	if err := validateWindow(start, end); err != nil {
		return 0, err
	}
	if err := validateOrigin(start, t.origin); err != nil {
		return 0, err
	}
	return t.MinFree(start, end), nil
}

// AvgFreeChecked is the persistent backend's validated AvgFree; same
// contract as the flat variant.
func (t *PersistentProfile) AvgFreeChecked(start, end model.Time) (float64, error) {
	if err := validateWindow(start, end); err != nil {
		return 0, err
	}
	if err := validateOrigin(start, t.origin); err != nil {
		return 0, err
	}
	return t.AvgFree(start, end), nil
}

// EarliestFitChecked is the tree backend's validated EarliestFit; same
// contract as the flat variant.
func (t *TreeProfile) EarliestFitChecked(procs int, dur model.Duration, notBefore model.Time) (model.Time, error) {
	if err := validateFit(t.capacity, procs, dur); err != nil {
		return 0, err
	}
	if err := validateOrigin(notBefore, t.origin); err != nil {
		return 0, err
	}
	return t.EarliestFit(procs, dur, notBefore), nil
}

// LatestFitChecked is the tree backend's validated LatestFit; same
// contract as the flat variant.
func (t *TreeProfile) LatestFitChecked(procs int, dur model.Duration, notBefore, finishBy model.Time) (model.Time, bool, error) {
	if err := validateFit(t.capacity, procs, dur); err != nil {
		return 0, false, err
	}
	if err := validateOrigin(notBefore, t.origin); err != nil {
		return 0, false, err
	}
	s, ok := t.LatestFit(procs, dur, notBefore, finishBy)
	return s, ok, nil
}

// MinFreeChecked is the tree backend's validated MinFree; same
// contract as the flat variant.
func (t *TreeProfile) MinFreeChecked(start, end model.Time) (int, error) {
	if err := validateWindow(start, end); err != nil {
		return 0, err
	}
	if err := validateOrigin(start, t.origin); err != nil {
		return 0, err
	}
	return t.MinFree(start, end), nil
}

// AvgFreeChecked is the tree backend's validated AvgFree; same
// contract as the flat variant.
func (t *TreeProfile) AvgFreeChecked(start, end model.Time) (float64, error) {
	if err := validateWindow(start, end); err != nil {
		return 0, err
	}
	if err := validateOrigin(start, t.origin); err != nil {
		return 0, err
	}
	return t.AvgFree(start, end), nil
}
