package profile

// This file holds the validated entry points for the profile queries.
//
// The core query methods (EarliestFit, LatestFit, MinFree, AvgFree)
// panic on malformed arguments: inside the scheduling algorithms those
// are programming errors, and a panic is the right failure mode. A
// long-lived daemon serving untrusted requests cannot afford that — a
// malformed API request must become an HTTP 400, not a crash. The
// *Checked variants below validate their arguments and return errors;
// serving code (internal/resbook, internal/server) goes exclusively
// through them, while the batch schedulers keep the panicking fast
// path.

import (
	"fmt"

	"resched/internal/model"
)

// validateFit rejects processor counts and durations that the
// panicking query methods treat as programming errors.
func (p *Profile) validateFit(procs int, dur model.Duration) error {
	if procs < 1 || procs > p.capacity {
		return fmt.Errorf("profile: %d processors outside [1,%d]", procs, p.capacity)
	}
	if dur < 0 {
		return fmt.Errorf("profile: negative duration %d", dur)
	}
	return nil
}

// validateWindow rejects empty query intervals.
func (p *Profile) validateWindow(start, end model.Time) error {
	if end <= start {
		return fmt.Errorf("profile: empty interval [%d,%d)", start, end)
	}
	return nil
}

// EarliestFitChecked is EarliestFit with argument validation: it
// returns an error instead of panicking when procs is outside
// [1, capacity] or dur is negative.
func (p *Profile) EarliestFitChecked(procs int, dur model.Duration, notBefore model.Time) (model.Time, error) {
	if err := p.validateFit(procs, dur); err != nil {
		return 0, err
	}
	return p.EarliestFit(procs, dur, notBefore), nil
}

// LatestFitChecked is LatestFit with argument validation. The boolean
// reports whether a feasible start exists; the error reports malformed
// arguments.
func (p *Profile) LatestFitChecked(procs int, dur model.Duration, notBefore, finishBy model.Time) (model.Time, bool, error) {
	if err := p.validateFit(procs, dur); err != nil {
		return 0, false, err
	}
	s, ok := p.LatestFit(procs, dur, notBefore, finishBy)
	return s, ok, nil
}

// MinFreeChecked is MinFree with argument validation: an empty
// interval yields an error instead of a panic.
func (p *Profile) MinFreeChecked(start, end model.Time) (int, error) {
	if err := p.validateWindow(start, end); err != nil {
		return 0, err
	}
	return p.MinFree(start, end), nil
}

// AvgFreeChecked is AvgFree with argument validation: an empty
// interval yields an error instead of a panic.
func (p *Profile) AvgFreeChecked(start, end model.Time) (float64, error) {
	if err := p.validateWindow(start, end); err != nil {
		return 0, err
	}
	return p.AvgFree(start, end), nil
}
