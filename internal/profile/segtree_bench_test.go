package profile

import (
	"fmt"
	"math/rand"
	"testing"

	"resched/internal/model"
)

// walledProfile builds a profile with roughly n segments: dense runs
// of small, individually feasible reservations separated by a few
// full-width "walls". This is the shape advance-reservation horizons
// take under heavy traffic — lots of fine-grained fragmentation, a
// handful of genuinely blocking windows — and it is where the two
// backends diverge asymptotically: a probe that must clear the walls
// costs the flat backend a walk over every fragment in between, while
// the tree hops wall to wall with O(log n) descents.
func walledProfile(n int) (*Profile, *TreeProfile) {
	const capacity, walls = 1024, 12
	rng := rand.New(rand.NewSource(int64(n)))
	p := New(capacity, 0)
	perBlock := n / (2 * walls) // each small reservation adds ~2 breakpoints
	blockLen := model.Time(30*model.Day) / walls
	for w := 0; w < walls; w++ {
		base := model.Time(w) * blockLen
		for k := 0; k < perBlock; k++ {
			dur := model.Duration(rng.Int63n(int64(model.Hour)) + 60)
			// Keep the small reservations clear of the wall zone at the
			// end of the block so the wall always fits.
			start := base + model.Time(rng.Int63n(int64(blockLen*9/10-dur)))
			procs := rng.Intn(8) + 1
			if p.MinFree(start, start+dur) >= capacity/2+procs {
				if err := p.Reserve(start, start+dur, procs); err != nil {
					panic(err)
				}
			}
		}
		// The wall: a near-full reservation closing out the block.
		wallStart := base + blockLen*9/10
		if err := p.Reserve(wallStart, wallStart+model.Hour, capacity-8); err != nil {
			panic(err)
		}
	}
	return p, NewTreeFromProfile(p)
}

// BenchmarkEarliestFit contrasts the two backends on the same probes
// at growing horizon sizes. The probe asks for half the cluster for a
// duration longer than any inter-wall gap, so it must clear every
// wall: O(n) for the flat walk, O(walls · log n) for the tree.
func BenchmarkEarliestFit(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		flat, tree := walledProfile(n)
		if flat.NumSegments() < n/2 {
			b.Fatalf("construction produced only %d segments for n=%d", flat.NumSegments(), n)
		}
		want := flat.EarliestFit(512, 4*model.Day, 0)
		if got := tree.EarliestFit(512, 4*model.Day, 0); got != want {
			b.Fatalf("backends disagree: tree %d, flat %d", got, want)
		}
		b.Run(fmt.Sprintf("segments=%d/backend=flat", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				flat.EarliestFit(512, 4*model.Day, 0)
			}
		})
		b.Run(fmt.Sprintf("segments=%d/backend=tree", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tree.EarliestFit(512, 4*model.Day, 0)
			}
		})
	}
}

// BenchmarkTreeMutate tracks the O(log n) mutation path against the
// flat O(n) splice on a reserve/unreserve round trip mid-horizon.
func BenchmarkTreeMutate(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		flat, tree := walledProfile(n)
		start := model.Time(15 * model.Day)
		b.Run(fmt.Sprintf("segments=%d/backend=flat", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := flat.Reserve(start, start+30, 1); err != nil {
					b.Fatal(err)
				}
				if err := flat.Unreserve(start, start+30, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("segments=%d/backend=tree", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := tree.Reserve(start, start+30, 1); err != nil {
					b.Fatal(err)
				}
				if err := tree.Unreserve(start, start+30, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
