package profile

// This file holds the incremental step-function builder the sharded
// reservation book uses to assemble a global snapshot profile out of
// per-shard profiles: Reset the destination, then AppendWindow each
// shard's window in ascending time order. The appends coalesce across
// shard boundaries, so the assembled profile satisfies the same
// representation invariants as one built by Reserve calls.

import (
	"fmt"

	"resched/internal/model"
)

// Reset reinitializes p as a fully free profile for a cluster of the
// given capacity starting at origin, reusing p's backing arrays. It is
// the starting point for AppendFree/AppendWindow assembly.
func (p *Profile) Reset(capacity int, origin model.Time) {
	if capacity < 1 {
		panic(fmt.Sprintf("profile: capacity %d < 1", capacity))
	}
	p.capacity = capacity
	p.times = append(p.times[:0], origin)
	p.free = append(p.free[:0], capacity)
}

// AppendFree extends the step function: free processors from time t
// onward. t must not precede the last breakpoint; t equal to the last
// breakpoint overwrites that segment's value. Appends coalesce, so
// feeding segments of equal availability in sequence keeps the
// representation canonical.
func (p *Profile) AppendFree(t model.Time, free int) {
	n := len(p.times)
	if n == 0 {
		p.times = append(p.times, t)
		p.free = append(p.free, free)
		return
	}
	last := p.times[n-1]
	if t < last {
		panic(fmt.Sprintf("profile: append at %d before last breakpoint %d", t, last))
	}
	if t == last {
		p.free[n-1] = free
		if n >= 2 && p.free[n-2] == free {
			p.times = p.times[:n-1]
			p.free = p.free[:n-1]
		}
		return
	}
	if p.free[n-1] == free {
		return // coalesced into the running segment
	}
	p.times = append(p.times, t)
	p.free = append(p.free, free)
}

// AppendWindow appends src's step function restricted to [from, to),
// clamping the first segment's start to from. from must be within
// src's horizon (>= src's origin) and not precede p's last breakpoint.
func (p *Profile) AppendWindow(src *Profile, from, to model.Time) {
	if to <= from {
		return
	}
	for i := src.segAt(from); i < len(src.times) && src.times[i] < to; i++ {
		t := src.times[i]
		if t < from {
			t = from
		}
		p.AppendFree(t, src.free[i])
	}
}
