package profile

import (
	"errors"
	"math/rand"
	"testing"

	"resched/internal/model"
)

// These tests are the differential guarantee behind the TreeProfile
// backend: every query and mutation must be bit-identical to the flat
// oracle — same results, same error strings, same rendered step
// function — across random op mixes, with both representations passing
// their invariant checks after every step.

// treePair returns a flat profile and an initially identical tree.
func treePair(capacity int, origin model.Time) (*Profile, *TreeProfile) {
	return New(capacity, origin), NewTree(capacity, origin)
}

// sameErr requires errors to agree in presence and message.
func sameErr(t *testing.T, ctx string, flat, tree error) {
	t.Helper()
	if (flat == nil) != (tree == nil) {
		t.Fatalf("%s: flat err %v, tree err %v", ctx, flat, tree)
	}
	if flat != nil && flat.Error() != tree.Error() {
		t.Fatalf("%s: error strings diverged\nflat: %s\ntree: %s", ctx, flat, tree)
	}
}

// checkBoth verifies the invariants and the rendered step function of
// both backends agree.
func checkBoth(t *testing.T, ctx string, flat *Profile, tree *TreeProfile) {
	t.Helper()
	if got, want := tree.String(), flat.String(); got != want {
		t.Fatalf("%s: profiles diverged\ntree: %s\nflat: %s", ctx, got, want)
	}
	if tree.NumSegments() != flat.NumSegments() {
		t.Fatalf("%s: tree has %d segments, flat %d", ctx, tree.NumSegments(), flat.NumSegments())
	}
	if err := flat.Check(); err != nil {
		t.Fatalf("%s: flat invariants: %v", ctx, err)
	}
	if err := tree.Check(); err != nil {
		t.Fatalf("%s: tree invariants: %v", ctx, err)
	}
}

// TestTreeMatchesFlatMutators applies identical random Reserve and
// Unreserve sequences to both backends and requires identical outcomes
// after every operation.
func TestTreeMatchesFlatMutators(t *testing.T) {
	const seeds, opsPerSeed = 12, 40
	cases := 0
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		flat, tree := treePair(96, 0)
		var booked []Reservation
		for op := 0; op < opsPerSeed; op++ {
			var errFlat, errTree error
			if len(booked) > 0 && rng.Intn(4) == 0 {
				if rng.Intn(3) > 0 {
					k := rng.Intn(len(booked))
					r := booked[k]
					booked = append(booked[:k], booked[k+1:]...)
					errFlat = flat.Unreserve(r.Start, r.End, r.Procs)
					errTree = tree.Unreserve(r.Start, r.End, r.Procs)
				} else {
					start, end := randomWindow(rng, flat)
					procs := rng.Intn(96) + 1
					errFlat = flat.Unreserve(start, end, procs)
					errTree = tree.Unreserve(start, end, procs)
				}
			} else {
				start, end := randomWindow(rng, flat)
				procs := rng.Intn(110) + 1 // sometimes > capacity
				errFlat = flat.Reserve(start, end, procs)
				errTree = tree.Reserve(start, end, procs)
				if errFlat == nil {
					booked = append(booked, Reservation{Start: start, End: end, Procs: procs})
				}
			}
			ctx := "seed " + itoa(seed) + " op " + itoa(int64(op))
			sameErr(t, ctx, errFlat, errTree)
			checkBoth(t, ctx, flat, tree)
			cases++
		}
	}
	if cases < 200 {
		t.Fatalf("only %d mutation cases; the corpus should cover at least 200", cases)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// TestTreeMatchesFlatQueries probes identical randomly booked profiles
// with every read query and requires identical answers, including the
// float64 AvgFree (both backends sum segment contributions in the same
// order, so even the floats are bit-identical).
func TestTreeMatchesFlatQueries(t *testing.T) {
	cases := 0
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		flat := fuzzedProfile(rng, 128, 60)
		tree := NewTreeFromProfile(flat)
		checkBoth(t, "seed "+itoa(seed), flat, tree)
		for trial := 0; trial < 30; trial++ {
			at := model.Time(rng.Int63n(int64(25*model.Day))) - model.Time(model.Day)
			if got, want := tree.FreeAt(at), flat.FreeAt(at); got != want {
				t.Fatalf("seed %d: FreeAt(%d) tree %d, flat %d", seed, at, got, want)
			}
			if got, want := tree.ReservedAt(at), flat.ReservedAt(at); got != want {
				t.Fatalf("seed %d: ReservedAt(%d) tree %d, flat %d", seed, at, got, want)
			}
			start := model.Time(rng.Int63n(int64(22 * model.Day)))
			end := start + model.Time(rng.Int63n(int64(3*model.Day))+1)
			if got, want := tree.MinFree(start, end), flat.MinFree(start, end); got != want {
				t.Fatalf("seed %d: MinFree(%d,%d) tree %d, flat %d", seed, start, end, got, want)
			}
			if got, want := tree.AvgFree(start, end), flat.AvgFree(start, end); got != want {
				t.Fatalf("seed %d: AvgFree(%d,%d) tree %v, flat %v", seed, start, end, got, want)
			}
			procs := rng.Intn(128) + 1
			dur := model.Duration(rng.Int63n(int64(4 * model.Hour)))
			notBefore := model.Time(rng.Int63n(int64(22 * model.Day)))
			if got, want := tree.EarliestFit(procs, dur, notBefore), flat.EarliestFit(procs, dur, notBefore); got != want {
				t.Fatalf("seed %d: EarliestFit(%d,%d,%d) tree %d, flat %d", seed, procs, dur, notBefore, got, want)
			}
			finishBy := notBefore + model.Time(rng.Int63n(int64(12*model.Day)))
			ldur := model.Duration(rng.Int63n(int64(16 * model.Day)))
			gs, gok := tree.LatestFit(procs, ldur, notBefore, finishBy)
			ws, wok := flat.LatestFit(procs, ldur, notBefore, finishBy)
			if gok != wok || (wok && gs != ws) {
				t.Fatalf("seed %d: LatestFit(%d,%d,%d,%d) tree (%d,%v), flat (%d,%v)",
					seed, procs, ldur, notBefore, finishBy, gs, gok, ws, wok)
			}
			cases += 6
		}
	}
	if cases < 200 {
		t.Fatalf("only %d query probes; the corpus should cover at least 200", cases)
	}
}

// TestTreeMatchesFlatBatch requires the tree's batch fits to be
// probe-for-probe identical to the flat batch sweeps.
func TestTreeMatchesFlatBatch(t *testing.T) {
	cases := 0
	var outF, outT []model.Time
	var okF, okT []bool
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		flat := fuzzedProfile(rng, 128, 60)
		tree := NewTreeFromProfile(flat)
		for trial := 0; trial < 6; trial++ {
			notBefore := model.Time(rng.Int63n(int64(10 * model.Day)))
			finishBy := notBefore + model.Time(rng.Int63n(int64(12*model.Day)))
			reqs := make([]FitRequest, rng.Intn(24)+1)
			for j := range reqs {
				reqs[j] = FitRequest{Procs: rng.Intn(128) + 1, Dur: model.Duration(rng.Int63n(int64(16 * model.Day)))}
			}
			outF = flat.EarliestFits(reqs, notBefore, outF)
			outT = tree.EarliestFits(reqs, notBefore, outT)
			for j := range reqs {
				if outF[j] != outT[j] {
					t.Fatalf("seed %d trial %d req %d: EarliestFits tree %d, flat %d", seed, trial, j, outT[j], outF[j])
				}
			}
			outF, okF = flat.LatestFits(reqs, notBefore, finishBy, outF, okF)
			outT, okT = tree.LatestFits(reqs, notBefore, finishBy, outT, okT)
			for j := range reqs {
				if okF[j] != okT[j] || (okF[j] && outF[j] != outT[j]) {
					t.Fatalf("seed %d trial %d req %d: LatestFits tree (%d,%v), flat (%d,%v)",
						seed, trial, j, outT[j], okT[j], outF[j], okF[j])
				}
			}
			cases += 2 * len(reqs)
		}
	}
	if cases < 200 {
		t.Fatalf("only %d batch probes; the corpus should cover at least 200", cases)
	}
}

// TestTreeConversionsRoundTrip pins the conversion paths: flat → tree
// → flat reproduces the step function, Clone/CloneInto are independent
// copies, and LoadProfile reuses an arena without leaking prior state.
func TestTreeConversionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	flat := fuzzedProfile(rng, 64, 40)
	tree := NewTreeFromProfile(flat)
	if got, want := tree.Flat().String(), flat.String(); got != want {
		t.Fatalf("flat→tree→flat round trip diverged\ngot:  %s\nwant: %s", got, want)
	}

	clone := tree.Clone()
	if err := tree.Reserve(100, 200, 8); err != nil {
		t.Fatal(err)
	}
	if clone.String() != flat.String() {
		t.Fatalf("clone mutated by Reserve on the original")
	}

	var reused TreeProfile
	clone.CloneInto(&reused)
	if reused.String() != flat.String() {
		t.Fatalf("CloneInto diverged:\ngot:  %s\nwant: %s", reused.String(), flat.String())
	}

	// LoadProfile into a dirty tree must fully replace its contents.
	other := fuzzedProfile(rng, 32, 25)
	tree.LoadProfile(other)
	if got, want := tree.String(), other.String(); got != want {
		t.Fatalf("LoadProfile diverged\ngot:  %s\nwant: %s", got, want)
	}
	if err := tree.Check(); err != nil {
		t.Fatalf("reloaded tree invariants: %v", err)
	}
}

// TestAutoSelection pins the backend choice of Auto, NewAuto, and the
// scratch reuse of CopyIntervals.
func TestAutoSelection(t *testing.T) {
	small := New(16, 0)
	if _, ok := Auto(small).(*Profile); !ok {
		t.Fatalf("Auto on a %d-segment profile should stay flat", small.NumSegments())
	}
	big := New(16, 0)
	for i := 0; big.NumSegments() < AutoTreeThreshold; i++ {
		s := model.Time(1000 * (2*i + 1))
		if err := big.Reserve(s, s+500, (i%15)+1); err != nil {
			t.Fatal(err)
		}
	}
	tr, ok := Auto(big).(*TreeProfile)
	if !ok {
		t.Fatalf("Auto on a %d-segment profile should pick the tree", big.NumSegments())
	}
	if tr.String() != big.String() {
		t.Fatalf("Auto tree diverged from source")
	}

	if _, ok := NewAuto(8, 0, AutoTreeThreshold-1).(*Profile); !ok {
		t.Fatal("NewAuto below the threshold should be flat")
	}
	if _, ok := NewAuto(8, 0, AutoTreeThreshold).(*TreeProfile); !ok {
		t.Fatal("NewAuto at the threshold should be a tree")
	}

	// CopyIntervals reuses matching scratch and switches backends when
	// the source backend changed.
	scratch := CopyIntervals(big, nil)
	if _, ok := scratch.(*Profile); !ok {
		t.Fatal("CopyIntervals of a flat source should be flat")
	}
	scratch = CopyIntervals(tr, scratch)
	tt, ok := scratch.(*TreeProfile)
	if !ok {
		t.Fatal("CopyIntervals of a tree source should be a tree")
	}
	if tt.String() != big.String() {
		t.Fatal("CopyIntervals tree copy diverged")
	}
	if got := CopyIntervals(big, scratch); got.String() != big.String() {
		t.Fatal("CopyIntervals flat copy diverged")
	}
}

// TestCheckedOriginEdgeCases is the regression table for the silent
// pre-origin clamp: the Checked variants on both backends must reject
// windows starting before the origin with ErrBeforeOrigin, accept the
// origin itself, and keep rejecting the malformed-argument cases.
func TestCheckedOriginEdgeCases(t *testing.T) {
	const origin = 1000
	flat := New(8, origin)
	if err := flat.Reserve(2000, 3000, 8); err != nil {
		t.Fatal(err)
	}
	backends := []struct {
		name string
		p    Intervals
	}{
		{"flat", flat},
		{"tree", NewTreeFromProfile(flat)},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			// EarliestFit: pre-origin notBefore is rejected, not clamped.
			if _, err := b.p.EarliestFitChecked(4, 10, origin-1); !errors.Is(err, ErrBeforeOrigin) {
				t.Fatalf("EarliestFitChecked(notBefore=origin-1) err = %v, want ErrBeforeOrigin", err)
			}
			s, err := b.p.EarliestFitChecked(4, 10, origin)
			if err != nil || s != origin {
				t.Fatalf("EarliestFitChecked at origin = (%d, %v), want (%d, nil)", s, err, origin)
			}
			if _, err := b.p.EarliestFitChecked(0, 10, origin); err == nil || errors.Is(err, ErrBeforeOrigin) {
				t.Fatalf("EarliestFitChecked(procs=0) err = %v, want a non-origin validation error", err)
			}
			if _, err := b.p.EarliestFitChecked(4, -1, origin); err == nil {
				t.Fatal("EarliestFitChecked(dur=-1) should fail")
			}

			// LatestFit: same origin contract.
			if _, _, err := b.p.LatestFitChecked(4, 10, origin-1, 5000); !errors.Is(err, ErrBeforeOrigin) {
				t.Fatalf("LatestFitChecked(notBefore=origin-1) err = %v, want ErrBeforeOrigin", err)
			}
			if _, ok, err := b.p.LatestFitChecked(4, 10, origin, 5000); err != nil || !ok {
				t.Fatalf("LatestFitChecked at origin = (ok=%v, err=%v), want feasible", ok, err)
			}
			// An infeasible window is reported via ok, not an error.
			if _, ok, err := b.p.LatestFitChecked(8, 1, 2000, 3000); err != nil || ok {
				t.Fatalf("LatestFitChecked in a saturated window = (ok=%v, err=%v), want (false, nil)", ok, err)
			}

			// Window queries: pre-origin start rejected, origin accepted,
			// empty window still the malformed-arguments error.
			if _, err := b.p.MinFreeChecked(origin-1, origin+10); !errors.Is(err, ErrBeforeOrigin) {
				t.Fatalf("MinFreeChecked(start=origin-1) err = %v, want ErrBeforeOrigin", err)
			}
			if v, err := b.p.MinFreeChecked(origin, origin+10); err != nil || v != 8 {
				t.Fatalf("MinFreeChecked at origin = (%d, %v), want (8, nil)", v, err)
			}
			if _, err := b.p.MinFreeChecked(2000, 2000); err == nil || errors.Is(err, ErrBeforeOrigin) {
				t.Fatalf("MinFreeChecked(empty) err = %v, want a non-origin validation error", err)
			}
			if _, err := b.p.AvgFreeChecked(origin-1, origin+10); !errors.Is(err, ErrBeforeOrigin) {
				t.Fatalf("AvgFreeChecked(start=origin-1) err = %v, want ErrBeforeOrigin", err)
			}
			if v, err := b.p.AvgFreeChecked(2000, 3000); err != nil || v != 0 {
				t.Fatalf("AvgFreeChecked over the saturated hour = (%v, %v), want (0, nil)", v, err)
			}

			// Horizon edge cases: fits exist arbitrarily late, and the
			// mutation guards reject windows beyond the horizon sentinel.
			late := model.Time(model.Infinity - 10)
			if s, err := b.p.EarliestFitChecked(8, 5, late); err != nil || s != late {
				t.Fatalf("EarliestFitChecked near the horizon = (%d, %v), want (%d, nil)", s, err, late)
			}
			if err := b.p.CloneIntervals().Reserve(origin, model.Infinity, 1); err == nil {
				t.Fatal("Reserve ending at Infinity should fail")
			}
			if err := b.p.CloneIntervals().Unreserve(origin, model.Infinity, 1); err == nil {
				t.Fatal("Unreserve ending at Infinity should fail")
			}
		})
	}
}
