package profile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resched/internal/model"
)

func mustReserve(t *testing.T, p *Profile, start, end model.Time, procs int) {
	t.Helper()
	if err := p.Reserve(start, end, procs); err != nil {
		t.Fatalf("Reserve(%d,%d,%d): %v", start, end, procs, err)
	}
	if err := p.Check(); err != nil {
		t.Fatalf("after Reserve(%d,%d,%d): %v", start, end, procs, err)
	}
}

func TestNewProfile(t *testing.T) {
	p := New(8, 100)
	if p.Capacity() != 8 || p.Origin() != 100 {
		t.Fatalf("New: capacity %d origin %d", p.Capacity(), p.Origin())
	}
	if got := p.FreeAt(100); got != 8 {
		t.Fatalf("FreeAt(origin) = %d, want 8", got)
	}
	if got := p.FreeAt(1 << 40); got != 8 {
		t.Fatalf("FreeAt(far future) = %d, want 8", got)
	}
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, 0)
}

func TestReserveAndFreeAt(t *testing.T) {
	p := New(10, 0)
	mustReserve(t, p, 100, 200, 4)
	mustReserve(t, p, 150, 250, 3)
	cases := []struct {
		t    model.Time
		want int
	}{
		{0, 10}, {99, 10}, {100, 6}, {149, 6}, {150, 3}, {199, 3}, {200, 7}, {249, 7}, {250, 10},
	}
	for _, c := range cases {
		if got := p.FreeAt(c.t); got != c.want {
			t.Fatalf("FreeAt(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	if got := p.ReservedAt(150); got != 7 {
		t.Fatalf("ReservedAt(150) = %d, want 7", got)
	}
}

func TestReserveErrors(t *testing.T) {
	p := New(4, 1000)
	if err := p.Reserve(999, 1100, 1); err == nil {
		t.Fatal("reservation before origin accepted")
	}
	if err := p.Reserve(1100, 1100, 1); err == nil {
		t.Fatal("empty reservation accepted")
	}
	if err := p.Reserve(1200, 1100, 1); err == nil {
		t.Fatal("inverted reservation accepted")
	}
	if err := p.Reserve(1100, 1200, 5); err == nil {
		t.Fatal("oversize reservation accepted")
	}
	if err := p.Reserve(1100, 1200, 0); err == nil {
		t.Fatal("zero-processor reservation accepted")
	}
	if err := p.Reserve(1100, model.Infinity, 1); err == nil {
		t.Fatal("infinite reservation accepted")
	}
	mustReserve(t, p, 1100, 1200, 3)
	if err := p.Reserve(1150, 1250, 2); err == nil {
		t.Fatal("overcommitting reservation accepted")
	}
	// The failed Reserve must not have modified the profile.
	if err := p.Check(); err != nil {
		t.Fatal(err)
	}
	if got := p.FreeAt(1220); got != 4 {
		t.Fatalf("failed reserve leaked state: FreeAt(1220) = %d, want 4", got)
	}
}

func TestMinFreeAndAvgFree(t *testing.T) {
	p := New(10, 0)
	mustReserve(t, p, 100, 200, 4)
	if got := p.MinFree(0, 100); got != 10 {
		t.Fatalf("MinFree before = %d", got)
	}
	if got := p.MinFree(50, 150); got != 6 {
		t.Fatalf("MinFree overlapping = %d, want 6", got)
	}
	if got := p.MinFree(200, 300); got != 10 {
		t.Fatalf("MinFree after = %d", got)
	}
	// [0,200): 100s at 10 free + 100s at 6 free -> avg 8.
	if got := p.AvgFree(0, 200); got != 8 {
		t.Fatalf("AvgFree = %v, want 8", got)
	}
}

func TestEarliestFitBasics(t *testing.T) {
	p := New(10, 0)
	mustReserve(t, p, 100, 200, 8) // only 2 free in [100,200)
	cases := []struct {
		procs     int
		dur       model.Duration
		notBefore model.Time
		want      model.Time
	}{
		{2, 50, 0, 0},     // fits immediately
		{3, 50, 0, 0},     // fits before the reservation
		{3, 150, 0, 200},  // too long to finish by 100, 3 > 2 free -> after
		{3, 100, 0, 0},    // exactly fills [0,100)
		{2, 1000, 50, 50}, // 2 procs always free
		{3, 10, 150, 200}, // inside busy window, must wait
		{10, 1, 100, 200}, // full machine
		{1, 0, 42, 42},    // zero duration
		{1, 5, -50, 0},    // notBefore clamped to origin
	}
	for _, c := range cases {
		if got := p.EarliestFit(c.procs, c.dur, c.notBefore); got != c.want {
			t.Fatalf("EarliestFit(%d,%d,%d) = %d, want %d", c.procs, c.dur, c.notBefore, got, c.want)
		}
	}
}

func TestEarliestFitSpansSegments(t *testing.T) {
	p := New(10, 0)
	mustReserve(t, p, 100, 200, 4) // 6 free
	mustReserve(t, p, 200, 300, 2) // 8 free
	// 5 processors for 250s starting at 50: [50,300) has min free 6 >= 5.
	if got := p.EarliestFit(5, 250, 50); got != 50 {
		t.Fatalf("EarliestFit = %d, want 50 (run spans three segments)", got)
	}
	// 7 processors for 150s: blocked until 200? [200,300) has 8 free, and beyond is 10.
	if got := p.EarliestFit(7, 150, 0); got != 200 {
		t.Fatalf("EarliestFit = %d, want 200", got)
	}
}

func TestLatestFitBasics(t *testing.T) {
	p := New(10, 0)
	mustReserve(t, p, 100, 200, 8) // 2 free in [100,200)
	cases := []struct {
		procs     int
		dur       model.Duration
		notBefore model.Time
		finishBy  model.Time
		want      model.Time
		ok        bool
	}{
		{3, 50, 0, 300, 250, true},  // latest run is after the busy window
		{3, 50, 0, 100, 50, true},   // must finish before the busy window
		{3, 50, 0, 90, 40, true},    // clipped deadline
		{3, 101, 0, 100, 0, false},  // window too small
		{2, 50, 0, 150, 100, true},  // 2 procs fit inside the busy window
		{3, 50, 60, 100, 50, false}, // notBefore makes it infeasible
		{10, 10, 0, 100, 90, true},  // full machine before reservation
		{10, 10, 0, 205, 90, true},  // can't fit full machine ending at 205
		{1, 0, 0, 77, 77, true},     // zero duration
		{3, 50, 260, 300, 0, false}, // notBefore after last feasible start... 260+50 > 300? 250 needed
	}
	for _, c := range cases {
		got, ok := p.LatestFit(c.procs, c.dur, c.notBefore, c.finishBy)
		if ok != c.ok || (ok && got != c.want) {
			t.Fatalf("LatestFit(%d,%d,%d,%d) = (%d,%v), want (%d,%v)",
				c.procs, c.dur, c.notBefore, c.finishBy, got, ok, c.want, c.ok)
		}
	}
}

func TestLatestFitRunSpanningSegments(t *testing.T) {
	p := New(10, 0)
	mustReserve(t, p, 100, 200, 4)
	mustReserve(t, p, 200, 300, 2)
	// 6 procs, 180s, finish by 290: [100,200) has 6, [200,290) has 8.
	// Latest start = 290-180 = 110, feasible (min free 6).
	got, ok := p.LatestFit(6, 180, 0, 290)
	if !ok || got != 110 {
		t.Fatalf("LatestFit = (%d,%v), want (110,true)", got, ok)
	}
	// 7 procs, 150s, finish by 350: run [300,350) too short, run [200,300)
	// has 8 free: latest start 350-150=200. [200,350) min free is 8,10 -> 7 ok.
	got, ok = p.LatestFit(7, 150, 0, 350)
	if !ok || got != 200 {
		t.Fatalf("LatestFit = (%d,%v), want (200,true)", got, ok)
	}
}

func TestFromReservations(t *testing.T) {
	rs := []Reservation{
		{Start: 50, End: 150, Procs: 3},
		{Start: -100, End: 60, Procs: 2},  // clipped to [0,60)
		{Start: -100, End: -50, Procs: 9}, // entirely in the past: dropped
	}
	p, err := FromReservations(8, 0, rs)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.FreeAt(0); got != 6 {
		t.Fatalf("FreeAt(0) = %d, want 6", got)
	}
	if got := p.FreeAt(55); got != 3 {
		t.Fatalf("FreeAt(55) = %d, want 3", got)
	}
	if got := p.FreeAt(70); got != 5 {
		t.Fatalf("FreeAt(70) = %d, want 5", got)
	}
	if _, err := FromReservations(4, 0, []Reservation{{0, 10, 3}, {5, 15, 3}}); err == nil {
		t.Fatal("overcommitted reservation set accepted")
	}
}

func TestReservationsRoundTrip(t *testing.T) {
	p := New(10, 0)
	mustReserve(t, p, 100, 200, 4)
	mustReserve(t, p, 300, 400, 10)
	rs := p.Reservations()
	if len(rs) != 2 {
		t.Fatalf("Reservations = %v", rs)
	}
	if rs[0] != (Reservation{100, 200, 4}) || rs[1] != (Reservation{300, 400, 10}) {
		t.Fatalf("Reservations = %v", rs)
	}
	if rs[0].Duration() != 100 {
		t.Fatalf("Duration = %d", rs[0].Duration())
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(6, 0)
	mustReserve(t, p, 10, 20, 2)
	c := p.Clone()
	mustReserve(t, c, 10, 20, 4)
	if got := p.FreeAt(15); got != 4 {
		t.Fatalf("clone mutation leaked: FreeAt = %d, want 4", got)
	}
	if got := c.FreeAt(15); got != 0 {
		t.Fatalf("clone FreeAt = %d, want 0", got)
	}
}

// randomProfile commits a random feasible reservation sequence.
func randomProfile(rng *rand.Rand, cap int) *Profile {
	p := New(cap, 0)
	for k := 0; k < 30; k++ {
		start := model.Time(rng.Intn(1000))
		end := start + model.Duration(rng.Intn(500)+1)
		procs := rng.Intn(cap) + 1
		if p.MinFree(start, end) >= procs {
			if err := p.Reserve(start, end, procs); err != nil {
				panic(err)
			}
		}
	}
	return p
}

// Property: EarliestFit returns a start that actually fits and is no
// earlier than requested; no earlier fit exists at segment boundaries.
func TestEarliestFitProperty(t *testing.T) {
	f := func(seed int64, procsRaw, durRaw uint16, nbRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		cap := rng.Intn(20) + 1
		p := randomProfile(rng, cap)
		procs := int(procsRaw)%cap + 1
		dur := model.Duration(durRaw%800) + 1
		notBefore := model.Time(nbRaw % 1200)
		s := p.EarliestFit(procs, dur, notBefore)
		if s < notBefore {
			return false
		}
		if p.MinFree(s, s+dur) < procs {
			return false
		}
		// Minimality: starting one second earlier must not fit (unless
		// blocked only by notBefore).
		if s > notBefore && p.MinFree(s-1, s-1+dur) >= procs {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: LatestFit returns a maximal feasible start within the
// window, and reports false only when no feasible start exists (checked
// by brute force over a bounded window).
func TestLatestFitProperty(t *testing.T) {
	f := func(seed int64, procsRaw, durRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		cap := rng.Intn(16) + 1
		p := randomProfile(rng, cap)
		procs := int(procsRaw)%cap + 1
		dur := model.Duration(durRaw%300) + 1
		notBefore := model.Time(rng.Intn(800))
		finishBy := notBefore + model.Time(rng.Intn(900))
		s, ok := p.LatestFit(procs, dur, notBefore, finishBy)
		// Brute force: scan candidate starts at all segment-derived
		// boundaries plus the window edge.
		bestOK := false
		var best model.Time
		for cand := finishBy - dur; cand >= notBefore; cand-- {
			if p.MinFree(cand, cand+dur) >= procs {
				bestOK = true
				best = cand
				break
			}
		}
		if ok != bestOK {
			return false
		}
		return !ok || s == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: after any feasible reservation sequence the invariants hold
// and total reserved area equals the sum of committed areas.
func TestReserveAreaConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cap := rng.Intn(20) + 2
		p := New(cap, 0)
		var area model.Duration
		for k := 0; k < 40; k++ {
			start := model.Time(rng.Intn(2000))
			end := start + model.Duration(rng.Intn(300)+1)
			procs := rng.Intn(cap) + 1
			if p.MinFree(start, end) >= procs {
				if err := p.Reserve(start, end, procs); err != nil {
					return false
				}
				area += model.Duration(procs) * (end - start)
			}
		}
		if err := p.Check(); err != nil {
			return false
		}
		// Integrate reserved processors over the horizon.
		var got model.Duration
		for _, r := range p.Reservations() {
			got += model.Duration(r.Procs) * (r.End - r.Start)
		}
		return got == area
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAvgFreePrecision(t *testing.T) {
	p := New(4, 0)
	mustReserve(t, p, 0, 50, 4)
	// [0,100): 50s at 0 free, 50s at 4 free -> 2.
	if got := p.AvgFree(0, 100); got != 2 {
		t.Fatalf("AvgFree = %v, want 2", got)
	}
	// Window clamped to origin.
	if got := p.AvgFree(-100, 50); got != 0 {
		t.Fatalf("AvgFree clamped = %v, want 0", got)
	}
}
