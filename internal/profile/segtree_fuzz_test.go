package profile

import (
	"encoding/binary"
	"testing"

	"resched/internal/model"
)

// decodeTreeOp unpacks one fuzzed operation for the tree-vs-flat
// differential: an op selector plus raw (unclamped) time and processor
// operands, so rejection paths are fuzzed as hard as the commit paths.
func decodeTreeOp(b []byte) (op uint8, start model.Time, end model.Time, procs int) {
	op = b[0] % 5
	start = model.Time(binary.LittleEndian.Uint16(b[1:3]))
	end = start + model.Duration(binary.LittleEndian.Uint16(b[3:5]))
	procs = int(b[5])
	return
}

// FuzzTreeProfileVsFlat feeds random op sequences — Reserve,
// Unreserve, EarliestFit, LatestFit, MinFree — to a TreeProfile and
// the flat reference, requiring bit-identical outcomes after every
// operation: the same accept/reject decision on mutations, the same
// query answers, the same rendered step function, and valid invariants
// in both representations. This is the adversarial-input extension of
// TestTreeMatchesFlat*.
func FuzzTreeProfileVsFlat(f *testing.F) {
	f.Add(uint8(7), []byte{0, 10, 0, 20, 0, 3, 2, 15, 0, 10, 0, 2})
	f.Add(uint8(0), []byte{0, 0, 0, 0, 0, 0})
	f.Add(uint8(31), []byte{0, 1, 0, 1, 0, 255, 3, 1, 0, 1, 0, 255, 4, 9, 0, 9, 0, 9})
	f.Fuzz(func(t *testing.T, capRaw uint8, ops []byte) {
		capacity := int(capRaw%32) + 1
		// The per-step String() comparison is O(segments); bound the
		// sequence length as the flat differential fuzzer does.
		if len(ops) > 64*6 {
			ops = ops[:64*6]
		}
		flat := New(capacity, 0)
		tree := NewTree(capacity, 0)
		for step := 0; len(ops) >= 6; step++ {
			op, start, end, procs := decodeTreeOp(ops)
			ops = ops[6:]

			switch op {
			case 0: // Reserve
				errF := flat.Reserve(start, end, procs)
				errT := tree.Reserve(start, end, procs)
				if (errF == nil) != (errT == nil) {
					t.Fatalf("step %d: Reserve flat err=%v, tree err=%v", step, errF, errT)
				}
				if errF != nil && errF.Error() != errT.Error() {
					t.Fatalf("step %d: Reserve errors diverged\nflat: %v\ntree: %v", step, errF, errT)
				}
			case 1: // Unreserve
				errF := flat.Unreserve(start, end, procs)
				errT := tree.Unreserve(start, end, procs)
				if (errF == nil) != (errT == nil) {
					t.Fatalf("step %d: Unreserve flat err=%v, tree err=%v", step, errF, errT)
				}
				if errF != nil && errF.Error() != errT.Error() {
					t.Fatalf("step %d: Unreserve errors diverged\nflat: %v\ntree: %v", step, errF, errT)
				}
			case 2: // EarliestFit (via Checked so bad args reject, not panic)
				sF, errF := flat.EarliestFitChecked(procs, end-start, start)
				sT, errT := tree.EarliestFitChecked(procs, end-start, start)
				if (errF == nil) != (errT == nil) || sF != sT {
					t.Fatalf("step %d: EarliestFitChecked flat (%d,%v), tree (%d,%v)", step, sF, errF, sT, errT)
				}
			case 3: // LatestFit over a window derived from the operands
				sF, okF, errF := flat.LatestFitChecked(procs, model.Duration(procs), start, end)
				sT, okT, errT := tree.LatestFitChecked(procs, model.Duration(procs), start, end)
				if (errF == nil) != (errT == nil) || okF != okT || (okF && sF != sT) {
					t.Fatalf("step %d: LatestFitChecked flat (%d,%v,%v), tree (%d,%v,%v)",
						step, sF, okF, errF, sT, okT, errT)
				}
			case 4: // MinFree
				vF, errF := flat.MinFreeChecked(start, end)
				vT, errT := tree.MinFreeChecked(start, end)
				if (errF == nil) != (errT == nil) || vF != vT {
					t.Fatalf("step %d: MinFreeChecked flat (%d,%v), tree (%d,%v)", step, vF, errF, vT, errT)
				}
			}
			if err := tree.Check(); err != nil {
				t.Fatalf("step %d: tree invariants: %v", step, err)
			}
			if tree.String() != flat.String() {
				t.Fatalf("step %d: divergence\n  tree %s\n  flat %s", step, tree, flat)
			}
		}
	})
}
