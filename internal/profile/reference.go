package profile

import "resched/internal/model"

// This file retains the naive mutation path that Reserve and Unreserve
// replaced: a full coalescing sweep over every segment after each
// commit, instead of the two boundary merges that are the only merges
// a uniform shift of [start, end) can create. It is the oracle for the
// differential tests (differential_test.go), which require the
// optimized mutators to leave bit-identical step functions. It is not
// called on any serving path. The solo EarliestFit/LatestFit methods
// remain the oracles for the batch EarliestFits/LatestFits queries.

// coalesce merges adjacent segments with equal availability over the
// whole profile.
func (p *Profile) coalesce() {
	w := 0
	for i := 0; i < len(p.times); i++ {
		if w > 0 && p.free[w-1] == p.free[i] {
			continue
		}
		p.times[w] = p.times[i]
		p.free[w] = p.free[i]
		w++
	}
	p.times = p.times[:w]
	p.free = p.free[:w]
}

// referenceReserve is the pre-optimization Reserve, kept verbatim.
func (p *Profile) referenceReserve(start, end model.Time, procs int) error {
	if err := p.reserveChecks(start, end, procs); err != nil {
		return err
	}
	i := p.ensureBreak(start)
	j := p.ensureBreak(end)
	for k := i; k < j; k++ {
		p.free[k] -= procs
	}
	p.coalesce()
	return nil
}

// referenceUnreserve is the pre-optimization Unreserve, kept verbatim.
func (p *Profile) referenceUnreserve(start, end model.Time, procs int) error {
	if err := p.unreserveChecks(start, end, procs); err != nil {
		return err
	}
	i := p.ensureBreak(start)
	j := p.ensureBreak(end)
	for k := i; k < j; k++ {
		p.free[k] += procs
	}
	p.coalesce()
	return nil
}
