package profile

// TreeProfile is the O(log n) availability-profile backend: the same
// step function as the flat Profile, indexed by a treap (randomized
// balanced BST) over the segment-start breakpoints. Each node carries
// its segment's free-processor count plus subtree min/max aggregates
// and a lazy range-add tag, so
//
//   - FreeAt / MinFree            are tree descents,          O(log n)
//   - Reserve / Unreserve         are two breakpoint inserts,
//                                 one lazy range-add, and up to
//                                 two coalescing deletes,     O(log n)
//   - EarliestFit / LatestFit     probe blocking segments via
//                                 aggregate-pruned descents,  O((b+1) log n)
//                                 where b is the number of blocking
//                                 segments the probe must skip,
//
// versus the flat backend's O(n) scans. AvgFree and the rendering
// queries traverse the queried window, O(k + log n) for k segments.
//
// The tree lives in an index-based node arena (nodes[0] is the nil
// sentinel), so cloning is a slice copy and a pooled TreeProfile can
// be reloaded in place (LoadProfile) without churning the allocator.
// Node priorities come from a splitmix64 stream seeded by the
// insertion counter: fully deterministic, so differential runs against
// the flat oracle are reproducible.
//
// Every query and mutation is semantically bit-identical to the flat
// backend — same results, same error messages, same panics on
// programming errors. The differential tests and
// FuzzTreeProfileVsFlat enforce this.

import (
	"fmt"
	"math"

	"resched/internal/model"
)

// tnode is one treap node: the segment starting at key holds val free
// processors until the next breakpoint. mn/mx aggregate val over the
// node's subtree; add is the pending lazy increment for both child
// subtrees (the node's own val/mn/mx are always current).
type tnode struct {
	l, r int32
	prio uint64
	key  model.Time
	val  int
	mn   int
	mx   int
	add  int
}

const (
	freeCeil  = int(1) << 30    // above any processor count: range-min identity
	freeFloor = -(int(1) << 30) // below any processor count: range-max identity
	keyFloor  = model.Time(math.MinInt64 / 2)
	keyCeil   = model.Time(math.MaxInt64 / 2)
)

// TreeProfile is a step function of free processors over
// [origin, +inf) answering queries in O(log n). The zero value is not
// usable; construct with NewTree, NewTreeFromProfile, or LoadProfile.
type TreeProfile struct {
	capacity int
	origin   model.Time
	nodes    []tnode // arena; nodes[0] is the nil sentinel
	root     int32
	free     int32 // head of the recycled-slot list, linked through l
	n        int   // live segment count
	seed     uint64
	spine    []int32 // scratch for the O(n) sorted build
}

// splitmix64 is the deterministic priority stream for treap nodes.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// NewTree returns an empty tree-backed profile: capacity processors
// free from origin onward.
func NewTree(capacity int, origin model.Time) *TreeProfile {
	t := &TreeProfile{}
	t.reset(capacity, origin)
	t.root = t.alloc(origin, capacity)
	t.n = 1
	return t
}

// NewTreeFromProfile returns a tree-backed copy of the flat profile p,
// built in O(n). p is not retained.
func NewTreeFromProfile(p *Profile) *TreeProfile {
	t := &TreeProfile{}
	t.LoadProfile(p)
	return t
}

// LoadProfile rebuilds t in place as a copy of the flat profile p,
// reusing t's node arena. It is CloneInto across backends: the serving
// layer pools TreeProfiles and reloads them per request.
func (t *TreeProfile) LoadProfile(p *Profile) {
	t.reset(p.capacity, p.times[0])
	t.buildSorted(p.times, p.free)
}

// reset reinitializes the arena to just the nil sentinel.
func (t *TreeProfile) reset(capacity int, origin model.Time) {
	t.capacity = capacity
	t.origin = origin
	if t.nodes == nil {
		t.nodes = make([]tnode, 1, 64)
	} else {
		t.nodes = t.nodes[:1]
	}
	t.nodes[0] = tnode{mn: freeCeil, mx: freeFloor}
	t.root = 0
	t.free = 0
	t.n = 0
}

// buildSorted builds a proper random treap from the sorted step
// function in O(n), pushing each new rightmost node onto the right
// spine and rotating by priority, then recomputing aggregates bottom-up.
func (t *TreeProfile) buildSorted(times []model.Time, free []int) {
	spine := t.spine[:0]
	for i := range times {
		ni := t.alloc(times[i], free[i])
		prio := t.nodes[ni].prio
		var last int32
		for len(spine) > 0 && t.nodes[spine[len(spine)-1]].prio < prio {
			last = spine[len(spine)-1]
			spine = spine[:len(spine)-1]
		}
		t.nodes[ni].l = last
		if len(spine) > 0 {
			t.nodes[spine[len(spine)-1]].r = ni
		} else {
			t.root = ni
		}
		spine = append(spine, ni)
	}
	t.spine = spine[:0]
	t.n = len(times)
	t.pullAll(t.root)
}

func (t *TreeProfile) pullAll(i int32) {
	if i == 0 {
		return
	}
	t.pullAll(t.nodes[i].l)
	t.pullAll(t.nodes[i].r)
	t.pull(i)
}

// Clone returns an independent copy: one slice copy of the arena.
func (t *TreeProfile) Clone() *TreeProfile {
	c := *t
	c.nodes = append([]tnode(nil), t.nodes...)
	c.spine = nil
	return &c
}

// CloneInto overwrites dst with a copy of t, reusing dst's arena when
// large enough — the tree counterpart of (*Profile).CloneInto.
func (t *TreeProfile) CloneInto(dst *TreeProfile) {
	dst.capacity = t.capacity
	dst.origin = t.origin
	dst.nodes = append(dst.nodes[:0], t.nodes...)
	dst.root = t.root
	dst.free = t.free
	dst.n = t.n
	dst.seed = t.seed
}

// CloneIntervals implements Intervals.
func (t *TreeProfile) CloneIntervals() Intervals { return t.Clone() }

// Flat returns an independent flat-backend copy of the step function.
func (t *TreeProfile) Flat() *Profile {
	p := &Profile{
		capacity: t.capacity,
		times:    make([]model.Time, 0, t.n),
		free:     make([]int, 0, t.n),
	}
	t.visit(t.root, 0, func(k model.Time, v int) bool {
		p.times = append(p.times, k)
		p.free = append(p.free, v)
		return true
	})
	return p
}

// Capacity returns the cluster size.
func (t *TreeProfile) Capacity() int { return t.capacity }

// Origin returns the start of the profile's horizon.
func (t *TreeProfile) Origin() model.Time { return t.origin }

// NumSegments returns the number of segments of the step function.
func (t *TreeProfile) NumSegments() int { return t.n }

// ---- arena plumbing ----

func (t *TreeProfile) alloc(key model.Time, val int) int32 {
	var i int32
	if t.free != 0 {
		i = t.free
		t.free = t.nodes[i].l
	} else {
		t.nodes = append(t.nodes, tnode{})
		i = int32(len(t.nodes) - 1)
	}
	t.seed++
	t.nodes[i] = tnode{key: key, val: val, mn: val, mx: val, prio: splitmix64(t.seed)}
	return i
}

func (t *TreeProfile) freeNode(i int32) {
	t.nodes[i] = tnode{l: t.free}
	t.free = i
}

// apply adds d to every segment in i's subtree (lazily for children).
func (t *TreeProfile) apply(i int32, d int) {
	if i == 0 {
		return
	}
	n := &t.nodes[i]
	n.val += d
	n.mn += d
	n.mx += d
	n.add += d
}

func (t *TreeProfile) pushdown(i int32) {
	n := &t.nodes[i]
	if n.add != 0 {
		t.apply(n.l, n.add)
		t.apply(n.r, n.add)
		n.add = 0
	}
}

// pull recomputes i's aggregates from its (up-to-date) children; i's
// own lazy tag must be clear.
func (t *TreeProfile) pull(i int32) {
	n := &t.nodes[i]
	mn, mx := n.val, n.val
	if l := n.l; l != 0 {
		if v := t.nodes[l].mn; v < mn {
			mn = v
		}
		if v := t.nodes[l].mx; v > mx {
			mx = v
		}
	}
	if r := n.r; r != 0 {
		if v := t.nodes[r].mn; v < mn {
			mn = v
		}
		if v := t.nodes[r].mx; v > mx {
			mx = v
		}
	}
	n.mn, n.mx = mn, mx
}

func (t *TreeProfile) rotRight(i int32) int32 {
	l := t.nodes[i].l
	t.nodes[i].l = t.nodes[l].r
	t.nodes[l].r = i
	t.pull(i)
	t.pull(l)
	return l
}

func (t *TreeProfile) rotLeft(i int32) int32 {
	r := t.nodes[i].r
	t.nodes[i].r = t.nodes[r].l
	t.nodes[r].l = i
	t.pull(i)
	t.pull(r)
	return r
}

// insert adds a new breakpoint; the key must not be present.
func (t *TreeProfile) insert(i int32, key model.Time, val int) int32 {
	if i == 0 {
		return t.alloc(key, val)
	}
	t.pushdown(i)
	if key < t.nodes[i].key {
		l := t.insert(t.nodes[i].l, key, val)
		t.nodes[i].l = l
		if t.nodes[l].prio > t.nodes[i].prio {
			i = t.rotRight(i)
			t.pull(i)
			return i
		}
	} else {
		r := t.insert(t.nodes[i].r, key, val)
		t.nodes[i].r = r
		if t.nodes[r].prio > t.nodes[i].prio {
			i = t.rotLeft(i)
			t.pull(i)
			return i
		}
	}
	t.pull(i)
	return i
}

// erase removes the breakpoint at key; the key must be present.
func (t *TreeProfile) erase(i int32, key model.Time) int32 {
	if i == 0 {
		return 0
	}
	t.pushdown(i)
	switch {
	case key < t.nodes[i].key:
		t.nodes[i].l = t.erase(t.nodes[i].l, key)
	case key > t.nodes[i].key:
		t.nodes[i].r = t.erase(t.nodes[i].r, key)
	default:
		j := t.merge(t.nodes[i].l, t.nodes[i].r)
		t.freeNode(i)
		return j
	}
	t.pull(i)
	return i
}

// merge joins two treaps where every key of a precedes every key of b.
func (t *TreeProfile) merge(a, b int32) int32 {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	if t.nodes[a].prio > t.nodes[b].prio {
		t.pushdown(a)
		t.nodes[a].r = t.merge(t.nodes[a].r, b)
		t.pull(a)
		return a
	}
	t.pushdown(b)
	t.nodes[b].l = t.merge(a, t.nodes[b].l)
	t.pull(b)
	return b
}

// rangeAdd adds d to every segment with key in [lo, hi). (lb, ub) are
// the inclusive key bounds of i's subtree implied by the descent path,
// which is what lets a fully covered subtree absorb the add lazily.
func (t *TreeProfile) rangeAdd(i int32, lb, ub, lo, hi model.Time, d int) {
	if i == 0 || ub < lo || lb >= hi {
		return
	}
	if lo <= lb && ub < hi {
		t.apply(i, d)
		return
	}
	t.pushdown(i)
	k := t.nodes[i].key
	if lo <= k && k < hi {
		t.nodes[i].val += d
	}
	t.rangeAdd(t.nodes[i].l, lb, k-1, lo, hi, d)
	t.rangeAdd(t.nodes[i].r, k+1, ub, lo, hi, d)
	t.pull(i)
}

// ---- read-only descents ----
//
// Queries never push lazy tags down: they accumulate the pending adds
// of strict ancestors in acc instead, so every query method leaves the
// tree untouched (a shared snapshot can be probed without copying).

// floor returns the key and value of the segment containing x — the
// greatest breakpoint <= x. ok is false when x precedes the origin.
//
//reschedvet:hotpath
func (t *TreeProfile) floor(x model.Time) (key model.Time, val int, ok bool) {
	i, acc := t.root, 0
	for i != 0 {
		n := &t.nodes[i]
		if x < n.key {
			acc += n.add
			i = n.l
		} else {
			key, val, ok = n.key, n.val+acc, true
			acc += n.add
			i = n.r
		}
	}
	return key, val, ok
}

// succKey returns the smallest breakpoint > x, or model.Infinity — the
// exclusive end of the segment whose key is the floor of x.
//
//reschedvet:hotpath
func (t *TreeProfile) succKey(x model.Time) model.Time {
	i := t.root
	s := model.Infinity
	for i != 0 {
		n := &t.nodes[i]
		if n.key > x {
			s = n.key
			i = n.l
		} else {
			i = n.r
		}
	}
	return s
}

// rangeMin returns the minimum free count over segments with key in
// [lo, hi), or freeCeil when none exist.
//
//reschedvet:hotpath
func (t *TreeProfile) rangeMin(i int32, acc int, lb, ub, lo, hi model.Time) int {
	if i == 0 || ub < lo || lb >= hi {
		return freeCeil
	}
	n := &t.nodes[i]
	if lo <= lb && ub < hi {
		return n.mn + acc
	}
	m := freeCeil
	if lo <= n.key && n.key < hi {
		m = n.val + acc
	}
	acc += n.add
	if v := t.rangeMin(n.l, acc, lb, n.key-1, lo, hi); v < m {
		m = v
	}
	if v := t.rangeMin(n.r, acc, n.key+1, ub, lo, hi); v < m {
		m = v
	}
	return m
}

// firstBelow returns the leftmost segment with key >= from and fewer
// than procs free — the first blocking segment an EarliestFit probe
// starting there must clear. Subtrees whose min already satisfies
// procs are pruned via the aggregates.
//
//reschedvet:hotpath
func (t *TreeProfile) firstBelow(i int32, acc int, procs int, from model.Time) (model.Time, bool) {
	if i == 0 {
		return 0, false
	}
	n := &t.nodes[i]
	if n.mn+acc >= procs {
		return 0, false
	}
	if n.key < from {
		return t.firstBelow(n.r, acc+n.add, procs, from)
	}
	if k, ok := t.firstBelow(n.l, acc+n.add, procs, from); ok {
		return k, ok
	}
	if n.val+acc < procs {
		return n.key, true
	}
	return t.firstBelow(n.r, acc+n.add, procs, from)
}

// firstAbove returns the leftmost segment with key in [from, to) and
// more than limit free — the first over-released segment an Unreserve
// validation must report. The value returned is that segment's free
// count.
//
//reschedvet:hotpath
func (t *TreeProfile) firstAbove(i int32, acc int, limit int, from, to model.Time) (int, bool) {
	if i == 0 {
		return 0, false
	}
	n := &t.nodes[i]
	if n.mx+acc <= limit {
		return 0, false
	}
	if n.key >= to {
		return t.firstAbove(n.l, acc+n.add, limit, from, to)
	}
	if n.key < from {
		return t.firstAbove(n.r, acc+n.add, limit, from, to)
	}
	if v, ok := t.firstAbove(n.l, acc+n.add, limit, from, to); ok {
		return v, ok
	}
	if n.val+acc > limit {
		return n.val + acc, true
	}
	return t.firstAbove(n.r, acc+n.add, limit, from, to)
}

// lastFeasibleUpTo returns the rightmost segment with key <= upto and
// at least procs free — the top of the latest feasible run.
//
//reschedvet:hotpath
func (t *TreeProfile) lastFeasibleUpTo(i int32, acc int, procs int, upto model.Time) (model.Time, bool) {
	if i == 0 {
		return 0, false
	}
	n := &t.nodes[i]
	if n.mx+acc < procs {
		return 0, false
	}
	if n.key > upto {
		return t.lastFeasibleUpTo(n.l, acc+n.add, procs, upto)
	}
	if k, ok := t.lastFeasibleUpTo(n.r, acc+n.add, procs, upto); ok {
		return k, ok
	}
	if n.val+acc >= procs {
		return n.key, true
	}
	return t.lastFeasibleUpTo(n.l, acc+n.add, procs, upto)
}

// lastBlockingUpTo returns the rightmost segment with key <= upto and
// fewer than procs free — the blocking segment bounding a feasible
// run from below.
//
//reschedvet:hotpath
func (t *TreeProfile) lastBlockingUpTo(i int32, acc int, procs int, upto model.Time) (model.Time, bool) {
	if i == 0 {
		return 0, false
	}
	n := &t.nodes[i]
	if n.mn+acc >= procs {
		return 0, false
	}
	if n.key > upto {
		return t.lastBlockingUpTo(n.l, acc+n.add, procs, upto)
	}
	if k, ok := t.lastBlockingUpTo(n.r, acc+n.add, procs, upto); ok {
		return k, ok
	}
	if n.val+acc < procs {
		return n.key, true
	}
	return t.lastBlockingUpTo(n.l, acc+n.add, procs, upto)
}

// visit walks the tree in key order calling fn(key, free); fn returns
// false to stop early.
func (t *TreeProfile) visit(i int32, acc int, fn func(model.Time, int) bool) bool {
	if i == 0 {
		return true
	}
	n := &t.nodes[i]
	if !t.visit(n.l, acc+n.add, fn) {
		return false
	}
	if !fn(n.key, n.val+acc) {
		return false
	}
	return t.visit(n.r, acc+n.add, fn)
}

// visitFrom is visit restricted to keys >= from.
func (t *TreeProfile) visitFrom(i int32, acc int, from model.Time, fn func(model.Time, int) bool) bool {
	if i == 0 {
		return true
	}
	n := &t.nodes[i]
	if n.key < from {
		return t.visitFrom(n.r, acc+n.add, from, fn)
	}
	if !t.visitFrom(n.l, acc+n.add, from, fn) {
		return false
	}
	if !fn(n.key, n.val+acc) {
		return false
	}
	return t.visit(n.r, acc+n.add, fn)
}

// ---- queries (semantics identical to the flat backend) ----

// FreeAt returns the number of free processors at time t. Times before
// the origin report the origin's availability.
func (t *TreeProfile) FreeAt(at model.Time) int {
	if at < t.origin {
		at = t.origin
	}
	_, v, _ := t.floor(at)
	return v
}

// ReservedAt returns capacity - FreeAt(t).
func (t *TreeProfile) ReservedAt(at model.Time) int { return t.capacity - t.FreeAt(at) }

// MinFree returns the minimum number of free processors over
// [start, end). It panics if end <= start.
func (t *TreeProfile) MinFree(start, end model.Time) int {
	if end <= start {
		panic(fmt.Sprintf("profile: MinFree over empty interval [%d,%d)", start, end))
	}
	if start < t.origin {
		start = t.origin
	}
	fk, _, _ := t.floor(start)
	m := t.rangeMin(t.root, 0, keyFloor, keyCeil, fk, end)
	if m > t.capacity {
		m = t.capacity
	}
	return m
}

// AvgFree returns the time-weighted average number of free processors
// over [start, end).
func (t *TreeProfile) AvgFree(start, end model.Time) float64 {
	if end <= start {
		panic(fmt.Sprintf("profile: AvgFree over empty interval [%d,%d)", start, end))
	}
	if start < t.origin {
		start = t.origin
	}
	if end <= start {
		return float64(t.capacity)
	}
	fk, _, _ := t.floor(start)
	var acc float64
	var prevKey model.Time
	var prevVal int
	started := false
	emit := func(segStart, segEnd model.Time, free int) {
		lo, hi := segStart, segEnd
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi > lo {
			acc += float64(free) * float64(hi-lo)
		}
	}
	t.visitFrom(t.root, 0, fk, func(k model.Time, v int) bool {
		if started {
			emit(prevKey, k, prevVal)
		}
		prevKey, prevVal = k, v
		started = true
		return k < end
	})
	if started && prevKey < end {
		emit(prevKey, model.Infinity, prevVal)
	}
	return acc / float64(end-start)
}

// EarliestFit returns the earliest start time s >= notBefore such that
// procs processors are free during [s, s+dur); see the flat backend
// for the full contract. Instead of scanning left to right it hops
// from blocking segment to blocking segment, each located by an
// aggregate-pruned descent.
func (t *TreeProfile) EarliestFit(procs int, dur model.Duration, notBefore model.Time) model.Time {
	if procs < 1 || procs > t.capacity {
		panic(fmt.Sprintf("profile: EarliestFit for %d processors on a %d-processor cluster", procs, t.capacity))
	}
	if dur < 0 {
		panic(fmt.Sprintf("profile: negative duration %d", dur))
	}
	s := notBefore
	if s < t.origin {
		s = t.origin
	}
	if dur == 0 {
		return s
	}
	for {
		fk, _, _ := t.floor(s)
		bk, ok := t.firstBelow(t.root, 0, procs, fk)
		if !ok || bk >= s+dur {
			// No blocking segment intersects [s, s+dur).
			return s
		}
		e := t.succKey(bk)
		if e == model.Infinity {
			// Matches the flat backend's defensive check: the horizon
			// segment is fully free in any valid profile.
			panic("profile: horizon segment not fully free")
		}
		s = e
	}
}

// LatestFit returns the latest start time s with s >= notBefore,
// s+dur <= finishBy, and procs processors free during [s, s+dur); see
// the flat backend for the full contract. It walks maximal feasible
// runs latest-first, each bounded by aggregate-pruned descents.
func (t *TreeProfile) LatestFit(procs int, dur model.Duration, notBefore, finishBy model.Time) (model.Time, bool) {
	if procs < 1 || procs > t.capacity {
		panic(fmt.Sprintf("profile: LatestFit for %d processors on a %d-processor cluster", procs, t.capacity))
	}
	if dur < 0 {
		panic(fmt.Sprintf("profile: negative duration %d", dur))
	}
	lo := notBefore
	if lo < t.origin {
		lo = t.origin
	}
	if finishBy-dur < lo {
		return 0, false
	}
	if dur == 0 {
		return finishBy, true
	}
	cur, _, _ := t.floor(finishBy)
	for {
		fk, ok := t.lastFeasibleUpTo(t.root, 0, procs, cur)
		if !ok {
			return 0, false
		}
		runEnd := t.succKey(fk)
		if runEnd > finishBy {
			runEnd = finishBy
		}
		bk, bok := t.lastBlockingUpTo(t.root, 0, procs, fk)
		runStart := t.origin
		if bok {
			runStart = t.succKey(bk)
		}
		if runStart < lo {
			runStart = lo
		}
		if runEnd-dur >= runStart {
			return runEnd - dur, true
		}
		if !bok {
			return 0, false
		}
		cur = bk
	}
}

// EarliestFits answers EarliestFit for every request. On the tree
// backend each probe is an independent O((b+1) log n) descent, so the
// batch is a plain loop; results are probe-for-probe identical to the
// flat backend's shared sweep.
func (t *TreeProfile) EarliestFits(reqs []FitRequest, notBefore model.Time, out []model.Time) []model.Time {
	if cap(out) < len(reqs) {
		out = make([]model.Time, len(reqs))
	}
	out = out[:len(reqs)]
	for j, r := range reqs {
		if r.Procs < 1 || r.Procs > t.capacity {
			panic(fmt.Sprintf("profile: EarliestFits for %d processors on a %d-processor cluster", r.Procs, t.capacity))
		}
		out[j] = t.EarliestFit(r.Procs, r.Dur, notBefore)
	}
	return out
}

// LatestFits answers LatestFit for every request; see EarliestFits.
func (t *TreeProfile) LatestFits(reqs []FitRequest, notBefore, finishBy model.Time, out []model.Time, ok []bool) ([]model.Time, []bool) {
	if cap(out) < len(reqs) {
		out = make([]model.Time, len(reqs))
	}
	out = out[:len(reqs)]
	if cap(ok) < len(reqs) {
		ok = make([]bool, len(reqs))
	}
	ok = ok[:len(reqs)]
	for j, r := range reqs {
		if r.Procs < 1 || r.Procs > t.capacity {
			panic(fmt.Sprintf("profile: LatestFits for %d processors on a %d-processor cluster", r.Procs, t.capacity))
		}
		out[j], ok[j] = t.LatestFit(r.Procs, r.Dur, notBefore, finishBy)
	}
	return out, ok
}

// ---- mutations ----

// ensureBreak inserts a breakpoint at time tm (>= origin), reusing an
// existing one.
func (t *TreeProfile) ensureBreak(tm model.Time) {
	fk, fv, _ := t.floor(tm)
	if fk == tm {
		return
	}
	t.root = t.insert(t.root, tm, fv)
	t.n++
}

// coalesceBoundary removes the breakpoint at tm when its segment has
// the same availability as its predecessor.
func (t *TreeProfile) coalesceBoundary(tm model.Time) {
	if tm <= t.origin {
		return
	}
	fk, fv, ok := t.floor(tm)
	if !ok || fk != tm {
		return
	}
	_, pv, pok := t.floor(tm - 1)
	if pok && pv == fv {
		t.root = t.erase(t.root, tm)
		t.n--
	}
}

// reserveChecks mirrors the flat backend's validation, same messages.
func (t *TreeProfile) reserveChecks(start, end model.Time, procs int) error {
	if procs < 1 || procs > t.capacity {
		return fmt.Errorf("cannot reserve %d processors on a %d-processor cluster", procs, t.capacity)
	}
	if start < t.origin {
		return fmt.Errorf("reservation start %d before profile origin %d", start, t.origin)
	}
	if end <= start {
		return fmt.Errorf("reservation interval [%d,%d) is empty", start, end)
	}
	if end >= model.Infinity {
		return fmt.Errorf("reservation end %d beyond the scheduling horizon", end)
	}
	if m := t.MinFree(start, end); m < procs {
		return fmt.Errorf("only %d of %d requested processors free during [%d,%d)", m, procs, start, end)
	}
	return nil
}

// unreserveChecks mirrors the flat backend's validation, same messages.
func (t *TreeProfile) unreserveChecks(start, end model.Time, procs int) error {
	if procs < 1 || procs > t.capacity {
		return fmt.Errorf("cannot release %d processors on a %d-processor cluster", procs, t.capacity)
	}
	if start < t.origin {
		return fmt.Errorf("release start %d before profile origin %d", start, t.origin)
	}
	if end <= start {
		return fmt.Errorf("release interval [%d,%d) is empty", start, end)
	}
	if end >= model.Infinity {
		return fmt.Errorf("release end %d beyond the scheduling horizon", end)
	}
	fk, _, _ := t.floor(start)
	if v, over := t.firstAbove(t.root, 0, t.capacity-procs, fk, end); over {
		return fmt.Errorf("only %d of %d released processors reserved during [%d,%d)", t.capacity-v, procs, start, end)
	}
	return nil
}

// Reserve commits a reservation of procs processors during
// [start, end); same contract and failure modes as the flat backend.
func (t *TreeProfile) Reserve(start, end model.Time, procs int) error {
	if err := t.reserveChecks(start, end, procs); err != nil {
		return err
	}
	t.ensureBreak(start)
	t.ensureBreak(end)
	t.rangeAdd(t.root, keyFloor, keyCeil, start, end, -procs)
	t.coalesceBoundary(end)
	t.coalesceBoundary(start)
	return nil
}

// Unreserve returns procs processors to the profile during
// [start, end); same contract and failure modes as the flat backend.
func (t *TreeProfile) Unreserve(start, end model.Time, procs int) error {
	if err := t.unreserveChecks(start, end, procs); err != nil {
		return err
	}
	t.ensureBreak(start)
	t.ensureBreak(end)
	t.rangeAdd(t.root, keyFloor, keyCeil, start, end, procs)
	t.coalesceBoundary(end)
	t.coalesceBoundary(start)
	return nil
}

// ---- rendering and invariants ----

// Segments returns the step function as a list of segments.
func (t *TreeProfile) Segments() []Segment {
	out := make([]Segment, 0, t.n)
	t.visit(t.root, 0, func(k model.Time, v int) bool {
		out = append(out, Segment{Start: k, Free: v})
		return true
	})
	return out
}

// Check verifies the representation invariants, reporting the same
// violations (same messages) as the flat backend plus tree-specific
// bookkeeping (segment count, heap order).
func (t *TreeProfile) Check() error {
	if t.n < 1 {
		return fmt.Errorf("profile: %d times, %d free values", t.n, t.n)
	}
	var err error
	i := 0
	var prevKey model.Time
	var prevVal int
	last := 0
	t.visit(t.root, 0, func(k model.Time, v int) bool {
		if i > 0 && k <= prevKey {
			err = fmt.Errorf("profile: breakpoints not increasing at %d", i)
			return false
		}
		if i > 0 && v == prevVal {
			err = fmt.Errorf("profile: uncoalesced segments at %d", i)
			return false
		}
		if v < 0 || v > t.capacity {
			err = fmt.Errorf("profile: free %d outside [0,%d]", v, t.capacity)
			return false
		}
		prevKey, prevVal = k, v
		last = v
		i++
		return true
	})
	if err != nil {
		return err
	}
	if i != t.n {
		return fmt.Errorf("profile: tree holds %d segments, count says %d", i, t.n)
	}
	if last != t.capacity {
		return fmt.Errorf("profile: final segment not fully free")
	}
	return t.checkHeap(t.root)
}

// checkHeap verifies the treap's priority heap order.
func (t *TreeProfile) checkHeap(i int32) error {
	if i == 0 {
		return nil
	}
	n := &t.nodes[i]
	if l := n.l; l != 0 && t.nodes[l].prio > n.prio {
		return fmt.Errorf("profile: treap heap order violated at key %d", t.nodes[l].key)
	}
	if r := n.r; r != 0 && t.nodes[r].prio > n.prio {
		return fmt.Errorf("profile: treap heap order violated at key %d", t.nodes[r].key)
	}
	if err := t.checkHeap(n.l); err != nil {
		return err
	}
	return t.checkHeap(n.r)
}

// String renders the profile compactly, identically to the flat
// backend — the differential tests compare the two byte for byte.
func (t *TreeProfile) String() string {
	s := fmt.Sprintf("profile{cap %d:", t.capacity)
	t.visit(t.root, 0, func(k model.Time, v int) bool {
		s += fmt.Sprintf(" [%d:%d free]", k, v)
		return true
	})
	return s + "}"
}
