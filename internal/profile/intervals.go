package profile

// This file defines the Intervals interface: the query/mutation
// surface shared by the two availability-profile backends. The flat
// Profile (profile.go) stores the step function as parallel arrays
// and answers queries with linear scans — simple, cache-friendly, and
// the differential-test oracle. TreeProfile (segtree.go) indexes the
// same step function with a balanced tree and answers the same
// queries in O(log n) per probe. Auto and NewAuto pick the backend by
// segment count so callers (internal/cpa, internal/core,
// internal/server) never hard-code the choice.

import "resched/internal/model"

// Intervals is the availability-profile abstraction: a step function
// of free processors over [origin, +inf) supporting feasibility
// probes and reservation mutations. Both *Profile and *TreeProfile
// implement it with bit-identical results (enforced by the
// differential tests and FuzzTreeProfileVsFlat); scheduling code
// written against Intervals runs unchanged on either backend.
type Intervals interface {
	Capacity() int
	Origin() model.Time
	NumSegments() int

	FreeAt(t model.Time) int
	ReservedAt(t model.Time) int
	MinFree(start, end model.Time) int
	AvgFree(start, end model.Time) float64
	EarliestFit(procs int, dur model.Duration, notBefore model.Time) model.Time
	LatestFit(procs int, dur model.Duration, notBefore, finishBy model.Time) (model.Time, bool)
	EarliestFits(reqs []FitRequest, notBefore model.Time, out []model.Time) []model.Time
	LatestFits(reqs []FitRequest, notBefore, finishBy model.Time, out []model.Time, ok []bool) ([]model.Time, []bool)

	// Checked variants: validated entry points for serving code; see
	// validate.go for the contract (including ErrBeforeOrigin).
	EarliestFitChecked(procs int, dur model.Duration, notBefore model.Time) (model.Time, error)
	LatestFitChecked(procs int, dur model.Duration, notBefore, finishBy model.Time) (model.Time, bool, error)
	MinFreeChecked(start, end model.Time) (int, error)
	AvgFreeChecked(start, end model.Time) (float64, error)

	Reserve(start, end model.Time, procs int) error
	Unreserve(start, end model.Time, procs int) error

	Segments() []Segment
	Check() error
	String() string

	// Flat returns an independent flat-backend copy of the step
	// function, for callers that need the concrete array
	// representation (rendering, simulation injection).
	Flat() *Profile
	// CloneIntervals returns an independent copy on the same backend.
	CloneIntervals() Intervals
}

// Compile-time checks that both backends satisfy the interface.
var (
	_ Intervals = (*Profile)(nil)
	_ Intervals = (*TreeProfile)(nil)
	_ Intervals = (*PersistentProfile)(nil)
)

// Flat implements Intervals for the flat backend: it is Clone.
func (p *Profile) Flat() *Profile { return p.Clone() }

// CloneIntervals implements Intervals for the flat backend.
func (p *Profile) CloneIntervals() Intervals { return p.Clone() }

// AutoTreeThreshold is the segment count at or beyond which Auto and
// NewAuto pick the tree backend. Below it the flat linear scans win on
// constant factors; the crossover sits well under this on the
// EarliestFit scaling benchmarks, so the threshold is conservative.
const AutoTreeThreshold = 128

// Auto returns the backend suited to p's current size: p itself for
// small profiles, a TreeProfile built from p (an independent copy) for
// horizons of AutoTreeThreshold segments or more.
func Auto(p *Profile) Intervals {
	if p.NumSegments() >= AutoTreeThreshold {
		return NewTreeFromProfile(p)
	}
	return p
}

// NewAuto returns an empty profile on the backend suited to the
// expected number of segments: flat below AutoTreeThreshold, tree at
// or above it. Callers that know how many reservations they are about
// to commit (the CPA list scheduler books one per task) pass that as
// the hint.
func NewAuto(capacity int, origin model.Time, hint int) Intervals {
	if hint >= AutoTreeThreshold {
		return NewTree(capacity, origin)
	}
	return New(capacity, origin)
}

// CopyIntervals copies src into a working copy on src's backend,
// reusing scratch's storage when scratch already holds that backend.
// It is CloneInto generalized over Intervals: the schedulers' per-call
// working profile stays allocation-free across calls even when the
// serving layer switches backends per request.
func CopyIntervals(src Intervals, scratch Intervals) Intervals {
	switch s := src.(type) {
	case *Profile:
		dst, ok := scratch.(*Profile)
		if !ok || dst == nil {
			dst = &Profile{}
		}
		s.CloneInto(dst)
		return dst
	case *TreeProfile:
		dst, ok := scratch.(*TreeProfile)
		if !ok || dst == nil {
			dst = &TreeProfile{}
		}
		s.CloneInto(dst)
		return dst
	case *PersistentProfile:
		// Persistent handles copy in O(1) by sharing the immutable
		// root; scratch reuse buys nothing.
		return s.Clone()
	default:
		return src.CloneIntervals()
	}
}
