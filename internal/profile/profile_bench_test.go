package profile

import (
	"fmt"
	"math/rand"
	"testing"

	"resched/internal/model"
)

// loadedProfile builds a profile carrying n random reservations.
func loadedProfile(n int) *Profile {
	rng := rand.New(rand.NewSource(int64(n)))
	p := New(1024, 0)
	for k := 0; k < n; k++ {
		start := model.Time(rng.Int63n(int64(30 * model.Day)))
		dur := model.Duration(rng.Int63n(int64(6*model.Hour)) + 60)
		procs := rng.Intn(512) + 1
		if p.MinFree(start, start+dur) >= procs {
			if err := p.Reserve(start, start+dur, procs); err != nil {
				panic(err)
			}
		}
	}
	return p
}

// The profile queries are the inner loop of every algorithm; these
// benches track their scaling with the reservation count R (the R
// factor of the paper's Table 8 complexities).
func BenchmarkProfileScaling(b *testing.B) {
	for _, n := range []int{32, 256, 2048} {
		p := loadedProfile(n)
		b.Run(fmt.Sprintf("EarliestFit/R=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.EarliestFit(256, model.Hour, 0)
			}
		})
		b.Run(fmt.Sprintf("LatestFit/R=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.LatestFit(256, model.Hour, 0, 30*model.Day)
			}
		})
		b.Run(fmt.Sprintf("CloneReserve/R=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := p.Clone()
				st := c.EarliestFit(64, model.Hour, 0)
				if err := c.Reserve(st, st+model.Hour, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFitsBatch contrasts the solo probe loop with the one-sweep
// batch queries on the request shape the scheduling inner loop
// produces: one probe per candidate allocation, growing processors and
// shrinking (Amdahl-like) durations, all from one ready time.
func BenchmarkFitsBatch(b *testing.B) {
	p := loadedProfile(512)
	reqs := make([]FitRequest, 0, 48)
	for m := 1; m <= 48; m++ {
		reqs = append(reqs, FitRequest{Procs: 8 * m, Dur: model.Duration(6*model.Hour) / model.Duration(m)})
	}
	b.Run("EarliestFit/solo", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				p.EarliestFit(r.Procs, r.Dur, model.Day)
			}
		}
	})
	b.Run("EarliestFits/batch", func(b *testing.B) {
		b.ReportAllocs()
		var out []model.Time
		for i := 0; i < b.N; i++ {
			out = p.EarliestFits(reqs, model.Day, out)
		}
	})
	// Deadline probes live in the congested region of the profile
	// (task deadlines sit between the reservations), where each solo
	// walk fails through many short runs before resolving.
	b.Run("LatestFit/solo", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range reqs {
				p.LatestFit(r.Procs, r.Dur, model.Day, 12*model.Day)
			}
		}
	})
	b.Run("LatestFits/batch", func(b *testing.B) {
		b.ReportAllocs()
		var out []model.Time
		var ok []bool
		for i := 0; i < b.N; i++ {
			out, ok = p.LatestFits(reqs, model.Day, 12*model.Day, out, ok)
		}
	})
}
