package lifecycle

// This file is the engine's event loop core: the activation and
// completion event heap, AdvanceTo (fire due events, then run a
// scheduling pass), and the placement primitives — start-now,
// backfill-with-guardrail, and the starvation reservation. All of it
// runs on the single driving goroutine; e.mu is taken only for brief
// state updates, never across a book operation (the lockhold
// discipline).

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"resched/internal/model"
	"resched/internal/resbook"
)

// eventKind is what happens when an event fires.
type eventKind int

const (
	// evActivate: a starvation reservation reaches its start; the
	// book reservation is activated and the job starts running.
	evActivate eventKind = iota
	// evComplete: a running job's window ends; the reservation is
	// released and the job is done.
	evComplete
)

// event is one scheduled state transition.
type event struct {
	at    model.Time
	kind  eventKind
	jobID string
	resID string
}

// eventHeap is a min-heap on event time, ties broken by job ID so
// replays are deterministic.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].jobID < h[j].jobID
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() (event, bool) {
	if len(h) == 0 {
		return event{}, false
	}
	return h[0], true
}

// NextEvent returns the time of the engine's next scheduled event
// (activation or completion), if any. Replay uses it to step
// simulated time exactly.
func (e *Engine) NextEvent() (model.Time, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	ev, ok := e.events.peek()
	return ev.at, ok
}

// errNoFitNow is the internal signal that a start-now transaction
// found no immediate fit; it aborts the Transact without booking.
var errNoFitNow = errors.New("lifecycle: no immediate fit")

// AdvanceTo moves the engine clock to now, firing every due
// activation and completion in time order, and then runs one
// scheduling pass over the queue. The clock never moves backward: a
// now before the current clock is clamped. AdvanceTo must only be
// called from the engine's driving goroutine.
func (e *Engine) AdvanceTo(ctx context.Context, now model.Time) error {
	e.stats.ticks.Add(1)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.mu.Lock()
		if now < e.now {
			now = e.now
		}
		ev, ok := e.events.peek()
		if !ok || ev.at > now {
			if now > e.now {
				e.now = now
			}
			e.mu.Unlock()
			break
		}
		heap.Pop(&e.events)
		if ev.at > e.now {
			e.now = ev.at
		}
		e.mu.Unlock()
		if err := e.fire(ev); err != nil {
			return err
		}
	}
	return e.schedulePass(ctx, now)
}

// fire applies one due event against the book and the job table.
func (e *Engine) fire(ev event) error {
	switch ev.kind {
	case evActivate:
		if err := e.book.Activate(ev.resID); err != nil {
			return fmt.Errorf("lifecycle: activating %s for job %s: %w", ev.resID, ev.jobID, err)
		}
		e.stats.activations.Add(1)
		e.mu.Lock()
		j, ok := e.jobs[ev.jobID]
		if ok {
			j.State = Running
			heap.Push(&e.events, event{at: j.End, kind: evComplete, jobID: j.ID, resID: j.ReservationID})
		}
		e.mu.Unlock()
		e.log.Debug("activated", "job", ev.jobID, "reservation", ev.resID, "at", ev.at)
	case evComplete:
		if err := e.book.Release(ev.resID); err != nil {
			return fmt.Errorf("lifecycle: releasing %s for job %s: %w", ev.resID, ev.jobID, err)
		}
		e.stats.completions.Add(1)
		e.mu.Lock()
		if j, ok := e.jobs[ev.jobID]; ok {
			j.State = Done
		}
		e.mu.Unlock()
		e.log.Debug("completed", "job", ev.jobID, "at", ev.at)
	}
	return nil
}

// schedulePass serves the queue FCFS at time now. The first job that
// cannot start immediately blocks the queue; jobs behind it may only
// backfill, and only when they finish at or before the earliest
// pending reservation's activation — the hard guardrail. Jobs that
// fail to place accumulate attempts and queue age; crossing either
// starvation threshold books an advance reservation at the job's
// earliest feasible start.
func (e *Engine) schedulePass(ctx context.Context, now model.Time) error {
	e.mu.Lock()
	cand := make([]Job, 0, len(e.queue))
	for _, id := range e.queue {
		cand = append(cand, *e.jobs[id])
	}
	e.mu.Unlock()
	if len(cand) == 0 {
		return nil
	}

	guard, hasGuard := e.book.EarliestPendingActivation(now)
	blocked := false
	for _, job := range cand {
		placed := false
		backfilled := false
		if !blocked {
			res, ok, err := e.tryStartNow(ctx, job, now)
			if err != nil {
				return err
			}
			if ok {
				e.recordPlacement(job.ID, res, false, model.Infinity)
				continue
			}
			blocked = true
		} else if e.cfg.Backfill && (!hasGuard || now+job.Dur <= guard) {
			res, ok, err := e.tryStartNow(ctx, job, now)
			if err != nil {
				return err
			}
			if ok {
				bound := model.Infinity
				if hasGuard {
					bound = guard
				}
				e.recordPlacement(job.ID, res, true, bound)
				placed, backfilled = true, true
			}
		}
		if placed || backfilled {
			continue
		}

		if !e.bumpAttempts(job.ID, now) {
			continue
		}
		// Starvation: book the advance reservation at the earliest
		// feasible start, computed by replaying the fit against a
		// fresh snapshot.
		res, ok, err := e.reserveEarliest(ctx, job, now)
		if err != nil {
			return err
		}
		if !ok {
			continue // contended; retry next pass
		}
		e.recordReservation(job.ID, res)
		if !hasGuard || res.Start < guard {
			guard, hasGuard = res.Start, true
		}
	}
	return nil
}

// tryStartNow books and activates [now, now+dur) for the job if the
// profile fits it immediately. It reports ok=false both when there is
// no immediate fit and when the optimistic loop exhausted its retries
// (the next pass re-evaluates); any other failure is an engine error.
func (e *Engine) tryStartNow(ctx context.Context, job Job, now model.Time) (resbook.Reservation, bool, error) {
	booked, _, err := e.book.Transact(ctx, e.cfg.MaxRetries, func(snap resbook.Snapshot) ([]resbook.Request, error) {
		// snap.Avail already is the right query backend: a zero-copy
		// persistent handle on the default book, a flat profile on the
		// oracle backend or below the auto threshold.
		fit, err := snap.Avail.EarliestFitChecked(job.Procs, job.Dur, now)
		if err != nil {
			return nil, err
		}
		if fit != now {
			return nil, errNoFitNow
		}
		return []resbook.Request{{Start: now, End: now + job.Dur, Procs: job.Procs}}, nil
	})
	if err != nil {
		if errors.Is(err, errNoFitNow) || errors.Is(err, resbook.ErrStale) {
			return resbook.Reservation{}, false, nil
		}
		return resbook.Reservation{}, false, fmt.Errorf("lifecycle: placing job %s: %w", job.ID, err)
	}
	res := booked[0]
	if err := e.book.Activate(res.ID); err != nil {
		return resbook.Reservation{}, false, fmt.Errorf("lifecycle: activating %s: %w", res.ID, err)
	}
	e.stats.activations.Add(1)
	return res, true, nil
}

// reserveEarliest books the starvation reservation: the job's window
// at its earliest feasible start strictly derived from the snapshot
// the commit validates against. ok=false means the optimistic loop
// lost every retry to concurrent writers.
func (e *Engine) reserveEarliest(ctx context.Context, job Job, now model.Time) (resbook.Reservation, bool, error) {
	booked, _, err := e.book.Transact(ctx, e.cfg.MaxRetries, func(snap resbook.Snapshot) ([]resbook.Request, error) {
		fit, err := snap.Avail.EarliestFitChecked(job.Procs, job.Dur, now)
		if err != nil {
			return nil, err
		}
		return []resbook.Request{{Start: fit, End: fit + job.Dur, Procs: job.Procs}}, nil
	})
	if err != nil {
		if errors.Is(err, resbook.ErrStale) {
			return resbook.Reservation{}, false, nil
		}
		return resbook.Reservation{}, false, fmt.Errorf("lifecycle: reserving for job %s: %w", job.ID, err)
	}
	return booked[0], true, nil
}

// recordPlacement marks a job running on its just-activated
// reservation and schedules its completion.
func (e *Engine) recordPlacement(id string, res resbook.Reservation, backfilled bool, guard model.Time) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if ok {
		j.State = Running
		j.Start = res.Start
		j.End = res.End
		j.ReservationID = res.ID
		j.Backfilled = backfilled
		j.GuardBound = guard
		e.removeQueuedLocked(id)
		heap.Push(&e.events, event{at: res.End, kind: evComplete, jobID: id, resID: res.ID})
	}
	e.mu.Unlock()
	e.stats.placements.Add(1)
	if backfilled {
		e.stats.backfills.Add(1)
	}
	e.log.Debug("placed", "job", id, "reservation", res.ID, "start", res.Start, "end", res.End, "backfilled", backfilled)
}

// recordReservation marks a job Reserved on its pending starvation
// reservation and schedules the activation.
func (e *Engine) recordReservation(id string, res resbook.Reservation) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	if ok {
		j.State = Reserved
		j.Start = res.Start
		j.End = res.End
		j.ReservationID = res.ID
		j.Starved = true
		e.removeQueuedLocked(id)
		heap.Push(&e.events, event{at: res.Start, kind: evActivate, jobID: id, resID: res.ID})
	}
	e.mu.Unlock()
	e.stats.placements.Add(1)
	e.stats.starved.Add(1)
	e.log.Debug("starvation reservation", "job", id, "reservation", res.ID, "start", res.Start)
}

// bumpAttempts increments a queued job's failed-placement count and
// reports whether it crossed a starvation threshold this pass.
func (e *Engine) bumpAttempts(id string, now model.Time) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok || j.State != Queued {
		return false
	}
	j.Attempts++
	if e.cfg.StarveAttempts > 0 && j.Attempts >= e.cfg.StarveAttempts {
		return true
	}
	if e.cfg.StarveAge > 0 && now-j.Submitted >= e.cfg.StarveAge {
		return true
	}
	return false
}

// removeQueuedLocked deletes one ID from the FCFS queue; e.mu must be
// held.
//
//reschedvet:holds mu
func (e *Engine) removeQueuedLocked(id string) {
	for i, q := range e.queue {
		if q == id {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			return
		}
	}
}
