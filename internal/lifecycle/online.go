package lifecycle

// Wall-clock mode: Start launches the engine's single driving
// goroutine, which advances the clock every Tick (and immediately on
// Submit via the wake channel) until the context is cancelled or
// Close is called. The goroutine is context-bounded and joined by
// Close through the engine's WaitGroup — the shape reschedvet's
// wgleak analyzer verifies for this package.

import (
	"context"
	"errors"
	"time"

	"resched/internal/model"
)

// Start launches the wall-clock loop. The engine clock maps wall time
// onto book time: the instant Start is called corresponds to the
// book's origin, and one elapsed wall second advances the clock one
// model second. Start may be called once; the loop stops when ctx is
// cancelled or Close is called.
func (e *Engine) Start(ctx context.Context) error {
	if e.closed.Load() {
		return ErrStopped
	}
	if !e.started.CompareAndSwap(false, true) {
		return errors.New("lifecycle: engine already started")
	}
	ctx, cancel := context.WithCancel(ctx)
	e.mu.Lock()
	if e.closed.Load() {
		// Close won the race between our closed check above and here:
		// it has already read a nil e.cancel and returned, so nobody
		// would ever stop a loop we launch. Don't launch one.
		e.mu.Unlock()
		cancel()
		return ErrStopped
	}
	e.cancel = cancel
	e.epoch = time.Now()
	// The Add must stay inside the critical section: a concurrent
	// Close that loses the race only reaches wg.Wait after this mu
	// section, so the counter is already positive when it waits.
	e.wg.Add(1)
	e.mu.Unlock()
	go e.run(ctx)
	e.log.Info("lifecycle engine started", "origin", e.book.Origin(), "tick", e.cfg.Tick, "backfill", e.cfg.Backfill)
	return nil
}

// run is the engine's driving goroutine: tick, advance, repeat.
func (e *Engine) run(ctx context.Context) {
	defer e.wg.Done()
	ticker := time.NewTicker(e.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		case <-e.wake:
		}
		if err := e.AdvanceTo(ctx, e.wallNow()); err != nil {
			if ctx.Err() != nil {
				return // shutdown race, not a scheduling failure
			}
			e.log.Warn("lifecycle advance failed", "err", err)
		}
	}
}

// wallNow maps the current wall clock onto the book timeline.
func (e *Engine) wallNow() model.Time {
	e.mu.Lock()
	epoch := e.epoch
	e.mu.Unlock()
	return e.book.Origin() + model.Time(time.Since(epoch)/time.Second)
}

// Close stops the wall-clock loop and waits for the driving goroutine
// to exit. Safe to call multiple times; safe to call on an engine
// that was never started. After Close, Submit returns ErrStopped.
func (e *Engine) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	// Copy the cancel func out under mu, then cancel and join outside
	// it: wg.Wait blocks until the driving goroutine exits, and that
	// goroutine takes mu on every advance.
	e.mu.Lock()
	cancel := e.cancel
	e.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	e.wg.Wait()
	e.log.Info("lifecycle engine stopped")
}
