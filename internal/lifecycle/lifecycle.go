// Package lifecycle is the online tier above the request/response
// scheduling path: a long-lived engine that drives the live
// reservation book through time — simulated (Replay) or wall-clock
// (Start) — so the book's Pending → Active → Released lifecycle
// actually runs instead of merely existing.
//
// The model. Jobs are rigid batch jobs (procs processors for dur
// seconds), the shape of the workload traces in internal/workload.
// A submitted job is Queued; the engine serves the queue FCFS at
// every advance of time:
//
//   - A job at the front of the queue starts immediately when the
//     profile has capacity now: the engine books a reservation
//     [now, now+dur), activates it, and the job is Running. At
//     now+dur the reservation is released and the job is Done.
//
//   - A job blocked behind an unplaceable predecessor may still start
//     now — backfill — under one hard guardrail: it must finish at or
//     before the earliest Pending reservation's activation time, so
//     opportunistic work booked into a reserved-but-idle window has
//     provably vacated when the reservation activates. (Capacity
//     safety is independently guaranteed by the book: every fit is
//     computed against a profile that already holds all pending
//     windows.)
//
//   - A job that fails to place for StarveAttempts passes, or has
//     waited StarveAge seconds, receives a starvation-triggered
//     advance reservation at its earliest feasible start, computed by
//     replaying the fit against the snapshot profile on the
//     tree-backed backend (profile.Auto). The reservation is booked
//     Pending; the engine activates it at its start time, which is
//     when the job transitions Reserved → Running.
//
// Every placement goes through the book's optimistic Transact loop,
// so the engine coexists with concurrent API writers (direct
// reservations, batch schedule commits): a stale snapshot is
// recomputed, never double-booked.
//
// Concurrency model. All scheduling decisions run on one goroutine —
// the wall-clock loop started by Start, or the caller of
// Replay/AdvanceTo. The engine's mutex only guards the job table and
// queue for concurrent readers (Submit, Job, Jobs, Forecast arrive on
// HTTP handler goroutines); it is never held across a book operation
// or any other blocking call, the discipline reschedvet's lockhold
// analyzer enforces for this package.
package lifecycle

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"resched/internal/model"
	"resched/internal/profile"
	"resched/internal/resbook"
)

// State is a job's position in the engine lifecycle.
type State int

const (
	// Queued: submitted, not yet placed.
	Queued State = iota
	// Reserved: holds a starvation-triggered advance reservation,
	// waiting for its activation time.
	Reserved
	// Running: reservation active, executing.
	Running
	// Done: completed, reservation released. Terminal.
	Done
)

func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Reserved:
		return "reserved"
	case Running:
		return "running"
	case Done:
		return "done"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Job is one job's view, a copy safe to retain. GuardBound is only
// meaningful for backfilled jobs: the earliest pending activation at
// placement time, which the placement's end may not cross (it is
// model.Infinity when no reservation was pending).
type Job struct {
	ID        string
	Procs     int
	Dur       model.Duration
	Submitted model.Time
	State     State
	Attempts  int

	// Placement, once the job left the queue.
	Start         model.Time
	End           model.Time
	ReservationID string
	Backfilled    bool
	Starved       bool
	GuardBound    model.Time
}

// Wait returns the job's queueing delay; zero until placed.
func (j Job) Wait() model.Duration {
	if j.State == Queued {
		return 0
	}
	return j.Start - j.Submitted
}

// Errors returned by the engine.
var (
	ErrNoJob   = errors.New("lifecycle: no such job")
	ErrStopped = errors.New("lifecycle: engine stopped")
)

// Config parameterizes an Engine. Zero values get defaults.
type Config struct {
	// Book is the live reservation book the engine drives. Required.
	Book *resbook.Book
	// Backfill enables out-of-order placement behind a blocked job
	// (guarded by the finish-before-activation rule). Disabled
	// engines are strict FCFS. Default off; cmd/reschedd and the
	// replay driver turn it on explicitly.
	Backfill bool
	// StarveAttempts is the number of failed placement passes after
	// which a queued job gets a starvation reservation (default 8;
	// negative disables the attempt trigger).
	StarveAttempts int
	// StarveAge is the queue age after which a job gets a starvation
	// reservation regardless of attempts (default 15 minutes;
	// negative disables the age trigger).
	StarveAge model.Duration
	// MaxRetries bounds the optimistic commit loop per placement
	// (default 8).
	MaxRetries int
	// Tick is the wall-clock loop period (default 1s). Replay ignores
	// it.
	Tick time.Duration
	// Logger receives engine events. Nil discards.
	Logger *slog.Logger
}

// Stats are the engine's monotonic counters, read with StatsSnapshot.
type stats struct {
	arrivals    atomic.Uint64
	placements  atomic.Uint64
	backfills   atomic.Uint64
	starved     atomic.Uint64
	activations atomic.Uint64
	completions atomic.Uint64
	ticks       atomic.Uint64
	forecasts   atomic.Uint64
	forecastNs  atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of the engine counters plus
// the current queue depth and engine clock.
type StatsSnapshot struct {
	Now                    model.Time
	QueueDepth             int
	Arrivals               uint64
	Placements             uint64
	Backfills              uint64
	StarvationReservations uint64
	Activations            uint64
	Completions            uint64
	Ticks                  uint64
	Forecasts              uint64
	// ForecastAvgMicros is the mean forecast computation latency.
	ForecastAvgMicros float64
}

// Engine drives a reservation book through online time. Construct
// with New; drive with Start (wall clock), Replay (a trace), or
// AdvanceTo (tests and embedders).
type Engine struct {
	cfg  Config
	book *resbook.Book
	log  *slog.Logger

	mu sync.Mutex
	// Engine state under mu: the clock, the job table, the FCFS queue
	// (Queued job IDs in arrival order), the event heap, and the job ID
	// counter.
	now    model.Time      //reschedvet:guardedby mu
	jobs   map[string]*Job //reschedvet:guardedby mu
	queue  []string        //reschedvet:guardedby mu
	events eventHeap       //reschedvet:guardedby mu
	nextID uint64          //reschedvet:guardedby mu

	stats stats

	// Wall-clock mode plumbing (Start/Close). cancel and the wall-time
	// epoch anchoring the book origin are written by Start and read by
	// Close and wallNow, which may run on other goroutines, so they
	// ride under mu too; started/closed stay atomic because Submit
	// checks them on the handler fast path without the lock.
	wake    chan struct{}
	cancel  context.CancelFunc //reschedvet:guardedby mu
	wg      sync.WaitGroup
	started atomic.Bool
	closed  atomic.Bool
	epoch   time.Time //reschedvet:guardedby mu
}

// New returns an engine over the given book. The engine clock starts
// at the book's origin.
func New(cfg Config) (*Engine, error) {
	if cfg.Book == nil {
		return nil, errors.New("lifecycle: nil reservation book")
	}
	if cfg.StarveAttempts == 0 {
		cfg.StarveAttempts = 8
	}
	if cfg.StarveAge == 0 {
		cfg.StarveAge = 15 * model.Minute
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	if cfg.Tick <= 0 {
		cfg.Tick = time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(discardHandler{})
	}
	return &Engine{
		cfg:  cfg,
		book: cfg.Book,
		log:  cfg.Logger,
		now:  cfg.Book.Origin(),
		jobs: map[string]*Job{},
		wake: make(chan struct{}, 1),
	}, nil
}

// discardHandler is a slog.Handler that drops everything; it avoids
// importing io just for io.Discard in the default path.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Book returns the reservation book the engine drives.
func (e *Engine) Book() *resbook.Book { return e.book }

// Now returns the engine clock.
func (e *Engine) Now() model.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.now
}

// Submit enqueues one job. In wall-clock mode the loop is woken; in
// replay or manual mode the job is considered at the next advance.
func (e *Engine) Submit(procs int, dur model.Duration) (Job, error) {
	if procs < 1 || procs > e.book.Capacity() {
		return Job{}, fmt.Errorf("lifecycle: job needs %d processors on a %d-processor cluster", procs, e.book.Capacity())
	}
	if dur < 1 {
		return Job{}, fmt.Errorf("lifecycle: job duration %d < 1s", dur)
	}
	if e.closed.Load() {
		return Job{}, ErrStopped
	}
	e.mu.Lock()
	e.nextID++
	j := &Job{
		ID:        fmt.Sprintf("j%06d", e.nextID),
		Procs:     procs,
		Dur:       dur,
		Submitted: e.now,
		State:     Queued,
	}
	e.jobs[j.ID] = j
	e.queue = append(e.queue, j.ID)
	out := *j
	e.mu.Unlock()
	e.stats.arrivals.Add(1)
	if e.started.Load() {
		select {
		case e.wake <- struct{}{}:
		default:
		}
	}
	return out, nil
}

// Job returns a copy of the job with the given ID.
func (e *Engine) Job(id string) (Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// Jobs returns copies of all jobs in submission order.
func (e *Engine) Jobs() []Job {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, *j)
	}
	sortJobsByID(out)
	return out
}

// sortJobsByID orders job copies by their zero-padded IDs, which is
// submission order.
func sortJobsByID(js []Job) {
	for i := 1; i < len(js); i++ {
		for k := i; k > 0 && js[k].ID < js[k-1].ID; k-- {
			js[k], js[k-1] = js[k-1], js[k]
		}
	}
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() StatsSnapshot {
	e.mu.Lock()
	now := e.now
	depth := len(e.queue)
	e.mu.Unlock()
	s := StatsSnapshot{
		Now:                    now,
		QueueDepth:             depth,
		Arrivals:               e.stats.arrivals.Load(),
		Placements:             e.stats.placements.Load(),
		Backfills:              e.stats.backfills.Load(),
		StarvationReservations: e.stats.starved.Load(),
		Activations:            e.stats.activations.Load(),
		Completions:            e.stats.completions.Load(),
		Ticks:                  e.stats.ticks.Load(),
		Forecasts:              e.stats.forecasts.Load(),
	}
	if s.Forecasts > 0 {
		s.ForecastAvgMicros = float64(e.stats.forecastNs.Load()) / float64(s.Forecasts) / 1e3
	}
	return s
}

// Forecast is the per-job feasibility report served by
// GET /v1/jobs/{id}/forecast: when the job could start at the
// earliest, how many processors it is short of right now, and what
// would unblock it.
type Forecast struct {
	JobID string
	State State
	Now   model.Time
	// EarliestStart is the earliest feasible start against the
	// current book (for placed jobs: the actual start).
	EarliestStart model.Time
	// Wait is EarliestStart - Now (zero for placed jobs).
	Wait model.Duration
	// Deficit is how many processors the job lacks to run over
	// [Now, Now+Dur) immediately; zero means it fits now.
	Deficit int
	// FreeNow is the number of processors free at Now.
	FreeNow int
	// Remedies are human-readable suggestions ordered by relevance.
	Remedies []string
	// Version is the book version the forecast was computed at.
	Version uint64
}

// ForecastJob computes the feasibility forecast for one job by
// replaying its fit against a snapshot of the book. The snapshot is
// probed through the auto-selected backend, so large horizons pay
// O(log n) per probe.
func (e *Engine) ForecastJob(id string) (Forecast, error) {
	start := time.Now()
	e.mu.Lock()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return Forecast{}, fmt.Errorf("%w: %s", ErrNoJob, id)
	}
	job := *j
	now := e.now
	e.mu.Unlock()

	f := Forecast{JobID: job.ID, State: job.State, Now: now}
	if job.State != Queued {
		// Placed (or finished): the forecast is the booked window.
		f.EarliestStart = job.Start
		if job.Start > now {
			f.Wait = job.Start - now
		}
		f.Version = e.book.Version()
		f.Remedies = []string{fmt.Sprintf("job is %s; reservation %s holds [%d,%d)", job.State, job.ReservationID, job.Start, job.End)}
		e.stats.forecasts.Add(1)
		e.stats.forecastNs.Add(uint64(time.Since(start)))
		return f, nil
	}

	// The snapshot pins an epoch root: on the persistent backend every
	// probe below replays against the same frozen tree with no reclone,
	// no matter how many commits land while the forecast runs.
	snap := e.book.Snapshot()
	f.Version = snap.Version
	avail := snap.Avail
	fit, err := avail.EarliestFitChecked(job.Procs, job.Dur, now)
	if err != nil {
		return Forecast{}, fmt.Errorf("lifecycle: forecast %s: %w", id, err)
	}
	f.EarliestStart = fit
	f.Wait = fit - now
	free, err := avail.MinFreeChecked(now, now+job.Dur)
	if err != nil {
		return Forecast{}, fmt.Errorf("lifecycle: forecast %s: %w", id, err)
	}
	f.FreeNow = freeAtChecked(avail, now)
	if free < job.Procs {
		f.Deficit = job.Procs - free
	}
	f.Remedies = remedies(job, f, free)

	e.stats.forecasts.Add(1)
	e.stats.forecastNs.Add(uint64(time.Since(start)))
	return f, nil
}

// freeAtChecked reads the free processors at t via the checked
// single-point window [t, t+1).
func freeAtChecked(avail profile.Intervals, t model.Time) int {
	free, err := avail.MinFreeChecked(t, t+1)
	if err != nil {
		return 0
	}
	return free
}

// remedies renders the forecast's actionable suggestions.
func remedies(job Job, f Forecast, freeOverWindow int) []string {
	var out []string
	if f.Deficit == 0 {
		out = append(out, "fits now; will start at the next scheduling pass")
		return out
	}
	out = append(out, fmt.Sprintf("wait %ds for the earliest feasible start at %d", f.Wait, f.EarliestStart))
	if freeOverWindow >= 1 {
		out = append(out, fmt.Sprintf("shrink to %d processors to start immediately", freeOverWindow))
	}
	out = append(out, fmt.Sprintf("deficit of %d processors over [%d,%d)", f.Deficit, f.Now, f.Now+job.Dur))
	return out
}
