package lifecycle

// Replay mode: drive the engine through a recorded arrival trace in
// simulated time, stepping the clock exactly to each arrival and each
// engine event, and report the online metrics the paper's evaluation
// family uses — makespan, utilization, wait, and bounded slowdown.

import (
	"context"
	"fmt"
	"sort"

	"resched/internal/model"
)

// Arrival is one trace entry: a rigid job submitted at At.
type Arrival struct {
	At    model.Time
	Procs int
	Dur   model.Duration
}

// bsldTau is the bounded-slowdown runtime floor (Feitelson's
// convention, 10 seconds): BSLD = max(1, (wait+run)/max(run, tau)),
// which keeps very short jobs from dominating the mean.
const bsldTau = 10

// Report aggregates one replay's outcome.
type Report struct {
	Jobs      int     `json:"jobs"`
	Completed int     `json:"completed"`
	Capacity  int     `json:"capacity"`
	Backfills uint64  `json:"backfills"`
	Starved   uint64  `json:"starvation_reservations"`
	Makespan  int64   `json:"makespan_s"`
	Util      float64 `json:"utilization"`
	MeanWait  float64 `json:"mean_wait_s"`
	MaxWait   int64   `json:"max_wait_s"`
	MeanBSLD  float64 `json:"mean_bounded_slowdown"`
	MaxBSLD   float64 `json:"max_bounded_slowdown"`
}

func (r Report) String() string {
	return fmt.Sprintf("jobs=%d completed=%d makespan=%ds util=%.3f mean_wait=%.1fs max_wait=%ds mean_bsld=%.2f max_bsld=%.2f backfills=%d starvation_reservations=%d",
		r.Jobs, r.Completed, r.Makespan, r.Util, r.MeanWait, r.MaxWait, r.MeanBSLD, r.MaxBSLD, r.Backfills, r.Starved)
}

// drainGrace bounds how many same-time passes the drain loop tolerates
// without any state change before giving up. Starvation triggers fire
// on attempts (each pass) or age (each time jump), so a healthy engine
// converges well inside this.
const drainGrace = 1024

// Replay runs the engine over the trace in simulated time until every
// job completes, then reports. The engine must be dedicated to the
// replay (not started in wall-clock mode).
func (e *Engine) Replay(ctx context.Context, trace []Arrival) (Report, error) {
	if e.started.Load() {
		return Report{}, fmt.Errorf("lifecycle: replay on a started engine")
	}
	arr := append([]Arrival(nil), trace...)
	sort.SliceStable(arr, func(i, j int) bool { return arr[i].At < arr[j].At })

	i := 0
	for i < len(arr) {
		// Step to the next timestamp with something to do: the next
		// arrival, or an engine event before it.
		t := arr[i].At
		if et, ok := e.NextEvent(); ok && et < t {
			t = et
		}
		if now := e.Now(); t < now {
			t = now
		}
		if err := e.AdvanceTo(ctx, t); err != nil {
			return Report{}, err
		}
		submitted := false
		for i < len(arr) && arr[i].At <= t {
			if _, err := e.Submit(arr[i].Procs, arr[i].Dur); err != nil {
				return Report{}, fmt.Errorf("lifecycle: replay arrival %d: %w", i, err)
			}
			submitted = true
			i++
		}
		if submitted {
			// A second pass at the same instant serves the new arrivals.
			if err := e.AdvanceTo(ctx, t); err != nil {
				return Report{}, err
			}
		}
	}

	// Drain: fire remaining events; queued leftovers accumulate
	// attempts (and age, when the clock jumps to the next event) until
	// the starvation trigger books them a reservation.
	idle := 0
	for {
		done, total := e.progress()
		if done == total {
			break
		}
		t := e.Now()
		if et, ok := e.NextEvent(); ok {
			t = et
		}
		if err := e.AdvanceTo(ctx, t); err != nil {
			return Report{}, err
		}
		if d2, _ := e.progress(); d2 > done {
			idle = 0
			continue
		}
		idle++
		if idle > drainGrace {
			return Report{}, fmt.Errorf("lifecycle: replay stalled with %d/%d jobs done at t=%d", done, total, e.Now())
		}
		if _, ok := e.NextEvent(); !ok {
			// Nothing scheduled: age the queue past the starvation
			// threshold so the next pass books reservations.
			age := e.cfg.StarveAge
			if age <= 0 {
				age = 1
			}
			if err := e.AdvanceTo(ctx, e.Now()+age); err != nil {
				return Report{}, err
			}
		}
	}
	return e.report(), nil
}

// progress counts terminal jobs.
func (e *Engine) progress() (done, total int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		if j.State == Done {
			done++
		}
	}
	return done, len(e.jobs)
}

// report computes the replay metrics from the terminal job table.
func (e *Engine) report() Report {
	jobs := e.Jobs()
	r := Report{
		Jobs:      len(jobs),
		Capacity:  e.book.Capacity(),
		Backfills: e.stats.backfills.Load(),
		Starved:   e.stats.starved.Load(),
	}
	if len(jobs) == 0 {
		return r
	}
	first := model.Infinity
	last := model.Time(0)
	var area, waitSum, bsldSum float64
	for _, j := range jobs {
		if j.State != Done {
			continue
		}
		r.Completed++
		if j.Submitted < first {
			first = j.Submitted
		}
		if j.End > last {
			last = j.End
		}
		area += float64(j.Procs) * float64(j.End-j.Start)
		wait := float64(j.Wait())
		waitSum += wait
		if w := int64(j.Wait()); w > r.MaxWait {
			r.MaxWait = w
		}
		run := j.End - j.Start
		den := run
		if den < bsldTau {
			den = bsldTau
		}
		bsld := (wait + float64(run)) / float64(den)
		if bsld < 1 {
			bsld = 1
		}
		bsldSum += bsld
		if bsld > r.MaxBSLD {
			r.MaxBSLD = bsld
		}
	}
	if r.Completed == 0 {
		return r
	}
	r.Makespan = int64(last - first)
	if r.Makespan > 0 {
		r.Util = area / (float64(r.Capacity) * float64(r.Makespan))
	}
	r.MeanWait = waitSum / float64(r.Completed)
	r.MeanBSLD = bsldSum / float64(r.Completed)
	return r
}
