package lifecycle

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"resched/internal/model"
	"resched/internal/resbook"
)

// TestStartCloseRace drives Start and Close concurrently. Before the
// engine's cancel func and epoch moved under e.mu, Start wrote both
// unsynchronized after its started CAS while Close read e.cancel after
// its closed CAS — two independent atomics that order nothing between
// the goroutines, a data race the race detector catches here. The
// invariant beyond race-freedom: whatever the interleaving, no driving
// goroutine survives the final Close (either Start observed the close
// and refused to launch, or Close cancelled and joined it).
func TestStartCloseRace(t *testing.T) {
	for i := 0; i < 100; i++ {
		book, err := resbook.NewSharded(8, 0, 2, model.Hour)
		if err != nil {
			t.Fatalf("NewSharded: %v", err)
		}
		e, err := New(Config{Book: book, Tick: time.Millisecond})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		var startErr error
		go func() {
			defer wg.Done()
			startErr = e.Start(context.Background())
		}()
		go func() {
			defer wg.Done()
			e.Close()
		}()
		wg.Wait()
		// Idempotent, and joins the loop if Start won the race.
		e.Close()
		if startErr != nil && !errors.Is(startErr, ErrStopped) {
			t.Fatalf("Start: %v", startErr)
		}
		// After Close, the engine must refuse new work regardless of
		// who won.
		if _, err := e.Submit(1, model.Minute); !errors.Is(err, ErrStopped) {
			t.Fatalf("Submit after Close: err = %v, want ErrStopped", err)
		}
	}
}

// TestCloseBeforeStart pins the start-after-close ordering: a Close
// that completes before Start must leave no goroutine behind, and
// Start must report ErrStopped rather than launching a loop nobody
// will ever stop.
func TestCloseBeforeStart(t *testing.T) {
	book, err := resbook.NewSharded(8, 0, 2, model.Hour)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	e, err := New(Config{Book: book, Tick: time.Millisecond})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	e.Close()
	if err := e.Start(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("Start after Close: err = %v, want ErrStopped", err)
	}
}
