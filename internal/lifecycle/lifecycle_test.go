package lifecycle

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"resched/internal/model"
	"resched/internal/resbook"
)

// newEngine builds an engine over a sharded book for tests.
func newEngine(t *testing.T, capacity int, cfg Config) *Engine {
	t.Helper()
	book, err := resbook.NewSharded(capacity, 0, 4, model.Hour)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	cfg.Book = book
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func advance(t *testing.T, e *Engine, now model.Time) {
	t.Helper()
	if err := e.AdvanceTo(context.Background(), now); err != nil {
		t.Fatalf("AdvanceTo(%d): %v", now, err)
	}
}

func mustSubmit(t *testing.T, e *Engine, procs int, dur model.Duration) Job {
	t.Helper()
	j, err := e.Submit(procs, dur)
	if err != nil {
		t.Fatalf("Submit(%d,%d): %v", procs, dur, err)
	}
	return j
}

func wantState(t *testing.T, e *Engine, id string, want State) Job {
	t.Helper()
	j, ok := e.Job(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	if j.State != want {
		t.Fatalf("job %s state = %v, want %v", id, j.State, want)
	}
	return j
}

// TestCannedTrace is the acceptance scenario: an 8-processor cluster
// where a wide job starves into an advance reservation and a narrow
// job backfills under the activation guardrail, driven end to end
// through the sharded book's Pending→Active→Released lifecycle.
func TestCannedTrace(t *testing.T) {
	e := newEngine(t, 8, Config{Backfill: true, StarveAttempts: 3, StarveAge: -1})

	// A occupies 6 of 8 processors for 100s.
	a := mustSubmit(t, e, 6, 100)
	advance(t, e, 0)
	a = wantState(t, e, a.ID, Running)
	if a.Start != 0 || a.End != 100 {
		t.Fatalf("A window = [%d,%d), want [0,100)", a.Start, a.End)
	}

	// B needs the whole machine: blocked for 3 passes, then starved
	// into an advance reservation at A's completion.
	b := mustSubmit(t, e, 8, 50)
	advance(t, e, 0)
	advance(t, e, 0)
	advance(t, e, 0)
	b = wantState(t, e, b.ID, Reserved)
	if !b.Starved {
		t.Fatalf("B not marked starved")
	}
	if b.Start != 100 || b.End != 150 {
		t.Fatalf("B reservation = [%d,%d), want [100,150)", b.Start, b.End)
	}
	if res, ok := e.Book().Get(b.ReservationID); !ok || res.Status != resbook.Pending {
		t.Fatalf("B reservation %s status = %v, want Pending", b.ReservationID, res.Status)
	}

	// D cannot start (needs 4, only 2 free); E backfills behind it,
	// bounded by B's activation at t=100.
	d := mustSubmit(t, e, 4, 30)
	eJob := mustSubmit(t, e, 2, 40)
	advance(t, e, 0)
	wantState(t, e, d.ID, Queued)
	eJob = wantState(t, e, eJob.ID, Running)
	if !eJob.Backfilled {
		t.Fatalf("E not marked backfilled")
	}
	if eJob.GuardBound != 100 {
		t.Fatalf("E guard bound = %d, want 100", eJob.GuardBound)
	}
	if eJob.End > eJob.GuardBound {
		t.Fatalf("guardrail violated: E ends %d after bound %d", eJob.End, eJob.GuardBound)
	}

	// Drive to completion. D starves too (attempts 2, 3 at t=40) and
	// lands after B.
	advance(t, e, 40) // E completes
	advance(t, e, 40)
	d = wantState(t, e, d.ID, Reserved)
	if d.Start != 150 {
		t.Fatalf("D reservation start = %d, want 150", d.Start)
	}
	advance(t, e, 100) // A completes, B activates
	b = wantState(t, e, b.ID, Running)
	if res, ok := e.Book().Get(b.ReservationID); !ok || res.Status != resbook.Active {
		t.Fatalf("B reservation %s status = %v, want Active", b.ReservationID, res.Status)
	}
	advance(t, e, 180) // B completes, D activates and completes
	for _, id := range []string{a.ID, b.ID, d.ID, eJob.ID} {
		wantState(t, e, id, Done)
	}
	for _, res := range e.Book().List() {
		if res.Status != resbook.Released {
			t.Fatalf("reservation %s status = %v, want Released", res.ID, res.Status)
		}
	}
	if err := e.Book().CheckInvariants(); err != nil {
		t.Fatalf("book invariants: %v", err)
	}

	s := e.Stats()
	if s.Backfills < 1 {
		t.Fatalf("backfills = %d, want >= 1", s.Backfills)
	}
	if s.StarvationReservations < 2 {
		t.Fatalf("starvation reservations = %d, want >= 2", s.StarvationReservations)
	}
	if s.Completions != 4 {
		t.Fatalf("completions = %d, want 4", s.Completions)
	}
	if s.QueueDepth != 0 {
		t.Fatalf("queue depth = %d, want 0", s.QueueDepth)
	}
}

// TestBackfillGuardrailBinds constructs the case where capacity alone
// would admit a backfill but the guardrail forbids it: the candidate
// overlaps a pending activation even though the profile has room.
func TestBackfillGuardrailBinds(t *testing.T) {
	e := newEngine(t, 8, Config{Backfill: true, StarveAttempts: 50, StarveAge: -1})

	a := mustSubmit(t, e, 6, 100)
	advance(t, e, 0)
	wantState(t, e, a.ID, Running)

	// H starves immediately (attempts threshold 1 via direct config is
	// not available, so force it with repeated passes): H needs 4,
	// only 2 free, so it blocks; starve it by age instead.
	h := mustSubmit(t, e, 4, 50)
	e.cfg.StarveAttempts = 1
	advance(t, e, 0)
	e.cfg.StarveAttempts = 50
	h = wantState(t, e, h.ID, Reserved)
	if h.Start != 100 || h.End != 150 {
		t.Fatalf("H reservation = [%d,%d), want [100,150)", h.Start, h.End)
	}

	// After A completes at 100, the machine runs H's 4 processors and
	// has 4 free — so capacity-wise a 2x120s job fits at t=0 (2 free
	// until 100, 4 free after). The guardrail must still reject it:
	// it would cross H's activation at 100.
	blockedHead := mustSubmit(t, e, 8, 10)
	long := mustSubmit(t, e, 2, 120)
	short := mustSubmit(t, e, 2, 90)
	advance(t, e, 0)

	wantState(t, e, blockedHead.ID, Queued)
	wantState(t, e, long.ID, Queued) // capacity fits, guardrail binds
	got := wantState(t, e, short.ID, Running)
	if !got.Backfilled || got.GuardBound != 100 || got.End > got.GuardBound {
		t.Fatalf("short backfill = %+v, want backfilled with end <= 100", got)
	}
}

// TestStrictFCFSNoBackfill: with Backfill off, nothing jumps the
// queue even when it would fit.
func TestStrictFCFSNoBackfill(t *testing.T) {
	e := newEngine(t, 8, Config{Backfill: false, StarveAttempts: 50, StarveAge: -1})
	a := mustSubmit(t, e, 6, 100)
	wide := mustSubmit(t, e, 4, 10)
	narrow := mustSubmit(t, e, 1, 10)
	advance(t, e, 0)
	wantState(t, e, a.ID, Running)
	wantState(t, e, wide.ID, Queued)
	wantState(t, e, narrow.ID, Queued)
}

// TestStarveAgeTrigger: the age threshold books a reservation even
// when the attempts trigger is disabled.
func TestStarveAgeTrigger(t *testing.T) {
	e := newEngine(t, 4, Config{StarveAttempts: -1, StarveAge: 60})
	a := mustSubmit(t, e, 4, 1000)
	advance(t, e, 0)
	wantState(t, e, a.ID, Running)
	b := mustSubmit(t, e, 4, 10)
	advance(t, e, 0)
	wantState(t, e, b.ID, Queued)
	advance(t, e, 59)
	wantState(t, e, b.ID, Queued)
	advance(t, e, 60)
	b = wantState(t, e, b.ID, Reserved)
	if b.Start != 1000 {
		t.Fatalf("B reservation start = %d, want 1000", b.Start)
	}
}

func TestSubmitValidation(t *testing.T) {
	e := newEngine(t, 8, Config{})
	if _, err := e.Submit(0, 10); err == nil {
		t.Fatal("Submit(0 procs) succeeded")
	}
	if _, err := e.Submit(9, 10); err == nil {
		t.Fatal("Submit(procs > capacity) succeeded")
	}
	if _, err := e.Submit(1, 0); err == nil {
		t.Fatal("Submit(zero duration) succeeded")
	}
}

// TestForecastQueuedJob is the acceptance check for the forecast
// surface: a queued job that cannot start now reports its earliest
// feasible start and its processor deficit.
func TestForecastQueuedJob(t *testing.T) {
	e := newEngine(t, 8, Config{StarveAttempts: 50, StarveAge: -1})
	a := mustSubmit(t, e, 6, 100)
	advance(t, e, 0)
	wantState(t, e, a.ID, Running)
	b := mustSubmit(t, e, 4, 50)
	advance(t, e, 0)
	wantState(t, e, b.ID, Queued)

	f, err := e.ForecastJob(b.ID)
	if err != nil {
		t.Fatalf("ForecastJob: %v", err)
	}
	if f.EarliestStart != 100 {
		t.Fatalf("earliest start = %d, want 100", f.EarliestStart)
	}
	if f.Wait != 100 {
		t.Fatalf("wait = %d, want 100", f.Wait)
	}
	if f.Deficit != 2 {
		t.Fatalf("deficit = %d, want 2 (needs 4, 2 free)", f.Deficit)
	}
	if f.FreeNow != 2 {
		t.Fatalf("free now = %d, want 2", f.FreeNow)
	}
	if len(f.Remedies) == 0 {
		t.Fatal("no remedies")
	}
	joined := strings.Join(f.Remedies, "\n")
	if !strings.Contains(joined, "deficit of 2") {
		t.Fatalf("remedies missing deficit: %q", joined)
	}

	if _, err := e.ForecastJob("nope"); !errors.Is(err, ErrNoJob) {
		t.Fatalf("forecast of unknown job: %v, want ErrNoJob", err)
	}
}

func TestForecastPlacedJob(t *testing.T) {
	e := newEngine(t, 8, Config{})
	a := mustSubmit(t, e, 2, 100)
	advance(t, e, 0)
	f, err := e.ForecastJob(a.ID)
	if err != nil {
		t.Fatalf("ForecastJob: %v", err)
	}
	if f.State != Running || f.EarliestStart != 0 || f.Deficit != 0 {
		t.Fatalf("placed forecast = %+v", f)
	}
}

// TestWallClockMode exercises Start/Submit/Close: the loop must place
// a submitted job promptly (woken by Submit, not waiting a full tick)
// and shut down cleanly.
func TestWallClockMode(t *testing.T) {
	e := newEngine(t, 8, Config{Tick: 5 * time.Millisecond})
	if err := e.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := e.Start(context.Background()); err == nil {
		t.Fatal("second Start succeeded")
	}
	j := mustSubmit(t, e, 2, 3600)
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, ok := e.Job(j.ID)
		if ok && got.State == Running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not running after 5s (state %v)", j.ID, got.State)
		}
		time.Sleep(time.Millisecond)
	}
	e.Close()
	e.Close() // idempotent
	if _, err := e.Submit(1, 10); !errors.Is(err, ErrStopped) {
		t.Fatalf("Submit after Close: %v, want ErrStopped", err)
	}
	if err := e.Start(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("Start after Close: %v, want ErrStopped", err)
	}
}

// TestReplayCannedTrace runs the same canned scenario through Replay
// and checks the report's accounting.
func TestReplayCannedTrace(t *testing.T) {
	e := newEngine(t, 8, Config{Backfill: true, StarveAttempts: 2, StarveAge: -1})
	trace := []Arrival{
		{At: 0, Procs: 6, Dur: 100},
		{At: 0, Procs: 8, Dur: 50},
		{At: 5, Procs: 4, Dur: 30},
		{At: 5, Procs: 2, Dur: 40},
		{At: 10, Procs: 1, Dur: 20},
	}
	rep, err := e.Replay(context.Background(), trace)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if rep.Jobs != 5 || rep.Completed != 5 {
		t.Fatalf("report jobs=%d completed=%d, want 5/5", rep.Jobs, rep.Completed)
	}
	if rep.Starved < 1 {
		t.Fatalf("report starvation reservations = %d, want >= 1", rep.Starved)
	}
	if rep.Util <= 0 || rep.Util > 1 {
		t.Fatalf("utilization = %v, want (0,1]", rep.Util)
	}
	if rep.MeanBSLD < 1 || rep.MaxBSLD < rep.MeanBSLD {
		t.Fatalf("bounded slowdown mean=%v max=%v", rep.MeanBSLD, rep.MaxBSLD)
	}
	if rep.Makespan <= 0 {
		t.Fatalf("makespan = %d, want > 0", rep.Makespan)
	}
	if err := e.Book().CheckInvariants(); err != nil {
		t.Fatalf("book invariants: %v", err)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

// TestReplayOnStartedEngine rejects mixing the two driving modes.
func TestReplayOnStartedEngine(t *testing.T) {
	e := newEngine(t, 8, Config{Tick: time.Hour})
	if err := e.Start(context.Background()); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer e.Close()
	if _, err := e.Replay(context.Background(), nil); err == nil {
		t.Fatal("Replay on a started engine succeeded")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a book succeeded")
	}
}
