package lifecycle

// The backfill-guardrail differential test: seeded random arrival
// traces replayed through the engine, with two independent oracles.
//
//  1. Guardrail: no backfilled job's completion ever crosses the
//     activation bound it was admitted under (End <= GuardBound).
//
//  2. Flat-profile replay: every reservation window the engine booked
//     over the whole run must co-exist in a fresh flat profile. Any
//     instant where concurrently-running windows exceeded capacity
//     makes the oracle's Reserve fail, independent of the sharded
//     book, the tree backend, and the optimistic commit path that
//     produced the schedule.

import (
	"context"
	"math/rand"
	"testing"

	"resched/internal/model"
	"resched/internal/profile"
	"resched/internal/resbook"
)

// randomTrace draws a seeded arrival trace: bursty arrivals, a mix of
// narrow short jobs and wide long jobs so that both backfill and
// starvation paths exercise.
func randomTrace(rng *rand.Rand, capacity, n int) []Arrival {
	trace := make([]Arrival, 0, n)
	var t model.Time
	for i := 0; i < n; i++ {
		t += model.Time(rng.Intn(40))
		procs := 1 + rng.Intn(capacity)
		if rng.Intn(4) == 0 {
			procs = capacity/2 + rng.Intn(capacity/2+1) // wide job
		}
		if procs > capacity {
			procs = capacity
		}
		dur := model.Duration(10 + rng.Intn(290))
		trace = append(trace, Arrival{At: t, Procs: procs, Dur: dur})
	}
	return trace
}

func TestBackfillGuardrailDifferential(t *testing.T) {
	const (
		capacity = 16
		jobs     = 60
		seeds    = 25
	)
	var totalBackfills, totalStarved uint64
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		book, err := resbook.NewSharded(capacity, 0, 8, model.Hour)
		if err != nil {
			t.Fatalf("seed %d: NewSharded: %v", seed, err)
		}
		e, err := New(Config{
			Book:           book,
			Backfill:       true,
			StarveAttempts: 4,
			StarveAge:      120,
		})
		if err != nil {
			t.Fatalf("seed %d: New: %v", seed, err)
		}
		trace := randomTrace(rng, capacity, jobs)
		rep, err := e.Replay(context.Background(), trace)
		if err != nil {
			t.Fatalf("seed %d: Replay: %v", seed, err)
		}
		if rep.Completed != len(trace) {
			t.Fatalf("seed %d: completed %d of %d jobs", seed, rep.Completed, len(trace))
		}
		totalBackfills += rep.Backfills
		totalStarved += rep.Starved

		// Oracle 1: the guardrail property on every backfilled job.
		for _, j := range e.Jobs() {
			if j.State != Done {
				t.Fatalf("seed %d: job %s finished %v, want Done", seed, j.ID, j.State)
			}
			if j.Backfilled && j.End > j.GuardBound {
				t.Fatalf("seed %d: backfilled job %s ends %d past its activation bound %d",
					seed, j.ID, j.End, j.GuardBound)
			}
		}

		// Oracle 2: all booked windows must co-exist in a fresh flat
		// profile — the engine never over-committed capacity at any
		// instant.
		oracle := profile.New(capacity, 0)
		for _, res := range book.List() {
			if res.Status != resbook.Released {
				t.Fatalf("seed %d: reservation %s left %v", seed, res.ID, res.Status)
			}
			if err := oracle.Reserve(res.Start, res.End, res.Procs); err != nil {
				t.Fatalf("seed %d: oracle rejects window [%d,%d)x%d: %v",
					seed, res.Start, res.End, res.Procs, err)
			}
		}
		if err := oracle.Check(); err != nil {
			t.Fatalf("seed %d: oracle profile invariants: %v", seed, err)
		}
		if err := book.CheckInvariants(); err != nil {
			t.Fatalf("seed %d: book invariants: %v", seed, err)
		}
	}
	// The trace family must actually exercise both code paths, or the
	// differential assertions above are vacuous.
	if totalBackfills == 0 {
		t.Fatal("no backfill across all seeds; trace family too easy")
	}
	if totalStarved == 0 {
		t.Fatal("no starvation reservation across all seeds; trace family too easy")
	}
}
