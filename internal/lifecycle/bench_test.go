package lifecycle

import (
	"context"
	"fmt"
	"testing"

	"resched/internal/model"
	"resched/internal/resbook"
)

func benchEngine(b *testing.B, capacity int, cfg Config) *Engine {
	b.Helper()
	book, err := resbook.NewSharded(capacity, 0, 8, model.Hour)
	if err != nil {
		b.Fatalf("NewSharded: %v", err)
	}
	cfg.Book = book
	e, err := New(cfg)
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	return e
}

// BenchmarkEngineTick measures the steady-state cost of one advance:
// a submit, an event fire, and a scheduling pass with placements
// flowing through the optimistic book transaction.
func BenchmarkEngineTick(b *testing.B) {
	e := benchEngine(b, 64, Config{Backfill: true, StarveAttempts: 4, StarveAge: -1})
	ctx := context.Background()
	var t model.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Submit(1+i%8, model.Duration(30+i%50)); err != nil {
			b.Fatalf("Submit: %v", err)
		}
		if err := e.AdvanceTo(ctx, t); err != nil {
			b.Fatalf("AdvanceTo: %v", err)
		}
		t += 10
	}
}

// BenchmarkForecast measures the GET /v1/jobs/{id}/forecast hot path:
// a snapshot, an auto-backend earliest-fit probe, and the deficit
// computation, against a book with a populated horizon.
func BenchmarkForecast(b *testing.B) {
	e := benchEngine(b, 64, Config{StarveAttempts: -1, StarveAge: -1})
	ctx := context.Background()
	// Populate the horizon: staggered running jobs plus a queue.
	for i := 0; i < 200; i++ {
		if _, err := e.Submit(1+i%4, model.Duration(100+i%400)); err != nil {
			b.Fatalf("Submit: %v", err)
		}
	}
	if err := e.AdvanceTo(ctx, 0); err != nil {
		b.Fatalf("AdvanceTo: %v", err)
	}
	target, err := e.Submit(64, 500) // whole machine: stays queued, nonzero deficit
	if err != nil {
		b.Fatalf("Submit: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := e.ForecastJob(target.ID)
		if err != nil {
			b.Fatalf("ForecastJob: %v", err)
		}
		if f.JobID != target.ID {
			b.Fatal("wrong forecast")
		}
	}
}

// BenchmarkReplay measures end-to-end simulated throughput on a
// medium random trace.
func BenchmarkReplay(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := benchEngine(b, 32, Config{Backfill: true, StarveAttempts: 4, StarveAge: 300})
		trace := make([]Arrival, 0, 200)
		var t model.Time
		for j := 0; j < 200; j++ {
			t += model.Time(j % 20)
			trace = append(trace, Arrival{At: t, Procs: 1 + j%32, Dur: model.Duration(10 + j%200)})
		}
		b.StartTimer()
		rep, err := e.Replay(context.Background(), trace)
		if err != nil {
			b.Fatalf("Replay: %v", err)
		}
		if rep.Completed != len(trace) {
			b.Fatal(fmt.Sprintf("completed %d of %d", rep.Completed, len(trace)))
		}
	}
}
