// Package dagio serializes application DAGs as JSON so the command
// line tools (resgen, ressched) and external systems can exchange
// them.
//
// The format is deliberately minimal:
//
//	{
//	  "tasks": [{"name": "prep", "seq": 3600, "alpha": 0.1}, ...],
//	  "edges": [[0, 1], [0, 2], ...]
//	}
//
// Task IDs are the indices into the tasks array.
package dagio

import (
	"encoding/json"
	"fmt"
	"io"

	"resched/internal/dag"
	"resched/internal/model"
)

type jsonTask struct {
	Name  string         `json:"name,omitempty"`
	Seq   model.Duration `json:"seq"`
	Alpha float64        `json:"alpha"`
}

type jsonGraph struct {
	Tasks []jsonTask `json:"tasks"`
	Edges [][2]int   `json:"edges"`
}

// Write serializes the graph as indented JSON.
func Write(w io.Writer, g *dag.Graph) error {
	jg := jsonGraph{Tasks: make([]jsonTask, g.NumTasks())}
	for i := 0; i < g.NumTasks(); i++ {
		t := g.Task(i)
		jg.Tasks[i] = jsonTask{Name: t.Name, Seq: t.Seq, Alpha: t.Alpha}
		for _, s := range g.Successors(i) {
			jg.Edges = append(jg.Edges, [2]int{i, s})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jg)
}

// Read parses a JSON graph and validates it (acyclicity, edge bounds,
// task parameters).
func Read(r io.Reader) (*dag.Graph, error) {
	var jg jsonGraph
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jg); err != nil {
		return nil, fmt.Errorf("dagio: %w", err)
	}
	g := dag.New(len(jg.Tasks))
	for i, t := range jg.Tasks {
		if t.Seq < 0 {
			return nil, fmt.Errorf("dagio: task %d has negative seq %d", i, t.Seq)
		}
		if t.Alpha < 0 || t.Alpha > 1 {
			return nil, fmt.Errorf("dagio: task %d has alpha %v outside [0,1]", i, t.Alpha)
		}
		g.AddTask(dag.Task{Name: t.Name, Seq: t.Seq, Alpha: t.Alpha})
	}
	for _, e := range jg.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("dagio: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dagio: %w", err)
	}
	return g, nil
}
