package dagio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"resched/internal/dag"
	"resched/internal/daggen"
)

func TestRoundTrip(t *testing.T) {
	g := dag.New(3)
	g.AddTask(dag.Task{Name: "a", Seq: 100, Alpha: 0.1})
	g.AddTask(dag.Task{Seq: 200, Alpha: 0.2})
	g.AddTask(dag.Task{Name: "c", Seq: 300})
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)

	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != 3 || back.NumEdges() != 3 {
		t.Fatalf("round trip: %v", back)
	}
	for i := 0; i < 3; i++ {
		if back.Task(i) != g.Task(i) {
			t.Fatalf("task %d: %+v != %+v", i, back.Task(i), g.Task(i))
		}
	}
	for i := 0; i < 3; i++ {
		if len(back.Successors(i)) != len(g.Successors(i)) {
			t.Fatalf("edges of %d differ", i)
		}
	}
}

func TestRoundTripGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := daggen.MustGenerate(daggen.Default(), rng)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTasks() != g.NumTasks() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch: %v vs %v", back, g)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{"tasks": [{"seq": -1, "alpha": 0}], "edges": []}`,
		`{"tasks": [{"seq": 1, "alpha": 2}], "edges": []}`,
		`{"tasks": [{"seq": 1, "alpha": 0}], "edges": [[0, 5]]}`,
		`{"tasks": [{"seq": 1, "alpha": 0}], "edges": [[0, 0]]}`,
		`{"tasks": [], "edges": []}`,
		`{"tasks": [{"seq": 1, "alpha": 0, "bogus": 1}], "edges": []}`,
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d accepted: %s", i, in)
		}
	}
}

func TestReadDetectsCycle(t *testing.T) {
	in := `{"tasks": [{"seq": 1, "alpha": 0}, {"seq": 1, "alpha": 0}], "edges": [[0,1],[1,0]]}`
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}
