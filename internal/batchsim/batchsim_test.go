package batchsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resched/internal/model"
)

func mustSim(t *testing.T, procs int, policy Policy) *Simulator {
	t.Helper()
	s, err := New(Config{Procs: procs, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, s *Simulator, jobs []Job) []Completed {
	t.Helper()
	done, err := s.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(done); err != nil {
		t.Fatal(err)
	}
	return done
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Procs: 0, Policy: FCFS}); err == nil {
		t.Fatal("zero-proc machine accepted")
	}
	if _, err := New(Config{Procs: 4, Policy: Policy(9)}); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if FCFS.String() != "FCFS" || EASY.String() != "EASY" || Policy(9).String() == "" {
		t.Fatal("Policy.String broken")
	}
}

func TestRunValidation(t *testing.T) {
	s := mustSim(t, 4, FCFS)
	bad := []Job{
		{ID: 1, Submit: 0, Procs: 5, Request: 10, Actual: 10},
		{ID: 2, Submit: 0, Procs: 0, Request: 10, Actual: 10},
		{ID: 3, Submit: 0, Procs: 1, Request: 0, Actual: 10},
		{ID: 4, Submit: 0, Procs: 1, Request: 10, Actual: 0},
		{ID: 5, Submit: -1, Procs: 1, Request: 10, Actual: 10},
	}
	for _, j := range bad {
		if _, err := s.Run([]Job{j}); err == nil {
			t.Fatalf("bad job %d accepted", j.ID)
		}
	}
}

func TestFCFSOrdering(t *testing.T) {
	// Two 3-proc jobs on a 4-proc machine must serialize in order,
	// even though a later 1-proc job could sneak in: FCFS blocks it.
	s := mustSim(t, 4, FCFS)
	jobs := []Job{
		{ID: 1, Submit: 0, Procs: 3, Request: 100, Actual: 100},
		{ID: 2, Submit: 1, Procs: 3, Request: 100, Actual: 100},
		{ID: 3, Submit: 2, Procs: 1, Request: 50, Actual: 50},
	}
	done := run(t, s, jobs)
	if done[0].Start != 0 || done[1].Start != 100 {
		t.Fatalf("FCFS heads: %+v %+v", done[0], done[1])
	}
	// Job 3 fits beside job 1 but must wait behind job 2 under FCFS...
	// actually FCFS starts the head only; job 3 is behind job 2, and
	// once job 2 starts at t=100 there is 1 processor free, so job 3
	// starts at 100 as the new head.
	if done[2].Start != 100 {
		t.Fatalf("FCFS tail: %+v", done[2])
	}
}

func TestEASYBackfills(t *testing.T) {
	// Same workload under EASY: job 3 ends by job 2's shadow time and
	// fits now, so it backfills at t=2.
	s := mustSim(t, 4, EASY)
	jobs := []Job{
		{ID: 1, Submit: 0, Procs: 3, Request: 100, Actual: 100},
		{ID: 2, Submit: 1, Procs: 3, Request: 100, Actual: 100},
		{ID: 3, Submit: 2, Procs: 1, Request: 50, Actual: 50},
	}
	done := run(t, s, jobs)
	if done[2].Start != 2 || !done[2].Backfilled {
		t.Fatalf("EASY should backfill job 3 at t=2: %+v", done[2])
	}
	// The head's guarantee is not delayed.
	if done[1].Start != 100 {
		t.Fatalf("backfill delayed the queue head: %+v", done[1])
	}
}

func TestEASYBackfillCannotDelayHead(t *testing.T) {
	// A backfill candidate that would overlap the head's shadow window
	// and conflict with its allocation must stay queued.
	s := mustSim(t, 4, EASY)
	jobs := []Job{
		{ID: 1, Submit: 0, Procs: 4, Request: 100, Actual: 100},
		{ID: 2, Submit: 1, Procs: 3, Request: 100, Actual: 100}, // head, shadow = 100
		{ID: 3, Submit: 2, Procs: 2, Request: 500, Actual: 500}, // would hold 2 procs past 100
	}
	done := run(t, s, jobs)
	if done[1].Start != 100 {
		t.Fatalf("head delayed: %+v", done[1])
	}
	if done[2].Start < 200 {
		t.Fatalf("conflicting candidate backfilled anyway: %+v", done[2])
	}
}

func TestWalltimeKill(t *testing.T) {
	s := mustSim(t, 2, FCFS)
	jobs := []Job{{ID: 1, Submit: 0, Procs: 1, Request: 60, Actual: 1000}}
	done := run(t, s, jobs)
	if !done[0].Killed || done[0].End != 60 {
		t.Fatalf("walltime not enforced: %+v", done[0])
	}
}

func TestAdvanceReservationBlocksSpace(t *testing.T) {
	s := mustSim(t, 4, FCFS)
	if err := s.AddReservation(50, 150, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.AddReservation(10, 10, 1); err == nil {
		t.Fatal("empty reservation accepted")
	}
	if err := s.AddReservation(0, 10, 9); err == nil {
		t.Fatal("oversized reservation accepted")
	}
	// A 100-second job arriving at t=0 cannot finish before the
	// reservation, so it must wait until t=150.
	jobs := []Job{{ID: 1, Submit: 0, Procs: 2, Request: 100, Actual: 100}}
	done := run(t, s, jobs)
	if done[0].Start != 150 {
		t.Fatalf("job ran into the reservation: %+v", done[0])
	}
	// A short job fits before the reservation.
	s2 := mustSim(t, 4, FCFS)
	if err := s2.AddReservation(50, 150, 4); err != nil {
		t.Fatal(err)
	}
	done = run(t, s2, []Job{{ID: 1, Submit: 0, Procs: 2, Request: 50, Actual: 50}})
	if done[0].Start != 0 {
		t.Fatalf("short job should fit before the reservation: %+v", done[0])
	}
}

func TestSummarize(t *testing.T) {
	s := mustSim(t, 4, EASY)
	jobs := []Job{
		{ID: 1, Submit: 0, Procs: 4, Request: 100, Actual: 100},
		{ID: 2, Submit: 0, Procs: 4, Request: 100, Actual: 200},
	}
	done := run(t, s, jobs)
	st, err := Summarize(4, done)
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs != 2 || st.Killed != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.MeanWait != 50 || st.MaxWait != 100 {
		t.Fatalf("waits %+v", st)
	}
	if st.Utilization != 1 {
		t.Fatalf("utilization %v, want 1 (machine saturated)", st.Utilization)
	}
	if _, err := Summarize(4, nil); err == nil {
		t.Fatal("empty summary accepted")
	}
}

// randomJobs builds a random feasible workload.
func randomJobs(rng *rand.Rand, n, procs int) []Job {
	jobs := make([]Job, n)
	var t model.Time
	for i := range jobs {
		t += model.Time(rng.Intn(300))
		actual := model.Duration(rng.Intn(2000) + 10)
		req := actual + model.Duration(rng.Intn(500))
		if rng.Float64() < 0.1 {
			req = actual / 2 // will be killed
			if req < 1 {
				req = 1
			}
		}
		jobs[i] = Job{
			ID:      i + 1,
			Submit:  t,
			Procs:   rng.Intn(procs) + 1,
			Request: req,
			Actual:  actual,
		}
	}
	return jobs
}

// Property: both policies always produce valid schedules (no
// overcommitment, no time travel) and every job eventually runs, with
// an admin reservation stressing the blocking logic.
func TestPoliciesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		procs := rng.Intn(14) + 2
		jobs := randomJobs(rng, rng.Intn(40)+5, procs)
		for _, policy := range []Policy{FCFS, EASY} {
			s, err := New(Config{Procs: procs, Policy: policy})
			if err != nil {
				return false
			}
			if err := s.AddReservation(5000, 8000, procs); err != nil {
				return false
			}
			done, err := s.Run(jobs)
			if err != nil {
				return false
			}
			if err := s.Validate(done); err != nil {
				return false
			}
			for _, c := range done {
				if c.Start < c.Submit {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// EASY may delay individual non-head jobs (only the head carries a
// guarantee), so per-instance wait comparisons are not a theorem;
// aggregated over a fixed seed set, backfilling must clearly win.
func TestEASYBeatsFCFSOnAverage(t *testing.T) {
	var fcfs, easy float64
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		procs := rng.Intn(14) + 2
		jobs := randomJobs(rng, rng.Intn(40)+5, procs)
		for i, policy := range []Policy{FCFS, EASY} {
			s := mustSim(t, procs, policy)
			if err := s.AddReservation(5000, 8000, procs); err != nil {
				t.Fatal(err)
			}
			done := run(t, s, jobs)
			st, err := Summarize(procs, done)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				fcfs += st.MeanWait
			} else {
				easy += st.MeanWait
			}
		}
	}
	if easy >= fcfs {
		t.Fatalf("EASY aggregate mean wait %.0f not better than FCFS %.0f", easy/60, fcfs/60)
	}
}

func TestHeavyQueueProgress(t *testing.T) {
	// Saturating workload: 200 jobs on 4 processors must all complete.
	rng := rand.New(rand.NewSource(7))
	jobs := make([]Job, 200)
	for i := range jobs {
		jobs[i] = Job{
			ID:      i + 1,
			Submit:  model.Time(rng.Intn(100)),
			Procs:   rng.Intn(4) + 1,
			Request: model.Duration(rng.Intn(500) + 50),
			Actual:  model.Duration(rng.Intn(500) + 50),
		}
	}
	for _, policy := range []Policy{FCFS, EASY} {
		s := mustSim(t, 4, policy)
		done := run(t, s, jobs)
		for _, c := range done {
			if c.Start < 0 {
				t.Fatalf("%v: job %d never started", policy, c.ID)
			}
		}
	}
}
