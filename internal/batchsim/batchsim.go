// Package batchsim is a discrete-event simulator of the resource
// management systems the paper's workload model presumes (Section 1
// and 3.2): a space-sharing batch scheduler that queues rigid jobs,
// starts them FCFS or with EASY backfilling, enforces user walltime
// requests, and honors admin-placed advance reservations that block
// processors for fixed windows.
//
// The simulator serves two roles in this library. It generates
// synthetic workload logs with realistic queueing delays (see
// workload.SynthesizeQueued) — the FCFS-packing generator produces
// near-zero waits on underloaded machines, while production traces
// wait in queues. And it is the substrate for experiments that relax
// the paper's static-reservation-schedule assumption: advance
// reservations can be injected at any simulated time.
package batchsim

import (
	"container/heap"
	"fmt"
	"sort"

	"resched/internal/model"
	"resched/internal/profile"
)

// Policy selects the queueing discipline.
type Policy int

const (
	// FCFS starts jobs strictly in arrival order; the queue head
	// blocks everything behind it until it fits.
	FCFS Policy = iota
	// EASY is FCFS plus aggressive backfilling: the queue head gets a
	// start-time guarantee, and any later job may jump ahead if doing
	// so cannot delay that guarantee (Mu'alem & Feitelson, TPDS 2001).
	EASY
)

func (p Policy) String() string {
	switch p {
	case FCFS:
		return "FCFS"
	case EASY:
		return "EASY"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Job is one rigid batch job submitted to the simulator.
type Job struct {
	ID     int
	Submit model.Time
	Procs  int
	// Request is the user's walltime estimate; the job is killed when
	// it runs this long.
	Request model.Duration
	// Actual is the true runtime.
	Actual model.Duration
}

// Completed is a finished (or killed) job with its schedule.
type Completed struct {
	Job
	Start model.Time
	// End is Start + min(Actual, Request).
	End model.Time
	// Killed reports that the job hit its walltime limit.
	Killed bool
	// Backfilled reports that the job jumped the queue under EASY.
	Backfilled bool
}

// Wait returns the queueing delay.
func (c Completed) Wait() model.Duration { return c.Start - c.Submit }

// Config describes the simulated machine.
type Config struct {
	Procs  int
	Policy Policy
}

// Simulator runs one machine. Create with New, optionally add advance
// reservations, then Run a job list.
type Simulator struct {
	cfg          Config
	reservations []profile.Reservation
}

// New returns a simulator for the given machine.
func New(cfg Config) (*Simulator, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("batchsim: machine size %d < 1", cfg.Procs)
	}
	if cfg.Policy != FCFS && cfg.Policy != EASY {
		return nil, fmt.Errorf("batchsim: unknown policy %v", cfg.Policy)
	}
	return &Simulator{cfg: cfg}, nil
}

// AddReservation blocks procs processors during [start, end) for an
// advance reservation. Overcommitted reservation sets are rejected at
// Run time.
func (s *Simulator) AddReservation(start, end model.Time, procs int) error {
	if end <= start {
		return fmt.Errorf("batchsim: empty reservation [%d,%d)", start, end)
	}
	if procs < 1 || procs > s.cfg.Procs {
		return fmt.Errorf("batchsim: reservation for %d of %d processors", procs, s.cfg.Procs)
	}
	s.reservations = append(s.reservations, profile.Reservation{Start: start, End: end, Procs: procs})
	return nil
}

// running is a started job with its true and requested end times.
type running struct {
	procs  int
	end    model.Time // true completion (or kill time)
	reqEnd model.Time // request-based occupancy horizon
}

// endHeap orders running jobs by true end time.
type endHeap []running

func (h endHeap) Len() int            { return len(h) }
func (h endHeap) Less(i, j int) bool  { return h[i].end < h[j].end }
func (h endHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x interface{}) { *h = append(*h, x.(running)) }
func (h *endHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run simulates the full job list (any order; it is sorted by submit
// time internally) and returns per-job schedules in the same order as
// the sorted submissions. Jobs with non-positive Request or Procs out
// of range are rejected.
func (s *Simulator) Run(jobs []Job) ([]Completed, error) {
	for i, j := range jobs {
		if j.Procs < 1 || j.Procs > s.cfg.Procs {
			return nil, fmt.Errorf("batchsim: job %d needs %d of %d processors", j.ID, j.Procs, s.cfg.Procs)
		}
		if j.Request <= 0 || j.Actual <= 0 {
			return nil, fmt.Errorf("batchsim: job %d has non-positive runtime", j.ID)
		}
		if j.Submit < 0 {
			return nil, fmt.Errorf("batchsim: job %d submitted at negative time", j.ID)
		}
		_ = i
	}
	ordered := append([]Job(nil), jobs...)
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].Submit < ordered[b].Submit })

	out := make([]Completed, len(ordered))
	for i, j := range ordered {
		out[i] = Completed{Job: j, Start: -1}
	}

	var active endHeap
	queue := []int{} // indices into out, FIFO
	next := 0        // next arrival
	now := model.Time(0)

	for next < len(ordered) || len(queue) > 0 || active.Len() > 0 {
		// Advance the clock to the next event: an arrival, a
		// completion, or the blocked queue head's earliest feasible
		// start (driven by reservation boundaries).
		var events []model.Time
		if next < len(ordered) {
			events = append(events, ordered[next].Submit)
		}
		if active.Len() > 0 {
			events = append(events, active[0].end)
		}
		if len(queue) > 0 {
			forecast, err := s.forecast(active, now)
			if err != nil {
				return nil, err
			}
			head := out[queue[0]]
			events = append(events, forecast.EarliestFit(head.Procs, head.Request, now))
		}
		if len(events) == 0 {
			return nil, fmt.Errorf("batchsim: stalled with %d queued jobs at %d", len(queue), now)
		}
		t := events[0]
		for _, e := range events[1:] {
			if e < t {
				t = e
			}
		}
		if t > now {
			now = t
		}
		// Drain completions at or before now.
		for active.Len() > 0 && active[0].end <= now {
			heap.Pop(&active)
		}
		// Admit arrivals at or before now.
		for next < len(ordered) && ordered[next].Submit <= now {
			queue = append(queue, next)
			next++
		}
		// Scheduling pass.
		var err error
		queue, err = s.startJobs(queue, &active, out, now)
		if err != nil {
			return nil, err
		}
		// Progress guarantee: if nothing started and no event lies at
		// or before now, the next loop iteration advances the clock
		// (the head's start event is strictly in the future once the
		// pass declines to start it).
	}
	return out, nil
}

// forecast builds the request-based occupancy profile at time now:
// admin reservations plus running jobs holding their processors until
// their requested ends.
func (s *Simulator) forecast(active endHeap, now model.Time) (*profile.Profile, error) {
	rs := make([]profile.Reservation, 0, len(s.reservations)+active.Len())
	rs = append(rs, s.reservations...)
	for _, r := range active {
		end := r.reqEnd
		if end <= now {
			// The job exceeded its own request horizon only if killed;
			// it still occupies until its true end.
			end = r.end
		}
		rs = append(rs, profile.Reservation{Start: now, End: end, Procs: r.procs})
	}
	return profile.FromReservations(s.cfg.Procs, now, rs)
}

// startJobs runs one scheduling pass at time now, starting queue jobs
// according to the policy. It returns the remaining queue.
func (s *Simulator) startJobs(queue []int, active *endHeap, out []Completed, now model.Time) ([]int, error) {
	for len(queue) > 0 {
		forecast, err := s.forecast(*active, now)
		if err != nil {
			return nil, err
		}
		head := &out[queue[0]]
		if forecast.EarliestFit(head.Procs, head.Request, now) == now {
			s.start(head, active, now, false)
			queue = queue[1:]
			continue
		}
		if s.cfg.Policy == FCFS {
			return queue, nil
		}
		// EASY backfilling: the head's guarantee is its earliest
		// request-based start; a later job may start now only if it
		// fits now and cannot delay that guarantee — either it ends by
		// the shadow time or it fits alongside the head's allocation
		// at the shadow time.
		shadow := forecast.EarliestFit(head.Procs, head.Request, now)
		backfilled := false
		for qi := 1; qi < len(queue); qi++ {
			cand := &out[queue[qi]]
			if forecast.EarliestFit(cand.Procs, cand.Request, now) != now {
				continue
			}
			endByShadow := now+cand.Request <= shadow
			fitsBeside := forecast.MinFree(shadow, shadow+head.Request) >= head.Procs+cand.Procs
			if !endByShadow && !fitsBeside {
				continue
			}
			s.start(cand, active, now, true)
			queue = append(queue[:qi], queue[qi+1:]...)
			backfilled = true
			break
		}
		if !backfilled {
			return queue, nil
		}
	}
	return queue, nil
}

// start commits a job at time now.
func (s *Simulator) start(c *Completed, active *endHeap, now model.Time, backfilled bool) {
	c.Start = now
	run := c.Actual
	c.Killed = false
	if run > c.Request {
		run = c.Request
		c.Killed = true
	}
	c.End = now + run
	c.Backfilled = backfilled
	heap.Push(active, running{procs: c.Procs, end: c.End, reqEnd: now + c.Request})
}

// Stats summarizes a completed simulation.
type Stats struct {
	Jobs        int
	MeanWait    float64 // seconds
	MaxWait     model.Duration
	Backfilled  int
	Killed      int
	Utilization float64
}

// Summarize computes aggregate statistics for a machine of p
// processors over the simulated span.
func Summarize(p int, done []Completed) (Stats, error) {
	if len(done) == 0 {
		return Stats{}, fmt.Errorf("batchsim: no jobs")
	}
	var st Stats
	st.Jobs = len(done)
	var first, last model.Time
	first = done[0].Submit
	var waitSum float64
	var area float64
	for _, c := range done {
		if c.Start < 0 {
			return Stats{}, fmt.Errorf("batchsim: job %d never started", c.ID)
		}
		w := c.Wait()
		waitSum += float64(w)
		if w > st.MaxWait {
			st.MaxWait = w
		}
		if c.Backfilled {
			st.Backfilled++
		}
		if c.Killed {
			st.Killed++
		}
		if c.Submit < first {
			first = c.Submit
		}
		if c.End > last {
			last = c.End
		}
		area += float64(c.Procs) * float64(c.End-c.Start)
	}
	st.MeanWait = waitSum / float64(len(done))
	if last > first {
		st.Utilization = area / (float64(p) * float64(last-first))
	}
	return st, nil
}

// Validate checks that a completed schedule never overcommits the
// machine, including the admin reservations, and honors submit times.
func (s *Simulator) Validate(done []Completed) error {
	type ev struct {
		t     model.Time
		delta int
	}
	var evs []ev
	for _, r := range s.reservations {
		evs = append(evs, ev{r.Start, r.Procs}, ev{r.End, -r.Procs})
	}
	for _, c := range done {
		if c.Start < c.Submit {
			return fmt.Errorf("batchsim: job %d started before submission", c.ID)
		}
		if c.End <= c.Start {
			return fmt.Errorf("batchsim: job %d has empty execution", c.ID)
		}
		evs = append(evs, ev{c.Start, c.Procs}, ev{c.End, -c.Procs})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].delta < evs[b].delta
	})
	used := 0
	for _, e := range evs {
		used += e.delta
		if used > s.cfg.Procs {
			return fmt.Errorf("batchsim: %d processors in use at %d on a %d-processor machine", used, e.t, s.cfg.Procs)
		}
	}
	return nil
}
