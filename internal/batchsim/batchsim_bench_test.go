package batchsim

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkRun measures simulator throughput per policy: how fast a
// full workload passes through the event loop, including the forecast
// rebuilds that back EASY's guarantees.
func BenchmarkRun(b *testing.B) {
	for _, n := range []int{200, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		jobs := randomJobs(rng, n, 64)
		for _, policy := range []Policy{FCFS, EASY} {
			b.Run(fmt.Sprintf("%v/jobs=%d", policy, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s, err := New(Config{Procs: 64, Policy: policy})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := s.Run(jobs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
