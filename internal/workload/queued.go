package workload

import (
	"fmt"
	"math"
	"math/rand"

	"resched/internal/batchsim"
	"resched/internal/model"
)

// SynthesizeQueued generates a batch log like Synthesize but assigns
// start times by running the jobs through a discrete-event batch
// scheduler (package batchsim) instead of idealized FCFS packing. Jobs
// carry pessimistic walltime requests — users overestimate runtimes, as
// the paper notes in Section 3.1 citing Mu'alem & Feitelson — so EASY
// backfilling produces the queueing delays real traces exhibit.
//
// Reservation-style archetypes (MeanLead > 0) are not supported: their
// jobs book fixed windows instead of queueing.
func SynthesizeQueued(a Archetype, days int, policy batchsim.Policy, rng *rand.Rand) (*Log, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if a.MeanLead > 0 {
		return nil, fmt.Errorf("workload: archetype %q is a reservation log; use Synthesize", a.Name)
	}
	if days < 1 {
		return nil, fmt.Errorf("workload: log length %d days < 1", days)
	}
	horizon := model.Time(days) * model.Day
	demand := a.expectedJobDemand()
	baseRate := a.TargetUtil * float64(a.Procs) / demand

	sim, err := batchsim.New(batchsim.Config{Procs: a.Procs, Policy: policy})
	if err != nil {
		return nil, err
	}

	var jobs []batchsim.Job
	var t model.Time
	id := 1
	for {
		gap := model.Duration(rng.ExpFloat64() / (1.5 * baseRate))
		if gap < 1 {
			gap = 1
		}
		t += gap
		if t >= horizon {
			break
		}
		cycle := 1 + 0.5*sinDaily(t)
		if rng.Float64() > cycle/1.5 {
			continue
		}
		actual := a.drawRun(rng)
		// Pessimism: requests average ~2x the actual runtime with a
		// heavy tail, truncated at the machine's typical walltime cap.
		request := actual + model.Duration(rng.ExpFloat64()*float64(actual))
		if request > 2*maxRun {
			request = 2 * maxRun
		}
		jobs = append(jobs, batchsim.Job{
			ID:      id,
			Submit:  t,
			Procs:   a.drawProcs(rng),
			Request: request,
			Actual:  actual,
		})
		id++
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("workload: archetype %q produced no jobs in %d days", a.Name, days)
	}
	done, err := sim.Run(jobs)
	if err != nil {
		return nil, err
	}
	if err := sim.Validate(done); err != nil {
		return nil, err
	}
	lg := &Log{Name: a.Name, Procs: a.Procs}
	for _, c := range done {
		lg.Jobs = append(lg.Jobs, Job{
			ID:     c.ID,
			Submit: c.Submit,
			Wait:   c.Wait(),
			Run:    c.End - c.Start, // effective runtime (killed jobs truncated)
			Procs:  c.Procs,
		})
	}
	return lg, nil
}

// sinDaily is the daily arrival-rate modulation shared with
// Synthesize: a sine wave over the time of day.
func sinDaily(t model.Time) float64 {
	return math.Sin(2 * math.Pi * float64(t%model.Day) / float64(model.Day))
}
