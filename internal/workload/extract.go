package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"resched/internal/model"
	"resched/internal/profile"
)

// Method is one of the paper's three ways of turning a stationary
// tagged-job schedule into a realistic reservation schedule whose
// density decreases after the scheduling time T (Section 3.2.1).
type Method int

const (
	// Linear makes the number of reservation jobs per day decrease
	// approximately linearly, reaching zero at T + 7 days.
	Linear Method = iota
	// Expo makes the per-day reservation count decrease approximately
	// exponentially, also vanishing by T + 7 days.
	Expo
	// Real keeps exactly the reservations of jobs submitted before T —
	// what a real batch scheduler would know at time T.
	Real
)

// AllMethods lists the decay methods in paper order.
var AllMethods = []Method{Linear, Expo, Real}

func (m Method) String() string {
	switch m {
	case Linear:
		return "linear"
	case Expo:
		return "expo"
	case Real:
		return "real"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// decayWindow is the paper's 7-day horizon after which linear/expo
// reservation schedules are empty.
const decayWindow = 7

// Extraction is a reservation schedule observed at time T, split into
// the ongoing-and-future reservations the application scheduler must
// work around and the past reservations used to estimate the historical
// average number of available processors.
type Extraction struct {
	// At is the observation (scheduling) time T.
	At model.Time
	// Procs is the machine size.
	Procs int
	// Future holds reservations still active at or starting after At.
	Future []profile.Reservation
	// Past holds tagged reservations that started before At (their
	// active-before-At parts inform the historical average).
	Past []profile.Reservation
}

// Profile builds the availability profile an application scheduler
// sees at time At.
func (e *Extraction) Profile() (*profile.Profile, error) {
	return profile.FromReservations(e.Procs, e.At, e.Future)
}

// HistWindow is the window used to estimate the historical average
// number of available processors: the 7 days preceding T.
const HistWindow = 7 * model.Day

// Extract tags a fraction phi of the log's jobs as advance
// reservations (uniformly at random), observes the resulting
// reservation schedule at time at, and reshapes its future part with
// the given decay method.
func Extract(lg *Log, phi float64, method Method, at model.Time, rng *rand.Rand) (*Extraction, error) {
	if phi <= 0 || phi > 1 {
		return nil, fmt.Errorf("workload: phi %v outside (0,1]", phi)
	}
	if len(lg.Jobs) == 0 {
		return nil, fmt.Errorf("workload: empty log")
	}
	first, last := lg.Span()
	if at < first || at >= last {
		return nil, fmt.Errorf("workload: observation time %d outside log span [%d,%d)", at, first, last)
	}

	ex := &Extraction{At: at, Procs: lg.Procs}
	var past, ongoing, future []Job
	for _, j := range lg.Jobs {
		if rng.Float64() >= phi || j.Run == 0 {
			continue
		}
		switch {
		case j.End() <= at:
			past = append(past, j)
		case j.Start() < at:
			ongoing = append(ongoing, j)
		default:
			future = append(future, j)
		}
	}
	for _, j := range past {
		ex.Past = append(ex.Past, profile.Reservation{Start: j.Start(), End: j.End(), Procs: j.Procs})
	}
	for _, j := range ongoing {
		// Ongoing reservations contribute to both views.
		ex.Past = append(ex.Past, profile.Reservation{Start: j.Start(), End: j.End(), Procs: j.Procs})
		ex.Future = append(ex.Future, profile.Reservation{Start: j.Start(), End: j.End(), Procs: j.Procs})
	}

	switch method {
	case Real:
		for _, j := range future {
			if j.Submit <= at {
				ex.Future = append(ex.Future, profile.Reservation{Start: j.Start(), End: j.End(), Procs: j.Procs})
			}
		}
	case Linear, Expo:
		if err := decayFuture(ex, past, future, method, rng); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("workload: unknown decay method %v", method)
	}
	sort.Slice(ex.Future, func(i, k int) bool { return ex.Future[i].Start < ex.Future[k].Start })
	sort.Slice(ex.Past, func(i, k int) bool { return ex.Past[i].Start < ex.Past[k].Start })
	return ex, nil
}

// decayFuture adds and removes future reservations so the per-day
// count over the 7 days after T follows the chosen decay profile, with
// nothing starting after T + 7 days. The base rate is the average
// number of tagged jobs starting per day during the 7 days before T.
func decayFuture(ex *Extraction, past, future []Job, method Method, rng *rand.Rand) error {
	at := ex.At
	// Base rate from the past week.
	baseCount := 0
	for _, j := range past {
		if j.Start() >= at-HistWindow {
			baseCount++
		}
	}
	base := float64(baseCount) / float64(decayWindow)
	if base == 0 {
		base = float64(len(future)) / float64(decayWindow) // sparse fallback
	}

	// Bucket future reservations by day after T.
	buckets := make([][]Job, decayWindow)
	for _, j := range future {
		d := int((j.Start() - at) / model.Day)
		if d >= decayWindow {
			continue // dropped: nothing beyond the window survives
		}
		buckets[d] = append(buckets[d], j)
	}

	// Build the occupancy profile of everything already kept (ongoing
	// reservations), so additions stay capacity-feasible.
	occ, err := profile.FromReservations(ex.Procs, at, ex.Future)
	if err != nil {
		return err
	}

	for d := 0; d < decayWindow; d++ {
		var target int
		frac := (float64(d) + 0.5) / float64(decayWindow)
		switch method {
		case Linear:
			target = int(math.Round(base * (1 - frac)))
		case Expo:
			// exp decay reaching ~5% at the end of the window.
			target = int(math.Round(base * math.Exp(-3*frac)))
		}
		jobs := buckets[d]
		// Shuffle so removals and keeps are unbiased.
		rng.Shuffle(len(jobs), func(i, k int) { jobs[i], jobs[k] = jobs[k], jobs[i] })
		if len(jobs) > target {
			jobs = jobs[:target]
		}
		for _, j := range jobs {
			r := profile.Reservation{Start: j.Start(), End: j.End(), Procs: j.Procs}
			if occ.MinFree(r.Start, r.End) < r.Procs {
				continue // conflicting after earlier edits; drop
			}
			if err := occ.Reserve(r.Start, r.End, r.Procs); err != nil {
				return err
			}
			ex.Future = append(ex.Future, r)
		}
		// Top up with clones of random past jobs placed inside this
		// day, if the log's own future is too sparse.
		for extra := target - len(jobs); extra > 0 && len(past) > 0; extra-- {
			src := past[rng.Intn(len(past))]
			dayStart := at + model.Time(d)*model.Day
			offset := model.Time(rng.Int63n(int64(model.Day)))
			start := occ.EarliestFit(src.Procs, src.Run, dayStart+offset)
			if start >= dayStart+model.Day+model.Day/2 {
				continue // no room anywhere near this day; skip
			}
			if err := occ.Reserve(start, start+src.Run, src.Procs); err != nil {
				return err
			}
			ex.Future = append(ex.Future, profile.Reservation{Start: start, End: start + src.Run, Procs: src.Procs})
		}
	}
	return nil
}

// StartTimes picks n observation times spread uniformly at random over
// the log's interior, leaving a HistWindow margin at the front (so a
// past week exists) and a decay window at the back.
func StartTimes(lg *Log, n int, rng *rand.Rand) ([]model.Time, error) {
	first, last := lg.Span()
	lo := first + HistWindow
	hi := last - decayWindow*model.Day
	if hi <= lo {
		return nil, fmt.Errorf("workload: log span [%d,%d) too short for observation times", first, last)
	}
	out := make([]model.Time, n)
	for i := range out {
		out[i] = lo + model.Time(rng.Int63n(int64(hi-lo)))
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out, nil
}
