package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"resched/internal/model"
)

// TestParseSWFNeverPanics feeds structured garbage to the parser; it
// must return an error or a (possibly empty) log, never panic.
func TestParseSWFNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tokens := []string{"-1", "0", "1", "9999999999", "abc", ";", "1.5", "", "\t"}
	for round := 0; round < 200; round++ {
		var b strings.Builder
		lines := rng.Intn(6)
		for l := 0; l < lines; l++ {
			fields := rng.Intn(22)
			for f := 0; f < fields; f++ {
				b.WriteString(tokens[rng.Intn(len(tokens))])
				b.WriteByte(' ')
			}
			b.WriteByte('\n')
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseSWF panicked on:\n%s\npanic: %v", b.String(), r)
				}
			}()
			_, _ = ParseSWF(strings.NewReader(b.String()), "fuzz")
		}()
	}
}

// TestParseSWFHeaderVariants checks MaxProcs header recognition.
func TestParseSWFHeaderVariants(t *testing.T) {
	cases := []struct {
		header string
		want   int
	}{
		{"; MaxProcs: 128", 128},
		{";MaxProcs: 64", 64},
		{"; Computer: foo MaxProcs: 32", 32},
		{"; MaxProcs: notanumber", 16}, // falls back to widest job
		{"; NothingUseful: 7", 16},
	}
	record := "1 0 0 100 16 -1 -1 16 100 -1 1 1 1 -1 1 -1 -1 -1\n"
	for _, c := range cases {
		lg, err := ParseSWF(strings.NewReader(c.header+"\n"+record), "h")
		if err != nil {
			t.Fatalf("header %q: %v", c.header, err)
		}
		if lg.Procs != c.want {
			t.Fatalf("header %q: Procs = %d, want %d", c.header, lg.Procs, c.want)
		}
	}
}

// TestParseSWFSortsBySubmit verifies out-of-order records are sorted.
func TestParseSWFSortsBySubmit(t *testing.T) {
	var b strings.Builder
	b.WriteString("; MaxProcs: 8\n")
	for _, submit := range []int{500, 100, 300} {
		fmt.Fprintf(&b, "1 %d 0 100 2 -1 -1 2 100 -1 1 1 1 -1 1 -1 -1 -1\n", submit)
	}
	lg, err := ParseSWF(strings.NewReader(b.String()), "s")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(lg.Jobs); i++ {
		if lg.Jobs[i].Submit < lg.Jobs[i-1].Submit {
			t.Fatalf("jobs not sorted by submit: %+v", lg.Jobs)
		}
	}
}

// TestExtractFragmentationStress builds a log of many tiny jobs and
// checks extraction stays feasible and fast enough to matter.
func TestExtractFragmentationStress(t *testing.T) {
	lg := &Log{Name: "tiny", Procs: 16}
	for i := 0; i < 4000; i++ {
		lg.Jobs = append(lg.Jobs, Job{
			ID:     i + 1,
			Submit: model.Time(i) * 600,
			Run:    590,
			Procs:  1 + i%3,
		})
	}
	if err := lg.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	at := model.Time(2200) * 600
	for _, method := range AllMethods {
		ex, err := Extract(lg, 0.5, method, at, rng)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if _, err := ex.Profile(); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
	}
}
