package workload

import (
	"math/rand"
	"testing"

	"resched/internal/batchsim"
)

func TestSynthesizeQueuedBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lg, err := SynthesizeQueued(SDSCDS, 14, batchsim.EASY, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Validate(); err != nil {
		t.Fatalf("queued log infeasible: %v", err)
	}
	if len(lg.Jobs) == 0 {
		t.Fatal("no jobs")
	}
	st, err := ComputeStats(lg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Utilization <= 0 || st.Utilization > 1 {
		t.Fatalf("utilization %v", st.Utilization)
	}
}

func TestSynthesizeQueuedRejectsReservationLogs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SynthesizeQueued(Grid5000, 10, batchsim.EASY, rng); err == nil {
		t.Fatal("reservation archetype accepted")
	}
	if _, err := SynthesizeQueued(SDSCDS, 0, batchsim.EASY, rng); err == nil {
		t.Fatal("zero days accepted")
	}
	bad := SDSCDS
	bad.Procs = 0
	if _, err := SynthesizeQueued(bad, 10, batchsim.EASY, rng); err == nil {
		t.Fatal("invalid archetype accepted")
	}
}

func TestSynthesizeQueuedProducesRealWaits(t *testing.T) {
	// On a loaded machine, the queued generator must produce clearly
	// larger waits than idealized FCFS packing — the motivation for
	// this generator (see Table 3's time-to-exec column).
	rng1 := rand.New(rand.NewSource(5))
	rng2 := rand.New(rand.NewSource(5))
	arch := CTCSP2
	packed, err := Synthesize(arch, 14, rng1)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := SynthesizeQueued(arch, 14, batchsim.EASY, rng2)
	if err != nil {
		t.Fatal(err)
	}
	meanWait := func(lg *Log) float64 {
		var sum float64
		for _, j := range lg.Jobs {
			sum += float64(j.Wait)
		}
		return sum / float64(len(lg.Jobs))
	}
	if meanWait(queued) <= meanWait(packed) {
		t.Fatalf("queued waits %.0f not above packed waits %.0f", meanWait(queued), meanWait(packed))
	}
}

func TestSynthesizeQueuedFeedsExtraction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	lg, err := SynthesizeQueued(SDSCDS, 21, batchsim.FCFS, rng)
	if err != nil {
		t.Fatal(err)
	}
	starts, err := StartTimes(lg, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Extract(lg, 0.2, Expo, starts[0], rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Profile(); err != nil {
		t.Fatal(err)
	}
}
