// Package workload provides the batch-workload substrate behind the
// paper's reservation model (Section 3.2): parsing and writing logs in
// the Standard Workload Format (SWF) used by the Parallel Workloads
// Archive, synthesizing statistically similar logs for the paper's four
// supercomputer traces and the Grid'5000 reservation trace (the real
// traces are not redistributable and this module builds offline — see
// DESIGN.md, Substitutions), and turning a log into a reservation
// schedule by tagging a fraction phi of jobs as reservations and
// applying the paper's linear / expo / real decay methods.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"resched/internal/model"
)

// Job is one batch job. Times follow SWF conventions: Submit is the
// submission time relative to the log start, Wait the queueing delay,
// Run the execution time, and Procs the number of allocated
// processors.
type Job struct {
	ID     int
	Submit model.Time
	Wait   model.Duration
	Run    model.Duration
	Procs  int
}

// Start returns the job's start time.
func (j Job) Start() model.Time { return j.Submit + j.Wait }

// End returns the job's (exclusive) end time.
func (j Job) End() model.Time { return j.Start() + j.Run }

// Log is a batch workload: a machine size and a list of jobs sorted by
// submission time.
type Log struct {
	Name  string
	Procs int
	Jobs  []Job
}

// Span returns the time range [first submit, last end) covered by the
// log.
func (l *Log) Span() (model.Time, model.Time) {
	if len(l.Jobs) == 0 {
		return 0, 0
	}
	first := l.Jobs[0].Submit
	var last model.Time
	for _, j := range l.Jobs {
		if j.Submit < first {
			first = j.Submit
		}
		if j.End() > last {
			last = j.End()
		}
	}
	return first, last
}

// Utilization returns the fraction of the machine's capacity consumed
// by the log's jobs over its span.
func (l *Log) Utilization() float64 {
	first, last := l.Span()
	if last <= first || l.Procs == 0 {
		return 0
	}
	var area float64
	for _, j := range l.Jobs {
		area += float64(j.Procs) * float64(j.Run)
	}
	return area / (float64(l.Procs) * float64(last-first))
}

// Validate checks that the log is internally consistent: jobs have
// positive sizes within the machine, non-negative times, and — the
// property the reservation extraction relies on — the jobs' concurrent
// processor usage never exceeds the machine size.
func (l *Log) Validate() error {
	if l.Procs < 1 {
		return fmt.Errorf("workload: machine size %d < 1", l.Procs)
	}
	type ev struct {
		t     model.Time
		delta int
	}
	evs := make([]ev, 0, 2*len(l.Jobs))
	for i, j := range l.Jobs {
		if j.Procs < 1 || j.Procs > l.Procs {
			return fmt.Errorf("workload: job %d uses %d of %d processors", i, j.Procs, l.Procs)
		}
		if j.Submit < 0 || j.Wait < 0 || j.Run < 0 {
			return fmt.Errorf("workload: job %d has negative time fields", i)
		}
		if j.Run == 0 {
			continue
		}
		evs = append(evs, ev{j.Start(), j.Procs}, ev{j.End(), -j.Procs})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].delta < evs[b].delta // releases before acquires
	})
	used := 0
	for _, e := range evs {
		used += e.delta
		if used > l.Procs {
			return fmt.Errorf("workload: %d processors in use at time %d on a %d-processor machine", used, e.t, l.Procs)
		}
	}
	return nil
}

// swfFields is the number of columns in a Standard Workload Format
// record.
const swfFields = 18

// ParseSWF reads a log in Standard Workload Format. Header comments
// (lines starting with ';') are honored for the MaxProcs field; jobs
// with unknown (-1) run time or processor count, or failed status, are
// skipped, mirroring how the paper's methodology uses the archive logs.
func ParseSWF(r io.Reader, name string) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	log := &Log{Name: name}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			if v, ok := headerInt(line, "MaxProcs:"); ok {
				log.Procs = v
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < swfFields {
			return nil, fmt.Errorf("workload: line %d: %d fields, want %d", lineNo, len(fields), swfFields)
		}
		vals := make([]int64, 5)
		for i := 0; i < 5; i++ {
			v, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("workload: line %d field %d: %v", lineNo, i+1, err)
			}
			vals[i] = v
		}
		status, err := strconv.ParseInt(fields[10], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d status: %v", lineNo, err)
		}
		job := Job{
			ID:     int(vals[0]),
			Submit: vals[1],
			Wait:   vals[2],
			Run:    vals[3],
			Procs:  int(vals[4]),
		}
		if job.Run < 0 || job.Procs < 1 || status == 0 || job.Wait < 0 {
			continue // cancelled / failed / incomplete record
		}
		log.Jobs = append(log.Jobs, job)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if log.Procs == 0 {
		// No MaxProcs header: infer from the widest job.
		for _, j := range log.Jobs {
			if j.Procs > log.Procs {
				log.Procs = j.Procs
			}
		}
	}
	sort.Slice(log.Jobs, func(i, k int) bool { return log.Jobs[i].Submit < log.Jobs[k].Submit })
	return log, nil
}

func headerInt(line, key string) (int, bool) {
	idx := strings.Index(line, key)
	if idx < 0 {
		return 0, false
	}
	rest := strings.TrimSpace(line[idx+len(key):])
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return 0, false
	}
	v, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0, false
	}
	return v, true
}

// WriteSWF writes the log in Standard Workload Format. Unknown fields
// are written as -1 per the SWF convention.
func (l *Log) WriteSWF(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; SWF log generated by resched\n")
	fmt.Fprintf(bw, "; Computer: %s\n", l.Name)
	fmt.Fprintf(bw, "; MaxProcs: %d\n", l.Procs)
	for _, j := range l.Jobs {
		// job submit wait run procs cpu mem reqProcs reqTime reqMem
		// status user group exe queue partition preceding thinkTime
		if _, err := fmt.Fprintf(bw, "%d %d %d %d %d -1 -1 %d %d -1 1 -1 -1 -1 -1 -1 -1 -1\n",
			j.ID, j.Submit, j.Wait, j.Run, j.Procs, j.Procs, j.Run); err != nil {
			return err
		}
	}
	return bw.Flush()
}
