package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"resched/internal/model"
)

func TestJobTimes(t *testing.T) {
	j := Job{Submit: 100, Wait: 50, Run: 200, Procs: 4}
	if j.Start() != 150 || j.End() != 350 {
		t.Fatalf("Start/End = %d/%d", j.Start(), j.End())
	}
}

func TestLogSpanAndUtilization(t *testing.T) {
	lg := &Log{Name: "x", Procs: 4, Jobs: []Job{
		{ID: 1, Submit: 0, Wait: 0, Run: 100, Procs: 2},
		{ID: 2, Submit: 50, Wait: 50, Run: 100, Procs: 2},
	}}
	first, last := lg.Span()
	if first != 0 || last != 200 {
		t.Fatalf("Span = [%d,%d)", first, last)
	}
	// 400 proc-seconds over 4*200 capacity.
	if got := lg.Utilization(); got != 0.5 {
		t.Fatalf("Utilization = %v", got)
	}
	if err := lg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLogValidateCatchesOvercommit(t *testing.T) {
	lg := &Log{Name: "x", Procs: 4, Jobs: []Job{
		{ID: 1, Submit: 0, Wait: 0, Run: 100, Procs: 3},
		{ID: 2, Submit: 0, Wait: 0, Run: 100, Procs: 3},
	}}
	if err := lg.Validate(); err == nil {
		t.Fatal("overcommitted log validated")
	}
	lg = &Log{Name: "x", Procs: 4, Jobs: []Job{{ID: 1, Submit: 0, Run: 100, Procs: 5}}}
	if err := lg.Validate(); err == nil {
		t.Fatal("oversized job validated")
	}
	lg = &Log{Name: "x", Procs: 4, Jobs: []Job{{ID: 1, Submit: -5, Run: 100, Procs: 1}}}
	if err := lg.Validate(); err == nil {
		t.Fatal("negative submit validated")
	}
	lg = &Log{Name: "x", Procs: 0}
	if err := lg.Validate(); err == nil {
		t.Fatal("zero-proc machine validated")
	}
}

func TestLogValidateBackToBack(t *testing.T) {
	// End-exclusive semantics: a job may start exactly when another
	// releases the processors.
	lg := &Log{Name: "x", Procs: 2, Jobs: []Job{
		{ID: 1, Submit: 0, Run: 100, Procs: 2},
		{ID: 2, Submit: 0, Wait: 100, Run: 100, Procs: 2},
	}}
	if err := lg.Validate(); err != nil {
		t.Fatalf("back-to-back jobs rejected: %v", err)
	}
}

const sampleSWF = `; Computer: TestMachine
; MaxProcs: 64
; UnixStartTime: 0
1 0 10 100 4 -1 -1 4 200 -1 1 1 1 -1 1 -1 -1 -1
2 50 0 300 8 -1 -1 8 400 -1 1 2 1 -1 1 -1 -1 -1
3 60 5 -1 4 -1 -1 4 100 -1 1 3 1 -1 1 -1 -1 -1
4 70 5 100 -1 -1 -1 4 100 -1 1 3 1 -1 1 -1 -1 -1
5 80 5 100 4 -1 -1 4 100 -1 0 3 1 -1 1 -1 -1 -1
`

func TestParseSWF(t *testing.T) {
	lg, err := ParseSWF(strings.NewReader(sampleSWF), "test")
	if err != nil {
		t.Fatal(err)
	}
	if lg.Procs != 64 {
		t.Fatalf("Procs = %d, want 64 from header", lg.Procs)
	}
	// Jobs 3 (unknown runtime), 4 (unknown procs), 5 (failed status)
	// are skipped.
	if len(lg.Jobs) != 2 {
		t.Fatalf("parsed %d jobs, want 2", len(lg.Jobs))
	}
	if lg.Jobs[0].ID != 1 || lg.Jobs[0].Wait != 10 || lg.Jobs[0].Run != 100 || lg.Jobs[0].Procs != 4 {
		t.Fatalf("job 1 = %+v", lg.Jobs[0])
	}
}

func TestParseSWFErrors(t *testing.T) {
	if _, err := ParseSWF(strings.NewReader("1 2 3\n"), "x"); err == nil {
		t.Fatal("short record accepted")
	}
	if _, err := ParseSWF(strings.NewReader("a 0 0 1 1 -1 -1 1 1 -1 1 1 1 -1 1 -1 -1 -1\n"), "x"); err == nil {
		t.Fatal("non-numeric field accepted")
	}
}

func TestParseSWFInfersMaxProcs(t *testing.T) {
	in := "1 0 0 100 16 -1 -1 16 100 -1 1 1 1 -1 1 -1 -1 -1\n"
	lg, err := ParseSWF(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if lg.Procs != 16 {
		t.Fatalf("inferred Procs = %d, want 16", lg.Procs)
	}
}

func TestSWFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig, err := Synthesize(OSCCluster, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteSWF(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseSWF(&buf, orig.Name)
	if err != nil {
		t.Fatal(err)
	}
	if back.Procs != orig.Procs || len(back.Jobs) != len(orig.Jobs) {
		t.Fatalf("round trip: %d procs %d jobs, want %d procs %d jobs",
			back.Procs, len(back.Jobs), orig.Procs, len(orig.Jobs))
	}
	for i := range orig.Jobs {
		if orig.Jobs[i] != back.Jobs[i] {
			t.Fatalf("job %d: %+v != %+v", i, orig.Jobs[i], back.Jobs[i])
		}
	}
}

func TestComputeStats(t *testing.T) {
	lg := &Log{Name: "x", Procs: 8, Jobs: []Job{
		{ID: 1, Submit: 0, Wait: model.Hour, Run: 2 * model.Hour, Procs: 2},
		{ID: 2, Submit: model.Hour, Wait: 3 * model.Hour, Run: 4 * model.Hour, Procs: 2},
	}}
	st, err := ComputeStats(lg)
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanRunHours != 3 {
		t.Fatalf("MeanRunHours = %v", st.MeanRunHours)
	}
	if st.MeanToExecH != 2 {
		t.Fatalf("MeanToExecH = %v", st.MeanToExecH)
	}
	if st.Jobs != 2 {
		t.Fatalf("Jobs = %d", st.Jobs)
	}
	if _, err := ComputeStats(&Log{Name: "empty", Procs: 1}); err == nil {
		t.Fatal("empty log accepted")
	}
}
