package workload

import (
	"fmt"

	"resched/internal/model"
	"resched/internal/profile"
	"resched/internal/stats"
)

// Stats are the per-log metrics of the paper's Table 3: average job
// execution time and average time between submission and start
// ("time to exec"), with coefficients of variation. Following the
// table's very low CV values (under 4%), the CVs are computed over
// weekly bucket means — the dispersion of the weekly averages, not of
// individual jobs (whose CV in any real log far exceeds 100%).
type Stats struct {
	Name         string
	MeanRunHours float64
	CVRunPct     float64
	MeanToExecH  float64
	CVToExecPct  float64
	Jobs         int
	Utilization  float64
}

// ComputeStats derives Table 3-style statistics from a log.
func ComputeStats(lg *Log) (Stats, error) {
	if len(lg.Jobs) == 0 {
		return Stats{}, fmt.Errorf("workload: empty log")
	}
	first, last := lg.Span()
	weeks := int((last-first)/model.Week) + 1
	runBuckets := make([][]float64, weeks)
	waitBuckets := make([][]float64, weeks)
	var runs, waits []float64
	for _, j := range lg.Jobs {
		w := int((j.Submit - first) / model.Week)
		r := float64(j.Run) / float64(model.Hour)
		wt := float64(j.Wait) / float64(model.Hour)
		runBuckets[w] = append(runBuckets[w], r)
		waitBuckets[w] = append(waitBuckets[w], wt)
		runs = append(runs, r)
		waits = append(waits, wt)
	}
	var runMeans, waitMeans []float64
	for w := 0; w < weeks; w++ {
		if len(runBuckets[w]) == 0 {
			continue
		}
		runMeans = append(runMeans, stats.Mean(runBuckets[w]))
		waitMeans = append(waitMeans, stats.Mean(waitBuckets[w]))
	}
	return Stats{
		Name:         lg.Name,
		MeanRunHours: stats.Mean(runs),
		CVRunPct:     stats.CV(runMeans),
		MeanToExecH:  stats.Mean(waits),
		CVToExecPct:  stats.CV(waitMeans),
		Jobs:         len(lg.Jobs),
		Utilization:  lg.Utilization(),
	}, nil
}

// ReservedSeries samples the number of reserved processors of a
// reservation set at the given period over [from, to), producing the
// time series used for the correlation analysis of Section 3.2.1.
func ReservedSeries(procs int, rs []profile.Reservation, from, to model.Time, period model.Duration) ([]float64, error) {
	if period <= 0 {
		return nil, fmt.Errorf("workload: period %d <= 0", period)
	}
	if to <= from {
		return nil, fmt.Errorf("workload: empty sampling window [%d,%d)", from, to)
	}
	prof, err := profile.FromReservations(procs, from, rs)
	if err != nil {
		return nil, err
	}
	var out []float64
	for t := from; t < to; t += period {
		out = append(out, float64(prof.ReservedAt(t)))
	}
	return out, nil
}
