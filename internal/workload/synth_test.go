package workload

import (
	"math"
	"math/rand"
	"testing"

	"resched/internal/profile"
)

func TestArchetypeValidation(t *testing.T) {
	for _, a := range append(append([]Archetype{}, BatchArchetypes...), Grid5000) {
		if err := a.Validate(); err != nil {
			t.Fatalf("built-in archetype %s invalid: %v", a.Name, err)
		}
	}
	bad := CTCSP2
	bad.Procs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero-proc archetype validated")
	}
	bad = CTCSP2
	bad.TargetUtil = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("util > 1 validated")
	}
	bad = CTCSP2
	bad.MaxJobProcs = 9999
	if err := bad.Validate(); err == nil {
		t.Fatal("max width > machine validated")
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("SDSC_BLUE")
	if err != nil || a.Procs != 1152 {
		t.Fatalf("ByName(SDSC_BLUE) = %+v, %v", a, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown archetype accepted")
	}
}

func TestSynthesizeFeasibleAndDeterministic(t *testing.T) {
	a := SDSCDS
	lg1, err := Synthesize(a, 14, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if err := lg1.Validate(); err != nil {
		t.Fatalf("synthetic log infeasible: %v", err)
	}
	lg2, err := Synthesize(a, 14, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(lg1.Jobs) != len(lg2.Jobs) {
		t.Fatalf("nondeterministic synthesis: %d vs %d jobs", len(lg1.Jobs), len(lg2.Jobs))
	}
	for i := range lg1.Jobs {
		if lg1.Jobs[i] != lg2.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestSynthesizeHitsTargetUtilization(t *testing.T) {
	for _, a := range []Archetype{OSCCluster, SDSCDS} {
		lg, err := Synthesize(a, 30, rand.New(rand.NewSource(7)))
		if err != nil {
			t.Fatal(err)
		}
		got := lg.Utilization()
		if math.Abs(got-a.TargetUtil) > 0.15 {
			t.Fatalf("%s: utilization %.3f, target %.3f (tolerance 0.15)", a.Name, got, a.TargetUtil)
		}
	}
}

func TestSynthesizeRunTimesTrackMean(t *testing.T) {
	a := Grid5000
	lg, err := Synthesize(a, 30, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, j := range lg.Jobs {
		sum += float64(j.Run)
	}
	mean := sum / float64(len(lg.Jobs))
	// Lognormal clamping biases the mean down somewhat; accept 2x band.
	if mean < float64(a.MeanRun)/2 || mean > float64(a.MeanRun)*2 {
		t.Fatalf("mean run %.0fs far from target %ds", mean, a.MeanRun)
	}
}

func TestSynthesizeReservationLogHasLead(t *testing.T) {
	lg, err := Synthesize(Grid5000, 20, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	var withLead int
	for _, j := range lg.Jobs {
		if j.Wait > 0 {
			withLead++
		}
	}
	if frac := float64(withLead) / float64(len(lg.Jobs)); frac < 0.9 {
		t.Fatalf("only %.0f%% of reservation jobs booked in advance", 100*frac)
	}
	var sumWait float64
	for _, j := range lg.Jobs {
		sumWait += float64(j.Wait)
	}
	meanWait := sumWait / float64(len(lg.Jobs))
	if meanWait < float64(Grid5000.MeanLead)/2 {
		t.Fatalf("mean lead %.0fs far below target %ds", meanWait, Grid5000.MeanLead)
	}
}

func TestSynthesizeErrors(t *testing.T) {
	if _, err := Synthesize(CTCSP2, 0, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("zero days accepted")
	}
	bad := CTCSP2
	bad.SigmaRun = -1
	if _, err := Synthesize(bad, 10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("invalid archetype accepted")
	}
}

func TestSynthesizeJobFieldsInRange(t *testing.T) {
	lg, err := Synthesize(CTCSP2, 10, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range lg.Jobs {
		if j.Procs < 1 || j.Procs > CTCSP2.MaxJobProcs {
			t.Fatalf("job width %d outside [1,%d]", j.Procs, CTCSP2.MaxJobProcs)
		}
		if j.Run < minRun || j.Run > maxRun {
			t.Fatalf("job run %d outside [%d,%d]", j.Run, minRun, maxRun)
		}
		if j.Wait < 0 {
			t.Fatalf("negative wait %d", j.Wait)
		}
	}
}

func TestExpectedJobProcsMatchesEmpirical(t *testing.T) {
	a := SDSCDS
	rng := rand.New(rand.NewSource(13))
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(a.drawProcs(rng))
	}
	emp := sum / n
	ana := a.expectedJobProcs()
	if math.Abs(emp-ana)/ana > 0.1 {
		t.Fatalf("empirical mean width %.2f vs analytical %.2f", emp, ana)
	}
}

func TestReservedSeries(t *testing.T) {
	rs := []profile.Reservation{{Start: 0, End: 100, Procs: 2}, {Start: 50, End: 150, Procs: 3}}
	series, err := ReservedSeries(8, rs, 0, 200, 50)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 5, 3, 0}
	for i := range want {
		if series[i] != want[i] {
			t.Fatalf("series = %v, want %v", series, want)
		}
	}
	if _, err := ReservedSeries(8, nil, 0, 100, 0); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := ReservedSeries(8, nil, 100, 100, 10); err == nil {
		t.Fatal("empty window accepted")
	}
}
