package workload

import (
	"math/rand"
	"testing"

	"resched/internal/model"
)

// testLog synthesizes a modest log once for the extraction tests.
func testLog(t *testing.T, a Archetype, days int, seed int64) *Log {
	t.Helper()
	lg, err := Synthesize(a, days, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return lg
}

func TestMethodString(t *testing.T) {
	if Linear.String() != "linear" || Expo.String() != "expo" || Real.String() != "real" {
		t.Fatal("Method.String broken")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method must stringify")
	}
	if len(AllMethods) != 3 {
		t.Fatal("AllMethods incomplete")
	}
}

func TestExtractErrors(t *testing.T) {
	lg := testLog(t, SDSCDS, 21, 1)
	rng := rand.New(rand.NewSource(2))
	at := model.Time(10 * model.Day)
	if _, err := Extract(lg, 0, Linear, at, rng); err == nil {
		t.Fatal("phi=0 accepted")
	}
	if _, err := Extract(lg, 1.5, Linear, at, rng); err == nil {
		t.Fatal("phi>1 accepted")
	}
	if _, err := Extract(lg, 0.2, Linear, -5, rng); err == nil {
		t.Fatal("time before log accepted")
	}
	if _, err := Extract(lg, 0.2, Method(9), at, rng); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := Extract(&Log{Name: "e", Procs: 4}, 0.2, Linear, 0, rng); err == nil {
		t.Fatal("empty log accepted")
	}
}

func TestExtractAllMethodsFeasible(t *testing.T) {
	lg := testLog(t, SDSCDS, 21, 3)
	for _, method := range AllMethods {
		for _, phi := range []float64{0.1, 0.2, 0.5} {
			rng := rand.New(rand.NewSource(17))
			at := model.Time(10 * model.Day)
			ex, err := Extract(lg, phi, method, at, rng)
			if err != nil {
				t.Fatalf("%v phi=%v: %v", method, phi, err)
			}
			if ex.Procs != lg.Procs || ex.At != at {
				t.Fatalf("%v: extraction header %+v", method, ex)
			}
			// The future reservations must form a feasible profile.
			prof, err := ex.Profile()
			if err != nil {
				t.Fatalf("%v phi=%v: future set infeasible: %v", method, phi, err)
			}
			if prof.Capacity() != lg.Procs {
				t.Fatalf("profile capacity %d", prof.Capacity())
			}
			for _, r := range ex.Future {
				if r.End <= ex.At {
					t.Fatalf("%v: past reservation in future set: %+v", method, r)
				}
			}
			for _, r := range ex.Past {
				if r.Start >= ex.At {
					t.Fatalf("%v: future reservation in past set: %+v", method, r)
				}
			}
		}
	}
}

func TestExtractRealKeepsOnlySubmittedBefore(t *testing.T) {
	lg := testLog(t, SDSCDS, 21, 5)
	at := model.Time(10 * model.Day)
	rng := rand.New(rand.NewSource(23))
	ex, err := Extract(lg, 0.5, Real, at, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every future reservation must trace back to a job submitted at or
	// before `at` — verify by matching intervals against the log.
	type key struct {
		start, end model.Time
		procs      int
	}
	submitted := map[key][]model.Time{}
	for _, j := range lg.Jobs {
		submitted[key{j.Start(), j.End(), j.Procs}] = append(submitted[key{j.Start(), j.End(), j.Procs}], j.Submit)
	}
	for _, r := range ex.Future {
		if r.Start < at {
			continue // ongoing reservation, started before at
		}
		subs, ok := submitted[key{r.Start, r.End, r.Procs}]
		if !ok {
			t.Fatalf("future reservation %+v not in the log", r)
		}
		early := false
		for _, s := range subs {
			if s <= at {
				early = true
			}
		}
		if !early {
			t.Fatalf("reservation %+v only matches jobs submitted after %d", r, at)
		}
	}
}

func TestExtractDecayEmptiesAfterWindow(t *testing.T) {
	lg := testLog(t, SDSCDS, 28, 7)
	at := model.Time(10 * model.Day)
	for _, method := range []Method{Linear, Expo} {
		rng := rand.New(rand.NewSource(31))
		ex, err := Extract(lg, 0.5, method, at, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range ex.Future {
			if r.Start >= at+7*model.Day {
				t.Fatalf("%v: reservation starts at %d, beyond the 7-day window (at=%d)", method, r.Start, at)
			}
		}
	}
}

func TestExtractDecayDecreases(t *testing.T) {
	// Averaged over several taggings, the first day must carry more
	// reservations than the last day of the window.
	lg := testLog(t, SDSCDS, 28, 9)
	at := model.Time(12 * model.Day)
	for _, method := range []Method{Linear, Expo} {
		firstDays, lastDays := 0, 0
		for seed := int64(0); seed < 8; seed++ {
			ex, err := Extract(lg, 0.5, method, at, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range ex.Future {
				if r.Start < at {
					continue
				}
				d := int((r.Start - at) / model.Day)
				switch {
				case d <= 1:
					firstDays++
				case d >= 5:
					lastDays++
				}
			}
		}
		if firstDays <= lastDays {
			t.Fatalf("%v: %d reservations in days 0-1 vs %d in days 5-6; expected decay", method, firstDays, lastDays)
		}
	}
}

func TestExtractPhiScalesCount(t *testing.T) {
	lg := testLog(t, SDSCDS, 21, 13)
	at := model.Time(10 * model.Day)
	count := func(phi float64) int {
		total := 0
		for seed := int64(0); seed < 5; seed++ {
			ex, err := Extract(lg, phi, Real, at, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatal(err)
			}
			total += len(ex.Future) + len(ex.Past)
		}
		return total
	}
	if c1, c5 := count(0.1), count(0.5); c5 <= c1 {
		t.Fatalf("phi=0.5 produced %d reservations vs %d at phi=0.1", c5, c1)
	}
}

func TestStartTimes(t *testing.T) {
	lg := testLog(t, SDSCDS, 28, 15)
	rng := rand.New(rand.NewSource(1))
	ts, err := StartTimes(lg, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 10 {
		t.Fatalf("got %d start times", len(ts))
	}
	first, last := lg.Span()
	for i, tt := range ts {
		if tt < first+HistWindow || tt > last-7*model.Day {
			t.Fatalf("start time %d out of safe range", tt)
		}
		if i > 0 && ts[i-1] > tt {
			t.Fatal("start times not sorted")
		}
	}
	short := &Log{Name: "s", Procs: 4, Jobs: []Job{{ID: 1, Submit: 0, Run: 100, Procs: 1}}}
	if _, err := StartTimes(short, 3, rng); err == nil {
		t.Fatal("short log accepted")
	}
}

func TestExtractGrid5000Schedule(t *testing.T) {
	// The Grid'5000 usage in the paper: extract reservation schedules
	// directly from the reservation log at random times, with phi = 1
	// and the real method (every job is a reservation).
	lg := testLog(t, Grid5000, 21, 17)
	at := model.Time(10 * model.Day)
	ex, err := Extract(lg, 1, Real, at, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Future) == 0 {
		t.Fatal("no future reservations in a dense reservation log")
	}
	if _, err := ex.Profile(); err != nil {
		t.Fatal(err)
	}
}
