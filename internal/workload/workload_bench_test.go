package workload

import (
	"fmt"
	"math/rand"
	"testing"

	"resched/internal/batchsim"
	"resched/internal/model"
)

// BenchmarkSynthesize measures log generation cost per archetype —
// the one-time setup cost every experiment pays per log.
func BenchmarkSynthesize(b *testing.B) {
	for _, a := range []Archetype{SDSCDS, SDSCBlue} {
		b.Run(a.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Synthesize(a, 30, rand.New(rand.NewSource(1))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("SDSC_DS/queued-EASY", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := SynthesizeQueued(SDSCDS, 14, batchsim.EASY, rand.New(rand.NewSource(1))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtract measures reservation-schedule extraction per decay
// method, the per-instance cost of the experiment harness.
func BenchmarkExtract(b *testing.B) {
	lg, err := Synthesize(SDSCDS, 30, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	at := model.Time(14 * model.Day)
	for _, m := range AllMethods {
		b.Run(fmt.Sprintf("%v", m), func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			for i := 0; i < b.N; i++ {
				if _, err := Extract(lg, 0.2, m, at, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
