package workload

import (
	"fmt"
	"math"
	"math/rand"

	"resched/internal/model"
	"resched/internal/profile"
)

// Archetype describes a synthetic workload calibrated to one of the
// paper's traces (Tables 2 and 3). Jobs arrive as a Poisson process
// with a daily cycle; runtimes are lognormal; widths are biased toward
// powers of two, as in the archive logs. Start times come from FCFS
// packing against the machine's availability, which guarantees the log
// is capacity-feasible — the property reservation extraction needs.
type Archetype struct {
	Name string
	// Procs is the machine size (#CPUs column of Table 2).
	Procs int
	// TargetUtil is the offered load as a fraction of capacity (the
	// Avg. Utilization column of Table 2). Achieved utilization tracks
	// it approximately.
	TargetUtil float64
	// MeanRun is the mean job execution time (Table 3).
	MeanRun model.Duration
	// SigmaRun is the lognormal shape parameter of runtimes.
	SigmaRun float64
	// MaxJobProcs caps individual job widths.
	MaxJobProcs int
	// MeanLead, when positive, marks a reservation-style log
	// (Grid'5000): jobs book MeanLead in advance on average, and start
	// no earlier than their booked time.
	MeanLead model.Duration
}

// The four batch logs of Table 2 plus the Grid'5000 reservation log of
// Table 3, with machine sizes and utilizations from Table 2 and mean
// execution / lead times from Table 3.
var (
	CTCSP2     = Archetype{Name: "CTC_SP2", Procs: 430, TargetUtil: 0.658, MeanRun: model.Duration(3.20 * float64(model.Hour)), SigmaRun: 1.5, MaxJobProcs: 128}
	OSCCluster = Archetype{Name: "OSC_Cluster", Procs: 57, TargetUtil: 0.385, MeanRun: model.Duration(9.33 * float64(model.Hour)), SigmaRun: 1.4, MaxJobProcs: 32}
	SDSCBlue   = Archetype{Name: "SDSC_BLUE", Procs: 1152, TargetUtil: 0.757, MeanRun: model.Duration(1.18 * float64(model.Hour)), SigmaRun: 1.5, MaxJobProcs: 512}
	SDSCDS     = Archetype{Name: "SDSC_DS", Procs: 224, TargetUtil: 0.273, MeanRun: model.Duration(1.52 * float64(model.Hour)), SigmaRun: 1.5, MaxJobProcs: 64}
	Grid5000   = Archetype{Name: "Grid5000", Procs: 256, TargetUtil: 0.45, MeanRun: model.Duration(1.84 * float64(model.Hour)), SigmaRun: 1.4, MaxJobProcs: 64, MeanLead: model.Duration(3.24 * float64(model.Hour))}
)

// BatchArchetypes lists the four Table 2 logs in paper order.
var BatchArchetypes = []Archetype{CTCSP2, OSCCluster, SDSCBlue, SDSCDS}

// ByName returns the archetype with the given name (case-sensitive).
func ByName(name string) (Archetype, error) {
	for _, a := range append(append([]Archetype{}, BatchArchetypes...), Grid5000) {
		if a.Name == name {
			return a, nil
		}
	}
	return Archetype{}, fmt.Errorf("workload: unknown archetype %q", name)
}

// Validate checks the archetype parameters.
func (a Archetype) Validate() error {
	switch {
	case a.Procs < 1:
		return fmt.Errorf("workload: archetype %q: machine size %d < 1", a.Name, a.Procs)
	case a.TargetUtil <= 0 || a.TargetUtil >= 1:
		return fmt.Errorf("workload: archetype %q: utilization %v outside (0,1)", a.Name, a.TargetUtil)
	case a.MeanRun < model.Minute:
		return fmt.Errorf("workload: archetype %q: mean run %d too small", a.Name, a.MeanRun)
	case a.SigmaRun <= 0 || a.SigmaRun > 3:
		return fmt.Errorf("workload: archetype %q: sigma %v outside (0,3]", a.Name, a.SigmaRun)
	case a.MaxJobProcs < 1 || a.MaxJobProcs > a.Procs:
		return fmt.Errorf("workload: archetype %q: max job width %d outside [1,%d]", a.Name, a.MaxJobProcs, a.Procs)
	case a.MeanLead < 0:
		return fmt.Errorf("workload: archetype %q: negative mean lead", a.Name)
	}
	return nil
}

// minRun and maxRun clamp synthetic job runtimes.
const (
	minRun model.Duration = model.Minute
	maxRun model.Duration = 3 * model.Day
)

// Synthesize generates a log of the given length. Deterministic for a
// given (archetype, days, rng state).
func Synthesize(a Archetype, days int, rng *rand.Rand) (*Log, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if days < 1 {
		return nil, fmt.Errorf("workload: log length %d days < 1", days)
	}
	horizon := model.Time(days) * model.Day

	// Expected per-job resource demand, for calibrating the arrival
	// rate to the target utilization. Estimated empirically from a
	// fixed-seed pilot sample so runtime clamping and width truncation
	// are accounted for.
	demand := a.expectedJobDemand()
	baseRate := a.TargetUtil * float64(a.Procs) / demand // jobs per second

	lg := &Log{Name: a.Name, Procs: a.Procs}
	machine := profile.New(a.Procs, 0)
	var t model.Time
	id := 1
	for {
		// Non-homogeneous Poisson arrivals via thinning: candidate
		// arrivals at 1.5x the base rate, accepted with probability
		// cycle/1.5 where the daily cycle modulates the rate by 1±0.5,
		// preserving the base rate on average.
		gap := model.Duration(rng.ExpFloat64() / (1.5 * baseRate))
		if gap < 1 {
			gap = 1
		}
		t += gap
		if t >= horizon {
			break
		}
		cycle := 1 + 0.5*sinDaily(t)
		if rng.Float64() > cycle/1.5 {
			continue // thinned out
		}
		job := Job{
			ID:     id,
			Submit: t,
			Run:    a.drawRun(rng),
			Procs:  a.drawProcs(rng),
		}
		earliest := job.Submit
		if a.MeanLead > 0 {
			earliest += model.Duration(rng.ExpFloat64() * float64(a.MeanLead))
		}
		start := machine.EarliestFit(job.Procs, job.Run, earliest)
		if err := machine.Reserve(start, start+job.Run, job.Procs); err != nil {
			return nil, fmt.Errorf("workload: packing job %d: %w", id, err)
		}
		job.Wait = start - job.Submit
		lg.Jobs = append(lg.Jobs, job)
		id++
	}
	if len(lg.Jobs) == 0 {
		return nil, fmt.Errorf("workload: archetype %q produced no jobs in %d days", a.Name, days)
	}
	return lg, nil
}

// drawRun draws a lognormal runtime with mean MeanRun, clamped to
// [minRun, maxRun].
func (a Archetype) drawRun(rng *rand.Rand) model.Duration {
	mu := math.Log(float64(a.MeanRun)) - a.SigmaRun*a.SigmaRun/2
	r := model.Duration(math.Exp(mu + a.SigmaRun*rng.NormFloat64()))
	if r < minRun {
		r = minRun
	}
	if r > maxRun {
		r = maxRun
	}
	return r
}

// drawProcs draws a job width biased toward powers of two, as observed
// throughout the Parallel Workloads Archive.
func (a Archetype) drawProcs(rng *rand.Rand) int {
	var procs int
	if rng.Float64() < 0.75 {
		// Power of two: 2^k with geometrically decaying k.
		k := 0
		for rng.Float64() < 0.55 && (1<<(k+1)) <= a.MaxJobProcs {
			k++
		}
		procs = 1 << k
	} else {
		procs = rng.Intn(a.MaxJobProcs) + 1
	}
	if procs > a.MaxJobProcs {
		procs = a.MaxJobProcs
	}
	return procs
}

// expectedJobProcs estimates the mean job width of drawProcs
// analytically (used by tests as a cross-check of the sampler).
func (a Archetype) expectedJobProcs() float64 {
	// Power-of-two branch: E[2^k], k geometric(p=0.55) truncated.
	var e2 float64
	p := 1.0
	for k := 0; (1 << k) <= a.MaxJobProcs; k++ {
		cont := 0.55
		if (1 << (k + 1)) > a.MaxJobProcs {
			cont = 0
		}
		e2 += p * (1 - cont) * float64(int(1)<<k)
		p *= 0.55
	}
	uniform := float64(a.MaxJobProcs+1) / 2
	return 0.75*e2 + 0.25*uniform
}

// expectedJobDemand estimates the mean processor-seconds per job by
// drawing a fixed-seed pilot sample through the same samplers used for
// generation, so clamping effects are priced in. Deterministic.
func (a Archetype) expectedJobDemand() float64 {
	pilot := rand.New(rand.NewSource(1))
	const n = 20000
	var runSum, procSum float64
	for i := 0; i < n; i++ {
		runSum += float64(a.drawRun(pilot))
		procSum += float64(a.drawProcs(pilot))
	}
	return (runSum / n) * (procSum / n)
}
