package resbook

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"resched/internal/model"
)

// BenchmarkShardedCommit measures the serving cycle — snapshot,
// compute a placement on the snapshot, commit, release — under
// concurrent committers as the shard count grows. The workload is
// fixed: committers round-robin over eight disjoint day-long windows
// while the epoch length is scaled so those windows spread evenly
// over however many shards the book has. With one shard every commit
// revalidates against every other committer's stamp, so commits that
// raced anywhere in the horizon go stale and their computation is
// thrown away and redone; with eight shards the disjoint windows live
// in disjoint shards and no commit conflicts. The stale-retries/op
// metric exposes the wasted recomputation directly; ns/op absorbs it.
// (On a single-core host the gain is exactly that reclaimed work —
// lock-level parallelism needs real cores to show up in wall clock.)
func BenchmarkShardedCommit(b *testing.B) {
	const (
		windows  = 8
		capacity = 256
		procs    = 4
	)
	for _, nshards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", nshards), func(b *testing.B) {
			// Epoch sized so the 8 benchmark windows cover the shards
			// evenly: window w lands in shard w*nshards/8.
			epoch := model.Duration(windows) * model.Day / model.Duration(nshards)
			if nshards == 1 {
				epoch = 0
			}
			book, err := NewSharded(capacity, 0, nshards, epoch)
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Int64
			var stale atomic.Int64
			b.SetParallelism(windows) // windows·GOMAXPROCS committers
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := next.Add(1) - 1
				base := model.Time(w%windows) * model.Day
				for pb.Next() {
					for {
						snap := book.Snapshot()
						// The scheduling computation this commit
						// protects: find a slot inside the window.
						st, err := snap.Avail.EarliestFitChecked(procs, model.Hour, base)
						if err != nil {
							b.Fatal(err)
						}
						if free := snap.Avail.MinFree(st, st+model.Hour); free < procs {
							b.Fatalf("fit at %d has %d free", st, free)
						}
						// A real RESSCHED computation runs long enough
						// to be preempted between snapshot and commit;
						// yield here so that interleaving happens at
						// any core count instead of only when the
						// 10ms preemption timer lands inside a cycle.
						runtime.Gosched()
						out, err := book.Commit(snap, []Request{
							{Start: st, End: st + model.Hour, Procs: procs},
						})
						if err == nil {
							if err := book.Release(out[0].ID); err != nil {
								b.Fatal(err)
							}
							break
						}
						if !errors.Is(err, ErrStale) {
							b.Fatal(err)
						}
						stale.Add(1)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(stale.Load())/float64(b.N), "stale-retries/op")
		})
	}
}
