package resbook

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"resched/internal/model"
)

// TestPersistentBookMatchesFlatOracle drives identical seeded op
// sequences — Reserve, Commit-through-Transact, Activate, Release —
// through a persistent-backend book and the flat-oracle book, and
// requires the rendered snapshot, version, and invariants to agree
// after every operation. The two backends share the ID counter
// behavior, so rows correspond one-to-one.
func TestPersistentBookMatchesFlatOracle(t *testing.T) {
	const capacity = 48
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 7919))
			nshards := 1 + rng.Intn(8)
			epoch := model.Duration(model.Hour)
			pers, err := NewSharded(capacity, 0, nshards, epoch)
			if err != nil {
				t.Fatal(err)
			}
			flat, err := NewShardedFlat(capacity, 0, nshards, epoch)
			if err != nil {
				t.Fatal(err)
			}
			if !pers.Persistent() || flat.Persistent() {
				t.Fatal("backend selection broken")
			}

			var live []string
			horizon := int64(nshards) * int64(epoch) * 2
			for step := 0; step < 250; step++ {
				start := model.Time(rng.Int63n(horizon))
				end := start + 1 + model.Duration(rng.Int63n(int64(epoch)))
				procs := 1 + rng.Intn(capacity)

				switch op := rng.Intn(6); {
				case op <= 2: // Reserve
					rp, errP := pers.Reserve(start, end, procs)
					rf, errF := flat.Reserve(start, end, procs)
					if (errP == nil) != (errF == nil) {
						t.Fatalf("step %d: Reserve persistent err=%v, flat err=%v", step, errP, errF)
					}
					if errP != nil {
						if errP.Error() != errF.Error() {
							t.Fatalf("step %d: Reserve errors diverged\npersistent: %v\nflat:       %v", step, errP, errF)
						}
						break
					}
					if rp.ID != rf.ID {
						t.Fatalf("step %d: IDs diverged: %s vs %s", step, rp.ID, rf.ID)
					}
					live = append(live, rp.ID)
				case op == 3: // Commit through Transact (validates stamps too)
					req := Request{Start: start, End: end, Procs: procs}
					outP, _, errP := pers.Transact(context.Background(), 1, func(Snapshot) ([]Request, error) {
						return []Request{req}, nil
					})
					outF, _, errF := flat.Transact(context.Background(), 1, func(Snapshot) ([]Request, error) {
						return []Request{req}, nil
					})
					if (errP == nil) != (errF == nil) {
						t.Fatalf("step %d: Transact persistent err=%v, flat err=%v", step, errP, errF)
					}
					if errP == nil {
						if outP[0].ID != outF[0].ID {
							t.Fatalf("step %d: Transact IDs diverged", step)
						}
						live = append(live, outP[0].ID)
					}
				case op == 4 && len(live) > 0: // Release
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					errP := pers.Release(id)
					errF := flat.Release(id)
					if (errP == nil) != (errF == nil) {
						t.Fatalf("step %d: Release(%s) persistent err=%v, flat err=%v", step, id, errP, errF)
					}
				case op == 5 && len(live) > 0: // Activate
					id := live[rng.Intn(len(live))]
					errP := pers.Activate(id)
					errF := flat.Activate(id)
					if (errP == nil) != (errF == nil) {
						t.Fatalf("step %d: Activate(%s) persistent err=%v, flat err=%v", step, id, errP, errF)
					}
				}

				sp := pers.Snapshot()
				sf := flat.Snapshot()
				if sp.Version != sf.Version {
					t.Fatalf("step %d: versions diverged: %d vs %d", step, sp.Version, sf.Version)
				}
				if sp.Avail.String() != sf.Avail.String() {
					t.Fatalf("step %d: snapshots diverged\n  persistent %s\n  flat       %s",
						step, sp.Avail.String(), sf.Avail.String())
				}
				if err := sp.Avail.Check(); err != nil {
					t.Fatalf("step %d: persistent snapshot invariants: %v", step, err)
				}
			}
			if err := pers.CheckInvariants(); err != nil {
				t.Fatalf("persistent book invariants: %v", err)
			}
			if err := flat.CheckInvariants(); err != nil {
				t.Fatalf("flat book invariants: %v", err)
			}

			// Ledgers agree row for row.
			lp, lf := pers.List(), flat.List()
			if len(lp) != len(lf) {
				t.Fatalf("ledger lengths diverged: %d vs %d", len(lp), len(lf))
			}
			sort.Slice(lp, func(i, j int) bool { return lp[i].ID < lp[j].ID })
			sort.Slice(lf, func(i, j int) bool { return lf[i].ID < lf[j].ID })
			for i := range lp {
				if lp[i] != lf[i] {
					t.Fatalf("ledger row %d diverged: %+v vs %+v", i, lp[i], lf[i])
				}
			}
		})
	}
}

// TestSnapshotIsolationUnderConcurrentCommits is the -race stress for
// the tentpole property: a snapshot handle taken before a storm of
// concurrent commits and releases keeps rendering — and answering
// queries on — exactly the schedule it was taken at. Writers path-copy
// fresh shard roots; the frozen roots the snapshot pinned are never
// written.
func TestSnapshotIsolationUnderConcurrentCommits(t *testing.T) {
	const (
		capacity = 64
		nshards  = 8
		writers  = 4
		readers  = 4
		iters    = 150
	)
	book, err := NewSharded(capacity, 0, nshards, model.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// Enough booked reservations that the snapshot is a tree handle,
	// not a small-R flat materialization.
	for i := 0; i < 400; i++ {
		start := model.Time(i) * 37
		if _, err := book.Reserve(start, start+200, 1+i%3); err != nil {
			t.Fatal(err)
		}
	}

	snap := book.Snapshot()
	frozen := snap.Avail.String()
	frozenFit, err := snap.Avail.EarliestFitChecked(capacity/2, 500, 0)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < iters; i++ {
				// Mostly shard-local windows, with occasional spans to
				// exercise multi-shard commits.
				base := int64(w) * int64(model.Hour)
				if rng.Intn(5) == 0 {
					base = rng.Int63n(int64(nshards-1) * int64(model.Hour))
				}
				start := model.Time(base + rng.Int63n(int64(model.Hour)))
				end := start + 1 + model.Duration(rng.Int63n(int64(model.Hour)))
				out, _, err := book.Transact(context.Background(), 100, func(s Snapshot) ([]Request, error) {
					if s.Avail.MinFree(start, end) < 1 {
						return nil, nil // full here; just validate the fence
					}
					return []Request{{Start: start, End: end, Procs: 1}}, nil
				})
				if err != nil {
					errs <- fmt.Errorf("writer %d iter %d: %v", w, i, err)
					return
				}
				if len(out) > 0 && rng.Intn(2) == 0 {
					if err := book.Release(out[0].ID); err != nil {
						errs <- fmt.Errorf("writer %d release: %v", w, err)
						return
					}
				}
			}
		}()
	}
	for r := 0; r < readers; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if got := snap.Avail.String(); got != frozen {
					errs <- fmt.Errorf("reader %d iter %d: snapshot observed post-commit mutation:\n  was %s\n  now %s", r, i, frozen, got)
					return
				}
				fit, err := snap.Avail.EarliestFitChecked(capacity/2, 500, 0)
				if err != nil || fit != frozenFit {
					errs <- fmt.Errorf("reader %d iter %d: frozen fit drifted: (%d,%v) != %d", r, i, fit, err, frozenFit)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := snap.Avail.String(); got != frozen {
		t.Errorf("snapshot mutated after the storm:\n  was %s\n  now %s", frozen, got)
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatalf("book invariants after storm: %v", err)
	}
}

// TestSnapshotHandleStagingIsPrivate checks the serving-path use of a
// persistent snapshot: staging trial reservations on the handle (as
// the batch and coalesced paths do) never leaks into the live book or
// into other snapshots.
func TestSnapshotHandleStagingIsPrivate(t *testing.T) {
	book, err := NewSharded(32, 0, 4, model.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		start := model.Time(i) * 29
		if _, err := book.Reserve(start, start+120, 1); err != nil {
			t.Fatal(err)
		}
	}
	before := book.Snapshot()
	ref := before.Avail.String()

	work := book.Snapshot()
	if err := work.Avail.Reserve(10, 500, 8); err != nil {
		t.Fatal(err)
	}
	if err := work.Avail.Reserve(3600, 4000, 16); err != nil {
		t.Fatal(err)
	}

	if got := book.Snapshot().Avail.String(); got != ref {
		t.Fatalf("staging on a snapshot handle mutated the book:\n  was %s\n  now %s", ref, got)
	}
	if got := before.Avail.String(); got != ref {
		t.Fatalf("staging on one handle mutated another:\n  was %s\n  now %s", ref, got)
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
