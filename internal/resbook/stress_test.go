package resbook

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"resched/internal/core"
	"resched/internal/dag"
	"resched/internal/model"
)

// stressDAG builds a small fork-join application: src -> n branches
// -> sink.
func stressDAG(t *testing.T, branches int) *dag.Graph {
	t.Helper()
	g := dag.New(branches + 2)
	src := g.AddTask(dag.Task{Name: "src", Seq: 2 * model.Minute, Alpha: 0.2})
	sink := g.AddTask(dag.Task{Name: "sink", Seq: 2 * model.Minute, Alpha: 0.2})
	for i := 0; i < branches; i++ {
		b := g.AddTask(dag.Task{Seq: 10 * model.Minute, Alpha: 0.1})
		g.MustAddEdge(src, b)
		g.MustAddEdge(b, sink)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestConcurrentBooking is the serving-path stress test: 8 concurrent
// clients repeatedly schedule applications and book direct
// reservations against one book. Every round hands all clients a
// snapshot at the same version, so all but the first committer must
// observe a version-conflict retry. Afterwards the ledger must
// account for every booking exactly once and the profile must satisfy
// its invariants.
func TestConcurrentBooking(t *testing.T) {
	const (
		workers  = 8
		rounds   = 6
		capacity = 32
	)
	book := New(capacity, 0)

	var (
		retries   atomic.Int64 // observed version-conflict retries
		committed atomic.Int64 // reservations booked via Commit
		reserved  atomic.Int64 // reservations booked via Reserve
		released  atomic.Int64
	)

	// One scheduler per worker: core.Scheduler is not safe for
	// concurrent use, but distinct schedulers sharing the book are the
	// serving scenario.
	scheds := make([]*core.Scheduler, workers)
	for w := range scheds {
		s, err := core.NewScheduler(stressDAG(t, 3+w%3))
		if err != nil {
			t.Fatal(err)
		}
		scheds[w] = s
	}

	compute := func(w int, snap Snapshot) ([]Request, error) {
		env := core.Env{P: capacity, Now: snap.Avail.Origin(), Avail: snap.Avail, Q: capacity / 2}
		var sched *core.Schedule
		var err error
		if w%3 == 0 {
			_, sched, err = scheds[w].TightestDeadlineCtx(context.Background(), env, core.DLBDCPAR)
		} else {
			sched, err = scheds[w].TurnaroundCtx(context.Background(), env, core.BLCPAR, core.BDCPAR)
		}
		if err != nil {
			return nil, err
		}
		var reqs []Request
		for _, pl := range sched.Tasks {
			if pl.End > pl.Start {
				reqs = append(reqs, Request{Start: pl.Start, End: pl.End, Procs: pl.Procs})
			}
		}
		return reqs, nil
	}

	for round := 0; round < rounds; round++ {
		// All workers start the round from the same version.
		snaps := make([]Snapshot, workers)
		for w := range snaps {
			snaps[w] = book.Snapshot()
			if snaps[w].Version != snaps[0].Version {
				t.Fatalf("round %d: snapshot versions diverged with no writer", round)
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, snap Snapshot) {
				defer wg.Done()

				// Optimistic-concurrency loop, counting retries.
				for {
					reqs, err := compute(w, snap)
					if err != nil {
						t.Errorf("worker %d: compute: %v", w, err)
						return
					}
					out, err := book.Commit(snap, reqs)
					if err == nil {
						committed.Add(int64(len(out)))
						break
					}
					if !errors.Is(err, ErrStale) {
						t.Errorf("worker %d: commit: %v", w, err)
						return
					}
					retries.Add(1)
					snap = book.Snapshot()
				}

				// Direct reservation traffic: find a free slot on a
				// snapshot, book it, activate, and sometimes release.
				// Another client may grab the slot between the fit and
				// the reserve — that capacity conflict is part of the
				// workload, so just look again.
				var r Reservation
				for {
					snap := book.Snapshot()
					st, err := snap.Avail.EarliestFitChecked(1, 50, snap.Avail.Origin())
					if err != nil {
						t.Errorf("worker %d: fit: %v", w, err)
						return
					}
					r, err = book.Reserve(st, st+50, 1)
					if err == nil {
						break
					}
				}
				reserved.Add(1)
				if err := book.Activate(r.ID); err != nil {
					t.Errorf("worker %d: activate: %v", w, err)
					return
				}
				if w%2 == 0 {
					if err := book.Release(r.ID); err != nil {
						t.Errorf("worker %d: release: %v", w, err)
						return
					}
					released.Add(1)
				}
			}(w, snaps[w])
		}
		wg.Wait()
	}

	// Within each round all workers committed against one version, so
	// every worker except the round's first committer retried at least
	// once.
	if got := retries.Load(); got < workers-1 {
		t.Errorf("observed %d version-conflict retries, want >= %d", got, workers-1)
	}

	// No lost and no double-booked reservations: the ledger holds
	// exactly the bookings the workers made, and replaying it
	// reproduces the live profile.
	list := book.List()
	if want := committed.Load() + reserved.Load(); int64(len(list)) != want {
		t.Errorf("ledger holds %d reservations, want %d", len(list), want)
	}
	var gone int64
	for _, r := range list {
		if r.Status == Released {
			gone++
		}
	}
	if gone != released.Load() {
		t.Errorf("%d released reservations in ledger, want %d", gone, released.Load())
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := book.Snapshot().Avail.Check(); err != nil {
		t.Fatal(err)
	}
	t.Logf("stress: %d commits, %d direct reserves, %d releases, %d retries, final version %d",
		committed.Load(), reserved.Load(), released.Load(), retries.Load(), book.Version())
}
