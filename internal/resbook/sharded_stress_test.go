package resbook

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"resched/internal/model"
)

// TestShardedDisjointEpochs is the sharded book's headline guarantee:
// concurrent committers working in disjoint time epochs never
// invalidate each other. Eight workers each own one epoch-aligned day
// and commit into it repeatedly from fresh snapshots; because a
// commit revalidates only the stamps of the shards it writes, not one
// of these commits may come back ErrStale. Invariants are checked
// after every commit.
func TestShardedDisjointEpochs(t *testing.T) {
	const (
		workers  = 8
		iters    = 20
		capacity = 64
	)
	book, err := NewSharded(capacity, 0, workers, model.Day)
	if err != nil {
		t.Fatal(err)
	}

	var committed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := model.Time(w) * model.Day
			for i := 0; i < iters; i++ {
				snap := book.Snapshot()
				// Stay strictly inside the worker's own day so the
				// commit touches exactly one shard.
				off := model.Time((i * 4001) % int(model.Day-model.Hour))
				reqs := []Request{{Start: base + off, End: base + off + model.Hour, Procs: 1}}
				out, err := book.Commit(snap, reqs)
				if err != nil {
					t.Errorf("worker %d iter %d: disjoint-epoch commit: %v", w, i, err)
					return
				}
				committed.Add(int64(len(out)))
				if err := book.CheckInvariants(); err != nil {
					t.Errorf("worker %d iter %d: invariants: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if got, want := committed.Load(), int64(workers*iters); got != want {
		t.Errorf("committed %d reservations, want %d", got, want)
	}
	if got, want := int64(len(book.List())), committed.Load(); got != want {
		t.Errorf("ledger holds %d reservations, want %d", got, want)
	}
	// Every commit bumped the global version exactly once.
	if got, want := book.Version(), uint64(workers*iters); got != want {
		t.Errorf("version %d, want %d", got, want)
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedOverlappingEpochs drives all eight workers into the same
// epoch — and across epoch boundaries — so their commits contend on
// shared shards. Each round hands every worker a snapshot at the same
// stamps, so all but the round's first committer must observe
// ErrStale and retry; the retry loop must converge, the ledger must
// account for every booking exactly once, and invariants must hold
// after every successful commit.
func TestShardedOverlappingEpochs(t *testing.T) {
	const (
		workers  = 8
		rounds   = 5
		capacity = 64
	)
	book, err := NewSharded(capacity, 0, 4, model.Day)
	if err != nil {
		t.Fatal(err)
	}

	var committed, stale atomic.Int64
	for round := 0; round < rounds; round++ {
		snaps := make([]Snapshot, workers)
		for w := range snaps {
			snaps[w] = book.Snapshot()
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int, snap Snapshot) {
				defer wg.Done()
				// Half the workers book inside the shared first epoch;
				// the rest span the boundary into the second, so the
				// two groups still collide on shard 0.
				start := model.Time(round) * model.Hour
				end := start + model.Hour
				if w%2 == 1 {
					end = model.Day + model.Time(w)*model.Hour
				}
				for {
					out, err := book.Commit(snap, []Request{{Start: start, End: end, Procs: 1}})
					if err == nil {
						committed.Add(int64(len(out)))
						break
					}
					if !errors.Is(err, ErrStale) {
						t.Errorf("worker %d: commit: %v", w, err)
						return
					}
					stale.Add(1)
					snap = book.Snapshot()
				}
				if err := book.CheckInvariants(); err != nil {
					t.Errorf("worker %d: invariants: %v", w, err)
				}
			}(w, snaps[w])
		}
		wg.Wait()

		// Within a round every worker started from the same stamps, so
		// only one commit could land without a conflict.
		if got := stale.Load(); got < int64((round+1)*(workers-1)) {
			t.Errorf("round %d: %d stale commits so far, want >= %d", round, got, (round+1)*(workers-1))
		}
	}

	if got, want := committed.Load(), int64(workers*rounds); got != want {
		t.Errorf("committed %d reservations, want %d", got, want)
	}
	if got, want := int64(len(book.List())), committed.Load(); got != want {
		t.Errorf("ledger holds %d reservations, want %d", got, want)
	}
	if err := book.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("overlap stress: %d commits, %d stale retries, final version %d",
		committed.Load(), stale.Load(), book.Version())
}
