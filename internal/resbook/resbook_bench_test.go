package resbook

import (
	"context"
	"fmt"
	"testing"

	"resched/internal/model"
)

// bench1kBook builds a book holding 1000 committed reservations with
// staggered, overlapping windows — the serving-path baseline the
// ISSUE calls for, complementing internal/profile's query benchmarks.
func bench1kBook(b *testing.B) *Book {
	b.Helper()
	book := New(256, 0)
	for i := 0; i < 1000; i++ {
		start := model.Time(i) * 10
		end := start + 500 // ~50 concurrent reservations at any time
		procs := 1 + i%4
		if _, err := book.Reserve(start, end, procs); err != nil {
			b.Fatal(err)
		}
	}
	return book
}

// BenchmarkSnapshot1k measures the copy-on-read cost a scheduling
// request pays before it can compute.
func BenchmarkSnapshot1k(b *testing.B) {
	book := bench1kBook(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := book.Snapshot()
		if snap.Avail.Capacity() != 256 {
			b.Fatal("bad snapshot")
		}
	}
}

// benchBookR builds a book with r committed reservations in the same
// staggered pattern as bench1kBook.
func benchBookR(b *testing.B, r int) *Book {
	b.Helper()
	book := New(256, 0)
	for i := 0; i < r; i++ {
		start := model.Time(i) * 10
		end := start + 500
		procs := 1 + i%4
		if _, err := book.Reserve(start, end, procs); err != nil {
			b.Fatal(err)
		}
	}
	return book
}

// BenchmarkSnapshotScaling measures Snapshot against growing
// reservation counts. On the persistent backend the cost is grabbing
// one copy-on-write root per shard — O(#shards), so the three sizes
// should time alike; on the old deep-copy path this scaled linearly
// in R. BenchmarkSnapshotScalingFlat keeps the oracle's linear curve
// in the trajectory for comparison.
func BenchmarkSnapshotScaling(b *testing.B) {
	for _, r := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			book := benchBookR(b, r)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap := book.Snapshot()
				if snap.Avail.Capacity() != 256 {
					b.Fatal("bad snapshot")
				}
			}
		})
	}
}

// BenchmarkSnapshotScalingFlat is BenchmarkSnapshotScaling on the
// flat-oracle backend: the deep-copy baseline the persistent path is
// measured against. 100k is omitted — the point (linear growth) is
// visible at 10k, and the deep copies dominate bench time.
func BenchmarkSnapshotScalingFlat(b *testing.B) {
	for _, r := range []int{1_000, 10_000} {
		b.Run(fmt.Sprintf("R=%d", r), func(b *testing.B) {
			book, err := NewShardedFlat(256, 0, 1, 0)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < r; i++ {
				start := model.Time(i) * 10
				if _, err := book.Reserve(start, start+500, 1+i%4); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap := book.Snapshot()
				if snap.Avail.Capacity() != 256 {
					b.Fatal("bad snapshot")
				}
			}
		})
	}
}

// BenchmarkSnapshotCommit1k measures one full optimistic booking
// cycle — snapshot, commit one reservation, release it — against 1000
// existing reservations.
func BenchmarkSnapshotCommit1k(b *testing.B) {
	book := bench1kBook(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := book.Snapshot()
		out, err := book.Commit(snap, []Request{{Start: 100, End: 200, Procs: 1}})
		if err != nil {
			b.Fatal(err)
		}
		if err := book.Release(out[0].ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransact1k measures the same cycle through the Transact
// retry loop (no contention, so exactly one attempt each).
func BenchmarkTransact1k(b *testing.B) {
	book := bench1kBook(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := book.Transact(context.Background(), 1, func(snap Snapshot) ([]Request, error) {
			return []Request{{Start: 100, End: 200, Procs: 1}}, nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := book.Release(out[0].ID); err != nil {
			b.Fatal(err)
		}
	}
}
