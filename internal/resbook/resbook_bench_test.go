package resbook

import (
	"context"
	"testing"

	"resched/internal/model"
)

// bench1kBook builds a book holding 1000 committed reservations with
// staggered, overlapping windows — the serving-path baseline the
// ISSUE calls for, complementing internal/profile's query benchmarks.
func bench1kBook(b *testing.B) *Book {
	b.Helper()
	book := New(256, 0)
	for i := 0; i < 1000; i++ {
		start := model.Time(i) * 10
		end := start + 500 // ~50 concurrent reservations at any time
		procs := 1 + i%4
		if _, err := book.Reserve(start, end, procs); err != nil {
			b.Fatal(err)
		}
	}
	return book
}

// BenchmarkSnapshot1k measures the copy-on-read cost a scheduling
// request pays before it can compute.
func BenchmarkSnapshot1k(b *testing.B) {
	book := bench1kBook(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := book.Snapshot()
		if snap.Profile.Capacity() != 256 {
			b.Fatal("bad snapshot")
		}
	}
}

// BenchmarkSnapshotCommit1k measures one full optimistic booking
// cycle — snapshot, commit one reservation, release it — against 1000
// existing reservations.
func BenchmarkSnapshotCommit1k(b *testing.B) {
	book := bench1kBook(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := book.Snapshot()
		out, err := book.Commit(snap, []Request{{Start: 100, End: 200, Procs: 1}})
		if err != nil {
			b.Fatal(err)
		}
		if err := book.Release(out[0].ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransact1k measures the same cycle through the Transact
// retry loop (no contention, so exactly one attempt each).
func BenchmarkTransact1k(b *testing.B) {
	book := bench1kBook(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := book.Transact(context.Background(), 1, func(snap Snapshot) ([]Request, error) {
			return []Request{{Start: 100, End: 200, Procs: 1}}, nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := book.Release(out[0].ID); err != nil {
			b.Fatal(err)
		}
	}
}
