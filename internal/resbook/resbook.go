// Package resbook implements the live reservation book behind the
// reschedd daemon: the mutable, concurrently accessed counterpart of
// the immutable availability profiles the batch CLIs schedule against
// (the paper's §2 RESSCHED setting, where a batch scheduler owns the
// reservation schedule and applications book against it).
//
// Concurrency model. The book is split into time-epoch shards, each
// guarding its window of the schedule with its own RWMutex and a
// monotonically increasing mutation stamp. Each shard holds its window
// of the step function as a persistent copy-on-write tree (the flat
// deep-copy backend survives as the differential oracle, NewShardedFlat),
// so a snapshot grabs one immutable root pointer + stamp per shard
// under RLock — O(#shards), independent of how many reservations are
// booked — and commits path-copy only the O(log n) nodes their
// mutations touch, leaving outstanding snapshot roots frozen for the
// GC to reclaim. A scheduler takes a snapshot — the concatenated
// availability handle plus the per-shard stamps it was read at —
// computes a schedule against it without holding any lock (list
// scheduling is the expensive part), and then commits
// the resulting reservations: the commit locks only the shards the
// reservations touch, in ascending index order, and revalidates their
// stamps. If any of those shards moved in between, the commit fails
// with ErrStale and the caller recomputes against a fresh snapshot —
// an optimistic-concurrency loop packaged as Transact. Commits landing
// in disjoint epochs lock disjoint shards and proceed in parallel.
//
// New returns a single-shard book, which behaves exactly like a book
// with one global lock and version; NewSharded opts into partitioned
// serving for heavy concurrent traffic.
//
// Lifecycle. Reservations move Pending → Active → Released. A commit
// books Pending reservations (capacity held, job not yet confirmed);
// Activate marks them confirmed; Release (also reachable directly
// from Pending, i.e. cancellation) returns the capacity to the
// profile. Released is terminal.
package resbook

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"resched/internal/model"
	"resched/internal/profile"
)

// Status is a reservation's lifecycle state.
type Status int

const (
	// Pending: booked, capacity held, not yet confirmed.
	Pending Status = iota
	// Active: confirmed; capacity held.
	Active
	// Released: capacity returned to the profile. Terminal.
	Released
)

func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Active:
		return "active"
	case Released:
		return "released"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// MarshalJSON renders the status as its lower-case name, the form the
// HTTP API uses.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Errors returned by the book. ErrStale is the optimistic-concurrency
// signal: the snapshot a commit was computed against is no longer
// current, and the caller should retry against a fresh one.
var (
	ErrStale    = errors.New("resbook: snapshot is stale")
	ErrNotFound = errors.New("resbook: no such reservation")
	ErrReleased = errors.New("resbook: reservation already released")
)

// Request is one reservation to commit: procs processors during
// [Start, End).
type Request struct {
	Start model.Time
	End   model.Time
	Procs int
}

// Reservation is one booked reservation with its lifecycle state.
type Reservation struct {
	ID     string
	Start  model.Time
	End    model.Time
	Procs  int
	Status Status
}

// Snapshot is a consistent view of the book's schedule. Avail is the
// caller's to mutate (schedulers reserve task slots in it while
// searching): on the default persistent backend it is a lightweight
// copy-on-write handle sharing the shards' frozen roots — taking it
// cost O(#shards), and mutations path-copy without ever writing a
// shared node — while on the flat oracle backend it is a deep copy.
// Committing requires the stamps of every shard the commit touches to
// still match Epochs. Version is the global mutation counter the
// snapshot was taken at, reported in the API and in ErrStale messages.
type Snapshot struct {
	Version uint64
	Epochs  []uint64
	Avail   profile.Intervals
}

// bookShard is one time-epoch partition of the schedule: the window
// [start, end) of the global horizon, with a profile holding the
// clipped pieces of the reservations that overlap the window and the
// ledger rows of the reservations that start in it. Exactly one of
// pprof (persistent backend, the default) and prof (flat oracle
// backend) is non-nil, fixed at construction. stamp counts the
// mutations that touched the shard; pprof, prof, res, and stamp are
// guarded by mu — for pprof that guards the root-pointer swap a
// path-copying mutation publishes; the nodes behind a published root
// are immutable and safe to read lock-free through a Snapshot handle.
type bookShard struct {
	start model.Time
	end   model.Time

	mu    sync.RWMutex
	stamp uint64                     //reschedvet:guardedby mu
	pprof *profile.PersistentProfile //reschedvet:guardedby mu
	prof  *profile.Profile           //reschedvet:guardedby mu
	res   map[string]*Reservation    //reschedvet:guardedby mu
}

// Book is a concurrent, versioned reservation book. The zero value is
// not usable; construct with New, NewSharded, or FromReservations.
type Book struct {
	capacity   int
	origin     model.Time
	epoch      model.Duration
	persistent bool
	shards     []bookShard

	version atomic.Uint64
	nextID  atomic.Uint64
}

// New returns an empty single-shard book for a cluster of the given
// capacity whose schedule starts at origin. A single-shard book
// serializes all mutations, and its per-shard stamp coincides with the
// global version — the exact semantics of the pre-sharding book.
func New(capacity int, origin model.Time) *Book {
	b, err := NewSharded(capacity, origin, 1, 0)
	if err != nil {
		panic(err) // one shard with no epoch is always valid
	}
	return b
}

// NewSharded returns an empty book partitioned into nshards time
// epochs of the given length: shard i owns [origin + i·epoch,
// origin + (i+1)·epoch), and the last shard extends to the horizon.
// Commits into disjoint epochs lock disjoint shards and run in
// parallel; reservations spanning epochs lock the covered shards in
// ascending order. The shards hold persistent copy-on-write profile
// roots, so Snapshot is O(nshards) regardless of reservation count.
func NewSharded(capacity int, origin model.Time, nshards int, epoch model.Duration) (*Book, error) {
	return newSharded(capacity, origin, nshards, epoch, true)
}

// NewShardedFlat is NewSharded on the flat deep-copy profile backend:
// every Snapshot clones the assembled step function. It is the
// differential oracle the persistent backend is tested against, and a
// fallback for workloads where flat copies measure faster.
func NewShardedFlat(capacity int, origin model.Time, nshards int, epoch model.Duration) (*Book, error) {
	return newSharded(capacity, origin, nshards, epoch, false)
}

func newSharded(capacity int, origin model.Time, nshards int, epoch model.Duration, persistent bool) (*Book, error) {
	if nshards < 1 {
		return nil, fmt.Errorf("resbook: shard count %d < 1", nshards)
	}
	if nshards > 1 && epoch <= 0 {
		return nil, fmt.Errorf("resbook: epoch %d must be positive with %d shards", epoch, nshards)
	}
	b := &Book{
		capacity:   capacity,
		origin:     origin,
		epoch:      epoch,
		persistent: persistent,
		shards:     make([]bookShard, nshards),
	}
	for i := range b.shards {
		sh := &b.shards[i]
		sh.start = origin + model.Time(i)*model.Time(epoch)
		sh.end = origin + model.Time(i+1)*model.Time(epoch)
		if i == len(b.shards)-1 {
			sh.end = model.Infinity
		}
		if persistent {
			// Distinct seed bases keep sibling windows on disjoint
			// priority streams so the concatenated snapshot treap stays
			// balanced.
			sh.pprof = profile.NewPersistentWindow(capacity, sh.start, sh.end, uint64(i)<<32)
		} else {
			sh.prof = profile.New(capacity, origin)
		}
		sh.res = make(map[string]*Reservation)
	}
	return b, nil
}

// FromReservations returns a book pre-loaded with the given competing
// reservations, committed as Active (they represent already confirmed
// bookings, e.g. a reservation schedule extracted from a batch log).
// Reservations entirely before origin are dropped; partial overlaps
// are clipped to the horizon.
func FromReservations(capacity int, origin model.Time, rs []profile.Reservation) (*Book, error) {
	b := New(capacity, origin)
	if err := b.Seed(rs); err != nil {
		return nil, err
	}
	return b, nil
}

// Seed commits the given competing reservations as Active, clipping
// to the horizon as FromReservations does. It lets callers seed a
// book they constructed themselves — in particular a sharded one.
func (b *Book) Seed(rs []profile.Reservation) error {
	for i, r := range rs {
		start, end := r.Start, r.End
		if start < b.origin {
			start = b.origin
		}
		if end <= start {
			continue
		}
		res, err := b.Reserve(start, end, r.Procs)
		if err != nil {
			return fmt.Errorf("resbook: seeding reservation %d: %w", i, err)
		}
		if err := b.Activate(res.ID); err != nil {
			return err
		}
	}
	return nil
}

// Capacity returns the cluster size.
func (b *Book) Capacity() int { return b.capacity }

// Origin returns the start of the book's horizon.
func (b *Book) Origin() model.Time { return b.origin }

// NumShards returns the number of time-epoch shards.
func (b *Book) NumShards() int { return len(b.shards) }

// Persistent reports whether the book is on the copy-on-write
// persistent profile backend (the default) rather than the flat
// deep-copy oracle.
func (b *Book) Persistent() bool { return b.persistent }

// Version returns the current schedule version. It increases by one
// on every successful mutation.
func (b *Book) Version() uint64 { return b.version.Load() }

// shardFor returns the index of the shard owning time t.
func (b *Book) shardFor(t model.Time) int {
	if len(b.shards) == 1 {
		return 0
	}
	if t <= b.origin {
		return 0
	}
	i := int((t - b.origin) / model.Time(b.epoch))
	if i >= len(b.shards) {
		i = len(b.shards) - 1
	}
	return i
}

// shardSpan returns the inclusive shard index range a reservation
// window touches.
func (b *Book) shardSpan(start, end model.Time) (int, int) {
	return b.shardFor(start), b.shardFor(end - 1)
}

// lockShards write-locks shards[lo..hi]. Acquisition is strictly in
// ascending index order — the book's global lock order, which every
// multi-shard path follows, so overlapping spans cannot deadlock.
//
//reschedvet:lockorder
//reschedvet:acquires bookShard.mu
func (b *Book) lockShards(lo, hi int) {
	for i := lo; i <= hi; i++ {
		b.shards[i].mu.Lock()
	}
}

// unlockShards releases what lockShards acquired.
//
//reschedvet:lockorder
//reschedvet:releases bookShard.mu
func (b *Book) unlockShards(lo, hi int) {
	for i := hi; i >= lo; i-- {
		b.shards[i].mu.Unlock()
	}
}

// Snapshot returns a consistent view of the current schedule with the
// stamps it was read at. The view is independent: the caller may
// mutate it freely (and scheduling algorithms do). On the persistent
// backend taking it is O(#shards) — one root pointer + stamp per shard
// under RLock — and the frozen roots keep answering queries unchanged
// while later commits path-copy new roots beside them.
func (b *Book) Snapshot() Snapshot {
	return b.SnapshotInto(&profile.Profile{})
}

// SnapshotInto is Snapshot for callers that recycle flat profile
// buffers (the serving layer pools them across requests). On the flat
// oracle backend the schedule is copied into dst, reusing its backing
// arrays. On the persistent backend dst is used only when the schedule
// is small (fewer than profile.AutoTreeThreshold segments, where the
// flat backend's linear scans win on constant factors): the segments
// are materialized into dst and Avail is dst. Larger schedules skip
// dst entirely — Avail is a copy-on-write handle over the shard roots
// and the snapshot allocates O(#shards) regardless of R.
//
// Shards are read one at a time in ascending order, so a multi-shard
// snapshot is not a point-in-time cut of the whole horizon; it does
// not need to be, because Commit revalidates the stamp of every shard
// it writes. A commit computed on a torn snapshot either touches only
// shards whose windows were read consistently (and proceeds safely)
// or fails with ErrStale.
func (b *Book) SnapshotInto(dst *profile.Profile) Snapshot {
	snap := Snapshot{Epochs: make([]uint64, len(b.shards))}
	if !b.persistent {
		snap.Avail = dst
		if len(b.shards) == 1 {
			sh := &b.shards[0]
			sh.mu.RLock()
			snap.Version = b.version.Load()
			snap.Epochs[0] = sh.stamp
			sh.prof.CloneInto(dst)
			sh.mu.RUnlock()
			return snap
		}
		dst.Reset(b.capacity, b.origin)
		for i := range b.shards {
			sh := &b.shards[i]
			sh.mu.RLock()
			if i == 0 {
				snap.Version = b.version.Load()
			}
			snap.Epochs[i] = sh.stamp
			dst.AppendWindow(sh.prof, sh.start, sh.end)
			sh.mu.RUnlock()
		}
		return snap
	}
	parts := make([]*profile.PersistentProfile, len(b.shards))
	total := 0
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		if i == 0 {
			snap.Version = b.version.Load()
		}
		snap.Epochs[i] = sh.stamp
		parts[i] = sh.pprof.Clone()
		sh.mu.RUnlock()
		total += parts[i].NumSegments()
	}
	if total < profile.AutoTreeThreshold {
		// Small-R auto backend: materialize the handful of segments into
		// the pooled flat profile, whose scans beat tree descents at
		// this size.
		dst.Reset(b.capacity, b.origin)
		for _, p := range parts {
			p.AppendSegmentsTo(dst)
		}
		snap.Avail = dst
		return snap
	}
	if len(parts) == 1 {
		snap.Avail = parts[0]
		return snap
	}
	snap.Avail = profile.ConcatPersistent(parts)
	return snap
}

// reserveChecks validates a reservation request against the book's
// horizon before any shard is locked, with the same messages the
// profile's own checks produce. Capacity conflicts are detected later,
// inside the clipped per-shard reserves.
func (b *Book) reserveChecks(start, end model.Time, procs int) error {
	if procs < 1 || procs > b.capacity {
		return fmt.Errorf("cannot reserve %d processors on a %d-processor cluster", procs, b.capacity)
	}
	if start < b.origin {
		return fmt.Errorf("reservation start %d before profile origin %d", start, b.origin)
	}
	if end <= start {
		return fmt.Errorf("reservation interval [%d,%d) is empty", start, end)
	}
	if end >= model.Infinity {
		return fmt.Errorf("reservation end %d beyond the scheduling horizon", end)
	}
	return nil
}

// shardReserveLocked books a clipped piece into shard i on whichever
// profile backend the book runs; the shard's lock must be held. On the
// persistent backend the mutation path-copies O(log n) nodes and swaps
// the shard's root — snapshot handles sharing the old root are
// untouched.
//
//reschedvet:holds bookShard.mu
func (b *Book) shardReserveLocked(i int, start, end model.Time, procs int) error {
	sh := &b.shards[i]
	if sh.pprof != nil {
		return sh.pprof.Reserve(start, end, procs)
	}
	return sh.prof.Reserve(start, end, procs)
}

// shardUnreserveLocked undoes a clipped piece in shard i; the shard's
// lock must be held.
//
//reschedvet:holds bookShard.mu
func (b *Book) shardUnreserveLocked(i int, start, end model.Time, procs int) error {
	sh := &b.shards[i]
	if sh.pprof != nil {
		return sh.pprof.Unreserve(start, end, procs)
	}
	return sh.prof.Unreserve(start, end, procs)
}

// appliedPiece records one clipped per-shard reserve for rollback.
type appliedPiece struct {
	shard      int
	start, end model.Time
	procs      int
}

// applyLocked reserves req into every shard its window overlaps,
// clipped to the shard windows, appending the applied pieces to
// applied (for the caller's rollback). The touched shards' locks must
// be held. On failure the pieces applied for THIS request are already
// rolled back; previously applied requests are the caller's to undo.
//
//reschedvet:holds bookShard.mu
func (b *Book) applyLocked(req Request, applied []appliedPiece) ([]appliedPiece, error) {
	first := len(applied)
	lo, hi := b.shardSpan(req.Start, req.End)
	for i := lo; i <= hi; i++ {
		sh := &b.shards[i]
		start, end := req.Start, req.End
		if start < sh.start {
			start = sh.start
		}
		if end > sh.end {
			end = sh.end
		}
		if end <= start {
			continue
		}
		if err := b.shardReserveLocked(i, start, end, req.Procs); err != nil {
			b.rollbackLocked(applied[first:])
			// Truncate the already-undone pieces, or the caller's own
			// rollback of earlier requests would unreserve them twice.
			return applied[:first], err
		}
		applied = append(applied, appliedPiece{shard: i, start: start, end: end, procs: req.Procs})
	}
	return applied, nil
}

// rollbackLocked undoes applied pieces; the shards' locks must be
// held. A failure to undo a reserve we just made is an invariant
// violation.
//
//reschedvet:holds bookShard.mu
func (b *Book) rollbackLocked(applied []appliedPiece) {
	for k := len(applied) - 1; k >= 0; k-- {
		p := applied[k]
		if err := b.shardUnreserveLocked(p.shard, p.start, p.end, p.procs); err != nil {
			panic(fmt.Sprintf("resbook: rollback failed: %v", err))
		}
	}
}

// newRowLocked files the ledger row for a booked request in the shard
// owning its start; the shard's lock must be held.
//
//reschedvet:holds bookShard.mu
func (b *Book) newRowLocked(req Request) *Reservation {
	r := &Reservation{
		ID:     fmt.Sprintf("r%06d", b.nextID.Add(1)),
		Start:  req.Start,
		End:    req.End,
		Procs:  req.Procs,
		Status: Pending,
	}
	b.shards[b.shardFor(req.Start)].res[r.ID] = r
	return r
}

// bumpLocked marks shards[lo..hi] mutated and advances the global
// version; the shards' locks must be held.
//
//reschedvet:holds bookShard.mu
func (b *Book) bumpLocked(lo, hi int) {
	for i := lo; i <= hi; i++ {
		b.shards[i].stamp++
	}
	b.version.Add(1)
}

// Reserve books a single Pending reservation at the current version.
// Unlike Commit it needs no snapshot: the capacity check happens under
// the shard locks, so it fails only if the processors genuinely are
// not free.
func (b *Book) Reserve(start, end model.Time, procs int) (Reservation, error) {
	if err := b.reserveChecks(start, end, procs); err != nil {
		return Reservation{}, err
	}
	lo, hi := b.shardSpan(start, end)
	b.lockShards(lo, hi)
	defer b.unlockShards(lo, hi)
	req := Request{Start: start, End: end, Procs: procs}
	if _, err := b.applyLocked(req, nil); err != nil {
		return Reservation{}, err
	}
	r := b.newRowLocked(req)
	b.bumpLocked(lo, hi)
	return *r, nil
}

// Commit atomically books all requests, provided every shard the
// requests touch is still at the stamp the snapshot recorded. On a
// stamp mismatch it returns ErrStale (wrapped) and books nothing; the
// caller should take a fresh Snapshot, recompute, and retry. On any
// other error (e.g. a request that does not fit the profile it was
// computed from, which indicates a caller bug) it also books nothing.
// Committing no requests validates every shard — the global fence the
// single-lock book provided.
func (b *Book) Commit(snap Snapshot, reqs []Request) ([]Reservation, error) {
	for i, req := range reqs {
		if err := b.reserveChecks(req.Start, req.End, req.Procs); err != nil {
			return nil, fmt.Errorf("resbook: request %d: %w", i, err)
		}
	}
	lo, hi := 0, len(b.shards)-1
	if len(reqs) > 0 {
		lo, hi = len(b.shards), -1
		for _, req := range reqs {
			l, h := b.shardSpan(req.Start, req.End)
			if l < lo {
				lo = l
			}
			if h > hi {
				hi = h
			}
		}
	}
	b.lockShards(lo, hi)
	defer b.unlockShards(lo, hi)
	if len(snap.Epochs) != len(b.shards) {
		return nil, fmt.Errorf("%w: snapshot of %d shards, book has %d", ErrStale, len(snap.Epochs), len(b.shards))
	}
	for i := lo; i <= hi; i++ {
		if b.shards[i].stamp != snap.Epochs[i] {
			return nil, fmt.Errorf("%w: computed at version %d, book at %d", ErrStale, snap.Version, b.version.Load())
		}
	}
	var applied []appliedPiece
	for i, req := range reqs {
		var err error
		applied, err = b.applyLocked(req, applied)
		if err != nil {
			b.rollbackLocked(applied)
			return nil, fmt.Errorf("resbook: request %d: %w", i, err)
		}
	}
	out := make([]Reservation, 0, len(reqs))
	for _, req := range reqs {
		out = append(out, *b.newRowLocked(req))
	}
	b.bumpLocked(lo, hi)
	return out, nil
}

// Get returns a copy of the reservation with the given ID.
func (b *Book) Get(id string) (Reservation, bool) {
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		r, ok := sh.res[id]
		if ok {
			out := *r
			sh.mu.RUnlock()
			return out, true
		}
		sh.mu.RUnlock()
	}
	return Reservation{}, false
}

// List returns copies of all reservations (including released ones),
// ordered by ID.
func (b *Book) List() []Reservation {
	var out []Reservation
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		for _, r := range sh.res {
			out = append(out, *r)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EarliestPendingActivation returns the earliest time at or after
// `after` that a Pending reservation activates. A Pending window whose
// start has already passed is overdue and clamps to `after` itself.
// ok is false when no reservation is Pending. Backfill schedulers use
// this as the hard bound opportunistic placements must finish by.
func (b *Book) EarliestPendingActivation(after model.Time) (at model.Time, ok bool) {
	at = model.Infinity
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		for _, r := range sh.res {
			if r.Status != Pending {
				continue
			}
			cand := r.Start
			if cand < after {
				cand = after
			}
			if cand < at {
				at = cand
				ok = true
			}
		}
		sh.mu.RUnlock()
	}
	if !ok {
		return 0, false
	}
	return at, true
}

// Activate confirms a Pending reservation. Activating an Active
// reservation is a no-op; a Released one is an error.
func (b *Book) Activate(id string) error {
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.Lock()
		r, ok := sh.res[id]
		if !ok {
			sh.mu.Unlock()
			continue
		}
		if r.Status == Released {
			sh.mu.Unlock()
			return fmt.Errorf("%w: %s", ErrReleased, id)
		}
		if r.Status == Pending {
			r.Status = Active
			sh.stamp++
			b.version.Add(1)
		}
		sh.mu.Unlock()
		return nil
	}
	return fmt.Errorf("%w: %s", ErrNotFound, id)
}

// Release cancels a Pending or Active reservation, returning its
// processors to the profile. Releasing twice is an error.
func (b *Book) Release(id string) error {
	// Find the row's window first (rows never change theirs), then take
	// the shard locks the release touches and re-check the status under
	// them.
	r, ok := b.Get(id)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	lo, hi := b.shardSpan(r.Start, r.End)
	home := b.shardFor(r.Start)
	b.lockShards(lo, hi)
	defer b.unlockShards(lo, hi)
	row, ok := b.shards[home].res[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if row.Status == Released {
		return fmt.Errorf("%w: %s", ErrReleased, id)
	}
	for i := lo; i <= hi; i++ {
		sh := &b.shards[i]
		start, end := row.Start, row.End
		if start < sh.start {
			start = sh.start
		}
		if end > sh.end {
			end = sh.end
		}
		if end <= start {
			continue
		}
		if err := b.shardUnreserveLocked(i, start, end, row.Procs); err != nil {
			// The shard profiles hold every non-released reservation, so
			// undoing one can only fail if the ledger and profile disagree.
			panic(fmt.Sprintf("resbook: release %s failed: %v", id, err))
		}
	}
	row.Status = Released
	b.bumpLocked(lo, hi)
	return nil
}

// Transact runs the optimistic-concurrency loop: snapshot, compute,
// commit, retrying on ErrStale up to maxAttempts times. fn receives a
// private snapshot and returns the reservation requests to commit
// (returning an empty slice commits nothing but still validates the
// snapshot). It reports the booked reservations and how many
// version-conflict retries occurred. Any error from fn, from ctx, or
// a non-stale commit failure aborts the loop.
func (b *Book) Transact(ctx context.Context, maxAttempts int, fn func(Snapshot) ([]Request, error)) ([]Reservation, int, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	retries := 0
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, retries, err
		}
		snap := b.Snapshot()
		reqs, err := fn(snap)
		if err != nil {
			return nil, retries, err
		}
		out, err := b.Commit(snap, reqs)
		if err == nil {
			return out, retries, nil
		}
		if !errors.Is(err, ErrStale) {
			return nil, retries, err
		}
		retries++
	}
	return nil, retries, fmt.Errorf("%w: gave up after %d attempts", ErrStale, maxAttempts)
}

// CheckInvariants validates the book: every shard profile satisfies
// its representation invariants, and replaying the ledger's
// non-released reservations onto an empty profile reproduces the
// assembled global profile exactly (no lost and no double-booked
// capacity).
func (b *Book) CheckInvariants() error {
	lo, hi := 0, len(b.shards)-1
	b.lockShards(lo, hi)
	defer b.unlockShards(lo, hi)
	assembled := &profile.Profile{}
	assembled.Reset(b.capacity, b.origin)
	for i := range b.shards {
		sh := &b.shards[i]
		if sh.pprof != nil {
			if err := sh.pprof.Check(); err != nil {
				return fmt.Errorf("resbook: shard %d: %w", i, err)
			}
			sh.pprof.AppendSegmentsTo(assembled)
		} else {
			if err := sh.prof.Check(); err != nil {
				return fmt.Errorf("resbook: shard %d: %w", i, err)
			}
			assembled.AppendWindow(sh.prof, sh.start, sh.end)
		}
	}
	want := profile.New(b.capacity, b.origin)
	for i := range b.shards {
		for _, r := range b.shards[i].res {
			if r.Status == Released {
				continue
			}
			if err := want.Reserve(r.Start, r.End, r.Procs); err != nil {
				return fmt.Errorf("resbook: ledger replay of %s: %w", r.ID, err)
			}
		}
	}
	if want.String() != assembled.String() {
		return fmt.Errorf("resbook: ledger %s != profile %s", want, assembled)
	}
	return nil
}
