// Package resbook implements the live reservation book behind the
// reschedd daemon: the mutable, concurrently accessed counterpart of
// the immutable availability profiles the batch CLIs schedule against
// (the paper's §2 RESSCHED setting, where a batch scheduler owns the
// reservation schedule and applications book against it).
//
// Concurrency model. The book guards a profile.Profile with an
// RWMutex and hands out copy-on-read snapshots: a scheduler clones
// the profile at version v, computes a schedule against the clone
// without holding any lock (list scheduling is the expensive part),
// and then commits the resulting reservations with a version check.
// If any other mutation landed in between, the commit fails with
// ErrStale and the caller recomputes against a fresh snapshot — an
// optimistic-concurrency loop packaged as Transact.
//
// Lifecycle. Reservations move Pending → Active → Released. A commit
// books Pending reservations (capacity held, job not yet confirmed);
// Activate marks them confirmed; Release (also reachable directly
// from Pending, i.e. cancellation) returns the capacity to the
// profile. Released is terminal.
package resbook

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"resched/internal/model"
	"resched/internal/profile"
)

// Status is a reservation's lifecycle state.
type Status int

const (
	// Pending: booked, capacity held, not yet confirmed.
	Pending Status = iota
	// Active: confirmed; capacity held.
	Active
	// Released: capacity returned to the profile. Terminal.
	Released
)

func (s Status) String() string {
	switch s {
	case Pending:
		return "pending"
	case Active:
		return "active"
	case Released:
		return "released"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// MarshalJSON renders the status as its lower-case name, the form the
// HTTP API uses.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Errors returned by the book. ErrStale is the optimistic-concurrency
// signal: the snapshot a commit was computed against is no longer
// current, and the caller should retry against a fresh one.
var (
	ErrStale    = errors.New("resbook: snapshot is stale")
	ErrNotFound = errors.New("resbook: no such reservation")
	ErrReleased = errors.New("resbook: reservation already released")
)

// Request is one reservation to commit: procs processors during
// [Start, End).
type Request struct {
	Start model.Time
	End   model.Time
	Procs int
}

// Reservation is one booked reservation with its lifecycle state.
type Reservation struct {
	ID     string
	Start  model.Time
	End    model.Time
	Procs  int
	Status Status
}

// Snapshot is a consistent copy of the book's schedule at a version.
// The profile is the caller's to mutate (schedulers reserve task slots
// in it while searching); committing requires the version to still be
// current.
type Snapshot struct {
	Version uint64
	Profile *profile.Profile
}

// Book is a concurrent, versioned reservation book. The zero value is
// not usable; construct with New or FromReservations.
type Book struct {
	mu      sync.RWMutex
	version uint64
	prof    *profile.Profile
	res     map[string]*Reservation
	nextID  uint64
}

// New returns an empty book for a cluster of the given capacity whose
// schedule starts at origin.
func New(capacity int, origin model.Time) *Book {
	return &Book{
		prof: profile.New(capacity, origin),
		res:  make(map[string]*Reservation),
	}
}

// FromReservations returns a book pre-loaded with the given competing
// reservations, committed as Active (they represent already confirmed
// bookings, e.g. a reservation schedule extracted from a batch log).
// Reservations entirely before origin are dropped; partial overlaps
// are clipped to the horizon.
func FromReservations(capacity int, origin model.Time, rs []profile.Reservation) (*Book, error) {
	b := New(capacity, origin)
	for i, r := range rs {
		start, end := r.Start, r.End
		if start < origin {
			start = origin
		}
		if end <= start {
			continue
		}
		res, err := b.Reserve(start, end, r.Procs)
		if err != nil {
			return nil, fmt.Errorf("resbook: seeding reservation %d: %w", i, err)
		}
		if err := b.Activate(res.ID); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Capacity returns the cluster size.
func (b *Book) Capacity() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.prof.Capacity()
}

// Origin returns the start of the book's horizon.
func (b *Book) Origin() model.Time {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.prof.Origin()
}

// Version returns the current schedule version. It increases by one
// on every successful mutation.
func (b *Book) Version() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.version
}

// Snapshot returns a copy of the current schedule and its version.
// The copy is independent: the caller may mutate it freely (and
// scheduling algorithms do).
func (b *Book) Snapshot() Snapshot {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return Snapshot{Version: b.version, Profile: b.prof.Clone()}
}

// SnapshotInto copies the current schedule into dst — reusing dst's
// backing arrays when they are large enough — and returns the
// snapshot's version. It is Snapshot for callers that recycle profile
// buffers (the serving layer pools them across requests): the copy is
// just as independent, only the allocation is avoided.
func (b *Book) SnapshotInto(dst *profile.Profile) uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.prof.CloneInto(dst)
	return b.version
}

// newLocked books one validated reservation; the write lock must be
// held. It does not bump the version — callers do, once per mutation.
func (b *Book) newLocked(req Request) (*Reservation, error) {
	if err := b.prof.Reserve(req.Start, req.End, req.Procs); err != nil {
		return nil, err
	}
	b.nextID++
	r := &Reservation{
		ID:     fmt.Sprintf("r%06d", b.nextID),
		Start:  req.Start,
		End:    req.End,
		Procs:  req.Procs,
		Status: Pending,
	}
	b.res[r.ID] = r
	return r, nil
}

// Reserve books a single Pending reservation at the current version.
// Unlike Commit it needs no snapshot: the capacity check happens under
// the lock, so it fails only if the processors genuinely are not free.
func (b *Book) Reserve(start, end model.Time, procs int) (Reservation, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, err := b.newLocked(Request{Start: start, End: end, Procs: procs})
	if err != nil {
		return Reservation{}, err
	}
	b.version++
	return *r, nil
}

// Commit atomically books all requests, provided the book is still at
// the version the requests were computed against. On a version
// mismatch it returns ErrStale (wrapped) and books nothing; the
// caller should take a fresh Snapshot, recompute, and retry. On any
// other error (e.g. a request that does not fit the profile it was
// computed from, which indicates a caller bug) it also books nothing.
func (b *Book) Commit(version uint64, reqs []Request) ([]Reservation, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.version != version {
		return nil, fmt.Errorf("%w: computed at version %d, book at %d", ErrStale, version, b.version)
	}
	out := make([]Reservation, 0, len(reqs))
	for i, req := range reqs {
		r, err := b.newLocked(req)
		if err != nil {
			// Roll back the already-booked prefix; a failure to undo a
			// reservation we just made is an invariant violation.
			for _, prev := range out {
				if uerr := b.prof.Unreserve(prev.Start, prev.End, prev.Procs); uerr != nil {
					panic(fmt.Sprintf("resbook: rollback failed: %v", uerr))
				}
				delete(b.res, prev.ID)
			}
			return nil, fmt.Errorf("resbook: request %d: %w", i, err)
		}
		out = append(out, *r)
	}
	b.version++
	return out, nil
}

// Get returns a copy of the reservation with the given ID.
func (b *Book) Get(id string) (Reservation, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	r, ok := b.res[id]
	if !ok {
		return Reservation{}, false
	}
	return *r, true
}

// List returns copies of all reservations (including released ones),
// ordered by ID.
func (b *Book) List() []Reservation {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]Reservation, 0, len(b.res))
	for _, r := range b.res {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Activate confirms a Pending reservation. Activating an Active
// reservation is a no-op; a Released one is an error.
func (b *Book) Activate(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.res[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if r.Status == Released {
		return fmt.Errorf("%w: %s", ErrReleased, id)
	}
	if r.Status == Pending {
		r.Status = Active
		b.version++
	}
	return nil
}

// Release cancels a Pending or Active reservation, returning its
// processors to the profile. Releasing twice is an error.
func (b *Book) Release(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	r, ok := b.res[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if r.Status == Released {
		return fmt.Errorf("%w: %s", ErrReleased, id)
	}
	if err := b.prof.Unreserve(r.Start, r.End, r.Procs); err != nil {
		// The profile holds every non-released reservation, so undoing
		// one can only fail if the ledger and profile disagree.
		panic(fmt.Sprintf("resbook: release %s failed: %v", id, err))
	}
	r.Status = Released
	b.version++
	return nil
}

// Transact runs the optimistic-concurrency loop: snapshot, compute,
// commit, retrying on ErrStale up to maxAttempts times. fn receives a
// private snapshot and returns the reservation requests to commit
// (returning an empty slice commits nothing but still validates the
// version). It reports the booked reservations and how many
// version-conflict retries occurred. Any error from fn, from ctx, or
// a non-stale commit failure aborts the loop.
func (b *Book) Transact(ctx context.Context, maxAttempts int, fn func(Snapshot) ([]Request, error)) ([]Reservation, int, error) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	retries := 0
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, retries, err
		}
		snap := b.Snapshot()
		reqs, err := fn(snap)
		if err != nil {
			return nil, retries, err
		}
		out, err := b.Commit(snap.Version, reqs)
		if err == nil {
			return out, retries, nil
		}
		if !errors.Is(err, ErrStale) {
			return nil, retries, err
		}
		retries++
	}
	return nil, retries, fmt.Errorf("%w: gave up after %d attempts", ErrStale, maxAttempts)
}

// CheckInvariants validates the book: the profile satisfies its
// representation invariants, and replaying the ledger's non-released
// reservations onto an empty profile reproduces the live profile
// exactly (no lost and no double-booked capacity).
func (b *Book) CheckInvariants() error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if err := b.prof.Check(); err != nil {
		return err
	}
	want := profile.New(b.prof.Capacity(), b.prof.Origin())
	for _, r := range b.res {
		if r.Status == Released {
			continue
		}
		if err := want.Reserve(r.Start, r.End, r.Procs); err != nil {
			return fmt.Errorf("resbook: ledger replay of %s: %w", r.ID, err)
		}
	}
	if want.String() != b.prof.String() {
		return fmt.Errorf("resbook: ledger %s != profile %s", want, b.prof)
	}
	return nil
}
