package resbook

import (
	"context"
	"errors"
	"strings"
	"testing"

	"resched/internal/profile"
)

// TestTransactExhaustionState pins down the book's state after the
// optimistic-concurrency loop gives up: the error wraps ErrStale, the
// retry count equals the attempt budget, and none of the loser's
// requests leaked into the ledger or the profile.
func TestTransactExhaustionState(t *testing.T) {
	b := New(8, 0)
	versionBefore := b.Version()
	const attempts = 4
	_, retries, err := b.Transact(context.Background(), attempts, func(snap Snapshot) ([]Request, error) {
		// Concurrent mutation between snapshot and commit: every
		// attempt goes stale.
		if _, err := b.Reserve(100, 110, 1); err != nil {
			t.Fatalf("conflicting Reserve: %v", err)
		}
		return []Request{{Start: 0, End: 10, Procs: 2}}, nil
	})
	if !errors.Is(err, ErrStale) {
		t.Fatalf("exhausted Transact: %v, want ErrStale", err)
	}
	if retries != attempts {
		t.Errorf("retries = %d, want %d", retries, attempts)
	}
	// Only the conflicting reservations moved the version; the
	// transaction itself booked nothing.
	if got, want := b.Version(), versionBefore+attempts; got != want {
		t.Errorf("version = %d, want %d", got, want)
	}
	for _, r := range b.List() {
		if r.Start == 0 {
			t.Errorf("stale transaction leaked reservation %+v", r)
		}
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("invariants after exhaustion: %v", err)
	}
}

// TestTransactComputeError checks that an error from the compute
// callback aborts immediately: no retries burned, nothing booked.
func TestTransactComputeError(t *testing.T) {
	b := New(8, 0)
	boom := errors.New("compute exploded")
	calls := 0
	_, retries, err := b.Transact(context.Background(), 5, func(Snapshot) ([]Request, error) {
		calls++
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Transact: %v, want the compute error", err)
	}
	if calls != 1 || retries != 0 {
		t.Errorf("calls=%d retries=%d, want 1 and 0", calls, retries)
	}
}

// TestTransactClampsAttempts: a non-positive attempt budget still
// runs the loop once rather than reporting exhaustion it never tried.
func TestTransactClampsAttempts(t *testing.T) {
	b := New(8, 0)
	booked, retries, err := b.Transact(context.Background(), 0, func(Snapshot) ([]Request, error) {
		return []Request{{Start: 0, End: 5, Procs: 1}}, nil
	})
	if err != nil || len(booked) != 1 || retries != 0 {
		t.Fatalf("Transact with 0 attempts: booked=%v retries=%d err=%v", booked, retries, err)
	}
}

// TestReleaseUnknownLeavesBookUntouched: releasing an ID that was
// never issued is ErrNotFound and must not move the version.
func TestReleaseUnknownLeavesBookUntouched(t *testing.T) {
	b := New(4, 0)
	if _, err := b.Reserve(0, 10, 2); err != nil {
		t.Fatalf("Reserve: %v", err)
	}
	before := b.Version()
	err := b.Release("r999999")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Release unknown: %v, want ErrNotFound", err)
	}
	if !strings.Contains(err.Error(), "r999999") {
		t.Errorf("error %q does not name the offending ID", err)
	}
	if b.Version() != before {
		t.Errorf("failed Release moved version %d -> %d", before, b.Version())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("invariants after failed release: %v", err)
	}
}

// TestSnapshotOutlivesReleasedBook: a snapshot taken while
// reservations were live stays valid and independent after every one
// of them is released and the book is effectively closed out — the
// copy-on-read contract the serving layer depends on. Committing
// against the defunct version must fail stale without corrupting the
// (now empty) schedule.
func TestSnapshotOutlivesReleasedBook(t *testing.T) {
	b := New(8, 0)
	ids := make([]string, 0, 3)
	for i := 0; i < 3; i++ {
		r, err := b.Reserve(int64(10*i), int64(10*i+10), 2)
		if err != nil {
			t.Fatalf("Reserve %d: %v", i, err)
		}
		ids = append(ids, r.ID)
	}
	snap := b.Snapshot()
	rendered := snap.Avail.String()

	for _, id := range ids {
		if err := b.Release(id); err != nil {
			t.Fatalf("Release %s: %v", id, err)
		}
	}
	if got := b.Snapshot().Avail.NumSegments(); got != 1 {
		t.Fatalf("released book still has %d segments", got)
	}

	// The old snapshot is untouched by the releases and still usable.
	if snap.Avail.String() != rendered {
		t.Errorf("snapshot mutated by releases:\n  was %s\n  now %s", rendered, snap.Avail.String())
	}
	if err := snap.Avail.Check(); err != nil {
		t.Errorf("snapshot invariants: %v", err)
	}
	if _, err := snap.Avail.EarliestFitChecked(8, 5, 0); err != nil {
		t.Errorf("query against old snapshot: %v", err)
	}

	// A commit computed against the defunct snapshot fails stale and
	// books nothing.
	if _, err := b.Commit(snap, []Request{{Start: 0, End: 5, Procs: 1}}); !errors.Is(err, ErrStale) {
		t.Fatalf("Commit at stale version: %v, want ErrStale", err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatalf("invariants after stale commit: %v", err)
	}
}

// TestSnapshotIntoReusesDirtyProfile: SnapshotInto must fully
// overwrite whatever schedule the destination held before, matching
// Snapshot exactly — the pooled scratch profiles cycle through
// arbitrary predecessor states.
func TestSnapshotIntoReusesDirtyProfile(t *testing.T) {
	b := New(8, 0)
	if _, err := b.Reserve(5, 15, 3); err != nil {
		t.Fatalf("Reserve: %v", err)
	}

	dirty := profile.New(16, 100) // wrong capacity, wrong origin, own segments
	if err := dirty.Reserve(200, 300, 7); err != nil {
		t.Fatalf("dirtying profile: %v", err)
	}
	into := b.SnapshotInto(dirty)
	snap := b.Snapshot()
	if into.Version != snap.Version {
		t.Errorf("SnapshotInto version %d, Snapshot version %d", into.Version, snap.Version)
	}
	if dirty.String() != snap.Avail.String() {
		t.Errorf("SnapshotInto left stale state:\n  into %s\n  want %s", dirty, snap.Avail)
	}
	if err := dirty.Check(); err != nil {
		t.Errorf("reused profile invariants: %v", err)
	}
}
