package resbook

import (
	"context"
	"errors"
	"testing"

	"resched/internal/model"
	"resched/internal/profile"
)

func TestReserveLifecycle(t *testing.T) {
	b := New(8, 0)
	v0 := b.Version()

	r, err := b.Reserve(10, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Pending {
		t.Errorf("new reservation status %v, want pending", r.Status)
	}
	if b.Version() != v0+1 {
		t.Errorf("version %d after Reserve, want %d", b.Version(), v0+1)
	}
	if got := b.Snapshot().Avail.FreeAt(15); got != 5 {
		t.Errorf("5 free expected at t=15, got %d", got)
	}

	if err := b.Activate(r.ID); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get(r.ID)
	if !ok || got.Status != Active {
		t.Errorf("after Activate: %+v, %v", got, ok)
	}
	// Activate is idempotent on Active reservations.
	v := b.Version()
	if err := b.Activate(r.ID); err != nil {
		t.Fatal(err)
	}
	if b.Version() != v {
		t.Error("idempotent Activate bumped the version")
	}

	if err := b.Release(r.ID); err != nil {
		t.Fatal(err)
	}
	if got, _ := b.Get(r.ID); got.Status != Released {
		t.Errorf("after Release: status %v", got.Status)
	}
	if got := b.Snapshot().Avail.FreeAt(15); got != 8 {
		t.Errorf("released capacity not returned: %d free at t=15", got)
	}

	// Released is terminal.
	if err := b.Release(r.ID); !errors.Is(err, ErrReleased) {
		t.Errorf("double Release: %v, want ErrReleased", err)
	}
	if err := b.Activate(r.ID); !errors.Is(err, ErrReleased) {
		t.Errorf("Activate after Release: %v, want ErrReleased", err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownReservation(t *testing.T) {
	b := New(8, 0)
	if _, ok := b.Get("r000404"); ok {
		t.Error("Get on empty book succeeded")
	}
	if err := b.Activate("r000404"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Activate unknown: %v, want ErrNotFound", err)
	}
	if err := b.Release("r000404"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Release unknown: %v, want ErrNotFound", err)
	}
}

func TestCommitVersionCheck(t *testing.T) {
	b := New(8, 0)
	snap := b.Snapshot()

	// A mutation after the snapshot makes the commit stale.
	if _, err := b.Reserve(0, 10, 1); err != nil {
		t.Fatal(err)
	}
	_, err := b.Commit(snap, []Request{{Start: 20, End: 30, Procs: 2}})
	if !errors.Is(err, ErrStale) {
		t.Fatalf("commit on stale snapshot: %v, want ErrStale", err)
	}

	// A fresh snapshot commits fine, atomically booking both requests.
	snap = b.Snapshot()
	out, err := b.Commit(snap, []Request{
		{Start: 20, End: 30, Procs: 2},
		{Start: 25, End: 40, Procs: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("committed %d reservations, want 2", len(out))
	}
	if got := b.Snapshot().Avail.FreeAt(27); got != 3 {
		t.Errorf("3 free expected at t=27, got %d", got)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitRollsBackOnFailure(t *testing.T) {
	b := New(4, 0)
	snap := b.Snapshot()
	before := b.Snapshot().Avail.String()

	// Second request oversubscribes the cluster: the whole commit must
	// fail and leave no trace of the first.
	_, err := b.Commit(snap, []Request{
		{Start: 0, End: 10, Procs: 2},
		{Start: 5, End: 15, Procs: 3},
	})
	if err == nil || errors.Is(err, ErrStale) {
		t.Fatalf("oversubscribing commit: %v", err)
	}
	if got := b.Snapshot().Avail.String(); got != before {
		t.Errorf("failed commit left residue: %s, want %s", got, before)
	}
	if len(b.List()) != 0 {
		t.Errorf("failed commit left %d ledger entries", len(b.List()))
	}
	if b.Version() != snap.Version {
		t.Errorf("failed commit bumped version to %d", b.Version())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotIsolation(t *testing.T) {
	b := New(8, 0)
	snap := b.Snapshot()
	// Mutating the snapshot must not leak into the book.
	if err := snap.Avail.Reserve(0, 100, 8); err != nil {
		t.Fatal(err)
	}
	if got := b.Snapshot().Avail.FreeAt(50); got != 8 {
		t.Errorf("snapshot mutation leaked into the book: %d free", got)
	}
}

func TestFromReservations(t *testing.T) {
	rs := []profile.Reservation{
		{Start: -10, End: 20, Procs: 2}, // clipped to origin
		{Start: 30, End: 40, Procs: 4},
		{Start: -20, End: -5, Procs: 1}, // entirely in the past: dropped
	}
	b, err := FromReservations(8, 0, rs)
	if err != nil {
		t.Fatal(err)
	}
	list := b.List()
	if len(list) != 2 {
		t.Fatalf("%d seeded reservations, want 2", len(list))
	}
	for _, r := range list {
		if r.Status != Active {
			t.Errorf("seeded reservation %s status %v, want active", r.ID, r.Status)
		}
	}
	if got := b.Snapshot().Avail.FreeAt(10); got != 6 {
		t.Errorf("6 free expected at t=10, got %d", got)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Oversubscribed seed data is rejected.
	if _, err := FromReservations(2, 0, []profile.Reservation{{Start: 0, End: 10, Procs: 3}}); err == nil {
		t.Error("oversubscribed seed accepted")
	}
}

func TestTransactRetriesOnStale(t *testing.T) {
	b := New(8, 0)
	calls := 0
	out, retries, err := b.Transact(context.Background(), 5, func(snap Snapshot) ([]Request, error) {
		calls++
		if calls == 1 {
			// Interleave a conflicting mutation so the first commit is
			// computed against a stale snapshot.
			if _, err := b.Reserve(0, 10, 1); err != nil {
				return nil, err
			}
		}
		return []Request{{Start: 20, End: 30, Procs: 2}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if retries != 1 || calls != 2 {
		t.Errorf("retries = %d, calls = %d; want 1 and 2", retries, calls)
	}
	if len(out) != 1 {
		t.Fatalf("booked %d reservations, want 1", len(out))
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTransactGivesUp(t *testing.T) {
	b := New(8, 0)
	_, retries, err := b.Transact(context.Background(), 3, func(snap Snapshot) ([]Request, error) {
		// Always conflict.
		if _, err := b.Reserve(0, 1000, 1); err != nil {
			return nil, err
		}
		return []Request{{Start: 0, End: 10, Procs: 1}}, nil
	})
	if !errors.Is(err, ErrStale) {
		t.Fatalf("Transact under permanent conflict: %v, want ErrStale", err)
	}
	if retries != 3 {
		t.Errorf("retries = %d, want 3", retries)
	}
}

func TestTransactHonorsContext(t *testing.T) {
	b := New(8, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := b.Transact(ctx, 5, func(Snapshot) ([]Request, error) {
		t.Error("fn called under canceled context")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Transact under canceled ctx: %v", err)
	}
}

func TestReserveValidation(t *testing.T) {
	b := New(4, 100)
	cases := []struct {
		name       string
		start, end model.Time
		procs      int
	}{
		{"before origin", 0, 200, 1},
		{"empty interval", 200, 200, 1},
		{"inverted interval", 300, 200, 1},
		{"zero procs", 200, 300, 0},
		{"beyond capacity", 200, 300, 5},
		{"beyond horizon", 200, model.Infinity, 1},
	}
	for _, c := range cases {
		if _, err := b.Reserve(c.start, c.end, c.procs); err == nil {
			t.Errorf("%s: Reserve(%d, %d, %d) accepted", c.name, c.start, c.end, c.procs)
		}
	}
	if b.Version() != 0 {
		t.Errorf("rejected reserves bumped version to %d", b.Version())
	}
}
