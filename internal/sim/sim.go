// Package sim is the experiment harness reproducing the paper's
// evaluation methodology (Sections 4.3 and 5.3): it enumerates
// experimental scenarios (application spec x log x phi x decay method),
// materializes random instances (sample DAGs x reservation-schedule
// instances), runs the scheduling algorithms, and aggregates the
// paper's metrics — average percentage degradation from best and win
// counts per algorithm.
package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"sync"

	"resched/internal/core"
	"resched/internal/dag"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/workload"
)

// Scenario is one experimental scenario: an application specification
// evaluated against reservation schedules derived from one log with one
// tagging fraction and one decay method. Grid'5000 scenarios use
// Phi = 1 with the Real method (the whole log is reservations).
type Scenario struct {
	App    daggen.Spec
	Arch   workload.Archetype
	Phi    float64
	Method workload.Method
}

// String identifies the scenario in results and error messages.
func (s Scenario) String() string {
	return fmt.Sprintf("%s/phi=%.1f/%s/%s", s.Arch.Name, s.Phi, s.Method, s.App)
}

// Config controls how many random instances each scenario gets and how
// heavy the underlying logs are. The paper uses DAGReps=20,
// StartTimes=10, Taggings=5 over multi-month logs; the defaults here
// are laptop-scale (see EXPERIMENTS.md).
type Config struct {
	// LogDays is the synthetic log length in days.
	LogDays int
	// DAGReps is the number of sample DAGs per application spec.
	DAGReps int
	// StartTimes is the number of observation times per log.
	StartTimes int
	// Taggings is the number of random taggings per observation time.
	Taggings int
	// Seed makes the whole experiment deterministic.
	Seed int64
	// Granularity is the tightest-deadline search resolution.
	Granularity model.Duration
	// Workers bounds scenario-level parallelism (0 = NumCPU).
	Workers int
	// Progress, when non-nil, is called after each completed scenario.
	Progress func(done, total int)
}

// DefaultConfig returns the laptop-scale configuration used by the
// resexp tool unless overridden.
func DefaultConfig() Config {
	return Config{
		LogDays:     45,
		DAGReps:     3,
		StartTimes:  3,
		Taggings:    2,
		Seed:        1,
		Granularity: core.DefaultGranularity,
	}
}

func (c *Config) normalize() {
	if c.LogDays <= 0 {
		c.LogDays = 45
	}
	if c.DAGReps <= 0 {
		c.DAGReps = 1
	}
	if c.StartTimes <= 0 {
		c.StartTimes = 1
	}
	if c.Taggings <= 0 {
		c.Taggings = 1
	}
	if c.Granularity <= 0 {
		c.Granularity = core.DefaultGranularity
	}
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
}

// Lab materializes scenarios: it caches synthesized logs per archetype
// and turns scenarios into concrete (DAG, environment) instances.
// A Lab is safe for concurrent use after construction.
type Lab struct {
	cfg Config

	mu   sync.Mutex
	logs map[string]*workload.Log
}

// NewLab returns a Lab with the given configuration.
func NewLab(cfg Config) *Lab {
	cfg.normalize()
	return &Lab{cfg: cfg, logs: make(map[string]*workload.Log)}
}

// Config returns the lab's normalized configuration.
func (l *Lab) Config() Config { return l.cfg }

// Log returns the (cached) synthetic log for an archetype.
func (l *Lab) Log(arch workload.Archetype) (*workload.Log, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lg, ok := l.logs[arch.Name]; ok {
		return lg, nil
	}
	rng := rand.New(rand.NewSource(l.cfg.Seed ^ seedOf("log:"+arch.Name)))
	lg, err := workload.Synthesize(arch, l.cfg.LogDays, rng)
	if err != nil {
		return nil, err
	}
	l.logs[arch.Name] = lg
	return lg, nil
}

// seedOf derives a stable 63-bit seed from a label.
func seedOf(label string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	return int64(h.Sum64() >> 1)
}

// Instance is one materialized problem: a sample DAG (wrapped in its
// scheduler) and a reservation environment.
type Instance struct {
	Sched *core.Scheduler
	Env   core.Env
}

// Instances materializes all random instances of a scenario:
// DAGReps sample DAGs x (StartTimes x Taggings) reservation-schedule
// instances. Deterministic for a given lab seed and scenario.
func (l *Lab) Instances(sc Scenario) ([]Instance, error) {
	lg, err := l.Log(sc.Arch)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(l.cfg.Seed ^ seedOf("scenario:"+sc.String())))

	starts, err := workload.StartTimes(lg, l.cfg.StartTimes, rng)
	if err != nil {
		return nil, err
	}
	var envs []core.Env
	for _, at := range starts {
		for k := 0; k < l.cfg.Taggings; k++ {
			ex, err := workload.Extract(lg, sc.Phi, sc.Method, at, rng)
			if err != nil {
				return nil, err
			}
			prof, err := ex.Profile()
			if err != nil {
				return nil, err
			}
			q, err := core.HistoricalAvail(ex.Procs, ex.Past, ex.At, workload.HistWindow)
			if err != nil {
				return nil, err
			}
			envs = append(envs, core.Env{P: ex.Procs, Now: ex.At, Avail: prof, Q: q})
		}
	}

	var graphs []*dag.Graph
	for i := 0; i < l.cfg.DAGReps; i++ {
		g, err := daggen.Generate(sc.App, rng)
		if err != nil {
			return nil, err
		}
		graphs = append(graphs, g)
	}

	// Pair every DAG with every environment; the scheduler (and its
	// CPA caches) is shared across the environments of one DAG.
	var out []Instance
	for _, g := range graphs {
		sched, err := core.NewScheduler(g)
		if err != nil {
			return nil, err
		}
		for _, env := range envs {
			out = append(out, Instance{Sched: sched, Env: env})
		}
	}
	return out, nil
}

// forEachScenario runs fn over scenarios with bounded parallelism,
// collecting the first error.
func (l *Lab) forEachScenario(scenarios []Scenario, fn func(i int, sc Scenario) error) error {
	type job struct {
		i  int
		sc Scenario
	}
	jobs := make(chan job, len(scenarios))
	for i, sc := range scenarios {
		jobs <- job{i, sc}
	}
	close(jobs)
	errc := make(chan error, l.cfg.Workers)
	var wg sync.WaitGroup
	var done int
	var progressMu sync.Mutex
	for w := 0; w < l.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := fn(j.i, j.sc); err != nil {
					select {
					case errc <- fmt.Errorf("scenario %s: %w", j.sc, err):
					default:
					}
					return
				}
				if l.cfg.Progress != nil {
					progressMu.Lock()
					done++
					l.cfg.Progress(done, len(scenarios))
					progressMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return err
	default:
		return nil
	}
}

// SynthScenarios builds the full synthetic-scenario grid of Section
// 4.3: every application spec x every archetype x phi in phis x decay
// method. The paper's grid is ParamGrid() x 4 logs x {0.1,0.2,0.5} x
// {linear,expo,real} = 1,440 scenarios.
func SynthScenarios(apps []daggen.Spec, archs []workload.Archetype, phis []float64, methods []workload.Method) []Scenario {
	var out []Scenario
	for _, app := range apps {
		for _, arch := range archs {
			for _, phi := range phis {
				for _, m := range methods {
					out = append(out, Scenario{App: app, Arch: arch, Phi: phi, Method: m})
				}
			}
		}
	}
	return out
}

// Grid5000Scenarios builds the Grid'5000 scenarios: one per application
// spec, with the whole reservation log used as the reservation schedule
// (phi = 1, real method).
func Grid5000Scenarios(apps []daggen.Spec) []Scenario {
	var out []Scenario
	for _, app := range apps {
		out = append(out, Scenario{App: app, Arch: workload.Grid5000, Phi: 1, Method: workload.Real})
	}
	return out
}

// PaperPhis are the tagging fractions of Section 3.2.1.
var PaperPhis = []float64{0.1, 0.2, 0.5}
