package sim

import (
	"resched/internal/daggen"
	"resched/internal/workload"
	"testing"
)

func TestRunPessimismSweep(t *testing.T) {
	lab := NewLab(tinyConfig())
	factors := []float64{1, 2, 4}
	res, err := RunPessimism(lab, tinyScenarios()[:1], factors)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 4 {
		t.Fatalf("Instances = %d", res.Instances)
	}
	// Waste strictly grows with the factor; factor 1 wastes nothing.
	if res.WastePct[0] != 0 {
		t.Fatalf("factor 1 waste = %v", res.WastePct[0])
	}
	for i := 1; i < len(factors); i++ {
		if res.WastePct[i] <= res.WastePct[i-1] {
			t.Fatalf("waste not increasing: %v", res.WastePct)
		}
		if res.ReservedTAT[i] <= res.ReservedTAT[i-1] {
			t.Fatalf("reserved turnaround not increasing: %v", res.ReservedTAT)
		}
	}
	// Realized work always fits inside reservations.
	for i := range factors {
		if res.RealizedTAT[i] > res.ReservedTAT[i] {
			t.Fatalf("realized %v above reserved %v", res.RealizedTAT, res.ReservedTAT)
		}
	}
	if _, err := RunPessimism(lab, tinyScenarios()[:1], nil); err == nil {
		t.Fatal("empty factors accepted")
	}
}

func TestRunMultiSite(t *testing.T) {
	lab := NewLab(tinyConfig())
	res, err := RunMultiSite(lab, []daggen.Spec{tinyApp()}, workload.SDSCDS, workload.OSCCluster, 0.2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 2 { // StartTimes x Taggings = 2 x 1
		t.Fatalf("Instances = %d", res.Instances)
	}
	// Adding a free second site can only help the greedy scheduler on
	// these fixed instances.
	if res.TurnCPA > res.TurnSolo {
		t.Fatalf("federation slower than solo: %v vs %v", res.TurnCPA, res.TurnSolo)
	}
	// The unbounded policy buys turnaround with CPU-hours.
	if res.CPUUnbounded < res.CPUCPA {
		t.Fatalf("unbounded cheaper than CPA: %v vs %v", res.CPUUnbounded, res.CPUCPA)
	}
	if _, err := RunMultiSite(lab, nil, workload.SDSCDS, workload.OSCCluster, 0.2, 0); err == nil {
		t.Fatal("empty app list accepted")
	}
}

func TestRunDynamicSweep(t *testing.T) {
	lab := NewLab(tinyConfig())
	res, err := RunDynamic(lab, tinyScenarios()[:1], 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 4 {
		t.Fatalf("Instances = %d", res.Instances)
	}
	// Rebook and replan never abort; naive survives at most as often.
	idx := map[string]int{}
	for i, s := range res.Strategies {
		idx[s.String()] = i
	}
	if res.SurvivalPct[idx["rebook"]] != 100 || res.SurvivalPct[idx["replan"]] != 100 {
		t.Fatalf("recovery strategies aborted: %v", res.SurvivalPct)
	}
	if res.SurvivalPct[idx["naive"]] > 100 {
		t.Fatalf("survival > 100%%: %v", res.SurvivalPct)
	}
	for i, s := range res.SlowdownPct {
		if s < 0 {
			t.Fatalf("negative slowdown for %v: %v", res.Strategies[i], s)
		}
	}
}
