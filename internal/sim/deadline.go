package sim

import (
	"context"
	"errors"
	"fmt"

	"resched/internal/core"
	"resched/internal/model"
)

// LooseFactor sets the "loose deadline" of Section 5.3: 50% larger
// than the latest tightest deadline across the compared algorithms.
const LooseFactor = 1.5

// DeadlineResult aggregates the RESSCHEDDL experiments (Tables 6 and
// 7): per algorithm, average percentage degradation from best for the
// tightest achievable deadline and for CPU-hours consumed under a
// loose deadline.
type DeadlineResult struct {
	Algorithms []core.DLAlgorithm
	// DegTightest[i] is algorithm i's mean percentage degradation from
	// the per-scenario best (smallest) tightest deadline, measured as
	// deadline - now.
	DegTightest []float64
	// DegCPUHours[i] is the mean percentage degradation from the
	// per-scenario best CPU-hour consumption at the loose deadline.
	DegCPUHours []float64
	// WinsTightest counts scenarios where algorithm i achieved the
	// tightest deadline (with ties).
	WinsTightest []int
	Scenarios    int
	// SkippedInstances counts instances dropped because some algorithm
	// found no feasible schedule even at the loose deadline.
	SkippedInstances int
	Instances        int
}

// RunDeadline runs the RESSCHEDDL comparison. For every instance it
// determines each algorithm's tightest deadline by binary search, then
// measures CPU-hours at a loose deadline 50% larger than the latest
// tightest deadline across algorithms. Instances where an algorithm
// cannot meet even the loose deadline are skipped (and counted).
func RunDeadline(lab *Lab, scenarios []Scenario, algos []core.DLAlgorithm) (*DeadlineResult, error) {
	if len(algos) == 0 {
		return nil, fmt.Errorf("sim: no algorithms")
	}
	nA := len(algos)
	tight := make([][]float64, len(scenarios))
	cpu := make([][]float64, len(scenarios))
	counted := make([]int, len(scenarios))
	skipped := make([]int, len(scenarios))

	gran := lab.Config().Granularity
	err := lab.forEachScenario(scenarios, func(i int, sc Scenario) error {
		insts, err := lab.Instances(sc)
		if err != nil {
			return err
		}
		sumT := make([]float64, nA)
		sumC := make([]float64, nA)
		for _, inst := range insts {
			tights := make([]model.Duration, nA)
			worst := model.Duration(0)
			ok := true
			for a, algo := range algos {
				k, _, err := inst.Sched.TightestDeadlineGranularity(context.Background(), inst.Env, algo, gran)
				if err != nil {
					ok = false
					break
				}
				tights[a] = k - inst.Env.Now
				if tights[a] > worst {
					worst = tights[a]
				}
			}
			if !ok {
				skipped[i]++
				continue
			}
			loose := inst.Env.Now + model.Duration(LooseFactor*float64(worst))
			cpus := make([]float64, nA)
			for a, algo := range algos {
				sched, err := inst.Sched.Deadline(inst.Env, algo, loose)
				if err != nil {
					if errors.Is(err, core.ErrInfeasible) {
						ok = false
						break
					}
					return err
				}
				cpus[a] = sched.CPUHours()
			}
			if !ok {
				skipped[i]++
				continue
			}
			for a := 0; a < nA; a++ {
				sumT[a] += float64(tights[a])
				sumC[a] += cpus[a]
			}
			counted[i]++
		}
		if counted[i] == 0 {
			return fmt.Errorf("sim: every instance skipped")
		}
		tight[i] = make([]float64, nA)
		cpu[i] = make([]float64, nA)
		for a := 0; a < nA; a++ {
			tight[i][a] = sumT[a] / float64(counted[i])
			cpu[i][a] = sumC[a] / float64(counted[i])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &DeadlineResult{
		Algorithms:   algos,
		DegTightest:  make([]float64, nA),
		DegCPUHours:  make([]float64, nA),
		WinsTightest: make([]int, nA),
		Scenarios:    len(scenarios),
	}
	for i := range scenarios {
		res.Instances += counted[i]
		res.SkippedInstances += skipped[i]
		if err := accumulate(tight[i], res.DegTightest, res.WinsTightest); err != nil {
			return nil, err
		}
		wins := make([]int, nA) // CPU-hour wins are not reported in the paper
		if err := accumulate(cpu[i], res.DegCPUHours, wins); err != nil {
			return nil, err
		}
	}
	for a := 0; a < nA; a++ {
		res.DegTightest[a] /= float64(len(scenarios))
		res.DegCPUHours[a] /= float64(len(scenarios))
	}
	return res, nil
}
