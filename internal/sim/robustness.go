package sim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"

	"resched/internal/dynamic"
	"resched/internal/pessimism"
)

// PessimismResult aggregates the runtime-overestimation study over a
// scenario set: per factor, mean reserved and realized turnaround and
// the mean fraction of paid CPU-hours wasted.
type PessimismResult struct {
	Factors     []float64
	ReservedTAT []float64 // seconds
	RealizedTAT []float64 // seconds
	WastePct    []float64
	Instances   int
}

// RunPessimism evaluates the given overestimation factors on every
// instance of the scenarios.
func RunPessimism(lab *Lab, scenarios []Scenario, factors []float64) (*PessimismResult, error) {
	if len(factors) == 0 {
		return nil, fmt.Errorf("sim: no factors")
	}
	res := &PessimismResult{
		Factors:     factors,
		ReservedTAT: make([]float64, len(factors)),
		RealizedTAT: make([]float64, len(factors)),
		WastePct:    make([]float64, len(factors)),
	}
	err := lab.forEachScenario(scenarios, func(_ int, sc Scenario) error {
		insts, err := lab.Instances(sc)
		if err != nil {
			return err
		}
		for _, inst := range insts {
			for fi, f := range factors {
				r, err := pessimism.Evaluate(inst.Sched.Graph(), inst.Env, f)
				if err != nil {
					return err
				}
				res.ReservedTAT[fi] += float64(r.ReservedTurnaround)
				res.RealizedTAT[fi] += float64(r.RealizedTurnaround)
				res.WastePct[fi] += 100 * r.WasteFraction()
			}
			res.Instances++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res.Instances == 0 {
		return nil, fmt.Errorf("sim: no instances")
	}
	for fi := range factors {
		res.ReservedTAT[fi] /= float64(res.Instances)
		res.RealizedTAT[fi] /= float64(res.Instances)
		res.WastePct[fi] /= float64(res.Instances)
	}
	return res, nil
}

// DynamicSweepResult aggregates the changing-reservation-table study:
// per conflict strategy, the survival rate and the mean slowdown of
// survivors relative to the static plan.
type DynamicSweepResult struct {
	Strategies    []dynamic.Strategy
	SurvivalPct   []float64
	SlowdownPct   []float64 // mean over surviving runs
	MeanConflicts []float64
	Instances     int
}

// RunDynamic books every instance's plan against a live table with
// the given competitor pressure, once per strategy.
func RunDynamic(lab *Lab, scenarios []Scenario, rate float64) (*DynamicSweepResult, error) {
	strategies := []dynamic.Strategy{dynamic.Naive, dynamic.Rebook, dynamic.Replan}
	res := &DynamicSweepResult{
		Strategies:    strategies,
		SurvivalPct:   make([]float64, len(strategies)),
		SlowdownPct:   make([]float64, len(strategies)),
		MeanConflicts: make([]float64, len(strategies)),
	}
	survived := make([]int, len(strategies))
	err := lab.forEachScenario(scenarios, func(_ int, sc Scenario) error {
		insts, err := lab.Instances(sc)
		if err != nil {
			return err
		}
		for ii, inst := range insts {
			comp := dynamic.DefaultCompetitor(inst.Env.P)
			comp.Rate = rate
			for si, strat := range strategies {
				h := fnv.New64a()
				fmt.Fprintf(h, "%s/%d/%v", sc, ii, strat)
				rng := rand.New(rand.NewSource(int64(h.Sum64() >> 1)))
				r, err := dynamic.Run(inst.Sched.Graph(), inst.Env, comp, strat, rng)
				if errors.Is(err, dynamic.ErrConflict) {
					continue
				}
				if err != nil {
					return err
				}
				survived[si]++
				res.SlowdownPct[si] += 100 * (float64(r.Schedule.Turnaround())/float64(r.PlannedTurnaround) - 1)
				res.MeanConflicts[si] += float64(r.Conflicts)
			}
			res.Instances++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res.Instances == 0 {
		return nil, fmt.Errorf("sim: no instances")
	}
	for si := range strategies {
		res.SurvivalPct[si] = 100 * float64(survived[si]) / float64(res.Instances)
		if survived[si] > 0 {
			res.SlowdownPct[si] /= float64(survived[si])
			res.MeanConflicts[si] /= float64(survived[si])
		}
	}
	return res, nil
}
