package sim

import (
	"testing"
)

func TestRunExtensionsSmoke(t *testing.T) {
	lab := NewLab(tinyConfig())
	res, err := RunExtensions(lab, tinyScenarios()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 4 {
		t.Fatalf("Instances = %d", res.Instances)
	}
	for name, v := range map[string]float64{
		"TurnBDCPAR":  res.TurnBDCPAR,
		"TurnOneStep": res.TurnOneStep,
		"TurnBlind":   res.TurnBlind,
		"CPUBDCPAR":   res.CPUBDCPAR,
		"CPUOneStep":  res.CPUOneStep,
		"CPUBlind":    res.CPUBlind,
		"MeanProbes":  res.MeanProbes,
	} {
		if v <= 0 {
			t.Fatalf("%s = %v, want > 0", name, v)
		}
	}
	// The blind scheduler probes a subset of the candidates BD_CPAR
	// scans; greedy composition means it can occasionally luck into a
	// better global schedule, but not substantially so on average.
	if res.TurnBlind < 0.95*res.TurnBDCPAR {
		t.Fatalf("blind mean turnaround %.0f substantially beats full knowledge %.0f", res.TurnBlind, res.TurnBDCPAR)
	}
	if _, err := RunExtensions(lab, nil); err == nil {
		t.Fatal("empty scenario list accepted")
	}
}
