package sim

import (
	"fmt"
	"math/rand"

	"resched/internal/core"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/multicluster"
	"resched/internal/workload"
)

// MultiSiteResult compares the single-site baseline against the
// federated platform under both allocation policies.
type MultiSiteResult struct {
	// Turnaround seconds / CPU-hours, averaged over instances.
	TurnSolo, TurnCPA, TurnUnbounded float64
	CPUSolo, CPUCPA, CPUUnbounded    float64
	Instances                        int
}

// RunMultiSite builds two-site platforms — one reservation environment
// from each of two archetypes, observed at the same relative log
// position — schedules every sample application on the first site
// alone and on the federation under both allocation policies, and
// averages the metrics. The staging delay applies to cross-site edges.
func RunMultiSite(lab *Lab, apps []daggen.Spec, archA, archB workload.Archetype, phi float64, stage model.Duration) (*MultiSiteResult, error) {
	if len(apps) == 0 {
		return nil, fmt.Errorf("sim: no applications")
	}
	cfg := lab.Config()
	envs := make([][2]multicluster.Cluster, 0)

	// Build StartTimes x Taggings site pairs.
	siteFor := func(arch workload.Archetype, at model.Time, rng *rand.Rand) (multicluster.Cluster, error) {
		lg, err := lab.Log(arch)
		if err != nil {
			return multicluster.Cluster{}, err
		}
		ex, err := workload.Extract(lg, phi, workload.Expo, at, rng)
		if err != nil {
			return multicluster.Cluster{}, err
		}
		prof, err := ex.Profile()
		if err != nil {
			return multicluster.Cluster{}, err
		}
		q, err := core.HistoricalAvail(ex.Procs, ex.Past, ex.At, workload.HistWindow)
		if err != nil {
			return multicluster.Cluster{}, err
		}
		return multicluster.Cluster{Name: arch.Name, P: ex.Procs, Avail: prof, Q: q}, nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ seedOf("multisite")))
	lgA, err := lab.Log(archA)
	if err != nil {
		return nil, err
	}
	starts, err := workload.StartTimes(lgA, cfg.StartTimes, rng)
	if err != nil {
		return nil, err
	}
	for _, at := range starts {
		for k := 0; k < cfg.Taggings; k++ {
			a, err := siteFor(archA, at, rng)
			if err != nil {
				return nil, err
			}
			b, err := siteFor(archB, at, rng)
			if err != nil {
				return nil, err
			}
			// Both sites observe the same "now".
			envs = append(envs, [2]multicluster.Cluster{a, b})
		}
	}

	res := &MultiSiteResult{}
	for _, spec := range apps {
		g, err := daggen.Generate(spec, rng)
		if err != nil {
			return nil, err
		}
		for _, pair := range envs {
			now := pair[0].Avail.Origin()
			solo := multicluster.Env{Now: now, Clusters: pair[:1]}
			fed := multicluster.Env{Now: now, Clusters: pair[:]}
			opt := multicluster.Options{StageDelay: stage}

			s1, err := multicluster.Turnaround(g, solo, opt)
			if err != nil {
				return nil, err
			}
			opt.Policy = multicluster.PolicyCPA
			s2, err := multicluster.Turnaround(g, fed, opt)
			if err != nil {
				return nil, err
			}
			opt.Policy = multicluster.PolicyUnbounded
			s3, err := multicluster.Turnaround(g, fed, opt)
			if err != nil {
				return nil, err
			}
			res.TurnSolo += float64(s1.Turnaround())
			res.TurnCPA += float64(s2.Turnaround())
			res.TurnUnbounded += float64(s3.Turnaround())
			res.CPUSolo += s1.CPUHours()
			res.CPUCPA += s2.CPUHours()
			res.CPUUnbounded += s3.CPUHours()
			res.Instances++
		}
	}
	n := float64(res.Instances)
	res.TurnSolo /= n
	res.TurnCPA /= n
	res.TurnUnbounded /= n
	res.CPUSolo /= n
	res.CPUCPA /= n
	res.CPUUnbounded /= n
	return res, nil
}
