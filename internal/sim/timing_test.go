package sim

import (
	"testing"

	"resched/internal/daggen"
	"resched/internal/workload"
)

func TestRunTimingShape(t *testing.T) {
	lab := NewLab(Config{LogDays: 21, DAGReps: 1, StartTimes: 1, Taggings: 1, Seed: 3, Workers: 1})
	specs := []daggen.Spec{}
	for _, n := range []int{10, 25} {
		s := daggen.Default()
		s.N = n
		specs = append(specs, s)
	}
	base := Scenario{Arch: workload.SDSCDS, Phi: 0.2, Method: workload.Real}
	res, err := RunTiming(lab, specs, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(timedTurnaround)+len(timedDeadline) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.MeanMs) != len(specs) {
			t.Fatalf("row %s has %d cells", row.Name, len(row.MeanMs))
		}
		for i, ms := range row.MeanMs {
			if ms == 0 {
				t.Fatalf("row %s cell %d is exactly zero; want measured or -1 sentinel", row.Name, i)
			}
		}
	}
	// The turnaround algorithms must always have succeeded.
	for _, row := range res.Rows[:len(timedTurnaround)] {
		for i, ms := range row.MeanMs {
			if ms < 0 {
				t.Fatalf("turnaround row %s cell %d has no successful call", row.Name, i)
			}
		}
	}
}
