package sim

import (
	"errors"
	"fmt"
	"time"

	"resched/internal/core"
	"resched/internal/daggen"
	"resched/internal/model"
)

// TimingRow is one algorithm's mean scheduling time across the swept
// application specs.
type TimingRow struct {
	Name string
	// MeanMs[i] is the mean wall-clock milliseconds to schedule one
	// instance of specs[i], including bottom-level and CPA allocation
	// computation (a fresh scheduler is timed for every call, matching
	// the paper's per-invocation measurements in Tables 9 and 10).
	MeanMs []float64
}

// TimingResult reproduces the execution-time tables: rows are
// algorithms, columns the swept specs.
type TimingResult struct {
	Specs []daggen.Spec
	Rows  []TimingRow
}

// timedAlgorithms is the row order of Tables 9 and 10.
var timedTurnaround = []core.BDMethod{core.BDAll, core.BDCPA, core.BDCPAR}
var timedDeadline = []core.DLAlgorithm{
	core.DLBDAll, core.DLBDCPA, core.DLBDCPAR,
	core.DLRCCPA, core.DLRCCPAR, core.DLRCCPARLambda, core.DLRCBDCPARLambda,
}

// timingDeadlineFactor is the slack of the fixed deadline the DL rows
// are timed at. It is deliberately loose (3x the forward schedule)
// so even DL_BD_ALL — whose huge allocations fragment badly — can
// usually meet it; the tables report means over successful calls only.
const timingDeadlineFactor = 3.0

// RunTiming measures average algorithm execution times over the given
// application specs against reservation schedules drawn from the base
// scenario's log (the paper uses Grid'5000 schedules). Deadline
// algorithms are timed at a loose fixed deadline; calls that cannot
// meet it are excluded from the mean (a NaN mean marks an algorithm
// that never succeeded).
func RunTiming(lab *Lab, specs []daggen.Spec, base Scenario) (*TimingResult, error) {
	res := &TimingResult{Specs: specs}
	for _, bd := range timedTurnaround {
		res.Rows = append(res.Rows, TimingRow{Name: bd.String(), MeanMs: make([]float64, len(specs))})
	}
	for _, dl := range timedDeadline {
		res.Rows = append(res.Rows, TimingRow{Name: dl.String(), MeanMs: make([]float64, len(specs))})
	}

	for si, spec := range specs {
		sc := base
		sc.App = spec
		insts, err := lab.Instances(sc)
		if err != nil {
			return nil, err
		}
		sums := make([]float64, len(res.Rows))
		counts := make([]int, len(res.Rows))
		for _, inst := range insts {
			g := inst.Sched.Graph()
			// Fixed feasible-ish deadline for the DL rows.
			fwd, err := inst.Sched.Turnaround(inst.Env, core.BLCPAR, core.BDCPAR)
			if err != nil {
				return nil, err
			}
			deadline := inst.Env.Now + model.Duration(timingDeadlineFactor*float64(fwd.Turnaround()))

			row := 0
			for _, bd := range timedTurnaround {
				fresh, err := core.NewScheduler(g)
				if err != nil {
					return nil, err
				}
				t0 := time.Now()
				if _, err := fresh.Turnaround(inst.Env, core.BLCPAR, bd); err != nil {
					return nil, fmt.Errorf("timing %v: %w", bd, err)
				}
				sums[row] += float64(time.Since(t0).Microseconds()) / 1000
				counts[row]++
				row++
			}
			for _, dl := range timedDeadline {
				fresh, err := core.NewScheduler(g)
				if err != nil {
					return nil, err
				}
				t0 := time.Now()
				_, err = fresh.Deadline(inst.Env, dl, deadline)
				elapsed := float64(time.Since(t0).Microseconds()) / 1000
				if err != nil && !errors.Is(err, core.ErrInfeasible) {
					return nil, fmt.Errorf("timing %v: %w", dl, err)
				}
				if err == nil {
					sums[row] += elapsed
					counts[row]++
				}
				row++
			}
		}
		for r := range res.Rows {
			if counts[r] > 0 {
				res.Rows[r].MeanMs[si] = sums[r] / float64(counts[r])
			} else {
				res.Rows[r].MeanMs[si] = -1 // no successful call
			}
		}
	}
	return res, nil
}
