package sim

import (
	"fmt"

	"resched/internal/core"
	"resched/internal/onestep"
	"resched/internal/probe"
)

// ExtensionsResult compares the library's extensions against the
// paper's best RESSCHED heuristic on the same instances: the one-step
// allocate-and-map scheduler and the blind (probe-based) scheduler.
type ExtensionsResult struct {
	// Mean turnaround seconds per scheduler.
	TurnBDCPAR, TurnOneStep, TurnBlind float64
	// Mean CPU-hours per scheduler.
	CPUBDCPAR, CPUOneStep, CPUBlind float64
	// MeanProbes is the blind scheduler's average probe count.
	MeanProbes float64
	Instances  int
}

// RunExtensions schedules every instance of the scenarios with
// BD_CPAR (full knowledge), the one-step scheduler, and the blind
// scheduler, and reports mean turnaround and CPU-hours for each.
func RunExtensions(lab *Lab, scenarios []Scenario) (*ExtensionsResult, error) {
	res := &ExtensionsResult{}
	err := lab.forEachScenario(scenarios, func(_ int, sc Scenario) error {
		insts, err := lab.Instances(sc)
		if err != nil {
			return err
		}
		for _, inst := range insts {
			base, err := inst.Sched.Turnaround(inst.Env, core.BLCPAR, core.BDCPAR)
			if err != nil {
				return err
			}
			one, err := onestep.Schedule(inst.Sched.Graph(), inst.Env, onestep.Options{})
			if err != nil {
				return err
			}
			bs := probe.NewSimulatedBatch(inst.Env.Avail, inst.Env.Now)
			blind, err := probe.Schedule(inst.Sched.Graph(), bs, probe.Options{Q: inst.Env.Q})
			if err != nil {
				return err
			}
			// Every scheduler's output must verify against the true
			// environment; a broken extension must fail loudly here.
			for name, s := range map[string]*core.Schedule{
				"BD_CPAR": base, "one-step": one.Schedule, "blind": blind.Schedule,
			} {
				if err := inst.Sched.Verify(inst.Env, s); err != nil {
					return fmt.Errorf("%s schedule invalid: %w", name, err)
				}
			}
			res.TurnBDCPAR += float64(base.Turnaround())
			res.TurnOneStep += float64(one.Schedule.Turnaround())
			res.TurnBlind += float64(blind.Schedule.Turnaround())
			res.CPUBDCPAR += base.CPUHours()
			res.CPUOneStep += one.Schedule.CPUHours()
			res.CPUBlind += blind.Schedule.CPUHours()
			res.MeanProbes += float64(blind.Probes)
			res.Instances++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if res.Instances == 0 {
		return nil, fmt.Errorf("sim: no instances")
	}
	n := float64(res.Instances)
	res.TurnBDCPAR /= n
	res.TurnOneStep /= n
	res.TurnBlind /= n
	res.CPUBDCPAR /= n
	res.CPUOneStep /= n
	res.CPUBlind /= n
	res.MeanProbes /= n
	return res, nil
}
