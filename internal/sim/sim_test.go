package sim

import (
	"testing"

	"resched/internal/core"
	"resched/internal/daggen"
	"resched/internal/workload"
)

// tinyConfig keeps the tests fast: one small log, few instances.
func tinyConfig() Config {
	return Config{
		LogDays:    21,
		DAGReps:    2,
		StartTimes: 2,
		Taggings:   1,
		Seed:       7,
		Workers:    2,
	}
}

// tinyApp is a small application spec for fast tests.
func tinyApp() daggen.Spec {
	spec := daggen.Default()
	spec.N = 10
	return spec
}

func tinyScenarios() []Scenario {
	return SynthScenarios(
		[]daggen.Spec{tinyApp()},
		[]workload.Archetype{workload.SDSCDS},
		[]float64{0.2},
		[]workload.Method{workload.Real, workload.Expo},
	)
}

func TestSynthScenariosGridSize(t *testing.T) {
	apps := daggen.ParamGrid()
	scs := SynthScenarios(apps, workload.BatchArchetypes, PaperPhis, workload.AllMethods)
	if len(scs) != 40*4*3*3 {
		t.Fatalf("full grid has %d scenarios, want 1440", len(scs))
	}
	g5k := Grid5000Scenarios(apps)
	if len(g5k) != 40 {
		t.Fatalf("grid5000 scenarios = %d, want 40", len(g5k))
	}
	if g5k[0].Phi != 1 || g5k[0].Method != workload.Real {
		t.Fatalf("grid5000 scenario %+v", g5k[0])
	}
}

func TestLabLogCaching(t *testing.T) {
	lab := NewLab(tinyConfig())
	a, err := lab.Log(workload.SDSCDS)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lab.Log(workload.SDSCDS)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("log not cached")
	}
}

func TestInstancesShapeAndDeterminism(t *testing.T) {
	sc := tinyScenarios()[0]
	lab1 := NewLab(tinyConfig())
	insts, err := lab1.Instances(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 2 * 1 // DAGReps x StartTimes x Taggings
	if len(insts) != want {
		t.Fatalf("got %d instances, want %d", len(insts), want)
	}
	for _, inst := range insts {
		if inst.Env.P != workload.SDSCDS.Procs {
			t.Fatalf("instance cluster size %d", inst.Env.P)
		}
		if inst.Env.Q < 1 || inst.Env.Q > inst.Env.P {
			t.Fatalf("instance q = %d", inst.Env.Q)
		}
	}
	// Determinism: a fresh lab reproduces the same environments.
	lab2 := NewLab(tinyConfig())
	insts2, err := lab2.Instances(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range insts {
		if insts[i].Env.Now != insts2[i].Env.Now || insts[i].Env.Q != insts2[i].Env.Q {
			t.Fatalf("instance %d differs across labs", i)
		}
	}
}

func TestRunTurnaroundSmoke(t *testing.T) {
	lab := NewLab(tinyConfig())
	res, err := RunTurnaround(lab, tinyScenarios(), core.AllBD)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != 2 {
		t.Fatalf("Scenarios = %d", res.Scenarios)
	}
	if res.Instances != 2*4 {
		t.Fatalf("Instances = %d", res.Instances)
	}
	bestT, bestC := false, false
	for a := range res.Algorithms {
		if res.DegTurnaround[a] < 0 || res.DegCPUHours[a] < 0 {
			t.Fatalf("negative degradation for %v", res.Algorithms[a])
		}
		if res.DegTurnaround[a] == 0 {
			// An algorithm with zero average degradation must have won
			// every scenario.
			if res.WinsTurnaround[a] != res.Scenarios {
				t.Fatalf("%v: zero degradation but %d wins", res.Algorithms[a], res.WinsTurnaround[a])
			}
		}
		bestT = bestT || res.WinsTurnaround[a] > 0
		bestC = bestC || res.WinsCPUHours[a] > 0
	}
	if !bestT || !bestC {
		t.Fatal("no winners recorded")
	}
	if _, err := RunTurnaround(lab, tinyScenarios(), nil); err == nil {
		t.Fatal("empty algorithm list accepted")
	}
}

func TestRunTurnaroundCPADominatesStrawmen(t *testing.T) {
	// Even at tiny scale the paper's headline ordering should show: the
	// CPA-bounded algorithms beat BD_ALL on CPU-hours.
	lab := NewLab(tinyConfig())
	res, err := RunTurnaround(lab, tinyScenarios(), core.AllBD)
	if err != nil {
		t.Fatal(err)
	}
	idx := map[core.BDMethod]int{}
	for i, a := range res.Algorithms {
		idx[a] = i
	}
	if res.DegCPUHours[idx[core.BDAll]] <= res.DegCPUHours[idx[core.BDCPAR]] {
		t.Fatalf("BD_ALL CPU-hour degradation %.2f not worse than BD_CPAR %.2f",
			res.DegCPUHours[idx[core.BDAll]], res.DegCPUHours[idx[core.BDCPAR]])
	}
}

func TestRunBLComparisonSmoke(t *testing.T) {
	lab := NewLab(tinyConfig())
	res, err := RunBLComparison(lab, tinyScenarios(), []core.BDMethod{core.BDCPAR, core.BDAll})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cases != 2*2 {
		t.Fatalf("Cases = %d", res.Cases)
	}
	var share float64
	for m := range res.Methods {
		share += res.BestShare[m]
		if res.MinImprovePct[m] > res.MaxImprovePct[m] {
			t.Fatalf("%v: min improvement %.2f > max %.2f", res.Methods[m], res.MinImprovePct[m], res.MaxImprovePct[m])
		}
	}
	if share < 1 {
		t.Fatalf("best shares sum to %.2f, want >= 1 (ties)", share)
	}
	// BL_1 improvement over itself is identically zero.
	if res.MinImprovePct[0] != 0 || res.MaxImprovePct[0] != 0 {
		t.Fatalf("BL_1 self-improvement [%v,%v]", res.MinImprovePct[0], res.MaxImprovePct[0])
	}
}

// TestRunDeadlineOrdering checks the paper's Table 6 shape at tiny
// scale: DL_BD_ALL consumes vastly more CPU-hours at loose deadlines
// than the CPA-bounded aggressive algorithm, which in turn consumes
// more than the resource-conservative one.
func TestRunDeadlineOrdering(t *testing.T) {
	lab := NewLab(tinyConfig())
	algos := []core.DLAlgorithm{core.DLBDAll, core.DLBDCPA, core.DLRCCPAR}
	res, err := RunDeadline(lab, tinyScenarios()[:1], algos)
	if err != nil {
		t.Fatal(err)
	}
	all, cpaAgg, rc := res.DegCPUHours[0], res.DegCPUHours[1], res.DegCPUHours[2]
	if !(all > cpaAgg && cpaAgg > rc) {
		t.Fatalf("CPU-hour ordering broken: BD_ALL %.1f, BD_CPA %.1f, RC_CPAR %.1f", all, cpaAgg, rc)
	}
	// The unbounded aggressive algorithm is at least an order of
	// magnitude above the resource-conservative one.
	if all < 10*(rc+1) {
		t.Fatalf("BD_ALL degradation %.1f not an order of magnitude above RC %.1f", all, rc)
	}
}

func TestRunDeadlineSmoke(t *testing.T) {
	lab := NewLab(tinyConfig())
	algos := []core.DLAlgorithm{core.DLBDCPA, core.DLRCCPAR}
	res, err := RunDeadline(lab, tinyScenarios()[:1], algos)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != 1 {
		t.Fatalf("Scenarios = %d", res.Scenarios)
	}
	if res.Instances+res.SkippedInstances != 4 {
		t.Fatalf("instances %d + skipped %d != 4", res.Instances, res.SkippedInstances)
	}
	for a := range algos {
		if res.DegTightest[a] < 0 || res.DegCPUHours[a] < 0 {
			t.Fatalf("negative degradation")
		}
	}
	if _, err := RunDeadline(lab, tinyScenarios()[:1], nil); err == nil {
		t.Fatal("empty algorithm list accepted")
	}
}
