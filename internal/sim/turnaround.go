package sim

import (
	"fmt"

	"resched/internal/core"
	"resched/internal/stats"
)

// winTolerance treats metric values within this relative distance of
// the best as tied winners, absorbing one-second rounding noise.
const winTolerance = 1e-9

// TurnaroundResult aggregates the RESSCHED experiment (Tables 4 and 5):
// per bounding method, the average percentage degradation from the
// per-scenario best and the number of scenario wins, for both
// turn-around time and CPU-hour consumption.
type TurnaroundResult struct {
	Algorithms []core.BDMethod
	// DegTurnaround[i] is the mean over scenarios of algorithm i's
	// percentage degradation from the scenario's best turnaround.
	DegTurnaround  []float64
	WinsTurnaround []int
	DegCPUHours    []float64
	WinsCPUHours   []int
	Scenarios      int
	Instances      int
}

// RunTurnaround runs the RESSCHED comparison: every scenario is solved
// by each bounding method (bottom levels fixed to BL_CPAR, the paper's
// choice after Section 4.3.1), metrics are averaged per scenario, and
// degradation-from-best is averaged across scenarios.
func RunTurnaround(lab *Lab, scenarios []Scenario, algos []core.BDMethod) (*TurnaroundResult, error) {
	if len(algos) == 0 {
		return nil, fmt.Errorf("sim: no algorithms")
	}
	nA := len(algos)
	// Per-scenario per-algorithm means.
	turn := make([][]float64, len(scenarios))
	cpu := make([][]float64, len(scenarios))
	instances := make([]int, len(scenarios))

	err := lab.forEachScenario(scenarios, func(i int, sc Scenario) error {
		insts, err := lab.Instances(sc)
		if err != nil {
			return err
		}
		sumT := make([]float64, nA)
		sumC := make([]float64, nA)
		for _, inst := range insts {
			for a, bd := range algos {
				sched, err := inst.Sched.Turnaround(inst.Env, core.BLCPAR, bd)
				if err != nil {
					return fmt.Errorf("%v: %w", bd, err)
				}
				sumT[a] += float64(sched.Turnaround())
				sumC[a] += sched.CPUHours()
			}
		}
		turn[i] = make([]float64, nA)
		cpu[i] = make([]float64, nA)
		for a := 0; a < nA; a++ {
			turn[i][a] = sumT[a] / float64(len(insts))
			cpu[i][a] = sumC[a] / float64(len(insts))
		}
		instances[i] = len(insts)
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &TurnaroundResult{
		Algorithms:     algos,
		DegTurnaround:  make([]float64, nA),
		WinsTurnaround: make([]int, nA),
		DegCPUHours:    make([]float64, nA),
		WinsCPUHours:   make([]int, nA),
		Scenarios:      len(scenarios),
	}
	for i := range scenarios {
		res.Instances += instances[i]
		if err := accumulate(turn[i], res.DegTurnaround, res.WinsTurnaround); err != nil {
			return nil, err
		}
		if err := accumulate(cpu[i], res.DegCPUHours, res.WinsCPUHours); err != nil {
			return nil, err
		}
	}
	for a := 0; a < nA; a++ {
		res.DegTurnaround[a] /= float64(len(scenarios))
		res.DegCPUHours[a] /= float64(len(scenarios))
	}
	return res, nil
}

// accumulate adds one scenario's degradations into degSum and counts
// its winners.
func accumulate(values, degSum []float64, wins []int) error {
	degs, err := stats.DegradationFromBest(values)
	if err != nil {
		return err
	}
	for a, d := range degs {
		degSum[a] += d
	}
	for _, w := range stats.Winners(values, winTolerance) {
		wins[w]++
	}
	return nil
}

// BLResult aggregates the bottom-level method comparison of Section
// 4.3.1: for each bottom-level method, the share of scenarios where it
// is (one of) the best, and the range of its turnaround improvement
// relative to BL_1, all measured across every bounding method.
type BLResult struct {
	Methods []core.BLMethod
	// BestShare[i] is the fraction of (scenario x bounding method)
	// cases won by method i (ties count for every winner).
	BestShare []float64
	// MinImprovePct / MaxImprovePct bound the relative turnaround
	// improvement over BL_1 in percent (negative = BL_1 better).
	MinImprovePct []float64
	MaxImprovePct []float64
	Cases         int
}

// RunBLComparison reproduces Section 4.3.1: schedule each instance
// with all four bottom-level methods under each bounding method, and
// compare the per-scenario average turnarounds.
func RunBLComparison(lab *Lab, scenarios []Scenario, bounds []core.BDMethod) (*BLResult, error) {
	methods := core.AllBL
	nM := len(methods)
	type cell struct {
		turn []float64 // per BL method mean turnaround
	}
	cells := make([][]cell, len(scenarios)) // [scenario][bound]
	err := lab.forEachScenario(scenarios, func(i int, sc Scenario) error {
		insts, err := lab.Instances(sc)
		if err != nil {
			return err
		}
		cells[i] = make([]cell, len(bounds))
		for b := range bounds {
			cells[i][b].turn = make([]float64, nM)
		}
		for _, inst := range insts {
			for b, bd := range bounds {
				for m, bl := range methods {
					sched, err := inst.Sched.Turnaround(inst.Env, bl, bd)
					if err != nil {
						return err
					}
					cells[i][b].turn[m] += float64(sched.Turnaround())
				}
			}
		}
		for b := range bounds {
			for m := range methods {
				cells[i][b].turn[m] /= float64(len(insts))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &BLResult{
		Methods:       methods,
		BestShare:     make([]float64, nM),
		MinImprovePct: make([]float64, nM),
		MaxImprovePct: make([]float64, nM),
	}
	first := true
	for i := range scenarios {
		for b := range bounds {
			vals := cells[i][b].turn
			for _, w := range stats.Winners(vals, winTolerance) {
				res.BestShare[w]++
			}
			base := vals[0] // BL_1 is methods[0]
			for m := range methods {
				imp := 100 * (base - vals[m]) / base
				if first || imp < res.MinImprovePct[m] {
					res.MinImprovePct[m] = imp
				}
				if first || imp > res.MaxImprovePct[m] {
					res.MaxImprovePct[m] = imp
				}
			}
			first = false
			res.Cases++
		}
	}
	for m := range methods {
		res.BestShare[m] /= float64(res.Cases)
	}
	return res, nil
}
