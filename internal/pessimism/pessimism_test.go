package pessimism

import (
	"math/rand"
	"testing"

	"resched/internal/core"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/profile"
)

func instance(t *testing.T, seed int64, busy bool) (*daggen.Spec, core.Env) {
	t.Helper()
	spec := daggen.Default()
	spec.N = 20
	p := 32
	prof := profile.New(p, 0)
	if busy {
		rng := rand.New(rand.NewSource(seed + 100))
		for k := 0; k < 15; k++ {
			start := model.Time(rng.Int63n(int64(2 * model.Day)))
			dur := model.Duration(rng.Int63n(int64(6*model.Hour)) + 1800)
			procs := rng.Intn(p/2) + 1
			if prof.MinFree(start, start+dur) >= procs {
				if err := prof.Reserve(start, start+dur, procs); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return &spec, core.Env{P: p, Now: 0, Avail: prof, Q: 24}
}

func TestEvaluateFactorOne(t *testing.T) {
	spec, env := instance(t, 1, true)
	g := daggen.MustGenerate(*spec, rand.New(rand.NewSource(1)))
	res, err := Evaluate(g, env, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.RealizedTurnaround != res.ReservedTurnaround {
		t.Fatalf("factor 1: realized %d != reserved %d", res.RealizedTurnaround, res.ReservedTurnaround)
	}
	if res.WasteFraction() != 0 {
		t.Fatalf("factor 1: waste %v, want 0", res.WasteFraction())
	}
}

func TestEvaluateValidation(t *testing.T) {
	spec, env := instance(t, 2, false)
	g := daggen.MustGenerate(*spec, rand.New(rand.NewSource(2)))
	for _, f := range []float64{0.5, 0} {
		if _, err := Evaluate(g, env, f); err == nil {
			t.Fatalf("factor %v accepted", f)
		}
	}
	if _, err := Sweep(g, env, nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestPessimismCostsTimeAndMoney(t *testing.T) {
	spec, env := instance(t, 3, true)
	g := daggen.MustGenerate(*spec, rand.New(rand.NewSource(3)))
	results, err := Sweep(g, env, []float64{1, 1.5, 2, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.RealizedTurnaround > r.ReservedTurnaround {
			t.Fatalf("factor %v: realized %d exceeds reserved %d", r.Factor, r.RealizedTurnaround, r.ReservedTurnaround)
		}
		if r.UsedCPUHours > r.PaidCPUHours+1e-9 {
			t.Fatalf("factor %v: used %v exceeds paid %v", r.Factor, r.UsedCPUHours, r.PaidCPUHours)
		}
		if i > 0 && r.WasteFraction() <= results[i-1].WasteFraction() {
			t.Fatalf("waste did not grow with pessimism: %v then %v at factor %v",
				results[i-1].WasteFraction(), r.WasteFraction(), r.Factor)
		}
	}
	// The paper's prediction: pessimistic estimates stretch realized
	// turnaround. Compare the extremes.
	if results[len(results)-1].RealizedTurnaround <= results[0].RealizedTurnaround {
		t.Fatalf("factor 5 realized turnaround %d not above factor 1's %d",
			results[len(results)-1].RealizedTurnaround, results[0].RealizedTurnaround)
	}
}

func TestReservedTurnaroundScalesOnEmptyMachine(t *testing.T) {
	// On an empty machine, uniform inflation scales every execution
	// time by f, CPA's comparisons are scale-invariant, so the
	// reserved turnaround must grow roughly linearly.
	spec, env := instance(t, 4, false)
	g := daggen.MustGenerate(*spec, rand.New(rand.NewSource(4)))
	one, err := Evaluate(g, env, 1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := Evaluate(g, env, 2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(two.ReservedTurnaround) / float64(one.ReservedTurnaround)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("reserved turnaround ratio %v, want ~2", ratio)
	}
}

func TestInflatePreservesStructure(t *testing.T) {
	spec, _ := instance(t, 5, false)
	g := daggen.MustGenerate(*spec, rand.New(rand.NewSource(5)))
	inf, err := inflate(g, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if inf.NumTasks() != g.NumTasks() || inf.NumEdges() != g.NumEdges() {
		t.Fatalf("inflate changed structure: %v vs %v", inf, g)
	}
	for i := 0; i < g.NumTasks(); i++ {
		if inf.Task(i).Alpha != g.Task(i).Alpha {
			t.Fatalf("inflate changed alpha of task %d", i)
		}
		if inf.Task(i).Seq < 2*g.Task(i).Seq {
			t.Fatalf("task %d not inflated: %d vs %d", i, inf.Task(i).Seq, g.Task(i).Seq)
		}
	}
}
