// Package pessimism studies the impact of inaccurate execution-time
// knowledge, which the paper's Section 3.1 explicitly leaves out of
// scope: "reservations would be made using pessimistic estimates of
// task execution times... More pessimistic estimates lead to task
// reservations later in the future... and thus to longer application
// execution time."
//
// The model follows that paragraph. The scheduler sees estimated
// sequential times f x T (f >= 1) and books reservations sized for
// them; tasks actually run with their true times. A task cannot start
// before its reserved start even when its predecessors finished early
// (the reservation is a fixed contract with the batch system), so the
// realized completion uses reserved starts with true durations, while
// the user pays for the full reservations.
package pessimism

import (
	"fmt"
	"math"

	"resched/internal/core"
	"resched/internal/dag"
	"resched/internal/model"
)

// Result quantifies one pessimism factor.
type Result struct {
	// Factor is the runtime overestimation multiplier (>= 1).
	Factor float64
	// Reserved is the schedule the scheduler booked (inflated tasks).
	Reserved *core.Schedule
	// ReservedTurnaround is the plan's turnaround (reserved ends).
	ReservedTurnaround model.Duration
	// RealizedTurnaround uses reserved starts with true durations —
	// when the work actually finishes.
	RealizedTurnaround model.Duration
	// PaidCPUHours is the reserved (billed) consumption;
	// UsedCPUHours what the tasks actually consumed.
	PaidCPUHours float64
	UsedCPUHours float64
}

// WasteFraction is the share of paid CPU-hours the application never
// used.
func (r *Result) WasteFraction() float64 {
	if r.PaidCPUHours == 0 {
		return 0
	}
	return 1 - r.UsedCPUHours/r.PaidCPUHours
}

// Evaluate schedules the application with sequential times inflated by
// factor using the BL_CPAR/BD_CPAR heuristic, then replays the true
// runtimes inside the reserved slots.
func Evaluate(g *dag.Graph, env core.Env, factor float64) (*Result, error) {
	if factor < 1 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		return nil, fmt.Errorf("pessimism: factor %v < 1", factor)
	}
	inflated, err := inflate(g, factor)
	if err != nil {
		return nil, err
	}
	s, err := core.NewScheduler(inflated)
	if err != nil {
		return nil, err
	}
	plan, err := s.Turnaround(env, core.BLCPAR, core.BDCPAR)
	if err != nil {
		return nil, err
	}
	if err := s.Verify(env, plan); err != nil {
		return nil, fmt.Errorf("pessimism: planned schedule invalid: %w", err)
	}

	res := &Result{Factor: factor, Reserved: plan, ReservedTurnaround: plan.Turnaround()}
	realized := env.Now
	var used model.Duration
	for t, pl := range plan.Tasks {
		task := g.Task(t)
		actual := model.ExecTime(task.Seq, task.Alpha, pl.Procs)
		if f := pl.Start + actual; f > realized {
			realized = f
		}
		used += model.Duration(pl.Procs) * actual
	}
	res.RealizedTurnaround = realized - env.Now
	res.PaidCPUHours = plan.CPUHours()
	res.UsedCPUHours = model.CPUHours(used)
	return res, nil
}

// Sweep evaluates a series of pessimism factors on the same instance.
func Sweep(g *dag.Graph, env core.Env, factors []float64) ([]*Result, error) {
	if len(factors) == 0 {
		return nil, fmt.Errorf("pessimism: no factors")
	}
	out := make([]*Result, len(factors))
	for i, f := range factors {
		r, err := Evaluate(g, env, f)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// inflate clones the graph with sequential times scaled by factor
// (rounded up; the serial fraction alpha is a ratio and stays put).
func inflate(g *dag.Graph, factor float64) (*dag.Graph, error) {
	out := dag.New(g.NumTasks())
	for i := 0; i < g.NumTasks(); i++ {
		task := g.Task(i)
		seq := model.Duration(math.Ceil(factor * float64(task.Seq)))
		if seq < task.Seq {
			return nil, fmt.Errorf("pessimism: overflow inflating task %d", i)
		}
		out.AddTask(dag.Task{Name: task.Name, Seq: seq, Alpha: task.Alpha})
	}
	for i := 0; i < g.NumTasks(); i++ {
		for _, sc := range g.Successors(i) {
			out.MustAddEdge(i, sc)
		}
	}
	return out, nil
}
