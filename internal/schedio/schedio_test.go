package schedio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"resched/internal/core"
	"resched/internal/daggen"
	"resched/internal/profile"
)

func testPair(t *testing.T) (*core.Scheduler, core.Env, *core.Schedule) {
	t.Helper()
	g := daggen.MustGenerate(daggen.Default(), rand.New(rand.NewSource(8)))
	s, err := core.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	env := core.Env{P: 32, Now: 1000, Avail: profile.New(32, 1000), Q: 24}
	sched, err := s.Turnaround(env, core.BLCPAR, core.BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	return s, env, sched
}

func TestRoundTrip(t *testing.T) {
	s, env, sched := testPair(t)
	var buf bytes.Buffer
	if err := Write(&buf, s.Graph(), sched); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()), s.Graph())
	if err != nil {
		t.Fatal(err)
	}
	if back.Now != sched.Now {
		t.Fatalf("Now %d != %d", back.Now, sched.Now)
	}
	for i := range sched.Tasks {
		if back.Tasks[i] != sched.Tasks[i] {
			t.Fatalf("task %d: %+v != %+v", i, back.Tasks[i], sched.Tasks[i])
		}
	}
	// The round-tripped schedule still verifies semantically.
	if err := s.Verify(env, back); err != nil {
		t.Fatal(err)
	}
}

func TestWriteShapeMismatch(t *testing.T) {
	s, _, sched := testPair(t)
	var buf bytes.Buffer
	bad := &core.Schedule{Now: sched.Now, Tasks: sched.Tasks[:1]}
	if err := Write(&buf, s.Graph(), bad); err == nil {
		t.Fatal("short schedule accepted")
	}
}

func TestReservationsRoundTrip(t *testing.T) {
	rs := []profile.Reservation{
		{Start: 100, End: 200, Procs: 4},
		{Start: 150, End: 400, Procs: 2},
	}
	var buf bytes.Buffer
	if err := WriteReservations(&buf, 8, 50, rs); err != nil {
		t.Fatal(err)
	}
	procs, now, back, err := ReadReservations(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if procs != 8 || now != 50 || len(back) != 2 {
		t.Fatalf("round trip header: %d procs, now %d, %d reservations", procs, now, len(back))
	}
	for i := range rs {
		if back[i] != rs[i] {
			t.Fatalf("reservation %d: %+v != %+v", i, back[i], rs[i])
		}
	}
}

func TestReservationsErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReservations(&buf, 0, 0, nil); err == nil {
		t.Fatal("zero-proc machine accepted")
	}
	cases := []string{
		`garbage`,
		`{"procs": 0, "now": 0, "reservations": []}`,
		`{"procs": 4, "now": 0, "reservations": [{"start": 10, "end": 10, "procs": 1}]}`,
		`{"procs": 4, "now": 0, "reservations": [{"start": 0, "end": 10, "procs": 5}]}`,
		`{"procs": 4, "now": 0, "reservations": [{"start": 0, "end": 10, "procs": 3}, {"start": 5, "end": 15, "procs": 3}]}`,
	}
	for i, in := range cases {
		if _, _, _, err := ReadReservations(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	s, _, _ := testPair(t)
	g := s.Graph()
	cases := []string{
		`not json`,
		`{"now": 0, "tasks": []}`,
		`{"now": 0, "tasks": [{"task": -1, "procs": 1, "start": 0, "end": 1}]}`,
		`{"now": 0, "tasks": [{"task": 0, "procs": 0, "start": 0, "end": 1}]}`,
		`{"now": 0, "tasks": [{"task": 0, "procs": 1, "start": 5, "end": 1}]}`,
		`{"now": 0, "bogus": 1, "tasks": []}`,
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in), g); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	// Duplicate task entries.
	dup := `{"now": 0, "tasks": [` + strings.Repeat(`{"task": 0, "procs": 1, "start": 0, "end": 1},`, g.NumTasks()-1) +
		`{"task": 0, "procs": 1, "start": 0, "end": 1}]}`
	if _, err := Read(strings.NewReader(dup), g); err == nil {
		t.Fatal("duplicate placements accepted")
	}
}
