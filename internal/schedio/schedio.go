// Package schedio serializes application schedules as JSON so
// schedules computed by this library can be handed to submission
// tooling (one advance-reservation request per task) and read back for
// inspection or verification.
//
// Format:
//
//	{
//	  "now": 12345,
//	  "tasks": [
//	    {"task": 0, "name": "prep", "procs": 4, "start": 12400, "end": 13000},
//	    ...
//	  ]
//	}
package schedio

import (
	"encoding/json"
	"fmt"
	"io"

	"resched/internal/core"
	"resched/internal/dag"
	"resched/internal/model"
	"resched/internal/profile"
)

type jsonPlacement struct {
	Task  int        `json:"task"`
	Name  string     `json:"name,omitempty"`
	Procs int        `json:"procs"`
	Start model.Time `json:"start"`
	End   model.Time `json:"end"`
}

type jsonSchedule struct {
	Now   model.Time      `json:"now"`
	Tasks []jsonPlacement `json:"tasks"`
}

// Write serializes a schedule; task names come from the graph when
// present.
func Write(w io.Writer, g *dag.Graph, s *core.Schedule) error {
	if len(s.Tasks) != g.NumTasks() {
		return fmt.Errorf("schedio: schedule has %d placements for %d tasks", len(s.Tasks), g.NumTasks())
	}
	js := jsonSchedule{Now: s.Now, Tasks: make([]jsonPlacement, len(s.Tasks))}
	for i, pl := range s.Tasks {
		js.Tasks[i] = jsonPlacement{
			Task:  i,
			Name:  g.Task(i).Name,
			Procs: pl.Procs,
			Start: pl.Start,
			End:   pl.End,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

type jsonReservation struct {
	Start model.Time `json:"start"`
	End   model.Time `json:"end"`
	Procs int        `json:"procs"`
}

type jsonReservationFile struct {
	Procs        int               `json:"procs"`
	Now          model.Time        `json:"now"`
	Reservations []jsonReservation `json:"reservations"`
}

// WriteReservations serializes a reservation schedule — the competing
// reservations an application scheduler works around — together with
// the machine size and observation time.
func WriteReservations(w io.Writer, procs int, now model.Time, rs []profile.Reservation) error {
	if procs < 1 {
		return fmt.Errorf("schedio: machine size %d < 1", procs)
	}
	jf := jsonReservationFile{Procs: procs, Now: now, Reservations: make([]jsonReservation, len(rs))}
	for i, r := range rs {
		jf.Reservations[i] = jsonReservation{Start: r.Start, End: r.End, Procs: r.Procs}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jf)
}

// ReadReservations parses a reservation schedule and checks it is
// capacity-feasible (by building the availability profile).
func ReadReservations(r io.Reader) (procs int, now model.Time, rs []profile.Reservation, err error) {
	var jf jsonReservationFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jf); err != nil {
		return 0, 0, nil, fmt.Errorf("schedio: %w", err)
	}
	if jf.Procs < 1 {
		return 0, 0, nil, fmt.Errorf("schedio: machine size %d < 1", jf.Procs)
	}
	out := make([]profile.Reservation, len(jf.Reservations))
	for i, jr := range jf.Reservations {
		if jr.End <= jr.Start {
			return 0, 0, nil, fmt.Errorf("schedio: reservation %d has empty interval", i)
		}
		if jr.Procs < 1 || jr.Procs > jf.Procs {
			return 0, 0, nil, fmt.Errorf("schedio: reservation %d uses %d of %d processors", i, jr.Procs, jf.Procs)
		}
		out[i] = profile.Reservation{Start: jr.Start, End: jr.End, Procs: jr.Procs}
	}
	if _, err := profile.FromReservations(jf.Procs, jf.Now, out); err != nil {
		return 0, 0, nil, fmt.Errorf("schedio: infeasible reservation set: %w", err)
	}
	return jf.Procs, jf.Now, out, nil
}

// Read parses a schedule for the given graph. Placements may appear in
// any order but every task must appear exactly once with sane fields;
// semantic validity (precedence, capacity) is the caller's job via
// (*core.Scheduler).Verify.
func Read(r io.Reader, g *dag.Graph) (*core.Schedule, error) {
	var js jsonSchedule
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return nil, fmt.Errorf("schedio: %w", err)
	}
	if len(js.Tasks) != g.NumTasks() {
		return nil, fmt.Errorf("schedio: %d placements for %d tasks", len(js.Tasks), g.NumTasks())
	}
	s := &core.Schedule{Now: js.Now, Tasks: make([]core.Placement, g.NumTasks())}
	seen := make([]bool, g.NumTasks())
	for _, pl := range js.Tasks {
		if pl.Task < 0 || pl.Task >= g.NumTasks() {
			return nil, fmt.Errorf("schedio: unknown task %d", pl.Task)
		}
		if seen[pl.Task] {
			return nil, fmt.Errorf("schedio: duplicate placement for task %d", pl.Task)
		}
		if pl.Procs < 1 {
			return nil, fmt.Errorf("schedio: task %d has %d processors", pl.Task, pl.Procs)
		}
		if pl.End < pl.Start {
			return nil, fmt.Errorf("schedio: task %d ends before it starts", pl.Task)
		}
		seen[pl.Task] = true
		s.Tasks[pl.Task] = core.Placement{Procs: pl.Procs, Start: pl.Start, End: pl.End}
	}
	return s, nil
}
