package api

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzBinaryCodecRoundTrip cross-checks the binary codec against the
// JSON path. The fuzz input is a JSON document: whatever the JSON
// decoder accepts for a message must survive binary encode → decode
// with a bit-identical JSON re-encoding (the oracle). The raw input is
// also thrown at the binary decoders directly — anything they accept
// must itself round-trip — so the strict-decode error paths stay
// honest on adversarial bytes.
func FuzzBinaryCodecRoundTrip(f *testing.F) {
	reqJSON, err := json.Marshal(ScheduleRequest{
		DAG: json.RawMessage(`{"tasks":[{"work":10}],"edges":[]}`),
		BL:  "BL_CPAR", BD: "BD_CPAR", Now: 7, Q: 16, Commit: true,
	})
	if err != nil {
		f.Fatal(err)
	}
	respJSON, err := json.Marshal(ScheduleResponse{
		Algorithm: "BL_CPAR+BD_CPAR", Version: 42, Now: 7,
		Tasks:      []Placement{{Task: 0, Procs: 2, Start: 7, End: 19}},
		Completion: 19, Turnaround: 12, CPUHours: 0.0066,
		Committed: true, ReservationIDs: []string{"r-9"}, Retries: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(reqJSON)
	f.Add(respJSON)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"tasks":[],"reservation_ids":[]}`))
	f.Add((&ScheduleRequest{BL: "x"}).AppendBinary(nil))
	f.Add((&ScheduleResponse{Retries: -1}).AppendBinary(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req ScheduleRequest
		if json.Unmarshal(data, &req) == nil {
			checkJSONOracle(t, "request", &req)
		}
		var resp ScheduleResponse
		if json.Unmarshal(data, &resp) == nil {
			checkJSONOracle(t, "response", &resp)
		}

		// Adversarial direction: feed raw bytes to the strict decoders.
		var br ScheduleRequest
		if br.UnmarshalBinary(data) == nil {
			reenc := br.AppendBinary(nil)
			var again ScheduleRequest
			if err := again.UnmarshalBinary(reenc); err != nil {
				t.Fatalf("accepted request does not re-decode: %v", err)
			}
		}
		var bresp ScheduleResponse
		if bresp.UnmarshalBinary(data) == nil {
			reenc := bresp.AppendBinary(nil)
			var again ScheduleResponse
			if err := again.UnmarshalBinary(reenc); err != nil {
				t.Fatalf("accepted response does not re-decode: %v", err)
			}
		}
	})
}

// binaryRoundTripper is implemented by both hot-path messages.
type binaryRoundTripper interface {
	AppendBinary([]byte) []byte
	UnmarshalBinary([]byte) error
}

func checkJSONOracle(t *testing.T, what string, in binaryRoundTripper) {
	t.Helper()
	wantJSON, err := json.Marshal(in)
	if err != nil {
		// A RawMessage holding invalid JSON cannot re-marshal; the
		// binary codec has no opinion on DAG contents, so skip.
		return
	}
	enc := in.AppendBinary(nil)
	var out binaryRoundTripper
	switch in.(type) {
	case *ScheduleRequest:
		out = new(ScheduleRequest)
	default:
		out = new(ScheduleResponse)
	}
	if err := out.UnmarshalBinary(enc); err != nil {
		t.Fatalf("%s: binary decode of own encoding failed: %v", what, err)
	}
	gotJSON, err := json.Marshal(out)
	if err != nil {
		t.Fatalf("%s: re-marshal: %v", what, err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("%s: JSON oracle mismatch after binary round trip:\n want %s\n got  %s", what, wantJSON, gotJSON)
	}
}
