// Package api defines the JSON wire types of the reschedd HTTP API,
// shared by the server (internal/server) and the public client
// (resched.Client). Keeping them in one place means the two cannot
// drift.
//
// Conventions: times are absolute integer seconds on the daemon's
// logical clock (the book's origin is the epoch unless configured
// otherwise); durations are integer seconds; DAGs use the dagio
// format ({"tasks": [...], "edges": [[from,to], ...]}); algorithm
// names are the paper's (BL_CPAR, BD_CPAR, DL_RC_CPAR-l, ...).
package api

import (
	"encoding/json"

	"resched/internal/model"
)

// ScheduleRequest asks the daemon to run a RESSCHED heuristic for one
// application against the current reservation book.
type ScheduleRequest struct {
	// DAG is the application in dagio JSON format.
	DAG json.RawMessage `json:"dag"`
	// BL and BD name the heuristic (default BL_CPAR / BD_CPAR, the
	// paper's best).
	BL string `json:"bl,omitempty"`
	BD string `json:"bd,omitempty"`
	// Now is when scheduling happens; zero means the book's origin.
	Now model.Time `json:"now,omitempty"`
	// Q is the historical average number of available processors used
	// by the *_CPAR methods; zero means the cluster size.
	Q int `json:"q,omitempty"`
	// Commit books the computed reservations through the
	// optimistic-concurrency loop. Without it the request is a dry
	// run against a snapshot.
	Commit bool `json:"commit,omitempty"`
}

// DeadlineRequest asks the daemon to run a RESSCHEDDL algorithm.
type DeadlineRequest struct {
	DAG json.RawMessage `json:"dag"`
	// Algo names the deadline algorithm (default DL_RC_CPAR-l).
	Algo string `json:"algo,omitempty"`
	// Deadline is the allowed turn-around in seconds after Now.
	// Ignored with Tightest.
	Deadline model.Duration `json:"deadline,omitempty"`
	// Tightest binary-searches the tightest feasible deadline instead
	// of using Deadline.
	Tightest bool       `json:"tightest,omitempty"`
	Now      model.Time `json:"now,omitempty"`
	Q        int        `json:"q,omitempty"`
	Commit   bool       `json:"commit,omitempty"`
}

// Placement is one task's reservation in a response.
type Placement struct {
	Task  int        `json:"task"`
	Procs int        `json:"procs"`
	Start model.Time `json:"start"`
	End   model.Time `json:"end"`
}

// ScheduleResponse reports a computed (and possibly committed)
// schedule.
type ScheduleResponse struct {
	Algorithm string `json:"algorithm"`
	// Version is the book version the schedule was computed against
	// (after commit: the version the commit produced).
	Version    uint64         `json:"version"`
	Now        model.Time     `json:"now"`
	Tasks      []Placement    `json:"tasks"`
	Completion model.Time     `json:"completion"`
	Turnaround model.Duration `json:"turnaround"`
	CPUHours   float64        `json:"cpu_hours"`
	// Deadline is the (met or found-by-search) deadline for
	// /v1/deadline responses.
	Deadline model.Time `json:"deadline,omitempty"`
	// Committed, ReservationIDs, and Retries describe the booking:
	// whether it happened, the booked reservation IDs, and how many
	// version-conflict retries the optimistic loop needed.
	Committed      bool     `json:"committed"`
	ReservationIDs []string `json:"reservation_ids,omitempty"`
	Retries        int      `json:"retries"`
}

// BatchScheduleRequest schedules several applications against one
// book snapshot: job i+1 sees job i's placements, and with Commit all
// jobs book atomically through a single optimistic commit. Per-job
// Commit flags are ignored; the batch-level flag decides.
type BatchScheduleRequest struct {
	Jobs   []ScheduleRequest `json:"jobs"`
	Commit bool              `json:"commit,omitempty"`
}

// BatchScheduleResponse reports the per-job schedules plus the shared
// commit outcome. Version, Committed, and Retries describe the batch
// commit; the per-job responses carry their own placements and
// reservation IDs.
type BatchScheduleResponse struct {
	Version   uint64             `json:"version"`
	Committed bool               `json:"committed"`
	Retries   int                `json:"retries"`
	Jobs      []ScheduleResponse `json:"jobs"`
}

// ReservationRequest books one direct advance reservation.
type ReservationRequest struct {
	Start model.Time `json:"start"`
	End   model.Time `json:"end"`
	Procs int        `json:"procs"`
}

// Reservation is one booked reservation with its lifecycle status
// ("pending", "active", or "released").
type Reservation struct {
	ID     string     `json:"id"`
	Start  model.Time `json:"start"`
	End    model.Time `json:"end"`
	Procs  int        `json:"procs"`
	Status string     `json:"status"`
	// Version is the book version after the mutation that produced
	// this response (0 in listings).
	Version uint64 `json:"version,omitempty"`
}

// Segment is one constant-availability step of the profile.
type Segment struct {
	Start model.Time `json:"start"`
	Free  int        `json:"free"`
}

// ProfileResponse reports the current reservation schedule.
type ProfileResponse struct {
	Capacity     int           `json:"capacity"`
	Origin       model.Time    `json:"origin"`
	Version      uint64        `json:"version"`
	Segments     []Segment     `json:"segments"`
	Reservations []Reservation `json:"reservations"`
}

// JobSubmitRequest submits one rigid job (procs processors for
// duration seconds) to the online lifecycle engine.
type JobSubmitRequest struct {
	Procs    int            `json:"procs"`
	Duration model.Duration `json:"duration"`
}

// Job is one online job's lifecycle view ("queued", "reserved",
// "running", or "done"). The placement fields are zero until the job
// leaves the queue.
type Job struct {
	ID        string         `json:"id"`
	Procs     int            `json:"procs"`
	Duration  model.Duration `json:"duration"`
	Submitted model.Time     `json:"submitted"`
	State     string         `json:"state"`
	Attempts  int            `json:"attempts"`
	Start     model.Time     `json:"start,omitempty"`
	End       model.Time     `json:"end,omitempty"`
	// ReservationID is the book reservation backing the placement.
	ReservationID string `json:"reservation_id,omitempty"`
	// Backfilled marks an out-of-order placement admitted under the
	// finish-before-activation guardrail.
	Backfilled bool `json:"backfilled,omitempty"`
	// Starved marks a job that received a starvation-triggered advance
	// reservation.
	Starved bool `json:"starved,omitempty"`
}

// Forecast is the feasibility report for one job: the earliest start
// the current book admits, the processor deficit blocking an
// immediate start, and actionable remedies.
type Forecast struct {
	JobID         string         `json:"job_id"`
	State         string         `json:"state"`
	Now           model.Time     `json:"now"`
	EarliestStart model.Time     `json:"earliest_start"`
	Wait          model.Duration `json:"wait"`
	Deficit       int            `json:"deficit"`
	FreeNow       int            `json:"free_now"`
	Remedies      []string       `json:"remedies,omitempty"`
	Version       uint64         `json:"version"`
}

// EngineStats are the lifecycle engine's counters, embedded in
// GET /debug/metrics when the daemon runs online.
type EngineStats struct {
	Now                    model.Time `json:"now"`
	QueueDepth             int        `json:"queue_depth"`
	Arrivals               uint64     `json:"arrivals"`
	Placements             uint64     `json:"placements"`
	Backfills              uint64     `json:"backfills"`
	StarvationReservations uint64     `json:"starvation_reservations"`
	Activations            uint64     `json:"activations"`
	Completions            uint64     `json:"completions"`
	Ticks                  uint64     `json:"ticks"`
	Forecasts              uint64     `json:"forecasts"`
	ForecastAvgMicros      float64    `json:"forecast_avg_micros"`
}

// Error is the uniform error envelope for non-2xx responses.
type Error struct {
	Error string `json:"error"`
}
