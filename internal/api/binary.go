// Binary wire codec for the serving hot path. JSON stays the default
// and the source of truth for field semantics; this codec is a strict,
// compact alternative negotiated per request via Content-Type /
// Accept: application/x-resched-bin (see DESIGN.md §14 for the byte
// layout). Only the two hot-path messages are covered: encoding the
// DAG as a length-prefixed raw JSON blob keeps the request parser
// unchanged while eliminating the outer JSON walk, and the response
// side avoids reflection entirely.
//
// Layout conventions: a four-byte header (magic "RB", format version,
// message kind), unsigned fields as uvarint, signed fields as zigzag
// varint, float64 as 8 little-endian IEEE-754 bytes, byte blobs and
// strings length-prefixed. Optional slices/blobs carry length+1 so a
// nil slice (0) and an empty one (1) survive a round trip distinctly —
// the JSON oracle in FuzzBinaryCodecRoundTrip depends on that.
// Decoding is strict: unknown kinds, truncated fields, oversized
// length prefixes, and trailing bytes are all errors.
package api

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ContentTypeBinary is the negotiated media type of the binary codec.
const ContentTypeBinary = "application/x-resched-bin"

// ErrBinary is the base error for every malformed binary message;
// callers match it with errors.Is and map it to a 400.
var ErrBinary = errors.New("malformed binary message")

const (
	binMagic0  = 'R'
	binMagic1  = 'B'
	binVersion = 1

	kindScheduleRequest  = 1
	kindScheduleResponse = 2
)

// AppendBinary appends the binary encoding of r to dst and returns the
// extended slice. The dst idiom (instead of MarshalBinary) lets the
// server encode into pooled buffers without a per-response allocation.
//
//reschedvet:hotpath
func (r *ScheduleRequest) AppendBinary(dst []byte) []byte {
	dst = append(dst, binMagic0, binMagic1, binVersion, kindScheduleRequest)
	dst = appendBlob(dst, r.DAG)
	dst = appendString(dst, r.BL)
	dst = appendString(dst, r.BD)
	dst = binary.AppendVarint(dst, r.Now)
	dst = binary.AppendVarint(dst, int64(r.Q))
	dst = appendBool(dst, r.Commit)
	return dst
}

// UnmarshalBinary decodes a binary ScheduleRequest produced by
// AppendBinary. On error r is left unspecified.
func (r *ScheduleRequest) UnmarshalBinary(data []byte) error {
	d, err := newBinReader(data, kindScheduleRequest)
	if err != nil {
		return err
	}
	r.DAG = d.blob()
	r.BL = d.str()
	r.BD = d.str()
	r.Now = d.varint()
	r.Q = int(d.varint())
	r.Commit = d.bool()
	return d.finish()
}

// AppendBinary appends the binary encoding of r to dst and returns the
// extended slice.
//
//reschedvet:hotpath
func (r *ScheduleResponse) AppendBinary(dst []byte) []byte {
	dst = append(dst, binMagic0, binMagic1, binVersion, kindScheduleResponse)
	dst = appendString(dst, r.Algorithm)
	dst = binary.AppendUvarint(dst, r.Version)
	dst = binary.AppendVarint(dst, r.Now)
	if r.Tasks == nil {
		dst = binary.AppendUvarint(dst, 0)
	} else {
		dst = binary.AppendUvarint(dst, uint64(len(r.Tasks))+1)
		for i := range r.Tasks {
			p := &r.Tasks[i]
			dst = binary.AppendVarint(dst, int64(p.Task))
			dst = binary.AppendVarint(dst, int64(p.Procs))
			dst = binary.AppendVarint(dst, p.Start)
			dst = binary.AppendVarint(dst, p.End)
		}
	}
	dst = binary.AppendVarint(dst, r.Completion)
	dst = binary.AppendVarint(dst, r.Turnaround)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.CPUHours))
	dst = binary.AppendVarint(dst, r.Deadline)
	dst = appendBool(dst, r.Committed)
	if r.ReservationIDs == nil {
		dst = binary.AppendUvarint(dst, 0)
	} else {
		dst = binary.AppendUvarint(dst, uint64(len(r.ReservationIDs))+1)
		for _, id := range r.ReservationIDs {
			dst = appendString(dst, id)
		}
	}
	dst = binary.AppendVarint(dst, int64(r.Retries))
	return dst
}

// UnmarshalBinary decodes a binary ScheduleResponse produced by
// AppendBinary. On error r is left unspecified.
func (r *ScheduleResponse) UnmarshalBinary(data []byte) error {
	d, err := newBinReader(data, kindScheduleResponse)
	if err != nil {
		return err
	}
	r.Algorithm = d.str()
	r.Version = d.uvarint()
	r.Now = d.varint()
	if n, ok := d.count(4); !ok {
		r.Tasks = nil
	} else {
		r.Tasks = make([]Placement, n)
		for i := range r.Tasks {
			p := &r.Tasks[i]
			p.Task = int(d.varint())
			p.Procs = int(d.varint())
			p.Start = d.varint()
			p.End = d.varint()
		}
	}
	r.Completion = d.varint()
	r.Turnaround = d.varint()
	r.CPUHours = d.f64()
	r.Deadline = d.varint()
	r.Committed = d.bool()
	if n, ok := d.count(1); !ok {
		r.ReservationIDs = nil
	} else {
		r.ReservationIDs = make([]string, n)
		for i := range r.ReservationIDs {
			r.ReservationIDs[i] = d.str()
		}
	}
	r.Retries = int(d.varint())
	return d.finish()
}

//
//reschedvet:hotpath
func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

//
//reschedvet:hotpath
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendBlob writes an optional byte blob: 0 for nil, length+1
// otherwise.
//
//reschedvet:hotpath
func appendBlob(dst []byte, b []byte) []byte {
	if b == nil {
		return binary.AppendUvarint(dst, 0)
	}
	dst = binary.AppendUvarint(dst, uint64(len(b))+1)
	return append(dst, b...)
}

// binReader cursors through one message with sticky error handling:
// after the first malformed field every accessor returns zero values
// and finish reports the error, so decoders read fields linearly
// without per-field checks.
type binReader struct {
	b   []byte
	err error
}

func newBinReader(data []byte, kind byte) (*binReader, error) {
	if len(data) < 4 || data[0] != binMagic0 || data[1] != binMagic1 {
		return nil, fmt.Errorf("%w: bad magic", ErrBinary)
	}
	if data[2] != binVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBinary, data[2])
	}
	if data[3] != kind {
		return nil, fmt.Errorf("%w: message kind %d, want %d", ErrBinary, data[3], kind)
	}
	return &binReader{b: data[4:]}, nil
}

func (d *binReader) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrBinary, what)
	}
}

func (d *binReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

func (d *binReader) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	return v
}

// count decodes an optional-slice length (0 = nil, else n+1) and
// bounds it by the remaining input, assuming each element occupies at
// least minElem bytes — a hostile length prefix cannot force a giant
// allocation.
func (d *binReader) count(minElem int) (int, bool) {
	v := d.uvarint()
	if d.err != nil || v == 0 {
		return 0, false
	}
	n := v - 1
	if n > uint64(len(d.b)/minElem) {
		d.fail("slice length exceeds input")
		return 0, false
	}
	return int(n), true
}

func (d *binReader) take(n uint64) []byte {
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.b)) {
		d.fail("length prefix exceeds input")
		return nil
	}
	out := d.b[:n:n]
	d.b = d.b[n:]
	return out
}

func (d *binReader) str() string {
	return string(d.take(d.uvarint()))
}

// blob reads an optional byte blob written by appendBlob. The result
// is a copy, never an alias of the input buffer: callers hand decoded
// requests across goroutines while the pooled read buffer is reused.
func (d *binReader) blob() []byte {
	v := d.uvarint()
	if d.err != nil || v == 0 {
		return nil
	}
	b := d.take(v - 1)
	if d.err != nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func (d *binReader) f64() float64 {
	b := d.take(8)
	if d.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (d *binReader) bool() bool {
	b := d.take(1)
	if d.err != nil {
		return false
	}
	switch b[0] {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool byte")
		return false
	}
}

// finish reports the sticky decode error, or complains about trailing
// bytes: a valid message consumes its input exactly.
func (d *binReader) finish() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBinary, len(d.b))
	}
	return nil
}
