package api

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

func sampleRequest() ScheduleRequest {
	return ScheduleRequest{
		DAG:    json.RawMessage(`{"tasks":[{"work":100}],"edges":[]}`),
		BL:     "BL_CPAR",
		BD:     "BD_CPAR",
		Now:    1234,
		Q:      48,
		Commit: true,
	}
}

func sampleResponse() ScheduleResponse {
	return ScheduleResponse{
		Algorithm:  "BL_CPAR+BD_CPAR",
		Version:    987654321,
		Now:        -5,
		Tasks:      []Placement{{Task: 0, Procs: 4, Start: 10, End: 20}, {Task: 1, Procs: 1, Start: 20, End: 55}},
		Completion: 55,
		Turnaround: 55,
		CPUHours:   1.2345678901234567,
		Deadline:   100,
		Committed:  true,
		ReservationIDs: []string{
			"r-1", "r-2",
		},
		Retries: 3,
	}
}

func TestScheduleRequestBinaryRoundTrip(t *testing.T) {
	cases := []ScheduleRequest{
		sampleRequest(),
		{},                             // all zero: nil DAG survives
		{DAG: json.RawMessage{}},       // empty-but-present DAG survives
		{Now: -1, Q: -2, BL: "BL_MIN"}, // negative varints
	}
	for i, in := range cases {
		enc := in.AppendBinary(nil)
		var out ScheduleRequest
		if err := out.UnmarshalBinary(enc); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("case %d: round trip mismatch:\n in  %#v\n out %#v", i, in, out)
		}
	}
}

func TestScheduleResponseBinaryRoundTrip(t *testing.T) {
	cases := []ScheduleResponse{
		sampleResponse(),
		{},                     // zero value: nil slices survive
		{Tasks: []Placement{}}, // empty-but-present slice survives
		{ReservationIDs: []string{}},
		{CPUHours: -0.0, Now: -9e15},
	}
	for i, in := range cases {
		enc := in.AppendBinary(nil)
		var out ScheduleResponse
		if err := out.UnmarshalBinary(enc); err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("case %d: round trip mismatch:\n in  %#v\n out %#v", i, in, out)
		}
	}
}

// TestBinaryAppendsToPrefix checks the dst idiom: encoding appends
// after existing bytes instead of clobbering them.
func TestBinaryAppendsToPrefix(t *testing.T) {
	prefix := []byte("keep")
	in := sampleRequest()
	enc := in.AppendBinary(prefix)
	if string(enc[:4]) != "keep" {
		t.Fatalf("prefix clobbered: %q", enc[:8])
	}
	var out ScheduleRequest
	if err := out.UnmarshalBinary(enc[4:]); err != nil {
		t.Fatalf("decode after prefix: %v", err)
	}
}

func TestBinaryDecodeRejectsMalformed(t *testing.T) {
	resp := sampleResponse()
	good := resp.AppendBinary(nil)
	req := sampleRequest()
	reqGood := req.AppendBinary(nil)

	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:3],
		"bad magic":      append([]byte{'X', 'Y'}, good[2:]...),
		"bad version":    append([]byte{binMagic0, binMagic1, 99}, good[3:]...),
		"wrong kind":     reqGood, // request bytes into a response decoder
		"truncated body": good[:len(good)-3],
		"trailing bytes": append(append([]byte{}, good...), 0xff),
	}
	for name, data := range cases {
		var out ScheduleResponse
		err := out.UnmarshalBinary(data)
		if err == nil {
			t.Fatalf("%s: decode accepted malformed input", name)
		}
		if !errors.Is(err, ErrBinary) {
			t.Fatalf("%s: error %v does not wrap ErrBinary", name, err)
		}
	}
}

// TestBinaryDecodeBoundsAllocations: a length prefix claiming more
// elements than the remaining input can hold must fail fast instead of
// allocating gigabytes.
func TestBinaryDecodeBoundsAllocations(t *testing.T) {
	// Header + Algorithm "" + Version 0 + Now 0, then a tasks count
	// claiming ~2^40 placements with no bytes behind it.
	data := []byte{binMagic0, binMagic1, binVersion, kindScheduleResponse,
		0,                                  // algorithm: empty string
		0,                                  // version
		0,                                  // now
		0xff, 0xff, 0xff, 0xff, 0xff, 0x3f, // tasks count: huge uvarint
	}
	var out ScheduleResponse
	if err := out.UnmarshalBinary(data); !errors.Is(err, ErrBinary) {
		t.Fatalf("huge count: got %v, want ErrBinary", err)
	}
}

// TestBinaryBlobDoesNotAliasInput: decoded DAG bytes must be a copy,
// because the server decodes from a pooled buffer that is immediately
// reused.
func TestBinaryBlobDoesNotAliasInput(t *testing.T) {
	in := sampleRequest()
	enc := in.AppendBinary(nil)
	var out ScheduleRequest
	if err := out.UnmarshalBinary(enc); err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		enc[i] = 0xAA
	}
	if string(out.DAG) != string(in.DAG) {
		t.Fatal("decoded DAG aliases the input buffer")
	}
}

// TestBinaryTruncatedAtEveryBoundary cuts a representative encoding of
// each message kind after every byte — which in particular lands on
// every field boundary and inside every length prefix — and requires a
// clean ErrBinary from each cut. Strict decoding means no strict
// prefix of a valid message may decode successfully: every field is
// mandatory and finish rejects leftover input, so a shortened message
// must fail at the first missing byte rather than panic or silently
// zero-fill.
func TestBinaryTruncatedAtEveryBoundary(t *testing.T) {
	req := sampleRequest()
	reqEnc := req.AppendBinary(nil)
	for i := 0; i < len(reqEnc); i++ {
		var out ScheduleRequest
		err := out.UnmarshalBinary(reqEnc[:i:i])
		if err == nil {
			t.Fatalf("request truncated to %d/%d bytes decoded successfully", i, len(reqEnc))
		}
		if !errors.Is(err, ErrBinary) {
			t.Fatalf("request truncated to %d bytes: err = %v, want ErrBinary", i, err)
		}
	}

	resp := sampleResponse()
	respEnc := resp.AppendBinary(nil)
	for i := 0; i < len(respEnc); i++ {
		var out ScheduleResponse
		err := out.UnmarshalBinary(respEnc[:i:i])
		if err == nil {
			t.Fatalf("response truncated to %d/%d bytes decoded successfully", i, len(respEnc))
		}
		if !errors.Is(err, ErrBinary) {
			t.Fatalf("response truncated to %d bytes: err = %v, want ErrBinary", i, err)
		}
	}
}

// TestBinaryOversizedLengthPrefix inflates each leading length prefix
// past the remaining input: the DAG blob length of a request and the
// string/slice prefixes of a response must be rejected by the reader's
// bounds check, not trusted into a huge take or allocation.
func TestBinaryOversizedLengthPrefix(t *testing.T) {
	// Request: header + a blob prefix claiming 1000 bytes with none
	// following.
	bad := []byte{binMagic0, binMagic1, binVersion, kindScheduleRequest, 0xe9, 0x07}
	var req ScheduleRequest
	if err := req.UnmarshalBinary(bad); !errors.Is(err, ErrBinary) {
		t.Fatalf("oversized request blob prefix: err = %v, want ErrBinary", err)
	}

	// Response: header + an Algorithm string prefix claiming 1000
	// bytes.
	bad = []byte{binMagic0, binMagic1, binVersion, kindScheduleResponse, 0xe9, 0x07}
	var resp ScheduleResponse
	if err := resp.UnmarshalBinary(bad); !errors.Is(err, ErrBinary) {
		t.Fatalf("oversized response string prefix: err = %v, want ErrBinary", err)
	}
}
