package modeexhaustive_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/modeexhaustive"
)

func TestModeExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", modeexhaustive.Analyzer, "modeswitch")
}
