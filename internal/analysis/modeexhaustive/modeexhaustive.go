// Package modeexhaustive enforces exhaustiveness for the domain's
// mode and lifecycle enums. The scheduler-mode enums (core.BLMethod,
// core.BDMethod, core.DLAlgorithm, cpa.StopRule) and the reservation
// lifecycle enum (resbook.Status) each enumerate a closed set the
// paper defines; a switch that silently ignores a member — the way
// deadlineAggressive once left its allocation bound nil for
// non-DL_BD algorithms — turns an unhandled mode into a downstream
// failure far from the cause. Every switch over these types must
// either name every declared constant or carry a default clause that
// fails loudly (a non-empty body: return an error, panic, count the
// fall-through).
package modeexhaustive

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"resched/internal/analysis"
)

// GuardedEnums names the defined types whose switches must be
// exhaustive, as "import/path.TypeName".
var GuardedEnums = map[string]bool{
	"resched/internal/core.BLMethod":    true,
	"resched/internal/core.BDMethod":    true,
	"resched/internal/core.DLAlgorithm": true,
	"resched/internal/cpa.StopRule":     true,
	"resched/internal/resbook.Status":   true,
}

// Analyzer checks switch statements whose tag has a guarded enum
// type.
var Analyzer = &analysis.Analyzer{
	Name: "modeexhaustive",
	Doc: "switches over the scheduler-mode and reservation-lifecycle enums must cover " +
		"every declared constant or have a default that fails loudly",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if ok && sw.Tag != nil {
				checkSwitch(pass, sw)
			}
			return true
		})
	}
	return nil
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if ok && named.Obj().Pkg() == nil {
		return
	}
	if !ok || !GuardedEnums[named.Obj().Pkg().Path()+"."+named.Obj().Name()] {
		return
	}
	enum := declaredConstants(named)
	if len(enum) == 0 {
		return
	}

	covered := map[string]bool{}
	hasDefault := false
	for _, clause := range sw.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
			if len(cc.Body) == 0 {
				pass.Reportf(cc.Pos(),
					"silent default in switch over %s: a default for an unhandled %s must fail loudly",
					named.Obj().Name(), named.Obj().Name())
			}
			continue
		}
		for _, expr := range cc.List {
			v := pass.TypesInfo.Types[expr].Value
			if v == nil {
				continue
			}
			for _, c := range enum {
				if constant.Compare(v, token.EQL, c.Val()) {
					covered[c.Name()] = true
				}
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for _, c := range enum {
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch over %s is not exhaustive: missing %s (add the cases or a default that fails loudly)",
			named.Obj().Name(), strings.Join(missing, ", "))
	}
}

// declaredConstants returns the package-level constants declared with
// the enum's exact type, in declaration order.
func declaredConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
