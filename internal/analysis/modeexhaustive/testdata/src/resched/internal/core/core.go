// Package core is a fixture stub declaring a guarded scheduler-mode
// enum.
package core

// BLMethod mirrors the real bottom-level method enum.
type BLMethod int

const (
	BL1 BLMethod = iota
	BLAll
	BLCPA
	BLCPAR
)
