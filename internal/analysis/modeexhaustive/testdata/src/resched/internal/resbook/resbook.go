// Package resbook is a fixture stub declaring the guarded
// reservation-lifecycle enum.
package resbook

// Status mirrors the real lifecycle enum.
type Status int

const (
	Pending Status = iota
	Active
	Released
)
