// Package modeswitch exercises exhaustiveness over the guarded
// enums.
package modeswitch

import (
	"resched/internal/core"
	"resched/internal/resbook"
)

// Local is an unguarded enum; partial switches over it are not this
// analyzer's business.
type Local int

const (
	A Local = iota
	B
)

func full(m core.BLMethod) string {
	switch m {
	case core.BL1:
		return "1"
	case core.BLAll, core.BLCPA:
		return "grouped"
	case core.BLCPAR:
		return "cpar"
	}
	return ""
}

func missing(m core.BLMethod) string {
	switch m { // want "missing BLCPA, BLCPAR"
	case core.BL1:
		return "1"
	case core.BLAll:
		return "all"
	}
	return ""
}

func loudDefault(m core.BLMethod) string {
	switch m {
	case core.BL1:
		return "1"
	default:
		panic("unhandled bottom-level method")
	}
}

func silentDefault(s resbook.Status) string {
	switch s {
	case resbook.Pending:
		return "pending"
	default: // want "silent default"
	}
	return ""
}

func unguarded(l Local) string {
	switch l {
	case A:
		return "a"
	}
	return ""
}

func noTag(s resbook.Status) string {
	switch {
	case s == resbook.Pending:
		return "pending"
	}
	return ""
}
