package hotpath_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/hotpath"
)

func TestHotPath(t *testing.T) {
	analysistest.Run(t, "testdata", hotpath.Analyzer, "resched/internal/cpa")
}
