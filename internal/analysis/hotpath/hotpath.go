// Package hotpath keeps allocation out of the functions the serving
// latency budget lives in. A function annotated
//
//	//reschedvet:hotpath
//
// — the serial CPA scans, the treap descents, the binary codec
// encode, the coalescing leader loop — is checked for the constructs
// that introduce per-call heap allocation, so the alloc wins of PRs 2
// and 7 cannot regress silently:
//
//   - slice and map composite literals, and &T{} (escaping composite);
//   - make(map) and make(chan) — make([]T, n, c) is allowed, since a
//     constant-sized, non-escaping slice make can stay on the stack
//     and is the idiomatic preallocation;
//   - capturing closures (a func literal referencing enclosing locals
//     allocates its environment; a non-capturing literal is a static
//     funcval and is allowed);
//   - interface boxing at call sites: a concrete-typed argument
//     passed to an interface parameter, or an explicit conversion to
//     an interface type;
//   - fmt calls and string concatenation;
//   - append through a bare local with no visible preallocation.
//     Appending to a parameter (the pooled dst-append codec idiom), to
//     struct-owned scratch (s.buf), through a pointer or an element,
//     or to a local assigned from a 3-arg make or an x[:0] reslice is
//     the sanctioned amortized pattern and is allowed.
//
// The directive exports a Hot object fact, visible in -facts dumps,
// so tooling can enumerate the declared hot set. Function literal
// bodies are not descended into: the literal's creation is judged
// here (capture), its body runs on its own activation.
//
// The check is syntactic, not an escape analysis: it flags the shapes
// that reliably allocate, and code that needs one deliberately can
// carry a //reschedvet:ignore hotpath line with its justification.
package hotpath

import (
	"go/ast"
	"go/token"
	"go/types"

	"resched/internal/analysis"
)

const hotDirective = "//reschedvet:hotpath"

// Hot marks a function declared //reschedvet:hotpath.
type Hot struct{}

func (*Hot) AFact() {}

func init() {
	analysis.RegisterFact("hotpath.Hot", (*Hot)(nil))
}

// Analyzer flags allocation-introducing constructs in functions
// annotated //reschedvet:hotpath.
var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "no allocation-introducing construct (composite literal, capturing closure, interface " +
		"boxing, fmt/string concatenation, map make, un-preallocated append) in a function " +
		"annotated //reschedvet:hotpath",
	Run: run,
}

func run(pass *analysis.Pass) error {
	decls, _ := analysis.FuncDecls(pass.Files, pass.TypesInfo)
	for _, fd := range decls {
		if !analysis.HasDirective(fd.Doc, hotDirective) {
			continue
		}
		if pass.InTestFile(fd.Pos()) || fd.Body == nil {
			continue
		}
		if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && analysis.InModule(pass.Pkg.Path()) {
			pass.ExportObjectFact(fn, &Hot{})
		}
		check(pass, fd)
	}
	return nil
}

func check(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	prealloc := preallocated(info, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if captures(info, n) {
				pass.Reportf(n.Pos(), "capturing closure allocates its environment in hot path")
			}
			return false // the literal body runs on its own activation
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "escaping composite literal allocates in hot path")
					return false // don't double-report the literal itself
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hot path")
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hot path")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) && !isConst(info, n) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hot path")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				pass.Reportf(n.Pos(), "string concatenation allocates in hot path")
			}
		case *ast.CallExpr:
			checkCall(pass, fd, n, prealloc)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[*types.Var]bool) {
	info := pass.TypesInfo

	// Builtins: make(map/chan) allocates; append is judged by its base.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				switch info.TypeOf(call).Underlying().(type) {
				case *types.Map:
					pass.Reportf(call.Pos(), "make(map) allocates in hot path")
				case *types.Chan:
					pass.Reportf(call.Pos(), "make(chan) allocates in hot path")
				}
			case "append":
				checkAppend(pass, fd, call, prealloc)
			}
			return
		}
	}

	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) && !isUntypedNil(info, call.Args[0]) {
				pass.Reportf(call.Pos(), "conversion to interface boxes its operand in hot path")
			}
		}
		return
	}

	// fmt is wholesale allocation (formatting state, boxing, the
	// result); report it as itself rather than per boxed argument.
	if fn := analysis.Callee(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates in hot path", fn.Name())
		return
	}

	// Interface boxing at an ordinary call site: a concrete argument
	// passed to an interface parameter.
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return // f(xs...) passes the slice through, no per-element boxing
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			s, ok := params.At(np - 1).Type().Underlying().(*types.Slice)
			if !ok {
				continue
			}
			pt = s.Elem()
		case i < np:
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(info, arg) {
			continue
		}
		pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes it in hot path", at)
	}
}

// checkAppend admits the amortized append shapes and flags the rest.
func checkAppend(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[*types.Var]bool) {
	if len(call.Args) == 0 {
		return
	}
	base := ast.Unparen(call.Args[0])
	switch b := base.(type) {
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return // struct-owned or indirected scratch: caller-amortized
	case *ast.Ident:
		v, _ := pass.TypesInfo.Uses[b].(*types.Var)
		if v == nil {
			return
		}
		if isParamOf(pass.TypesInfo, fd, v) || prealloc[v] {
			return
		}
		pass.Reportf(call.Pos(), "append to %s may grow without preallocation in hot path", v.Name())
	default:
		// append to a literal or call result: the allocation is the
		// base expression's, reported there.
	}
}

// preallocated collects the locals assigned (anywhere in fd) from a
// 3-arg make or an x[:0]-style reslice — the visible preallocation
// and scratch-reset idioms.
func preallocated(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			id, ok := ast.Unparen(l).(*ast.Ident)
			if !ok {
				continue
			}
			v, _ := info.Defs[id].(*types.Var)
			if v == nil {
				v, _ = info.Uses[id].(*types.Var)
			}
			if v == nil || !preallocExpr(info, as.Rhs[i]) {
				continue
			}
			out[v] = true
		}
		return true
	})
	return out
}

// preallocExpr reports whether e visibly reserves capacity: a
// three-argument make of a slice, or a reslice to zero length.
func preallocExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := info.Uses[id].(*types.Builtin)
		if !ok || b.Name() != "make" || len(e.Args) != 3 {
			return false
		}
		_, isSlice := info.TypeOf(e).Underlying().(*types.Slice)
		return isSlice
	case *ast.SliceExpr:
		if e.High == nil {
			return false
		}
		tv, ok := info.Types[e.High]
		return ok && tv.Value != nil && tv.Value.String() == "0"
	}
	return false
}

// captures reports whether the function literal references a variable
// declared outside it (package-level and universe names are static
// and free).
func captures(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if pkg := v.Pkg(); pkg != nil && v.Parent() == pkg.Scope() {
			return true // package-level variable: no environment needed
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			found = true
		}
		return !found
	})
	return found
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isUntypedNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

// isParamOf reports whether v is a parameter, receiver, or named
// result of fd.
func isParamOf(info *types.Info, fd *ast.FuncDecl, v *types.Var) bool {
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	if sig.Recv() == v {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			return true
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if sig.Results().At(i) == v {
			return true
		}
	}
	return false
}
