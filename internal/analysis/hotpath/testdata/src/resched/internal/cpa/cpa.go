// Package cpa is a hotpath fixture: one clean annotated scan using
// every sanctioned shape, one annotated function hitting every flagged
// construct, and an unannotated twin that stays silent.
package cpa

import (
	"fmt"
	"strconv"
)

type sched struct {
	buf  []int
	heap []int
}

func sink(v any)      {}
func sinks(vs ...any) {}

// grow is the clean hot function: index arithmetic, parameter append,
// struct-owned scratch, a preallocated local, and a scratch reset.
//
//reschedvet:hotpath
func (s *sched) grow(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
		s.buf = append(s.buf, i)
	}
	tmp := make([]int, 0, 8)
	tmp = append(tmp, n)
	s.heap = s.heap[:0]
	s.heap = append(s.heap, tmp...)
	prefix := "cp" + "a" // constant-folded: free
	_ = prefix
	return dst
}

//reschedvet:hotpath
func bad(n int) {
	m := map[int]int{} // want "map literal allocates in hot path"
	_ = m
	xs := []int{1, 2, 3} // want "slice literal allocates in hot path"
	_ = xs
	p := &sched{} // want "escaping composite literal allocates in hot path"
	_ = p
	mm := make(map[int]int) // want "make.map. allocates in hot path"
	_ = mm
	ch := make(chan int, 1) // want "make.chan. allocates in hot path"
	_ = ch
	var out []int
	out = append(out, n) // want "append to out may grow without preallocation in hot path"
	_ = out
	f := func() int { return n } // want "capturing closure allocates its environment in hot path"
	_ = f
	g := func(x int) int { return x * 2 } // non-capturing: a static funcval
	_ = g
	s := "n=" + strconv.Itoa(n) // want "string concatenation allocates in hot path"
	s += "!"                    // want "string concatenation allocates in hot path"
	_ = s
	fmt.Println(n) // want "fmt.Println allocates in hot path"
	sink(n)        // want "passing int to interface parameter boxes it in hot path"
	sinks(n, "x")  // want "passing int to interface parameter boxes it" "passing string to interface parameter boxes it"
	_ = any(n)     // want "conversion to interface boxes its operand in hot path"
	sink(nil)      // nil boxes nothing
}

// cold is bad's unannotated twin: the directive, not the constructs,
// selects functions for checking.
func cold(n int) {
	m := map[int]int{}
	_ = m
	var out []int
	out = append(out, n)
	_ = out
	fmt.Println(n)
}
