package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directive handling and lock-expression resolution shared by the
// concurrency analyzers (lockhold, guardedby, atomicmix). Directives
// are machine-readable comments of the form
//
//	//reschedvet:<name> [args...]
//
// attached to a declaration's doc comment (functions) or to a struct
// field's doc or trailing line comment (fields).

// HasDirective reports whether the comment group carries the directive
// (exact name; a longer word sharing the prefix does not match).
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	_, ok := DirectiveArgs(doc, directive)
	return ok
}

// DirectiveArgs returns the text following the directive in the
// comment group, trimmed of surrounding space. The directive matches
// only as a whole word: `//reschedvet:holds` does not match
// `//reschedvet:holdsnothing`.
func DirectiveArgs(doc *ast.CommentGroup, directive string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, directive) {
			continue
		}
		rest := strings.TrimPrefix(c.Text, directive)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// FieldDirectiveArgs looks the directive up on a struct field, which
// may carry it either in a doc comment above or a line comment after
// the field.
func FieldDirectiveArgs(f *ast.Field, directive string) (string, bool) {
	if args, ok := DirectiveArgs(f.Doc, directive); ok {
		return args, ok
	}
	return DirectiveArgs(f.Comment, directive)
}

// IsMutexType reports whether t is sync.Mutex or sync.RWMutex,
// through pointers and aliases.
func IsMutexType(t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// LockMethod classifies a call as a sync mutex acquire or release and
// resolves the lock it names to a stable key (the mutex variable or
// field). rlock distinguishes the read forms (RLock/RUnlock).
// Unresolvable receivers return a nil key and are ignored.
func LockMethod(info *types.Info, call *ast.CallExpr) (key *types.Var, acquire, release, rlock bool) {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false, false
	}
	named := ReceiverNamed(fn)
	if named == nil {
		return nil, false, false, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return nil, false, false, false
	}
	switch fn.Name() {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, rlock = true, true
	case "Unlock":
		release = true
	case "RUnlock":
		release, rlock = true, true
	default:
		return nil, false, false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false, false, false
	}
	return LockVar(info, sel.X), acquire, release, rlock
}

// LockVar resolves `mu` or `b.mu` (through any selector chain) to the
// variable or field naming the lock.
func LockVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return LockVar(info, e.X)
		}
	}
	return nil
}

// RootIdentVar strips selectors, indexes, slices, dereferences,
// address-ofs, and parens off an expression and resolves the
// remaining root identifier to its variable, or nil.
func RootIdentVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			if v == nil {
				v, _ = info.Defs[x].(*types.Var)
			}
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// FreshLocals identifies the function's provably fresh locals:
// variables every one of whose assignments derives from memory the
// function itself allocated (a composite literal, new, or a
// projection — field, element, address — of another fresh local).
// Accesses through a fresh local cannot race, because no other
// goroutine holds a reference yet; guardedby and atomicmix use this
// to exempt constructor initialization from locking discipline.
//
// The analysis is syntactic and flow-insensitive: a variable
// reassigned from anything non-fresh is dropped entirely, and
// freshness propagates through chains (sh := &b.shards[i] is fresh
// when b is) by iterating to a fixed point.
func FreshLocals(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	if fd.Body == nil {
		return nil
	}
	// sources[v] lists the RHS expressions assigned to v; vars with an
	// unmatched (multi-value) assignment are poisoned.
	sources := map[*types.Var][]ast.Expr{}
	poisoned := map[*types.Var]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return // writes through selectors/indexes don't change the root's freshness
		}
		v, _ := info.Defs[id].(*types.Var)
		if v == nil {
			v, _ = info.Uses[id].(*types.Var)
		}
		if v == nil {
			return
		}
		if rhs == nil {
			poisoned[v] = true
			return
		}
		sources[v] = append(sources[v], rhs)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			} else {
				for _, l := range n.Lhs {
					record(l, nil)
				}
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				record(n.Key, nil)
			}
			if n.Value != nil {
				record(n.Value, nil)
			}
		}
		return true
	})

	fresh := map[*types.Var]bool{}
	var freshExpr func(e ast.Expr) bool
	freshExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			return e.Op == token.AND && freshExpr(e.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
					return true
				}
			}
			return false
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			v := RootIdentVar(info, e)
			return v != nil && fresh[v]
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for v, exprs := range sources {
			if fresh[v] || poisoned[v] {
				continue
			}
			all := true
			for _, e := range exprs {
				if !freshExpr(e) {
					all = false
					break
				}
			}
			if all {
				fresh[v] = true
				changed = true
			}
		}
	}
	return fresh
}
