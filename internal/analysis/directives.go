package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Directive handling and lock-expression resolution shared by the
// concurrency analyzers (lockhold, guardedby, atomicmix). Directives
// are machine-readable comments of the form
//
//	//reschedvet:<name> [args...]
//
// attached to a declaration's doc comment (functions) or to a struct
// field's doc or trailing line comment (fields).

// The lock-contract directives are shared by guardedby (which
// validates and enforces them at call sites) and lockcycle (which
// folds them into the global lock-order graph); lockorder is shared by
// lockhold (indexed-acquisition suppression) and lockcycle (fact
// export and staleness hygiene).
const (
	// HoldsDirective declares that callers must hold the named mutex.
	HoldsDirective = "//reschedvet:holds"
	// AcquiresDirective declares that calling the function acquires
	// the named mutex and leaves it held.
	AcquiresDirective = "//reschedvet:acquires"
	// ReleasesDirective declares that calling the function releases
	// the named mutex.
	ReleasesDirective = "//reschedvet:releases"
	// LockOrderDirective declares that a function acquires same-field
	// locks through strictly ascending indices — the sharded book's
	// global lock order.
	LockOrderDirective = "//reschedvet:lockorder"
	// ClosesDirective declares that calling the function closes the
	// named channel field (field or Type.field), for bodies whose close
	// is too indirect for chanflow to see.
	ClosesDirective = "//reschedvet:closes"
)

// HasDirective reports whether the comment group carries the directive
// (exact name; a longer word sharing the prefix does not match).
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	_, ok := DirectiveArgs(doc, directive)
	return ok
}

// DirectiveArgs returns the text following the directive in the
// comment group, trimmed of surrounding space. The directive matches
// only as a whole word: `//reschedvet:holds` does not match
// `//reschedvet:holdsnothing`.
func DirectiveArgs(doc *ast.CommentGroup, directive string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, directive) {
			continue
		}
		rest := strings.TrimPrefix(c.Text, directive)
		if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
			continue
		}
		return strings.TrimSpace(rest), true
	}
	return "", false
}

// FieldDirectiveArgs looks the directive up on a struct field, which
// may carry it either in a doc comment above or a line comment after
// the field.
func FieldDirectiveArgs(f *ast.Field, directive string) (string, bool) {
	if args, ok := DirectiveArgs(f.Doc, directive); ok {
		return args, ok
	}
	return DirectiveArgs(f.Comment, directive)
}

// IsMutexType reports whether t is sync.Mutex or sync.RWMutex,
// through pointers and aliases.
func IsMutexType(t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// LockMethod classifies a call as a sync mutex acquire or release and
// resolves the lock it names to a stable key (the mutex variable or
// field). rlock distinguishes the read forms (RLock/RUnlock).
// Unresolvable receivers return a nil key and are ignored.
func LockMethod(info *types.Info, call *ast.CallExpr) (key *types.Var, acquire, release, rlock bool) {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, false, false, false
	}
	named := ReceiverNamed(fn)
	if named == nil {
		return nil, false, false, false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
	default:
		return nil, false, false, false
	}
	switch fn.Name() {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, rlock = true, true
	case "Unlock":
		release = true
	case "RUnlock":
		release, rlock = true, true
	default:
		return nil, false, false, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, false, false, false
	}
	return LockVar(info, sel.X), acquire, release, rlock
}

// LockVar resolves `mu` or `b.mu` (through any selector chain) to the
// variable or field naming the lock.
func LockVar(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			v, _ := sel.Obj().(*types.Var)
			return v
		}
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return LockVar(info, e.X)
		}
	}
	return nil
}

// IsChanType reports whether t is a channel type, through aliases.
func IsChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// ChanVar resolves a channel-typed expression to its variable, if it
// is a plain (possibly selected) variable reference.
func ChanVar(info *types.Info, e ast.Expr) *types.Var {
	t := info.TypeOf(e)
	if t == nil || !IsChanType(t) {
		return nil
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		if v == nil {
			if sel, ok := info.Selections[e]; ok {
				v, _ = sel.Obj().(*types.Var)
			}
		}
		return v
	}
	return nil
}

// LockContractSpec is the parsed form of a function's lock-contract
// directives, mutex names as written (field or Type.field).
type LockContractSpec struct {
	Holds    []string
	Acquires []string
	Releases []string
}

// ParseLockContract reads the holds/acquires/releases directives off a
// doc comment without validating the named mutexes (guardedby owns the
// hygiene reports; lockcycle consumes contracts silently). ok is true
// when at least one directive names at least one mutex.
func ParseLockContract(doc *ast.CommentGroup) (LockContractSpec, bool) {
	var spec LockContractSpec
	for _, d := range []struct {
		directive string
		into      *[]string
	}{
		{HoldsDirective, &spec.Holds},
		{AcquiresDirective, &spec.Acquires},
		{ReleasesDirective, &spec.Releases},
	} {
		if args, ok := DirectiveArgs(doc, d.directive); ok {
			*d.into = strings.Fields(args)
		}
	}
	return spec, len(spec.Holds)+len(spec.Acquires)+len(spec.Releases) > 0
}

// ResolveMutexSpec resolves a directive's mutex name for fn: a bare
// field name against fn's receiver struct, or Type.field against a
// struct type in fn's package.
func ResolveMutexSpec(pkg *types.Package, fn *types.Func, spec string) *types.Var {
	return resolveFieldSpec(pkg, fn, spec, IsMutexType)
}

// ResolveChanSpec is ResolveMutexSpec for channel-typed fields — the
// form chanflow's closes directive uses.
func ResolveChanSpec(pkg *types.Package, fn *types.Func, spec string) *types.Var {
	return resolveFieldSpec(pkg, fn, spec, IsChanType)
}

// resolveFieldSpec resolves a `field` or `Type.field` spec to a struct
// field of the wanted type: bare names against fn's receiver struct,
// qualified names against a struct type in pkg's scope.
func resolveFieldSpec(pkg *types.Package, fn *types.Func, spec string, want func(types.Type) bool) *types.Var {
	var st *types.Struct
	name := spec
	if t, f, ok := strings.Cut(spec, "."); ok {
		name = f
		obj, _ := pkg.Scope().Lookup(t).(*types.TypeName)
		if obj == nil {
			return nil
		}
		st, _ = obj.Type().Underlying().(*types.Struct)
	} else if named := ReceiverNamed(fn); named != nil {
		st, _ = named.Underlying().(*types.Struct)
	}
	if st == nil {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == name && want(f.Type()) {
			return f
		}
	}
	return nil
}

// VarKey renders a lock or channel variable as a stable, module-wide
// identity: "pkg/path.Type.field" for fields of package-scope struct
// types, "pkg/path.name" for package-level variables, and "" for
// everything else (locals and anonymous-struct fields cannot compose
// across functions, so whole-module analyses drop them). One loader
// type-checks every module package of a run, so the same field always
// renders the same key on both sides of an import edge.
func VarKey(v *types.Var) string {
	if v == nil || v.Pkg() == nil {
		return ""
	}
	if v.IsField() {
		if owner := fieldOwnerName(v); owner != "" {
			return v.Pkg().Path() + "." + owner + "." + v.Name()
		}
		return ""
	}
	if v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Path() + "." + v.Name()
	}
	return ""
}

// fieldOwnerName finds the package-scope named struct type declaring
// the field, by object identity. Scope names are sorted, so the first
// match is deterministic (a field belongs to exactly one struct
// anyway).
func fieldOwnerName(v *types.Var) string {
	scope := v.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				return name
			}
		}
	}
	return ""
}

// ShortKey trims a VarKey or ObjectKey down to its last path element
// for diagnostics: "resched/internal/resbook.bookShard.mu" renders as
// "resbook.bookShard.mu". Keys are unique module-wide; the short form
// is only for human eyes.
func ShortKey(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[i+1:]
	}
	return key
}

// IndexedLockOp reports whether call is a mutex Lock/RLock/Unlock/
// RUnlock whose receiver expression is indexed — the `shards[i].mu`
// shape the lockorder directive blesses.
func IndexedLockOp(info *types.Info, call *ast.CallExpr) bool {
	if key, acquire, release, _ := LockMethod(info, call); key == nil || (!acquire && !release) {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	indexed := false
	ast.Inspect(sel.X, func(n ast.Node) bool {
		if _, ok := n.(*ast.IndexExpr); ok {
			indexed = true
			return false
		}
		return true
	})
	return indexed
}

// HasIndexedLockOp reports whether body performs any indexed lock
// operation.
func HasIndexedLockOp(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && IndexedLockOp(info, call) {
			found = true
		}
		return !found
	})
	return found
}

// RootIdentVar strips selectors, indexes, slices, dereferences,
// address-ofs, and parens off an expression and resolves the
// remaining root identifier to its variable, or nil.
func RootIdentVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			if v == nil {
				v, _ = info.Defs[x].(*types.Var)
			}
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// FreshLocals identifies the function's provably fresh locals:
// variables every one of whose assignments derives from memory the
// function itself allocated (a composite literal, new, or a
// projection — field, element, address — of another fresh local).
// Accesses through a fresh local cannot race, because no other
// goroutine holds a reference yet; guardedby and atomicmix use this
// to exempt constructor initialization from locking discipline.
//
// The analysis is syntactic and flow-insensitive: a variable
// reassigned from anything non-fresh is dropped entirely, and
// freshness propagates through chains (sh := &b.shards[i] is fresh
// when b is) by iterating to a fixed point.
func FreshLocals(info *types.Info, fd *ast.FuncDecl) map[*types.Var]bool {
	if fd.Body == nil {
		return nil
	}
	// sources[v] lists the RHS expressions assigned to v; vars with an
	// unmatched (multi-value) assignment are poisoned.
	sources := map[*types.Var][]ast.Expr{}
	poisoned := map[*types.Var]bool{}
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return // writes through selectors/indexes don't change the root's freshness
		}
		v, _ := info.Defs[id].(*types.Var)
		if v == nil {
			v, _ = info.Uses[id].(*types.Var)
		}
		if v == nil {
			return
		}
		if rhs == nil {
			poisoned[v] = true
			return
		}
		sources[v] = append(sources[v], rhs)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			} else {
				for _, l := range n.Lhs {
					record(l, nil)
				}
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				record(n.Key, nil)
			}
			if n.Value != nil {
				record(n.Value, nil)
			}
		}
		return true
	})

	fresh := map[*types.Var]bool{}
	var freshExpr func(e ast.Expr) bool
	freshExpr = func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			return e.Op == token.AND && freshExpr(e.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
					return true
				}
			}
			return false
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			v := RootIdentVar(info, e)
			return v != nil && fresh[v]
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for v, exprs := range sources {
			if fresh[v] || poisoned[v] {
				continue
			}
			all := true
			for _, e := range exprs {
				if !freshExpr(e) {
					all = false
					break
				}
			}
			if all {
				fresh[v] = true
				changed = true
			}
		}
	}
	return fresh
}
