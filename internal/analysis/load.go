package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// PkgPath is the package's import path.
	PkgPath string
	// Fset is shared by every package of one Load call.
	Fset *token.FileSet
	// Syntax holds the parsed non-test Go files, comments included.
	Syntax []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// TypesInfo holds the type-checker's results for Syntax.
	TypesInfo *types.Info
	// Imports holds the directly imported packages that were themselves
	// type-checked from source (module-internal dependencies). Imports
	// resolved from export data — the standard library — are not here:
	// facts flow along these edges, and facts are only inferred from
	// source.
	Imports []*Package
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Standard   bool
	Export     string
}

// goList runs `go list` in dir with the given arguments and decodes
// the JSON stream it prints.
func goList(dir string, args ...string) ([]*listedPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

const listFields = "-json=ImportPath,Dir,GoFiles,CgoFiles,Imports,Standard,Export"

// Load type-checks the module packages matched by patterns (relative
// to dir) and returns them ready for analysis. Non-test files only:
// the invariants guarded here are serving-code invariants, and test
// files are exactly where the guarded escape hatches (reference
// oracles, fixed contexts) are legitimate.
//
// Dependencies are resolved from the build cache's export data (via
// `go list -export`), so Load works offline and needs nothing beyond
// the Go toolchain; the analyzed packages themselves are type-checked
// from source so analyzers see exact declaration positions.
func Load(dir string, patterns []string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	wanted := make(map[string]bool, len(targets))
	for _, t := range targets {
		wanted[t.ImportPath] = true
	}

	deps, err := goList(dir, append([]string{"-deps", "-export", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listedPackage, len(deps))
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		byPath[p.ImportPath] = p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	fset := token.NewFileSet()
	ld := &loader{
		fset:    fset,
		byPath:  byPath,
		checked: make(map[string]*Package),
	}
	ld.exportImporter = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	// Load every requested module package from source, in the order
	// go list printed the targets (dependencies are pulled in
	// recursively as needed).
	var out []*Package
	for _, t := range targets {
		p := byPath[t.ImportPath]
		if p == nil || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := ld.load(p.ImportPath)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if len(out) == 0 {
		// `go list` exits zero for a pattern that matches directories
		// without Go files, which would otherwise make the vet run
		// silently analyze nothing and report success.
		return nil, fmt.Errorf("analysis: no Go packages matched %v", patterns)
	}
	return out, nil
}

// loader type-checks module packages from source, resolving imports
// through already-checked packages first and export data otherwise.
type loader struct {
	fset           *token.FileSet
	byPath         map[string]*listedPackage
	checked        map[string]*Package
	exportImporter types.Importer
}

// Import implements types.Importer for the type-checker: module
// packages come from the loader's own source-checked results so that
// declaration positions are exact, everything else from export data.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.checked[path]; ok {
		return p.Types, nil
	}
	if lp, ok := ld.byPath[path]; ok && !lp.Standard {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.exportImporter.Import(path)
}

func (ld *loader) load(path string) (*Package, error) {
	if p, ok := ld.checked[path]; ok {
		return p, nil
	}
	lp := ld.byPath[path]
	if lp == nil {
		return nil, fmt.Errorf("analysis: package %q not listed", path)
	}
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("analysis: package %q uses cgo, which this loader does not support", path)
	}
	names := append([]string(nil), lp.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, err)
	}
	pkg := &Package{
		PkgPath:   path,
		Fset:      ld.fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	for _, imp := range tpkg.Imports() {
		if dep, ok := ld.checked[imp.Path()]; ok {
			pkg.Imports = append(pkg.Imports, dep)
		}
	}
	ld.checked[path] = pkg
	return pkg, nil
}
