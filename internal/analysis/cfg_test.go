package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a function and returns its CFG.
// Marker statements are calls to single-letter functions (a(), b(),
// ...); markerBlocks maps each marker name to the block holding it.
func parseBody(t *testing.T, body string) (*CFG, map[string]*Block) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	cfg := NewCFG(fd.Body)
	marks := map[string]*Block{}
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			WalkBlockNode(n, func(child ast.Node) bool {
				call, ok := child.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && len(id.Name) <= 2 {
					if prev, dup := marks[id.Name]; dup && prev != b {
						t.Fatalf("marker %s appears in blocks %d and %d", id.Name, prev.Index, b.Index)
					}
					marks[id.Name] = b
				}
				return true
			})
		}
	}
	return cfg, marks
}

// reaches reports whether to is reachable from from along successor
// edges (including trivially, from == to).
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestCFGStraightLine(t *testing.T) {
	_, m := parseBody(t, "a()\nb()")
	if m["a"] != m["b"] {
		t.Errorf("straight-line statements split across blocks %d and %d", m["a"].Index, m["b"].Index)
	}
}

func TestCFGIfElse(t *testing.T) {
	cfg, m := parseBody(t, `
if c() {
	a()
} else {
	b()
}
j()`)
	entry := cfg.Blocks[0]
	for _, mark := range []string{"a", "b", "j"} {
		if !reaches(entry, m[mark]) {
			t.Errorf("%s unreachable from entry", mark)
		}
	}
	if m["a"] == m["b"] {
		t.Errorf("then and else share a block")
	}
	if !reaches(m["a"], m["j"]) || !reaches(m["b"], m["j"]) {
		t.Errorf("branches do not rejoin")
	}
	if reaches(m["a"], m["b"]) || reaches(m["b"], m["a"]) {
		t.Errorf("then and else reach each other")
	}
}

func TestCFGForLoop(t *testing.T) {
	cfg, m := parseBody(t, `
for i := 0; c(); i++ {
	a()
}
d()`)
	if !reaches(m["a"], m["a"]) {
		t.Errorf("loop body has no back edge to itself")
	}
	if !reaches(m["a"], m["d"]) {
		t.Errorf("loop exit unreachable from body")
	}
	if !reaches(cfg.Blocks[0], m["d"]) {
		t.Errorf("statement after loop unreachable")
	}
}

func TestCFGRangeHeader(t *testing.T) {
	cfg, m := parseBody(t, `
for _, v := range xs() {
	a()
	_ = v
}
d()`)
	// The range statement is a header node; its body must not be
	// inside the header's block nodes.
	var header *Block
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				header = b
			}
		}
	}
	if header == nil {
		t.Fatalf("no block holds the range header")
	}
	if header == m["a"] {
		t.Errorf("range body statement in the header block")
	}
	if !reaches(m["a"], header) {
		t.Errorf("range body has no back edge")
	}
	if !reaches(header, m["d"]) {
		t.Errorf("range exit unreachable")
	}
}

func TestCFGReturnEndsBlock(t *testing.T) {
	cfg, m := parseBody(t, `
if c() {
	a()
	return
}
b()`)
	if reaches(m["a"], m["b"]) {
		t.Errorf("statement after return reachable from returning branch")
	}
	if !reaches(cfg.Blocks[0], m["b"]) {
		t.Errorf("fallthrough path lost")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	_, m := parseBody(t, `
switch tag() {
case 1:
	a()
	fallthrough
case 2:
	b()
default:
	d()
}
j()`)
	if !reaches(m["a"], m["b"]) {
		t.Errorf("fallthrough edge missing")
	}
	if reaches(m["b"], m["d"]) {
		t.Errorf("case 2 reaches default without fallthrough")
	}
	for _, mark := range []string{"a", "b", "d"} {
		if !reaches(m[mark], m["j"]) {
			t.Errorf("case %s does not rejoin after switch", mark)
		}
	}
}

func TestCFGSwitchNoDefaultSkips(t *testing.T) {
	cfg, m := parseBody(t, `
switch tag() {
case 1:
	a()
}
j()`)
	// Without a default, control may skip every case.
	entry := cfg.Blocks[0]
	direct := false
	for _, s := range entry.Succs {
		if s == m["j"] || (len(s.Nodes) == 0 && reaches(s, m["j"])) {
			direct = true
		}
	}
	if !direct && !reaches(entry, m["j"]) {
		t.Errorf("switch without default cannot be skipped")
	}
}

func TestCFGSelect(t *testing.T) {
	cfg, m := parseBody(t, `
select {
case v := <-ch():
	a()
	_ = v
case ch2() <- 1:
	b()
}
j()`)
	var sel *Block
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.SelectStmt); ok {
				sel = blk
			}
		}
	}
	if sel == nil {
		t.Fatalf("no select marker node")
	}
	if m["a"] == m["b"] {
		t.Errorf("select clauses share a block")
	}
	// Each clause block must lead with its comm statement.
	for _, mark := range []string{"a", "b"} {
		blk := m[mark]
		if len(blk.Nodes) == 0 {
			t.Fatalf("clause block empty")
		}
		switch blk.Nodes[0].(type) {
		case *ast.AssignStmt, *ast.SendStmt, *ast.ExprStmt:
		default:
			t.Errorf("clause %s block does not start with its comm statement: %T", mark, blk.Nodes[0])
		}
		if !reaches(blk, m["j"]) {
			t.Errorf("clause %s does not rejoin", mark)
		}
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	_, m := parseBody(t, `
outer:
for c() {
	for c2() {
		a()
		break outer
	}
	b()
}
j()`)
	if reaches(m["a"], m["b"]) {
		t.Errorf("labeled break falls back into the outer loop body")
	}
	if !reaches(m["a"], m["j"]) {
		t.Errorf("labeled break does not exit the outer loop")
	}
}

func TestCFGGoto(t *testing.T) {
	_, m := parseBody(t, `
	a()
	goto done
	b()
done:
	j()`)
	if !reaches(m["a"], m["j"]) {
		t.Errorf("goto target unreachable")
	}
	if reaches(m["a"], m["b"]) {
		t.Errorf("statement after goto reachable")
	}
}

func TestWalkBlockNodeSkipsFuncLitBody(t *testing.T) {
	src := "package p\nfunc f() { g(func() { inner() }) }\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "w.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	stmt := file.Decls[0].(*ast.FuncDecl).Body.List[0]
	var names []string
	WalkBlockNode(stmt, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			names = append(names, id.Name)
		}
		return true
	})
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "g") {
		t.Errorf("outer call not visited: %q", joined)
	}
	if strings.Contains(joined, "inner") {
		t.Errorf("function literal body was entered: %q", joined)
	}
}

func TestCFGEveryStatementAppears(t *testing.T) {
	// Unreachable code is still built so analyses see every node.
	cfg, m := parseBody(t, `
return
a()`)
	if m["a"] == nil {
		t.Fatalf("unreachable statement missing from CFG")
	}
	if reaches(cfg.Blocks[0], m["a"]) {
		t.Errorf("unreachable statement reachable from entry")
	}
}

func TestCFGBlockIndexes(t *testing.T) {
	cfg, _ := parseBody(t, "if c() { a() }\nb()")
	for i, b := range cfg.Blocks {
		if b.Index != i {
			t.Fatalf("block %d has Index %d", i, b.Index)
		}
		for _, s := range b.Succs {
			if cfg.Blocks[s.Index] != s {
				t.Fatalf("successor of block %d not in Blocks", i)
			}
		}
	}
}
