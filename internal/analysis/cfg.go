package analysis

import (
	"go/ast"
	"go/token"
)

// CFG is a per-function control-flow graph over basic blocks, the
// substrate of the flow-sensitive analyzers (lockhold's lock-held
// regions, snapshotmut's alias tracking, errdrop's dead error
// definitions). It is built from syntax alone — no SSA — which keeps
// it small but means analyses must themselves resolve names through
// go/types.
//
// Blocks hold the *leaf* nodes that execute in them, in order:
// simple statements, branch conditions, switch tags and case
// expressions, range headers, and select markers. Compound statement
// bodies never appear inside a block node — they live in their own
// blocks — so analyses should traverse block nodes with WalkBlockNode,
// which knows which children of a header node belong to it.
type CFG struct {
	// Blocks lists every basic block; Blocks[0] is the function entry.
	Blocks []*Block
}

// Block is one basic block: a maximal sequence of nodes that execute
// consecutively, with edges to every possible successor.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*labelBlocks{}}
	b.stmtList(body.List, b.newBlock())
	return b.cfg
}

// labelBlocks records the jump targets a label can name.
type labelBlocks struct {
	// target is where `goto L` and entering the labeled statement
	// land.
	target *Block
	// brk and cont are the break/continue targets while the labeled
	// loop or switch is being built.
	brk, cont *Block
}

type cfgBuilder struct {
	cfg    *CFG
	labels map[string]*labelBlocks
	// breaks and conts are stacks of the innermost unlabeled
	// break/continue targets.
	breaks []*Block
	conts  []*Block
	// pendingLabel, when non-empty, names the label wrapping the next
	// loop/switch/select statement so labeled break/continue resolve.
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// stmtList builds stmts starting in cur, returning the block where
// control continues (nil if every path left the list).
func (b *cfgBuilder) stmtList(stmts []ast.Stmt, cur *Block) *Block {
	for _, s := range stmts {
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt builds one statement. A nil cur means the statement is
// unreachable; it is still built (into a fresh predecessor-less block)
// so analyses see every node.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	if cur == nil {
		cur = b.newBlock()
	}
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(s.List, cur)

	case *ast.LabeledStmt:
		lb := b.labelInfo(s.Label.Name)
		if lb.target == nil {
			lb.target = b.newBlock()
		}
		edge(cur, lb.target)
		b.pendingLabel = s.Label.Name
		out := b.stmt(s.Stmt, lb.target)
		b.pendingLabel = ""
		return out

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		then := b.newBlock()
		edge(cur, then)
		thenOut := b.stmtList(s.Body.List, then)
		if s.Else == nil {
			join := b.newBlock()
			edge(cur, join)
			edge(thenOut, join)
			return join
		}
		els := b.newBlock()
		edge(cur, els)
		elseOut := b.stmt(s.Else, els)
		if thenOut == nil && elseOut == nil {
			return nil
		}
		join := b.newBlock()
		edge(thenOut, join)
		edge(elseOut, join)
		return join

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		body := b.newBlock()
		done := b.newBlock()
		edge(head, body)
		if s.Cond != nil {
			edge(head, done)
		}
		b.pushLoop(label, done, head)
		bodyOut := b.stmtList(s.Body.List, body)
		b.popLoop(label)
		if s.Post != nil {
			if bodyOut == nil {
				bodyOut = b.newBlock() // unreachable post
			}
			bodyOut.Nodes = append(bodyOut.Nodes, s.Post)
		}
		edge(bodyOut, head)
		return done

	case *ast.RangeStmt:
		head := b.newBlock()
		edge(cur, head)
		head.Nodes = append(head.Nodes, s)
		body := b.newBlock()
		done := b.newBlock()
		edge(head, body)
		edge(head, done)
		b.pushLoop(label, done, head)
		bodyOut := b.stmtList(s.Body.List, body)
		b.popLoop(label)
		edge(bodyOut, head)
		return done

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(label, cur, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(label, cur, s.Body.List, nil)

	case *ast.SelectStmt:
		// The select itself is a marker node in the predecessor (for
		// blocking-operation detection); each comm clause starts its
		// own block with the comm statement first.
		cur.Nodes = append(cur.Nodes, s)
		return b.switchBody(label, cur, s.Body.List, func(clause ast.Stmt, blk *Block) {
			if comm := clause.(*ast.CommClause).Comm; comm != nil {
				blk.Nodes = append(blk.Nodes, comm)
			}
		})

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				edge(cur, b.labelInfo(s.Label.Name).brk)
			} else if n := len(b.breaks); n > 0 {
				edge(cur, b.breaks[n-1])
			}
		case token.CONTINUE:
			if s.Label != nil {
				edge(cur, b.labelInfo(s.Label.Name).cont)
			} else if n := len(b.conts); n > 0 {
				edge(cur, b.conts[n-1])
			}
		case token.GOTO:
			lb := b.labelInfo(s.Label.Name)
			if lb.target == nil {
				lb.target = b.newBlock()
			}
			edge(cur, lb.target)
		case token.FALLTHROUGH:
			// switchBody wires fallthrough edges; nothing to do here
			// beyond ending the block.
		}
		return nil

	default:
		// Simple statements: expression, send, inc/dec, assignment,
		// declaration, go, defer, empty.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchBody builds the clause blocks of a switch, type switch, or
// select. Each clause gets its own block reachable from cur; control
// joins after the statement. prep, if non-nil, seeds a clause's block
// before its body (select's comm statement).
func (b *cfgBuilder) switchBody(label string, cur *Block, clauses []ast.Stmt, prep func(ast.Stmt, *Block)) *Block {
	done := b.newBlock()
	b.pushSwitch(label, done)
	defer b.popSwitch(label)

	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		blocks[i] = b.newBlock()
		edge(cur, blocks[i])
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			blocks[i].Nodes = append(blocks[i].Nodes, exprNodes(c.List)...)
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
		}
		if prep != nil {
			prep(clause, blocks[i])
		}
	}
	if !hasDefault || len(clauses) == 0 {
		edge(cur, done)
	}
	for i, clause := range clauses {
		var body []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			body = c.Body
		case *ast.CommClause:
			body = c.Body
		}
		// A trailing fallthrough transfers to the next clause's block;
		// it is dropped from the built body so the block does not end
		// (BranchStmt would sever the edge).
		if fallsThrough(body) && i+1 < len(clauses) {
			out := b.stmtList(body[:len(body)-1], blocks[i])
			edge(out, blocks[i+1])
		} else {
			edge(b.stmtList(body, blocks[i]), done)
		}
	}
	return done
}

// fallsThrough reports whether a case body ends in a fallthrough
// statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func exprNodes(exprs []ast.Expr) []ast.Node {
	out := make([]ast.Node, len(exprs))
	for i, e := range exprs {
		out[i] = e
	}
	return out
}

func (b *cfgBuilder) labelInfo(name string) *labelBlocks {
	lb := b.labels[name]
	if lb == nil {
		lb = &labelBlocks{}
		b.labels[name] = lb
	}
	return lb
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.conts = append(b.conts, cont)
	if label != "" {
		lb := b.labelInfo(label)
		lb.brk, lb.cont = brk, cont
	}
}

func (b *cfgBuilder) popLoop(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	if label != "" {
		lb := b.labelInfo(label)
		lb.brk, lb.cont = nil, nil
	}
}

func (b *cfgBuilder) pushSwitch(label string, brk *Block) {
	b.breaks = append(b.breaks, brk)
	if label != "" {
		b.labelInfo(label).brk = brk
	}
}

func (b *cfgBuilder) popSwitch(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if label != "" {
		b.labelInfo(label).brk = nil
	}
}

// WalkBlockNode traverses the syntax that executes as part of a block
// node, in approximate evaluation order, calling f in pre-order; f
// returning false prunes the subtree. It differs from ast.Inspect in
// the places where CFG construction split a statement across blocks:
//
//   - a RangeStmt node stands for the header only (Key, Value, X) —
//     the body is in other blocks;
//   - a SelectStmt node is a pure marker — comm statements and bodies
//     are in the clause blocks;
//   - function literals are not entered: a nested function body
//     executes on its own activation, not in this block.
func WalkBlockNode(n ast.Node, f func(ast.Node) bool) {
	switch n := n.(type) {
	case *ast.RangeStmt:
		if !f(n) {
			return
		}
		if n.Key != nil {
			WalkBlockNode(n.Key, f)
		}
		if n.Value != nil {
			WalkBlockNode(n.Value, f)
		}
		WalkBlockNode(n.X, f)
	case *ast.SelectStmt:
		f(n)
	default:
		ast.Inspect(n, func(child ast.Node) bool {
			if child == nil {
				return false
			}
			if _, ok := child.(*ast.FuncLit); ok && child != n {
				f(child) // visible, but its body is not entered
				return false
			}
			return f(child)
		})
	}
}
