// Package snapshotmut enforces the book's copy-on-read contract from
// the other side: a value that aliases the reservation book's or a
// profile's internal memory is a read-only view, and serving code must
// not write through it. The book hands out clones exactly so that
// schedulers can mutate freely; the moment an accessor returns aliased
// internals instead (an optimization this analyzer exists to keep
// honest), any write through the result corrupts shared scheduling
// state behind the lock's back.
//
// The analysis is built on the taint engine. Two facts are inferred
// for every module function by running the dataflow with parameter and
// receiver provenance bits:
//
//   - ReturnsAlias: some result carries memory reachable from the
//     receiver or from a parameter (per-position). Value copies do not
//     count: masks are clamped by type (an int result cannot alias),
//     and append's ellipsis form contributes element copies, so
//     Clone-style deep copies stay clean. Returning a pointer to a
//     lock-guarded object (a struct carrying a sync.Mutex/RWMutex,
//     like *resbook.Book itself) is a synchronization boundary, not an
//     alias leak, and is suppressed.
//   - Mutates: the function stores through memory reached from the
//     receiver or a parameter (element stores, field stores, deref
//     stores, copy into it), directly or via a callee's Mutates fact.
//
// In the serving packages, a second taint run marks results of
// ReturnsAlias-via-receiver calls on resbook/profile types with an
// alias bit and reports every write through an alias-tainted base:
// direct stores, ++/--, copy into it, append reuse of its backing
// array, and passing it to a callee whose Mutates fact names that
// position.
package snapshotmut

import (
	"go/ast"
	"go/types"

	"resched/internal/analysis"
)

// CheckedPackages is where writes through snapshot aliases are
// reported. Fact inference runs module-wide.
var CheckedPackages = map[string]bool{
	"resched/internal/server":    true,
	"resched/internal/api":       true,
	"resched/internal/resbook":   true,
	"resched/internal/lifecycle": true,
}

// sharedStatePackages declare the types whose aliased internals count
// as shared scheduling state.
var sharedStatePackages = map[string]bool{
	"resched/internal/resbook": true,
	"resched/internal/profile": true,
}

// Provenance bits: parameters 0..15, then the receiver, then two bits
// used only by the reporting run. aliasBit marks memory obtained from
// a ReturnsAlias accessor on a shared-state type; sharedBit marks
// values of unknown, possibly shared provenance (parameters, struct
// fields, globals). A fresh Clone has neither, so accessors called on
// it do not re-introduce the alias taint.
const (
	maxParams = 16
	recvBit   = analysis.Mask(1) << 16
	aliasBit  = analysis.Mask(1) << 17
	sharedBit = analysis.Mask(1) << 18
)

func paramBit(i int) analysis.Mask {
	if i < 0 || i >= maxParams {
		return 0
	}
	return analysis.Mask(1) << i
}

// ReturnsAlias records that a function's results alias its receiver's
// or parameters' memory.
type ReturnsAlias struct {
	Receiver bool  `json:"receiver,omitempty"`
	Params   []int `json:"params,omitempty"`
}

func (*ReturnsAlias) AFact() {}

// Mutates records that a function writes through its receiver's or
// parameters' memory.
type Mutates struct {
	Receiver bool  `json:"receiver,omitempty"`
	Params   []int `json:"params,omitempty"`
}

func (*Mutates) AFact() {}

func init() {
	analysis.RegisterFact("snapshotmut.ReturnsAlias", (*ReturnsAlias)(nil))
	analysis.RegisterFact("snapshotmut.Mutates", (*Mutates)(nil))
}

// Analyzer flags writes through values aliasing book/profile
// internals in the serving packages.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotmut",
	Doc: "a value aliasing resbook/profile internals is a read-only view: no element or " +
		"field stores, no copy/append into it, no passing it to a mutating callee",
	Run: run,
}

func run(pass *analysis.Pass) error {
	inferFacts(pass)
	if !CheckedPackages[pass.Pkg.Path()] {
		return nil
	}
	decls, _ := analysis.FuncDecls(pass.Files, pass.TypesInfo)
	for _, fd := range decls {
		if pass.InTestFile(fd.Pos()) {
			continue
		}
		checkWrites(pass, fd)
	}
	return nil
}

// sigBits maps a declaration's receiver and parameters to their
// provenance bits.
func sigBits(info *types.Info, fd *ast.FuncDecl) map[*types.Var]analysis.Mask {
	bits := map[*types.Var]analysis.Mask{}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					bits[v] = recvBit
				}
			}
		}
	}
	if fd.Type.Params != nil {
		i := 0
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				i++ // unnamed parameter still occupies a position
				continue
			}
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					bits[v] = paramBit(i)
				}
				i++
			}
		}
	}
	return bits
}

// factCallMask propagates alias provenance through calls using
// already-known ReturnsAlias facts (this package's so far included).
func factCallMask(pass *analysis.Pass, withAlias bool) func(*ast.CallExpr, *analysis.TaintState) analysis.Mask {
	return func(call *ast.CallExpr, st *analysis.TaintState) analysis.Mask {
		fn := analysis.Callee(pass.TypesInfo, call)
		if fn == nil {
			return 0
		}
		var ra ReturnsAlias
		if !pass.ImportObjectFact(fn, &ra) {
			return 0
		}
		var m analysis.Mask
		if ra.Receiver {
			if recv := receiverExpr(call); recv != nil {
				rm := st.ExprMask(recv)
				m |= rm
				// Only a receiver that itself refers to shared memory
				// leaks an alias; an accessor on a fresh clone is fine.
				if withAlias && sharedStateReceiver(fn) && rm&(sharedBit|aliasBit) != 0 {
					m |= aliasBit
				}
			}
		}
		for _, p := range ra.Params {
			if p >= 0 && p < len(call.Args) {
				m |= st.ExprMask(call.Args[p])
			}
		}
		return m
	}
}

// receiverExpr returns the receiver operand of a method call, nil for
// plain function calls.
func receiverExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// sharedStateReceiver reports whether fn is a method on a type from
// the shared scheduling-state packages.
func sharedStateReceiver(fn *types.Func) bool {
	named := analysis.ReceiverNamed(fn)
	return named != nil && named.Obj().Pkg() != nil && sharedStatePackages[named.Obj().Pkg().Path()]
}

// lockGuarded reports whether t (or its pointee) is a struct carrying
// a sync.Mutex/RWMutex field: a pointer to such an object is a
// synchronization boundary, not an alias leak.
func lockGuarded(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if named, ok := types.Unalias(ft).(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
				(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
				return true
			}
		}
	}
	return false
}

// inferFacts runs the provenance analysis over every declared function
// until the package's fact set stops changing (facts feed back into
// callers through factCallMask).
func inferFacts(pass *analysis.Pass) {
	if !analysis.InModule(pass.Pkg.Path()) {
		return
	}
	info := pass.TypesInfo
	decls, _ := analysis.FuncDecls(pass.Files, info)
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ra, mut := inferOne(pass, fd)
			if mergeReturnsAlias(pass, fn, ra) {
				changed = true
			}
			if mergeMutates(pass, fn, mut) {
				changed = true
			}
		}
	}
}

// inferOne computes the alias and mutation bits one declaration
// exhibits with respect to its own signature.
func inferOne(pass *analysis.Pass, fd *ast.FuncDecl) (retBits, mutBits analysis.Mask) {
	info := pass.TypesInfo
	bits := sigBits(info, fd)
	spec := &analysis.TaintSpec{
		Info:     info,
		CallMask: factCallMask(pass, false),
		InitMask: func(v *types.Var) analysis.Mask { return bits[v] },
	}
	cfg := analysis.NewCFG(fd.Body)
	analysis.RunTaint(cfg, spec, func(n ast.Node, st *analysis.TaintState) {
		analysis.WalkBlockNode(n, func(child ast.Node) bool {
			switch c := child.(type) {
			case *ast.ReturnStmt:
				for _, res := range c.Results {
					m := st.ExprMask(res)
					if m&recvBit != 0 && lockGuarded(info.TypeOf(res)) {
						m &^= recvBit
					}
					retBits |= m
				}
			case *ast.AssignStmt:
				for _, lhs := range c.Lhs {
					mutBits |= storeBase(st, lhs)
				}
			case *ast.IncDecStmt:
				mutBits |= storeBase(st, c.X)
			case *ast.CallExpr:
				mutBits |= callMutates(pass, st, c)
			}
			return true
		})
	})
	return retBits &^ (aliasBit | sharedBit), mutBits &^ (aliasBit | sharedBit)
}

// storeBase returns the provenance of the memory a store target
// writes, or 0 when the target is a plain variable binding.
func storeBase(st *analysis.TaintState, lhs ast.Expr) analysis.Mask {
	switch ast.Unparen(lhs).(type) {
	case *ast.IndexExpr, *ast.StarExpr, *ast.SelectorExpr:
		return st.BaseMask(lhs)
	}
	return 0
}

// callMutates returns the provenance bits a call writes through:
// copy(dst, ...) writes dst, and a callee with a Mutates fact writes
// its flagged receiver/parameters.
func callMutates(pass *analysis.Pass, st *analysis.TaintState, call *ast.CallExpr) analysis.Mask {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			if b.Name() == "copy" && len(call.Args) == 2 {
				return st.BaseMask(call.Args[0])
			}
			return 0
		}
	}
	fn := analysis.Callee(info, call)
	if fn == nil {
		return 0
	}
	var mut Mutates
	if !pass.ImportObjectFact(fn, &mut) {
		return 0
	}
	var m analysis.Mask
	if mut.Receiver {
		if recv := receiverExpr(call); recv != nil {
			m |= st.BaseMask(recv)
		}
	}
	for _, p := range mut.Params {
		if p >= 0 && p < len(call.Args) {
			m |= st.BaseMask(call.Args[p])
		}
	}
	return m
}

// mergeReturnsAlias unions bits into fn's exported ReturnsAlias fact,
// reporting whether it changed. A zero fact is never exported.
func mergeReturnsAlias(pass *analysis.Pass, fn *types.Func, bits analysis.Mask) bool {
	var prev ReturnsAlias
	pass.ImportObjectFact(fn, &prev)
	next := prev
	if bits&recvBit != 0 {
		next.Receiver = true
	}
	next.Params = unionParams(prev.Params, bits)
	if next.Receiver == prev.Receiver && len(next.Params) == len(prev.Params) {
		return false
	}
	pass.ExportObjectFact(fn, &next)
	return true
}

func mergeMutates(pass *analysis.Pass, fn *types.Func, bits analysis.Mask) bool {
	var prev Mutates
	pass.ImportObjectFact(fn, &prev)
	next := prev
	if bits&recvBit != 0 {
		next.Receiver = true
	}
	next.Params = unionParams(prev.Params, bits)
	if next.Receiver == prev.Receiver && len(next.Params) == len(prev.Params) {
		return false
	}
	pass.ExportObjectFact(fn, &next)
	return true
}

// unionParams merges the parameter indices already recorded with the
// ones set in bits, sorted ascending.
func unionParams(prev []int, bits analysis.Mask) []int {
	seen := map[int]bool{}
	for _, p := range prev {
		seen[p] = true
	}
	for i := 0; i < maxParams; i++ {
		if bits&paramBit(i) != 0 {
			seen[i] = true
		}
	}
	out := make([]int, 0, len(seen))
	for i := 0; i < maxParams; i++ {
		if seen[i] {
			out = append(out, i)
		}
	}
	return out
}

// checkWrites runs the alias-marking taint over fd and reports writes
// through alias-tainted bases.
func checkWrites(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	spec := &analysis.TaintSpec{
		Info:     info,
		CallMask: factCallMask(pass, true),
		// Anything not locally bound — parameters, receivers, struct
		// fields reached through them, globals — may refer to shared
		// memory; fresh locals (clones, makes, literals) do not.
		InitMask: func(v *types.Var) analysis.Mask { return sharedBit },
	}
	cfg := analysis.NewCFG(fd.Body)
	analysis.RunTaint(cfg, spec, func(n ast.Node, st *analysis.TaintState) {
		analysis.WalkBlockNode(n, func(child ast.Node) bool {
			switch c := child.(type) {
			case *ast.AssignStmt:
				for _, lhs := range c.Lhs {
					if storeBase(st, lhs)&aliasBit != 0 {
						pass.Reportf(lhs.Pos(),
							"write through a value aliasing book/profile internals; the snapshot view is read-only, clone it first")
					}
				}
			case *ast.IncDecStmt:
				if storeBase(st, c.X)&aliasBit != 0 {
					pass.Reportf(c.Pos(),
						"write through a value aliasing book/profile internals; the snapshot view is read-only, clone it first")
				}
			case *ast.CallExpr:
				checkCallWrites(pass, st, c)
			}
			return true
		})
	})
}

// checkCallWrites reports calls that hand an alias-tainted value to
// something that writes it: copy, append reuse, or a Mutates callee.
func checkCallWrites(pass *analysis.Pass, st *analysis.TaintState, call *ast.CallExpr) {
	info := pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "copy":
				if len(call.Args) == 2 && st.BaseMask(call.Args[0])&aliasBit != 0 {
					pass.Reportf(call.Pos(),
						"copy into a value aliasing book/profile internals; the snapshot view is read-only")
				}
			case "append":
				if len(call.Args) > 1 && st.ExprMask(call.Args[0])&aliasBit != 0 {
					pass.Reportf(call.Pos(),
						"append may write into the aliased backing array of a book/profile view; clone it first")
				}
			}
			return
		}
	}
	fn := analysis.Callee(info, call)
	if fn == nil {
		return
	}
	var mut Mutates
	if !pass.ImportObjectFact(fn, &mut) {
		return
	}
	if mut.Receiver {
		if recv := receiverExpr(call); recv != nil && st.BaseMask(recv)&aliasBit != 0 {
			pass.Reportf(call.Pos(),
				"%s mutates its receiver, which aliases book/profile internals here", fn.Name())
		}
	}
	for _, p := range mut.Params {
		if p >= 0 && p < len(call.Args) && st.ExprMask(call.Args[p])&aliasBit != 0 {
			pass.Reportf(call.Pos(),
				"%s mutates argument %d, which aliases book/profile internals here", fn.Name(), p)
		}
	}
}
