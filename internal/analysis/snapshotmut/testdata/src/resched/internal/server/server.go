package server

import "resched/internal/profile"

// Positive: element store through the aliased break array.
func zeroFirst(p *profile.Profile) {
	ts := p.Times()
	ts[0] = 0 // want "write through a value aliasing book/profile internals"
}

// Positive: increment is a store too.
func bumpFirst(p *profile.Profile) {
	ts := p.Times()
	ts[0]++ // want "write through a value aliasing book/profile internals"
}

// Positive: copy overwrites the aliased memory wholesale.
func overwrite(p *profile.Profile, src []int) {
	copy(p.Times(), src) // want "copy into a value aliasing book/profile internals"
}

// Positive: append may write into the alias's backing array.
func extend(p *profile.Profile) []int {
	return append(p.Times(), 99) // want "append may write into the aliased backing array"
}

// Positive: handing the alias to a same-package mutating helper; the
// Mutates fact for halve is inferred in this very package.
func scale(p *profile.Profile) {
	halve(p.Times()) // want "halve mutates argument 0, which aliases book/profile internals"
}

func halve(xs []int) {
	for i := range xs {
		xs[i] /= 2
	}
}

// Positive: a mutating method invoked on an aliased profile obtained
// through the registry; both facts cross the package boundary.
func reserveThrough(reg *profile.Registry) {
	reg.Inner().Reserve(2) // want "Reserve mutates its receiver, which aliases book/profile internals"
}

// Negative: an accessor on a fresh clone aliases private memory.
func zeroFirstClone(p *profile.Profile) {
	ts := p.Clone().Times()
	ts[0] = 0
}

// Negative: Segments builds fresh values, so writing them is fine.
func zeroSegments(p *profile.Profile) {
	segs := p.Segments()
	segs[0].Free = 0
}

// Negative: the ellipsis append detaches element copies, after which
// the rebound slice is private.
func detach(p *profile.Profile) []int {
	ts := p.Times()
	ts = append([]int(nil), ts...)
	ts[0] = 0
	return ts
}

// Negative: reading through the alias is the whole point of handing
// out a view.
func sum(p *profile.Profile) int {
	total := 0
	for _, t := range p.Times() {
		total += t
	}
	return total
}

// Negative: CloneInto writes its argument, but the argument is a
// private scratch profile, not the alias.
func refresh(p *profile.Profile, scratch *profile.Profile) {
	p.CloneInto(scratch)
}

// Negative: Self is lock-guarded, so Bump's receiver is not treated as
// an alias leak.
func bumpRegistry(reg *profile.Registry) {
	reg.Self().Bump()
}

// Negative: suppressed with a directive.
func zeroIgnored(p *profile.Profile) {
	ts := p.Times()
	ts[0] = 0 //reschedvet:ignore snapshotmut scratch reuse is deliberate here
}
