// Package profile is a fixture mirror of the availability profile: a
// shared-state type whose accessors must yield ReturnsAlias/Mutates
// facts for the server fixture to consume. No diagnostics are expected
// here; the package exists to be imported.
package profile

import "sync"

type Segment struct {
	Start, End int
	Free       int
}

type Profile struct {
	times []int
	free  []int
}

// Times returns the internal break array directly: the aliasing
// accessor this analyzer exists for. Fact: ReturnsAlias{Receiver}.
func (p *Profile) Times() []int { return p.times }

// Segments builds fresh values on every call: no fact.
func (p *Profile) Segments() []Segment {
	out := make([]Segment, len(p.times))
	for i := range p.times {
		out[i] = Segment{Start: p.times[i], Free: p.free[i]}
	}
	return out
}

// Clone deep-copies via the ellipsis-append idiom; the element copies
// carry no references, so no fact.
func (p *Profile) Clone() *Profile {
	return &Profile{
		times: append([]int(nil), p.times...),
		free:  append([]int(nil), p.free...),
	}
}

// CloneInto overwrites dst, reusing its arrays. Fact: Mutates{Params: [0]}.
func (p *Profile) CloneInto(dst *Profile) {
	dst.times = append(dst.times[:0], p.times...)
	dst.free = append(dst.free[:0], p.free...)
}

// Reserve writes the receiver's arrays. Fact: Mutates{Receiver}.
func (p *Profile) Reserve(procs int) {
	for i := range p.free {
		p.free[i] -= procs
	}
}

// Registry pairs a profile with the lock that guards it.
type Registry struct {
	mu   sync.Mutex
	prof Profile
}

// Self returns a pointer to a lock-guarded object: a synchronization
// boundary, not an alias leak, so ReturnsAlias is suppressed.
func (r *Registry) Self() *Registry { return r }

// Inner leaks the guarded profile itself: ReturnsAlias{Receiver}.
func (r *Registry) Inner() *Profile { return &r.prof }

// Bump mutates through the guarded profile. Fact: Mutates{Receiver}.
func (r *Registry) Bump() {
	r.mu.Lock()
	r.prof.Reserve(1)
	r.mu.Unlock()
}
