package snapshotmut_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/snapshotmut"
)

func TestSnapshotMut(t *testing.T) {
	// The profile fixture is pulled in through the server fixture's
	// import and analyzed facts-only; diagnostics are expected (and
	// checked) only in the server package.
	analysistest.Run(t, "testdata", snapshotmut.Analyzer, "resched/internal/server")
}
