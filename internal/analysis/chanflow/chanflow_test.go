package chanflow_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/chanflow"
)

func TestChanFlow(t *testing.T) {
	// resbook first so its closes-contract facts are visible when the
	// server fixture (its importer) is judged; lifecycle and coalesce
	// are independent.
	analysistest.Run(t, "testdata", chanflow.Analyzer,
		"resched/internal/resbook",
		"resched/internal/server",
		"resched/internal/lifecycle",
		"resched/internal/coalesce")
}
