// Package coalesce is the leader/waiter handoff fixture: the leader
// settles a flight by closing its broadcast channel exactly once, and
// each waiter holds a buffered per-waiter channel plus a context
// cancel path. The double-settle and send-after-settle bugs are the
// positives; the per-waiter paths are the negatives the real coalescer
// must keep.
package coalesce

import "context"

type result struct {
	v   int
	err error
}

// flight is one coalesced computation; done broadcasts settlement.
type flight struct {
	done chan struct{}
	res  result
}

// finish publishes the result and releases every waiter.
func (f *flight) finish(r result) {
	f.res = r
	close(f.done)
}

// finishTwice is the double-settle bug: finish already closed done.
func (f *flight) finishTwice(r result) {
	f.finish(r)
	close(f.done) // want "double close of coalesce.flight.done \\(closed by finish\\)"
}

// signalAfterFinish sends on the broadcast channel after settlement
// may have closed it.
func (f *flight) signalAfterFinish(r result) {
	f.finish(r)
	f.done <- struct{}{} // want "send on possibly-closed channel coalesce.flight.done"
}

// await is the per-waiter path: broadcast or the waiter's own context
// cancel, whichever first (negative — an abandoning waiter is fine).
func await(ctx context.Context, f *flight) (result, bool) {
	select {
	case <-f.done:
		return f.res, true
	case <-ctx.Done():
		return result{}, false
	}
}

// group delivers per-waiter results on owned buffered channels.
type group struct {
	waiters []chan result
}

// deliver sends exactly once per waiter and closes each channel; the
// range variable rebinds every iteration, so the close of one waiter's
// channel does not taint the next send (negative).
func (g *group) deliver(r result) {
	for _, ch := range g.waiters {
		ch <- r
		close(ch)
	}
}

// join registers a buffered per-waiter channel; it escapes into the
// registry, so the orphan check stays away (negative).
func (g *group) join() chan result {
	ch := make(chan result, 1)
	g.waiters = append(g.waiters, ch)
	return ch
}
