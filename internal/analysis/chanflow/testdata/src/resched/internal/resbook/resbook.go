// Package resbook is the fixture for chanflow's cross-package close
// facts: a feed whose close hides behind a stored teardown hook, so
// the //reschedvet:closes directive is the only way importers learn
// Stop closes Updates.
package resbook

type Feed struct {
	Updates  chan int
	teardown func()
}

func NewFeed() *Feed {
	f := &Feed{Updates: make(chan int, 8)}
	f.teardown = func() { close(f.Updates) }
	return f
}

// Stop runs the constructor's teardown hook, which closes Updates —
// invisible to direct inference, hence the contract.
//
//reschedvet:closes Feed.Updates
func (f *Feed) Stop() {
	f.teardown()
}

// Restart closes and remakes the stream: the fresh make rebinds the
// field, so the following send is clean (negative).
func (f *Feed) Restart() {
	close(f.Updates)
	f.Updates = make(chan int, 8)
	f.Updates <- 0
}

// Hygiene: a closes contract must name a real channel field.
//
//reschedvet:closes Feed.missing
func (f *Feed) Bad() {} // want "closes directive on Bad names no channel Feed.missing"
