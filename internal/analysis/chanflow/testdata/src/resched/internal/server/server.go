// Package server exercises chanflow across the package boundary (the
// feed's closes contract) and the worker-pool param-fact composition.
package server

import "resched/internal/resbook"

// stopTwice closes the feed through its contract and then again
// directly: the cross-package double close.
func stopTwice(f *resbook.Feed) {
	f.Stop()
	close(f.Updates) // want "double close of resbook.Feed.Updates \\(closed by Stop\\)"
}

// sendAfterStop publishes into a stream the contract already closed.
func sendAfterStop(f *resbook.Feed) {
	f.Stop()
	f.Updates <- 1 // want "send on possibly-closed channel resbook.Feed.Updates"
}

// drain is the pool worker: its MayRecv fact covers parameter #0.
func drain(jobs chan int) {
	for j := range jobs {
		_ = j
	}
}

// pump hands its private channel to a launched drain; the param fact
// supplies the receiver (negative).
func pump() {
	jobs := make(chan int)
	go drain(jobs)
	jobs <- 7
	jobs <- 9
	close(jobs)
}

// lonely's send has no receiver anywhere: the orphan positive,
// anchored at the make site.
func lonely() {
	sink := make(chan string) // want "send on sink has no receiver in this goroutine topology"
	sink <- "x"
}

// doubleLocal closes the same local channel twice on one path.
func doubleLocal() {
	done := make(chan struct{})
	close(done)
	close(done) // want "double close of done \\(closed earlier in this function\\)"
}

// branchClose closes on two exclusive paths: the flow analysis keeps
// them apart (negative).
func branchClose(ok bool) {
	done := make(chan struct{})
	if ok {
		close(done)
		return
	}
	close(done)
}
