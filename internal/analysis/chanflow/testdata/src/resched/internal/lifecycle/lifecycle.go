// Package lifecycle mirrors the event-loop shapes: the select-driven
// engine loop (with a dead branch on a never-armed channel), the
// nil-to-disable idiom that must stay clean, and the
// goroutine-sends-launcher-receives handoff.
package lifecycle

import "context"

type Engine struct {
	events chan int
	stop   chan struct{}
}

// loop declares idle and never arms it: the branch is on a nil channel
// forever and never fires.
func (e *Engine) loop() {
	var idle chan int
	for {
		select {
		case v := <-e.events:
			_ = v
		case <-idle: // want "select case on nil channel idle never fires"
			return
		case <-e.stop:
			return
		}
	}
}

// armedTimeout assigns the channel on one path — the deliberate
// nil-disables-the-case idiom stays unflagged (negative).
func (e *Engine) armedTimeout(enable bool) {
	var timeout chan int
	if enable {
		timeout = make(chan int, 1)
	}
	select {
	case <-timeout:
	case <-e.stop:
	}
}

// handoff: the launched goroutine sends, the launcher receives
// (negative for the orphan check).
func handoff() int {
	out := make(chan int)
	go func() { out <- 42 }()
	return <-out
}

// wait selects on a context Done call — not a tracked channel variable,
// so nothing to say (negative).
func wait(ctx context.Context, e *Engine) {
	select {
	case <-e.stop:
	case <-ctx.Done():
	}
}
