// Package chanflow tracks channel endpoints through the module and
// reports the lifecycle bugs vet cannot see: sends on channels that may
// already be closed, double closes, sends with no receiver anywhere in
// the goroutine topology, and select branches that can never fire.
//
// # Endpoint facts
//
// Per function, every make/send/recv/close/range/select endpoint is
// classified against a stable channel identity:
//
//   - analysis.VarKey for channel fields of package-scope structs and
//     package-level channel variables ("pkg/path.Type.field");
//   - "#i" for the function's own i-th parameter, so behavior on a
//     channel handed in from outside composes back through call sites;
//   - locals have no cross-function identity and are judged in place.
//
// The per-function send/recv/close sets close transitively over static
// calls (goroutine launches included — a send in a launched body is
// still part of the function's topology) and are exported as MaySend,
// MayRecv, and MayClose facts, with "#j" entries mapped through the
// call site's j-th argument. A //reschedvet:closes directive adds a
// close the body hides behind indirection (a stored teardown hook, an
// interface call); a directive naming no channel field is reported as
// stale.
//
// # Checks
//
// In the checked packages (the serving tree: resbook, server,
// lifecycle, coalesce, multicluster), three checks run per function:
//
//   - a forward may-closed dataflow over the PR 4 CFG (union at joins,
//     defer and go bodies excluded from sequential flow) flags close
//     and send on an identity already in the closed set — locally or
//     via a callee's MayClose fact ("closed by <fn>"). Assigning a
//     channel variable resets its state (a fresh make is a new
//     channel).
//   - a local channel made unbuffered whose every use the analyzer can
//     classify (send, recv, close, range, select comm, or an argument
//     position a callee fact covers) and that has sends but no receiver
//     anywhere — including launched goroutine bodies and callee "#j"
//     receives — is an orphan: every send blocks forever. Any
//     unclassified use counts as an escape and disqualifies the
//     channel.
//   - a select comm on a channel variable that is declared `var ch
//     chan T` and never assigned or address-taken is a branch on a
//     forever-nil channel: it never fires. (Deliberately nilling an
//     armed channel to disable a case assigns it, so the idiom stays
//     clean.)
package chanflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"resched/internal/analysis"
)

// CheckedPackages are where the channel-lifecycle checks run. Fact
// inference runs module-wide regardless.
var CheckedPackages = map[string]bool{
	"resched/internal/resbook":      true,
	"resched/internal/server":       true,
	"resched/internal/lifecycle":    true,
	"resched/internal/coalesce":     true,
	"resched/internal/multicluster": true,
}

// MayClose lists the channel identities a function may close, directly
// or through static calls: VarKeys and "#i" parameter positions.
type MayClose struct {
	Chans []string
}

func (*MayClose) AFact() {}

// MaySend lists the channel identities a function may send on.
type MaySend struct {
	Chans []string
}

func (*MaySend) AFact() {}

// MayRecv lists the channel identities a function may receive from
// (including range loops and select comms).
type MayRecv struct {
	Chans []string
}

func (*MayRecv) AFact() {}

func init() {
	analysis.RegisterFact("chanflow.MayClose", (*MayClose)(nil))
	analysis.RegisterFact("chanflow.MaySend", (*MaySend)(nil))
	analysis.RegisterFact("chanflow.MayRecv", (*MayRecv)(nil))
}

// Analyzer reports channel-lifecycle hazards in the serving tree.
var Analyzer = &analysis.Analyzer{
	Name: "chanflow",
	Doc: "channels in serving code follow a sane lifecycle: no send on a possibly-closed channel, " +
		"no double close (MayClose facts compose closes across packages), no send without a " +
		"receiver in the goroutine topology, no select case on a channel that is nil forever; " +
		"//reschedvet:closes declares a close hidden behind indirection",
	Run: run,
}

// useSet is one function's channel endpoint behavior, keyed by VarKey
// or "#i" parameter position.
type useSet struct {
	send, recv, closes map[string]bool
}

func newUseSet() *useSet {
	return &useSet{send: map[string]bool{}, recv: map[string]bool{}, closes: map[string]bool{}}
}

type runner struct {
	pass   *analysis.Pass
	info   *types.Info
	decls  []*ast.FuncDecl
	byName map[*ast.FuncDecl]*types.Func
	use    map[*types.Func]*useSet
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	decls, _ := analysis.FuncDecls(pass.Files, info)
	r := &runner{
		pass:   pass,
		info:   info,
		decls:  decls,
		byName: map[*ast.FuncDecl]*types.Func{},
		use:    map[*types.Func]*useSet{},
	}
	for _, fd := range decls {
		if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
			r.byName[fd] = fn
		}
	}
	r.inferUse()
	if !CheckedPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, fd := range r.decls {
		fn := r.byName[fd]
		if fn == nil || pass.InTestFile(fd.Pos()) {
			continue
		}
		r.checkClosedFlow(fd, fn)
		r.checkOrphanChannels(fd)
		r.checkNilSelect(fd)
	}
	return nil
}

// factKey renders a channel expression's cross-function identity:
// VarKey for fields and package-level vars, "#i" for fn's parameters,
// "" for everything else.
func (r *runner) factKey(fn *types.Func, e ast.Expr) string {
	v := analysis.ChanVar(r.info, e)
	if v == nil {
		return ""
	}
	return r.varFactKey(fn, v)
}

func (r *runner) varFactKey(fn *types.Func, v *types.Var) string {
	if k := analysis.VarKey(v); k != "" {
		return k
	}
	if i := paramIndex(fn, v); i >= 0 {
		return "#" + strconv.Itoa(i)
	}
	return ""
}

func paramIndex(fn *types.Func, v *types.Var) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == v {
			return i
		}
	}
	return -1
}

// inferUse computes every declared function's endpoint sets — a direct
// layer over the full body (goroutine and deferred bodies included: may
// semantics), the closes directive, then a transitive fixpoint mapping
// callee entries through call-site arguments — and exports the facts.
func (r *runner) inferUse() {
	for _, fd := range r.decls {
		fn := r.byName[fd]
		if fn == nil {
			continue
		}
		u := newUseSet()
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SendStmt:
				if k := r.factKey(fn, n.Chan); k != "" {
					u.send[k] = true
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if k := r.factKey(fn, n.X); k != "" {
						u.recv[k] = true
					}
				}
			case *ast.RangeStmt:
				if k := r.factKey(fn, n.X); k != "" {
					u.recv[k] = true
				}
			case *ast.CallExpr:
				if arg, ok := closeArg(r.info, n); ok {
					if k := r.factKey(fn, arg); k != "" {
						u.closes[k] = true
					}
				}
			}
			return true
		})
		if args, ok := analysis.DirectiveArgs(fd.Doc, analysis.ClosesDirective); ok {
			for _, spec := range strings.Fields(args) {
				v := analysis.ResolveChanSpec(r.pass.Pkg, fn, spec)
				if v == nil {
					r.pass.Reportf(fd.Pos(), "closes directive on %s names no channel %s", fd.Name.Name, spec)
					continue
				}
				if k := analysis.VarKey(v); k != "" {
					u.closes[k] = true
				}
			}
		}
		r.use[fn] = u
	}

	for changed := true; changed; {
		changed = false
		for _, fd := range r.decls {
			fn := r.byName[fd]
			if fn == nil {
				continue
			}
			u := r.use[fn]
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := analysis.Callee(r.info, call)
				if callee == nil || callee == fn {
					return true
				}
				cu := r.useOf(callee)
				for _, m := range []struct{ from, into map[string]bool }{
					{cu.send, u.send}, {cu.recv, u.recv}, {cu.closes, u.closes},
				} {
					for k := range m.from {
						mapped := r.mapCalleeKey(fn, call, k)
						if mapped != "" && !m.into[mapped] {
							m.into[mapped] = true
							changed = true
						}
					}
				}
				return true
			})
		}
	}

	if !analysis.InModule(r.pass.Pkg.Path()) {
		return
	}
	for _, fd := range r.decls {
		fn := r.byName[fd]
		if fn == nil {
			continue
		}
		u := r.use[fn]
		if len(u.closes) > 0 {
			r.pass.ExportObjectFact(fn, &MayClose{Chans: sortedSet(u.closes)})
		}
		if len(u.send) > 0 {
			r.pass.ExportObjectFact(fn, &MaySend{Chans: sortedSet(u.send)})
		}
		if len(u.recv) > 0 {
			r.pass.ExportObjectFact(fn, &MayRecv{Chans: sortedSet(u.recv)})
		}
	}
}

// useOf returns a callee's endpoint sets: local inference if declared
// here, otherwise its imported facts (cached; empty when it has none).
func (r *runner) useOf(fn *types.Func) *useSet {
	if u, ok := r.use[fn]; ok {
		return u
	}
	u := newUseSet()
	var mc MayClose
	if r.pass.ImportObjectFact(fn, &mc) {
		for _, k := range mc.Chans {
			u.closes[k] = true
		}
	}
	var ms MaySend
	if r.pass.ImportObjectFact(fn, &ms) {
		for _, k := range ms.Chans {
			u.send[k] = true
		}
	}
	var mr MayRecv
	if r.pass.ImportObjectFact(fn, &mr) {
		for _, k := range mr.Chans {
			u.recv[k] = true
		}
	}
	r.use[fn] = u
	return u
}

// mapCalleeKey translates one callee endpoint identity into the
// caller's: VarKeys pass through, "#j" maps through the call's j-th
// argument (empty when the argument has no identity of its own).
func (r *runner) mapCalleeKey(fn *types.Func, call *ast.CallExpr, k string) string {
	if !strings.HasPrefix(k, "#") {
		return k
	}
	j, err := strconv.Atoi(k[1:])
	if err != nil || j < 0 || j >= len(call.Args) {
		return ""
	}
	return r.factKey(fn, call.Args[j])
}

// flowKey is a channel expression's in-function identity for the
// may-closed dataflow: the VarKey when it has one, else a per-variable
// local key. The second result is the display name.
func (r *runner) flowKey(e ast.Expr) (string, string) {
	v := analysis.ChanVar(r.info, e)
	if v == nil {
		return "", ""
	}
	return r.varFlowKey(v)
}

func (r *runner) varFlowKey(v *types.Var) (string, string) {
	if k := analysis.VarKey(v); k != "" {
		return k, analysis.ShortKey(k)
	}
	return "local@" + strconv.Itoa(int(v.Pos())), v.Name()
}

// mapCalleeFlowKey is mapCalleeKey against flow identities, so a
// callee's "#j" close lands on the caller's local channel too.
func (r *runner) mapCalleeFlowKey(call *ast.CallExpr, k string) (string, string) {
	if !strings.HasPrefix(k, "#") {
		return k, analysis.ShortKey(k)
	}
	j, err := strconv.Atoi(k[1:])
	if err != nil || j < 0 || j >= len(call.Args) {
		return "", ""
	}
	return r.flowKey(call.Args[j])
}

// checkClosedFlow runs the forward may-closed analysis over one
// function and reports double closes and sends on possibly-closed
// channels. The state maps closed identity -> closer name ("" = closed
// in this function); joins union, preferring the smaller closer name
// for determinism.
func (r *runner) checkClosedFlow(fd *ast.FuncDecl, fn *types.Func) {
	cfg := analysis.NewCFG(fd.Body)
	n := len(cfg.Blocks)
	if n == 0 {
		return
	}
	closedIn := make([]map[string]string, n)
	closedIn[0] = map[string]string{}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			if closedIn[b.Index] == nil {
				continue
			}
			out := cloneClosed(closedIn[b.Index])
			for _, node := range b.Nodes {
				r.closedTransfer(fn, node, out, false)
			}
			for _, succ := range b.Succs {
				in := closedIn[succ.Index]
				if in == nil {
					closedIn[succ.Index] = cloneClosed(out)
					changed = true
					continue
				}
				for k, by := range out {
					if old, ok := in[k]; !ok || by < old {
						in[k] = by
						changed = true
					}
				}
			}
		}
	}
	for _, b := range cfg.Blocks {
		closed := cloneClosed(closedIn[b.Index])
		for _, node := range b.Nodes {
			r.closedTransfer(fn, node, closed, true)
		}
	}
}

// closedTransfer folds one block node into the closed set; with report
// set it also emits the diagnostics (the reporting pass reuses the
// transfer so state and checks cannot drift apart).
func (r *runner) closedTransfer(fn *types.Func, node ast.Node, closed map[string]string, report bool) {
	analysis.WalkBlockNode(node, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			// Deferred and launched bodies do not run at this point in
			// the sequential flow.
			return false
		case *ast.AssignStmt:
			// Assigning a channel variable rebinds it; whatever was
			// closed is no longer what it names.
			for _, l := range nd.Lhs {
				if v := analysis.ChanVar(r.info, l); v != nil {
					k, _ := r.varFlowKey(v)
					delete(closed, k)
				}
			}
			return true
		case *ast.RangeStmt:
			// The range variables rebind every iteration.
			for _, e := range []ast.Expr{nd.Key, nd.Value} {
				if e == nil {
					continue
				}
				id, ok := ast.Unparen(e).(*ast.Ident)
				if !ok {
					continue
				}
				v, _ := r.info.Defs[id].(*types.Var)
				if v == nil {
					v, _ = r.info.Uses[id].(*types.Var)
				}
				if v != nil && analysis.IsChanType(v.Type()) {
					k, _ := r.varFlowKey(v)
					delete(closed, k)
				}
			}
			return true
		case *ast.SendStmt:
			if k, name := r.flowKey(nd.Chan); k != "" {
				if _, ok := closed[k]; ok && report {
					r.pass.Reportf(nd.Pos(), "send on possibly-closed channel %s", name)
				}
			}
			return true
		case *ast.CallExpr:
			if arg, ok := closeArg(r.info, nd); ok {
				if k, name := r.flowKey(arg); k != "" {
					if by, ok := closed[k]; ok && report {
						if by == "" {
							r.pass.Reportf(nd.Pos(), "double close of %s (closed earlier in this function)", name)
						} else {
							r.pass.Reportf(nd.Pos(), "double close of %s (closed by %s)", name, by)
						}
					}
					closed[k] = ""
				}
				return true
			}
			callee := analysis.Callee(r.info, nd)
			if callee == nil || callee == fn {
				return true
			}
			cu := r.useOf(callee)
			for _, k := range sortedSet(cu.closes) {
				mapped, _ := r.mapCalleeFlowKey(nd, k)
				if mapped == "" {
					continue
				}
				if _, ok := closed[mapped]; !ok {
					closed[mapped] = callee.Name()
				}
			}
			return true
		}
		return true
	})
}

// checkOrphanChannels finds local unbuffered channels whose every use
// is classifiable and that have sends but no receiver anywhere in the
// goroutine topology: every send on them blocks forever.
func (r *runner) checkOrphanChannels(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := r.info.Defs[id].(*types.Var)
			if !ok || !isUnbufferedMakeChan(r.info, as.Rhs[i]) {
				continue
			}
			r.checkOrphan(fd, v, id.Pos())
		}
		return true
	})
}

func (r *runner) checkOrphan(fd *ast.FuncDecl, v *types.Var, pos token.Pos) {
	total := 0
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && r.info.Uses[id] == v {
			total++
		}
		return true
	})
	isV := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && r.info.Uses[id] == v
	}
	accounted, sends, recvs := 0, 0, 0
	escaped := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if isV(n.Chan) {
				accounted++
				sends++
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && isV(n.X) {
				accounted++
				recvs++
			}
		case *ast.RangeStmt:
			if isV(n.X) {
				accounted++
				recvs++
			}
		case *ast.CallExpr:
			if arg, ok := closeArg(r.info, n); ok && isV(arg) {
				accounted++
				break
			}
			callee := analysis.Callee(r.info, n)
			for j, a := range n.Args {
				if !isV(a) {
					continue
				}
				if callee == nil {
					escaped = true
					continue
				}
				cu := r.useOf(callee)
				pk := "#" + strconv.Itoa(j)
				if !cu.send[pk] && !cu.recv[pk] && !cu.closes[pk] {
					// The callee does something with the channel the
					// facts do not describe (stores it, ignores it):
					// treat as escaped.
					escaped = true
					continue
				}
				accounted++
				if cu.send[pk] {
					sends++
				}
				if cu.recv[pk] {
					recvs++
				}
			}
		}
		return !escaped
	})
	if escaped || accounted < total {
		return
	}
	if sends > 0 && recvs == 0 {
		r.pass.Reportf(pos, "send on %s has no receiver in this goroutine topology", v.Name())
	}
}

// checkNilSelect reports select comms on channel variables that are
// declared without an initializer and never assigned: the channel is
// nil on every execution and the branch never fires.
func (r *runner) checkNilSelect(fd *ast.FuncDecl) {
	nilDecl := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		spec, ok := n.(*ast.ValueSpec)
		if !ok || len(spec.Values) != 0 {
			return true
		}
		for _, id := range spec.Names {
			if v, ok := r.info.Defs[id].(*types.Var); ok && analysis.IsChanType(v.Type()) {
				nilDecl[v] = true
			}
		}
		return true
	})
	if len(nilDecl) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					if v, ok := r.info.Uses[id].(*types.Var); ok {
						delete(nilDecl, v)
					}
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v, ok := r.info.Uses[id].(*types.Var); ok {
						delete(nilDecl, v)
					}
				}
			}
		}
		return true
	})
	if len(nilDecl) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cl := range sel.Body.List {
			comm := cl.(*ast.CommClause).Comm
			if comm == nil {
				continue
			}
			var ch ast.Expr
			switch c := comm.(type) {
			case *ast.SendStmt:
				ch = c.Chan
			case *ast.ExprStmt:
				if u, ok := ast.Unparen(c.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					ch = u.X
				}
			case *ast.AssignStmt:
				if len(c.Rhs) == 1 {
					if u, ok := ast.Unparen(c.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						ch = u.X
					}
				}
			}
			if ch == nil {
				continue
			}
			if v := analysis.ChanVar(r.info, ch); v != nil && nilDecl[v] {
				r.pass.Reportf(comm.Pos(), "select case on nil channel %s never fires", v.Name())
			}
		}
		return true
	})
}

// closeArg matches the close builtin and returns its operand.
func closeArg(info *types.Info, call *ast.CallExpr) (ast.Expr, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return nil, false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	if !ok || b.Name() != "close" || len(call.Args) != 1 {
		return nil, false
	}
	return call.Args[0], true
}

// isUnbufferedMakeChan matches `make(chan T)` — no capacity argument.
func isUnbufferedMakeChan(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	if !ok || b.Name() != "make" || len(call.Args) != 1 {
		return false
	}
	return analysis.IsChanType(info.TypeOf(e))
}

func cloneClosed(s map[string]string) map[string]string {
	c := make(map[string]string, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

func sortedSet(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
