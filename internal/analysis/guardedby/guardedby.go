// Package guardedby enforces field-level locking discipline in the
// serving tree: a struct field annotated
//
//	mu    sync.Mutex
//	state map[string]int //reschedvet:guardedby mu
//
// may only be read or written inside a critical section of its
// designated mutex. The check is a forward must-held lockset analysis
// over the PR 4 CFG — the dual of lockhold's may-held pass: where
// lockhold asks "could a lock be held here" to flag blocking calls,
// guardedby asks "is the lock certainly held on every path" to admit
// an access. A write additionally requires the write lock: touching a
// guarded field under RLock only is reported, which is exactly the
// read-mostly race the race detector needs a lucky interleaving to
// see.
//
// Guarded fields export a GuardedBy object fact, so accesses from
// importing packages to an annotated (exported) field are checked in
// import order with no extra annotation at the use site.
//
// # Helper contracts
//
// The serving code factors critical sections through helpers —
// *Locked methods that assume the caller holds the lock, and
// lock-span wrappers like the sharded book's lockShards/unlockShards
// that acquire several shard locks behind one call. Three function
// directives make those contracts checkable instead of invisible:
//
//	//reschedvet:holds mu          the caller must hold mu (seeds the
//	                               entry lockset; every call site is
//	                               checked for it)
//	//reschedvet:acquires T.mu     calling this function acquires mu
//	//reschedvet:releases T.mu     calling this function releases mu
//
// A mutex is named by its field name, resolved against the receiver's
// struct, or by Type.field against a struct type in the function's
// package — the form lock wrappers need when the mutex lives in an
// element type (bookShard.mu) rather than the receiver. Contracts
// export a LockContract fact so cross-package call sites see them.
//
// # Freshness
//
// Constructors initialize guarded fields before the value is shared,
// where locking would be noise. Accesses whose base is a provably
// fresh local — allocated by this function and never overwritten from
// elsewhere (see analysis.FreshLocals) — are exempt.
//
// Accesses inside function literals are not checked: a closure body
// runs on its own activation, possibly on another goroutine, and the
// CFG does not enter it (the same soundness trade lockhold makes).
package guardedby

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"resched/internal/analysis"
)

const guardDirective = "//reschedvet:guardedby"

// GuardedBy is the object fact on a struct field: accesses require
// the named sibling mutex.
type GuardedBy struct {
	Mutex string
}

func (*GuardedBy) AFact() {}

// LockContract is the object fact on a function carrying holds /
// acquires / releases directives. Mutex names are as written in the
// directive (field, or Type.field in the function's package).
type LockContract struct {
	Holds    []string `json:",omitempty"`
	Acquires []string `json:",omitempty"`
	Releases []string `json:",omitempty"`
}

func (*LockContract) AFact() {}

func init() {
	analysis.RegisterFact("guardedby.GuardedBy", (*GuardedBy)(nil))
	analysis.RegisterFact("guardedby.LockContract", (*LockContract)(nil))
}

// Analyzer flags accesses to annotated fields outside a critical
// section of their designated mutex.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "a field annotated //reschedvet:guardedby <mu> is only read or written while <mu> is " +
		"held on every path (writes need the write lock); //reschedvet:holds, :acquires and " +
		":releases declare helper contracts, checked at every call site",
	Run: run,
}

// lockMode distinguishes how strongly a mutex is held on all paths.
type lockMode int

const (
	modeRead  lockMode = iota + 1 // at least RLock everywhere
	modeWrite                     // write lock everywhere
)

// lockset is the must-held state: mutexes held on every path to the
// current point, with the weakest mode seen.
type lockset map[*types.Var]lockMode

func (s lockset) clone() lockset {
	c := make(lockset, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// meet intersects other into s (must-held join) and reports change.
func (s lockset) meet(other lockset) bool {
	changed := false
	for k, m := range s {
		om, ok := other[k]
		if !ok {
			delete(s, k)
			changed = true
			continue
		}
		if om < m {
			s[k] = om
			changed = true
		}
	}
	return changed
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	contracts := collectContracts(pass)
	decls, _ := analysis.FuncDecls(pass.Files, pass.TypesInfo)
	for _, fd := range decls {
		if pass.InTestFile(fd.Pos()) || fd.Body == nil {
			continue
		}
		c := checker{pass: pass, guards: guards, contracts: contracts}
		c.checkFunc(fd)
	}
	return nil
}

// collectGuards gathers this package's guardedby field directives,
// validates them against the declaring struct, and exports the facts.
// The returned map covers intra-package accesses before export order
// matters.
func collectGuards(pass *analysis.Pass) map[*types.Var]string {
	guards := map[*types.Var]string{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu, ok := analysis.FieldDirectiveArgs(field, guardDirective)
				if !ok {
					continue
				}
				if mu == "" || strings.ContainsAny(mu, " \t.") {
					pass.Reportf(field.Pos(), "guardedby directive needs a single sibling mutex field name")
					continue
				}
				muVar := structField(pass.TypesInfo, st, mu)
				switch {
				case muVar == nil:
					pass.Reportf(field.Pos(), "guardedby names %s, which is not a field of this struct", mu)
					continue
				case !analysis.IsMutexType(muVar.Type()):
					pass.Reportf(field.Pos(), "guardedby names %s, which is not a sync.Mutex or sync.RWMutex", mu)
					continue
				}
				for _, name := range field.Names {
					v, _ := pass.TypesInfo.Defs[name].(*types.Var)
					if v == nil {
						continue
					}
					if analysis.IsMutexType(v.Type()) {
						pass.Reportf(field.Pos(), "guardedby on a mutex field guards nothing")
						continue
					}
					guards[v] = mu
					if analysis.InModule(pass.Pkg.Path()) {
						pass.ExportObjectFact(v, &GuardedBy{Mutex: mu})
					}
				}
			}
			return true
		})
	}
	return guards
}

// collectContracts gathers holds/acquires/releases directives on this
// package's function declarations, validates that every named mutex
// resolves, and exports the facts.
func collectContracts(pass *analysis.Pass) map[*types.Func]*LockContract {
	contracts := map[*types.Func]*LockContract{}
	decls, _ := analysis.FuncDecls(pass.Files, pass.TypesInfo)
	for _, fd := range decls {
		if pass.InTestFile(fd.Pos()) {
			continue
		}
		spec, any := analysis.ParseLockContract(fd.Doc)
		for _, d := range []struct {
			directive string
			names     []string
		}{
			{analysis.HoldsDirective, spec.Holds},
			{analysis.AcquiresDirective, spec.Acquires},
			{analysis.ReleasesDirective, spec.Releases},
		} {
			if _, ok := analysis.DirectiveArgs(fd.Doc, d.directive); ok && len(d.names) == 0 {
				pass.Reportf(fd.Pos(), "%s directive on %s names no mutex",
					strings.TrimPrefix(d.directive, "//reschedvet:"), fd.Name.Name)
			}
		}
		if !any {
			continue
		}
		lc := LockContract{Holds: spec.Holds, Acquires: spec.Acquires, Releases: spec.Releases}
		fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if fn == nil {
			continue
		}
		for _, name := range append(append(append([]string{}, lc.Holds...), lc.Acquires...), lc.Releases...) {
			if analysis.ResolveMutexSpec(pass.Pkg, fn, name) == nil {
				pass.Reportf(fd.Pos(), "lock contract on %s names %s, which does not resolve to a mutex field",
					fd.Name.Name, name)
			}
		}
		contracts[fn] = &lc
		if analysis.InModule(pass.Pkg.Path()) {
			pass.ExportObjectFact(fn, &lc)
		}
	}
	return contracts
}

// structField finds a field by name in a struct type syntax node.
func structField(info *types.Info, st *ast.StructType, name string) *types.Var {
	for _, f := range st.Fields.List {
		for _, id := range f.Names {
			if id.Name == name {
				v, _ := info.Defs[id].(*types.Var)
				return v
			}
		}
	}
	return nil
}

// checker carries one function's analysis state.
type checker struct {
	pass      *analysis.Pass
	guards    map[*types.Var]string
	contracts map[*types.Func]*LockContract
	fresh     map[*types.Var]bool
	// writes marks the selector expressions appearing in a write
	// position (assignment target, ++/--, address-taken).
	writes map[ast.Expr]bool
}

// guardOf resolves a field variable's guard: the local directive map
// first, then the cross-package fact.
func (c *checker) guardOf(v *types.Var) (string, bool) {
	if mu, ok := c.guards[v]; ok {
		return mu, true
	}
	var gb GuardedBy
	if c.pass.ImportObjectFact(v, &gb) {
		return gb.Mutex, true
	}
	return "", false
}

// contractOf resolves a callee's lock contract, local first.
func (c *checker) contractOf(fn *types.Func) *LockContract {
	if lc, ok := c.contracts[fn]; ok {
		return lc
	}
	var lc LockContract
	if c.pass.ImportObjectFact(fn, &lc) {
		return &lc
	}
	return nil
}

// interesting reports whether fd touches any guarded field or calls
// any function with a holds contract; everything else skips the CFG.
func (c *checker) interesting(fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if v := c.fieldOf(n); v != nil {
				if _, ok := c.guardOf(v); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn := analysis.Callee(c.pass.TypesInfo, n); fn != nil {
				if lc := c.contractOf(fn); lc != nil && len(lc.Holds) > 0 {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// fieldOf resolves a selector to the struct field it reads, or nil.
func (c *checker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// mutexForAccess resolves the guarding mutex variable of an annotated
// field access: the named field of the struct that directly declares
// the accessed field (following the selection's embedding path).
func (c *checker) mutexForAccess(sel *ast.SelectorExpr, mu string) *types.Var {
	s := c.pass.TypesInfo.Selections[sel]
	t := s.Recv()
	idx := s.Index()
	for _, i := range idx[:len(idx)-1] {
		st := structUnder(t)
		if st == nil {
			return nil
		}
		t = st.Field(i).Type()
	}
	st := structUnder(t)
	if st == nil {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Name() == mu {
			return f
		}
	}
	return nil
}

func structUnder(t types.Type) *types.Struct {
	t = types.Unalias(t)
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	if !c.interesting(fd) {
		return
	}
	info := c.pass.TypesInfo
	c.fresh = analysis.FreshLocals(info, fd)
	c.writes = collectWrites(fd.Body)

	cfg := analysis.NewCFG(fd.Body)
	n := len(cfg.Blocks)
	if n == 0 {
		return
	}

	entry := lockset{}
	if fn, _ := info.Defs[fd.Name].(*types.Func); fn != nil {
		if lc := c.contracts[fn]; lc != nil {
			for _, name := range lc.Holds {
				if v := analysis.ResolveMutexSpec(c.pass.Pkg, fn, name); v != nil {
					entry[v] = modeWrite
				}
			}
		}
	}

	// heldIn[i] is the must-held set entering block i; nil = unreached.
	heldIn := make([]lockset, n)
	heldIn[0] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			if heldIn[b.Index] == nil {
				continue
			}
			out := heldIn[b.Index].clone()
			for _, node := range b.Nodes {
				c.transfer(node, out)
			}
			for _, succ := range b.Succs {
				if heldIn[succ.Index] == nil {
					heldIn[succ.Index] = out.clone()
					changed = true
					continue
				}
				if heldIn[succ.Index].meet(out) {
					changed = true
				}
			}
		}
	}

	for _, b := range cfg.Blocks {
		held := lockset{}
		if heldIn[b.Index] != nil {
			held = heldIn[b.Index].clone()
		}
		for _, node := range b.Nodes {
			c.visit(node, held)
		}
	}
}

// transfer applies a node's lock effects — direct sync calls and
// contract calls — to the must-held set. Deferred and goroutine
// statements are skipped: a deferred unlock keeps the lock held
// through the body.
func (c *checker) transfer(node ast.Node, held lockset) {
	info := c.pass.TypesInfo
	analysis.WalkBlockNode(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		c.applyCall(info, call, held)
		return true
	})
}

// applyCall folds one call's lock effect into held.
func (c *checker) applyCall(info *types.Info, call *ast.CallExpr, held lockset) {
	if key, acquire, release, rlock := analysis.LockMethod(info, call); key != nil {
		switch {
		case acquire && rlock:
			held[key] = modeRead
		case acquire:
			held[key] = modeWrite
		case release:
			delete(held, key)
		}
		return
	}
	fn := analysis.Callee(info, call)
	if fn == nil {
		return
	}
	lc := c.contractOf(fn)
	if lc == nil {
		return
	}
	for _, name := range lc.Acquires {
		if v := analysis.ResolveMutexSpec(fn.Pkg(), fn, name); v != nil {
			held[v] = modeWrite
		}
	}
	for _, name := range lc.Releases {
		if v := analysis.ResolveMutexSpec(fn.Pkg(), fn, name); v != nil {
			delete(held, v)
		}
	}
}

// visit reports guarded accesses and unmet holds contracts in node,
// threading the lockset through the node's own calls so an access
// right after an acquire in the same block is admitted.
func (c *checker) visit(node ast.Node, held lockset) {
	info := c.pass.TypesInfo
	analysis.WalkBlockNode(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.SelectorExpr:
			c.checkAccess(n, held)
			// Children (the base expression) still need visiting for
			// nested guarded selectors; returning true handles that.
		case *ast.CallExpr:
			if fn := analysis.Callee(info, n); fn != nil {
				if lc := c.contractOf(fn); lc != nil {
					for _, name := range lc.Holds {
						v := analysis.ResolveMutexSpec(fn.Pkg(), fn, name)
						if v == nil {
							continue
						}
						if _, ok := held[v]; !ok {
							c.pass.Reportf(n.Pos(), "call to %s requires holding %s (contract), which is not held on every path",
								fn.Name(), name)
						}
					}
				}
			}
			c.applyCall(info, n, held)
		}
		return true
	})
}

// checkAccess reports a guarded field access not covered by its mutex.
func (c *checker) checkAccess(sel *ast.SelectorExpr, held lockset) {
	v := c.fieldOf(sel)
	if v == nil {
		return
	}
	mu, ok := c.guardOf(v)
	if !ok {
		return
	}
	if root := analysis.RootIdentVar(c.pass.TypesInfo, sel.X); root != nil && c.fresh[root] {
		return
	}
	muVar := c.mutexForAccess(sel, mu)
	if muVar == nil {
		return // mis-declared guard; reported at the directive
	}
	mode, heldNow := held[muVar]
	write := c.writes[sel]
	verb := "read"
	if write {
		verb = "write"
	}
	switch {
	case !heldNow:
		c.pass.Reportf(sel.Sel.Pos(), "%s of %s outside critical section of %s (guardedby)", verb, accessName(sel, v), mu)
	case write && mode == modeRead:
		c.pass.Reportf(sel.Sel.Pos(), "write to %s while %s is only read-locked", accessName(sel, v), mu)
	}
}

// accessName renders a field access for diagnostics.
func accessName(sel *ast.SelectorExpr, v *types.Var) string {
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		return fmt.Sprintf("%s.%s", id.Name, v.Name())
	}
	return v.Name()
}

// collectWrites marks every selector expression in a write position:
// an assignment target (through indexes/stars), the operand of ++/--,
// or an address-taken expression.
func collectWrites(body ast.Node) map[ast.Expr]bool {
	writes := map[ast.Expr]bool{}
	mark := func(e ast.Expr) {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.SelectorExpr:
				writes[x] = true
				return
			case *ast.IndexExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				mark(l)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		}
		return true
	})
	return writes
}
