package guardedby_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer,
		"resched/internal/resbook", "resched/internal/server")
}
