// Package server is a guardedby fixture exercising the cross-package
// facts: the resbook fixture's annotations travel as GuardedBy and
// LockContract facts and are enforced here with no local directives.
package server

import (
	"resched/internal/resbook"
)

func Observe(b *resbook.Book) int {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	return b.Count
}

func BadObserve(b *resbook.Book) int {
	return b.Count // want "read of b.Count outside critical section of Mu"
}

func Merge(b *resbook.Book) {
	b.Mu.Lock()
	b.MergeLocked(1)
	b.Mu.Unlock()
}

func BadMerge(b *resbook.Book) {
	b.MergeLocked(1) // want "call to MergeLocked requires holding Mu"
}

// Fresh construction through the dependency's constructor is not a
// guarded access at all; reading the field afterwards without the
// lock is.
func Build() int {
	b := resbook.New(4)
	b.Mu.Lock()
	b.Count = 7
	b.Mu.Unlock()
	return b.Count // want "read of b.Count outside critical section of Mu"
}
