// Package resbook is a guardedby fixture: annotated fields, helper
// contracts, and the access shapes the analyzer must admit or flag.
package resbook

import "sync"

type shard struct {
	mu sync.RWMutex
	//reschedvet:guardedby mu
	stamp uint64
	res   map[string]int //reschedvet:guardedby mu
}

type Book struct {
	Mu sync.Mutex
	//reschedvet:guardedby Mu
	Count  int
	shards []shard
}

// New initializes guarded fields through fresh locals: no lock is
// needed before the value is shared.
func New(n int) *Book {
	b := &Book{shards: make([]shard, n)}
	for i := range b.shards {
		sh := &b.shards[i]
		sh.res = map[string]int{}
		sh.stamp = 1
	}
	b.Count = n
	return b
}

// Get reads under the shard read lock: fine.
func (b *Book) Get(id string) (int, bool) {
	for i := range b.shards {
		sh := &b.shards[i]
		sh.mu.RLock()
		v, ok := sh.res[id]
		sh.mu.RUnlock()
		if ok {
			return v, true
		}
	}
	return 0, false
}

// Put writes under the write lock with a deferred unlock: fine.
func (b *Book) Put(id string, v int) {
	sh := &b.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.res[id] = v
	sh.stamp++
}

func (b *Book) BadGet(id string) int {
	return b.shards[0].res[id] // want "read of res outside critical section of mu"
}

func (b *Book) BadStampWrite() {
	sh := &b.shards[0]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	sh.stamp++ // want "write to sh.stamp while mu is only read-locked"
}

// MaybeLocked holds Mu on only one path, so the access is not covered
// on every path: must-held analysis flags it.
func (b *Book) MaybeLocked(cond bool) int {
	if cond {
		b.Mu.Lock()
		defer b.Mu.Unlock()
	}
	return b.Count // want "read of b.Count outside critical section of Mu"
}

// applyLocked assumes the caller holds Mu.
//
//reschedvet:holds Mu
func (b *Book) applyLocked(d int) {
	b.Count += d
}

func (b *Book) Apply(d int) {
	b.Mu.Lock()
	b.applyLocked(d)
	b.Mu.Unlock()
}

func (b *Book) BadApply(d int) {
	b.applyLocked(d) // want "call to applyLocked requires holding Mu"
}

// MergeLocked folds src into the count; the caller holds Mu. Exported
// so the server fixture exercises the cross-package contract fact.
//
//reschedvet:holds Mu
func (b *Book) MergeLocked(src int) {
	b.Count += src
}

// lockAll acquires every shard lock in index order.
//
//reschedvet:acquires shard.mu
func (b *Book) lockAll() {
	for i := range b.shards {
		b.shards[i].mu.Lock()
	}
}

// unlockAll releases every shard lock.
//
//reschedvet:releases shard.mu
func (b *Book) unlockAll() {
	for i := range b.shards {
		b.shards[i].mu.Unlock()
	}
}

// Bump's accesses are covered by the wrapper contracts.
func (b *Book) Bump() {
	b.lockAll()
	defer b.unlockAll()
	for i := range b.shards {
		b.shards[i].stamp++
	}
}

// BadBump releases before the access.
func (b *Book) BadBump() {
	b.lockAll()
	b.unlockAll()
	b.shards[0].stamp++ // want "write of stamp outside critical section of mu"
}

// The persistent backend keeps each shard's immutable profile as a
// copy-on-write root pointer: nodes are never written after publish,
// only the root pointer moves. The whole COW invariant therefore
// reduces to guarding that one pointer — snapshots pin it under the
// read lock, commits swap in a path-copied replacement under the
// write lock.

type node struct {
	left, right *node
	val         int
}

type pshard struct {
	mu sync.RWMutex
	//reschedvet:guardedby mu
	root *node
}

// SnapshotRoot pins the current root under the read lock: fine. The
// returned handle stays valid after unlock precisely because nodes
// behind a published root are immutable.
func (s *pshard) SnapshotRoot() *node {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.root
}

// SwapRoot publishes a path-copied replacement under the write lock:
// fine.
func (s *pshard) SwapRoot(n *node) {
	s.mu.Lock()
	s.root = n
	s.mu.Unlock()
}

// BadSwapUnderRLock moves the root while only read-locked — a racing
// snapshot could pin a half-published root.
func (s *pshard) BadSwapUnderRLock(n *node) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.root = n // want "write to s.root while mu is only read-locked"
}

// BadRootRead pins the root with no lock at all: the pointer load
// itself races with a concurrent swap even though nodes are immutable.
func (s *pshard) BadRootRead() *node {
	return s.root // want "read of s.root outside critical section of mu"
}
