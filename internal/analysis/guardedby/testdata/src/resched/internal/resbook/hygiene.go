package resbook

import "sync"

// H exercises the directive hygiene reports.
type H struct {
	mu   sync.Mutex
	data int
	//reschedvet:guardedby nosuch
	Bad1 int // want "guardedby names nosuch, which is not a field of this struct"
	//reschedvet:guardedby data
	Bad2 int // want "guardedby names data, which is not a sync.Mutex or sync.RWMutex"
	//reschedvet:guardedby mu
	mu2 sync.Mutex // want "guardedby on a mutex field guards nothing"
	//reschedvet:guardedby
	Bad3 int // want "guardedby directive needs a single sibling mutex field name"
}

//reschedvet:holds gone
func (h *H) badContract() {} // want "lock contract on badContract names gone, which does not resolve to a mutex field"

// use keeps the otherwise-unused declarations alive for the
// type-checker's unused-variable rules (it has none for fields, but
// the method must be referenced somewhere in a real build).
var _ = (*H).badContract
