package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkPackage type-checks src and returns its syntax, info, and
// package.
func checkPackage(t *testing.T, src string) (*ast.File, *types.Info, *types.Package) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cg_test.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return file, info, pkg
}

const callgraphFixture = `package p
type T struct{}
func (T) M() {}
func leaf() {}
func viaLit() {
	f := func() { leaf() }
	f()
}
func launcher() {
	go leaf()
}
func chain() {
	viaLit()
	var t T
	t.M()
}
`

func TestPackageCallGraph(t *testing.T) {
	file, info, pkg := checkPackage(t, callgraphFixture)
	fn := func(name string) *types.Func { return pkg.Scope().Lookup(name).(*types.Func) }
	method := func(typeName, m string) *types.Func {
		named := pkg.Scope().Lookup(typeName).(*types.TypeName).Type().(*types.Named)
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == m {
				return named.Method(i)
			}
		}
		t.Fatalf("no method %s.%s", typeName, m)
		return nil
	}
	calls := func(graph map[*types.Func][]*types.Func, caller, callee *types.Func) bool {
		for _, c := range graph[caller] {
			if c == callee {
				return true
			}
		}
		return false
	}

	graph := PackageCallGraph([]*ast.File{file}, info, false)
	if !calls(graph, fn("viaLit"), fn("leaf")) {
		t.Errorf("call inside a function literal not attributed to the enclosing declaration")
	}
	if !calls(graph, fn("chain"), fn("viaLit")) || !calls(graph, fn("chain"), method("T", "M")) {
		t.Errorf("direct function and method calls missing: %v", graph[fn("chain")])
	}
	if !calls(graph, fn("launcher"), fn("leaf")) {
		t.Errorf("goroutine launch missing with skipGoLaunches=false")
	}

	skipped := PackageCallGraph([]*ast.File{file}, info, true)
	if calls(skipped, fn("launcher"), fn("leaf")) {
		t.Errorf("goroutine launch present with skipGoLaunches=true")
	}
}

func TestPropagate(t *testing.T) {
	file, info, pkg := checkPackage(t, `package p
func blockDirect() {}
func middle() { blockDirect() }
func top() { middle() }
func clean() {}
func cleanCaller() { clean() }
`)
	fn := func(name string) *types.Func { return pkg.Scope().Lookup(name).(*types.Func) }
	graph := PackageCallGraph([]*ast.File{file}, info, false)
	res := Propagate(graph, func(f *types.Func) bool { return f == fn("blockDirect") })
	for _, name := range []string{"blockDirect", "middle", "top"} {
		if !res[fn(name)] {
			t.Errorf("%s should have the property", name)
		}
	}
	for _, name := range []string{"clean", "cleanCaller"} {
		if res[fn(name)] {
			t.Errorf("%s should not have the property", name)
		}
	}
}

func TestPropagateCycle(t *testing.T) {
	file, info, pkg := checkPackage(t, `package p
func a(n int) {
	if n > 0 {
		b(n - 1)
	}
	src()
}
func b(n int) { a(n) }
func src() {}
`)
	fn := func(name string) *types.Func { return pkg.Scope().Lookup(name).(*types.Func) }
	graph := PackageCallGraph([]*ast.File{file}, info, false)
	res := Propagate(graph, func(f *types.Func) bool { return f == fn("src") })
	if !res[fn("a")] || !res[fn("b")] {
		t.Errorf("property lost on a call cycle: a=%v b=%v", res[fn("a")], res[fn("b")])
	}
}
