package analysis

import (
	"go/ast"
	"go/types"
)

// This file approximates the call graph: only statically resolvable
// callees (direct calls, method calls on concrete receivers) appear;
// calls through interfaces or function values do not. That
// under-approximation is the right polarity for the fact producers
// built on it — a missed edge can hide a property, never invent one —
// and the serving code the analyzers guard dispatches statically on
// its hot paths.

// FuncDecls returns the package's function and method declarations
// with bodies, in source order, plus the map back from type-checker
// objects.
func FuncDecls(files []*ast.File, info *types.Info) ([]*ast.FuncDecl, map[*types.Func]*ast.FuncDecl) {
	var decls []*ast.FuncDecl
	byObj := map[*types.Func]*ast.FuncDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls = append(decls, fd)
			byObj[fn] = fd
		}
	}
	return decls, byObj
}

// PackageCallGraph returns each declared function's statically
// resolved callees. Calls inside function literals are attributed to
// the enclosing declaration (the literal runs on the caller's
// activation unless launched as a goroutine). With skipGoLaunches,
// everything inside a `go` statement is ignored: a goroutine's work
// happens on another activation, which matters to callers asking
// "does calling this block me?".
func PackageCallGraph(files []*ast.File, info *types.Info, skipGoLaunches bool) map[*types.Func][]*types.Func {
	decls, _ := FuncDecls(files, info)
	graph := map[*types.Func][]*types.Func{}
	for _, fd := range decls {
		fn := info.Defs[fd.Name].(*types.Func)
		seen := map[*types.Func]bool{}
		var callees []*types.Func
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok && skipGoLaunches {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := Callee(info, call); callee != nil && !seen[callee] {
					seen[callee] = true
					callees = append(callees, callee)
				}
			}
			return true
		})
		graph[fn] = callees
	}
	return graph
}

// Propagate computes the least fixed point of a monotone property
// over the call graph: a function has the property if direct reports
// it (syntactically, or via an imported fact for callees declared
// elsewhere) or any of its static callees has it. This is the shape
// of "may block", "mutates its argument", and friends.
func Propagate(graph map[*types.Func][]*types.Func, direct func(*types.Func) bool) map[*types.Func]bool {
	res := map[*types.Func]bool{}
	has := func(fn *types.Func) bool {
		if res[fn] {
			return true
		}
		return direct(fn)
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range graph {
			if res[fn] {
				continue
			}
			v := direct(fn)
			for _, c := range callees {
				if v {
					break
				}
				v = has(c)
			}
			if v {
				res[fn] = true
				changed = true
			}
		}
	}
	return res
}
