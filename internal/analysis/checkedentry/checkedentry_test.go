package checkedentry_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/checkedentry"
)

func TestCheckedEntry(t *testing.T) {
	analysistest.Run(t, "testdata", checkedentry.Analyzer,
		"resched/internal/server", "batch")
}
