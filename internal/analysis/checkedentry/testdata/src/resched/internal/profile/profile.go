// Package profile is a fixture stub mirroring the panicking fast
// paths and their validated *Checked siblings.
package profile

// Profile mirrors the step-function type.
type Profile struct{ capacity int }

// EarliestFit panics on malformed arguments (fast path).
func (p *Profile) EarliestFit(procs, dur, notBefore int) int {
	if procs < 1 {
		panic("bad procs")
	}
	return notBefore
}

// EarliestFitChecked is the validated sibling.
func (p *Profile) EarliestFitChecked(procs, dur, notBefore int) (int, error) {
	return notBefore, nil
}

// Reserve has no Checked sibling; it already returns an error.
func (p *Profile) Reserve(start, end, procs int) error { return nil }

// Fit is a package-level fast path.
func Fit(procs int) int { return procs }

// FitChecked is its validated sibling.
func FitChecked(procs int) (int, error) { return procs, nil }
