// Package server is a fixture consumer inside the serving set.
package server

import "resched/internal/profile"

func handle(p *profile.Profile) error {
	_ = p.EarliestFit(1, 2, 3) // want "must call EarliestFitChecked instead"
	if _, err := p.EarliestFitChecked(1, 2, 3); err != nil {
		return err
	}
	_ = profile.Fit(1) // want "must call FitChecked instead"
	return p.Reserve(0, 1, 1)
}
