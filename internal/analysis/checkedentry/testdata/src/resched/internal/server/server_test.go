package server

import "resched/internal/profile"

// Tests inside the serving packages may exercise the fast path.
func testHelper(p *profile.Profile) int { return p.EarliestFit(1, 2, 3) }
