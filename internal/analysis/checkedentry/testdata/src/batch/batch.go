// Package batch is outside the serving set: the scheduling
// algorithms legitimately keep the panicking fast path.
package batch

import "resched/internal/profile"

func run(p *profile.Profile) int { return p.EarliestFit(1, 2, 3) }
