// Package checkedentry enforces the serving-layer entry-point
// discipline from PR 1: the profile's core query methods
// (EarliestFit, LatestFit, MinFree, AvgFree) panic on malformed
// arguments, which is the right failure mode inside the batch
// schedulers but a crash vector in a daemon serving untrusted
// requests. The serving packages must go through the validated
// *Checked variants, which turn the same conditions into errors.
package checkedentry

import (
	"go/types"
	"strings"

	"resched/internal/analysis"
)

// ServingPackages are the packages held to the *Checked discipline:
// everything between the HTTP surface and the reservation book. The
// batch schedulers (internal/core and below) legitimately keep the
// panicking fast path.
var ServingPackages = map[string]bool{
	"resched/internal/server":    true,
	"resched/internal/api":       true,
	"resched/internal/resbook":   true,
	"resched/internal/lifecycle": true,
}

// profilePackage is where the panicking fast paths and their *Checked
// siblings live.
const profilePackage = "resched/internal/profile"

// Analyzer flags uses, in serving packages, of a profile function or
// method that has a *Checked sibling. The sibling's existence is the
// marker: any entry point important enough to grow a validated
// variant is one serving code must not call unvalidated.
var Analyzer = &analysis.Analyzer{
	Name: "checkedentry",
	Doc: "serving code (internal/server, internal/api, internal/resbook) must call the " +
		"validated *Checked profile entry points, not the panicking fast-path variants",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !ServingPackages[pass.Pkg.Path()] {
		return nil
	}
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != profilePackage {
			continue
		}
		if strings.HasSuffix(fn.Name(), "Checked") || pass.InTestFile(id.Pos()) {
			continue
		}
		sibling := fn.Name() + "Checked"
		if !hasSibling(fn, sibling) {
			continue
		}
		pass.Reportf(id.Pos(),
			"%s panics on malformed arguments; serving code must call %s instead",
			fn.Name(), sibling)
	}
	return nil
}

// hasSibling reports whether the validated variant exists: a method
// of the same receiver type, or a package-level function, named like
// fn plus the Checked suffix.
func hasSibling(fn *types.Func, name string) bool {
	if named := analysis.ReceiverNamed(fn); named != nil {
		return analysis.HasMethod(named, name)
	}
	_, ok := fn.Pkg().Scope().Lookup(name).(*types.Func)
	return ok
}
