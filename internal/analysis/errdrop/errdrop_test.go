package errdrop_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/errdrop"
)

func TestErrDrop(t *testing.T) {
	analysistest.Run(t, "testdata", errdrop.Analyzer, "resched/internal/server")
}
