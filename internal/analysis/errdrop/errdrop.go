// Package errdrop enforces error hygiene in the serving packages
// (internal/server, internal/api, internal/resbook): an error result
// must be used. The daemon's failure modes — stale commits, rejected
// reservations, encode failures on a dying connection — all surface as
// returned errors, so a dropped error is a silently wrong reply.
//
// Three shapes are flagged in non-test files:
//
//   - discarding an error with a blank identifier (`_ = f()`, or an
//     error position of a tuple assigned to `_` while the call's other
//     results are kept);
//   - calling an error-returning function as a bare statement;
//   - assigning an error to a variable that is never read on any path
//     (a dead definition, found by backward liveness over the CFG).
//
// Deferred and go'd calls are exempt: their error has no caller to
// return to, and flagging `defer f.Close()` teaches people to write
// wrappers, not to handle errors. Test files are exempt wholesale.
package errdrop

import (
	"go/ast"
	"go/types"

	"resched/internal/analysis"
	"resched/internal/analysis/checkedentry"
)

// Analyzer flags dropped errors in the serving packages.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "error results in serving packages must be used: no blank discards, no unchecked " +
		"calls, no error variables that are dead on every path",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !checkedentry.ServingPackages[pass.Pkg.Path()] {
		return nil
	}
	decls, _ := analysis.FuncDecls(pass.Files, pass.TypesInfo)
	for _, fd := range decls {
		if pass.InTestFile(fd.Pos()) {
			continue
		}
		checkFunc(pass, fd)
	}
	return nil
}

// errorType reports whether t is the error interface.
func errorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// callErrors describes which results of a call are errors.
func callErrors(info *types.Info, call *ast.CallExpr) (n int, errIdx []int) {
	t := info.TypeOf(call)
	if t == nil {
		return 0, nil
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if errorType(tup.At(i).Type()) {
				errIdx = append(errIdx, i)
			}
		}
		return tup.Len(), errIdx
	}
	if errorType(t) {
		return 1, []int{0}
	}
	return 1, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Signature variables (parameters, named results) are excluded from
	// the dead-definition check: results are read by the return
	// machinery, not by syntax this analysis sees.
	sigVars := map[*types.Var]bool{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					sigVars[v] = true
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	collect(fd.Type.Results)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.DeferStmt:
			// The launched/deferred call's own error has nowhere to go;
			// its arguments are still ordinary expressions but contain
			// no statements, so pruning here is safe.
			return false
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if _, errIdx := callErrors(info, call); len(errIdx) > 0 {
				pass.Reportf(n.Pos(), "result of %s includes an error that is not checked",
					calleeName(info, call))
			}
			return true
		case *ast.AssignStmt:
			checkBlankError(pass, n)
			return true
		}
		return true
	})

	// Dead error definitions: assigned, then never read on any path.
	cfg := analysis.NewCFG(fd.Body)
	dead := analysis.DeadDefs(cfg, info, func(v *types.Var) bool {
		return errorType(v.Type()) && !sigVars[v]
	})
	for _, d := range dead {
		if d.Rhs == nil {
			continue // range or bare declaration: no error produced
		}
		if _, ok := ast.Unparen(d.Rhs).(*ast.CallExpr); !ok {
			continue // plain copies (err = nil) are resets, not drops
		}
		pass.Reportf(d.Ident.Pos(), "error assigned to %s is never checked on any path", d.Ident.Name)
	}
}

// checkBlankError flags error values assigned to the blank identifier.
func checkBlankError(pass *analysis.Pass, n *ast.AssignStmt) {
	info := pass.TypesInfo
	if len(n.Lhs) == len(n.Rhs) {
		for i, lhs := range n.Lhs {
			if isBlank(lhs) && errorType(info.TypeOf(n.Rhs[i])) {
				if _, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr); ok {
					pass.Reportf(lhs.Pos(), "error discarded with _; handle it or return it")
				}
			}
		}
		return
	}
	// Tuple form: x, _ := f().
	if len(n.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	_, errIdx := callErrors(info, call)
	for _, i := range errIdx {
		if i < len(n.Lhs) && isBlank(n.Lhs[i]) {
			pass.Reportf(n.Lhs[i].Pos(), "error result of %s discarded with _; handle it or return it",
				calleeName(info, call))
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := analysis.Callee(info, call); fn != nil {
		return fn.Name()
	}
	return "call"
}
