package server

// Test files may drop errors: assertions care about other properties,
// and forced error paths are set up exactly by ignoring results.

func helperForTests() {
	_ = work()
	work()
}
