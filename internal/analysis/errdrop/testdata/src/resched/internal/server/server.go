package server

import "errors"

func work() error { return errors.New("x") }

func workTwo() (int, error) { return 0, nil }

func cleanup() error { return nil }

func sink(error) {}

// Positive cases.

func blankDiscard() {
	_ = work() // want "error discarded with _"
}

func tupleBlank() {
	n, _ := workTwo() // want "error result of workTwo discarded"
	_ = n
}

func bareCall() {
	work() // want "result of work includes an error that is not checked"
}

func bareTupleCall() {
	workTwo() // want "result of workTwo includes an error that is not checked"
}

func deadOverwrite() (int, error) {
	var err error
	err = work() // want "error assigned to err is never checked on any path"
	err = work()
	return 0, err
}

func deadAfterUse(c bool) {
	var err error
	if c {
		sink(err)
	}
	err = work() // want "error assigned to err is never checked on any path"
}

// Negative cases.

func checked() error {
	if err := work(); err != nil {
		return err
	}
	return nil
}

func returned() error {
	err := work()
	return err
}

func usedOnOnePath(c bool) {
	err := work()
	if c {
		sink(err)
	}
}

func deferred() {
	// Deferred cleanup has no caller to hand the error to.
	defer cleanup()
}

func ignored() {
	_ = work() //reschedvet:ignore errdrop best-effort notification
}

func launched() {
	go cleanup()
}

func capturedByClosure() {
	var err error
	defer func() { sink(err) }()
	err = work()
}

func resetNotDropped() error {
	err := work()
	if err != nil {
		sink(err)
	}
	err = nil // plain copy, not a produced error
	return err
}

func blankNonError() {
	_ = nonErrorResult()
}

func nonErrorResult() int { return 0 }
