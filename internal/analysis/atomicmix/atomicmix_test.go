package atomicmix_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer,
		"resched/internal/stats", "resched/internal/server", "resched/internal/resbook")
}
