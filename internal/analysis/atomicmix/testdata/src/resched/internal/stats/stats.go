// Package stats is an atomicmix fixture: one field per discipline,
// one mixed, and constructor initialization through a fresh local.
package stats

import "sync/atomic"

type Counters struct {
	// Hits is all-atomic in this package; Misses is all-plain. frees
	// mixes the two, which is the local positive case.
	Hits   uint64
	Misses uint64
	Evicts uint64
	frees  uint64
	typed  atomic.Uint64
	label  string
}

func (c *Counters) Hit() {
	atomic.AddUint64(&c.Hits, 1)
	atomic.AddUint64(&c.Evicts, 1)
}

func (c *Counters) Miss() {
	c.Misses++
}

func (c *Counters) BadFree() {
	atomic.AddUint64(&c.frees, 1)
	c.frees++ // want "plain access of frees, which is also accessed through sync/atomic"
}

// Typed atomics are safe by construction; strings cannot be accessed
// atomically at all. Neither is tracked.
func (c *Counters) Fine() uint64 {
	c.label = "x"
	return c.typed.Add(1)
}

// New initializes plainly through a fresh local: exempt.
func New() *Counters {
	c := &Counters{}
	c.Hits = 1
	c.Misses = 1
	return c
}
