// Package resbook is an atomicmix fixture for the persistent-profile
// shard: the root pointer and its stamp follow the plain-under-lock
// discipline (see guardedby) and must stay all-plain. The tempting
// bug is probe — an atomic "lock-free" snapshot probe racing the
// plain increment commits perform under the write lock; holding mu on
// the plain side buys no happens-before with the atomic side.
package resbook

import (
	"sync"
	"sync/atomic"
)

type node struct {
	left, right *node
	val         int
}

type pshard struct {
	mu sync.RWMutex
	// root and stamp are all-plain under mu: commits path-copy a new
	// root and bump the stamp while write-locked, snapshots read both
	// while read-locked. Neither may ever be touched through
	// sync/atomic.
	root  *node
	stamp uint64
	// probe mixes the disciplines: bumped plainly under mu, loaded
	// atomically without it.
	probe uint64
}

// Swap publishes a path-copied root and bumps the stamp, both plainly
// under the write lock: the committed discipline. The probe bump is
// the mix — mu does not synchronize with FastProbe's atomic load.
func (s *pshard) Swap(n *node) {
	s.mu.Lock()
	s.root = n
	s.stamp++
	s.probe++ // want "plain access of probe, which is also accessed through sync/atomic"
	s.mu.Unlock()
}

// Stamp reads under the read lock: fine, all-plain.
func (s *pshard) Stamp() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stamp
}

// FastProbe is the atomic side of the mix.
func (s *pshard) FastProbe() uint64 {
	return atomic.LoadUint64(&s.probe)
}

// newShard initializes plainly through a fresh local: exempt.
func newShard() *pshard {
	s := &pshard{}
	s.stamp = 1
	return s
}
