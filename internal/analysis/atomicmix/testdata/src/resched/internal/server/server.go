// Package server is an atomicmix fixture exercising the cross-package
// facts: the stats fixture's per-field disciplines arrive as Atomic
// and Plain facts and are enforced here.
package server

import (
	"sync/atomic"

	"resched/internal/stats"
)

func Report(c *stats.Counters) uint64 {
	return c.Hits // want "plain access of Hits, which resched/internal/stats accesses through sync/atomic"
}

func Bump(c *stats.Counters) {
	atomic.AddUint64(&c.Misses, 1) // want "sync/atomic access of Misses, which resched/internal/stats accesses plainly"
}

func OK(c *stats.Counters) uint64 {
	atomic.AddUint64(&c.Evicts, 1)
	return atomic.LoadUint64(&c.Evicts)
}
