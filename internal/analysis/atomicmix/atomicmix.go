// Package atomicmix flags fields accessed both through sync/atomic
// and by plain reads or writes. Mixing the two is a data race the
// race detector only sees under a lucky interleaving: the atomic side
// establishes no happens-before edge for the plain side, and a plain
// read concurrent with an atomic store is undefined. A field must
// commit to one discipline — all-atomic (use the typed atomics, or
// atomic.* calls on its address everywhere) or all-plain under a lock
// (see guardedby).
//
// An atomic use is an atomic.* call taking the field's address
// (atomic.AddUint64(&s.n, 1)); a plain use is any other read, write,
// or address-of of a field whose type could be accessed atomically
// (the sized integers, uintptr, unsafe.Pointer). Fields of the typed
// atomic wrappers (atomic.Uint64 and friends) are safe by
// construction and are ignored — go vet's copylocks already polices
// copying them.
//
// Each side of a mix is exported as an object fact (Atomic, Plain),
// so a package that accesses an imported field atomically while the
// declaring package touches it plainly — or vice versa — is caught in
// import order. Initialization through a provably fresh local (a
// value this function allocated and has not shared; see
// analysis.FreshLocals) is exempt: constructors may set fields
// plainly before the value escapes.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"resched/internal/analysis"
)

// Atomic is the object fact on a field accessed through sync/atomic
// calls on its address.
type Atomic struct{}

func (*Atomic) AFact() {}

// Plain is the object fact on an atomically-accessible field accessed
// by ordinary reads or writes.
type Plain struct{}

func (*Plain) AFact() {}

func init() {
	analysis.RegisterFact("atomicmix.Atomic", (*Atomic)(nil))
	analysis.RegisterFact("atomicmix.Plain", (*Plain)(nil))
}

// Analyzer flags fields mixing sync/atomic and plain access.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "a field accessed through sync/atomic is never read or written plainly, and a plainly " +
		"accessed field is never touched through sync/atomic; mixing the two is a data race",
	Run: run,
}

// use records one access site of a field.
type use struct {
	pos token.Pos
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	atomicUses := map[*types.Var][]use{}
	plainUses := map[*types.Var][]use{}
	decls, _ := analysis.FuncDecls(pass.Files, info)
	for _, fd := range decls {
		if pass.InTestFile(fd.Pos()) || fd.Body == nil {
			continue
		}
		fresh := analysis.FreshLocals(info, fd)
		// consumed marks selectors that are the operand of an atomic
		// call's address argument; they are atomic uses, not plain ones.
		consumed := map[ast.Expr]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(info, call) || len(call.Args) == 0 {
				return true
			}
			if sel, v := addrOfField(info, call.Args[0]); v != nil {
				consumed[sel] = true
				atomicUses[v] = append(atomicUses[v], use{pos: sel.Pos()})
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || consumed[sel] {
				return true
			}
			v := fieldOf(info, sel)
			if v == nil || !atomicCapable(v.Type()) {
				return true
			}
			if root := analysis.RootIdentVar(info, sel.X); root != nil && fresh[root] {
				return true
			}
			plainUses[v] = append(plainUses[v], use{pos: sel.Sel.Pos()})
			return true
		})
	}

	// Local mixes and fact-known remote halves, reported at every site
	// of the offending discipline.
	report := func(uses map[*types.Var][]use, v *types.Var, msg string) {
		sites := uses[v]
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		for _, u := range sites {
			pass.Reportf(u.pos, "%s", msg)
		}
	}
	for v := range plainUses {
		var a Atomic
		if len(atomicUses[v]) > 0 {
			report(plainUses, v, fmt.Sprintf(
				"plain access of %s, which is also accessed through sync/atomic; pick one discipline", v.Name()))
		} else if pass.ImportObjectFact(v, &a) {
			report(plainUses, v, fmt.Sprintf(
				"plain access of %s, which %s accesses through sync/atomic (fact)", v.Name(), v.Pkg().Path()))
		}
	}
	for v := range atomicUses {
		var p Plain
		if len(plainUses[v]) == 0 && pass.ImportObjectFact(v, &p) {
			report(atomicUses, v, fmt.Sprintf(
				"sync/atomic access of %s, which %s accesses plainly (fact)", v.Name(), v.Pkg().Path()))
		}
	}

	if analysis.InModule(pass.Pkg.Path()) {
		for v := range atomicUses {
			if v.Pkg() == pass.Pkg {
				pass.ExportObjectFact(v, &Atomic{})
			}
		}
		for v := range plainUses {
			if v.Pkg() == pass.Pkg {
				pass.ExportObjectFact(v, &Plain{})
			}
		}
	}
	return nil
}

// isAtomicCall reports whether call is a package-level sync/atomic
// function (the address-taking forms; typed-atomic methods have a
// receiver and are safe).
func isAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// addrOfField matches &x.f and returns the selector and field.
func addrOfField(info *types.Info, e ast.Expr) (*ast.SelectorExpr, *types.Var) {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil, nil
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	return sel, fieldOf(info, sel)
}

func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	if v == nil || !v.IsField() {
		return nil
	}
	return v
}

// atomicCapable reports whether t is a type the sync/atomic functions
// operate on. Plain accesses of anything else cannot be half of a
// mixed-discipline race with atomic.* calls.
func atomicCapable(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int32, types.Int64, types.Uint32, types.Uint64, types.Uintptr, types.UnsafePointer:
			return true
		}
	case *types.Pointer:
		return false // atomic.Pointer[T] territory; LoadPointer needs unsafe.Pointer
	}
	return false
}
