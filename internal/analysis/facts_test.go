package analysis

import (
	"go/types"
	"strings"
	"testing"
)

// testFact is a registered fact type for round-trip tests.
type testFact struct {
	Level int    `json:"level"`
	Note  string `json:"note,omitempty"`
}

func (*testFact) AFact() {}

// otherFact shares objects with testFact but is a distinct type.
type otherFact struct {
	On bool `json:"on"`
}

func (*otherFact) AFact() {}

func init() {
	RegisterFact("test", (*testFact)(nil))
	RegisterFact("other", (*otherFact)(nil))
}

const factsFixture = `package p
type Book struct{}
func (b *Book) Snapshot() int { return 0 }
func (b Book) Len() int { return 0 }
func Blocking() {}
var Global int
`

func factsPackage(t *testing.T) (*types.Package, *types.Func, *types.Func, types.Object) {
	t.Helper()
	_, info, _ := checkFunc(t, factsFixture+"func f() {}\n", "f")
	var pkg *types.Package
	for _, obj := range info.Defs {
		if obj != nil && obj.Pkg() != nil {
			pkg = obj.Pkg()
			break
		}
	}
	if pkg == nil {
		t.Fatal("no package")
	}
	book := pkg.Scope().Lookup("Book").(*types.TypeName)
	named := book.Type().(*types.Named)
	var snapshot, lenm *types.Func
	for i := 0; i < named.NumMethods(); i++ {
		switch m := named.Method(i); m.Name() {
		case "Snapshot":
			snapshot = m
		case "Len":
			lenm = m
		}
	}
	return pkg, snapshot, lenm, pkg.Scope().Lookup("Blocking")
}

func TestFactExportImport(t *testing.T) {
	_, snapshot, _, blocking := factsPackage(t)
	s := NewFactSet()
	s.Export(snapshot, &testFact{Level: 3, Note: "aliases"})
	s.Export(blocking, &otherFact{On: true})

	var got testFact
	if !s.Import(snapshot, &got) || got.Level != 3 || got.Note != "aliases" {
		t.Errorf("Import = %v, %+v", true, got)
	}
	if s.Import(blocking, &got) {
		t.Errorf("testFact found on object holding only otherFact")
	}
	var other otherFact
	if !s.Import(blocking, &other) || !other.On {
		t.Errorf("otherFact lost")
	}

	// Re-exporting the same fact type replaces, not accumulates.
	s.Export(snapshot, &testFact{Level: 7})
	if !s.Import(snapshot, &got) || got.Level != 7 {
		t.Errorf("re-export did not replace: %+v", got)
	}
	if n := len(s.All()); n != 2 {
		t.Errorf("All() = %d facts, want 2", n)
	}
}

func TestObjectKeyForms(t *testing.T) {
	pkg, snapshot, lenm, blocking := factsPackage(t)
	cases := []struct {
		obj  types.Object
		want string
	}{
		{snapshot, "p.(Book).Snapshot"},
		{lenm, "p.(Book).Len"}, // value receiver: same namespace
		{blocking, "p.Blocking"},
		{pkg.Scope().Lookup("Global"), "p.Global"},
	}
	for _, c := range cases {
		if got := ObjectKey(c.obj); got != c.want {
			t.Errorf("ObjectKey(%s) = %q, want %q", c.obj.Name(), got, c.want)
		}
		if back := LookupObjectKey(pkg, c.want); back != c.obj {
			t.Errorf("LookupObjectKey(%q) = %v, want %v", c.want, back, c.obj)
		}
	}
	if LookupObjectKey(pkg, "q.Blocking") != nil {
		t.Errorf("key with foreign package path resolved")
	}
	if LookupObjectKey(pkg, "p.(Missing).M") != nil {
		t.Errorf("key with unknown receiver type resolved")
	}
	if LookupObjectKey(pkg, "p.Missing") != nil {
		t.Errorf("key with unknown name resolved")
	}
}

func TestFactRoundTrip(t *testing.T) {
	pkg, snapshot, _, blocking := factsPackage(t)
	s := NewFactSet()
	s.Export(snapshot, &testFact{Level: 2, Note: "snapshot slice"})
	s.Export(blocking, &testFact{Level: 1})
	s.Export(blocking, &otherFact{On: true})

	data, err := s.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if !strings.Contains(string(data), `"p.(Book).Snapshot"`) {
		t.Errorf("encoded form missing method key:\n%s", data)
	}

	back, err := DecodeFacts(data, func(key string) types.Object {
		return LookupObjectKey(pkg, key)
	})
	if err != nil {
		t.Fatalf("DecodeFacts: %v", err)
	}
	var tf testFact
	if !back.Import(snapshot, &tf) || tf.Level != 2 || tf.Note != "snapshot slice" {
		t.Errorf("decoded testFact = %+v", tf)
	}
	var of otherFact
	if !back.Import(blocking, &of) || !of.On {
		t.Errorf("decoded otherFact = %+v", of)
	}
	if len(back.All()) != len(s.All()) {
		t.Errorf("round trip changed fact count: %d != %d", len(back.All()), len(s.All()))
	}

	// Deterministic: encoding twice gives identical bytes.
	data2, err := back.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if string(data) != string(data2) {
		t.Errorf("encoding not deterministic:\n%s\n---\n%s", data, data2)
	}
}

func TestDecodeFactsErrors(t *testing.T) {
	pkg, snapshot, _, _ := factsPackage(t)
	s := NewFactSet()
	s.Export(snapshot, &testFact{Level: 1})
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeFacts([]byte("not json"), nil); err == nil {
		t.Errorf("malformed JSON decoded")
	}
	if _, err := DecodeFacts(data, func(string) types.Object { return nil }); err == nil {
		t.Errorf("unresolvable object key decoded")
	}
	bad := strings.Replace(string(data), `"test"`, `"unregistered"`, 1)
	if _, err := DecodeFacts([]byte(bad), func(key string) types.Object {
		return LookupObjectKey(pkg, key)
	}); err == nil {
		t.Errorf("unregistered fact type decoded")
	}
}

func TestRegisterFactValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("conflicting re-registration", func() {
		RegisterFact("test", (*otherFact)(nil))
	})
	// Same name, same type is fine (package re-init in tests).
	RegisterFact("test", (*testFact)(nil))
}
