package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a temporary module from path→contents pairs and
// returns its root directory.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for path, content := range files {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const loadGoMod = "module resched\n\ngo 1.22\n"

func TestLoadSuccessAndImports(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": loadGoMod,
		"internal/a/a.go": `package a
func A() int { return 1 }
`,
		"internal/b/b.go": `package b
import (
	"fmt"
	"resched/internal/a"
)
func B() string { return fmt.Sprint(a.A()) }
`,
	})
	pkgs, err := Load(dir, []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("Load returned %d packages, want 2", len(pkgs))
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	b := byPath["resched/internal/b"]
	if b == nil {
		t.Fatalf("package b not loaded: %v", pkgs)
	}
	// Imports must hold the source-checked module dependency and not
	// the export-data stdlib ones.
	if len(b.Imports) != 1 || b.Imports[0] != byPath["resched/internal/a"] {
		t.Errorf("b.Imports = %v, want exactly the source-checked a", b.Imports)
	}
	if len(byPath["resched/internal/a"].Imports) != 0 {
		t.Errorf("leaf package has Imports: %v", byPath["resched/internal/a"].Imports)
	}
}

func TestLoadMissingPackage(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  loadGoMod,
		"a/a.go":  "package a\n",
		"go.work": "", // ignored; just another non-Go file
	})
	if _, err := Load(dir, []string{"./nosuchdir"}); err == nil {
		t.Errorf("Load of a missing package succeeded")
	}
}

func TestLoadNoPackagesMatched(t *testing.T) {
	// `go list` exits zero for an existing directory that contains no
	// Go files; Load must not silently return an empty analysis set.
	dir := writeModule(t, map[string]string{
		"go.mod":            loadGoMod,
		"empty/placeholder": "not go\n",
	})
	_, err := Load(dir, []string{"./empty/..."})
	if err == nil {
		t.Fatalf("Load with zero matching packages succeeded")
	}
	if !strings.Contains(err.Error(), "no Go packages matched") {
		t.Errorf("error does not name the zero-match condition: %v", err)
	}
}

func TestLoadBrokenImport(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": loadGoMod,
		"a/a.go": `package a
import "resched/nonexistent"
var _ = nonexistent.X
`,
	})
	if _, err := Load(dir, []string{"./..."}); err == nil {
		t.Errorf("Load of a package with a broken import succeeded")
	}
}

func TestLoadTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": loadGoMod,
		"a/a.go": `package a
func A() int { return "not an int" }
`,
	})
	_, err := Load(dir, []string{"./..."})
	if err == nil {
		t.Fatalf("Load of an ill-typed package succeeded")
	}
	// The error may surface from `go list -export` (which compiles) or
	// from our own type-check; either way it must carry the position.
	if !strings.Contains(err.Error(), "a.go:2") {
		t.Errorf("error does not point at the ill-typed line: %v", err)
	}
}

func TestLoadOutsideModule(t *testing.T) {
	// A directory with no go.mod: `go list ./...` fails outright.
	dir := t.TempDir()
	if _, err := Load(dir, []string{"./..."}); err == nil {
		t.Errorf("Load outside any module succeeded")
	}
}
