package lockhold_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/lockhold"
)

func TestLockHold(t *testing.T) {
	// resbook is listed first so its MayBlock facts are exported
	// before the lifecycle and server fixtures (its importers) are
	// analyzed; the framework orders by imports either way.
	analysistest.Run(t, "testdata", lockhold.Analyzer,
		"resched/internal/resbook", "resched/internal/lifecycle", "resched/internal/server")
}
