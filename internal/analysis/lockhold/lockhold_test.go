package lockhold_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/lockhold"
)

func TestLockHold(t *testing.T) {
	// resbook is listed first so its MayBlock facts are exported
	// before the server fixture (its importer) is analyzed; the
	// framework orders by imports either way.
	analysistest.Run(t, "testdata", lockhold.Analyzer,
		"resched/internal/resbook", "resched/internal/server")
}
