package server

import (
	"sync"
	"time"

	"resched/internal/lifecycle"
	"resched/internal/resbook"
)

type metrics struct {
	mu    sync.Mutex
	ring  []float64
	extra sync.Mutex
}

// Negative: copy-only critical section, the serving pattern.
func (m *metrics) observe(v float64) {
	m.mu.Lock()
	m.ring = append(m.ring, v)
	m.mu.Unlock()
}

// Positive: sleeping under the lock.
func (m *metrics) flushSlowly() {
	m.mu.Lock()
	defer m.mu.Unlock()
	time.Sleep(time.Millisecond) // want "call to time.Sleep may block while mu is held"
}

// Positive: nested lock acquisition in the serving path.
func (m *metrics) nested() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.extra.Lock() // want "acquiring extra while mu is held nests locks"
	m.extra.Unlock()
}

// Positive: re-entering the same mutex deadlocks outright.
func (m *metrics) reentry() {
	m.mu.Lock()
	m.mu.Lock() // want "re-entrant acquisition of mu deadlocks"
	m.mu.Unlock()
	m.mu.Unlock()
}

// Positive: a select without default waits under the lock.
func (m *metrics) waitForSignal(ch chan struct{}) {
	m.mu.Lock()
	defer m.mu.Unlock()
	select { // want "select without default may block while mu is held"
	case <-ch:
	}
}

// Negative: a select with a default cannot block.
func (m *metrics) pollSignal(ch chan struct{}) {
	m.mu.Lock()
	defer m.mu.Unlock()
	select {
	case <-ch:
	default:
	}
}

// Positive, cross-package: Transact re-enters the book's lock; the
// MayBlock fact was exported while analyzing resbook.
func commitUnderLock(m *metrics, b *resbook.Book) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return b.Transact(func() error { return nil }) // want "call to Transact may block while mu is held"
}

// Negative, cross-package: Len is pure, no fact.
func lenUnderLock(m *metrics, b *resbook.Book) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return b.Len()
}

// Negative: the blocking call happens before the lock is taken.
func blockThenLock(m *metrics, b *resbook.Book) int {
	v := b.Version()
	m.mu.Lock()
	defer m.mu.Unlock()
	return v
}

// Negative: suppressed with a directive.
func ignoredSleep(m *metrics) {
	m.mu.Lock()
	defer m.mu.Unlock()
	time.Sleep(time.Microsecond) //reschedvet:ignore lockhold calibration needs the pause
}

// Positive, cross-package: the lifecycle engine's Tick transacts
// against the book; its MayBlock fact was exported while analyzing
// the lifecycle fixture, so driving the engine under a server lock is
// flagged.
func tickEngineUnderLock(m *metrics, e *lifecycle.Engine) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return e.Tick() // want "call to Tick may block while mu is held"
}
