// Package lifecycle is a fixture mirror of the online engine: a
// mutex-guarded job table next to a reservation book whose Transact
// blocks. The engine discipline under test: the engine mutex is never
// held across a book operation, and Tick — the engine's advance —
// exports a MayBlock fact its callers see cross-package.
package lifecycle

import (
	"sync"

	"resched/internal/resbook"
)

type Engine struct {
	mu    sync.Mutex
	book  *resbook.Book
	queue []string
	now   int
}

// Tick advances the engine: it transacts against the book, so the
// MayBlock fact must propagate to everything that calls Tick.
func (e *Engine) Tick() error {
	return e.book.Transact(func() error { return nil })
}

// Positive: transacting while the engine mutex is held — the
// cross-package MayBlock fact from the resbook fixture fires.
func (e *Engine) placeUnderLock() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.book.Transact(func() error { return nil }) // want "call to Transact may block while mu is held"
}

// Positive: the engine's own advance is just as blocking as the book
// call it wraps; in-package calls see the inferred fact too.
func (e *Engine) tickUnderLock() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.Tick() // want "call to Tick may block while mu is held"
}

// Positive: waiting for a wake-up signal inside the critical section.
func (e *Engine) waitForWake(wake chan struct{}) {
	e.mu.Lock()
	defer e.mu.Unlock()
	<-wake // want "channel receive may block while mu is held"
}

// Negative: the real scheduling-pass discipline — copy the queue under
// the lock, release it, then transact.
func (e *Engine) schedulePass() error {
	e.mu.Lock()
	ids := append([]string(nil), e.queue...)
	e.mu.Unlock()
	_ = ids
	return e.book.Transact(func() error { return nil })
}

// Negative: a non-blocking wake under the lock — select with default
// cannot wait.
func (e *Engine) wakeNonBlocking(wake chan struct{}) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now++
	select {
	case wake <- struct{}{}:
	default:
	}
}

// Negative: pure bookkeeping under the lock.
func (e *Engine) enqueue(id string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.queue = append(e.queue, id)
}

// Positive: a same-block defer pairs with the acquire, so the report
// says the critical section runs to return — the reader should not
// have to hunt for a missing Unlock.
func (e *Engine) deferNoted() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.now++
	return e.Tick() // want "call to Tick may block while mu is held until return .deferred unlock."
}

// Negative: an explicit Unlock/Lock pair inside a deferred section
// models the temporary release exactly — the window between them is
// lock-free, blocks on nothing held, and needs no ignore line. The
// re-acquire balances the deferred unlock.
func (e *Engine) unlockRelock() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := append([]string(nil), e.queue...)
	e.mu.Unlock()
	err := e.book.Transact(func() error { return nil })
	e.mu.Lock()
	e.queue = ids[:0]
	return err
}

// Negative: a conditional critical section whose defer releases on the
// early-return path; the blocking call past the join is only reached
// lock-free.
func (e *Engine) conditionalSection(fast bool) error {
	if fast {
		e.mu.Lock()
		defer e.mu.Unlock()
		e.now++
		return nil
	}
	return e.book.Transact(func() error { return nil })
}
