// Package resbook is a fixture mirror of the reservation book: a
// lock-guarded struct whose locking methods must export MayBlock facts
// to the server fixture, plus in-package critical sections with and
// without violations.
package resbook

import "sync"

type Book struct {
	mu      sync.RWMutex
	version int
}

// Version acquires the read lock: callers holding any lock must not
// call it (nested locking / re-entry).
func (b *Book) Version() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.version
}

// Transact re-enters the lock through Version; the MayBlock fact must
// propagate through the static call.
func (b *Book) Transact(fn func() error) error {
	if err := fn(); err != nil {
		return err
	}
	b.version = b.Version() + 1
	return nil
}

// Len is pure: no fact, safe to call under a lock.
func (b *Book) Len() int {
	return 4
}

// Positive: waiting on a channel inside the critical section.
func (b *Book) WaitUnderLock(ch chan int) int {
	b.mu.Lock()
	v := <-ch // want "channel receive may block while mu is held"
	b.mu.Unlock()
	return v
}

// Positive: the deferred unlock keeps the lock held to the end.
func (b *Book) SendUnderDeferredUnlock(ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.version++
	ch <- b.version // want "channel send may block while mu is held"
}

// Negative: the channel op happens after the explicit unlock.
func (b *Book) SendAfterUnlock(ch chan int) {
	b.mu.Lock()
	b.version++
	v := b.version
	b.mu.Unlock()
	ch <- v
}

// Negative: straight-line bookkeeping only.
func (b *Book) Bump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.version++
}

// Negative: the blocking work happens on a goroutine's own stack.
func (b *Book) NotifyAsync(ch chan int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v := b.version
	go func() {
		ch <- v
	}()
}

// Sharded mirrors the epoch-sharded book: per-shard locks acquired in
// ascending index order under the lockorder directive.
type Sharded struct {
	shards []shard
	mu     sync.Mutex
}

type shard struct {
	mu    sync.Mutex
	count int
}

// lockAll acquires every shard lock in ascending index order.
//
//reschedvet:lockorder
func (s *Sharded) lockAll() { // negative: the directive blesses the indexed acquisitions
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}

// unlockAll releases in descending order; indexed releases satisfy
// the directive's hygiene requirement too.
//
//reschedvet:lockorder
func (s *Sharded) unlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// Positive: the same loop without the directive is still a same-key
// re-entrant acquisition as far as the may-held analysis can see.
func (s *Sharded) lockAllUndeclared() {
	for i := range s.shards {
		s.shards[i].mu.Lock() // want "re-entrant acquisition of mu deadlocks"
	}
}

// Positive: the directive only covers indexed acquisitions — taking a
// plain lock while the shard span is held is still nested locking.
//
//reschedvet:lockorder
func (s *Sharded) lockAllThenBook(b *Book) {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	b.mu.Lock() // want "acquiring mu while mu is held nests locks in the serving path"
	b.mu.Unlock()
}

// Negative: the stale-directive hygiene (a lockorder declaration with
// no indexed lock operation) is lockcycle's report now, not lockhold's.
//
//reschedvet:lockorder
func (s *Sharded) Declared() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.shards {
		s.shards[i].count++
	}
}
