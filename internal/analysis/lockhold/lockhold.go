// Package lockhold enforces the book's locking contract from PR 1:
// the reservation book's RWMutex (and every other lock in the serving
// path) is only ever held across straight-line bookkeeping — never
// across an operation that can wait. A blocking call under b.mu turns
// the book's readers-writer lock into a convoy and, in the worst case
// (re-entering a locking method of the same receiver), a deadlock the
// race detector cannot see.
//
// The analyzer computes, per function, a forward may-held analysis
// over the CFG: a lock is held at a node if any path from an acquire
// reaches it without the matching release. Deferred unlocks keep the
// lock held to the end of the function, which is exactly their
// semantics — and a `defer mu.Unlock()` paired with its acquire in
// the same statement block is recognized explicitly, so reports
// under such a section say the lock is held until return rather than
// leaving the reader to wonder where the release went. An explicit
// Unlock/Lock pair inside a deferred section models the temporary
// release exactly: the window between them is lock-free and needs no
// //reschedvet:ignore. At every node where some lock is held, these
// operations are flagged:
//
//   - channel sends, receives, and ranges; selects without a default;
//   - time.Sleep, sync.WaitGroup.Wait, sync.Cond.Wait;
//   - acquiring any mutex (same key: re-entry deadlock; different
//     key: nested locking under the serving lock);
//   - calls into net and net/http;
//   - calls to any function whose MayBlock fact says it (or anything
//     it statically calls) does one of the above. Facts cross package
//     boundaries, so resbook.(*Book).Transact — which re-enters the
//     lock — is flagged when called under a lock in internal/server.
//
// Goroutine launches are not blocking at the launch site and their
// bodies run on their own stacks, so `go` statements are ignored both
// here and in fact inference.
//
// # The lockorder directive
//
// The sharded reservation book acquires several locks of the same
// field — b.shards[i].mu for ascending i — which the nested-lock rule
// would otherwise flag as a same-key re-entrant deadlock. A function
// whose doc comment carries
//
//	//reschedvet:lockorder
//
// declares that it participates in the book's global lock order:
// every multi-lock acquisition walks shard indices strictly upward,
// so overlapping spans cannot deadlock. Under the directive,
// re-entrant and nested reports are suppressed only for lock
// operations whose receiver is indexed (contains an IndexExpr);
// acquiring a plain, non-indexed lock still gets the full check,
// because the directive documents an indexed protocol, not a blanket
// waiver. Since PR 9 the directive itself is owned by the lockcycle
// analyzer, which folds the declared family into the global lock-order
// graph, exports the LockOrdered fact, and reports stale declarations;
// lockhold only honors the directive for suppression.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"resched/internal/analysis"
)

// CheckedPackages get the critical-section check. MayBlock facts are
// inferred module-wide regardless, so serving packages see the
// blocking behavior of everything they import.
var CheckedPackages = map[string]bool{
	"resched/internal/resbook":      true,
	"resched/internal/server":       true,
	"resched/internal/lifecycle":    true,
	"resched/internal/coalesce":     true,
	"resched/internal/multicluster": true,
}

// MayBlock marks a function that can wait: it performs a blocking
// operation directly or statically calls something that does.
type MayBlock struct{}

func (*MayBlock) AFact() {}

func init() {
	analysis.RegisterFact("lockhold.MayBlock", (*MayBlock)(nil))
}

// Analyzer flags blocking operations performed while a lock is held.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "no blocking operation (channel op, sleep, Wait, nested lock, net I/O, or a call " +
		"that may block) while a sync lock is held in the serving path; indexed same-field " +
		"acquisitions are allowed under a //reschedvet:lockorder directive",
	Run: run,
}

func run(pass *analysis.Pass) error {
	mayBlock := inferMayBlock(pass)
	ordered := lockOrderedDecls(pass)
	if !CheckedPackages[pass.Pkg.Path()] {
		return nil
	}
	decls, _ := analysis.FuncDecls(pass.Files, pass.TypesInfo)
	for _, fd := range decls {
		if pass.InTestFile(fd.Pos()) {
			continue
		}
		checkSections(pass, fd, mayBlock, ordered[fd])
	}
	return nil
}

// lockOrderedDecls collects the functions declaring the lockorder
// directive, for indexed-acquisition suppression. The directive's fact
// export and staleness hygiene live in lockcycle, which owns the
// global lock order.
func lockOrderedDecls(pass *analysis.Pass) map[*ast.FuncDecl]bool {
	ordered := map[*ast.FuncDecl]bool{}
	decls, _ := analysis.FuncDecls(pass.Files, pass.TypesInfo)
	for _, fd := range decls {
		if analysis.HasDirective(fd.Doc, analysis.LockOrderDirective) {
			ordered[fd] = true
		}
	}
	return ordered
}

// inferMayBlock computes which declared functions may block and
// exports the result as facts; the returned set also covers this
// package's own declarations for intra-package calls.
func inferMayBlock(pass *analysis.Pass) map[*types.Func]bool {
	info := pass.TypesInfo
	_, byObj := analysis.FuncDecls(pass.Files, info)
	graph := analysis.PackageCallGraph(pass.Files, info, true)
	direct := func(fn *types.Func) bool {
		if fd, ok := byObj[fn]; ok {
			return directBlocking(info, fd.Body)
		}
		// Declared elsewhere: stdlib blocking entry points, or an
		// imported MayBlock fact from an already-analyzed module
		// package.
		if stdlibBlocking(fn) {
			return true
		}
		return pass.ImportObjectFact(fn, &MayBlock{})
	}
	res := analysis.Propagate(graph, direct)
	if analysis.InModule(pass.Pkg.Path()) {
		for fn, blocks := range res {
			if blocks {
				pass.ExportObjectFact(fn, &MayBlock{})
			}
		}
	}
	return res
}

// stdlibBlocking reports whether a function outside the module is a
// known blocking entry point: everything in net and net/http, plus the
// canonical waiters in time and sync. Acquiring a lock counts — that
// is the whole point of the nested-lock rule.
func stdlibBlocking(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "net", "net/http":
		return true
	case "time":
		return fn.Name() == "Sleep"
	case "sync":
		switch fn.Name() {
		case "Wait", "Lock", "RLock":
			return true
		}
	}
	return false
}

// directBlocking reports whether body performs a blocking operation
// itself (not through calls to module functions — the call graph
// handles those). Goroutine bodies are skipped.
func directBlocking(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.SelectStmt:
			// The select is the blocking point, not its comm
			// statements: with a default it cannot block at all, so
			// only the clause bodies are scanned further.
			if !selectHasDefault(n) {
				found = true
				return false
			}
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, s := range cc.Body {
						if directBlocking(info, s) {
							found = true
						}
					}
				}
			}
			return false
		case *ast.CallExpr:
			if fn := analysis.Callee(info, n); fn != nil && stdlibBlocking(fn) {
				found = true
			}
		}
		return !found
	})
	return found
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// checkSections runs the may-held analysis over fd and reports
// blocking operations under a lock. ordered indicates a lockorder
// directive on fd: indexed same-field acquisitions are then exempt
// from the re-entrant and nested-lock reports.
func checkSections(pass *analysis.Pass, fd *ast.FuncDecl, mayBlock map[*types.Func]bool, ordered bool) {
	info := pass.TypesInfo
	cfg := analysis.NewCFG(fd.Body)
	n := len(cfg.Blocks)
	if n == 0 {
		return
	}
	deferred := deferReleased(info, fd.Body)

	// Comm statements of selects live in their clause blocks, but the
	// select marker is where blocking is judged (a select with a
	// default cannot block); exempt them from individual send/receive
	// reports.
	comms := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(nd ast.Node) bool {
		if sel, ok := nd.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms[cc.Comm] = true
				}
			}
		}
		return true
	})

	// heldIn[i] is the set of locks that may be held entering block i;
	// nil means the block is not yet reached (bottom).
	heldIn := make([]map[*types.Var]bool, n)
	heldIn[0] = map[*types.Var]bool{}
	clone := func(s map[*types.Var]bool) map[*types.Var]bool {
		c := make(map[*types.Var]bool, len(s))
		for k, v := range s {
			if v {
				c[k] = true
			}
		}
		return c
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			if heldIn[b.Index] == nil {
				continue
			}
			out := clone(heldIn[b.Index])
			for _, node := range b.Nodes {
				transferHeld(info, node, out)
			}
			for _, succ := range b.Succs {
				if heldIn[succ.Index] == nil {
					heldIn[succ.Index] = clone(out)
					changed = true
					continue
				}
				for k := range out {
					if !heldIn[succ.Index][k] {
						heldIn[succ.Index][k] = true
						changed = true
					}
				}
			}
		}
	}

	for _, b := range cfg.Blocks {
		held := clone(heldIn[b.Index]) // nil clones to empty: unreachable blocks hold nothing
		for _, node := range b.Nodes {
			if !comms[node] {
				visitHeld(pass, node, held, mayBlock, ordered, deferred)
			}
			transferHeld(info, node, held)
		}
	}
}

// deferReleased collects the locks released by a `defer mu.Unlock()`
// (or RUnlock) appearing after their acquire in the same statement
// block — the canonical critical-section idiom. Blocking reports under
// such a lock carry an explicit note that the section runs to return,
// so the diagnostic names the release the reader would otherwise hunt
// for.
func deferReleased(info *types.Info, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	scan := func(list []ast.Stmt) {
		acquired := map[*types.Var]bool{}
		for _, s := range list {
			switch s := s.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if key, acquire, _, _ := analysis.LockMethod(info, call); key != nil && acquire {
						acquired[key] = true
					}
				}
			case *ast.DeferStmt:
				if key, _, release, _ := analysis.LockMethod(info, s.Call); key != nil && release && acquired[key] {
					out[key] = true
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			scan(n.List)
		case *ast.CaseClause:
			scan(n.Body)
		case *ast.CommClause:
			scan(n.Body)
		}
		return true
	})
	return out
}

// deferNote renders the held-to-return suffix when the named lock (the
// one heldName picks) is released by a same-block deferred unlock.
func deferNote(held, deferred map[*types.Var]bool) string {
	if k := pickHeld(held); k != nil && deferred[k] {
		return " until return (deferred unlock)"
	}
	return ""
}

// transferHeld applies a node's lock acquisitions and releases to the
// held set. Deferred statements are skipped: a deferred unlock keeps
// the lock held through the function body, which is its meaning.
func transferHeld(info *types.Info, node ast.Node, held map[*types.Var]bool) {
	analysis.WalkBlockNode(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.DeferStmt); ok {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, acquire, release, _ := analysis.LockMethod(info, call); key != nil {
			if acquire {
				held[key] = true
			}
			if release {
				delete(held, key)
			}
		}
		return true
	})
}

// pickHeld chooses the representative lock for diagnostics: the
// alphabetically first, so messages are deterministic when several are
// held.
func pickHeld(held map[*types.Var]bool) *types.Var {
	var best *types.Var
	for k := range held {
		if best == nil || k.Name() < best.Name() {
			best = k
		}
	}
	return best
}

// heldName renders the held set for diagnostics (one lock).
func heldName(held map[*types.Var]bool) string {
	if k := pickHeld(held); k != nil {
		return k.Name()
	}
	return "lock"
}

// visitHeld reports blocking operations in node while held is
// non-empty. ordered exempts indexed acquisitions from the re-entrant
// and nested-lock reports (lockorder directive); deferred marks locks
// released by a same-block deferred unlock, which the blocking reports
// call out as held until return.
func visitHeld(pass *analysis.Pass, node ast.Node, held map[*types.Var]bool, mayBlock map[*types.Func]bool, ordered bool, deferred map[*types.Var]bool) {
	info := pass.TypesInfo
	// Track acquisitions/releases inside the node so a Lock directly
	// followed by a blocking call in the same statement list block is
	// still caught, and the acquiring call itself is not.
	local := make(map[*types.Var]bool, len(held))
	for k := range held {
		local[k] = true
	}
	analysis.WalkBlockNode(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.SendStmt:
			if len(local) > 0 {
				pass.Reportf(n.Pos(), "channel send may block while %s is held%s", heldName(local), deferNote(local, deferred))
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(local) > 0 {
				pass.Reportf(n.Pos(), "channel receive may block while %s is held%s", heldName(local), deferNote(local, deferred))
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil && len(local) > 0 {
				if _, ok := t.Underlying().(*types.Chan); ok {
					pass.Reportf(n.Pos(), "ranging over a channel may block while %s is held%s", heldName(local), deferNote(local, deferred))
				}
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) && len(local) > 0 {
				pass.Reportf(n.Pos(), "select without default may block while %s is held%s", heldName(local), deferNote(local, deferred))
			}
		case *ast.CallExpr:
			key, acquire, release, _ := analysis.LockMethod(info, n)
			if key != nil {
				if acquire {
					if ordered && analysis.IndexedLockOp(info, n) {
						// Declared lock-ordered and acquiring through
						// an index: the ascending-order protocol, not
						// a deadlock.
					} else if local[key] {
						pass.Reportf(n.Pos(), "re-entrant acquisition of %s deadlocks", key.Name())
					} else if len(local) > 0 {
						pass.Reportf(n.Pos(), "acquiring %s while %s is held nests locks in the serving path", key.Name(), heldName(local))
					}
					local[key] = true
				}
				if release {
					delete(local, key)
				}
				return true
			}
			if len(local) == 0 {
				return true
			}
			fn := analysis.Callee(info, n)
			if fn == nil {
				return true
			}
			if stdlibBlocking(fn) {
				pass.Reportf(n.Pos(), "call to %s.%s may block while %s is held%s",
					fn.Pkg().Name(), fn.Name(), heldName(local), deferNote(local, deferred))
				return true
			}
			if mayBlock[fn] {
				pass.Reportf(n.Pos(), "call to %s may block while %s is held%s", fn.Name(), heldName(local), deferNote(local, deferred))
				return true
			}
			var mb MayBlock
			if pass.ImportObjectFact(fn, &mb) {
				pass.Reportf(n.Pos(), "call to %s may block while %s is held%s (fact from %s)",
					fn.Name(), heldName(local), deferNote(local, deferred), fn.Pkg().Path())
			}
		}
		return true
	})
}
