// Package ctxflow enforces the cancellation discipline from PR 1:
// every scheduling computation below the HTTP handler runs under the
// request's context, so a per-request timeout can actually bound the
// latency of a single scheduling request. Two ways to break that
// chain are flagged in the serving packages: minting a fresh root
// context (context.Background/context.TODO), and calling a scheduler
// entry point that has a *Ctx sibling — the non-Ctx form wraps
// context.Background internally and exists for the batch CLIs.
package ctxflow

import (
	"go/types"
	"strings"

	"resched/internal/analysis"
	"resched/internal/analysis/checkedentry"
)

// corePackage is where the scheduling loops and their *Ctx siblings
// live.
const corePackage = "resched/internal/core"

// Analyzer flags context.Background/context.TODO and non-Ctx
// scheduling entry points inside the serving packages (the same set
// checkedentry guards).
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "serving code must thread the request context: no context.Background/TODO below " +
		"the handler, and scheduling loops with a *Ctx variant must be called through it",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !checkedentry.ServingPackages[pass.Pkg.Path()] {
		return nil
	}
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || pass.InTestFile(id.Pos()) {
			continue
		}
		switch fn.Pkg().Path() {
		case "context":
			if fn.Name() == "Background" || fn.Name() == "TODO" {
				pass.Reportf(id.Pos(),
					"context.%s severs the request's cancellation chain; thread the request context instead",
					fn.Name())
			}
		case corePackage:
			if strings.HasSuffix(fn.Name(), "Ctx") {
				continue
			}
			sibling := fn.Name() + "Ctx"
			if named := analysis.ReceiverNamed(fn); named != nil && analysis.HasMethod(named, sibling) {
				pass.Reportf(id.Pos(),
					"%s wraps context.Background; serving code must call %s with the request context",
					fn.Name(), sibling)
			}
		}
	}
	return nil
}
