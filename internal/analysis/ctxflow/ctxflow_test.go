package ctxflow_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer,
		"resched/internal/server", "resched/internal/core")
}
