package server

import "context"

// Tests may mint root contexts.
func testCtx() context.Context { return context.Background() }
