// Package server is a fixture consumer inside the serving set.
package server

import (
	"context"

	"resched/internal/core"
)

func handle(ctx context.Context, sch *core.Scheduler) error {
	bg := context.Background() // want "severs the request's cancellation chain"
	_ = bg
	if err := sch.Turnaround(1); err != nil { // want "must call TurnaroundCtx"
		return err
	}
	if err := sch.Validate(); err != nil {
		return err
	}
	return sch.TurnaroundCtx(ctx, 1)
}

func todoSuppressed() context.Context {
	//reschedvet:ignore ctxflow fixture exercises the suppression path
	return context.TODO()
}

func todoFlagged() context.Context {
	return context.TODO() // want "context.TODO severs"
}
