// Package core is a fixture stub with *Ctx scheduling-loop siblings.
// It is outside the serving set, so its own context.Background wrapper
// is legal — that is exactly the batch-CLI escape hatch.
package core

import "context"

// Scheduler mirrors the real scheduler.
type Scheduler struct{}

// Turnaround wraps context.Background for the batch CLIs.
func (s *Scheduler) Turnaround(env int) error {
	return s.TurnaroundCtx(context.Background(), env)
}

// TurnaroundCtx threads cancellation.
func (s *Scheduler) TurnaroundCtx(ctx context.Context, env int) error { return ctx.Err() }

// Validate has no Ctx sibling and stays legal everywhere.
func (s *Scheduler) Validate() error { return nil }
