package lockcycle_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/lockcycle"
)

func TestLockCycle(t *testing.T) {
	// resbook first so its Contract/Acquires/LockEdges facts are in
	// place when the server fixture (its importer) closes the cycle;
	// the framework orders by imports either way. lifecycle and sim are
	// independent: the pure-negative consistent order and the
	// in-package AB/BA cycle.
	analysistest.Run(t, "testdata", lockcycle.Analyzer,
		"resched/internal/resbook",
		"resched/internal/server",
		"resched/internal/lifecycle",
		"resched/internal/sim")
}
