// Package lockcycle derives the module's global lock-order graph and
// reports every cycle in it as a potential deadlock. Where lockhold
// asks "is anything blocking done *under* a lock, one function at a
// time", lockcycle asks the whole-module question the multi-node
// roadmap needs answered: do all code paths agree on one acquisition
// order for the module's locks?
//
// # Edge derivation
//
// Per function, a forward may-held lockset analysis over the PR 4 CFG
// (the same machinery guardedby and lockhold run, in lockhold's may
// polarity) records an edge A -> B whenever lock B is acquired while A
// may be held. Lock identity is the shared analysis.VarKey: a mutex
// field or package-level variable, stable module-wide because one
// loader type-checks every package of a run. Three sources feed the
// held set and the edges:
//
//   - direct sync calls (mu.Lock/RLock/Unlock/RUnlock);
//   - the guardedby lock contracts: //reschedvet:holds seeds a
//     function's entry lockset, //reschedvet:acquires and :releases at
//     a call site mutate the caller's held set exactly as guardedby
//     models them (re-parsed here because fact sets are per-analyzer);
//   - transitive acquisitions: each function exports an Acquires fact
//     — every lock it may take, directly or through static calls, with
//     one witness call chain — so holding A while calling something
//     that three frames down locks B still records A -> B.
//
// Same-key edges are not recorded: re-entry on one key is lockhold's
// report, and the sharded book's lockShards family — several locks of
// the same field, acquired through ascending indices under a
// //reschedvet:lockorder directive — is exactly the sanctioned
// intra-family edge the global order allows. The lockorder directive
// itself is owned here since PR 9 (migrated from lockhold): declaring
// functions export a LockOrdered fact, and a declaration with no
// indexed lock operation in its body is reported as stale.
//
// # Whole-module composition
//
// Every function's edges are exported as LockEdges facts. Packages are
// analyzed in import order sharing one fact set, so when a package
// runs, Pass.AllObjectFacts holds the union of its own edges and every
// transitive dependency's — the global graph as visible from this
// package. For each edge this package contributes whose reverse
// reachability closes a cycle, one diagnostic is emitted at the local
// acquisition site, with a deterministic witness: the cycle's node
// sequence plus, per edge, the function, position, and call chain that
// realize it (for a two-lock cycle, the classic two chains). Each
// cycle is reported once per package contributing an edge to it,
// canonicalized by rotating the node sequence to its smallest key.
package lockcycle

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"resched/internal/analysis"
)

// Acquires lists the locks a function may take, directly or through
// its static callees, each with one deterministic witness call chain.
type Acquires struct {
	Locks []AcquiredLock
}

// AcquiredLock is one may-acquired lock: its VarKey, the chain of
// callees (ObjectKeys) walked from the exporting function to the
// acquiring one (empty when acquired directly), and the acquisition
// position.
type AcquiredLock struct {
	Lock string
	Path []string `json:",omitempty"`
	Pos  string
}

func (*Acquires) AFact() {}

// LockEdges carries the "acquire To while holding From" edges one
// function's body realizes, the unit the global graph composes.
type LockEdges struct {
	Edges []Edge
}

// Edge is one lock-order edge with its witness: the function
// (ObjectKey) and position realizing it, plus the call chain when the
// acquisition happens through callees.
type Edge struct {
	From string
	To   string
	Fn   string
	Pos  string
	Via  []string `json:",omitempty"`
}

func (*LockEdges) AFact() {}

// LockOrdered marks a function declared //reschedvet:lockorder: it
// acquires same-field locks in ascending index order, the sanctioned
// intra-family edge of the global lock order. (Migrated from lockhold
// in PR 9.)
type LockOrdered struct{}

func (*LockOrdered) AFact() {}

// Contract mirrors a function's acquires/releases lock contract in
// this analyzer's fact space (fact sets are per-analyzer, so guardedby's
// LockContract facts are not visible here), with mutex specs resolved
// to VarKeys at the declaring package.
type Contract struct {
	Acquires []string `json:",omitempty"`
	Releases []string `json:",omitempty"`
}

func (*Contract) AFact() {}

func init() {
	analysis.RegisterFact("lockcycle.Acquires", (*Acquires)(nil))
	analysis.RegisterFact("lockcycle.LockEdges", (*LockEdges)(nil))
	analysis.RegisterFact("lockcycle.LockOrdered", (*LockOrdered)(nil))
	analysis.RegisterFact("lockcycle.Contract", (*Contract)(nil))
}

// Analyzer reports cycles in the module's global lock-order graph.
var Analyzer = &analysis.Analyzer{
	Name: "lockcycle",
	Doc: "the module's locks are acquired in one consistent global order: every \"acquire B while " +
		"holding A\" edge (direct, via a lock contract, or through static calls) joins a " +
		"whole-module lock-order graph and any cycle is a potential deadlock, reported with the " +
		"call chains realizing it; //reschedvet:lockorder sanctions ascending indexed families",
	Run: run,
}

// contract is the resolved, key-level form of a lock contract.
type contract struct {
	holds, acquires, releases []string
}

// acqInfo is one transitively acquired lock: the callee chain walked
// to reach the acquisition and its position.
type acqInfo struct {
	path []string
	pos  string
}

// runner carries one package pass's state.
type runner struct {
	pass      *analysis.Pass
	info      *types.Info
	decls     []*ast.FuncDecl
	byName    map[*ast.FuncDecl]*types.Func
	contracts map[*types.Func]*contract
	acq       map[*types.Func]map[string]acqInfo

	// edgesByFn collects this package's edges for fact export; local
	// keeps the earliest in-package site per (From, To) pair for cycle
	// reporting.
	edgesByFn map[*types.Func][]Edge
	local     map[[2]string]token.Pos
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	decls, _ := analysis.FuncDecls(pass.Files, info)
	r := &runner{
		pass:      pass,
		info:      info,
		decls:     decls,
		byName:    map[*ast.FuncDecl]*types.Func{},
		contracts: map[*types.Func]*contract{},
		acq:       map[*types.Func]map[string]acqInfo{},
		edgesByFn: map[*types.Func][]Edge{},
		local:     map[[2]string]token.Pos{},
	}
	for _, fd := range decls {
		if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
			r.byName[fd] = fn
		}
	}
	r.lockOrderHygiene()
	r.collectContracts()
	r.inferAcquires()
	for _, fd := range decls {
		if fn := r.byName[fd]; fn != nil && !pass.InTestFile(fd.Pos()) {
			r.collectEdges(fd, fn)
		}
	}
	r.exportEdges()
	r.reportCycles()
	return nil
}

// lockOrderHygiene owns the lockorder directive: fact export plus the
// staleness report migrated from lockhold — a declaration must be
// backed by at least one indexed lock operation.
func (r *runner) lockOrderHygiene() {
	for _, fd := range r.decls {
		if !analysis.HasDirective(fd.Doc, analysis.LockOrderDirective) {
			continue
		}
		if !analysis.HasIndexedLockOp(r.info, fd.Body) {
			r.pass.Reportf(fd.Pos(), "lockorder directive on %s but no indexed lock operation in its body",
				fd.Name.Name)
		}
		if fn := r.byName[fd]; fn != nil && analysis.InModule(r.pass.Pkg.Path()) {
			r.pass.ExportObjectFact(fn, &LockOrdered{})
		}
	}
}

// collectContracts parses this package's lock-contract directives into
// key form and exports the acquire/release halves (holds only seeds
// the declaring function's own entry set; enforcing it at call sites
// is guardedby's job). Validation reports also stay with guardedby —
// the specs are resolved silently here.
func (r *runner) collectContracts() {
	resolve := func(fn *types.Func, specs []string) []string {
		var keys []string
		for _, s := range specs {
			if v := analysis.ResolveMutexSpec(r.pass.Pkg, fn, s); v != nil {
				if k := analysis.VarKey(v); k != "" {
					keys = append(keys, k)
				}
			}
		}
		return keys
	}
	for _, fd := range r.decls {
		spec, ok := analysis.ParseLockContract(fd.Doc)
		if !ok {
			continue
		}
		fn := r.byName[fd]
		if fn == nil {
			continue
		}
		c := &contract{
			holds:    resolve(fn, spec.Holds),
			acquires: resolve(fn, spec.Acquires),
			releases: resolve(fn, spec.Releases),
		}
		r.contracts[fn] = c
		if analysis.InModule(r.pass.Pkg.Path()) && len(c.acquires)+len(c.releases) > 0 {
			r.pass.ExportObjectFact(fn, &Contract{Acquires: c.acquires, Releases: c.releases})
		}
	}
}

// contractOf resolves a callee's acquire/release contract: this
// package's directives first, then the imported fact.
func (r *runner) contractOf(fn *types.Func) *contract {
	if c, ok := r.contracts[fn]; ok {
		return c
	}
	var cf Contract
	if r.pass.ImportObjectFact(fn, &cf) {
		c := &contract{acquires: cf.Acquires, releases: cf.Releases}
		r.contracts[fn] = c
		return c
	}
	r.contracts[fn] = nil
	return nil
}

// importedAcq reads a non-local callee's Acquires fact as an acqInfo
// map, or nil.
func (r *runner) importedAcq(fn *types.Func) map[string]acqInfo {
	var af Acquires
	if !r.pass.ImportObjectFact(fn, &af) {
		return nil
	}
	m := make(map[string]acqInfo, len(af.Locks))
	for _, l := range af.Locks {
		m[l.Lock] = acqInfo{path: l.Path, pos: l.Pos}
	}
	return m
}

// acqOf returns a callee's transitive acquire set, local or imported.
func (r *runner) acqOf(fn *types.Func) map[string]acqInfo {
	if set, ok := r.acq[fn]; ok {
		return set
	}
	return r.importedAcq(fn)
}

// inferAcquires computes each declared function's may-acquire set with
// witness chains: a direct layer (sync acquisitions in the body, with
// goroutine launches excluded as in lockhold, plus the immediate
// acquires contracts of callees) closed transitively over the package
// call graph, seeded with imported Acquires facts at module
// boundaries. Iteration follows source order and sorted keys, so the
// witness chain a lock ends up with is deterministic. The result is
// exported as this package's Acquires facts.
func (r *runner) inferAcquires() {
	for _, fd := range r.decls {
		fn := r.byName[fd]
		if fn == nil {
			continue
		}
		set := map[string]acqInfo{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if key, acquire, _, _ := analysis.LockMethod(r.info, call); key != nil {
				if k := analysis.VarKey(key); k != "" && acquire {
					if _, ok := set[k]; !ok {
						set[k] = acqInfo{pos: r.posStr(call.Pos())}
					}
				}
				return true
			}
			if callee := analysis.Callee(r.info, call); callee != nil {
				if c := r.contractOf(callee); c != nil {
					for _, k := range c.acquires {
						if _, ok := set[k]; !ok {
							set[k] = acqInfo{path: []string{analysis.ObjectKey(callee)}, pos: r.posStr(call.Pos())}
						}
					}
				}
			}
			return true
		})
		r.acq[fn] = set
	}

	graph := analysis.PackageCallGraph(r.pass.Files, r.info, true)
	for changed := true; changed; {
		changed = false
		for _, fd := range r.decls {
			fn := r.byName[fd]
			if fn == nil {
				continue
			}
			for _, callee := range graph[fn] {
				sub := r.acqOf(callee)
				if len(sub) == 0 {
					continue
				}
				for _, k := range sortedKeys(sub) {
					if _, ok := r.acq[fn][k]; ok {
						continue
					}
					ci := sub[k]
					r.acq[fn][k] = acqInfo{
						path: append([]string{analysis.ObjectKey(callee)}, ci.path...),
						pos:  ci.pos,
					}
					changed = true
				}
			}
		}
	}

	if !analysis.InModule(r.pass.Pkg.Path()) {
		return
	}
	for _, fd := range r.decls {
		fn := r.byName[fd]
		if fn == nil || len(r.acq[fn]) == 0 {
			continue
		}
		var af Acquires
		for _, k := range sortedKeys(r.acq[fn]) {
			ci := r.acq[fn][k]
			af.Locks = append(af.Locks, AcquiredLock{Lock: k, Path: ci.path, Pos: ci.pos})
		}
		r.pass.ExportObjectFact(fn, &af)
	}
}

// applyCall folds one call's lock effect into the held key set —
// direct sync operations and callee contracts, mirroring guardedby.
func (r *runner) applyCall(call *ast.CallExpr, held map[string]bool) {
	if key, acquire, release, _ := analysis.LockMethod(r.info, call); key != nil {
		k := analysis.VarKey(key)
		if k == "" {
			return
		}
		if acquire {
			held[k] = true
		}
		if release {
			delete(held, k)
		}
		return
	}
	callee := analysis.Callee(r.info, call)
	if callee == nil {
		return
	}
	if c := r.contractOf(callee); c != nil {
		for _, k := range c.acquires {
			held[k] = true
		}
		for _, k := range c.releases {
			delete(held, k)
		}
	}
}

// collectEdges runs the may-held analysis over one function and
// records its lock-order edges.
func (r *runner) collectEdges(fd *ast.FuncDecl, fn *types.Func) {
	cfg := analysis.NewCFG(fd.Body)
	n := len(cfg.Blocks)
	if n == 0 {
		return
	}
	entry := map[string]bool{}
	if c := r.contracts[fn]; c != nil {
		for _, k := range c.holds {
			entry[k] = true
		}
	}

	transfer := func(node ast.Node, held map[string]bool) {
		analysis.WalkBlockNode(node, func(nd ast.Node) bool {
			switch nd.(type) {
			case *ast.DeferStmt, *ast.GoStmt:
				return false
			}
			if call, ok := nd.(*ast.CallExpr); ok {
				r.applyCall(call, held)
			}
			return true
		})
	}

	// heldIn[i] is the may-held key set entering block i; nil =
	// unreached.
	heldIn := make([]map[string]bool, n)
	heldIn[0] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			if heldIn[b.Index] == nil {
				continue
			}
			out := cloneSet(heldIn[b.Index])
			for _, node := range b.Nodes {
				transfer(node, out)
			}
			for _, succ := range b.Succs {
				if heldIn[succ.Index] == nil {
					heldIn[succ.Index] = cloneSet(out)
					changed = true
					continue
				}
				for k := range out {
					if !heldIn[succ.Index][k] {
						heldIn[succ.Index][k] = true
						changed = true
					}
				}
			}
		}
	}

	fnKey := analysis.ObjectKey(fn)
	for _, b := range cfg.Blocks {
		held := cloneSet(heldIn[b.Index])
		for _, node := range b.Nodes {
			r.visitEdges(node, held, fn, fnKey)
		}
	}
}

// visitEdges walks one block node threading the held set, recording an
// edge for every acquisition (direct, contract, or transitive through
// a callee) under a different held lock.
func (r *runner) visitEdges(node ast.Node, held map[string]bool, fn *types.Func, fnKey string) {
	analysis.WalkBlockNode(node, func(nd ast.Node) bool {
		switch nd.(type) {
		case *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, acquire, release, _ := analysis.LockMethod(r.info, call); key != nil {
			k := analysis.VarKey(key)
			if k == "" {
				return true
			}
			if acquire {
				for _, h := range sortedSet(held) {
					if h != k {
						r.addEdge(fn, Edge{From: h, To: k, Fn: fnKey, Pos: r.posStr(call.Pos())}, call.Pos())
					}
				}
				held[k] = true
			}
			if release {
				delete(held, k)
			}
			return true
		}
		callee := analysis.Callee(r.info, call)
		if callee == nil {
			return true
		}
		calleeKey := analysis.ObjectKey(callee)
		if sub := r.acqOf(callee); len(sub) > 0 {
			for _, k := range sortedKeys(sub) {
				ci := sub[k]
				for _, h := range sortedSet(held) {
					if h != k {
						via := append([]string{calleeKey}, ci.path...)
						r.addEdge(fn, Edge{From: h, To: k, Fn: fnKey, Pos: r.posStr(call.Pos()), Via: via}, call.Pos())
					}
				}
			}
		}
		if c := r.contractOf(callee); c != nil {
			for _, k := range c.acquires {
				for _, h := range sortedSet(held) {
					if h != k {
						r.addEdge(fn, Edge{From: h, To: k, Fn: fnKey, Pos: r.posStr(call.Pos()), Via: []string{calleeKey}}, call.Pos())
					}
				}
				held[k] = true
			}
			for _, k := range c.releases {
				delete(held, k)
			}
		}
		return true
	})
}

// addEdge records one edge for fact export and remembers the earliest
// in-package site per (From, To) pair for cycle anchoring.
func (r *runner) addEdge(fn *types.Func, e Edge, pos token.Pos) {
	r.edgesByFn[fn] = append(r.edgesByFn[fn], e)
	p := [2]string{e.From, e.To}
	if old, ok := r.local[p]; !ok || pos < old {
		r.local[p] = pos
	}
}

// exportEdges dedups each function's edges by (From, To) — keeping the
// lexicographically smallest witness — and exports the LockEdges
// facts.
func (r *runner) exportEdges() {
	if !analysis.InModule(r.pass.Pkg.Path()) {
		return
	}
	for fn, edges := range r.edgesByFn {
		best := map[[2]string]Edge{}
		for _, e := range edges {
			p := [2]string{e.From, e.To}
			if old, ok := best[p]; !ok || lessWitness(e, old) {
				best[p] = e
			}
		}
		out := make([]Edge, 0, len(best))
		for _, e := range best {
			out = append(out, e)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].From != out[j].From {
				return out[i].From < out[j].From
			}
			return out[i].To < out[j].To
		})
		r.pass.ExportObjectFact(fn, &LockEdges{Edges: out})
	}
}

// lessWitness orders two edges of the same (From, To) pair for
// deterministic witness selection.
func lessWitness(a, b Edge) bool {
	if a.Pos != b.Pos {
		return a.Pos < b.Pos
	}
	if a.Fn != b.Fn {
		return a.Fn < b.Fn
	}
	return strings.Join(a.Via, ",") < strings.Join(b.Via, ",")
}

// reportCycles assembles the global lock-order graph from every
// LockEdges fact visible to this package (its own included) and
// reports, for each local edge whose reverse reachability closes a
// cycle, one canonical diagnostic at the local acquisition site.
func (r *runner) reportCycles() {
	if len(r.local) == 0 {
		return
	}
	best := map[[2]string]Edge{}
	adjSet := map[string]map[string]bool{}
	add := func(e Edge) {
		p := [2]string{e.From, e.To}
		if old, ok := best[p]; !ok || lessWitness(e, old) {
			best[p] = e
		}
		if adjSet[e.From] == nil {
			adjSet[e.From] = map[string]bool{}
		}
		adjSet[e.From][e.To] = true
	}
	for _, of := range r.pass.AllObjectFacts() {
		if le, ok := of.Fact.(*LockEdges); ok {
			for _, e := range le.Edges {
				add(e)
			}
		}
	}
	// Local edges again, in case this package's facts were not
	// exported (non-module paths don't export).
	for _, edges := range r.edgesByFn {
		for _, e := range edges {
			add(e)
		}
	}
	adj := make(map[string][]string, len(adjSet))
	for from, tos := range adjSet {
		adj[from] = sortedSet(tos)
	}

	type site struct {
		from, to string
		pos      token.Pos
	}
	sites := make([]site, 0, len(r.local))
	for p, pos := range r.local {
		sites = append(sites, site{p[0], p[1], pos})
	}
	sort.Slice(sites, func(i, j int) bool {
		if sites[i].pos != sites[j].pos {
			return sites[i].pos < sites[j].pos
		}
		if sites[i].from != sites[j].from {
			return sites[i].from < sites[j].from
		}
		return sites[i].to < sites[j].to
	})

	reported := map[string]bool{}
	for _, s := range sites {
		path := bfsPath(adj, s.to, s.from)
		if path == nil {
			continue
		}
		// Cycle node sequence without the closing repeat:
		// from -> to -> ... (path ends at from).
		nodes := append([]string{s.from}, path[:len(path)-1]...)
		canon := canonicalCycle(nodes)
		if reported[canon] {
			continue
		}
		reported[canon] = true
		r.pass.Reportf(s.pos, "%s", cycleMessage(nodes, best))
	}
}

// bfsPath finds the shortest path from -> ... -> to over sorted
// adjacency (deterministic), nodes inclusive, or nil.
func bfsPath(adj map[string][]string, from, to string) []string {
	parent := map[string]string{}
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if seen[v] {
				continue
			}
			seen[v] = true
			parent[v] = u
			if v == to {
				var rev []string
				for x := to; ; x = parent[x] {
					rev = append(rev, x)
					if x == from {
						break
					}
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			queue = append(queue, v)
		}
	}
	return nil
}

// canonicalCycle keys a cycle's node sequence independent of starting
// point by rotating the smallest node first.
func canonicalCycle(nodes []string) string {
	min := 0
	for i, n := range nodes {
		if n < nodes[min] {
			min = i
		}
	}
	rotated := append(append([]string{}, nodes[min:]...), nodes[:min]...)
	return strings.Join(rotated, " -> ")
}

// cycleMessage renders the cycle and, per edge, the witness chain that
// realizes it.
func cycleMessage(nodes []string, best map[[2]string]Edge) string {
	var b strings.Builder
	b.WriteString("potential deadlock: lock order cycle ")
	for _, n := range nodes {
		b.WriteString(analysis.ShortKey(n))
		b.WriteString(" -> ")
	}
	b.WriteString(analysis.ShortKey(nodes[0]))
	for i := range nodes {
		from, to := nodes[i], nodes[(i+1)%len(nodes)]
		e := best[[2]string{from, to}]
		fmt.Fprintf(&b, "; chain %d: %s (%s) acquires %s while holding %s",
			i+1, analysis.ShortKey(e.Fn), e.Pos, analysis.ShortKey(to), analysis.ShortKey(from))
		if len(e.Via) > 0 {
			short := make([]string, len(e.Via))
			for j, v := range e.Via {
				short[j] = analysis.ShortKey(v)
			}
			fmt.Fprintf(&b, " via %s", strings.Join(short, " -> "))
		}
	}
	return b.String()
}

// posStr renders a position as base-file:line, the stable fragment the
// witness facts carry.
func (r *runner) posStr(p token.Pos) string {
	pos := r.pass.Fset.Position(p)
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

func cloneSet(s map[string]bool) map[string]bool {
	c := make(map[string]bool, len(s))
	for k, v := range s {
		if v {
			c[k] = true
		}
	}
	return c
}

func sortedSet(s map[string]bool) []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys(m map[string]acqInfo) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
