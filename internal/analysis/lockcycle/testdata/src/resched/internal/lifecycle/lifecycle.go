// Package lifecycle is the negative fixture: consistent nesting order
// everywhere, plus a release-before-reacquire sequence that never
// overlaps — edges, but no cycle.
package lifecycle

import "sync"

type Engine struct {
	mu sync.Mutex
	q  []int
}

type Timer struct {
	mu sync.Mutex
	n  int
}

// tick and tock agree on Engine.mu -> Timer.mu: a lock-order edge, no
// cycle.
func (e *Engine) tick(t *Timer) {
	e.mu.Lock()
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
	e.mu.Unlock()
}

func (e *Engine) tock(t *Timer) {
	e.mu.Lock()
	defer e.mu.Unlock()
	t.mu.Lock()
	t.n--
	t.mu.Unlock()
}

// sequential releases the first lock before taking the second: the
// spans never overlap, so no edge at all.
func (e *Engine) sequential(t *Timer) {
	e.mu.Lock()
	e.q = append(e.q, 1)
	e.mu.Unlock()
	t.mu.Lock()
	t.n++
	t.mu.Unlock()
}
