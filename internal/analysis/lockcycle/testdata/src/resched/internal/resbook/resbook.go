// Package resbook is a fixture mirror of the reservation book for the
// lockcycle analyzer: a contract-managed lock span (LockBook /
// UnlockBook), an internal lock user whose Acquires fact importers
// compose, and the sharded ascending-index family the lockorder
// directive sanctions.
package resbook

import "sync"

type Book struct {
	mu      sync.Mutex
	version int
}

// LockBook opens a caller-managed critical section; the acquires
// contract is the only thing importers can see of the span.
//
//reschedvet:acquires Book.mu
func (b *Book) LockBook() {
	b.mu.Lock()
}

// UnlockBook closes it.
//
//reschedvet:releases Book.mu
func (b *Book) UnlockBook() {
	b.mu.Unlock()
}

// Touch takes and releases the lock internally; importers see it
// through the exported Acquires fact.
func (b *Book) Touch() {
	b.mu.Lock()
	b.version++
	b.mu.Unlock()
}

// Sharded mirrors the epoch-sharded book.
type Sharded struct {
	shards []shard
}

type shard struct {
	mu    sync.Mutex
	count int
}

// lockAll acquires every shard lock in ascending index order: the
// sanctioned intra-family edge, not a cycle (negative).
//
//reschedvet:lockorder
func (s *Sharded) lockAll() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
}

// unlockAll releases in descending order (negative).
//
//reschedvet:lockorder
func (s *Sharded) unlockAll() {
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
}

// Span is the exported family wrapper the server fixture uses.
func (s *Sharded) Span(fn func()) {
	s.lockAll()
	fn()
	s.unlockAll()
}

// Positive hygiene: a lockorder declaration with no indexed lock
// operation is stale documentation (migrated from lockhold).
//
//reschedvet:lockorder
func (s *Sharded) Declared() { // want "lockorder directive on Declared but no indexed lock operation in its body"
	for i := range s.shards {
		s.shards[i].count++
	}
}
