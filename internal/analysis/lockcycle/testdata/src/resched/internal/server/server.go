// Package server is the cross-package half of the lockcycle fixtures:
// the Book.mu -> Server.mu edge only exists because of resbook's
// acquires contract, and the Server.mu -> Book.mu edge only through
// resbook.Touch's exported Acquires fact — the cycle closes here, in
// the importing package, and is reported once with both chains.
package server

import (
	"sync"

	"resched/internal/resbook"
)

type Server struct {
	mu   sync.Mutex
	book *resbook.Book
	hits int
}

// lockBoth nests the server lock inside the book's contract span:
// Book.mu -> Server.mu.
func (s *Server) lockBoth() {
	s.book.LockBook()
	s.mu.Lock() // want "potential deadlock: lock order cycle resbook.Book.mu -> server.Server.mu -> resbook.Book.mu"
	s.hits++
	s.mu.Unlock()
	s.book.UnlockBook()
}

// countTouch re-enters the book under the server lock: Server.mu ->
// Book.mu, closing the cycle. The diagnostic anchors at the earlier
// edge (lockBoth), so no second report here.
func (s *Server) countTouch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.book.Touch()
}
