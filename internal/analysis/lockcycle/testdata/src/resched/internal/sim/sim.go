// Package sim holds the in-package two-lock cycle: the classic AB/BA
// deadlock, reported once at the earlier acquisition site with both
// witness chains.
package sim

import "sync"

type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "potential deadlock: lock order cycle sim.A.mu -> sim.B.mu -> sim.A.mu"
	b.n++
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba(a *A, b *B) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
}
