package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the def-use/dataflow layer over the CFG: a forward
// "taint" engine that tracks an analyzer-defined bitmask per local
// variable (snapshotmut's alias provenance, and anything else shaped
// like may-reach), and a backward liveness pass that finds dead
// definitions (errdrop's assigned-but-never-checked errors). Both are
// may-analyses: paths merge by union, so a property holds at a point
// if it holds on any path reaching it.

// Mask is an analyzer-defined taint bitmask. Zero means untainted.
type Mask uint32

// TaintSpec configures RunTaint.
type TaintSpec struct {
	Info *types.Info
	// CallMask gives the taint of a non-builtin call's results; nil
	// means calls return no taint. The state argument allows the hook
	// to consult argument masks.
	CallMask func(call *ast.CallExpr, st *TaintState) Mask
	// InitMask seeds variables that have not been assigned in the
	// function: parameters, receivers, captured and package-level
	// variables. Nil means zero.
	InitMask func(v *types.Var) Mask
}

// TaintState is the per-program-point taint environment handed to the
// visit callback.
type TaintState struct {
	spec *TaintSpec
	m    map[*types.Var]Mask
}

// VarMask returns v's current taint.
func (st *TaintState) VarMask(v *types.Var) Mask {
	if m, ok := st.m[v]; ok {
		return m
	}
	if st.spec.InitMask != nil {
		return st.spec.InitMask(v) & typeClamp(v.Type())
	}
	return 0
}

// typeClamp returns the mask-preserving filter for a type: a value
// whose type cannot carry references (no pointers, slices, maps,
// channels, interfaces, or funcs anywhere inside) cannot alias
// anything, so its taint is dropped.
func typeClamp(t types.Type) Mask {
	if RefBearing(t) {
		return ^Mask(0)
	}
	return 0
}

// RefBearing reports whether values of t can carry references to
// shared memory. Basic types, strings (immutable), and structs/arrays
// of such cannot; pointers, slices, maps, channels, interfaces, and
// funcs (closures) can, directly or via fields.
func RefBearing(t types.Type) bool {
	return refBearing(t, map[types.Type]bool{})
}

func refBearing(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false // recursive types recur only through pointers, caught earlier
	}
	seen[t] = true
	switch t := t.Underlying().(type) {
	case *types.Basic:
		return false
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Array:
		return refBearing(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if refBearing(t.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if refBearing(t.At(i).Type(), seen) {
				return true
			}
		}
		return false
	default:
		return true // unknown: assume it can alias
	}
}

// ExprMask computes the taint of an expression from the current
// state: identifiers read their variable, derivation forms (index,
// slice, selector, deref, address-of, composite literal, append)
// propagate their operands, calls defer to the CallMask hook, and
// fresh allocations (make, new, literals of basic type) are clean.
func (st *TaintState) ExprMask(e ast.Expr) Mask {
	m := st.rawMask(e)
	if m == 0 {
		return 0
	}
	if t := st.spec.Info.TypeOf(e); t != nil {
		m &= typeClamp(t)
	}
	return m
}

// BaseMask is ExprMask without the final value-copy clamp: the
// provenance of the memory an lvalue expression designates. Use it on
// store targets — for `segs[i].Free = 0` the stored-to int cannot
// itself carry references, but the store still writes memory reached
// through segs, and that provenance is what BaseMask reports.
func (st *TaintState) BaseMask(e ast.Expr) Mask {
	return st.rawMask(e)
}

func (st *TaintState) rawMask(e ast.Expr) Mask {
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := identVar(st.spec.Info, e); ok {
			return st.VarMask(v)
		}
		return 0
	case *ast.ParenExpr:
		return st.rawMask(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return st.rawMask(e.X)
		}
		return 0 // <-ch, arithmetic: value provenance unknown/fresh
	case *ast.StarExpr:
		return st.rawMask(e.X)
	case *ast.IndexExpr:
		return st.rawMask(e.X)
	case *ast.IndexListExpr:
		return st.rawMask(e.X)
	case *ast.SliceExpr:
		return st.rawMask(e.X)
	case *ast.SelectorExpr:
		// Qualified identifiers (pkg.Var) resolve like identifiers;
		// field selections derive from their operand.
		if obj, ok := st.spec.Info.Uses[e.Sel]; ok {
			if _, isPkg := st.spec.Info.Uses[rootIdent(e.X)].(*types.PkgName); isPkg {
				if v, ok := obj.(*types.Var); ok {
					return st.VarMask(v)
				}
				return 0
			}
		}
		return st.rawMask(e.X)
	case *ast.TypeAssertExpr:
		return st.rawMask(e.X)
	case *ast.CompositeLit:
		var m Mask
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			m |= st.ExprMask(elt)
		}
		return m
	case *ast.CallExpr:
		return st.callMask(e)
	default:
		return 0
	}
}

func (st *TaintState) callMask(call *ast.CallExpr) Mask {
	info := st.spec.Info
	// Conversions derive from their operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return st.rawMask(call.Args[0])
		}
		return 0
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "append":
				// The result shares the first argument's backing array
				// (when capacity suffices) and holds the appended
				// elements. An ellipsis argument contributes element
				// *copies*, so its taint is clamped by the element
				// type: append([]T(nil), s...) of value elements is a
				// clean deep copy, the idiom Clone uses.
				m := st.ExprMask(call.Args[0])
				for i, a := range call.Args[1:] {
					am := st.ExprMask(a)
					if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
						if t := st.spec.Info.TypeOf(a); t != nil {
							if sl, ok := t.Underlying().(*types.Slice); ok {
								am &= typeClamp(sl.Elem())
							}
						}
					}
					m |= am
				}
				return m
			case "min", "max":
				var m Mask
				for _, a := range call.Args {
					m |= st.ExprMask(a)
				}
				return m
			default:
				return 0 // make, new, len, cap, copy, delete, ...
			}
		}
	}
	if st.spec.CallMask != nil {
		return st.spec.CallMask(call, st)
	}
	return 0
}

// identVar resolves an identifier to the variable it defines or uses.
func identVar(info *types.Info, id *ast.Ident) (*types.Var, bool) {
	if obj := info.Defs[id]; obj != nil {
		v, ok := obj.(*types.Var)
		return v, ok
	}
	v, ok := info.Uses[id].(*types.Var)
	return v, ok
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// setVar records an assignment, clamping by the variable's type.
func (st *TaintState) setVar(v *types.Var, m Mask) {
	st.m[v] = m & typeClamp(v.Type())
}

func (st *TaintState) clone() *TaintState {
	m := make(map[*types.Var]Mask, len(st.m))
	for k, v := range st.m {
		m[k] = v
	}
	return &TaintState{spec: st.spec, m: m}
}

// merge folds other into st pointwise (union of masks). A key missing
// from a state means the variable still holds its InitMask value on
// that path, so one-sided keys union with the initial mask. Reports
// whether st changed.
func (st *TaintState) merge(other *TaintState) bool {
	changed := false
	update := func(v *types.Var, m Mask) {
		if cur, ok := st.m[v]; !ok || cur|m != cur {
			if !ok {
				m |= st.VarMask(v) // missing here = init value on this side
			} else {
				m |= cur
			}
			if !ok || m != st.m[v] {
				st.m[v] = m
				changed = true
			}
		}
	}
	for v, m := range other.m {
		update(v, m)
	}
	for v := range st.m {
		if _, ok := other.m[v]; !ok {
			update(v, other.VarMask(v)) // missing there = init value on that side
		}
	}
	return changed
}

// transfer applies the variable definitions a block node makes.
func (st *TaintState) transfer(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			// Evaluate all RHS masks first: `a, b = b, a` swaps.
			masks := make([]Mask, len(n.Rhs))
			for i, rhs := range n.Rhs {
				masks[i] = st.ExprMask(rhs)
				if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
					masks[i] |= st.ExprMask(n.Lhs[i]) // op-assign reads the old value
				}
			}
			for i, lhs := range n.Lhs {
				st.assignTo(lhs, masks[i])
			}
			return
		}
		// Tuple form: one multi-value RHS; every target receives the
		// call's mask (clamped per variable type).
		var m Mask
		if len(n.Rhs) == 1 {
			m = st.rawMask(n.Rhs[0])
		}
		for _, lhs := range n.Lhs {
			st.assignTo(lhs, m)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var m Mask
				if len(vs.Values) == len(vs.Names) {
					m = st.ExprMask(vs.Values[i])
				} else if len(vs.Values) == 1 {
					m = st.rawMask(vs.Values[0])
				}
				st.assignTo(name, m)
			}
		}
	case *ast.RangeStmt:
		m := st.ExprMask(n.X)
		if n.Key != nil {
			st.assignTo(n.Key, m)
		}
		if n.Value != nil {
			st.assignTo(n.Value, m)
		}
	}
}

// assignTo updates the state for an assignment target. Only plain
// identifiers change the environment; stores through expressions
// (v[i] = x, p.f = x) mutate memory, which the visit hooks inspect,
// not the variable binding.
func (st *TaintState) assignTo(lhs ast.Expr, m Mask) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	if v, ok := identVar(st.spec.Info, id); ok {
		st.setVar(v, m)
	}
}

// RunTaint runs the forward taint analysis to a fixed point over the
// CFG and then replays it, calling visit for every block node with the
// taint state in effect just before that node executes.
func RunTaint(cfg *CFG, spec *TaintSpec, visit func(n ast.Node, st *TaintState)) {
	n := len(cfg.Blocks)
	if n == 0 {
		return
	}
	// in[i] == nil is bottom ("no path reaches this block yet"); an
	// empty non-nil state means every variable still holds its
	// InitMask value. Only the entry starts non-bottom.
	in := make([]*TaintState, n)
	in[0] = &TaintState{spec: spec, m: map[*types.Var]Mask{}}
	// Chaotic iteration to fixpoint; block order is already roughly
	// topological (construction order), so this converges quickly.
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			if in[b.Index] == nil {
				continue
			}
			out := in[b.Index].clone()
			for _, node := range b.Nodes {
				out.transfer(node)
			}
			for _, succ := range b.Succs {
				if in[succ.Index] == nil {
					in[succ.Index] = out.clone()
					changed = true
				} else if in[succ.Index].merge(out) {
					changed = true
				}
			}
		}
	}
	if visit == nil {
		return
	}
	for _, b := range cfg.Blocks {
		st := in[b.Index]
		if st == nil {
			st = &TaintState{spec: spec, m: map[*types.Var]Mask{}} // unreachable block
		} else {
			st = st.clone()
		}
		for _, node := range b.Nodes {
			visit(node, st)
			st.transfer(node)
		}
	}
}

// DeadDef is a definition whose value can never be read: every path
// from the assignment reaches a re-definition or function exit without
// a use.
type DeadDef struct {
	Ident *ast.Ident
	Var   *types.Var
	Rhs   ast.Expr
}

// DeadDefs runs a backward liveness analysis over the CFG and returns
// the dead definitions of variables for which track returns true,
// sorted by position. Variables captured by any function literal are
// never reported (the closure may read them at an arbitrary later
// time, e.g. from a defer).
func DeadDefs(cfg *CFG, info *types.Info, track func(v *types.Var) bool) []DeadDef {
	n := len(cfg.Blocks)
	if n == 0 {
		return nil
	}
	captured := capturedVars(cfg, info)

	liveIn := make([]map[*types.Var]bool, n)
	for i := range liveIn {
		liveIn[i] = map[*types.Var]bool{}
	}
	process := func(b *Block, report func(DeadDef)) map[*types.Var]bool {
		live := map[*types.Var]bool{}
		for _, succ := range b.Succs {
			for v := range liveIn[succ.Index] {
				live[v] = true
			}
		}
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			defs, uses := defsUses(b.Nodes[i], info)
			for _, d := range defs {
				if report != nil && !live[d.Var] && track(d.Var) && !captured[d.Var] {
					report(d)
				}
				delete(live, d.Var)
			}
			for _, u := range uses {
				live[u] = true
			}
		}
		return live
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := cfg.Blocks[i]
			live := process(b, nil)
			if len(live) != len(liveIn[i]) {
				changed = true
			} else {
				for v := range live {
					if !liveIn[i][v] {
						changed = true
						break
					}
				}
			}
			liveIn[i] = live
		}
	}
	var dead []DeadDef
	for _, b := range cfg.Blocks {
		process(b, func(d DeadDef) { dead = append(dead, d) })
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i].Ident.Pos() < dead[j].Ident.Pos() })
	return dead
}

// capturedVars collects variables referenced inside function literals
// anywhere in the CFG.
func capturedVars(cfg *CFG, info *types.Info) map[*types.Var]bool {
	captured := map[*types.Var]bool{}
	for _, b := range cfg.Blocks {
		for _, n := range b.Nodes {
			WalkBlockNode(n, func(child ast.Node) bool {
				fl, ok := child.(*ast.FuncLit)
				if !ok {
					return true
				}
				ast.Inspect(fl.Body, func(inner ast.Node) bool {
					if id, ok := inner.(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok {
							captured[v] = true
						}
					}
					return true
				})
				return false
			})
		}
	}
	return captured
}

// defsUses splits one block node into the variables it defines (plain
// identifier targets) and the variables it reads. Reads include
// everything inside function literals: a closure keeps its captures
// alive.
func defsUses(n ast.Node, info *types.Info) (defs []DeadDef, uses []*types.Var) {
	defIdents := map[*ast.Ident]bool{}
	addDef := func(id *ast.Ident, rhs ast.Expr) {
		if id == nil || id.Name == "_" {
			return
		}
		if v, ok := identVar(info, id); ok {
			defIdents[id] = true
			defs = append(defs, DeadDef{Ident: id, Var: v, Rhs: rhs})
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					addDef(id, rhs)
				}
			}
		}
		// Op-assigns (+=) read their target, so the target is a use,
		// not a def — falling through to the use walk handles it.
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					for i, name := range vs.Names {
						var rhs ast.Expr
						if len(vs.Values) == len(vs.Names) {
							rhs = vs.Values[i]
						} else if len(vs.Values) == 1 {
							rhs = vs.Values[0]
						}
						addDef(name, rhs)
					}
				}
			}
		}
	case *ast.RangeStmt:
		if id, ok := n.Key.(*ast.Ident); ok {
			addDef(id, nil)
		}
		if id, ok := n.Value.(*ast.Ident); ok {
			addDef(id, nil)
		}
	}
	WalkBlockNode(n, func(child ast.Node) bool {
		switch c := child.(type) {
		case *ast.FuncLit:
			ast.Inspect(c.Body, func(inner ast.Node) bool {
				if id, ok := inner.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok {
						uses = append(uses, v)
					}
				}
				return true
			})
			return false
		case *ast.Ident:
			if defIdents[c] {
				return true
			}
			if v, ok := info.Uses[c].(*types.Var); ok {
				uses = append(uses, v)
			}
		}
		return true
	})
	return defs, uses
}
