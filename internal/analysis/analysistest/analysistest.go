// Package analysistest runs an analyzer over fixture packages laid
// out GOPATH-style under an analyzer's testdata directory and checks
// its findings against expectations written in the fixtures
// themselves — a stdlib-only equivalent of
// golang.org/x/tools/go/analysis/analysistest.
//
// Layout: testdata/src/<import/path>/*.go. Fixture packages may
// import each other by those paths (so they can mirror real module
// paths like resched/internal/profile with small stubs) and may
// import the standard library, which is type-checked from GOROOT
// source. In-package _test.go files are loaded too, since several
// analyzers treat test files as the legitimate home of an otherwise
// forbidden call. External test packages (package foo_test) are not
// supported.
//
// Expectations: a comment of the form
//
//	// want "regexp" "another regexp"
//
// on the line of the expected finding. Each finding must match one
// expectation on its line and vice versa; the regular expressions are
// unanchored.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"resched/internal/analysis"
)

// Run loads each fixture package and applies the analyzer, comparing
// findings against the fixtures' want comments. Fixture packages that
// are only imported by the listed ones are analyzed for facts but do
// not report diagnostics; list a package explicitly to check findings
// in it.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		root:    filepath.Join(testdata, "src"),
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		checked: map[string]*analysis.Package{},
	}
	var pkgs []*analysis.Package
	for _, path := range paths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants := collectWants(t, fset, pkgs)
	checkDiagnostics(t, diags, wants)
}

// fixtureLoader resolves fixture packages from testdata/src and
// everything else from GOROOT source.
type fixtureLoader struct {
	root    string
	fset    *token.FileSet
	std     types.Importer
	checked map[string]*analysis.Package
}

func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := filepath.Join(ld.root, path); dirExists(dir) {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

func (ld *fixtureLoader) load(path string) (*analysis.Package, error) {
	if pkg, ok := ld.checked[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	pkg := &analysis.Package{
		PkgPath:   path,
		Fset:      ld.fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	for _, imp := range tpkg.Imports() {
		if dep, ok := ld.checked[imp.Path()]; ok {
			pkg.Imports = append(pkg.Imports, dep)
		}
	}
	ld.checked[path] = pkg
	return pkg, nil
}

// want is one expectation: a regexp at a file:line, matched at most
// once.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile(`^//\s*want\s+(.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, pat := range splitQuoted(t, pos, m[1]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of double-quoted Go string literals.
func splitQuoted(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			t.Fatalf("%s: want expectations must be double-quoted strings, got %q", pos, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated want pattern in %q", pos, s)
		}
		lit, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad want literal %s: %v", pos, s[:end+1], err)
		}
		out = append(out, lit)
		s = strings.TrimSpace(s[end+1:])
	}
	return out
}

func checkDiagnostics(t *testing.T, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}
