// Package analysis is a small, dependency-free static-analysis
// framework modeled on golang.org/x/tools/go/analysis (which is not
// vendored here; the toolchain image carries only the standard
// library). It exists to enforce, on every build, the domain
// invariants that PR 1 and PR 2 introduced by convention:
//
//   - naive reference implementations are differential-test oracles,
//     never serving code (refguard);
//   - pooled scratch objects must not escape their request (poolescape);
//   - serving code calls the validated *Checked profile entry points,
//     not the panicking fast paths (checkedentry);
//   - scheduling loops below the HTTP handler thread the request
//     context (ctxflow);
//   - switches over the scheduler-mode and reservation-lifecycle
//     enums are exhaustive or fail loudly (modeexhaustive).
//
// The cmd/reschedvet multichecker loads packages with Load, runs every
// analyzer with RunAnalyzers, and exits non-zero on any diagnostic;
// `make lint` wires it into `make ci`.
//
// A finding can be suppressed with a directive comment on the same
// line or the line directly above it:
//
//	//reschedvet:ignore ctxflow reason for the exception
//
// Naming one or more analyzers suppresses only those; a bare
// directive suppresses every analyzer on that line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// Analyzer is one named check. Run inspects a single package through
// its Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //reschedvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check. A returned error aborts the whole vet
	// run (it means the analyzer itself failed, not that the code has
	// findings).
	Run func(*Pass) error
}

// Pass carries one analyzed package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Fset maps token.Pos values in Files (and in imported objects)
	// to file positions.
	Fset *token.FileSet
	// Files holds the package's parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's results for Files.
	TypesInfo *types.Info

	report func(Diagnostic)
	// facts is this analyzer's cross-package fact set for the whole
	// run. RunAnalyzers analyzes packages in import order, so by the
	// time a package runs, every module dependency's facts are here.
	facts *FactSet
}

// ExportObjectFact records a fact about obj for importing packages to
// consume. Only objects of the package under analysis may be annotated
// — facts flow from dependency to importer, never sideways.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("%s: ExportObjectFact of object not from %s", p.Analyzer.Name, p.Pkg.Path()))
	}
	if p.facts == nil {
		p.facts = NewFactSet()
	}
	p.facts.Export(obj, f)
}

// ImportObjectFact copies the fact of f's concrete type recorded for
// obj (by this analyzer, on any package analyzed so far) into f and
// reports whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.facts == nil {
		return false
	}
	return p.facts.Import(obj, f)
}

// AllObjectFacts enumerates every fact this analyzer has exported so
// far across the run, in the deterministic FactSet.All order. Because
// packages are analyzed in import order, by the time a package runs
// this is the union of its own exports and those of every transitive
// dependency — the substrate for whole-module compositions (lockcycle
// assembles the global lock-order graph from it).
func (p *Pass) AllObjectFacts() []ObjectFact {
	if p.facts == nil {
		return nil
	}
	return p.facts.All()
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Pos is the finding's resolved file position.
	Pos token.Position
	// Message describes the violated invariant.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Filename returns the name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// InTestFile reports whether pos lies in a _test.go file.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Filename(pos), "_test.go")
}

// InModule reports whether the package path belongs to this module.
// Fixture packages under an analyzer's testdata mirror the real import
// paths, so the same predicate serves both the repo and the tests.
func InModule(path string) bool {
	return path == "resched" || strings.HasPrefix(path, "resched/")
}

// DeclaredInFile reports whether obj's declaration lies in a file with
// the given base name (e.g. "reference.go").
func (p *Pass) DeclaredInFile(obj types.Object, base string) bool {
	return filepath.Base(p.Filename(obj.Pos())) == base
}

// Callee resolves the called function or method of a call expression,
// or nil when the callee is not a statically known *types.Func (calls
// through function values, conversions, builtins).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			obj = sel.Obj()
		} else {
			obj = info.Uses[fun.Sel] // qualified identifier pkg.F
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// ReceiverNamed returns the defined type of a method's receiver,
// unwrapping a pointer receiver, or nil for non-methods.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// HasMethod reports whether the defined type declares a method with
// the given name (on either receiver form).
func HasMethod(named *types.Named, name string) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}

// UsesVar reports whether any identifier inside node resolves to v.
func UsesVar(info *types.Info, node ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}
