package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// A Fact is a conclusion an analyzer draws about a package-level
// object (a function, method, type, or variable) that importers of the
// package can consume: "this function may block", "this method returns
// an aliased snapshot slice", "this function is fire-and-forget".
// Facts are how the analyzers become cross-package: a package is
// analyzed once, its facts are recorded against its objects, and when
// an importing package is analyzed the same analyzer reads them back
// through ImportObjectFact.
//
// Fact values must be pointers to struct types registered with
// RegisterFact, and their fields must survive a JSON round trip — the
// encoded form is the long-term contract (see FactSet.Encode).
type Fact interface {
	// AFact is a marker method so arbitrary types cannot be exported
	// as facts by accident.
	AFact()
}

// factTypes maps registered fact names to their concrete struct types
// (and back), for encoding. Registration happens in analyzer init
// functions, so the maps are write-once before any concurrency.
var (
	factTypes     = map[string]reflect.Type{}
	factTypeNames = map[reflect.Type]string{}
)

// RegisterFact associates a stable name with the concrete type of the
// example fact, enabling FactSet.Encode/DecodeFacts to serialize it.
// The example must be a non-nil pointer to a struct. Registering the
// same name twice panics unless the type matches.
func RegisterFact(name string, example Fact) {
	t := reflect.TypeOf(example)
	if t == nil || t.Kind() != reflect.Pointer || t.Elem().Kind() != reflect.Struct {
		panic(fmt.Sprintf("analysis: RegisterFact(%q): fact must be a pointer to struct, got %T", name, example))
	}
	if prev, ok := factTypes[name]; ok && prev != t {
		panic(fmt.Sprintf("analysis: RegisterFact(%q): already registered as %v", name, prev))
	}
	factTypes[name] = t
	factTypeNames[t] = name
}

// FactSet stores the facts one analyzer has exported across an entire
// run, keyed by the object they describe. Object identity is shared
// across packages because every module package of a run is
// type-checked from source by one loader.
type FactSet struct {
	m map[types.Object][]Fact
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet {
	return &FactSet{m: map[types.Object][]Fact{}}
}

// Export records a fact about obj, replacing any existing fact of the
// same concrete type.
func (s *FactSet) Export(obj types.Object, f Fact) {
	if obj == nil || f == nil {
		panic("analysis: Export with nil object or fact")
	}
	t := reflect.TypeOf(f)
	for i, old := range s.m[obj] {
		if reflect.TypeOf(old) == t {
			s.m[obj][i] = f
			return
		}
	}
	s.m[obj] = append(s.m[obj], f)
}

// Import copies the fact of f's concrete type recorded for obj into f
// and reports whether one was found. f must be a non-nil pointer.
func (s *FactSet) Import(obj types.Object, f Fact) bool {
	if obj == nil {
		return false
	}
	t := reflect.TypeOf(f)
	for _, stored := range s.m[obj] {
		if reflect.TypeOf(stored) == t {
			reflect.ValueOf(f).Elem().Set(reflect.ValueOf(stored).Elem())
			return true
		}
	}
	return false
}

// ObjectFact is one (object, fact) pair, the unit of enumeration and
// encoding.
type ObjectFact struct {
	Object types.Object
	Fact   Fact
}

// All returns every stored fact sorted by object key then fact type
// name, a deterministic order for dumps and encoding.
func (s *FactSet) All() []ObjectFact {
	var out []ObjectFact
	for obj, facts := range s.m {
		for _, f := range facts {
			out = append(out, ObjectFact{Object: obj, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := ObjectKey(out[i].Object), ObjectKey(out[j].Object)
		if ki != kj {
			return ki < kj
		}
		return factTypeNames[reflect.TypeOf(out[i].Fact)] < factTypeNames[reflect.TypeOf(out[j].Fact)]
	})
	return out
}

// ObjectKey renders a package-level object or method as a stable
// string key: "path/pkg.Name" for package-level objects and
// "path/pkg.(Type).Name" for methods (pointer receivers are not
// distinguished — Go allows one namespace per named type).
func ObjectKey(obj types.Object) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	if fn, ok := obj.(*types.Func); ok {
		if named := ReceiverNamed(fn); named != nil {
			return fmt.Sprintf("%s.(%s).%s", pkg, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + "." + obj.Name()
}

// LookupObjectKey resolves a key produced by ObjectKey against the
// given package, or nil if the object no longer exists. Only keys
// whose package path matches pkg.Path() resolve.
func LookupObjectKey(pkg *types.Package, key string) types.Object {
	prefix := pkg.Path() + "."
	if !strings.HasPrefix(key, prefix) {
		return nil
	}
	name := strings.TrimPrefix(key, prefix)
	if strings.HasPrefix(name, "(") {
		close := strings.Index(name, ").")
		if close < 0 {
			return nil
		}
		typeName, method := name[1:close], name[close+2:]
		tn, ok := pkg.Scope().Lookup(typeName).(*types.TypeName)
		if !ok {
			return nil
		}
		named, ok := types.Unalias(tn.Type()).(*types.Named)
		if !ok {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == method {
				return m
			}
		}
		return nil
	}
	return pkg.Scope().Lookup(name)
}

// encodedFact is the wire form of one (object, fact) pair.
type encodedFact struct {
	Object string          `json:"object"`
	Type   string          `json:"type"`
	Value  json.RawMessage `json:"value"`
}

// Encode serializes the fact set as JSON, sorted deterministically.
// Every stored fact's type must have been registered.
func (s *FactSet) Encode() ([]byte, error) {
	var encoded []encodedFact
	for _, of := range s.All() {
		name, ok := factTypeNames[reflect.TypeOf(of.Fact)]
		if !ok {
			return nil, fmt.Errorf("analysis: fact type %T not registered", of.Fact)
		}
		val, err := json.Marshal(of.Fact)
		if err != nil {
			return nil, fmt.Errorf("analysis: encoding fact %s for %s: %v", name, ObjectKey(of.Object), err)
		}
		encoded = append(encoded, encodedFact{Object: ObjectKey(of.Object), Type: name, Value: val})
	}
	return json.MarshalIndent(encoded, "", "  ")
}

// DecodeFacts parses data produced by Encode, resolving object keys
// through lookup (typically a closure over LookupObjectKey for the
// packages at hand). Keys lookup cannot resolve are an error: a fact
// about a vanished object means the encoded facts are stale.
func DecodeFacts(data []byte, lookup func(key string) types.Object) (*FactSet, error) {
	var encoded []encodedFact
	if err := json.Unmarshal(data, &encoded); err != nil {
		return nil, fmt.Errorf("analysis: decoding facts: %v", err)
	}
	s := NewFactSet()
	for _, ef := range encoded {
		t, ok := factTypes[ef.Type]
		if !ok {
			return nil, fmt.Errorf("analysis: decoding facts: unregistered fact type %q", ef.Type)
		}
		obj := lookup(ef.Object)
		if obj == nil {
			return nil, fmt.Errorf("analysis: decoding facts: object %q not found", ef.Object)
		}
		f := reflect.New(t.Elem()).Interface().(Fact)
		if err := json.Unmarshal(ef.Value, f); err != nil {
			return nil, fmt.Errorf("analysis: decoding fact %s for %s: %v", ef.Type, ef.Object, err)
		}
		s.Export(obj, f)
	}
	return s, nil
}
