package poolescape_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/poolescape"
)

func TestPoolEscape(t *testing.T) {
	analysistest.Run(t, "testdata", poolescape.Analyzer, "pooluse", "encpool")
}
