// Package poolescape enforces the pooled-scratch discipline from
// PR 2's copy-free serving path: a scratch object obtained from a
// sync.Pool inside a function (the server's snapshot profiles,
// obtained via profPool.Get and filled by Book.SnapshotInto) is
// borrowed, not owned. Once it goes back with Put, another request
// may be writing through the same pointer, so the borrower must not
// let it outlive the borrow. Four escape routes are flagged:
//
//   - storing the pooled value in a struct field;
//   - capturing it in a goroutine (the goroutine can outlive the
//     enclosing call, and with it the borrow);
//   - using it after a non-deferred Put;
//   - returning it to the caller.
//
// The analysis is per-function and syntactic over the type-checked
// AST: it tracks local variables initialized directly from a pool
// Get. That is exactly the shape the serving code uses (get, defer
// put, use), so the cheap analysis covers the real invariant without
// a full escape analysis.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"resched/internal/analysis"
)

// Analyzer flags pooled scratch objects that escape their borrow.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc: "a sync.Pool scratch object must not be stored in a struct field, captured by a " +
		"goroutine, used after Put, or returned",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// isPoolMethod reports whether call invokes the named method on a
// sync.Pool (or *sync.Pool) receiver.
func isPoolMethod(info *types.Info, call *ast.CallExpr, name string) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	named := analysis.ReceiverNamed(fn)
	return named != nil && named.Obj().Name() == "Pool"
}

// pooledSource unwraps `pool.Get()` and `pool.Get().(*T)` and reports
// whether expr yields a fresh pooled object.
func pooledSource(info *types.Info, expr ast.Expr) bool {
	e := ast.Unparen(expr)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	return ok && isPoolMethod(info, call, "Get")
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Pass 1: find the pooled locals — variables whose defining
	// assignment is a pool Get.
	pooled := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !pooledSource(info, rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if v, ok := objOf(info, id).(*types.Var); ok {
					pooled[v] = true
				}
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return
	}

	// Pass 2: walk the body once, flagging escapes and recording the
	// non-deferred Puts and the re-assignments that end a borrow.
	putEnd := map[*types.Var]token.Pos{} // borrow ends after this position
	killed := map[*types.Var]token.Pos{} // var rebound to a non-pooled value here
	inDefer := map[ast.Node]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// A deferred Put is the idiomatic borrow end (it runs at
			// function exit, after every use); a deferred anything
			// else runs at exit too. Neither is an escape.
			inDefer[n.Call] = true
			return true
		case *ast.GoStmt:
			for v := range pooled {
				if analysis.UsesVar(info, n.Call, v) {
					pass.Reportf(n.Pos(), "pooled %s captured by goroutine, which may outlive the borrow", v.Name())
				}
			}
			return false // already handled the whole go statement
		case *ast.AssignStmt:
			checkAssign(pass, n, pooled, killed)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				for v := range pooled {
					if analysis.UsesVar(info, res, v) {
						pass.Reportf(n.Pos(), "pooled %s returned to the caller, escaping its borrow", v.Name())
					}
				}
			}
		case *ast.CallExpr:
			if isPoolMethod(info, n, "Put") && !inDefer[n] {
				for _, arg := range n.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok && pooled[v] {
							putEnd[v] = n.End()
						}
					}
				}
			}
		}
		return true
	})

	// Pass 3: any use after a non-deferred Put, unless the variable
	// was re-bound in between. Assignment targets are not uses: a
	// re-binding is how a borrow legitimately ends.
	if len(putEnd) == 0 {
		return
	}
	lhs := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, l := range as.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok {
					lhs[id] = true
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || lhs[id] {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || !pooled[v] {
			return true
		}
		end, put := putEnd[v]
		if put && id.Pos() > end && !(killed[v] > end && killed[v] < id.Pos()) {
			pass.Reportf(id.Pos(), "pooled %s used after Put returned it to the pool", v.Name())
		}
		return true
	})
}

// checkAssign flags struct-field stores of pooled values and records
// re-bindings of the pooled variables themselves.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt, pooled map[*types.Var]bool, killed map[*types.Var]token.Pos) {
	info := pass.TypesInfo
	for i, lhs := range as.Lhs {
		// Pair LHS with its RHS; with a single multi-value RHS the
		// pooled value cannot be on the right, so skip.
		if len(as.Lhs) != len(as.Rhs) {
			break
		}
		rhs := as.Rhs[i]
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
				for v := range pooled {
					if analysis.UsesVar(info, rhs, v) {
						pass.Reportf(as.Pos(), "pooled %s stored in struct field %s, escaping its borrow", v.Name(), sel.Sel.Name)
					}
				}
			}
		}
		// Re-binding the variable — to a fresh pooled object or
		// anything else — ends the previous borrow.
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if v, ok := objOf(info, id).(*types.Var); ok && pooled[v] {
				killed[v] = as.End()
			}
		}
	}
}

// objOf resolves an identifier whether it defines (:=) or uses (=)
// the variable.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}
