// Package encpool mirrors the serving codec's pooled-buffer borrows:
// responses staged in pooled encoder buffers and binary payloads
// appended into pooled byte slices.
package encpool

import (
	"bytes"
	"sync"
)

type encBuf struct{ buf bytes.Buffer }

type server struct {
	encPool sync.Pool
	binPool sync.Pool
	last    *encBuf
}

func write(b []byte) {}

// Negative: the writeJSON shape — get, defer put, stage, write.
func (s *server) writeStagedOK(v []byte) {
	e := s.encPool.Get().(*encBuf)
	defer s.encPool.Put(e)
	e.buf.Reset()
	e.buf.Write(v)
	write(e.buf.Bytes())
}

// Negative: the binary-response shape — borrow the slice pointer,
// append into it, keep the regrown backing array pooled.
func (s *server) appendBinaryOK(payload []byte) {
	bp := s.binPool.Get().(*[]byte)
	defer s.binPool.Put(bp)
	b := append((*bp)[:0], payload...)
	*bp = b[:0]
	write(b)
}

// Positive: caching the staging buffer retains the borrow past the
// request.
func (s *server) cacheResponse() {
	e := s.encPool.Get().(*encBuf)
	s.last = e // want "stored in struct field last"
	s.encPool.Put(e)
}

// Positive: an async write hands the borrow to a goroutine that may
// outlive it.
func (s *server) asyncWrite() {
	e := s.encPool.Get().(*encBuf)
	go func() { write(e.buf.Bytes()) }() // want "captured by goroutine"
	s.encPool.Put(e)
}

// Positive: touching the buffer after Put races the next borrower.
func (s *server) writeAfterPut() {
	e := s.encPool.Get().(*encBuf)
	s.encPool.Put(e)
	write(e.buf.Bytes()) // want "used after Put"
}
