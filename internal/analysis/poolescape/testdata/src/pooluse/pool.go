// Package pooluse exercises the pooled-borrow discipline.
package pooluse

import "sync"

type scratch struct{ buf []byte }

type holder struct{ s *scratch }

var pool = sync.Pool{New: func() any { return new(scratch) }}

func use(*scratch) {}

// borrowOK is the serving idiom: get, defer put, use.
func borrowOK() {
	s := pool.Get().(*scratch)
	defer pool.Put(s)
	use(s)
}

// putThenDone returns the borrow explicitly after the last use.
func putThenDone() {
	s := pool.Get().(*scratch)
	use(s)
	pool.Put(s)
}

func fieldStore(h *holder) {
	s := pool.Get().(*scratch)
	h.s = s // want "stored in struct field s"
	pool.Put(s)
}

func goroutineCapture() {
	s := pool.Get().(*scratch)
	go func() { use(s) }() // want "captured by goroutine"
	pool.Put(s)
}

func goroutineArg() {
	s := pool.Get().(*scratch)
	go use(s) // want "captured by goroutine"
	pool.Put(s)
}

func useAfterPut() {
	s := pool.Get().(*scratch)
	pool.Put(s)
	use(s) // want "used after Put"
}

func returned() *scratch {
	s := pool.Get().(*scratch)
	return s // want "returned to the caller"
}

// rebound: once the variable no longer holds the pooled object, its
// later uses are the new value's business.
func rebound() {
	s := pool.Get().(*scratch)
	pool.Put(s)
	s = new(scratch)
	use(s)
}

// reget: a second Get opens a fresh borrow.
func reget() {
	s := pool.Get().(*scratch)
	pool.Put(s)
	s = pool.Get().(*scratch)
	use(s)
	pool.Put(s)
}

// server mirrors the real handler shape: the pool lives in a struct
// field.
type server struct{ pool sync.Pool }

func (sv *server) handler() {
	p := sv.pool.Get().(*scratch)
	defer sv.pool.Put(p)
	use(p)
}
