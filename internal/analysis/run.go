package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses findings. See
// the package documentation.
const ignoreDirective = "//reschedvet:ignore"

// ignoreSet records, per file and line, which analyzers are silenced
// there. The empty string key means "all analyzers".
type ignoreSet map[string]map[int]map[string]bool

// collectIgnores scans a package's comments for ignore directives. A
// directive silences its own line and the line below it, so it can
// sit at the end of the offending line or on its own line above.
func collectIgnores(pkg *Package) ignoreSet {
	set := ignoreSet{}
	add := func(file string, line int, name string) {
		lines := set[file]
		if lines == nil {
			lines = map[int]map[string]bool{}
			set[file] = lines
		}
		for _, l := range []int{line, line + 1} {
			if lines[l] == nil {
				lines[l] = map[string]bool{}
			}
			lines[l][name] = true
		}
	}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignoreDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //reschedvet:ignoreXXX is not a directive
				}
				pos := pkg.Fset.Position(c.Pos())
				names := strings.Fields(rest)
				if len(names) == 0 {
					add(pos.Filename, pos.Line, "")
					continue
				}
				for _, n := range names {
					add(pos.Filename, pos.Line, n)
				}
			}
		}
	}
	return set
}

func (s ignoreSet) suppresses(d Diagnostic) bool {
	names := s[d.Pos.Filename][d.Pos.Line]
	return names[""] || names[d.Analyzer]
}

// RunAnalyzers applies every analyzer to every package and returns
// the surviving findings sorted by position. An error from an
// analyzer aborts the run: it indicates a broken analyzer, not a
// finding.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunAnalyzersFacts(pkgs, analyzers)
	return diags, err
}

// importOrder returns pkgs plus their transitive source-checked
// dependencies, dependencies first, so facts exported by a package are
// in place before any importer is analyzed.
func importOrder(pkgs []*Package) []*Package {
	var order []*Package
	seen := map[*Package]bool{}
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p] {
			return
		}
		seen[p] = true
		for _, dep := range p.Imports {
			visit(dep)
		}
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return order
}

// RunAnalyzersFacts is RunAnalyzers, also returning each analyzer's
// exported facts (keyed by analyzer name) for inspection — the
// reschedvet -facts flag prints them.
//
// Each analyzer runs over the requested packages AND their transitive
// source-checked dependencies in import order, sharing one fact set,
// so conclusions about a dependency's API (may-block, returns-alias,
// ...) are available when its importers are analyzed. Diagnostics are
// only reported for the requested packages; dependencies are analyzed
// for their facts.
func RunAnalyzersFacts(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, map[string]*FactSet, error) {
	requested := make(map[*Package]bool, len(pkgs))
	for _, p := range pkgs {
		requested[p] = true
	}
	order := importOrder(pkgs)
	ignores := make(map[*Package]ignoreSet, len(order))
	for _, pkg := range order {
		ignores[pkg] = collectIgnores(pkg)
	}

	var diags []Diagnostic
	allFacts := make(map[string]*FactSet, len(analyzers))
	for _, a := range analyzers {
		facts := NewFactSet()
		allFacts[a.Name] = facts
		for _, pkg := range order {
			pkg := pkg
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				facts:     facts,
			}
			pass.report = func(d Diagnostic) {
				if requested[pkg] && !ignores[pkg].suppresses(d) {
					diags = append(diags, d)
				}
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, allFacts, nil
}
