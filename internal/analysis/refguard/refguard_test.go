package refguard_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/refguard"
)

func TestRefguard(t *testing.T) {
	analysistest.Run(t, "testdata", refguard.Analyzer,
		"resched/internal/cpa", "refconsumer")
}
