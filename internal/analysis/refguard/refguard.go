// Package refguard enforces the differential-oracle discipline from
// PR 2: the naive reference implementations kept in reference.go
// files (internal/cpa/reference.go, internal/profile/reference.go)
// exist only to cross-check the optimized code, so the only legal
// callers are _test.go files and the reference files themselves.
// Serving or scheduling code that reaches for a reference
// implementation silently reintroduces the exact complexity the
// optimized paths removed.
package refguard

import (
	"go/types"
	"path/filepath"

	"resched/internal/analysis"
)

// Analyzer flags any use of a function or method declared in a module
// reference.go file from a non-test, non-reference file. Uses, not
// just calls: storing a reference implementation in a function value
// smuggles it out just as effectively.
var Analyzer = &analysis.Analyzer{
	Name: "refguard",
	Doc: "reference implementations (reference.go) are differential-test oracles; " +
		"they may be used only from _test.go files",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil || !analysis.InModule(fn.Pkg().Path()) {
			continue
		}
		if !pass.DeclaredInFile(fn, "reference.go") {
			continue
		}
		useFile := pass.Filename(id.Pos())
		if pass.InTestFile(id.Pos()) || filepath.Base(useFile) == "reference.go" {
			continue
		}
		pass.Reportf(id.Pos(),
			"%s is a naive reference implementation (declared in %s); only _test.go files may use it",
			fn.Name(), filepath.Base(filepath.Dir(pass.Filename(fn.Pos())))+"/reference.go")
	}
	return nil
}
