// Package cpa is a fixture stub mirroring resched/internal/cpa: an
// optimized entry point beside a naive oracle kept in reference.go.
package cpa

// Allocate is the optimized entry point.
func Allocate(n int) int { return n * 2 }
