package cpa

// oracleCheck is the differential-test pattern: _test.go files may
// use the reference implementation freely.
func oracleCheck(n int) bool { return Allocate(n) >= ReferenceAllocate(n) }
