package cpa

// ReferenceAllocate is the naive oracle, exported so cross-package
// fixtures can exercise the guard.
func ReferenceAllocate(n int) int { return refHelper(n) }

// refHelper being called from reference.go itself is legal: the
// oracle may be built out of helpers living beside it.
func refHelper(n int) int { return n + n }
