package cpa

func misuse(n int) int {
	return ReferenceAllocate(n) // want "naive reference implementation"
}
