// Package refconsumer exercises cross-package misuse of a reference
// implementation, including taking it as a function value.
package refconsumer

import "resched/internal/cpa"

func consume(n int) int {
	f := cpa.ReferenceAllocate // want "naive reference implementation"
	return f(n) + cpa.Allocate(n)
}
