package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkFunc type-checks src (a complete package) and returns the named
// function's declaration plus the type info.
func checkFunc(t *testing.T, src, name string) (*ast.FuncDecl, *types.Info, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "df_test.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("type-check: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd, info, fset
		}
	}
	t.Fatalf("no function %q", name)
	return nil, nil, nil
}

// maskAtReturn runs the taint analysis and returns the mask of the
// value returned by each return statement, in source order.
func maskAtReturn(fd *ast.FuncDecl, spec *TaintSpec) []Mask {
	cfg := NewCFG(fd.Body)
	var out []Mask
	RunTaint(cfg, spec, func(n ast.Node, st *TaintState) {
		if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
			out = append(out, st.ExprMask(ret.Results[0]))
		}
	})
	return out
}

// paramTaint marks every pointer-typed parameter of the function with
// bit 1.
func paramTaint(info *types.Info, fd *ast.FuncDecl) *TaintSpec {
	params := map[*types.Var]bool{}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					params[v] = true
				}
			}
		}
	}
	return &TaintSpec{
		Info: info,
		InitMask: func(v *types.Var) Mask {
			if params[v] {
				return 1
			}
			return 0
		},
	}
}

func TestTaintDirectFlow(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
func f(p *int) *int {
	x := p
	return x
}`, "f")
	masks := maskAtReturn(fd, paramTaint(info, fd))
	if len(masks) != 1 || masks[0] != 1 {
		t.Errorf("direct alias not tainted: %v", masks)
	}
}

func TestTaintFreshAllocationClean(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
func f(p *int) *int {
	x := new(int)
	return x
}`, "f")
	masks := maskAtReturn(fd, paramTaint(info, fd))
	if len(masks) != 1 || masks[0] != 0 {
		t.Errorf("fresh allocation tainted: %v", masks)
	}
}

func TestTaintBranchUnion(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
func f(p *int, c bool) *int {
	y := new(int)
	if c {
		y = p
	}
	return y
}`, "f")
	masks := maskAtReturn(fd, paramTaint(info, fd))
	if len(masks) != 1 || masks[0] != 1 {
		t.Errorf("one-path taint lost at merge: %v", masks)
	}
}

func TestTaintRebindClears(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
func f(p *int) *int {
	p = new(int)
	return p
}`, "f")
	masks := maskAtReturn(fd, paramTaint(info, fd))
	if len(masks) != 1 || masks[0] != 0 {
		t.Errorf("re-bound parameter still tainted (bottom/init lattice bug): %v", masks)
	}
}

func TestTaintLoopFixpoint(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
func f(p *int, n int) *int {
	y := new(int)
	for i := 0; i < n; i++ {
		z := y
		y = p
		_ = z
	}
	return y
}`, "f")
	masks := maskAtReturn(fd, paramTaint(info, fd))
	if len(masks) != 1 || masks[0] != 1 {
		t.Errorf("loop-carried taint lost: %v", masks)
	}
}

func TestTaintDerivedForms(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
func f(p []int) []int {
	a := p[1:3]
	b := append(a, 4)
	return b
}`, "f")
	masks := maskAtReturn(fd, paramTaint(info, fd))
	if len(masks) != 1 || masks[0] != 1 {
		t.Errorf("slice/append derivation lost taint: %v", masks)
	}
}

func TestTaintValueCopyClamped(t *testing.T) {
	// An int loaded from a tainted slice cannot alias the backing
	// array; the type clamp must drop the mask.
	fd, info, _ := checkFunc(t, `package p
func f(p []int) int {
	x := p[0]
	return x
}`, "f")
	masks := maskAtReturn(fd, paramTaint(info, fd))
	if len(masks) != 1 || masks[0] != 0 {
		t.Errorf("non-reference value kept taint: %v", masks)
	}
}

func TestTaintCallMaskHook(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
func mk() *int { return new(int) }
func f() *int {
	x := mk()
	return x
}`, "f")
	spec := &TaintSpec{
		Info: info,
		CallMask: func(call *ast.CallExpr, st *TaintState) Mask {
			if fn := Callee(info, call); fn != nil && fn.Name() == "mk" {
				return 2
			}
			return 0
		},
	}
	masks := maskAtReturn(fd, spec)
	if len(masks) != 1 || masks[0] != 2 {
		t.Errorf("CallMask result lost: %v", masks)
	}
}

func TestTaintTupleAssign(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
func two(p *int) (*int, error) { return p, nil }
func f(p *int) *int {
	x, err := two(p)
	_ = err
	return x
}`, "f")
	spec := &TaintSpec{
		Info: info,
		CallMask: func(call *ast.CallExpr, st *TaintState) Mask {
			var m Mask
			for _, a := range call.Args {
				m |= st.ExprMask(a)
			}
			return m
		},
		InitMask: paramTaint(info, fd).InitMask,
	}
	masks := maskAtReturn(fd, spec)
	if len(masks) != 1 || masks[0] != 1 {
		t.Errorf("tuple assignment lost taint: %v", masks)
	}
}

func TestRefBearing(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
type flat struct{ a, b int }
type holder struct{ p *int }
func f(x flat, y holder, s string, sl []int) {}
`, "f")
	wants := []struct {
		name string
		want bool
	}{{"x", false}, {"y", true}, {"s", false}, {"sl", true}}
	byName := map[string]*types.Var{}
	for _, field := range fd.Type.Params.List {
		for _, n := range field.Names {
			byName[n.Name] = info.Defs[n].(*types.Var)
		}
	}
	for _, w := range wants {
		if got := RefBearing(byName[w.name].Type()); got != w.want {
			t.Errorf("RefBearing(%s) = %v, want %v", w.name, got, w.want)
		}
	}
}

// trackAll makes DeadDefs consider every variable.
func trackAll(*types.Var) bool { return true }

func deadNames(fd *ast.FuncDecl, info *types.Info) []string {
	cfg := NewCFG(fd.Body)
	var names []string
	for _, d := range DeadDefs(cfg, info, trackAll) {
		names = append(names, d.Ident.Name)
	}
	return names
}

func TestDeadDefNeverRead(t *testing.T) {
	// The type-checker itself rejects variables with no reads at all,
	// so the dead defs left for flow analysis are definitions whose
	// reads all happen on other paths — here, before the assignment.
	fd, info, _ := checkFunc(t, `package p
func work() error { return nil }
func sink(error) {}
func f(c bool) {
	var e2 error
	if c {
		sink(e2)
	}
	e2 = work()
}`, "f")
	got := deadNames(fd, info)
	if len(got) != 1 || got[0] != "e2" {
		t.Errorf("dead defs = %v, want [e2]", got)
	}
}

func TestDeadDefOverwrittenBeforeRead(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
func work() error { return nil }
func sink(error) {}
func f() {
	err := work()
	err = work()
	sink(err)
}`, "f")
	got := deadNames(fd, info)
	if len(got) != 1 || got[0] != "err" {
		t.Errorf("dead defs = %v, want the first err definition", got)
	}
}

func TestDeadDefLiveOnOnePath(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
func work() error { return nil }
func sink(error) {}
func f(c bool) {
	err := work()
	if c {
		sink(err)
	}
}`, "f")
	if got := deadNames(fd, info); len(got) != 0 {
		t.Errorf("definition live on one path reported dead: %v", got)
	}
}

func TestDeadDefClosureCaptureExcluded(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
func work() error { return nil }
func sink(error) {}
func f() {
	err := work()
	defer func() { sink(err) }()
	err = work()
}`, "f")
	if got := deadNames(fd, info); len(got) != 0 {
		t.Errorf("captured variable reported dead: %v", got)
	}
}

func TestDeadDefLoopCarried(t *testing.T) {
	fd, info, _ := checkFunc(t, `package p
func work() error { return nil }
func sink(error) {}
func f(n int) {
	var err error
	for i := 0; i < n; i++ {
		sink(err)
		err = work()
	}
}`, "f")
	if got := deadNames(fd, info); len(got) != 0 {
		t.Errorf("loop-carried definition reported dead: %v", got)
	}
}
