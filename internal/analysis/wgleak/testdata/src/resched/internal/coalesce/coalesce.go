// Package coalesce mirrors the request coalescer's goroutine
// discipline: every group gets a leader goroutine launched under the
// coalescer's WaitGroup (joined by Close), and the group-context
// watcher is bounded by both the waiters' and the group's contexts.
package coalesce

import (
	"context"
	"sync"
)

type group struct{ waiters []int }

type coalescer struct {
	mu   sync.Mutex
	wg   sync.WaitGroup
	open *group
}

// lead drives one group; its deferred Done joins it to any launch
// under a matching Add/Wait.
func (c *coalescer) lead(g *group) {
	defer c.wg.Done()
	_ = g.waiters
}

// Negative: the enqueue shape — Add before launch, Wait in close.
func (c *coalescer) openGroup() *group {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := &group{}
	c.wg.Add(1)
	go c.lead(g)
	c.open = g
	return g
}

// Negative: the group-context watcher observes every waiter's Done
// and bails out when the group itself finishes first.
func (c *coalescer) watch(ctx context.Context, cancel context.CancelFunc, waiters []context.Context) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for _, w := range waiters {
			select {
			case <-w.Done():
			case <-ctx.Done():
				return
			}
		}
		cancel()
	}()
}

// Positive: a leader variant spun up with no WaitGroup, context
// bound, or channel join — the group would outlive Close.
func (c *coalescer) leakyLead(g *group) {
	go func() { // want "goroutine is never joined"
		for range g.waiters {
		}
	}()
}

// Positive: a named leader without a Done is no better.
func orphanLeader() {
	for {
	}
}

func (c *coalescer) leakyNamedLead() {
	go orphanLeader() // want "goroutine running orphanLeader is never joined"
}

func (c *coalescer) close() {
	c.mu.Lock()
	c.open = nil
	c.mu.Unlock()
	c.wg.Wait()
}
