// Package workerlib is a fixture dependency: its join-discipline
// facts are exported here and consumed by the server fixture, which
// launches these functions as goroutines.
package workerlib

import (
	"context"
	"sync"
)

// PoolWorker drains jobs and signals a WaitGroup.
func PoolWorker(wg *sync.WaitGroup, jobs chan int) {
	defer wg.Done()
	for range jobs {
	}
}

// Bounded runs until its context is cancelled.
func Bounded(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
	}
}

//reschedvet:fireandforget metrics flush may outlive any request
func FlushMetrics() {
	for i := 0; i < 10; i++ {
		_ = i
	}
}

// Orphan loops forever with no join discipline at all.
func Orphan() {
	for {
	}
}
