// Package lifecycle is a fixture mirror of the online engine: a
// long-lived event loop launched by Start must be context-bounded and
// joined (the real engine's run goroutine), and anything else the
// engine spawns needs a join discipline or an explicit
// fireandforget declaration.
package lifecycle

import (
	"context"
	"sync"
	"time"
)

type Engine struct {
	wg     sync.WaitGroup
	cancel context.CancelFunc
}

// run is the driving loop: ctx-bounded, WaitGroup-joined.
func (e *Engine) run(ctx context.Context) {
	defer e.wg.Done()
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// Negative: the real engine's Start/Close shape — the loop goroutine
// is joined through the WaitGroup and bounded by the context.
func (e *Engine) Start(ctx context.Context) {
	ctx, e.cancel = context.WithCancel(ctx)
	e.wg.Add(1)
	go e.run(ctx)
}

func (e *Engine) Close() {
	e.cancel()
	e.wg.Wait()
}

// unboundedLoop has no ctx select and no WaitGroup: launching it
// leaks the driving goroutine past Close.
func (e *Engine) unboundedLoop() {
	for {
		time.Sleep(time.Second)
	}
}

// Positive: an engine loop nothing can stop or join.
func (e *Engine) startLeaky() {
	go e.unboundedLoop() // want "goroutine running unboundedLoop is never joined"
}

// Positive: a completion-notifier literal whose channel nobody in the
// launcher reads is not a join.
func (e *Engine) notifyNobody(done chan string) {
	go func() { // want "goroutine is never joined"
		done <- "job-1"
	}()
	_ = done
}

//reschedvet:fireandforget a forecast warm-up may outlive any caller
func warmForecastCache() {
	for i := 0; i < 64; i++ {
		_ = i
	}
}

// Negative: declared fire-and-forget.
func (e *Engine) startWarmup() {
	go warmForecastCache()
}

// Negative: a per-replay worker joined through a result channel.
func (e *Engine) replayWorker() int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return <-out
}
