package server

import (
	"context"
	"sync"

	"resched/internal/workerlib"
)

func work() error { return nil }

// Positive cases.

func orphanLiteral() {
	go func() { // want "goroutine is never joined"
		for {
		}
	}()
}

func orphanNamed() {
	go workerlib.Orphan() // want "goroutine running Orphan is never joined"
}

func sendNobodyReads(done chan struct{}) {
	// The launcher never receives from done, so the send is not a join.
	go func() { // want "goroutine is never joined"
		done <- struct{}{}
	}()
	_ = done
}

// Negative cases.

func waitGroupJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = work()
	}()
	wg.Wait()
}

func contextJoin(ctx context.Context) {
	go func() {
		select {
		case <-ctx.Done():
		}
	}()
}

func channelJoin() error {
	errc := make(chan error, 1)
	go func() {
		errc <- work()
	}()
	return <-errc
}

func selectChannelJoin() error {
	errc := make(chan error, 1)
	go func() {
		errc <- work()
	}()
	select {
	case err := <-errc:
		return err
	}
}

func crossPackageWaitGroup(jobs chan int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go workerlib.PoolWorker(&wg, jobs)
	wg.Wait()
}

func crossPackageCtx(ctx context.Context) {
	go workerlib.Bounded(ctx)
}

func crossPackageFireAndForget() {
	go workerlib.FlushMetrics()
}

func literalCallingJoined(ctx context.Context) {
	go func() {
		workerlib.Bounded(ctx)
	}()
}

func ignoredLaunch() {
	go func() { //reschedvet:ignore wgleak intentionally leaked in fixture
		for {
		}
	}()
}
