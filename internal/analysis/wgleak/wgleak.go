// Package wgleak enforces goroutine join discipline in the serving
// and simulation packages: a launched goroutine must have a visible
// way to finish — a sync.WaitGroup it calls Done on, a context whose
// Done channel bounds it, or a channel the launcher reads — or be
// explicitly declared fire-and-forget. An unjoined goroutine in the
// daemon outlives its request, pins pooled buffers, and turns shutdown
// into a data race.
//
// For `go f(...)` with a named callee, the judgment crosses package
// boundaries through facts: analyzing f's own package exports
// JoinsWaitGroup (f calls Done on a *sync.WaitGroup), CtxBounded (f
// selects on a context's Done channel), or FireAndForget (f's doc
// comment carries a //reschedvet:fireandforget directive), and the
// launching package imports them. For `go func() {...}()` the literal
// body is inspected directly with the same rules, plus one more local
// one: a send on a channel that the enclosing function also receives
// from counts as a join (the launcher-collects-result pattern).
package wgleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"resched/internal/analysis"
)

// CheckedPackages are where goroutine launches are judged. Fact
// inference runs module-wide regardless.
var CheckedPackages = map[string]bool{
	"resched/internal/server":       true,
	"resched/internal/resbook":      true,
	"resched/internal/sim":          true,
	"resched/internal/lifecycle":    true,
	"resched/internal/coalesce":     true,
	"resched/internal/multicluster": true,
	"resched/cmd/reschedd":          true,
}

// fireAndForgetDirective in a function's doc comment declares its
// goroutines (or the function itself, when launched) intentionally
// unjoined.
const fireAndForgetDirective = "//reschedvet:fireandforget"

// JoinsWaitGroup marks a function that calls Done on a
// *sync.WaitGroup: launching it under a matching Add/Wait joins it.
type JoinsWaitGroup struct{}

func (*JoinsWaitGroup) AFact() {}

// CtxBounded marks a function whose body observes a context's Done
// channel, so cancelling the context bounds its lifetime.
type CtxBounded struct{}

func (*CtxBounded) AFact() {}

// FireAndForget marks a function documented as intentionally unjoined
// via the //reschedvet:fireandforget directive.
type FireAndForget struct{}

func (*FireAndForget) AFact() {}

func init() {
	analysis.RegisterFact("wgleak.JoinsWaitGroup", (*JoinsWaitGroup)(nil))
	analysis.RegisterFact("wgleak.CtxBounded", (*CtxBounded)(nil))
	analysis.RegisterFact("wgleak.FireAndForget", (*FireAndForget)(nil))
}

// Analyzer flags unjoined goroutine launches in serving code.
var Analyzer = &analysis.Analyzer{
	Name: "wgleak",
	Doc: "goroutines in serving code must be joined (WaitGroup, context, or a channel the " +
		"launcher reads) or declared //reschedvet:fireandforget",
	Run: run,
}

func run(pass *analysis.Pass) error {
	exportFacts(pass)
	if !CheckedPackages[pass.Pkg.Path()] {
		return nil
	}
	decls, _ := analysis.FuncDecls(pass.Files, pass.TypesInfo)
	for _, fd := range decls {
		if pass.InTestFile(fd.Pos()) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkLaunch(pass, fd, gs)
			return true
		})
	}
	return nil
}

// exportFacts records join-discipline facts about every function the
// package declares, for importing launch sites.
func exportFacts(pass *analysis.Pass) {
	if !analysis.InModule(pass.Pkg.Path()) {
		return
	}
	decls, _ := analysis.FuncDecls(pass.Files, pass.TypesInfo)
	for _, fd := range decls {
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		if hasDirective(fd.Doc, fireAndForgetDirective) {
			pass.ExportObjectFact(fn, &FireAndForget{})
		}
		if callsWaitGroupDone(pass.TypesInfo, fd.Body) {
			pass.ExportObjectFact(fn, &JoinsWaitGroup{})
		}
		if observesContextDone(pass.TypesInfo, fd.Body) {
			pass.ExportObjectFact(fn, &CtxBounded{})
		}
	}
}

func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directive) {
			return true
		}
	}
	return false
}

// methodOn reports whether call invokes the named method on a value
// whose type (after pointer unwrap) is pkgPath.typeName.
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName, method string) bool {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Name() != method || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	named := analysis.ReceiverNamed(fn)
	return named != nil && named.Obj().Name() == typeName
}

func callsWaitGroupDone(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && methodOn(info, call, "sync", "WaitGroup", "Done") {
			found = true
		}
		return !found
	})
	return found
}

func observesContextDone(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			fn := analysis.Callee(info, call)
			if fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkLaunch judges one go statement inside fd.
func checkLaunch(pass *analysis.Pass, fd *ast.FuncDecl, gs *ast.GoStmt) {
	info := pass.TypesInfo

	// Named callee: judge by facts (exported above for module
	// packages, including this one).
	if fn := analysis.Callee(info, gs.Call); fn != nil {
		for _, f := range []analysis.Fact{&JoinsWaitGroup{}, &CtxBounded{}, &FireAndForget{}} {
			if pass.ImportObjectFact(fn, f) {
				return
			}
		}
		pass.Reportf(gs.Pos(),
			"goroutine running %s is never joined: no WaitGroup, context bound, or channel join "+
				"(declare it //reschedvet:fireandforget if that is intended)", fn.Name())
		return
	}

	lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !ok {
		return // go through a function value: launch site cannot be judged
	}
	if callsWaitGroupDone(info, lit.Body) || observesContextDone(info, lit.Body) {
		return
	}
	// Calling a fact-marked function from the literal body also joins:
	// `go func() { worker(ctx) }()`.
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.Callee(info, call); fn != nil {
			for _, f := range []analysis.Fact{&JoinsWaitGroup{}, &CtxBounded{}, &FireAndForget{}} {
				if pass.ImportObjectFact(fn, f) {
					joined = true
				}
			}
		}
		return !joined
	})
	if joined {
		return
	}
	if channelJoined(info, fd, gs, lit) {
		return
	}
	pass.Reportf(gs.Pos(),
		"goroutine is never joined: no WaitGroup.Done, no context Done, and no channel the "+
			"launcher reads (declare the work //reschedvet:fireandforget if that is intended)")
}

// channelJoined reports whether the literal sends on a channel that
// the enclosing function reads outside the go statement — the
// launcher-collects-result pattern.
func channelJoined(info *types.Info, fd *ast.FuncDecl, gs *ast.GoStmt, lit *ast.FuncLit) bool {
	sent := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if send, ok := n.(*ast.SendStmt); ok {
			if v := chanVar(info, send.Chan); v != nil {
				sent[v] = true
			}
		}
		return true
	})
	if len(sent) == 0 {
		return false
	}
	received := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == gs {
			return false // reads inside the goroutine itself don't join it
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if v := chanVar(info, n.X); v != nil && sent[v] {
					received = true
				}
			}
		case *ast.RangeStmt:
			if v := chanVar(info, n.X); v != nil && sent[v] {
				received = true
			}
		}
		return !received
	})
	return received
}

// chanVar resolves a channel-typed expression to its variable; shared
// with chanflow via the analysis package since PR 9.
func chanVar(info *types.Info, e ast.Expr) *types.Var {
	return analysis.ChanVar(info, e)
}
