package wgleak_test

import (
	"testing"

	"resched/internal/analysis/analysistest"
	"resched/internal/analysis/wgleak"
)

func TestWgLeak(t *testing.T) {
	// workerlib is pulled in as an import of the server fixture and
	// analyzed for facts only; the launch sites under test are in the
	// server and lifecycle packages.
	analysistest.Run(t, "testdata", wgleak.Analyzer,
		"resched/internal/server", "resched/internal/lifecycle",
		"resched/internal/coalesce")
}
