// Package onestep implements the extension suggested in the paper's
// conclusion: a one-step mixed-parallel scheduler in the spirit of
// iCASLB (Vydyanathan et al., ICPP 2006) adapted to advance
// reservation scenarios. Instead of CPA's two phases — allocate, then
// map — the algorithm interleaves them: it starts from one-processor
// allocations, repeatedly grows the allocation of a critical task, and
// re-maps the whole application against the reservation schedule after
// every change, accepting the allocation that actually shortens the
// schedule rather than a proxy objective. A bounded look-ahead lets it
// cross small plateaus instead of stopping at the first non-improving
// step, and the earliest-fit mapping backfills tasks into reservation
// holes.
package onestep

import (
	"fmt"

	"resched/internal/core"
	"resched/internal/cpa"
	"resched/internal/dag"
	"resched/internal/model"
)

// Options tunes the scheduler.
type Options struct {
	// Lookahead is how many consecutive non-improving allocation steps
	// are explored before giving up (the iCASLB look-ahead). Zero
	// means DefaultLookahead.
	Lookahead int
	// MaxSteps caps the total number of allocation increments. Zero
	// means 4x the number of tasks.
	MaxSteps int
	// Candidates is how many distinct critical tasks are evaluated per
	// step (each evaluation re-maps the application). Zero means
	// DefaultCandidates.
	Candidates int
}

// Default option values.
const (
	DefaultLookahead  = 5
	DefaultCandidates = 3
)

// Result carries the schedule and the search statistics.
type Result struct {
	Schedule *core.Schedule
	// Steps is the number of accepted allocation increments.
	Steps int
	// Evaluated is the number of full re-mappings performed.
	Evaluated int
}

// Schedule runs the one-step algorithm for the given environment and
// returns the best schedule found. The result always verifies against
// the environment (one reservation per task, capacity respected).
func Schedule(g *dag.Graph, env core.Env, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if env.P < 1 || env.Avail == nil || env.Avail.Capacity() != env.P {
		return nil, fmt.Errorf("onestep: invalid environment")
	}
	lookahead := opt.Lookahead
	if lookahead <= 0 {
		lookahead = DefaultLookahead
	}
	maxSteps := opt.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 4 * g.NumTasks()
	}
	candidates := opt.Candidates
	if candidates <= 0 {
		candidates = DefaultCandidates
	}

	alloc := g.UniformAlloc(1)
	cur, err := mapWithAllocs(g, env, alloc)
	if err != nil {
		return nil, err
	}
	res := &Result{Schedule: cur, Evaluated: 1}
	best := cur
	sinceBest := 0

	for step := 0; step < maxSteps && sinceBest <= lookahead; step++ {
		cands := criticalCandidates(g, alloc, env.P, candidates)
		if len(cands) == 0 {
			break
		}
		// Evaluate each candidate increment by a full re-mapping and
		// keep the one with the shortest completion.
		type trial struct {
			task  int
			sched *core.Schedule
		}
		var bestTrial *trial
		for _, t := range cands {
			alloc[t]++
			sched, err := mapWithAllocs(g, env, alloc)
			if err != nil {
				return nil, err
			}
			res.Evaluated++
			if bestTrial == nil || sched.Completion() < bestTrial.sched.Completion() {
				bestTrial = &trial{task: t, sched: sched}
			}
			alloc[t]--
		}
		// Commit the best trial even if it does not improve (plateau
		// crossing); track the best-seen schedule separately.
		alloc[bestTrial.task]++
		cur = bestTrial.sched
		res.Steps++
		if cur.Completion() < best.Completion() {
			best = cur
			sinceBest = 0
		} else {
			sinceBest++
		}
	}
	res.Schedule = best
	return res, nil
}

// mapWithAllocs list-schedules the application with fixed per-task
// allocations against the reservation schedule, placing each task at
// its earliest completion time (which backfills into holes).
func mapWithAllocs(g *dag.Graph, env core.Env, alloc []int) (*core.Schedule, error) {
	exec, err := g.ExecTimes(alloc)
	if err != nil {
		return nil, err
	}
	order, err := cpa.PriorityOrder(g, exec)
	if err != nil {
		return nil, err
	}
	avail := env.Avail.Flat()
	sched := &core.Schedule{Now: env.Now, Tasks: make([]core.Placement, g.NumTasks())}
	for _, t := range order {
		ready := env.Now
		for _, pr := range g.Predecessors(t) {
			if f := sched.Tasks[pr].End; f > ready {
				ready = f
			}
		}
		start := avail.EarliestFit(alloc[t], exec[t], ready)
		if exec[t] > 0 {
			if err := avail.Reserve(start, start+exec[t], alloc[t]); err != nil {
				return nil, fmt.Errorf("onestep: reserving task %d: %w", t, err)
			}
		}
		sched.Tasks[t] = core.Placement{Procs: alloc[t], Start: start, End: start + exec[t]}
	}
	return sched, nil
}

// criticalCandidates returns up to k distinct tasks on the current
// critical path (under the allocation's execution times) whose
// allocation can still grow, ordered by decreasing Amdahl gain.
func criticalCandidates(g *dag.Graph, alloc []int, p, k int) []int {
	exec, err := g.ExecTimes(alloc)
	if err != nil {
		return nil
	}
	bl, err := g.BottomLevels(exec)
	if err != nil {
		return nil
	}
	tl, err := g.TopLevels(exec)
	if err != nil {
		return nil
	}
	var cp model.Duration
	for _, v := range bl {
		if v > cp {
			cp = v
		}
	}
	type cand struct {
		task int
		gain float64
	}
	var cands []cand
	for i := 0; i < g.NumTasks(); i++ {
		if tl[i]+bl[i] != cp || alloc[i] >= p {
			continue
		}
		cands = append(cands, cand{i, model.Gain(g.Task(i).Seq, g.Task(i).Alpha, alloc[i])})
	}
	// Highest gain first; insertion sort is fine at this size.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].gain > cands[j-1].gain; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.task
	}
	return out
}
