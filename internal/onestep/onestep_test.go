package onestep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resched/internal/core"
	"resched/internal/dag"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/profile"
)

func chainGraph(n int, seq model.Duration, alpha float64) *dag.Graph {
	g := dag.New(n)
	for i := 0; i < n; i++ {
		g.AddTask(dag.Task{Seq: seq, Alpha: alpha})
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(i-1, i)
	}
	return g
}

func emptyEnv(p int, now model.Time) core.Env {
	return core.Env{P: p, Now: now, Avail: profile.New(p, now)}
}

func randomEnv(rng *rand.Rand, p int) core.Env {
	prof := profile.New(p, 0)
	for k := 0; k < rng.Intn(12); k++ {
		start := model.Time(rng.Int63n(int64(model.Day)))
		dur := model.Duration(rng.Int63n(int64(6*model.Hour)) + 600)
		procs := rng.Intn(p) + 1
		if prof.MinFree(start, start+dur) >= procs {
			if err := prof.Reserve(start, start+dur, procs); err != nil {
				panic(err)
			}
		}
	}
	return core.Env{P: p, Now: 0, Avail: prof, Q: 1 + rng.Intn(p)}
}

func TestScheduleChainGrowsAllocations(t *testing.T) {
	// A chain of scalable tasks: growing allocations directly cuts the
	// makespan, so the one-step search must beat the all-ones mapping.
	g := chainGraph(4, 2*model.Hour, 0.05)
	env := emptyEnv(32, 0)
	res, err := Schedule(g, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := mapWithAllocs(g, env, g.UniformAlloc(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Completion() >= baseline.Completion() {
		t.Fatalf("one-step completion %d did not improve on serial mapping %d",
			res.Schedule.Completion(), baseline.Completion())
	}
	if res.Steps == 0 || res.Evaluated <= res.Steps {
		t.Fatalf("suspicious search stats: %+v", res)
	}
}

func TestScheduleVerifies(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := daggen.Default()
		spec.N = rng.Intn(20) + 4
		g := daggen.MustGenerate(spec, rng)
		env := randomEnv(rng, rng.Intn(24)+4)
		res, err := Schedule(g, env, Options{})
		if err != nil {
			return false
		}
		s, err := core.NewScheduler(g)
		if err != nil {
			return false
		}
		return s.Verify(env, res.Schedule) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := daggen.MustGenerate(daggen.Default(), rng)
	env := randomEnv(rng, 16)
	a, err := Schedule(g, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(g, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule.Completion() != b.Schedule.Completion() || a.Steps != b.Steps {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestScheduleRespectsStepCap(t *testing.T) {
	g := chainGraph(6, model.Hour, 0.01)
	env := emptyEnv(64, 0)
	res, err := Schedule(g, env, Options{MaxSteps: 2, Candidates: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps > 2 {
		t.Fatalf("steps = %d, cap was 2", res.Steps)
	}
}

func TestScheduleCompetitiveWithBDCPAR(t *testing.T) {
	// The one-step scheduler optimizes the actual reservation-aware
	// makespan; over a batch of instances its mean turnaround should be
	// within a modest factor of BD_CPAR's (often better).
	var one, two float64
	n := 0
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		spec := daggen.Default()
		spec.N = 20
		g := daggen.MustGenerate(spec, rng)
		env := randomEnv(rng, 24)
		res, err := Schedule(g, env, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := core.NewScheduler(g)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := s.Turnaround(env, core.BLCPAR, core.BDCPAR)
		if err != nil {
			t.Fatal(err)
		}
		one += float64(res.Schedule.Turnaround())
		two += float64(ref.Turnaround())
		n++
	}
	if one > 1.5*two {
		t.Fatalf("one-step mean turnaround %.0f vs BD_CPAR %.0f: more than 1.5x worse", one/float64(n), two/float64(n))
	}
}

func TestScheduleErrors(t *testing.T) {
	g := chainGraph(2, model.Hour, 0)
	if _, err := Schedule(g, core.Env{P: 0}, Options{}); err == nil {
		t.Fatal("bad env accepted")
	}
	bad := dag.New(2)
	bad.AddTask(dag.Task{Seq: 1})
	bad.AddTask(dag.Task{Seq: 1})
	bad.MustAddEdge(0, 1)
	bad.MustAddEdge(1, 0)
	if _, err := Schedule(bad, emptyEnv(4, 0), Options{}); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}
