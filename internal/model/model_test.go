package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExecSecondsBasic(t *testing.T) {
	tests := []struct {
		name  string
		seq   Duration
		alpha float64
		m     int
		want  float64
	}{
		{"sequential on one proc", 100, 0.2, 1, 100},
		{"fully parallel halves", 100, 0, 2, 50},
		{"fully serial never speeds up", 100, 1, 64, 100},
		{"amdahl alpha 0.2 on 4", 100, 0.2, 4, 40},
		{"zero work", 0, 0.5, 8, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := ExecSeconds(tc.seq, tc.alpha, tc.m)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Fatalf("ExecSeconds(%d, %v, %d) = %v, want %v", tc.seq, tc.alpha, tc.m, got, tc.want)
			}
		})
	}
}

func TestExecTimeRoundsUp(t *testing.T) {
	// 100 * (0.1 + 0.9/7) = 22.857... -> 23
	if got := ExecTime(100, 0.1, 7); got != 23 {
		t.Fatalf("ExecTime = %d, want 23", got)
	}
	// Exact divisions stay exact.
	if got := ExecTime(100, 0, 4); got != 25 {
		t.Fatalf("ExecTime = %d, want 25", got)
	}
}

func TestExecTimeMinimumOneSecond(t *testing.T) {
	if got := ExecTime(1, 0, 1024); got != 1 {
		t.Fatalf("ExecTime(1,0,1024) = %d, want 1", got)
	}
	if got := ExecTime(0, 0, 8); got != 0 {
		t.Fatalf("ExecTime(0,0,8) = %d, want 0", got)
	}
}

func TestExecTimePanicsOnBadInput(t *testing.T) {
	for _, fn := range []func(){
		func() { ExecTime(10, 0.5, 0) },
		func() { ExecTime(-1, 0.5, 1) },
		func() { ExecTime(10, -0.1, 1) },
		func() { ExecTime(10, 1.1, 1) },
		func() { ExecTime(10, math.NaN(), 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Property: execution time is non-increasing in the processor count.
func TestExecTimeMonotoneInProcs(t *testing.T) {
	f := func(seqRaw uint32, alphaRaw uint16, mRaw uint8) bool {
		seq := Duration(seqRaw%36000) + 1
		alpha := float64(alphaRaw%1000) / 1000
		m := int(mRaw%100) + 1
		return ExecTime(seq, alpha, m+1) <= ExecTime(seq, alpha, m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: work (processor-seconds) is non-decreasing in the processor
// count whenever alpha > 0 — Amdahl's diminishing returns mean larger
// allocations always cost at least as many CPU-hours.
func TestWorkMonotoneInProcs(t *testing.T) {
	f := func(seqRaw uint32, alphaRaw uint16, mRaw uint8) bool {
		seq := Duration(seqRaw%36000) + 60
		alpha := float64(alphaRaw%1000)/1000 + 0.0005
		m := int(mRaw%100) + 1
		// Rounding to whole seconds can make work dip by at most m
		// seconds; compare with that slack.
		return Work(seq, alpha, m+1) >= Work(seq, alpha, m)-Duration(m+1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: execution time never drops below the serial fraction.
func TestExecTimeLowerBound(t *testing.T) {
	f := func(seqRaw uint32, alphaRaw uint16, mRaw uint8) bool {
		seq := Duration(seqRaw%36000) + 1
		alpha := float64(alphaRaw%1000) / 1000
		m := int(mRaw)%200 + 1
		return float64(ExecTime(seq, alpha, m)) >= alpha*float64(seq)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupBounds(t *testing.T) {
	if s := Speedup(0, 8); math.Abs(s-8) > 1e-9 {
		t.Fatalf("Speedup(0,8) = %v, want 8", s)
	}
	if s := Speedup(1, 8); math.Abs(s-1) > 1e-9 {
		t.Fatalf("Speedup(1,8) = %v, want 1", s)
	}
	// Speedup is capped by 1/alpha.
	if s := Speedup(0.25, 1<<20); s > 4 {
		t.Fatalf("Speedup(0.25, big) = %v, want <= 4", s)
	}
}

// Property: the CPA gain is non-negative and decreasing in m — adding
// the k-th processor never helps more than adding the (k-1)-th.
func TestGainDecreasing(t *testing.T) {
	f := func(seqRaw uint32, alphaRaw uint16, mRaw uint8) bool {
		seq := Duration(seqRaw%36000) + 60
		alpha := float64(alphaRaw%1000) / 1000
		m := int(mRaw%64) + 1
		g1 := Gain(seq, alpha, m)
		g2 := Gain(seq, alpha, m+1)
		return g1 >= -1e-9 && g2 <= g1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCPUHours(t *testing.T) {
	if got := CPUHours(2 * Hour); got != 2 {
		t.Fatalf("CPUHours(2h of one proc) = %v, want 2", got)
	}
	if got := CPUHours(Work(Hour, 0, 4)); math.Abs(got-1) > 1e-9 {
		t.Fatalf("4 procs x 15min = %v CPU-hours, want 1", got)
	}
}
