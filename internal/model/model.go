// Package model defines the time base and the data-parallel task
// execution-time model used throughout the library.
//
// All scheduling times are integer seconds. Reservations in production
// batch systems are requested in whole seconds (the Standard Workload
// Format records seconds), and an integer time base keeps the
// availability profile exact: there is no floating-point drift in
// breakpoints, which makes schedule validation in tests bitwise
// reproducible.
//
// Task execution times follow Amdahl's law, as in the paper (Section
// 3.1): a task with sequential execution time T and non-parallelizable
// fraction alpha runs on m processors in
//
//	T(m) = T * (alpha + (1-alpha)/m)
//
// evaluated in float64 and rounded up to a whole second (a reservation
// must cover the full execution).
package model

import (
	"fmt"
	"math"
)

// Time is an absolute point in time, in seconds. The origin is
// arbitrary (experiment harnesses use the start of the workload log).
type Time = int64

// Duration is a span of time in seconds.
type Duration = int64

// Convenient durations, in seconds.
const (
	Second Duration = 1
	Minute Duration = 60
	Hour   Duration = 3600
	Day    Duration = 86400
	Week   Duration = 7 * Day
)

// Infinity is a Time far beyond any schedule horizon. It is used as the
// "no deadline" sentinel and as the right endpoint of the availability
// profile's final segment. It is small enough that Infinity+Infinity
// does not overflow int64.
const Infinity Time = math.MaxInt64 / 4

// ExecSeconds returns Amdahl's-law execution time in (fractional)
// seconds for a task with sequential time seq and serial fraction alpha
// on m processors. It panics if m < 1, seq < 0, or alpha is outside
// [0, 1]: these are programming errors, not data errors.
func ExecSeconds(seq Duration, alpha float64, m int) float64 {
	if m < 1 {
		panic(fmt.Sprintf("model: processor count %d < 1", m))
	}
	if seq < 0 {
		panic(fmt.Sprintf("model: negative sequential time %d", seq))
	}
	if alpha < 0 || alpha > 1 || math.IsNaN(alpha) {
		panic(fmt.Sprintf("model: alpha %v outside [0,1]", alpha))
	}
	return float64(seq) * (alpha + (1-alpha)/float64(m))
}

// ExecTime returns Amdahl's-law execution time rounded up to a whole
// second. A task with seq > 0 always takes at least one second on any
// number of processors; a task with seq == 0 takes zero time.
func ExecTime(seq Duration, alpha float64, m int) Duration {
	s := ExecSeconds(seq, alpha, m)
	d := Duration(math.Ceil(s))
	if d == 0 && seq > 0 {
		return 1
	}
	return d
}

// Work returns the processor-seconds consumed by running the task on m
// processors for its (rounded) execution time. This is the quantity a
// batch system charges for an m-processor reservation.
func Work(seq Duration, alpha float64, m int) Duration {
	return Duration(m) * ExecTime(seq, alpha, m)
}

// CPUHours converts processor-seconds into CPU-hours, the resource
// consumption unit reported in the paper's Tables 4-7.
func CPUHours(procSeconds Duration) float64 {
	return float64(procSeconds) / float64(Hour)
}

// Speedup returns the Amdahl speedup T(1)/T(m) using the exact
// (unrounded) model.
func Speedup(alpha float64, m int) float64 {
	if m < 1 {
		panic(fmt.Sprintf("model: processor count %d < 1", m))
	}
	return 1 / (alpha + (1-alpha)/float64(m))
}

// Gain is the CPA profitability metric for growing a task's allocation
// from m to m+1 processors: T(m)/m - T(m+1)/(m+1). CPA picks the
// critical-path task with the largest gain (Radulescu & van Gemund,
// ICPP 2001). The unrounded model is used so the allocator's choices do
// not depend on one-second rounding artifacts.
func Gain(seq Duration, alpha float64, m int) float64 {
	return ExecSeconds(seq, alpha, m)/float64(m) - ExecSeconds(seq, alpha, m+1)/float64(m+1)
}
