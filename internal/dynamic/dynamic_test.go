package dynamic

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"resched/internal/core"
	"resched/internal/dag"
	"resched/internal/daggen"
	"resched/internal/model"
	"resched/internal/profile"
)

func testEnv(p int) core.Env {
	return core.Env{P: p, Now: 0, Avail: profile.New(p, 0), Q: p}
}

func testGraph(seed int64, n int) *dag.Graph {
	spec := daggen.Default()
	spec.N = n
	return daggen.MustGenerate(spec, rand.New(rand.NewSource(seed)))
}

func TestStrategyString(t *testing.T) {
	if Naive.String() != "naive" || Rebook.String() != "rebook" || Replan.String() != "replan" {
		t.Fatal("Strategy.String broken")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy must stringify")
	}
}

func TestZeroRateMatchesStaticPlan(t *testing.T) {
	// With no competitors the booking loop must reproduce the snapshot
	// plan exactly, for every strategy.
	g := testGraph(1, 15)
	env := testEnv(32)
	s, err := core.NewScheduler(g)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.Turnaround(env, core.BLCPAR, core.BDCPAR)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{Naive, Rebook, Replan} {
		res, err := Run(g, env, Competitor{Rate: 0}, strat, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if res.Conflicts != 0 || res.Injected != 0 {
			t.Fatalf("%v: phantom conflicts %+v", strat, res)
		}
		if res.Schedule.Turnaround() != plan.Turnaround() {
			t.Fatalf("%v: turnaround %d != planned %d", strat, res.Schedule.Turnaround(), plan.Turnaround())
		}
		if err := s.Verify(env, res.Schedule); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
	}
}

func TestNaiveAbortsOnConflict(t *testing.T) {
	// A heavy competitor stream on a small machine makes conflicts
	// near-certain for a long plan.
	g := testGraph(3, 30)
	env := testEnv(8)
	comp := Competitor{Rate: 4, MeanProcs: 4, MeanDur: 4 * model.Hour, Horizon: model.Day}
	sawConflict := false
	for seed := int64(0); seed < 10 && !sawConflict; seed++ {
		_, err := Run(g, env, comp, Naive, rand.New(rand.NewSource(seed)))
		if err != nil {
			if !errors.Is(err, ErrConflict) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawConflict = true
		}
	}
	if !sawConflict {
		t.Fatal("naive strategy never conflicted under a heavy competitor stream")
	}
}

func TestRebookAndReplanSurviveConflicts(t *testing.T) {
	g := testGraph(5, 25)
	env := testEnv(16)
	comp := Competitor{Rate: 2, MeanProcs: 6, MeanDur: 3 * model.Hour, Horizon: model.Day}
	for _, strat := range []Strategy{Rebook, Replan} {
		totalConflicts := 0
		for seed := int64(0); seed < 6; seed++ {
			res, err := Run(g, env, comp, strat, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("%v seed %d: %v", strat, seed, err)
			}
			totalConflicts += res.Conflicts
			// The final schedule must be self-consistent: precedence
			// holds and reservations were actually committed (checked
			// during booking); verify precedence and durations here.
			if err := verifyAgainstGraph(g, env, res.Schedule); err != nil {
				t.Fatalf("%v seed %d: %v", strat, seed, err)
			}
			// Reality can only be as good as or worse than the plan.
			if res.Schedule.Turnaround() < res.PlannedTurnaround {
				t.Fatalf("%v seed %d: turnaround %d beats the plan %d", strat, seed,
					res.Schedule.Turnaround(), res.PlannedTurnaround)
			}
		}
		if totalConflicts == 0 {
			t.Fatalf("%v: no conflicts across 6 seeds; competitor too weak for this test", strat)
		}
	}
}

// verifyAgainstGraph checks precedence and durations without the
// competing-reservation capacity check (the live table already
// enforced capacity at booking time, and the test has no snapshot of
// the final competitor set).
func verifyAgainstGraph(g *dag.Graph, env core.Env, s *core.Schedule) error {
	for t := 0; t < g.NumTasks(); t++ {
		pl := s.Tasks[t]
		task := g.Task(t)
		if pl.Start < env.Now {
			return errTest("task starts before now")
		}
		if want := model.ExecTime(task.Seq, task.Alpha, pl.Procs); pl.End-pl.Start != want {
			return errTest("duration mismatch")
		}
		for _, pr := range g.Predecessors(t) {
			if s.Tasks[pr].End > pl.Start {
				return errTest("precedence violated")
			}
		}
	}
	return nil
}

type errTest string

func (e errTest) Error() string { return string(e) }

func TestDefaultCompetitor(t *testing.T) {
	c := DefaultCompetitor(64)
	if c.MeanProcs != 8 || c.Rate != 1 {
		t.Fatalf("DefaultCompetitor = %+v", c)
	}
	c = DefaultCompetitor(2)
	if c.MeanProcs != 1 {
		t.Fatalf("small machine competitor = %+v", c)
	}
}

func TestPoisson(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if poisson(0, rng) != 0 {
		t.Fatal("rate 0 must give 0")
	}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += float64(poisson(2.0, rng))
	}
	mean := sum / n
	if mean < 1.8 || mean > 2.2 {
		t.Fatalf("poisson(2) mean = %v", mean)
	}
}

// Property: the rebook strategy always terminates with a valid
// precedence-respecting schedule, whatever the competitor pressure.
func TestRebookProperty(t *testing.T) {
	f := func(seed int64, rateRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := testGraph(seed, rng.Intn(15)+5)
		env := testEnv(rng.Intn(24) + 4)
		comp := DefaultCompetitor(env.P)
		comp.Rate = float64(rateRaw%40) / 10
		res, err := Run(g, env, comp, Rebook, rng)
		if err != nil {
			return false
		}
		return verifyAgainstGraph(g, env, res.Schedule) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
