// Package dynamic relaxes the paper's assumption that "while the
// application is being scheduled the reservation schedule does not
// change" (Section 3.2.2; flagged as future work in the conclusion).
//
// The model: the application scheduler computes a plan against a
// snapshot of the reservation table, then submits one reservation
// request per task, in schedule order. Between consecutive requests,
// competing users book their own reservations (a Poisson stream of
// arrivals shaped like tagged batch jobs). A request that no longer
// fits is a conflict; the package implements three reactions and
// reports how each degrades turnaround:
//
//   - Naive: give up on the first conflict (measures how fragile the
//     static assumption is).
//   - Rebook: keep the planned allocation but move the conflicting
//     task (and, transitively, any successor whose precedence breaks)
//     to its earliest feasible start.
//   - Replan: recompute the whole remaining schedule from the live
//     reservation table with the paper's BL_CPAR/BD_CPAR heuristic.
package dynamic

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"resched/internal/core"
	"resched/internal/cpa"
	"resched/internal/dag"
	"resched/internal/model"
	"resched/internal/profile"
)

// Strategy selects the reaction to a booking conflict.
type Strategy int

const (
	// Naive aborts on the first conflict.
	Naive Strategy = iota
	// Rebook shifts the conflicting task to its earliest feasible
	// start, keeping its planned allocation.
	Rebook
	// Replan recomputes the remaining tasks' schedule from the live
	// reservation table.
	Replan
)

func (s Strategy) String() string {
	switch s {
	case Naive:
		return "naive"
	case Rebook:
		return "rebook"
	case Replan:
		return "replan"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ErrConflict is returned by the Naive strategy when a booking fails.
var ErrConflict = errors.New("dynamic: reservation conflict")

// Competitor generates the competing reservations that arrive between
// our booking requests.
type Competitor struct {
	// Rate is the expected number of competing reservations arriving
	// between two consecutive bookings.
	Rate float64
	// MeanProcs and MeanDur shape each competing reservation.
	MeanProcs int
	MeanDur   model.Duration
	// Horizon bounds how far in the future competitors book, relative
	// to "now".
	Horizon model.Duration
}

// DefaultCompetitor returns a competitor model sized for a cluster of
// p processors: jobs average an eighth of the machine for two hours,
// booked within the next day.
func DefaultCompetitor(p int) Competitor {
	procs := p / 8
	if procs < 1 {
		procs = 1
	}
	return Competitor{Rate: 1, MeanProcs: procs, MeanDur: 2 * model.Hour, Horizon: model.Day}
}

// inject books a Poisson number of competing reservations on the live
// profile, each at its earliest fit after a random future point.
func (c Competitor) inject(live *profile.Profile, now model.Time, rng *rand.Rand) int {
	n := poisson(c.Rate, rng)
	injected := 0
	for i := 0; i < n; i++ {
		procs := 1 + rng.Intn(2*c.MeanProcs)
		if procs > live.Capacity() {
			procs = live.Capacity()
		}
		dur := model.Duration(rng.ExpFloat64()*float64(c.MeanDur)) + model.Minute
		earliest := now + model.Time(rng.Int63n(int64(c.Horizon)))
		start := live.EarliestFit(procs, dur, earliest)
		if err := live.Reserve(start, start+dur, procs); err != nil {
			continue // extremely contended instant; skip
		}
		injected++
	}
	return injected
}

// poisson draws a Poisson variate (Knuth's product method; rates here
// are small).
func poisson(rate float64, rng *rand.Rand) int {
	if rate <= 0 {
		return 0
	}
	limit := math.Exp(-rate)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= limit || k > 1000 {
			return k
		}
		k++
	}
}

// Result reports one dynamic scheduling run.
type Result struct {
	Schedule *core.Schedule
	// PlannedTurnaround is what the snapshot plan promised.
	PlannedTurnaround model.Duration
	// Conflicts counts bookings that failed against the live table.
	Conflicts int
	// Replans counts full re-plans (Replan strategy only).
	Replans int
	// Injected counts competing reservations that arrived during
	// booking.
	Injected int
}

// Run plans against a snapshot of env.Avail and then books task by
// task against a live copy into which the competitor injects
// reservations between bookings. The returned schedule is always
// verified against the final live table (it reflects reality, not the
// plan).
func Run(g *dag.Graph, env core.Env, comp Competitor, strategy Strategy, rng *rand.Rand) (*Result, error) {
	s, err := core.NewScheduler(g)
	if err != nil {
		return nil, err
	}
	plan, err := s.Turnaround(env, core.BLCPAR, core.BDCPAR)
	if err != nil {
		return nil, err
	}
	res := &Result{PlannedTurnaround: plan.Turnaround()}

	live := env.Avail.Flat()
	exec := func(t, m int) model.Duration {
		task := g.Task(t)
		return model.ExecTime(task.Seq, task.Alpha, m)
	}

	// Book in planned start order, which respects precedence.
	order, err := planOrder(g, plan)
	if err != nil {
		return nil, err
	}
	final := &core.Schedule{Now: env.Now, Tasks: make([]core.Placement, g.NumTasks())}
	booked := make([]bool, g.NumTasks())
	justReplanned := false
	for oi := 0; oi < len(order); oi++ {
		t := order[oi]
		res.Injected += comp.inject(live, env.Now, rng)

		pl := plan.Tasks[t]
		// The planned start may also be invalid because a predecessor
		// was shifted; the effective ready time comes from the booked
		// placements.
		ready := env.Now
		for _, pr := range g.Predecessors(t) {
			if f := final.Tasks[pr].End; booked[pr] && f > ready {
				ready = f
			}
		}
		want := pl.Start
		if want < ready {
			want = ready
		}
		d := exec(t, pl.Procs)
		fits := d == 0 || live.MinFree(want, want+d) >= pl.Procs
		if !fits || want != pl.Start {
			res.Conflicts++
			switch {
			case strategy == Naive:
				return nil, fmt.Errorf("%w: task %d planned at %d", ErrConflict, t, pl.Start)
			case strategy == Replan && !justReplanned:
				// Recompute the remaining schedule from the live table
				// and redo this slot with the fresh plan. If the fresh
				// plan immediately conflicts again (a predecessor's
				// committed placement differs from the re-planner's
				// view), fall through to rebooking rather than looping.
				rest, order2, err := replanRemaining(g, env, live, final, booked)
				if err != nil {
					return nil, err
				}
				plan = rest
				order = append(order[:oi], order2...)
				res.Replans++
				justReplanned = true
				oi--
				continue
			default: // Rebook, or Replan's fallback
				want = live.EarliestFit(pl.Procs, d, ready)
			}
		}
		if d > 0 {
			if err := live.Reserve(want, want+d, pl.Procs); err != nil {
				return nil, fmt.Errorf("dynamic: booking task %d: %w", t, err)
			}
		}
		final.Tasks[t] = core.Placement{Procs: pl.Procs, Start: want, End: want + d}
		booked[t] = true
		justReplanned = false
	}
	res.Schedule = final
	return res, nil
}

// planOrder returns task IDs by increasing planned start, stable on
// topological order so precedence is never violated during booking.
func planOrder(g *dag.Graph, plan *core.Schedule) ([]int, error) {
	exec1, err := g.ExecTimes(g.UniformAlloc(1))
	if err != nil {
		return nil, err
	}
	order, err := cpa.PriorityOrder(g, exec1)
	if err != nil {
		return nil, err
	}
	// Stable sort by planned start.
	sorted := append([]int(nil), order...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && plan.Tasks[sorted[j]].Start < plan.Tasks[sorted[j-1]].Start; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	// The stable sort could reorder dependent tasks with equal starts
	// only if a zero-duration predecessor shares its successor's start,
	// in which case the original priority order was kept.
	return sorted, nil
}

// replanRemaining schedules the not-yet-booked tasks against the live
// table, honoring already-booked placements as fixed constraints.
func replanRemaining(g *dag.Graph, env core.Env, live *profile.Profile, final *core.Schedule, booked []bool) (*core.Schedule, []int, error) {
	s, err := core.NewScheduler(g)
	if err != nil {
		return nil, nil, err
	}
	// Build an environment whose profile is the live table; booked
	// tasks are injected as placements the scheduler must respect via
	// their reservations (already committed in live) and via ready
	// times (handled by the caller's booking loop). We lean on the
	// core scheduler for the remaining set by scheduling the whole DAG
	// and overriding booked placements afterwards; the live profile
	// already contains the booked reservations, so re-scheduling a
	// booked task cannot steal its own slot — we simply ignore the
	// duplicate and keep the committed placement.
	env2 := core.Env{P: env.P, Now: env.Now, Avail: live, Q: env.Q}
	plan, err := s.Turnaround(env2, core.BLCPAR, core.BDCPAR)
	if err != nil {
		return nil, nil, err
	}
	for t := range booked {
		if booked[t] {
			plan.Tasks[t] = final.Tasks[t]
		}
	}
	order, err := planOrder(g, plan)
	if err != nil {
		return nil, nil, err
	}
	var remaining []int
	for _, t := range order {
		if !booked[t] {
			remaining = append(remaining, t)
		}
	}
	return plan, remaining, nil
}
