package coalesce

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoRunner answers every live waiter with its own payload and
// records group sizes.
func echoRunner(sizes *[]int, mu *sync.Mutex) func(*Group) {
	return func(g *Group) {
		mu.Lock()
		*sizes = append(*sizes, len(g.Waiters()))
		mu.Unlock()
		for _, w := range g.Waiters() {
			if !w.Canceled() {
				w.Deliver(w.Payload())
			}
		}
	}
}

func TestDoCoalescesConcurrentCalls(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	c, err := New(Config{Window: 50 * time.Millisecond, MaxBatch: 64, Run: echoRunner(&sizes, &mu)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(context.Background(), i)
			if err == nil && v.(int) != i {
				err = errors.New("wrong payload echoed")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != n {
		t.Fatalf("groups served %d waiters, want %d (sizes %v)", total, n, sizes)
	}
	// All callers launched together against a generous window: they
	// must not have been served one per group.
	if len(sizes) == n {
		t.Fatalf("no coalescing happened: %d groups for %d concurrent calls", len(sizes), n)
	}
}

func TestMaxBatchSealsEarly(t *testing.T) {
	var mu sync.Mutex
	var sizes []int
	// A window long enough that only the MaxBatch seal can explain a
	// timely group.
	c, err := New(Config{Window: time.Hour, MaxBatch: 4, Run: echoRunner(&sizes, &mu)})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Do(context.Background(), "x"); err != nil {
				t.Error(err)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("full group was not served before the window expired")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("group sizes %v, want [4]", sizes)
	}
}

// TestCancellationIsPerWaiter: one caller abandoning the group must
// neither receive groupmates' work nor prevent their answers.
func TestCancellationIsPerWaiter(t *testing.T) {
	gate := make(chan struct{})
	c, err := New(Config{Window: 10 * time.Millisecond, MaxBatch: 8, Run: func(g *Group) {
		<-gate // hold the group until the canceled waiter is gone
		for _, w := range g.Waiters() {
			if !w.Canceled() {
				w.Deliver("ok")
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	canceledErr := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, "doomed")
		canceledErr <- err
	}()
	okErr := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), "fine")
		okErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // both enqueued; runner blocked on gate
	cancel()
	if err := <-canceledErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter got %v, want context.Canceled", err)
	}
	close(gate)
	if err := <-okErr; err != nil {
		t.Fatalf("surviving waiter got %v", err)
	}
}

// TestGroupContextEndsWhenAllWaitersGone: the group context must
// outlive any single cancellation but end once every caller is gone.
func TestGroupContextEndsWhenAllWaitersGone(t *testing.T) {
	groupCtx := make(chan context.Context, 1)
	block := make(chan struct{})
	c, err := New(Config{Window: 10 * time.Millisecond, MaxBatch: 8, Run: func(g *Group) {
		groupCtx <- g.Context()
		<-block // simulate a long-running group
	}})
	if err != nil {
		t.Fatal(err)
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for _, ctx := range []context.Context{ctx1, ctx2} {
		wg.Add(1)
		go func(ctx context.Context) {
			defer wg.Done()
			_, err := c.Do(ctx, nil)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("Do: %v, want context.Canceled", err)
			}
		}(ctx)
	}
	gctx := <-groupCtx
	cancel1()
	select {
	case <-gctx.Done():
		t.Fatal("group context ended after a single waiter canceled")
	case <-time.After(30 * time.Millisecond):
	}
	cancel2()
	select {
	case <-gctx.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("group context did not end after every waiter canceled")
	}
	wg.Wait()
	close(block)
	c.Close()
}

func TestCloseDrainsAndRejects(t *testing.T) {
	var served atomic.Int64
	c, err := New(Config{Window: 30 * time.Millisecond, MaxBatch: 8, Run: func(g *Group) {
		for _, w := range g.Waiters() {
			served.Add(1)
			w.Deliver("ok")
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), "pre-close")
		res <- err
	}()
	time.Sleep(5 * time.Millisecond) // the waiter is in the open group
	c.Close()                        // must serve it, then drain
	if err := <-res; err != nil {
		t.Fatalf("pre-close waiter: %v", err)
	}
	if served.Load() != 1 {
		t.Fatalf("served %d waiters through Close, want 1", served.Load())
	}
	if _, err := c.Do(context.Background(), "post-close"); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Do: %v, want ErrClosed", err)
	}
}

func TestOnGroupObservesSizes(t *testing.T) {
	var got atomic.Int64
	c, err := New(Config{
		Window:   5 * time.Millisecond,
		MaxBatch: 8,
		Run: func(g *Group) {
			for _, w := range g.Waiters() {
				w.Deliver(nil)
			}
		},
		OnGroup: func(size int) { got.Add(int64(size)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Do(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 1 {
		t.Fatalf("OnGroup observed %d total waiters, want 1", got.Load())
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Window: 0, Run: func(*Group) {}}); err == nil {
		t.Fatal("zero window accepted")
	}
	if _, err := New(Config{Window: time.Millisecond}); err == nil {
		t.Fatal("nil Run accepted")
	}
}

// TestSecondDeliverDropped: a buggy runner delivering twice must not
// deadlock the leader or corrupt a later group.
func TestSecondDeliverDropped(t *testing.T) {
	c, err := New(Config{Window: 5 * time.Millisecond, MaxBatch: 8, Run: func(g *Group) {
		for _, w := range g.Waiters() {
			w.Deliver("first")
			w.Deliver("second") // must not block
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v, err := c.Do(context.Background(), nil)
	if err != nil || v.(string) != "first" {
		t.Fatalf("got (%v, %v), want (first, nil)", v, err)
	}
}

// TestCloseRacesInFlightGroups is the drain-semantics stress: many
// goroutines join groups while Close lands mid-flight. The contract
// under test — every Do call resolves (a runner-delivered result or
// ErrClosed, nothing hangs), every waiter admitted to a group is
// served even when its group seals after Close, and no Run invocation
// happens after Close returns (Close joins every leader). Run under
// -race this also shakes out unsynchronized group/waiter state.
func TestCloseRacesInFlightGroups(t *testing.T) {
	for round := 0; round < 20; round++ {
		var served, closedAt atomic.Int64
		c, err := New(Config{Window: time.Millisecond, MaxBatch: 4, Run: func(g *Group) {
			if closedAt.Load() != 0 {
				t.Error("Run invoked after Close returned")
			}
			for _, w := range g.Waiters() {
				served.Add(1)
				w.Deliver(w.Payload())
			}
		}})
		if err != nil {
			t.Fatal(err)
		}
		const callers = 32
		var wg sync.WaitGroup
		var got, rejected atomic.Int64
		wg.Add(callers)
		for i := 0; i < callers; i++ {
			go func(i int) {
				defer wg.Done()
				v, err := c.Do(context.Background(), i)
				switch {
				case err == nil:
					if v.(int) != i {
						t.Errorf("caller %d got %v", i, v)
					}
					got.Add(1)
				case errors.Is(err, ErrClosed):
					rejected.Add(1)
				default:
					t.Errorf("caller %d: %v", i, err)
				}
			}(i)
		}
		time.Sleep(time.Duration(round%3) * time.Millisecond) // vary when Close lands
		c.Close()
		closedAt.Store(1)
		wg.Wait()
		if got.Load()+rejected.Load() != callers {
			t.Fatalf("round %d: %d served + %d rejected != %d callers",
				round, got.Load(), rejected.Load(), callers)
		}
		if served.Load() != got.Load() {
			t.Fatalf("round %d: runner served %d but %d callers got results",
				round, served.Load(), got.Load())
		}
	}
}
