// Package coalesce batches concurrent requests arriving within a
// short window into groups served by a single runner invocation. The
// serving use (internal/server) coalesces POST /v1/schedule calls onto
// one reservation-book snapshot epoch: one snapshot, N fits, one
// multi-job optimistic commit — turning N conflicting commit loops
// into one, the way batch schedulers amortize decisions across
// concurrent arrivals.
//
// The package is payload-agnostic. A caller's Do(ctx, payload) joins
// the currently open group (opening one if needed) and blocks until
// the group's runner delivers its individual result or its own context
// ends. Each group is driven by one leader goroutine that waits out
// the coalescing window — cut short when the group fills — and then
// invokes Config.Run with the sealed group. Isolation guarantees:
//
//   - results are per-waiter: the runner answers each waiter
//     individually, so one bad request fails alone;
//   - cancellation is per-waiter: a waiter that gives up stops
//     waiting immediately, and the runner observes it through
//     Waiter.Context without the groupmates noticing;
//   - the group's own context ends only when every waiter's has,
//     bounding the leader when all callers are gone.
//
// Close drains: it fails future Do calls with ErrClosed and joins
// every leader, so pooled resources the runner borrows cannot be
// touched after shutdown.
package coalesce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by Do after Close; callers fall back to their
// unbatched path or shed load.
var ErrClosed = errors.New("coalesce: coalescer closed")

// Config parameterizes a Coalescer.
type Config struct {
	// Window is how long a newly opened group stays open for more
	// arrivals. Required.
	Window time.Duration
	// MaxBatch seals a group early when it reaches this many waiters
	// (default 16).
	MaxBatch int
	// Run serves one sealed group on the group's leader goroutine. It
	// must deliver a result to every non-canceled waiter. Required.
	Run func(*Group)
	// OnGroup, when set, observes each sealed group's size before Run
	// (the server's batch-size histogram).
	OnGroup func(size int)
}

// Coalescer groups concurrent Do calls. The zero value is not usable;
// see New.
type Coalescer struct {
	cfg Config

	mu sync.Mutex
	// open is the group still accepting waiters, if any.
	open   *Group         //reschedvet:guardedby mu
	closed bool           //reschedvet:guardedby mu
	wg     sync.WaitGroup // leaders and context watchers
}

// New validates cfg and returns a ready Coalescer.
func New(cfg Config) (*Coalescer, error) {
	if cfg.Window <= 0 {
		return nil, fmt.Errorf("coalesce: window %v <= 0", cfg.Window)
	}
	if cfg.Run == nil {
		return nil, errors.New("coalesce: Config.Run is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 16
	}
	return &Coalescer{cfg: cfg}, nil
}

// Waiter is one caller's seat in a group: its payload, its own
// context, and a one-shot result slot.
type Waiter struct {
	payload any
	ctx     context.Context
	out     chan any // buffered 1; only the leader sends
}

// Payload returns the value the caller passed to Do.
func (w *Waiter) Payload() any { return w.payload }

// Context returns the caller's context. Runners use it to scope this
// waiter's share of the group work, so one caller's cancellation
// cannot abort its groupmates.
func (w *Waiter) Context() context.Context { return w.ctx }

// Canceled reports whether the caller is already gone; runners skip
// such waiters.
func (w *Waiter) Canceled() bool { return w.ctx.Err() != nil }

// Deliver hands the waiter its result. Only the first delivery counts;
// a second is dropped rather than blocking the leader.
func (w *Waiter) Deliver(v any) {
	select {
	case w.out <- v:
	default:
	}
}

// Group is one sealed batch of waiters, passed to Config.Run.
type Group struct {
	waiters []*Waiter
	full    chan struct{} // closed when MaxBatch is reached
	ctx     context.Context
}

// Waiters returns the group's seats in arrival order. Runners must
// check each waiter's Canceled before spending work on it.
func (g *Group) Waiters() []*Waiter { return g.waiters }

// Context ends when every waiter's context has ended — the point past
// which any remaining group work is unobservable.
func (g *Group) Context() context.Context { return g.ctx }

// Do joins the open group (opening one if needed) and blocks until
// the group runner delivers this call's result or ctx ends. The
// result is exactly the value the runner passed to Deliver.
func (c *Coalescer) Do(ctx context.Context, payload any) (any, error) {
	w := &Waiter{payload: payload, ctx: ctx, out: make(chan any, 1)}
	if err := c.enqueue(w); err != nil {
		return nil, err
	}
	select {
	case v := <-w.out:
		return v, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (c *Coalescer) enqueue(w *Waiter) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	g := c.open
	if g == nil {
		g = &Group{full: make(chan struct{})}
		c.open = g
		c.wg.Add(1)
		go c.lead(g)
	}
	g.waiters = append(g.waiters, w)
	if len(g.waiters) >= c.cfg.MaxBatch {
		c.open = nil // seal: the next arrival opens a fresh group
		close(g.full)
	}
	return nil
}

// lead drives one group: wait out the window (cut short when the batch
// fills), seal, then run. Joined by Close through the WaitGroup. The
// leader amortizes its group's work, so it must not add per-group heap
// traffic of its own beyond the context plumbing in groupContext.
//
//reschedvet:hotpath
func (c *Coalescer) lead(g *Group) {
	defer c.wg.Done()
	t := time.NewTimer(c.cfg.Window)
	select {
	case <-t.C:
	case <-g.full:
		t.Stop()
	}
	c.mu.Lock()
	if c.open == g {
		c.open = nil
	}
	ws := g.waiters // stable: no appends after sealing
	c.mu.Unlock()

	ctx, cancel := c.groupContext(ws)
	defer cancel()
	g.ctx = ctx
	if c.cfg.OnGroup != nil {
		c.cfg.OnGroup(len(ws))
	}
	c.cfg.Run(g)
}

// groupContext derives a context that ends when every waiter's has.
// The watcher goroutine walks the waiters sequentially — each Done it
// blocks on either fires or the whole group has already finished (the
// cancel below) — so it needs no per-waiter goroutines and is bounded
// by the leader's deferred cancel.
func (c *Coalescer) groupContext(ws []*Waiter) (context.Context, context.CancelFunc) {
	// WithoutCancel keeps the first caller's values (trace IDs) while
	// detaching its cancellation: waiter 0 giving up must not look like
	// the whole group giving up.
	ctx, cancel := context.WithCancel(context.WithoutCancel(ws[0].ctx))
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		for _, w := range ws {
			select {
			case <-w.ctx.Done():
			case <-ctx.Done():
				return // group finished first; stop watching
			}
		}
		cancel() // every caller is gone
	}()
	return ctx, cancel
}

// Close seals the coalescer: subsequent Do calls fail with ErrClosed,
// and Close blocks until every leader (including one still waiting out
// its window) has run its group and returned.
func (c *Coalescer) Close() {
	c.mu.Lock()
	c.closed = true
	c.open = nil // the leader's timer still fires and serves the group
	c.mu.Unlock()
	c.wg.Wait()
}
